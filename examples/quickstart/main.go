// Quickstart: protect a CAD model with ObfusCADe, manufacture it with the
// correct key and with a wrong key, and compare the outcomes.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"obfuscade/internal/core"
	"obfuscade/internal/mech"
	"obfuscade/internal/printer"
	"obfuscade/internal/tessellate"
)

func main() {
	// 1. The IP owner protects a tensile-bar design with the spline
	//    split feature. The secret manifest records the correct
	//    processing key.
	prot, err := core.NewProtectedBar("demo-bar", false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("protected part %q with %d embedded feature(s)\n",
		prot.Manifest.PartName, len(prot.Manifest.Features))
	for _, f := range prot.Manifest.Features {
		fmt.Printf("  - %s: %s\n", f.Kind, f.Detail)
	}
	fmt.Printf("secret key: %v\n\n", prot.Manifest.Key)

	prof := printer.DimensionElite()

	// 2. The legitimate manufacturer uses the correct key.
	good, err := core.Manufacture(prot, prot.Manifest.Key, prof)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("correct key -> grade: %s (surface disruption %.3f mm)\n",
		good.Quality.Grade, good.Run.Build.SurfaceDisruption)

	// 3. A counterfeiter with the stolen file guesses wrong conditions.
	wrong := core.Key{Resolution: tessellate.Coarse, Orientation: mech.XZ}
	bad, err := core.Manufacture(prot, wrong, prof)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrong key   -> grade: %s\n", bad.Quality.Grade)
	for _, n := range bad.Quality.Notes {
		fmt.Printf("  - %s\n", n)
	}

	// 4. Destructive testing shows the sabotage quantitatively.
	fmt.Println()
	for _, r := range []*core.ManufactureResult{good, bad} {
		seamQ := r.Quality.SeamBondQuality
		spec := mech.Specimen{Mat: mech.ABS(r.Key.Orientation)}
		if seamQ < 1 {
			spec.SeamPresent = true
			spec.SeamQuality = seamQ
			spec.Kt = 2.6
			spec.ModulusKnockdown = 0.03
		}
		g, err := mech.TestGroup("demo", spec, 5, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("tensile under %v: failure strain %s, toughness %s kJ/m^3\n",
			r.Key, g.FailureStrain, g.Toughness)
	}
}
