// Authentication scenario: a customs lab receives suspect parts and
// authenticates them against the IP owner's secret manifest using
// CT-style inspection and visual review — the paper's genuine-part
// identification benefit.
//
//	go run ./examples/authentication
package main

import (
	"fmt"
	"log"

	"obfuscade/internal/core"
	"obfuscade/internal/mech"
	"obfuscade/internal/printer"
	"obfuscade/internal/tessellate"
)

func main() {
	prot, err := core.NewProtectedPrism("valve-body")
	if err != nil {
		log.Fatal(err)
	}
	prof := printer.DimensionElite()

	scenarios := []struct {
		label string
		key   core.Key
	}{
		{"genuine factory (correct key)", prot.Manifest.Key},
		{"counterfeiter (no CAD op)", core.Key{
			Resolution: tessellate.Fine, Orientation: mech.XY, RestoreSphere: false}},
		{"counterfeiter (wrong resolution too)", core.Key{
			Resolution: tessellate.Coarse, Orientation: mech.XY, RestoreSphere: false}},
	}

	for _, sc := range scenarios {
		res, err := core.Manufacture(prot, sc.key, prof)
		if err != nil {
			log.Fatal(err)
		}
		rep := core.Authenticate(res.Run.Build, &prot.Manifest)
		fmt.Printf("%-38s grade=%-9s verdict=%s\n", sc.label, res.Quality.Grade, rep.Verdict)
		for _, n := range rep.Notes {
			fmt.Printf("    %s\n", n)
		}
	}

	fmt.Println()
	fmt.Println("the embedded sphere acts as a physical watermark: genuine parts print")
	fmt.Println("it dense (secret CAD op), counterfeits carry a washed-out cavity that a")
	fmt.Println("CT scan reveals in seconds.")
}
