// Watermark scenario: the IP owner ships each partner an individually
// marked copy of the design. When a copy leaks to a counterfeiter, the
// keyed vertex-perturbation mark identifies which partner leaked it —
// Table 1's "identification codes and marks", with traitor tracing.
//
//	go run ./examples/watermark
package main

import (
	"fmt"
	"log"

	"obfuscade/internal/brep"
	"obfuscade/internal/stl"
	"obfuscade/internal/tessellate"
	"obfuscade/internal/watermark"
)

func main() {
	part, err := brep.NewTensileBar("impeller", brep.DefaultTensileBar())
	if err != nil {
		log.Fatal(err)
	}
	original, err := tessellate.Tessellate(part, tessellate.Fine)
	if err != nil {
		log.Fatal(err)
	}

	partners := []string{"partner-alpha", "partner-beta", "partner-gamma"}
	copies := map[string][]byte{}
	for _, name := range partners {
		marked := original.Clone()
		n, err := watermark.Embed(marked, []byte(name), watermark.DefaultAmplitude)
		if err != nil {
			log.Fatal(err)
		}
		data, err := stl.Marshal(marked, stl.Binary, part.Name)
		if err != nil {
			log.Fatal(err)
		}
		copies[name] = data
		fmt.Printf("shipped %s a copy with %d marked vertices (%d bytes)\n",
			name, n, len(data))
	}

	// A counterfeit file surfaces; it is partner-beta's copy.
	leaked, err := stl.Unmarshal(copies["partner-beta"])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nforensic analysis of the leaked file:")
	for _, name := range partners {
		res, err := watermark.Detect(original, leaked, []byte(name), watermark.DefaultAmplitude)
		if err != nil {
			log.Fatal(err)
		}
		verdict := ""
		if res.Present() {
			verdict = "  <-- LEAK SOURCE"
		}
		fmt.Printf("  %-14s correlation %5.2f (matched %d/%d vertices)%s\n",
			name, res.Score, res.Matched, res.Total, verdict)
	}
	fmt.Println("\nthe 1 µm marks are below printer resolution and survive STL export;")
	fmt.Println("combined with ObfusCADe features the design is traceable AND unusable.")
}
