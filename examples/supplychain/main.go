// Supply-chain scenario: walk the cloud-aware AM process chain of paper
// Fig. 1 while an adversary tampers with each digital artifact, and show
// how the Table 1 mitigations catch every attack.
//
//	go run ./examples/supplychain
package main

import (
	"bytes"
	"fmt"
	"log"

	"obfuscade/internal/brep"
	"obfuscade/internal/gcode"
	"obfuscade/internal/stl"
	"obfuscade/internal/supplychain"
	"obfuscade/internal/tessellate"
)

func main() {
	fmt.Println(supplychain.Table1().Render())

	part, err := brep.NewTensileBar("bracket", brep.DefaultTensileBar())
	if err != nil {
		log.Fatal(err)
	}
	pl := supplychain.DefaultPipeline()
	run, err := pl.Execute(part)
	if err != nil {
		log.Fatal(err)
	}

	// The designer seals each artifact before it leaves the trusted
	// boundary.
	signer, err := supplychain.NewSigner(bytes.Repeat([]byte{42}, 32))
	if err != nil {
		log.Fatal(err)
	}
	sealedSTL := signer.Seal("bracket.stl", run.STLBytes)
	fmt.Printf("sealed STL: digest %s...\n\n", sealedSTL.Digest[:16])

	check := func(name string, attack func() error, detect func() bool) {
		if err := attack(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		status := "MISSED"
		if detect() {
			status = "DETECTED"
		}
		fmt.Printf("%-34s -> %s\n", name, status)
	}

	// 1. STL void attack vs manifold validation.
	mesh1, _ := tessellate.Tessellate(part, tessellate.Coarse)
	check("STL void injection",
		func() error { return supplychain.VoidAttack(mesh1, 7) },
		func() bool { return len(mesh1.Validate(1e-9)) > 0 })

	// 2. STL scaling vs reference diff.
	ref, _ := tessellate.Tessellate(part, tessellate.Coarse)
	mesh2 := ref.Clone()
	check("STL dimension scaling (1%)",
		func() error { return supplychain.ScaleAttack(mesh2, 1.01) },
		func() bool { return !stl.Compare(ref, mesh2).Identical(1e-6) })

	// 3. Any byte-level tamper vs digest/signature.
	tampered := append([]byte{}, sealedSTL.Data...)
	tampered[500] ^= 0xFF
	check("file substitution in transit",
		func() error { sealedSTL.Data = tampered; return nil },
		func() bool { return sealedSTL.Check(signer.Public()) != nil })

	// 4. G-code porosity vs simulation compare.
	env := gcode.DimensionEliteEnvelope()
	prog := &gcode.Program{Name: run.GCode.Name,
		Commands: append([]gcode.Command{}, run.GCode.Commands...)}
	check("G-code porosity injection",
		func() error { return supplychain.PorosityAttack(prog, 6) },
		func() bool {
			d, err := gcode.Compare(run.GCode, prog, env)
			return err == nil && !d.Equivalent(1e-3)
		})

	// 5. Malicious coordinates vs the limit-switch simulator.
	check("actuator-damage coordinates",
		func() error { supplychain.EnvelopeAttack(prog); return nil },
		func() bool {
			rep, err := gcode.Simulate(prog, env)
			return err == nil && !rep.OK()
		})

	// 6. CAD Trojan vs CT inspection of the printed part.
	trojaned, err := brep.NewTensileBar("bracket", brep.DefaultTensileBar())
	if err != nil {
		log.Fatal(err)
	}
	check("CAD design Trojan (hidden cavity)",
		func() error { return supplychain.CADTrojanAttack(trojaned, nil) },
		func() bool {
			run2, err := pl.Execute(trojaned)
			if err != nil {
				return false
			}
			return len(run2.Build.Grid.InternalCavities()) > 0
		})
}
