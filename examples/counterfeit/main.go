// Counterfeit scenario: an attacker exfiltrates the protected CAD file
// from a cloud collaboration platform and tries to manufacture sellable
// parts. Without the secret processing key, every attempt is visibly or
// structurally defective — the paper's quality-matrix claim.
//
//	go run ./examples/counterfeit
package main

import (
	"fmt"
	"log"

	"obfuscade/internal/core"
	"obfuscade/internal/printer"
)

func main() {
	// The distributed (stolen) design: spline split + embedded sphere,
	// giving a 12-key processing space.
	prot, err := core.NewProtectedBar("jet-bracket", true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stolen design %q: %d bodies, %d embedded features\n\n",
		prot.Manifest.PartName, len(prot.Part.Bodies), len(prot.Manifest.Features))

	// The counterfeiter brute-forces the processing space, printing and
	// testing each combination.
	prof := printer.DimensionElite()
	rep, entries, err := core.AnalyzeKeySpace(prot, prof)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(core.MatrixTable(entries).Render())
	fmt.Printf("counterfeiter's brute-force cost:\n")
	fmt.Printf("  key space:             %d combinations\n", rep.TotalKeys)
	fmt.Printf("  usable combinations:   %d\n", rep.GoodKeys)
	fmt.Printf("  mean print time:       %.2f h per attempt\n", rep.MeanPrintHours)
	fmt.Printf("  expected search cost:  %.2f h of printing + destructive testing\n\n",
		rep.ExpectedBruteForceHours)

	// Even a lucky guess that looks good must still pass the IP owner's
	// authentication (see examples/authentication).
	good := core.GoodKeys(entries)
	if len(good) == 0 {
		fmt.Println("no processing combination yields a sellable part")
		return
	}
	fmt.Printf("combinations that pass visual/structural checks: %d\n", len(good))
	for _, k := range good {
		fmt.Printf("  %v\n", k)
	}
	fmt.Println("each still requires the secret CAD operation the manifest records —")
	fmt.Println("without it, the sphere region prints hollow and CT inspection flags the part.")
}
