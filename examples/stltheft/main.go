// STL-theft scenario: the most common counterfeiting path is a stolen
// STL, not a stolen CAD file. Because tessellation happens at export, the
// STL *freezes* the resolution component of the ObfusCADe process key —
// an IP owner who only releases Coarse exports leaves the thief no
// processing combination that prints cleanly.
//
//	go run ./examples/stltheft
package main

import (
	"fmt"
	"log"

	"obfuscade/internal/core"
	"obfuscade/internal/mech"
	"obfuscade/internal/printer"
	"obfuscade/internal/stl"
	"obfuscade/internal/tessellate"
)

func main() {
	prot, err := core.NewProtectedBar("impeller", false)
	if err != nil {
		log.Fatal(err)
	}
	prof := printer.DimensionElite()

	for _, res := range tessellate.Presets() {
		// The owner exports at this resolution; the thief steals the file.
		part, err := core.ClonePart(prot.Part)
		if err != nil {
			log.Fatal(err)
		}
		m, err := tessellate.Tessellate(part, res)
		if err != nil {
			log.Fatal(err)
		}
		stolen, err := stl.Marshal(m, stl.Binary, part.Name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("stolen %s export (%d bytes):\n", res.Name, len(stolen))

		// The thief's only remaining knob is the print orientation.
		for _, o := range []mech.Orientation{mech.XY, mech.XZ} {
			_, q, err := core.ManufactureFromSTL(stolen, o, prof)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  print %-4s -> %-9s (disruption %.3f mm, %.0f%% discontinuous layers)\n",
				o, q.Grade, q.SurfaceDisruptionMM, 100*q.DiscontinuousFraction)
		}
	}

	fmt.Println()
	fmt.Println("release policy: ship partners Coarse STL only; keep the Custom export —")
	fmt.Println("the usable half of the process key — inside the trusted boundary.")
}
