// Side-channel scenario: a smartphone near the printer records stepper
// emanations and reconstructs the tool path (paper §2, refs [4] and
// [16]) — demonstrating why CAD-level protection matters even when files
// never leak.
//
//	go run ./examples/sidechannel
package main

import (
	"fmt"
	"log"

	"obfuscade/internal/brep"
	"obfuscade/internal/sidechannel"
	"obfuscade/internal/slicer"
	"obfuscade/internal/supplychain"
)

func main() {
	part, err := brep.NewTensileBar("secret-part", brep.DefaultTensileBar())
	if err != nil {
		log.Fatal(err)
	}
	pl := supplychain.DefaultPipeline()
	run, err := pl.Execute(part)
	if err != nil {
		log.Fatal(err)
	}
	trueLen := slicer.TotalExtruded(run.Toolpaths)
	fmt.Printf("victim prints %q: %d layers, %.0f mm extruded\n\n",
		part.Name, len(run.Toolpaths), trueLen)

	for _, scenario := range []struct {
		label string
		noise float64
	}{
		{"phone on the printer table", 0.005},
		{"phone across the room", 0.05},
		{"phone in the next room", 0.20},
	} {
		opts := sidechannel.DefaultOptions()
		opts.FreqNoiseStd = scenario.noise
		trace, err := sidechannel.Emanate(run.Toolpaths, opts)
		if err != nil {
			log.Fatal(err)
		}
		rec, err := sidechannel.Reconstruct(trace, opts)
		if err != nil {
			log.Fatal(err)
		}
		truth := sidechannel.GroundTruth(run.Toolpaths)
		meanErr, err := sidechannel.MeanError(rec, truth)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s mean error %7.2f mm, recovered extrusion %.0f mm (%.0f%%)\n",
			scenario.label, meanErr, rec.ExtrudedLength, 100*rec.ExtrudedLength/trueLen)
	}

	fmt.Println()
	fmt.Println("a close-proximity recording leaks the design with millimetre accuracy;")
	fmt.Println("file-level access controls cannot stop this channel, but an ObfusCADe-")
	fmt.Println("protected model is useless to the eavesdropper without the process key.")
}
