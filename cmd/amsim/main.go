// Command amsim runs the full additive-manufacturing process chain
// (paper Fig. 1) on a built-in or user-supplied CAD part and reports the
// artifact at every stage. Optionally exports the STL and G-code files.
//
// Usage:
//
//	amsim [-part bar|split-bar|prism|sphere|plate] [-cad file.ocad]
//	      [-res coarse|fine|custom] [-orient xy|xz] [-printer fdm|polyjet]
//	      [-stl out.stl] [-gcode out.gcode] [-replicates n] [-inspect]
package main

import (
	"flag"
	"fmt"
	"os"

	"obfuscade/internal/brep"
	"obfuscade/internal/gcode"
	"obfuscade/internal/geom"
	"obfuscade/internal/mech"
	"obfuscade/internal/printer"
	"obfuscade/internal/supplychain"
	"obfuscade/internal/tessellate"
	"obfuscade/internal/voxel"
)

func main() {
	partName := flag.String("part", "bar", "built-in part: bar, split-bar, prism, sphere, plate, shaft")
	cadFile := flag.String("cad", "", "load part from a native .ocad file instead")
	resName := flag.String("res", "fine", "STL resolution: coarse, fine, custom")
	orient := flag.String("orient", "xy", "print orientation: xy, xz")
	printerName := flag.String("printer", "fdm", "printer profile: fdm, polyjet")
	stlOut := flag.String("stl", "", "write binary STL to this path")
	gcodeOut := flag.String("gcode", "", "write G-code to this path")
	replicates := flag.Int("replicates", 0, "run n tensile replicates after printing")
	inspect := flag.Bool("inspect", false, "render a cut-open mid section of the printed part")
	flag.Parse()

	if err := run(*partName, *cadFile, *resName, *orient, *printerName,
		*stlOut, *gcodeOut, *replicates, *inspect); err != nil {
		fmt.Fprintln(os.Stderr, "amsim:", err)
		os.Exit(1)
	}
}

func buildPart(name string) (*brep.Part, error) {
	switch name {
	case "bar":
		return brep.NewTensileBar("bar", brep.DefaultTensileBar())
	case "split-bar":
		p, err := brep.NewTensileBar("bar", brep.DefaultTensileBar())
		if err != nil {
			return nil, err
		}
		s, err := brep.SplitSplineThroughGauge(brep.DefaultTensileBar(), 2, 3)
		if err != nil {
			return nil, err
		}
		if err := brep.SplitBySpline(p, "bar", s); err != nil {
			return nil, err
		}
		return p, nil
	case "prism":
		return brep.NewRectPrism("prism", geom.V3(25.4, 12.7, 12.7))
	case "shaft":
		// An axisymmetric stepped shaft with an embedded sphere in the
		// thick section.
		p, err := brep.NewShaft("shaft", 10, 6, 25, 3)
		if err != nil {
			return nil, err
		}
		if err := brep.EmbedSphere(p, "shaft", geom.V3(5, 0, 0), 2, brep.EmbedOpts{}); err != nil {
			return nil, err
		}
		return p, nil
	case "plate":
		// A realistic bracket plate: mounting holes plus a spline split
		// hidden between them.
		p, err := brep.NewTensileBar("plate", brep.DefaultTensileBar())
		if err != nil {
			return nil, err
		}
		s, err := brep.SplitSplineThroughGauge(brep.DefaultTensileBar(), 2, 3)
		if err != nil {
			return nil, err
		}
		if err := brep.SplitBySpline(p, "bar", s); err != nil {
			return nil, err
		}
		for _, hole := range [][2]float64{{12, 14.5}, {103, 14.5}} {
			if err := brep.AddThroughHole(p, "bar-upper", hole[0], hole[1], 2.5); err != nil {
				return nil, err
			}
		}
		return p, nil
	case "sphere":
		p, err := brep.NewRectPrism("prism", geom.V3(25.4, 12.7, 12.7))
		if err != nil {
			return nil, err
		}
		err = brep.EmbedSphere(p, "prism", geom.V3(12.7, 6.35, 6.35), 3.175, brep.EmbedOpts{})
		if err != nil {
			return nil, err
		}
		return p, nil
	default:
		return nil, fmt.Errorf("unknown part %q", name)
	}
}

func run(partName, cadFile, resName, orient, printerName, stlOut, gcodeOut string,
	replicates int, inspect bool) error {
	var part *brep.Part
	var err error
	if cadFile != "" {
		data, err := os.ReadFile(cadFile)
		if err != nil {
			return err
		}
		part, err = brep.Load(data)
		if err != nil {
			return err
		}
	} else {
		part, err = buildPart(partName)
		if err != nil {
			return err
		}
	}

	res, err := tessellate.ByName(resName)
	if err != nil {
		return err
	}
	var o mech.Orientation
	switch orient {
	case "xy":
		o = mech.XY
	case "xz":
		o = mech.XZ
	default:
		return fmt.Errorf("unknown orientation %q", orient)
	}
	var prof printer.Profile
	switch printerName {
	case "fdm":
		prof = printer.DimensionElite()
	case "polyjet":
		prof = printer.Objet30Pro()
	default:
		return fmt.Errorf("unknown printer %q", printerName)
	}

	pl := supplychain.Pipeline{
		Resolution:  res,
		Orientation: o,
		Printer:     prof,
		RunFEA:      true,
	}
	fmt.Printf("amsim: part %q through %s at %s resolution, %s orientation\n\n",
		part.Name, prof.Name, res.Name, o)
	runRes, err := pl.Execute(part)
	if err != nil {
		return err
	}

	sim, err := gcode.Simulate(runRes.GCode, gcode.DimensionEliteEnvelope())
	if err != nil {
		return err
	}
	fmt.Printf("CAD:       %d bodies, %d history entries, %d bytes\n",
		len(part.Bodies), len(part.History), len(runRes.CADBytes))
	fmt.Printf("STL:       %d triangles, %d bytes, volume %.1f mm^3\n",
		runRes.STLStats.Triangles, len(runRes.STLBytes), runRes.STLStats.Volume)
	fmt.Printf("Slicing:   %d layers @ %.4f mm\n",
		len(runRes.Sliced.Layers), runRes.Sliced.Opts.LayerHeight)
	fmt.Printf("G-code:    %d commands, %.1f min print, %.0f mm extruded, violations: %d\n",
		len(runRes.GCode.Commands), sim.PrintTime/60, sim.ExtrudeLength, len(sim.Violations))
	fmt.Printf("Build:     %.0f mm^3 model, %.0f mm^3 support, %d seams\n",
		runRes.Build.ModelVolume, runRes.Build.SupportVolume, len(runRes.Build.Seams))
	fmt.Printf("FEA:       Kt = %.2f\n", runRes.DesignKt)
	fmt.Printf("Inspect:   %d internal cavities, surface disruption %.3f mm (visible: %t)\n",
		len(runRes.Build.Grid.InternalCavities()), runRes.Build.SurfaceDisruption,
		runRes.Build.SurfaceDisrupted())
	for _, s := range runRes.Build.Seams {
		fmt.Printf("Seam:      %s|%s bond %.2f, discontinuous layers %.0f%%\n",
			s.BodyA, s.BodyB, s.BondQuality, 100*s.DiscontinuousFraction)
	}

	if replicates > 0 {
		g, err := pl.TestPrinted(runRes, "tensile", replicates, 1)
		if err != nil {
			return err
		}
		fmt.Printf("Tensile:   E %s GPa, UTS %s MPa, failure strain %s, toughness %s kJ/m^3 (n=%d)\n",
			g.Young, g.UTS, g.FailureStrain, g.Toughness, g.N)
	}

	if stlOut != "" {
		if err := os.WriteFile(stlOut, runRes.STLBytes, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", stlOut)
	}
	if gcodeOut != "" {
		data, err := gcode.Marshal(runRes.GCode)
		if err != nil {
			return err
		}
		if err := os.WriteFile(gcodeOut, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", gcodeOut)
	}
	if inspect {
		g := runRes.Build.Grid
		fmt.Printf("\ncut-open mid section (x-z plane at y midplane; '#' model, 's' support):\n")
		section, err := g.SectionASCII(voxel.AxisY, g.NY/2, 100)
		if err != nil {
			return err
		}
		fmt.Print(section)
	}
	return nil
}
