package main

import (
	"os"
	"path/filepath"
	"testing"

	"obfuscade/internal/brep"
)

func TestBuildPartVariants(t *testing.T) {
	for _, name := range []string{"bar", "split-bar", "prism", "sphere", "plate", "shaft"} {
		p, err := buildPart(name)
		if err != nil {
			t.Errorf("buildPart(%s): %v", name, err)
			continue
		}
		if len(p.Bodies) == 0 {
			t.Errorf("buildPart(%s): no bodies", name)
		}
	}
	if _, err := buildPart("widget"); err == nil {
		t.Error("expected error for unknown part")
	}
}

func TestRunWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	stlPath := filepath.Join(dir, "out.stl")
	gcodePath := filepath.Join(dir, "out.gcode")
	if err := run("bar", "", "coarse", "xy", "fdm", stlPath, gcodePath, 2, false); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{stlPath, gcodePath} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("missing artifact %s: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Errorf("empty artifact %s", p)
		}
	}
}

func TestRunFromCADFile(t *testing.T) {
	dir := t.TempDir()
	part, err := buildPart("split-bar")
	if err != nil {
		t.Fatal(err)
	}
	data, err := brep.Save(part)
	if err != nil {
		t.Fatal(err)
	}
	cadPath := filepath.Join(dir, "part.ocad")
	if err := os.WriteFile(cadPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", cadPath, "coarse", "xz", "fdm", "", "", 0, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadArguments(t *testing.T) {
	if err := run("bar", "", "ultra", "xy", "fdm", "", "", 0, false); err == nil {
		t.Error("expected error for bad resolution")
	}
	if err := run("bar", "", "coarse", "diagonal", "fdm", "", "", 0, false); err == nil {
		t.Error("expected error for bad orientation")
	}
	if err := run("bar", "", "coarse", "xy", "sls", "", "", 0, false); err == nil {
		t.Error("expected error for bad printer")
	}
	if err := run("bar", "/nonexistent/file.ocad", "coarse", "xy", "fdm", "", "", 0, false); err == nil {
		t.Error("expected error for missing CAD file")
	}
}
