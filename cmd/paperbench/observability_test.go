package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"obfuscade/internal/core"
	"obfuscade/internal/obs"
	"obfuscade/internal/trace"
)

// silenceStdout redirects the experiment tables away from the test log.
func silenceStdout(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		devnull.Close()
	})
}

// TestMatrixExperimentArtifacts is the issue's acceptance path: -exp
// matrix with -manifest-out and a trace dump must yield a valid NDJSON
// manifest per key and a loadable Chrome trace.
func TestMatrixExperimentArtifacts(t *testing.T) {
	silenceStdout(t)
	dir := t.TempDir()
	manifests := filepath.Join(dir, "manifests.ndjson")
	traceOut := filepath.Join(dir, "trace.json")

	trace.Default().Reset()
	if err := run(runOpts{exp: "matrix", n: 2, seed: 7, manifestOut: manifests}); err != nil {
		t.Fatal(err)
	}
	if err := writeTrace(traceOut); err != nil {
		t.Fatal(err)
	}

	// Manifests: one valid provenance line per key, stamped with the seed.
	data, err := os.ReadFile(manifests)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("want 6 manifest lines, got %d", len(lines))
	}
	for i, line := range lines {
		var p core.Provenance
		if err := json.Unmarshal([]byte(line), &p); err != nil {
			t.Fatalf("manifest line %d: %v", i, err)
		}
		if p.Seed != 7 {
			t.Fatalf("manifest line %d seed %d, want 7", i, p.Seed)
		}
		if p.STLSHA256 == "" || p.Grade == "" {
			t.Fatalf("manifest line %d incomplete: %+v", i, p)
		}
	}

	// Trace: valid Chrome JSON containing the matrix run span.
	traceData, err := os.ReadFile(traceOut)
	if err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceData, &chrome); err != nil {
		t.Fatalf("trace output is not valid Chrome JSON: %v", err)
	}
	foundRun := false
	for _, e := range chrome.TraceEvents {
		if e.Cat == "run" && e.Name == "core.matrix" {
			foundRun = true
		}
	}
	if !foundRun {
		t.Fatal("Chrome trace lacks the core.matrix run span")
	}
}

// TestDebugServerBindFailure pins the synchronous-bind contract main
// relies on for exit code 4: an occupied port errors at StartDebugServer
// time, never from a background goroutine after experiments started.
func TestDebugServerBindFailure(t *testing.T) {
	srv, err := trace.StartDebugServer("127.0.0.1:0", obs.Default(), trace.Default())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := trace.StartDebugServer(srv.Addr(), obs.Default(), trace.Default()); err == nil {
		t.Fatal("second bind on an occupied port must fail synchronously")
	}
}

// TestDebugServerServesRunMetrics drives a small experiment with the
// debug server up and scrapes /metrics afterwards — the live-scrape
// workflow the README documents.
func TestDebugServerServesRunMetrics(t *testing.T) {
	silenceStdout(t)
	srv, err := trace.StartDebugServer("127.0.0.1:0", obs.Default(), trace.Default())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := run(runOpts{exp: "fig5", n: 2, seed: 1}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "obfuscade_") {
		t.Fatalf("/metrics has no obfuscade_ series:\n%s", body)
	}
}

// TestFirstNonEmpty covers the -pprof deprecated-alias resolution.
func TestFirstNonEmpty(t *testing.T) {
	if got := firstNonEmpty("", "b", "c"); got != "b" {
		t.Fatalf("firstNonEmpty = %q", got)
	}
	if got := firstNonEmpty(); got != "" {
		t.Fatalf("firstNonEmpty() = %q", got)
	}
}
