// Command paperbench regenerates every table and figure of the
// ObfusCADe paper's evaluation.
//
// Usage:
//
//	paperbench [-exp all|table1..3|fig1..fig10|polyjet|sidechannel|keyspace|matrix|ablation|bench|saturate]
//	           [-n replicates] [-seed n] [-csv] [-workers n] [-stats]
//	           [-debug-addr addr] [-trace-out file] [-manifest-out file]
//	           [-benchout file] [-cpuprofile file] [-memprofile file]
//
// -stats prints the per-stage pipeline metrics (package obs) after the
// experiments finish. -debug-addr serves the unified debug surface
// (/metrics in Prometheus text format, /metrics.json, /trace as a
// Chrome trace download, /trace.ndjson, and /debug/pprof) for the
// duration of the run; -pprof is a deprecated alias. The bind happens
// synchronously before any experiment runs — a bad address or occupied
// port aborts with exit code 4 instead of silently continuing.
//
// -trace-out writes the run's trace ring buffer as Chrome trace JSON
// (loadable in Perfetto / chrome://tracing) on exit. -cpuprofile and
// -memprofile write pprof profiles covering the whole run (the
// allocation profile is written on exit after a final GC); unlike
// -debug-addr they need no live scrape, so they are the tool of choice
// for profiling a single `-exp bench` or `-exp matrix` pass. See
// EXPERIMENTS.md ("Profiling the pipeline") for how to read them. -exp matrix runs
// the reference quality matrix and, with -manifest-out, writes one
// NDJSON provenance line per processing key. -exp bench runs the
// machine-readable benchmark pass and writes its JSON report to the
// -benchout path; CI diffs that artifact against the committed baseline
// with scripts/benchdiff.go.
//
// Exit codes: 0 success, 1 experiment failure, 2 flag-parse error,
// 3 unknown -exp name, 4 debug-server bind failure.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"obfuscade/internal/core"
	"obfuscade/internal/experiments"
	"obfuscade/internal/mech"
	"obfuscade/internal/obs"
	"obfuscade/internal/parallel"
	"obfuscade/internal/printer"
	"obfuscade/internal/report"
	"obfuscade/internal/serve"
	"obfuscade/internal/shard"
	"obfuscade/internal/trace"
)

// errUnknownExperiment distinguishes a bad -exp name (exit code 3) from
// an experiment that ran and failed (exit code 1). Flag-parse errors keep
// the flag package's exit code 2, so scripts can tell the three apart.
var errUnknownExperiment = errors.New("unknown experiment")

const (
	exitUnknownExperiment = 3
	exitDebugBind         = 4
)

// runOpts carries the flag values the experiment runner needs.
type runOpts struct {
	exp         string
	n           int
	seed        int64
	csv         bool
	manifestOut string
}

// shardChildEnv is the saturation benchmark's re-exec protocol: when
// set, this process is a shard child and must run one serve instance
// until stdin closes, writing its bound address to the named file. An
// env var rather than a flag so the same interception works in the
// test binary (whose flag set belongs to the testing package) via
// TestMain.
const shardChildEnv = "OBFUSCADE_SHARD_ADDR_FILE"

func main() {
	if addrFile := os.Getenv(shardChildEnv); addrFile != "" {
		if err := runShardChild(addrFile); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		return
	}

	exp := flag.String("exp", "all", "experiment to run (all, table1..3, fig1..fig10, polyjet, sidechannel, keyspace, matrix, stltheft, ndt, servicelife, ablation, bench, saturate)")
	n := flag.Int("n", 5, "tensile replicates per group")
	seed := flag.Int64("seed", 1, "process noise seed")
	csv := flag.Bool("csv", false, "emit tables as CSV")
	workers := flag.Int("workers", 0, "worker pool size for parallel stages (0 = all CPUs)")
	stats := flag.Bool("stats", false, "print per-stage pipeline metrics after the run")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /metrics.json, /trace and /debug/pprof on this address (e.g. localhost:6060)")
	pprofAddr := flag.String("pprof", "", "deprecated alias for -debug-addr")
	traceOut := flag.String("trace-out", "", "write the run's Chrome trace JSON to this file on exit")
	manifestOut := flag.String("manifest-out", "", "write per-key provenance manifests (NDJSON) for -exp matrix to this file")
	benchOut := flag.String("benchout", "BENCH_obfuscade.json", "output path for the -exp bench JSON report")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof allocation profile to this file on exit")
	flag.Parse()
	parallel.SetDefault(*workers)

	// os.Exit skips defers, so every exit path below must call
	// stopProfiles explicitly — a truncated CPU profile is unreadable.
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}

	if addr := firstNonEmpty(*debugAddr, *pprofAddr); addr != "" {
		srv, err := trace.StartDebugServer(addr, obs.Default(), trace.Default())
		if err != nil {
			// A debug surface the operator asked for but cannot reach is a
			// silent observability hole; fail loudly with a distinct code.
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			stopProfiles()
			os.Exit(exitDebugBind)
		}
		defer srv.Close()
		fmt.Fprintln(os.Stderr, "paperbench: debug server on", srv.URL())
	}

	if strings.EqualFold(*exp, "bench") {
		err = runBench(*benchOut, 64, *seed)
	} else if strings.EqualFold(*exp, "saturate") {
		err = runSaturateCmd()
	} else {
		err = run(runOpts{exp: *exp, n: *n, seed: *seed, csv: *csv, manifestOut: *manifestOut})
	}
	if *stats {
		obs.Default().Snapshot().WriteText(os.Stdout)
	}
	if *traceOut != "" {
		if terr := writeTrace(*traceOut); terr != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", terr)
			if err == nil {
				err = terr
			}
		}
	}
	stopProfiles()
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		if errors.Is(err, errUnknownExperiment) {
			os.Exit(exitUnknownExperiment)
		}
		os.Exit(1)
	}
}

// startProfiles begins CPU profiling (when cpuPath is set) and returns
// a stop function that finalises the CPU profile and writes the
// allocation profile (when memPath is set). The stop function must run
// on every exit path: os.Exit skips defers and a CPU profile that was
// never stopped is truncated mid-record.
func startProfiles(cpuPath, memPath string) (func(), error) {
	stopCPU := func() {}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		stopCPU = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	return func() {
		stopCPU()
		if memPath == "" {
			return
		}
		f, err := os.Create(memPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			return
		}
		// The allocs profile records cumulative allocation sites; a final
		// GC settles the in-use numbers so -sample_index=inuse_space is
		// meaningful too.
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
		}
		f.Close()
	}, nil
}

func firstNonEmpty(vals ...string) string {
	for _, v := range vals {
		if v != "" {
			return v
		}
	}
	return ""
}

// writeTrace dumps the default recorder's ring buffer as Chrome trace
// JSON for Perfetto / chrome://tracing.
func writeTrace(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.Default().WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run(opts runOpts) error {
	exp, n, seed, csv := opts.exp, opts.n, opts.seed, opts.csv
	emit := func(t *report.Table) {
		if csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.Render())
		}
	}
	want := func(name string) bool { return exp == "all" || strings.EqualFold(exp, name) }
	ran := false

	if want("table1") {
		ran = true
		t, err := experiments.Table1()
		if err != nil {
			return err
		}
		emit(t)
	}
	if want("table2") {
		ran = true
		t, groups, err := experiments.Table2(n, seed)
		if err != nil {
			return err
		}
		emit(t)
		if err := experiments.Table2ShapeCheck(groups); err != nil {
			fmt.Printf("shape check: FAILED: %v\n\n", err)
		} else {
			fmt.Printf("shape check: OK (split parts lose >=50%% failure strain, >=2x toughness)\n\n")
		}
		ext, err := experiments.Table2Extended(n, seed)
		if err != nil {
			return err
		}
		emit(ext)
	}
	if want("table3") {
		ran = true
		t, err := experiments.Table3()
		if err != nil {
			return err
		}
		emit(t)
	}
	if want("fig1") {
		ran = true
		t, err := experiments.Fig1()
		if err != nil {
			return err
		}
		emit(t)
	}
	if want("fig2") {
		ran = true
		fmt.Println(experiments.Fig2())
		emit(experiments.RiskMatrix())
	}
	if want("fig3") {
		ran = true
		t, err := experiments.Fig3()
		if err != nil {
			return err
		}
		emit(t)
	}
	if want("fig4") {
		ran = true
		series, t, err := experiments.Fig4()
		if err != nil {
			return err
		}
		fmt.Println(series.Render())
		emit(t)
	}
	if want("fig5") {
		ran = true
		t, err := experiments.Fig5()
		if err != nil {
			return err
		}
		emit(t)
	}
	if want("fig6") {
		ran = true
		t, err := experiments.Fig6()
		if err != nil {
			return err
		}
		emit(t)
	}
	if want("fig7") {
		ran = true
		t, err := experiments.Fig7()
		if err != nil {
			return err
		}
		emit(t)
	}
	if want("fig8") {
		ran = true
		t, err := experiments.Fig8()
		if err != nil {
			return err
		}
		emit(t)
	}
	if want("fig9") {
		ran = true
		t, err := experiments.Fig9()
		if err != nil {
			return err
		}
		emit(t)
		if !csv {
			field, err := experiments.Fig9Field()
			if err != nil {
				return err
			}
			fmt.Println("von Mises field around the split tip ('o' = slit, '@' = peak):")
			fmt.Println(field)
		}
	}
	if want("fig10") {
		ran = true
		t, err := experiments.Fig10()
		if err != nil {
			return err
		}
		emit(t)
		if !csv {
			hollow, dense, err := experiments.Fig10Sections()
			if err != nil {
				return err
			}
			fmt.Println("Fig. 10c analogue — sphere without material removal, cut open after wash-out:")
			fmt.Println(hollow)
			fmt.Println("Fig. 10d analogue — material removal + solid sphere, fully dense:")
			fmt.Println(dense)
		}
	}
	if want("polyjet") {
		ran = true
		t, err := experiments.PolyJetReplication()
		if err != nil {
			return err
		}
		emit(t)
	}
	if want("sidechannel") {
		ran = true
		t, err := experiments.SideChannelLeakage()
		if err != nil {
			return err
		}
		emit(t)
	}
	if want("keyspace") {
		ran = true
		t, rep, err := experiments.KeySpace()
		if err != nil {
			return err
		}
		emit(t)
		fmt.Printf("key space: %d keys, %d good; mean print %.2f h; expected brute force %.2f h\n\n",
			rep.TotalKeys, rep.GoodKeys, rep.MeanPrintHours, rep.ExpectedBruteForceHours)
	}
	if want("matrix") {
		ran = true
		if err := runMatrix(seed, opts.manifestOut, emit); err != nil {
			return err
		}
	}
	if want("ndt") {
		ran = true
		t, err := experiments.NDT()
		if err != nil {
			return err
		}
		emit(t)
	}
	if want("servicelife") {
		ran = true
		t, err := experiments.ServiceLife()
		if err != nil {
			return err
		}
		emit(t)
	}
	if want("stltheft") {
		ran = true
		t, err := experiments.STLTheft()
		if err != nil {
			return err
		}
		emit(t)
	}
	if want("ablation") {
		ran = true
		t, err := experiments.AblationHealing()
		if err != nil {
			return err
		}
		emit(t)
		t2, err := experiments.AblationAmplitude()
		if err != nil {
			return err
		}
		emit(t2)
		t3, err := experiments.AblationMultiSplit()
		if err != nil {
			return err
		}
		emit(t3)
	}
	if !ran {
		return fmt.Errorf("%w %q", errUnknownExperiment, exp)
	}
	return nil
}

// runMatrix manufactures the reference protected bar under every
// processing key, renders the quality matrix, and (with -manifest-out)
// writes one NDJSON provenance line per key — the audit-trail artifact
// CI captures alongside the Chrome trace.
func runMatrix(seed int64, manifestOut string, emit func(*report.Table)) error {
	prot, err := core.NewProtectedBar("bar", false)
	if err != nil {
		return err
	}
	entries, err := core.QualityMatrix(prot, printer.DimensionElite())
	if err != nil {
		return err
	}
	emit(core.MatrixTable(entries))
	if manifestOut != "" {
		f, err := os.Create(manifestOut)
		if err != nil {
			return err
		}
		n, werr := core.WriteManifests(f, entries, seed)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Printf("wrote %d provenance manifests to %s\n\n", n, manifestOut)
	}
	return nil
}

// benchReport is the machine-readable benchmark artifact `make bench`
// writes to BENCH_obfuscade.json. scripts/benchdiff.go compares the
// matrix wall times against the committed BENCH_baseline.json.
type benchReport struct {
	Schema     int    `json:"schema"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Matrix     struct {
		Keys            int     `json:"keys"`
		SerialSeconds   float64 `json:"serial_seconds"`
		ParallelSeconds float64 `json:"parallel_seconds"`
		Workers         int     `json:"workers"`
		Speedup         float64 `json:"speedup"`
		// AllocsPerKey and BytesPerKey are the heap allocation count and
		// cumulative allocated bytes per processing key during the
		// parallel matrix run (runtime.MemStats Mallocs / TotalAlloc
		// deltas divided by the key count). Both counters are monotonic,
		// so concurrent GC cannot skew the delta. benchdiff warns when
		// allocs/key regresses more than its -alloc-tolerance.
		AllocsPerKey int64 `json:"allocs_per_key"`
		BytesPerKey  int64 `json:"bytes_per_key"`
	} `json:"matrix"`
	// Stages splits the parallel matrix wall time by pipeline stage using
	// the obs stage histograms — the denominators the memoization and
	// zero-alloc work are judged against.
	Stages struct {
		TessellateSeconds float64 `json:"tessellate_seconds"`
		VoxelSeconds      float64 `json:"voxel_seconds"`
	} `json:"stages"`
	Slicer struct {
		Layers          int64   `json:"layers"`
		LayersPerSecond float64 `json:"layers_per_second"`
		// IndexBuildSeconds is the total wall time spent building sweep
		// indices during the parallel matrix run — the serial prologue
		// the per-layer speedup is paid for with.
		IndexBuildSeconds float64 `json:"index_build_seconds"`
	} `json:"slicer"`
	Mech struct {
		Replicates          int64   `json:"replicates"`
		ReplicatesPerSecond float64 `json:"replicates_per_second"`
	} `json:"mech"`
	// NumCPU records the host's logical CPU count so benchdiff can tell
	// whether the shard-scale gate is meaningful: on a 1-CPU host two
	// shard processes cannot beat one no matter how good the router is.
	NumCPU int `json:"num_cpu"`
	Serve  struct {
		Saturation satReport `json:"saturation"`
	} `json:"serve"`
}

// Saturation benchmark shape: satKeys distinct jobs are computed cold,
// then satRequests warm (cache-hit) round trips are driven through the
// router at satConcurrency in-flight requests. Small keys + a large warm
// phase isolates the serving tier — the pipeline cost is paid once.
const (
	satKeys        = 6
	satRequests    = 400
	satConcurrency = 16
)

// satTopology is one router-over-N-shards measurement.
type satTopology struct {
	Shards       int     `json:"shards"`
	ColdSeconds  float64 `json:"cold_seconds"`
	SustainedRPS float64 `json:"sustained_rps"`
	P50Millis    float64 `json:"p50_ms"`
	P99Millis    float64 `json:"p99_ms"`
	HedgeFired   int64   `json:"hedge_fired"`
}

// satReport is the serve.saturation section of the bench artifact:
// identical load against one shard and against two, both behind the
// consistent-hash router, with every shard pinned to GOMAXPROCS=1 so
// the two-shard column reflects genuine horizontal scaling.
type satReport struct {
	Keys        int         `json:"keys"`
	Requests    int         `json:"requests"`
	Concurrency int         `json:"concurrency"`
	OneShard    satTopology `json:"one_shard"`
	TwoShard    satTopology `json:"two_shard"`
}

// runShardChild is the shardChildEnv mode: one serve instance that
// lives exactly as long as its stdin pipe. The parent saturation run
// re-execs this binary per shard with GOMAXPROCS=1 and closes the pipe
// to stop it — no signals, no PID files, no orphan risk.
func runShardChild(addrFile string) error {
	s, err := serve.Start(serve.Options{Addr: "127.0.0.1:0"})
	if err != nil {
		return err
	}
	if err := os.WriteFile(addrFile, []byte(s.Addr()+"\n"), 0o644); err != nil {
		s.Close()
		return err
	}
	io.Copy(io.Discard, os.Stdin)
	return s.Close()
}

// shardProc is a re-exec'd single-proc shard child.
type shardProc struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser
	addr  string
}

// spawnShards re-execs this binary n times in `-exp shard` mode. Each
// child is pinned to GOMAXPROCS=1 so shard count — not the scheduler —
// decides how much CPU the topology gets.
func spawnShards(n int, dir string) ([]*shardProc, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	baseEnv := make([]string, 0, len(os.Environ())+2)
	for _, kv := range os.Environ() {
		if !strings.HasPrefix(kv, "GOMAXPROCS=") && !strings.HasPrefix(kv, shardChildEnv+"=") {
			baseEnv = append(baseEnv, kv)
		}
	}
	baseEnv = append(baseEnv, "GOMAXPROCS=1")

	shards := make([]*shardProc, 0, n)
	fail := func(err error) ([]*shardProc, error) {
		stopShards(shards)
		return nil, err
	}
	for i := 0; i < n; i++ {
		addrFile := filepath.Join(dir, fmt.Sprintf("shard-%d.addr", i))
		cmd := exec.Command(exe)
		cmd.Env = append(append([]string(nil), baseEnv...), shardChildEnv+"="+addrFile)
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return fail(err)
		}
		if err := cmd.Start(); err != nil {
			return fail(err)
		}
		sp := &shardProc{cmd: cmd, stdin: stdin}
		shards = append(shards, sp)

		deadline := time.Now().Add(15 * time.Second)
		for sp.addr == "" {
			if data, err := os.ReadFile(addrFile); err == nil {
				sp.addr = strings.TrimSpace(string(data))
				break
			}
			if time.Now().After(deadline) {
				return fail(fmt.Errorf("shard %d never wrote its address file", i))
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	return shards, nil
}

// stopShards closes each child's stdin (its stop signal) and reaps it.
func stopShards(shards []*shardProc) {
	for _, sp := range shards {
		if sp == nil || sp.cmd == nil {
			continue
		}
		sp.stdin.Close()
		sp.cmd.Wait()
	}
}

func counterNow(name string) int64 {
	v, _ := obs.Default().Snapshot().Counter(name)
	return v
}

func satPost(client *http.Client, baseURL, body string) error {
	resp, err := client.Post(baseURL+"/jobs?wait=1", "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /jobs status %d", resp.StatusCode)
	}
	return nil
}

// saturateTopology boots nShards single-proc shard children behind an
// in-process router, pays the cold pipeline cost once per key, then
// measures sustained warm throughput and tail latency.
func saturateTopology(nShards int, dir string, seedBase int64) (satTopology, error) {
	top := satTopology{Shards: nShards}
	shards, err := spawnShards(nShards, dir)
	if err != nil {
		return top, err
	}
	defer stopShards(shards)

	addrs := make([]string, len(shards))
	for i, sp := range shards {
		addrs[i] = sp.addr
	}
	rt, err := shard.StartRouter(shard.RouterOptions{
		Addr:          "127.0.0.1:0",
		Shards:        addrs,
		ProbeInterval: -1, // no background probes in the measurement window
	})
	if err != nil {
		return top, err
	}
	defer rt.Close()

	client := &http.Client{Timeout: 60 * time.Second}
	bodies := make([]string, satKeys)
	for i := range bodies {
		bodies[i] = fmt.Sprintf(`{"seed": %d, "resolution": "coarse"}`, seedBase+int64(i))
	}
	hedge0 := counterNow("router.hedge.fired")

	t0 := time.Now()
	for _, b := range bodies {
		if err := satPost(client, rt.URL(), b); err != nil {
			return top, fmt.Errorf("cold pass: %w", err)
		}
	}
	top.ColdSeconds = time.Since(t0).Seconds()

	lat := make([]float64, satRequests)
	var next atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, satConcurrency)
	w0 := time.Now()
	for w := 0; w < satConcurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= satRequests {
					return
				}
				r0 := time.Now()
				if err := satPost(client, rt.URL(), bodies[i%satKeys]); err != nil {
					select {
					case errCh <- err:
					default:
					}
					return
				}
				lat[i] = time.Since(r0).Seconds() * 1000
			}
		}()
	}
	wg.Wait()
	wall := time.Since(w0).Seconds()
	select {
	case err := <-errCh:
		return top, fmt.Errorf("warm pass: %w", err)
	default:
	}
	if wall > 0 {
		top.SustainedRPS = float64(satRequests) / wall
	}
	sort.Float64s(lat)
	top.P50Millis = lat[satRequests/2]
	top.P99Millis = lat[(satRequests*99+99)/100-1]
	top.HedgeFired = counterNow("router.hedge.fired") - hedge0
	return top, nil
}

// runSaturate runs the full saturation comparison: the same load against
// a one-shard and a two-shard topology.
func runSaturate(seed int64) (satReport, error) {
	rep := satReport{Keys: satKeys, Requests: satRequests, Concurrency: satConcurrency}
	dir, err := os.MkdirTemp("", "obfuscade-saturate-")
	if err != nil {
		return rep, err
	}
	defer os.RemoveAll(dir)
	one, err := saturateTopology(1, filepath.Join(dir, "one"), seed)
	if err != nil {
		return rep, fmt.Errorf("one-shard topology: %w", err)
	}
	two, err := saturateTopology(2, filepath.Join(dir, "two"), seed)
	if err != nil {
		return rep, fmt.Errorf("two-shard topology: %w", err)
	}
	rep.OneShard, rep.TwoShard = one, two
	return rep, nil
}

// runSaturateCmd is `-exp saturate`: the saturation benchmark alone,
// printed for humans instead of embedded in the bench JSON.
func runSaturateCmd() error {
	rep, err := runSaturate(1)
	if err != nil {
		return err
	}
	fmt.Printf("saturation: %d keys, %d warm requests at concurrency %d (host CPUs: %d)\n",
		rep.Keys, rep.Requests, rep.Concurrency, runtime.NumCPU())
	for _, top := range []satTopology{rep.OneShard, rep.TwoShard} {
		fmt.Printf("  %d shard(s): cold %.2fs, sustained %.0f req/s, p50 %.2fms, p99 %.2fms, hedges %d\n",
			top.Shards, top.ColdSeconds, top.SustainedRPS, top.P50Millis, top.P99Millis, top.HedgeFired)
	}
	if rep.TwoShard.SustainedRPS > 0 && rep.OneShard.SustainedRPS > 0 {
		fmt.Printf("  shard scale: %.2fx\n", rep.TwoShard.SustainedRPS/rep.OneShard.SustainedRPS)
	}
	return nil
}

// runBench measures the serial-vs-pool quality matrix wall time and the
// layer/replicate throughput of the hot stages, writing the JSON report
// to out. Throughputs come from the obs counters, so the unit counts are
// exact rather than estimated.
func runBench(out string, replicates int, seed int64) error {
	prot, err := core.NewProtectedBar("bench-bar", false)
	if err != nil {
		return err
	}
	prof := printer.DimensionElite()
	reg := obs.Default()

	var rep benchReport
	rep.Schema = 1
	rep.GoVersion = runtime.Version()
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.Matrix.Workers = parallel.Default()

	type matrixRun struct {
		secs   float64
		layers int64
		keys   int
		allocs uint64
		bytes  uint64
	}
	matrix := func(workers int) (matrixRun, error) {
		reg.Reset()
		// Mallocs and TotalAlloc are monotonic, so the deltas are exact
		// allocation counts even with the GC running concurrently.
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		entries, err := core.QualityMatrixWorkers(prot, prof, workers)
		secs := time.Since(t0).Seconds()
		runtime.ReadMemStats(&m1)
		if err != nil {
			return matrixRun{}, err
		}
		layers, _ := reg.Snapshot().Counter("slicer.layers.sliced")
		return matrixRun{
			secs: secs, layers: layers, keys: len(entries),
			allocs: m1.Mallocs - m0.Mallocs, bytes: m1.TotalAlloc - m0.TotalAlloc,
		}, nil
	}

	serialRun, err := matrix(1)
	if err != nil {
		return fmt.Errorf("serial matrix: %w", err)
	}
	parRun, err := matrix(0)
	if err != nil {
		return fmt.Errorf("parallel matrix: %w", err)
	}
	serial, par := serialRun.secs, parRun.secs
	rep.Matrix.Keys = serialRun.keys
	rep.Matrix.SerialSeconds = serial
	rep.Matrix.ParallelSeconds = par
	if par > 0 {
		rep.Matrix.Speedup = serial / par
	}
	if parRun.keys > 0 {
		rep.Matrix.AllocsPerKey = int64(parRun.allocs) / int64(parRun.keys)
		rep.Matrix.BytesPerKey = int64(parRun.bytes) / int64(parRun.keys)
	}
	rep.Slicer.Layers = parRun.layers
	if par > 0 {
		rep.Slicer.LayersPerSecond = float64(parRun.layers) / par
	}
	// The matrix() reset scoped the registry to the parallel run, so the
	// stage histogram sums are exactly that run's stage splits: the
	// index-build serial prologue, the tessellation builds (memoized —
	// one per distinct geometry, not per key) and the voxel-domain
	// deposition/healing/support/washout block.
	snap := reg.Snapshot()
	if h, ok := snap.Stage("slicer.index.build.seconds"); ok {
		rep.Slicer.IndexBuildSeconds = h.SumSeconds
	}
	if h, ok := snap.Stage("tessellate.mesh.seconds"); ok {
		rep.Stages.TessellateSeconds = h.SumSeconds
	}
	if h, ok := snap.Stage("printer.voxel.seconds"); ok {
		rep.Stages.VoxelSeconds = h.SumSeconds
	}

	// Replicate throughput: a seam specimen group on the shared pool.
	reg.Reset()
	spec := mech.Specimen{Mat: mech.ABS(mech.XY), SeamPresent: true, SeamQuality: 0.35, Kt: 2.6}
	t0 := time.Now()
	for g := 0; g < 4; g++ {
		if _, err := mech.TestGroup(fmt.Sprintf("bench-%d", g), spec, replicates, seed+int64(g)); err != nil {
			return fmt.Errorf("replicate bench: %w", err)
		}
	}
	mechSecs := time.Since(t0).Seconds()
	reps, _ := reg.Snapshot().Counter("mech.replicates")
	rep.Mech.Replicates = reps
	if mechSecs > 0 {
		rep.Mech.ReplicatesPerSecond = float64(reps) / mechSecs
	}

	// Serving-tier saturation: router over re-exec'd single-proc shards.
	rep.NumCPU = runtime.NumCPU()
	sat, err := runSaturate(seed)
	if err != nil {
		return fmt.Errorf("saturation bench: %w", err)
	}
	rep.Serve.Saturation = sat

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("bench report written to %s (matrix %d keys: serial %.2fs, parallel %.2fs, speedup %.2fx; saturate 1->2 shards: %.0f -> %.0f req/s)\n",
		out, rep.Matrix.Keys, serial, par, rep.Matrix.Speedup,
		sat.OneShard.SustainedRPS, sat.TwoShard.SustainedRPS)
	return nil
}
