// Command paperbench regenerates every table and figure of the
// ObfusCADe paper's evaluation.
//
// Usage:
//
//	paperbench [-exp all|table1|table2|table3|fig1..fig10|polyjet|sidechannel|keyspace|ablation]
//	           [-n replicates] [-seed n] [-csv] [-workers n]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"obfuscade/internal/experiments"
	"obfuscade/internal/parallel"
	"obfuscade/internal/report"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, table1..3, fig1..fig10, polyjet, sidechannel, keyspace, stltheft, ndt, servicelife, ablation)")
	n := flag.Int("n", 5, "tensile replicates per group")
	seed := flag.Int64("seed", 1, "process noise seed")
	csv := flag.Bool("csv", false, "emit tables as CSV")
	workers := flag.Int("workers", 0, "worker pool size for parallel stages (0 = all CPUs)")
	flag.Parse()
	parallel.SetDefault(*workers)

	if err := run(*exp, *n, *seed, *csv); err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
}

func run(exp string, n int, seed int64, csv bool) error {
	emit := func(t *report.Table) {
		if csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.Render())
		}
	}
	want := func(name string) bool { return exp == "all" || strings.EqualFold(exp, name) }
	ran := false

	if want("table1") {
		ran = true
		t, err := experiments.Table1()
		if err != nil {
			return err
		}
		emit(t)
	}
	if want("table2") {
		ran = true
		t, groups, err := experiments.Table2(n, seed)
		if err != nil {
			return err
		}
		emit(t)
		if err := experiments.Table2ShapeCheck(groups); err != nil {
			fmt.Printf("shape check: FAILED: %v\n\n", err)
		} else {
			fmt.Printf("shape check: OK (split parts lose >=50%% failure strain, >=2x toughness)\n\n")
		}
		ext, err := experiments.Table2Extended(n, seed)
		if err != nil {
			return err
		}
		emit(ext)
	}
	if want("table3") {
		ran = true
		t, err := experiments.Table3()
		if err != nil {
			return err
		}
		emit(t)
	}
	if want("fig1") {
		ran = true
		t, err := experiments.Fig1()
		if err != nil {
			return err
		}
		emit(t)
	}
	if want("fig2") {
		ran = true
		fmt.Println(experiments.Fig2())
		emit(experiments.RiskMatrix())
	}
	if want("fig3") {
		ran = true
		t, err := experiments.Fig3()
		if err != nil {
			return err
		}
		emit(t)
	}
	if want("fig4") {
		ran = true
		series, t, err := experiments.Fig4()
		if err != nil {
			return err
		}
		fmt.Println(series.Render())
		emit(t)
	}
	if want("fig5") {
		ran = true
		t, err := experiments.Fig5()
		if err != nil {
			return err
		}
		emit(t)
	}
	if want("fig6") {
		ran = true
		t, err := experiments.Fig6()
		if err != nil {
			return err
		}
		emit(t)
	}
	if want("fig7") {
		ran = true
		t, err := experiments.Fig7()
		if err != nil {
			return err
		}
		emit(t)
	}
	if want("fig8") {
		ran = true
		t, err := experiments.Fig8()
		if err != nil {
			return err
		}
		emit(t)
	}
	if want("fig9") {
		ran = true
		t, err := experiments.Fig9()
		if err != nil {
			return err
		}
		emit(t)
		if !csv {
			field, err := experiments.Fig9Field()
			if err != nil {
				return err
			}
			fmt.Println("von Mises field around the split tip ('o' = slit, '@' = peak):")
			fmt.Println(field)
		}
	}
	if want("fig10") {
		ran = true
		t, err := experiments.Fig10()
		if err != nil {
			return err
		}
		emit(t)
		if !csv {
			hollow, dense, err := experiments.Fig10Sections()
			if err != nil {
				return err
			}
			fmt.Println("Fig. 10c analogue — sphere without material removal, cut open after wash-out:")
			fmt.Println(hollow)
			fmt.Println("Fig. 10d analogue — material removal + solid sphere, fully dense:")
			fmt.Println(dense)
		}
	}
	if want("polyjet") {
		ran = true
		t, err := experiments.PolyJetReplication()
		if err != nil {
			return err
		}
		emit(t)
	}
	if want("sidechannel") {
		ran = true
		t, err := experiments.SideChannelLeakage()
		if err != nil {
			return err
		}
		emit(t)
	}
	if want("keyspace") {
		ran = true
		t, rep, err := experiments.KeySpace()
		if err != nil {
			return err
		}
		emit(t)
		fmt.Printf("key space: %d keys, %d good; mean print %.2f h; expected brute force %.2f h\n\n",
			rep.TotalKeys, rep.GoodKeys, rep.MeanPrintHours, rep.ExpectedBruteForceHours)
	}
	if want("ndt") {
		ran = true
		t, err := experiments.NDT()
		if err != nil {
			return err
		}
		emit(t)
	}
	if want("servicelife") {
		ran = true
		t, err := experiments.ServiceLife()
		if err != nil {
			return err
		}
		emit(t)
	}
	if want("stltheft") {
		ran = true
		t, err := experiments.STLTheft()
		if err != nil {
			return err
		}
		emit(t)
	}
	if want("ablation") {
		ran = true
		t, err := experiments.AblationHealing()
		if err != nil {
			return err
		}
		emit(t)
		t2, err := experiments.AblationAmplitude()
		if err != nil {
			return err
		}
		emit(t2)
		t3, err := experiments.AblationMultiSplit()
		if err != nil {
			return err
		}
		emit(t3)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
