// Command paperbench regenerates every table and figure of the
// ObfusCADe paper's evaluation.
//
// Usage:
//
//	paperbench [-exp all|table1..3|fig1..fig10|polyjet|sidechannel|keyspace|matrix|ablation|bench]
//	           [-n replicates] [-seed n] [-csv] [-workers n] [-stats]
//	           [-debug-addr addr] [-trace-out file] [-manifest-out file]
//	           [-benchout file]
//
// -stats prints the per-stage pipeline metrics (package obs) after the
// experiments finish. -debug-addr serves the unified debug surface
// (/metrics in Prometheus text format, /metrics.json, /trace as a
// Chrome trace download, /trace.ndjson, and /debug/pprof) for the
// duration of the run; -pprof is a deprecated alias. The bind happens
// synchronously before any experiment runs — a bad address or occupied
// port aborts with exit code 4 instead of silently continuing.
//
// -trace-out writes the run's trace ring buffer as Chrome trace JSON
// (loadable in Perfetto / chrome://tracing) on exit. -exp matrix runs
// the reference quality matrix and, with -manifest-out, writes one
// NDJSON provenance line per processing key. -exp bench runs the
// machine-readable benchmark pass and writes its JSON report to the
// -benchout path; CI diffs that artifact against the committed baseline
// with scripts/benchdiff.go.
//
// Exit codes: 0 success, 1 experiment failure, 2 flag-parse error,
// 3 unknown -exp name, 4 debug-server bind failure.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"obfuscade/internal/core"
	"obfuscade/internal/experiments"
	"obfuscade/internal/mech"
	"obfuscade/internal/obs"
	"obfuscade/internal/parallel"
	"obfuscade/internal/printer"
	"obfuscade/internal/report"
	"obfuscade/internal/trace"
)

// errUnknownExperiment distinguishes a bad -exp name (exit code 3) from
// an experiment that ran and failed (exit code 1). Flag-parse errors keep
// the flag package's exit code 2, so scripts can tell the three apart.
var errUnknownExperiment = errors.New("unknown experiment")

const (
	exitUnknownExperiment = 3
	exitDebugBind         = 4
)

// runOpts carries the flag values the experiment runner needs.
type runOpts struct {
	exp         string
	n           int
	seed        int64
	csv         bool
	manifestOut string
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, table1..3, fig1..fig10, polyjet, sidechannel, keyspace, matrix, stltheft, ndt, servicelife, ablation, bench)")
	n := flag.Int("n", 5, "tensile replicates per group")
	seed := flag.Int64("seed", 1, "process noise seed")
	csv := flag.Bool("csv", false, "emit tables as CSV")
	workers := flag.Int("workers", 0, "worker pool size for parallel stages (0 = all CPUs)")
	stats := flag.Bool("stats", false, "print per-stage pipeline metrics after the run")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /metrics.json, /trace and /debug/pprof on this address (e.g. localhost:6060)")
	pprofAddr := flag.String("pprof", "", "deprecated alias for -debug-addr")
	traceOut := flag.String("trace-out", "", "write the run's Chrome trace JSON to this file on exit")
	manifestOut := flag.String("manifest-out", "", "write per-key provenance manifests (NDJSON) for -exp matrix to this file")
	benchOut := flag.String("benchout", "BENCH_obfuscade.json", "output path for the -exp bench JSON report")
	flag.Parse()
	parallel.SetDefault(*workers)

	if addr := firstNonEmpty(*debugAddr, *pprofAddr); addr != "" {
		srv, err := trace.StartDebugServer(addr, obs.Default(), trace.Default())
		if err != nil {
			// A debug surface the operator asked for but cannot reach is a
			// silent observability hole; fail loudly with a distinct code.
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(exitDebugBind)
		}
		defer srv.Close()
		fmt.Fprintln(os.Stderr, "paperbench: debug server on", srv.URL())
	}

	var err error
	if strings.EqualFold(*exp, "bench") {
		err = runBench(*benchOut, 64, *seed)
	} else {
		err = run(runOpts{exp: *exp, n: *n, seed: *seed, csv: *csv, manifestOut: *manifestOut})
	}
	if *stats {
		obs.Default().Snapshot().WriteText(os.Stdout)
	}
	if *traceOut != "" {
		if terr := writeTrace(*traceOut); terr != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", terr)
			if err == nil {
				err = terr
			}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		if errors.Is(err, errUnknownExperiment) {
			os.Exit(exitUnknownExperiment)
		}
		os.Exit(1)
	}
}

func firstNonEmpty(vals ...string) string {
	for _, v := range vals {
		if v != "" {
			return v
		}
	}
	return ""
}

// writeTrace dumps the default recorder's ring buffer as Chrome trace
// JSON for Perfetto / chrome://tracing.
func writeTrace(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.Default().WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run(opts runOpts) error {
	exp, n, seed, csv := opts.exp, opts.n, opts.seed, opts.csv
	emit := func(t *report.Table) {
		if csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.Render())
		}
	}
	want := func(name string) bool { return exp == "all" || strings.EqualFold(exp, name) }
	ran := false

	if want("table1") {
		ran = true
		t, err := experiments.Table1()
		if err != nil {
			return err
		}
		emit(t)
	}
	if want("table2") {
		ran = true
		t, groups, err := experiments.Table2(n, seed)
		if err != nil {
			return err
		}
		emit(t)
		if err := experiments.Table2ShapeCheck(groups); err != nil {
			fmt.Printf("shape check: FAILED: %v\n\n", err)
		} else {
			fmt.Printf("shape check: OK (split parts lose >=50%% failure strain, >=2x toughness)\n\n")
		}
		ext, err := experiments.Table2Extended(n, seed)
		if err != nil {
			return err
		}
		emit(ext)
	}
	if want("table3") {
		ran = true
		t, err := experiments.Table3()
		if err != nil {
			return err
		}
		emit(t)
	}
	if want("fig1") {
		ran = true
		t, err := experiments.Fig1()
		if err != nil {
			return err
		}
		emit(t)
	}
	if want("fig2") {
		ran = true
		fmt.Println(experiments.Fig2())
		emit(experiments.RiskMatrix())
	}
	if want("fig3") {
		ran = true
		t, err := experiments.Fig3()
		if err != nil {
			return err
		}
		emit(t)
	}
	if want("fig4") {
		ran = true
		series, t, err := experiments.Fig4()
		if err != nil {
			return err
		}
		fmt.Println(series.Render())
		emit(t)
	}
	if want("fig5") {
		ran = true
		t, err := experiments.Fig5()
		if err != nil {
			return err
		}
		emit(t)
	}
	if want("fig6") {
		ran = true
		t, err := experiments.Fig6()
		if err != nil {
			return err
		}
		emit(t)
	}
	if want("fig7") {
		ran = true
		t, err := experiments.Fig7()
		if err != nil {
			return err
		}
		emit(t)
	}
	if want("fig8") {
		ran = true
		t, err := experiments.Fig8()
		if err != nil {
			return err
		}
		emit(t)
	}
	if want("fig9") {
		ran = true
		t, err := experiments.Fig9()
		if err != nil {
			return err
		}
		emit(t)
		if !csv {
			field, err := experiments.Fig9Field()
			if err != nil {
				return err
			}
			fmt.Println("von Mises field around the split tip ('o' = slit, '@' = peak):")
			fmt.Println(field)
		}
	}
	if want("fig10") {
		ran = true
		t, err := experiments.Fig10()
		if err != nil {
			return err
		}
		emit(t)
		if !csv {
			hollow, dense, err := experiments.Fig10Sections()
			if err != nil {
				return err
			}
			fmt.Println("Fig. 10c analogue — sphere without material removal, cut open after wash-out:")
			fmt.Println(hollow)
			fmt.Println("Fig. 10d analogue — material removal + solid sphere, fully dense:")
			fmt.Println(dense)
		}
	}
	if want("polyjet") {
		ran = true
		t, err := experiments.PolyJetReplication()
		if err != nil {
			return err
		}
		emit(t)
	}
	if want("sidechannel") {
		ran = true
		t, err := experiments.SideChannelLeakage()
		if err != nil {
			return err
		}
		emit(t)
	}
	if want("keyspace") {
		ran = true
		t, rep, err := experiments.KeySpace()
		if err != nil {
			return err
		}
		emit(t)
		fmt.Printf("key space: %d keys, %d good; mean print %.2f h; expected brute force %.2f h\n\n",
			rep.TotalKeys, rep.GoodKeys, rep.MeanPrintHours, rep.ExpectedBruteForceHours)
	}
	if want("matrix") {
		ran = true
		if err := runMatrix(seed, opts.manifestOut, emit); err != nil {
			return err
		}
	}
	if want("ndt") {
		ran = true
		t, err := experiments.NDT()
		if err != nil {
			return err
		}
		emit(t)
	}
	if want("servicelife") {
		ran = true
		t, err := experiments.ServiceLife()
		if err != nil {
			return err
		}
		emit(t)
	}
	if want("stltheft") {
		ran = true
		t, err := experiments.STLTheft()
		if err != nil {
			return err
		}
		emit(t)
	}
	if want("ablation") {
		ran = true
		t, err := experiments.AblationHealing()
		if err != nil {
			return err
		}
		emit(t)
		t2, err := experiments.AblationAmplitude()
		if err != nil {
			return err
		}
		emit(t2)
		t3, err := experiments.AblationMultiSplit()
		if err != nil {
			return err
		}
		emit(t3)
	}
	if !ran {
		return fmt.Errorf("%w %q", errUnknownExperiment, exp)
	}
	return nil
}

// runMatrix manufactures the reference protected bar under every
// processing key, renders the quality matrix, and (with -manifest-out)
// writes one NDJSON provenance line per key — the audit-trail artifact
// CI captures alongside the Chrome trace.
func runMatrix(seed int64, manifestOut string, emit func(*report.Table)) error {
	prot, err := core.NewProtectedBar("bar", false)
	if err != nil {
		return err
	}
	entries, err := core.QualityMatrix(prot, printer.DimensionElite())
	if err != nil {
		return err
	}
	emit(core.MatrixTable(entries))
	if manifestOut != "" {
		f, err := os.Create(manifestOut)
		if err != nil {
			return err
		}
		n, werr := core.WriteManifests(f, entries, seed)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Printf("wrote %d provenance manifests to %s\n\n", n, manifestOut)
	}
	return nil
}

// benchReport is the machine-readable benchmark artifact `make bench`
// writes to BENCH_obfuscade.json. scripts/benchdiff.go compares the
// matrix wall times against the committed BENCH_baseline.json.
type benchReport struct {
	Schema     int    `json:"schema"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Matrix     struct {
		Keys            int     `json:"keys"`
		SerialSeconds   float64 `json:"serial_seconds"`
		ParallelSeconds float64 `json:"parallel_seconds"`
		Workers         int     `json:"workers"`
		Speedup         float64 `json:"speedup"`
	} `json:"matrix"`
	Slicer struct {
		Layers          int64   `json:"layers"`
		LayersPerSecond float64 `json:"layers_per_second"`
		// IndexBuildSeconds is the total wall time spent building sweep
		// indices during the parallel matrix run — the serial prologue
		// the per-layer speedup is paid for with.
		IndexBuildSeconds float64 `json:"index_build_seconds"`
	} `json:"slicer"`
	Mech struct {
		Replicates          int64   `json:"replicates"`
		ReplicatesPerSecond float64 `json:"replicates_per_second"`
	} `json:"mech"`
}

// runBench measures the serial-vs-pool quality matrix wall time and the
// layer/replicate throughput of the hot stages, writing the JSON report
// to out. Throughputs come from the obs counters, so the unit counts are
// exact rather than estimated.
func runBench(out string, replicates int, seed int64) error {
	prot, err := core.NewProtectedBar("bench-bar", false)
	if err != nil {
		return err
	}
	prof := printer.DimensionElite()
	reg := obs.Default()

	var rep benchReport
	rep.Schema = 1
	rep.GoVersion = runtime.Version()
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.Matrix.Workers = parallel.Default()

	matrix := func(workers int) (float64, int64, int, error) {
		reg.Reset()
		t0 := time.Now()
		entries, err := core.QualityMatrixWorkers(prot, prof, workers)
		secs := time.Since(t0).Seconds()
		if err != nil {
			return 0, 0, 0, err
		}
		layers, _ := reg.Snapshot().Counter("slicer.layers.sliced")
		return secs, layers, len(entries), nil
	}

	serial, _, keys, err := matrix(1)
	if err != nil {
		return fmt.Errorf("serial matrix: %w", err)
	}
	par, layers, _, err := matrix(0)
	if err != nil {
		return fmt.Errorf("parallel matrix: %w", err)
	}
	rep.Matrix.Keys = keys
	rep.Matrix.SerialSeconds = serial
	rep.Matrix.ParallelSeconds = par
	if par > 0 {
		rep.Matrix.Speedup = serial / par
	}
	rep.Slicer.Layers = layers
	if par > 0 {
		rep.Slicer.LayersPerSecond = float64(layers) / par
	}
	// The matrix() reset scoped the registry to the parallel run, so the
	// index-build histogram sum is exactly that run's serial prologue.
	if h, ok := reg.Snapshot().Stage("slicer.index.build.seconds"); ok {
		rep.Slicer.IndexBuildSeconds = h.SumSeconds
	}

	// Replicate throughput: a seam specimen group on the shared pool.
	reg.Reset()
	spec := mech.Specimen{Mat: mech.ABS(mech.XY), SeamPresent: true, SeamQuality: 0.35, Kt: 2.6}
	t0 := time.Now()
	for g := 0; g < 4; g++ {
		if _, err := mech.TestGroup(fmt.Sprintf("bench-%d", g), spec, replicates, seed+int64(g)); err != nil {
			return fmt.Errorf("replicate bench: %w", err)
		}
	}
	mechSecs := time.Since(t0).Seconds()
	reps, _ := reg.Snapshot().Counter("mech.replicates")
	rep.Mech.Replicates = reps
	if mechSecs > 0 {
		rep.Mech.ReplicatesPerSecond = float64(reps) / mechSecs
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("bench report written to %s (matrix %d keys: serial %.2fs, parallel %.2fs, speedup %.2fx)\n",
		out, rep.Matrix.Keys, serial, par, rep.Matrix.Speedup)
	return nil
}
