package main

import "testing"

func TestRunSingleExperiments(t *testing.T) {
	// The fast experiments, one by one; the slow ones (table2, polyjet)
	// are covered by the experiments package tests and the benchmarks.
	for _, exp := range []string{"table1", "fig2", "fig5", "fig6", "fig9"} {
		if err := run(exp, 2, 1, false); err != nil {
			t.Errorf("run(%s): %v", exp, err)
		}
	}
}

func TestRunCSV(t *testing.T) {
	if err := run("fig5", 2, 1, true); err != nil {
		t.Errorf("run csv: %v", err)
	}
}

func TestRunUnknown(t *testing.T) {
	if err := run("nope", 2, 1, false); err == nil {
		t.Error("expected error for unknown experiment")
	}
}
