package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestRunSingleExperiments(t *testing.T) {
	// The fast experiments, one by one; the slow ones (table2, polyjet)
	// are covered by the experiments package tests and the benchmarks.
	for _, exp := range []string{"table1", "fig2", "fig5", "fig6", "fig9"} {
		if err := run(runOpts{exp: exp, n: 2, seed: 1}); err != nil {
			t.Errorf("run(%s): %v", exp, err)
		}
	}
}

func TestRunCSV(t *testing.T) {
	if err := run(runOpts{exp: "fig5", n: 2, seed: 1, csv: true}); err != nil {
		t.Errorf("run csv: %v", err)
	}
}

func TestRunUnknown(t *testing.T) {
	err := run(runOpts{exp: "nope", n: 2, seed: 1})
	if err == nil {
		t.Fatal("expected error for unknown experiment")
	}
	// The unknown-experiment error must stay identifiable so main can exit
	// with the dedicated code (3), distinguishable from flag-parse errors
	// (2) and experiment failures (1).
	if !errors.Is(err, errUnknownExperiment) {
		t.Errorf("error %v does not wrap errUnknownExperiment", err)
	}
}

func TestKnownExperimentErrorIsNotUnknown(t *testing.T) {
	// A run that executed (successfully or not) must never be classified
	// as an unknown experiment.
	if err := run(runOpts{exp: "fig5", n: 2, seed: 1}); errors.Is(err, errUnknownExperiment) {
		t.Errorf("fig5 misclassified as unknown experiment: %v", err)
	}
}

func TestRunBenchJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := runBench(out, 4, 1); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("bench report is not valid JSON: %v", err)
	}
	if rep.Schema != 1 {
		t.Errorf("schema = %d", rep.Schema)
	}
	if rep.Matrix.Keys != 6 {
		t.Errorf("matrix keys = %d, want 6", rep.Matrix.Keys)
	}
	if rep.Matrix.SerialSeconds <= 0 || rep.Matrix.ParallelSeconds <= 0 {
		t.Errorf("non-positive wall times: serial %g, parallel %g",
			rep.Matrix.SerialSeconds, rep.Matrix.ParallelSeconds)
	}
	if rep.Slicer.Layers <= 0 || rep.Slicer.LayersPerSecond <= 0 {
		t.Errorf("slicer throughput missing: %d layers, %g layers/s",
			rep.Slicer.Layers, rep.Slicer.LayersPerSecond)
	}
	if rep.Slicer.IndexBuildSeconds <= 0 {
		t.Errorf("index build seconds = %g, want > 0", rep.Slicer.IndexBuildSeconds)
	}
	if rep.Mech.Replicates != 16 {
		t.Errorf("replicates = %d, want 4 groups x 4", rep.Mech.Replicates)
	}
	if rep.Mech.ReplicatesPerSecond <= 0 {
		t.Errorf("replicates/s = %g", rep.Mech.ReplicatesPerSecond)
	}
}
