package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestMain intercepts the saturation benchmark's re-exec protocol: when
// runBench spawns shard children via os.Executable(), that executable is
// the *test binary*, so the child mode must be handled here before the
// testing framework takes over.
func TestMain(m *testing.M) {
	if addrFile := os.Getenv(shardChildEnv); addrFile != "" {
		if err := runShardChild(addrFile); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		return
	}
	os.Exit(m.Run())
}

func TestRunSingleExperiments(t *testing.T) {
	// The fast experiments, one by one; the slow ones (table2, polyjet)
	// are covered by the experiments package tests and the benchmarks.
	for _, exp := range []string{"table1", "fig2", "fig5", "fig6", "fig9"} {
		if err := run(runOpts{exp: exp, n: 2, seed: 1}); err != nil {
			t.Errorf("run(%s): %v", exp, err)
		}
	}
}

func TestRunCSV(t *testing.T) {
	if err := run(runOpts{exp: "fig5", n: 2, seed: 1, csv: true}); err != nil {
		t.Errorf("run csv: %v", err)
	}
}

func TestRunUnknown(t *testing.T) {
	err := run(runOpts{exp: "nope", n: 2, seed: 1})
	if err == nil {
		t.Fatal("expected error for unknown experiment")
	}
	// The unknown-experiment error must stay identifiable so main can exit
	// with the dedicated code (3), distinguishable from flag-parse errors
	// (2) and experiment failures (1).
	if !errors.Is(err, errUnknownExperiment) {
		t.Errorf("error %v does not wrap errUnknownExperiment", err)
	}
}

func TestKnownExperimentErrorIsNotUnknown(t *testing.T) {
	// A run that executed (successfully or not) must never be classified
	// as an unknown experiment.
	if err := run(runOpts{exp: "fig5", n: 2, seed: 1}); errors.Is(err, errUnknownExperiment) {
		t.Errorf("fig5 misclassified as unknown experiment: %v", err)
	}
}

func TestRunBenchJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := runBench(out, 4, 1); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("bench report is not valid JSON: %v", err)
	}
	if rep.Schema != 1 {
		t.Errorf("schema = %d", rep.Schema)
	}
	if rep.Matrix.Keys != 6 {
		t.Errorf("matrix keys = %d, want 6", rep.Matrix.Keys)
	}
	if rep.Matrix.SerialSeconds <= 0 || rep.Matrix.ParallelSeconds <= 0 {
		t.Errorf("non-positive wall times: serial %g, parallel %g",
			rep.Matrix.SerialSeconds, rep.Matrix.ParallelSeconds)
	}
	if rep.Slicer.Layers <= 0 || rep.Slicer.LayersPerSecond <= 0 {
		t.Errorf("slicer throughput missing: %d layers, %g layers/s",
			rep.Slicer.Layers, rep.Slicer.LayersPerSecond)
	}
	if rep.Slicer.IndexBuildSeconds <= 0 {
		t.Errorf("index build seconds = %g, want > 0", rep.Slicer.IndexBuildSeconds)
	}
	if rep.Mech.Replicates != 16 {
		t.Errorf("replicates = %d, want 4 groups x 4", rep.Mech.Replicates)
	}
	if rep.Mech.ReplicatesPerSecond <= 0 {
		t.Errorf("replicates/s = %g", rep.Mech.ReplicatesPerSecond)
	}
	if rep.NumCPU < 1 {
		t.Errorf("num_cpu = %d, want >= 1", rep.NumCPU)
	}
	sat := rep.Serve.Saturation
	if sat.Keys != satKeys || sat.Requests != satRequests || sat.Concurrency != satConcurrency {
		t.Errorf("saturation shape = %d/%d/%d, want %d/%d/%d",
			sat.Keys, sat.Requests, sat.Concurrency, satKeys, satRequests, satConcurrency)
	}
	for _, top := range []satTopology{sat.OneShard, sat.TwoShard} {
		if top.SustainedRPS <= 0 || top.ColdSeconds <= 0 {
			t.Errorf("%d-shard topology not measured: %+v", top.Shards, top)
		}
		if top.P99Millis < top.P50Millis || top.P50Millis <= 0 {
			t.Errorf("%d-shard latency quantiles inconsistent: p50 %g, p99 %g",
				top.Shards, top.P50Millis, top.P99Millis)
		}
	}
	if sat.OneShard.Shards != 1 || sat.TwoShard.Shards != 2 {
		t.Errorf("topology shard counts = %d/%d, want 1/2", sat.OneShard.Shards, sat.TwoShard.Shards)
	}
}
