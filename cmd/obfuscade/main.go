// Command obfuscade is the ObfusCADe protection CLI: it embeds security
// features in CAD models, manufactures them under chosen processing keys,
// evaluates the full quality matrix, and authenticates printed parts.
//
// Subcommands:
//
//	obfuscade protect -out design.ocad -manifest manifest.json [-with-sphere]
//	obfuscade manufacture -in design.ocad -manifest manifest.json
//	                      [-res coarse|fine|custom] [-orient xy|xz] [-restore-sphere]
//	obfuscade matrix -in design.ocad -manifest manifest.json [-keyspace] [-workers N]
//	obfuscade keyspace -in design.ocad -manifest manifest.json [-workers N]
//	obfuscade advise [-amplitudes 1.0,2.0]
//	obfuscade mark -in part.stl -out marked.stl -key partner-a
//	obfuscade trace -original part.stl -suspect leaked.stl -keys partner-a,partner-b
//	obfuscade stats [-with-sphere] [-format text|json] [-workers N]
//	obfuscade stats -cluster http://router:port [-format text|json]
//	obfuscade serve [-addr host:port] [-cache-bytes N] [-job-timeout D]
//	                [-drain-timeout D] [-manifest-out file] [-access-log file] [-workers N]
//	obfuscade serve -route-to shard1:port,shard2:port,... [-addr host:port]
//	                [-vnodes N] [-hedge-after D] [-probe-interval D] [-access-log file]
//	obfuscade trace-merge -out merged.json [name=]journal.ndjson ...
//	obfuscade sanitize -in part.stl -out clean.stl [-quantum Q] [-report report.json]
//
// sanitize destroys the stego channels of a design file (facet-order
// permutation and sub-quantum coordinate offsets): facets are re-ordered
// by a deterministic spatial sort and every coordinate re-quantized to
// the grid, so the output depends only on the geometry and any embedded
// payload is unrecoverable. The detection report scores both channels
// before and after. The serve tier exposes the same operation as POST
// /sanitize, content-addressed and cached like jobs.
//
// serve runs the long-lived obfuscation job service: POST /jobs accepts
// a JSON request (part, resolution, orientation, restore_sphere, seed,
// simulate, timeout_ms), results are content-addressed and cached so a
// repeated identical request is served byte-for-byte from memory, and
// the debug surface (/metrics, /trace, /debug/pprof) shares the same
// port. SIGINT/SIGTERM drains in-flight jobs before exiting and flushes
// provenance manifests to -manifest-out.
//
// With -route-to, serve runs no pipeline of its own: it becomes a
// consistent-hash router over the listed shard instances. Jobs are
// placed by their content-address key, batches are split per shard and
// reassembled in submission order, slow reads are hedged against the
// next ring replica after -hedge-after, and shards failing /healthz
// probes (every -probe-interval) are ejected from routing until they
// recover. 429 shed responses pass through with their Retry-After.
//
// Cluster observability: every routed request carries X-Obfuscade-Trace
// and X-Request-ID across the router→shard boundary, so per-process
// trace journals (/trace.ndjson on each node) stitch into one Chrome
// trace with trace-merge, and -access-log NDJSON lines correlate across
// tiers by request ID. The router federates its shards' metrics at
// /cluster/metrics.json and /cluster/metrics (Prometheus text, shard
// label per series, cluster sums under obfuscade_cluster_) and reports
// ring membership at /cluster/ring; `obfuscade stats -cluster <url>`
// renders the federated view from the command line.
//
// The manufacture, matrix and keyspace subcommands accept -stats to print
// the per-stage pipeline metrics (package obs) after their output, plus
// -debug-addr to serve the unified debug surface (/metrics Prometheus
// text, /metrics.json, /trace Chrome trace download, /debug/pprof) for
// the duration of the run and -trace-out to write the run's Chrome trace
// JSON on exit. manufacture and matrix accept -manifest-out to write
// per-key provenance manifests (NDJSON audit lines with key settings,
// STL SHA-256, grade, per-stage wall times). The stats subcommand runs a
// full quality-matrix pass on the reference protected bar and emits the
// metrics snapshot as JSON (-format json, the default) or human tables
// (-format text; -table is a deprecated alias).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"

	"obfuscade/internal/brep"
	"obfuscade/internal/core"
	"obfuscade/internal/mech"
	"obfuscade/internal/obs"
	"obfuscade/internal/parallel"
	"obfuscade/internal/printer"
	"obfuscade/internal/stl"
	"obfuscade/internal/tessellate"
	"obfuscade/internal/trace"
	"obfuscade/internal/watermark"
)

// workersFlag registers the shared -workers flag. Call the returned
// function after fs.Parse to install the requested pool size process-wide.
func workersFlag(fs *flag.FlagSet) func() {
	n := fs.Int("workers", 0, "worker pool size for parallel stages (0 = all CPUs)")
	return func() { parallel.SetDefault(*n) }
}

// statsFlag registers the shared -stats flag. Call the returned function
// after the subcommand's work to print the pipeline metrics it asked for.
func statsFlag(fs *flag.FlagSet) func() {
	s := fs.Bool("stats", false, "print per-stage pipeline metrics after the run")
	return func() {
		if *s {
			obs.Default().Snapshot().WriteText(os.Stdout)
		}
	}
}

// debugFlags registers the shared -debug-addr and -trace-out flags.
// start binds the debug server synchronously (a bad address fails the
// subcommand before any work runs); finish writes the trace file and
// stops the server.
func debugFlags(fs *flag.FlagSet) (start, finish func() error) {
	addr := fs.String("debug-addr", "", "serve /metrics, /metrics.json, /trace and /debug/pprof on this address")
	traceOut := fs.String("trace-out", "", "write the run's Chrome trace JSON to this file on exit")
	var srv *trace.DebugServer
	start = func() error {
		if *addr == "" {
			return nil
		}
		s, err := trace.StartDebugServer(*addr, obs.Default(), trace.Default())
		if err != nil {
			return err
		}
		srv = s
		fmt.Fprintln(os.Stderr, "obfuscade: debug server on", s.URL())
		return nil
	}
	finish = func() error {
		if srv != nil {
			defer srv.Close()
		}
		if *traceOut == "" {
			return nil
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := trace.Default().WriteChrome(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return start, finish
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "protect":
		err = cmdProtect(os.Args[2:])
	case "manufacture":
		err = cmdManufacture(os.Args[2:])
	case "matrix":
		err = cmdMatrix(os.Args[2:])
	case "keyspace":
		err = cmdKeyspace(os.Args[2:])
	case "advise":
		err = cmdAdvise(os.Args[2:])
	case "mark":
		err = cmdMark(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "trace-merge":
		err = cmdTraceMerge(os.Args[2:])
	case "sanitize":
		err = cmdSanitize(os.Args[2:])
	case "help", "-h", "--help":
		usage()
		return
	default:
		usage()
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "obfuscade:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: obfuscade <protect|manufacture|matrix|keyspace|advise|mark|trace|stats|serve|trace-merge|sanitize> [flags]
run "obfuscade <subcommand> -h" for flags`)
}

// manifestFile is the on-disk JSON form of the secret manifest.
type manifestFile struct {
	PartName      string               `json:"part_name"`
	Features      []core.FeatureRecord `json:"features"`
	KeyResolution string               `json:"key_resolution"`
	KeyOrient     string               `json:"key_orientation"`
	RestoreSphere bool                 `json:"restore_sphere"`
	CADDigest     string               `json:"cad_digest"`
}

func saveManifest(path string, m core.Manifest) error {
	mf := manifestFile{
		PartName:      m.PartName,
		Features:      m.Features,
		KeyResolution: m.Key.Resolution.Name,
		KeyOrient:     m.Key.Orientation.String(),
		RestoreSphere: m.Key.RestoreSphere,
		CADDigest:     m.CADDigest,
	}
	data, err := json.MarshalIndent(mf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o600)
}

func loadManifest(path string) (core.Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return core.Manifest{}, err
	}
	var mf manifestFile
	if err := json.Unmarshal(data, &mf); err != nil {
		return core.Manifest{}, err
	}
	res, err := tessellate.ByName(mf.KeyResolution)
	if err != nil {
		return core.Manifest{}, err
	}
	o := mech.XY
	if mf.KeyOrient == "x-z" {
		o = mech.XZ
	}
	return core.Manifest{
		PartName:  mf.PartName,
		Features:  mf.Features,
		Key:       core.Key{Resolution: res, Orientation: o, RestoreSphere: mf.RestoreSphere},
		CADDigest: mf.CADDigest,
	}, nil
}

func loadProtected(cadPath, manPath string) (*core.Protected, error) {
	data, err := os.ReadFile(cadPath)
	if err != nil {
		return nil, err
	}
	part, err := brep.Load(data)
	if err != nil {
		return nil, err
	}
	man, err := loadManifest(manPath)
	if err != nil {
		return nil, err
	}
	prot := &core.Protected{Part: part, Manifest: man}
	if err := core.VerifyDistribution(prot, data); err != nil {
		return nil, err
	}
	return prot, nil
}

func cmdProtect(args []string) error {
	fs := flag.NewFlagSet("protect", flag.ExitOnError)
	out := fs.String("out", "design.ocad", "output protected CAD file")
	manOut := fs.String("manifest", "manifest.json", "output secret manifest")
	withSphere := fs.Bool("with-sphere", false, "also embed the sphere feature")
	if err := fs.Parse(args); err != nil {
		return err
	}
	prot, err := core.NewProtectedBar("protected-bar", *withSphere)
	if err != nil {
		return err
	}
	data, err := brep.Save(prot.Part)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	if err := saveManifest(*manOut, prot.Manifest); err != nil {
		return err
	}
	fmt.Printf("protected design written to %s (%d bytes)\n", *out, len(data))
	fmt.Printf("secret manifest written to %s\n", *manOut)
	fmt.Printf("correct key: %v\n", prot.Manifest.Key)
	return nil
}

func cmdManufacture(args []string) error {
	fs := flag.NewFlagSet("manufacture", flag.ExitOnError)
	in := fs.String("in", "design.ocad", "protected CAD file")
	man := fs.String("manifest", "manifest.json", "manifest file")
	resName := fs.String("res", "coarse", "STL resolution")
	orient := fs.String("orient", "xy", "print orientation (xy, xz)")
	restore := fs.Bool("restore-sphere", false, "apply the secret CAD operation")
	authenticate := fs.Bool("authenticate", true, "authenticate the printed part")
	manifestOut := fs.String("manifest-out", "", "write this run's provenance manifest (NDJSON) to this file")
	setWorkers := workersFlag(fs)
	emitStats := statsFlag(fs)
	startDebug, finishDebug := debugFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	setWorkers()
	if err := startDebug(); err != nil {
		return err
	}
	defer emitStats()
	defer finishDebug()
	prot, err := loadProtected(*in, *man)
	if err != nil {
		return err
	}
	res, err := tessellate.ByName(*resName)
	if err != nil {
		return err
	}
	o := mech.XY
	if *orient == "xz" {
		o = mech.XZ
	}
	key := core.Key{Resolution: res, Orientation: o, RestoreSphere: *restore}
	result, err := core.Manufacture(prot, key, printer.DimensionElite())
	if err != nil {
		return err
	}
	fmt.Printf("manufactured under key %v\n", key)
	fmt.Printf("grade: %s\n", result.Quality.Grade)
	for _, n := range result.Quality.Notes {
		fmt.Printf("  - %s\n", n)
	}
	if *manifestOut != "" {
		prov := core.NewProvenance(result, nil, 0)
		data, err := json.Marshal(prov)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*manifestOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("provenance manifest written to %s\n", *manifestOut)
	}
	if *authenticate {
		rep := core.Authenticate(result.Run.Build, &prot.Manifest)
		fmt.Printf("authentication verdict: %s\n", rep.Verdict)
		for _, n := range rep.Notes {
			fmt.Printf("  - %s\n", n)
		}
	}
	return nil
}

func cmdMatrix(args []string) error {
	fs := flag.NewFlagSet("matrix", flag.ExitOnError)
	in := fs.String("in", "design.ocad", "protected CAD file")
	man := fs.String("manifest", "manifest.json", "manifest file")
	keyspace := fs.Bool("keyspace", false, "also print the key-space analysis from the same manufacture pass")
	manifestOut := fs.String("manifest-out", "", "write per-key provenance manifests (NDJSON) to this file")
	setWorkers := workersFlag(fs)
	emitStats := statsFlag(fs)
	startDebug, finishDebug := debugFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	setWorkers()
	if err := startDebug(); err != nil {
		return err
	}
	defer emitStats()
	defer finishDebug()
	prot, err := loadProtected(*in, *man)
	if err != nil {
		return err
	}
	entries, err := core.QualityMatrix(prot, printer.DimensionElite())
	// A partial matrix is still worth showing: render whatever completed
	// before reporting the aggregated per-key error.
	if len(entries) > 0 {
		fmt.Println(core.MatrixTable(entries).Render())
		good := core.GoodKeys(entries)
		fmt.Printf("%d of %d keys manufacture a good part:\n", len(good), len(entries))
		for _, k := range good {
			fmt.Printf("  %v\n", k)
		}
		if *keyspace {
			printKeySpace(core.KeySpaceFromEntries(entries))
		}
		if *manifestOut != "" {
			f, ferr := os.Create(*manifestOut)
			if ferr != nil {
				return ferr
			}
			n, werr := core.WriteManifests(f, entries, 0)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				return werr
			}
			fmt.Printf("wrote %d provenance manifests to %s\n", n, *manifestOut)
		}
	}
	return err
}

func cmdKeyspace(args []string) error {
	fs := flag.NewFlagSet("keyspace", flag.ExitOnError)
	in := fs.String("in", "design.ocad", "protected CAD file")
	man := fs.String("manifest", "manifest.json", "manifest file")
	setWorkers := workersFlag(fs)
	emitStats := statsFlag(fs)
	startDebug, finishDebug := debugFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	setWorkers()
	if err := startDebug(); err != nil {
		return err
	}
	defer emitStats()
	defer finishDebug()
	prot, err := loadProtected(*in, *man)
	if err != nil {
		return err
	}
	rep, _, err := core.AnalyzeKeySpace(prot, printer.DimensionElite())
	if rep.TotalKeys > 0 {
		printKeySpace(rep)
	}
	return err
}

func printKeySpace(rep core.KeySpaceReport) {
	fmt.Printf("key space size:           %d\n", rep.TotalKeys)
	fmt.Printf("good keys:                %d\n", rep.GoodKeys)
	if rep.FailedKeys > 0 {
		fmt.Printf("failed keys:              %d\n", rep.FailedKeys)
	}
	fmt.Printf("mean print time:          %.2f h\n", rep.MeanPrintHours)
	fmt.Printf("expected brute-force:     %.2f h of printing + testing\n", rep.ExpectedBruteForceHours)
}

// cmdStats runs a full quality-matrix pass on the reference protected bar
// and emits the pipeline metrics snapshot — JSON by default (the
// machine-readable form consumed by dashboards and the determinism tests),
// or the human tables of -stats with -format text. With -cluster it runs
// nothing locally: it asks a router's /cluster/metrics.json for the
// federated view and renders per-shard plus cluster-wide metrics.
func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	withSphere := fs.Bool("with-sphere", false, "embed the sphere feature too (doubles the key space)")
	format := fs.String("format", "json", "output format: text (human tables) or json (machine-readable snapshot)")
	table := fs.Bool("table", false, "deprecated alias for -format text")
	cluster := fs.String("cluster", "", "render the federated metrics of the router at this base URL instead of running locally")
	setWorkers := workersFlag(fs)
	startDebug, finishDebug := debugFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	setWorkers()
	if *table {
		*format = "text"
	}
	if *format != "text" && *format != "json" {
		return fmt.Errorf("stats: unknown -format %q (want text or json)", *format)
	}
	if *cluster != "" {
		return clusterStats(*cluster, *format)
	}
	if err := startDebug(); err != nil {
		return err
	}
	defer finishDebug()
	obs.Default().Reset()
	prot, err := core.NewProtectedBar("stats-bar", *withSphere)
	if err != nil {
		return err
	}
	if _, err := core.QualityMatrix(prot, printer.DimensionElite()); err != nil {
		return err
	}
	snap := obs.Default().Snapshot()
	if *format == "text" {
		snap.WriteText(os.Stdout)
		return nil
	}
	data, err := snap.JSON()
	if err != nil {
		return err
	}
	os.Stdout.Write(data)
	fmt.Println()
	return nil
}

// clusterStats fetches a router's federated metrics and renders them.
// JSON passes the router's body through verbatim; text renders each
// shard's counter table followed by the cluster-wide view, flagging a
// stale (partial) scrape loudly.
func clusterStats(baseURL, format string) error {
	url := strings.TrimRight(baseURL, "/") + "/cluster/metrics.json"
	resp, err := http.Get(url)
	if err != nil {
		return fmt.Errorf("stats: scraping %s: %w", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("stats: %s answered %d: %s", url, resp.StatusCode, body)
	}
	if format == "json" {
		os.Stdout.Write(body)
		fmt.Println()
		return nil
	}
	var view struct {
		Cluster obs.Snapshot            `json:"cluster"`
		Shards  map[string]obs.Snapshot `json:"shards"`
		Errors  map[string]string       `json:"errors"`
		Stale   bool                    `json:"stale"`
	}
	if err := json.Unmarshal(body, &view); err != nil {
		return fmt.Errorf("stats: decoding federated view: %w", err)
	}
	addrs := make([]string, 0, len(view.Shards))
	for addr := range view.Shards {
		addrs = append(addrs, addr)
	}
	sort.Strings(addrs)
	for _, addr := range addrs {
		fmt.Printf("== shard %s ==\n", addr)
		view.Shards[addr].WriteText(os.Stdout)
	}
	fmt.Printf("== cluster (%d shards) ==\n", len(view.Shards))
	view.Cluster.WriteText(os.Stdout)
	if view.Stale {
		fmt.Printf("WARNING: partial scrape, sums undercount the cluster:\n")
		for addr, msg := range view.Errors {
			fmt.Printf("  %s: %s\n", addr, msg)
		}
	}
	return nil
}

func cmdAdvise(args []string) error {
	fs := flag.NewFlagSet("advise", flag.ExitOnError)
	amps := fs.String("amplitudes", "1.0,1.5,2.0,2.5", "comma-separated candidate amplitudes (mm)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var candidates []float64
	for _, tok := range strings.Split(*amps, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			return fmt.Errorf("bad amplitude %q: %w", tok, err)
		}
		candidates = append(candidates, v)
	}
	advice, best, err := core.AdviseSplit(brep.DefaultTensileBar(), candidates, printer.DimensionElite())
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %-9s %-9s %-10s %-9s %-10s %s\n",
		"amplitude", "arc/width", "genuine", "gen-bond", "wrong", "sab-bond", "STL overhead")
	for i, a := range advice {
		mark := ""
		if i == best {
			mark = "  <-- recommended"
		}
		fmt.Printf("%-10.2f %-9.2f %-9s %-10.2f %-9s %-10.2f %.0f%%%s\n",
			a.Amplitude, a.ArcRatio, a.GenuineGrade, a.GenuineBond,
			a.WrongKeyGrade, a.SabotageBond, 100*a.STLOverhead, mark)
	}
	if best < 0 {
		return fmt.Errorf("no candidate satisfies the genuine-good / wrong-defective constraint")
	}
	return nil
}

func cmdMark(args []string) error {
	fs := flag.NewFlagSet("mark", flag.ExitOnError)
	in := fs.String("in", "", "input STL file")
	out := fs.String("out", "", "output marked STL file")
	key := fs.String("key", "", "watermark key (e.g. the partner name)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" || *key == "" {
		return fmt.Errorf("mark requires -in, -out and -key")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	m, err := stl.Unmarshal(data)
	if err != nil {
		return err
	}
	n, err := watermark.Embed(m, []byte(*key), watermark.DefaultAmplitude)
	if err != nil {
		return err
	}
	marked, err := stl.Marshal(m, stl.Binary, "marked")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, marked, 0o644); err != nil {
		return err
	}
	fmt.Printf("marked %d vertices; wrote %s (%d bytes)\n", n, *out, len(marked))
	return nil
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	original := fs.String("original", "", "the owner's unmarked STL")
	suspect := fs.String("suspect", "", "the leaked STL to analyse")
	keys := fs.String("keys", "", "comma-separated candidate keys")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *original == "" || *suspect == "" || *keys == "" {
		return fmt.Errorf("trace requires -original, -suspect and -keys")
	}
	origData, err := os.ReadFile(*original)
	if err != nil {
		return err
	}
	origMesh, err := stl.Unmarshal(origData)
	if err != nil {
		return err
	}
	susData, err := os.ReadFile(*suspect)
	if err != nil {
		return err
	}
	susMesh, err := stl.Unmarshal(susData)
	if err != nil {
		return err
	}
	found := false
	for _, key := range strings.Split(*keys, ",") {
		key = strings.TrimSpace(key)
		res, err := watermark.Detect(origMesh, susMesh, []byte(key), watermark.DefaultAmplitude)
		if err != nil {
			return err
		}
		verdict := ""
		if res.Present() {
			verdict = "  <-- LEAK SOURCE"
			found = true
		}
		fmt.Printf("%-20s correlation %5.2f (matched %d/%d)%s\n",
			key, res.Score, res.Matched, res.Total, verdict)
	}
	if !found {
		fmt.Println("no candidate key matches; the copy is unmarked or from an unknown source")
	}
	return nil
}
