package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"obfuscade/internal/trace"
)

// cmdTraceMerge is `obfuscade trace-merge`: stitch the NDJSON trace
// journals of N cluster processes (router and shards, each downloaded
// from its /trace.ndjson endpoint) into one Chrome trace with one
// process lane per journal, viewable in Perfetto or chrome://tracing.
//
//	obfuscade trace-merge -out cluster.json \
//	    router=router.ndjson shard-0=s0.ndjson shard-1=s1.ndjson
//
// Each positional argument is a journal path, optionally prefixed with
// "name=" to override the lane name; without an override the journal's
// own meta line names the lane. Timestamps are re-anchored onto one
// timeline using each journal's recorded epoch.
func cmdTraceMerge(args []string) error {
	fs := flag.NewFlagSet("trace-merge", flag.ExitOnError)
	out := fs.String("out", "cluster_trace.json", "output Chrome trace file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("trace-merge: no journals given (usage: obfuscade trace-merge -out merged.json [name=]file.ndjson ...)")
	}
	inputs := make([]trace.MergeInput, 0, fs.NArg())
	files := make([]*os.File, 0, fs.NArg())
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	for _, arg := range fs.Args() {
		name, path := "", arg
		if i := strings.IndexByte(arg, '='); i > 0 && !strings.Contains(arg[:i], "/") {
			name, path = arg[:i], arg[i+1:]
		}
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("trace-merge: %w", err)
		}
		files = append(files, f)
		inputs = append(inputs, trace.MergeInput{Process: name, R: f})
	}
	w, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := trace.WriteMergedChromeTrace(w, inputs); err != nil {
		w.Close()
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Printf("merged %d journals into %s\n", len(inputs), *out)
	return nil
}
