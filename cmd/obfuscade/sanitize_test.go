package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"obfuscade/internal/geom"
	"obfuscade/internal/mesh"
	"obfuscade/internal/stego"
	"obfuscade/internal/stl"
)

func TestSanitizeSubcommand(t *testing.T) {
	dir := t.TempDir()
	m := &mesh.Mesh{}
	for b := 0; b < 10; b++ {
		fb := float64(b)
		m.Shells = append(m.Shells, mesh.BoxShell(
			fmt.Sprintf("s%d", b), "body",
			geom.V3(fb*9, fb*5, 0), geom.V3(fb*9+5+fb/4, fb*5+3, 2+fb/8)))
	}
	emb, err := stego.Embed(m, []byte("cli secret"), stego.Options{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := stl.Marshal(emb, stl.Binary, "leaky")
	if err != nil {
		t.Fatal(err)
	}
	in := filepath.Join(dir, "leaky.stl")
	if err := os.WriteFile(in, data, 0o644); err != nil {
		t.Fatal(err)
	}

	out := filepath.Join(dir, "clean.stl")
	reportPath := filepath.Join(dir, "report.json")
	if err := cmdSanitize([]string{"-in", in, "-out", out, "-report", reportPath}); err != nil {
		t.Fatal(err)
	}
	body, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep stego.SanitizeReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Before.Suspicious() || rep.After.Suspicious() {
		t.Fatalf("report = %+v", rep)
	}

	// The CLI's output is the same canonical bytes the library produces.
	clean, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := stego.SanitizeSTL(data, stego.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(clean, want) {
		t.Fatal("CLI output differs from library sanitize")
	}

	// Re-sanitizing the clean file is the identity.
	out2 := filepath.Join(dir, "clean2.stl")
	if err := cmdSanitize([]string{"-in", out, "-out", out2}); err != nil {
		t.Fatal(err)
	}
	clean2, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(clean2, clean) {
		t.Fatal("CLI sanitize is not idempotent")
	}

	if err := cmdSanitize([]string{"-in", in}); err == nil {
		t.Error("expected error for missing -out")
	}
	garbage := filepath.Join(dir, "garbage.stl")
	if err := os.WriteFile(garbage, []byte("not an stl"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdSanitize([]string{"-in", garbage, "-out", out2}); err == nil {
		t.Error("expected error for garbage input")
	}
}
