package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"obfuscade/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestStatsTextGolden pins the text rendering of `obfuscade stats
// -format text` against a golden file. A live matrix pass has
// nondeterministic wall times, so the snapshot is a fixed literal — the
// golden guards the layout, not the measurements.
func TestStatsTextGolden(t *testing.T) {
	snap := obs.Snapshot{
		Counters: []obs.MetricValue{
			{Name: "core.matrix.keys", Value: 6},
			{Name: "slicer.layers.sliced", Value: 1200},
		},
		Gauges: []obs.MetricValue{
			{Name: "parallel.pool.busy.nanos", Value: 3_000_000_000},
			{Name: "parallel.pool.wall.nanos", Value: 4_000_000_000},
		},
		Stages: []obs.HistogramSnapshot{{
			Name:       "core.matrix",
			Count:      1,
			SumSeconds: 1.5,
			Bounds:     []float64{1, 10},
			Counts:     []int64{0, 1},
		}},
	}
	var buf bytes.Buffer
	snap.WriteText(&buf)

	path := filepath.Join("testdata", "stats_text.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("stats text rendering drifted from golden.\ngot:\n%s\nwant:\n%s",
			buf.Bytes(), want)
	}
	if !strings.Contains(buf.String(), "worker pool utilization: 75%") {
		t.Fatalf("utilization line missing:\n%s", buf.String())
	}
}

// TestStatsFormatFlag covers the -format dispatch: text matches the
// deprecated -table output, json stays the default, and unknown values
// error before any work runs.
func TestStatsFormatFlag(t *testing.T) {
	capture := func(args []string) (string, error) {
		old := os.Stdout
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		os.Stdout = w
		runErr := cmdStats(args)
		w.Close()
		os.Stdout = old
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(r); err != nil {
			t.Fatal(err)
		}
		return buf.String(), runErr
	}

	if err := cmdStats([]string{"-format", "xml"}); err == nil ||
		!strings.Contains(err.Error(), "unknown -format") {
		t.Fatalf("want unknown-format error, got %v", err)
	}

	text, err := capture([]string{"-format", "text", "-workers", "2"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "worker pool utilization") || strings.HasPrefix(strings.TrimSpace(text), "{") {
		t.Fatalf("-format text did not render tables:\n%s", text)
	}

	jsonOut, err := capture([]string{"-format", "json", "-workers", "2"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(strings.TrimSpace(jsonOut), "{") {
		t.Fatalf("-format json did not emit JSON:\n%s", jsonOut)
	}
}
