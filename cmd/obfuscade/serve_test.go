package main

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"obfuscade/internal/serve"
)

// cmdServe boots, writes its bound address, answers a job round trip,
// and drains on the injected stop signal, flushing the manifest file.
func TestCmdServeLifecycle(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	manifestOut := filepath.Join(dir, "manifests.ndjson")

	done := make(chan error, 1)
	go func() {
		done <- cmdServe([]string{
			"-addr", "127.0.0.1:0",
			"-addr-file", addrFile,
			"-manifest-out", manifestOut,
			"-drain-timeout", "30s",
		})
	}()

	var addr string
	deadline := time.After(10 * time.Second)
	for addr == "" {
		select {
		case err := <-done:
			t.Fatalf("serve exited early: %v", err)
		case <-deadline:
			t.Fatal("address file never appeared")
		case <-time.After(10 * time.Millisecond):
		}
		if data, err := os.ReadFile(addrFile); err == nil {
			addr = strings.TrimSpace(string(data))
		}
	}

	resp, err := http.Post("http://"+addr+"/jobs?wait=1", "application/json",
		strings.NewReader(`{"seed": 11}`))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		State     string `json:"state"`
		Outcome   string `json:"outcome"`
		STLSHA256 string `json:"stl_sha256"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || st.State != "done" || st.Outcome != "miss" {
		t.Fatalf("job round trip: status %d %+v", resp.StatusCode, st)
	}

	serveStop <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited with error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not drain")
	}

	data, err := os.ReadFile(manifestOut)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("manifest lines = %d, want 1:\n%s", len(lines), data)
	}
	var prov map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &prov); err != nil {
		t.Fatalf("manifest line: %v", err)
	}
	if prov["stl_sha256"] != st.STLSHA256 {
		t.Fatal("flushed manifest digest disagrees with the served job")
	}
}

// bootServe starts cmdServe in a goroutine and waits for its address
// file. The returned stop func injects the shutdown signal and waits
// for a clean exit.
func bootServe(t *testing.T, args []string) (addr string, stop func()) {
	t.Helper()
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	done := make(chan error, 1)
	go func() {
		done <- cmdServe(append([]string{"-addr", "127.0.0.1:0", "-addr-file", addrFile}, args...))
	}()
	deadline := time.After(10 * time.Second)
	for addr == "" {
		select {
		case err := <-done:
			t.Fatalf("serve exited early: %v", err)
		case <-deadline:
			t.Fatal("address file never appeared")
		case <-time.After(10 * time.Millisecond):
		}
		if data, err := os.ReadFile(addrFile); err == nil {
			addr = strings.TrimSpace(string(data))
		}
	}
	return addr, func() {
		serveStop <- os.Interrupt
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("serve exited with error: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("serve did not drain")
		}
	}
}

func submitJob(t *testing.T, addr, body string) (outcome, sha string) {
	t.Helper()
	resp, err := http.Post("http://"+addr+"/jobs?wait=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		State     string `json:"state"`
		Outcome   string `json:"outcome"`
		STLSHA256 string `json:"stl_sha256"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || st.State != "done" {
		t.Fatalf("job round trip: status %d %+v", resp.StatusCode, st)
	}
	return st.Outcome, st.STLSHA256
}

// TestCmdServeRouterMode drives `serve -route-to`: the CLI becomes a
// consistent-hash router over two in-process shards, a job round trip
// works through it, a resubmission hits the owning shard's cache, and
// the injected stop signal shuts the router down cleanly. The shards
// run via the serve API directly because the CLI's stop channel is
// process-wide — only one cmdServe instance may listen on it at a time.
func TestCmdServeRouterMode(t *testing.T) {
	s1, err := serve.Start(serve.Options{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := serve.Start(serve.Options{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	addr, stop := bootServe(t, []string{
		"-route-to", s1.Addr() + "," + s2.Addr(),
		"-probe-interval", "50ms",
	})
	outcome, sha := submitJob(t, addr, `{"seed": 21}`)
	if outcome != "miss" || sha == "" {
		t.Fatalf("routed job: outcome %q sha %q, want a computed miss", outcome, sha)
	}
	outcome2, sha2 := submitJob(t, addr, `{"seed": 21}`)
	if outcome2 != "hit" || sha2 != sha {
		t.Fatalf("routed rerun: outcome %q sha %q, want hit of %s", outcome2, sha2, sha)
	}

	var health struct {
		Healthy int `json:"healthy"`
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health.Healthy != 2 {
		t.Fatalf("router health: status %d healthy %d, want 200 with 2 shards", resp.StatusCode, health.Healthy)
	}
	stop()
}

// A -cache-dir server restarted on the same directory serves the same
// request from disk without re-running the pipeline: the CLI-level
// restart-warm contract.
func TestCmdServeRestartWarmCache(t *testing.T) {
	cacheDir := filepath.Join(t.TempDir(), "cache")
	req := `{"seed": 12, "resolution": "coarse"}`
	args := []string{"-cache-dir", cacheDir, "-max-queue", "8"}

	addr, stop := bootServe(t, args)
	outcome, sha := submitJob(t, addr, req)
	if outcome != "miss" {
		t.Fatalf("cold outcome = %s, want miss", outcome)
	}
	stop()

	addr, stop = bootServe(t, args)
	defer stop()
	outcome2, sha2 := submitJob(t, addr, req)
	if outcome2 != "disk_hit" {
		t.Fatalf("post-restart outcome = %s, want disk_hit", outcome2)
	}
	if sha2 != sha {
		t.Fatalf("digest changed across restart: %s vs %s", sha2, sha)
	}
}
