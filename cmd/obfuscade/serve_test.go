package main

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// cmdServe boots, writes its bound address, answers a job round trip,
// and drains on the injected stop signal, flushing the manifest file.
func TestCmdServeLifecycle(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	manifestOut := filepath.Join(dir, "manifests.ndjson")

	done := make(chan error, 1)
	go func() {
		done <- cmdServe([]string{
			"-addr", "127.0.0.1:0",
			"-addr-file", addrFile,
			"-manifest-out", manifestOut,
			"-drain-timeout", "30s",
		})
	}()

	var addr string
	deadline := time.After(10 * time.Second)
	for addr == "" {
		select {
		case err := <-done:
			t.Fatalf("serve exited early: %v", err)
		case <-deadline:
			t.Fatal("address file never appeared")
		case <-time.After(10 * time.Millisecond):
		}
		if data, err := os.ReadFile(addrFile); err == nil {
			addr = strings.TrimSpace(string(data))
		}
	}

	resp, err := http.Post("http://"+addr+"/jobs?wait=1", "application/json",
		strings.NewReader(`{"seed": 11}`))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		State     string `json:"state"`
		Outcome   string `json:"outcome"`
		STLSHA256 string `json:"stl_sha256"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || st.State != "done" || st.Outcome != "miss" {
		t.Fatalf("job round trip: status %d %+v", resp.StatusCode, st)
	}

	serveStop <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited with error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not drain")
	}

	data, err := os.ReadFile(manifestOut)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("manifest lines = %d, want 1:\n%s", len(lines), data)
	}
	var prov map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &prov); err != nil {
		t.Fatalf("manifest line: %v", err)
	}
	if prov["stl_sha256"] != st.STLSHA256 {
		t.Fatal("flushed manifest digest disagrees with the served job")
	}
}
