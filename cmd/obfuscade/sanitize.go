package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"obfuscade/internal/stego"
)

// cmdSanitize destroys the stego channels of a design file from the
// command line — the offline form of the service's POST /sanitize. The
// output depends only on the geometry: two files describing the same
// part sanitize to identical bytes, so the sanitized STL is safe to
// release outside the design chain.
func cmdSanitize(args []string) error {
	fs := flag.NewFlagSet("sanitize", flag.ExitOnError)
	in := fs.String("in", "", "input STL file (ASCII or binary)")
	out := fs.String("out", "", "output sanitized STL file (binary)")
	quantum := fs.Float64("quantum", stego.DefaultQuantum, "coordinate grid pitch in model units")
	reportOut := fs.String("report", "", "write the detection report JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("sanitize requires -in and -out")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	clean, rep, err := stego.SanitizeSTL(data, stego.Options{Quantum: *quantum})
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, clean, 0o644); err != nil {
		return err
	}
	fmt.Printf("sanitized %d facets; wrote %s (%d bytes)\n", rep.Triangles, *out, len(clean))
	if rep.Before.Suspicious() {
		fmt.Printf("WARNING: stego channels detected in %s (facet-order %.3f, coord-lsb %.3f)\n",
			*in, rep.Before.FacetOrderScore, rep.Before.CoordLSBScore)
	} else {
		fmt.Println("no stego channel detected; output is the canonical form")
	}
	if *reportOut != "" {
		body, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*reportOut, append(body, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("detection report written to %s\n", *reportOut)
	}
	return nil
}
