package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"obfuscade/internal/serve"
	"obfuscade/internal/shard"
)

// serveStop receives the shutdown signal. A package variable so the
// tests can stop a server without sending a real signal to the test
// process.
var serveStop = make(chan os.Signal, 1)

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for a random port)")
	cacheBytes := fs.Int64("cache-bytes", 256<<20, "result cache budget in bytes (0 = unbounded)")
	cacheDir := fs.String("cache-dir", "", "persist results to this directory so they survive restarts (empty = memory only)")
	cacheDiskBytes := fs.Int64("cache-disk-bytes", 4<<30, "disk cache budget in bytes when -cache-dir is set (0 = unbounded)")
	maxQueue := fs.Int("max-queue", 0, "shed new submissions (429) past this many in-flight jobs (0 = unbounded)")
	jobTimeout := fs.Duration("job-timeout", 2*time.Minute, "default per-job pipeline deadline (0 = none)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs")
	manifestOut := fs.String("manifest-out", "", "write provenance manifests (NDJSON) to this file on shutdown")
	accessLog := fs.String("access-log", "", "write one NDJSON access-log line per request to this file ('-' = stderr)")
	addrFile := fs.String("addr-file", "", "write the bound listen address to this file once serving")
	routeTo := fs.String("route-to", "", "run as a router over these comma-separated shard addresses instead of serving jobs locally")
	vnodes := fs.Int("vnodes", 0, "router: virtual nodes per shard on the consistent-hash ring (0 = default)")
	hedgeAfter := fs.Duration("hedge-after", 0, "router: hedge slow reads against the next ring replica after this budget (0 = default, negative = disabled)")
	probeInterval := fs.Duration("probe-interval", 0, "router: shard /healthz polling period (0 = default)")
	setWorkers := workersFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	setWorkers()

	accessW, accessFile, err := openAccessLog(*accessLog)
	if err != nil {
		return err
	}
	if accessFile != nil {
		defer accessFile.Close()
	}

	if *routeTo != "" {
		return runRouter(*routeTo, *addr, *addrFile, *vnodes, *hedgeAfter, *probeInterval, *drainTimeout, accessW)
	}

	opts := serve.Options{
		Addr:           *addr,
		CacheBytes:     *cacheBytes,
		CacheDir:       *cacheDir,
		DiskCacheBytes: *cacheDiskBytes,
		MaxQueue:       *maxQueue,
		JobTimeout:     *jobTimeout,
		AccessLog:      accessW,
	}
	var manifestFile *os.File
	if *manifestOut != "" {
		f, err := os.Create(*manifestOut)
		if err != nil {
			return err
		}
		manifestFile = f
		opts.ManifestOut = f
	}
	s, err := serve.Start(opts)
	if err != nil {
		return err
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(s.Addr()+"\n"), 0o644); err != nil {
			s.Close()
			return err
		}
	}
	fmt.Fprintln(os.Stderr, "obfuscade: serve listening on", s.URL())

	signal.Notify(serveStop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(serveStop)
	sig := <-serveStop
	fmt.Fprintf(os.Stderr, "obfuscade: %v received, draining\n", sig)

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	err = s.Shutdown(ctx)
	if manifestFile != nil {
		if cerr := manifestFile.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "obfuscade: serve drained cleanly")
	return nil
}

// openAccessLog resolves the -access-log flag: "" disables logging,
// "-" targets stderr, anything else creates (or truncates) the file.
// The *os.File is non-nil only when the caller must close it.
func openAccessLog(path string) (io.Writer, *os.File, error) {
	switch path {
	case "":
		return nil, nil, nil
	case "-":
		return os.Stderr, nil, nil
	default:
		f, err := os.Create(path)
		if err != nil {
			return nil, nil, err
		}
		return f, f, nil
	}
}

// runRouter is `obfuscade serve -route-to=...`: a thin consistent-hash
// router over N shard instances. It runs no pipeline and owns no cache;
// it places every job key on its owning shard, splits batches per
// shard, hedges slow reads, and ejects unhealthy shards off the ring.
func runRouter(routeTo, addr, addrFile string, vnodes int, hedgeAfter, probeInterval, drainTimeout time.Duration, accessLog io.Writer) error {
	var shards []string
	for _, s := range strings.Split(routeTo, ",") {
		if s = strings.TrimSpace(s); s != "" {
			shards = append(shards, s)
		}
	}
	rt, err := shard.StartRouter(shard.RouterOptions{
		Addr:          addr,
		Shards:        shards,
		VirtualNodes:  vnodes,
		HedgeAfter:    hedgeAfter,
		ProbeInterval: probeInterval,
		AccessLog:     accessLog,
	})
	if err != nil {
		return err
	}
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(rt.Addr()+"\n"), 0o644); err != nil {
			rt.Close()
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "obfuscade: routing %s across %d shards\n", rt.URL(), len(shards))

	signal.Notify(serveStop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(serveStop)
	sig := <-serveStop
	fmt.Fprintf(os.Stderr, "obfuscade: %v received, stopping router\n", sig)

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := rt.Shutdown(ctx); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "obfuscade: router stopped cleanly")
	return nil
}
