package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"

	"obfuscade/internal/core"
	"obfuscade/internal/mech"
	"obfuscade/internal/stl"
	"obfuscade/internal/tessellate"
)

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "manifest.json")
	prot, err := core.NewProtectedBar("bar", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := saveManifest(path, prot.Manifest); err != nil {
		t.Fatal(err)
	}
	got, err := loadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.PartName != prot.Manifest.PartName {
		t.Errorf("part name = %q", got.PartName)
	}
	if got.Key.Resolution.Name != prot.Manifest.Key.Resolution.Name {
		t.Errorf("key resolution = %q", got.Key.Resolution.Name)
	}
	if got.Key.Orientation != mech.XY {
		t.Errorf("key orientation = %v", got.Key.Orientation)
	}
	if !got.Key.RestoreSphere {
		t.Error("restore-sphere bit lost")
	}
	if len(got.Features) != 2 {
		t.Errorf("features = %d", len(got.Features))
	}
	if got.CADDigest != prot.Manifest.CADDigest {
		t.Error("digest lost")
	}
}

func TestLoadManifestErrors(t *testing.T) {
	if _, err := loadManifest("/nonexistent.json"); err == nil {
		t.Error("expected error for missing file")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := loadManifest(bad); err == nil {
		t.Error("expected error for malformed manifest")
	}
}

func TestProtectManufactureSubcommands(t *testing.T) {
	dir := t.TempDir()
	cad := filepath.Join(dir, "design.ocad")
	man := filepath.Join(dir, "manifest.json")

	if err := cmdProtect([]string{"-out", cad, "-manifest", man}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cad, man} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("missing %s: %v", p, err)
		}
	}
	// Manufacture under an arbitrary key; authentication runs too.
	if err := cmdManufacture([]string{
		"-in", cad, "-manifest", man, "-res", tessellate.Coarse.Name, "-orient", "xy",
	}); err != nil {
		t.Fatal(err)
	}
	// Tampered CAD file is rejected by the distribution check.
	data, err := os.ReadFile(cad)
	if err != nil {
		t.Fatal(err)
	}
	data[50] ^= 0xFF
	tampered := filepath.Join(dir, "tampered.ocad")
	if err := os.WriteFile(tampered, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdManufacture([]string{"-in", tampered, "-manifest", man}); err == nil {
		t.Error("tampered design should be rejected")
	}
}

func TestKeyspaceSubcommand(t *testing.T) {
	dir := t.TempDir()
	cad := filepath.Join(dir, "design.ocad")
	man := filepath.Join(dir, "manifest.json")
	if err := cmdProtect([]string{"-out", cad, "-manifest", man}); err != nil {
		t.Fatal(err)
	}
	// -stats rides along: the run must succeed and print the metrics
	// tables without disturbing the keyspace output.
	if err := cmdKeyspace([]string{"-in", cad, "-manifest", man, "-stats"}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsSubcommand(t *testing.T) {
	// JSON (default) and table forms both run a full matrix pass; capture
	// stdout to check the JSON parses and names the expected counters.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	statsErr := cmdStats([]string{"-workers", "2"})
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if statsErr != nil {
		t.Fatal(statsErr)
	}
	var snap struct {
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
	}
	if err := json.Unmarshal(out, &snap); err != nil {
		t.Fatalf("stats output is not valid JSON: %v", err)
	}
	found := map[string]int64{}
	for _, c := range snap.Counters {
		found[c.Name] = c.Value
	}
	if found["core.matrix.keys"] != 6 {
		t.Errorf("core.matrix.keys = %d, want 6", found["core.matrix.keys"])
	}
	if found["slicer.layers.sliced"] == 0 {
		t.Error("slicer.layers.sliced missing from stats output")
	}

	if err := cmdStats([]string{"-table"}); err != nil {
		t.Fatal(err)
	}
}

func TestAdviseSubcommand(t *testing.T) {
	if err := cmdAdvise([]string{"-amplitudes", "2.0"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdAdvise([]string{"-amplitudes", "nope"}); err == nil {
		t.Error("expected error for bad amplitude list")
	}
}

func TestMarkAndTraceSubcommands(t *testing.T) {
	dir := t.TempDir()
	// Produce an original STL.
	prot, err := core.NewProtectedBar("bar", false)
	if err != nil {
		t.Fatal(err)
	}
	part, err := core.ClonePart(prot.Part)
	if err != nil {
		t.Fatal(err)
	}
	m, err := tessellate.Tessellate(part, tessellate.Fine)
	if err != nil {
		t.Fatal(err)
	}
	data, err := stl.Marshal(m, stl.Binary, "bar")
	if err != nil {
		t.Fatal(err)
	}
	orig := filepath.Join(dir, "orig.stl")
	if err := os.WriteFile(orig, data, 0o644); err != nil {
		t.Fatal(err)
	}
	marked := filepath.Join(dir, "marked.stl")
	if err := cmdMark([]string{"-in", orig, "-out", marked, "-key", "partner-x"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdTrace([]string{"-original", orig, "-suspect", marked,
		"-keys", "partner-x,partner-y"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdMark([]string{"-in", orig}); err == nil {
		t.Error("expected error for missing flags")
	}
	if err := cmdTrace([]string{"-original", orig}); err == nil {
		t.Error("expected error for missing flags")
	}
}
