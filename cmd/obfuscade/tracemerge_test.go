package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"obfuscade/internal/obs"
	"obfuscade/internal/trace"
)

// writeJournal records a trivial span on a fresh recorder and writes
// its NDJSON journal to dir.
func writeJournal(t *testing.T, dir, name string) string {
	t.Helper()
	rec := trace.New(8)
	rec.SetProcess(name)
	_, sp := rec.StartSpan(context.Background(), "run", "work-"+name)
	sp.End()
	var buf bytes.Buffer
	if err := rec.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name+".ndjson")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// cmdTraceMerge stitches two journals into one Chrome trace with one
// lane per journal, honoring name= overrides.
func TestCmdTraceMerge(t *testing.T) {
	dir := t.TempDir()
	routerJ := writeJournal(t, dir, "router")
	shardJ := writeJournal(t, dir, "shard-0")
	out := filepath.Join(dir, "merged.json")

	err := cmdTraceMerge([]string{"-out", out, routerJ, "lane-b=" + shardJ})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var merged struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			PID  int               `json:"pid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &merged); err != nil {
		t.Fatalf("merged output is not valid JSON: %v", err)
	}
	lanes := map[string]bool{}
	for _, e := range merged.TraceEvents {
		if e.Name == "process_name" && e.Ph == "M" {
			lanes[e.Args["name"]] = true
		}
	}
	// First lane named by its meta line, second by the override.
	if !lanes["router"] || !lanes["lane-b"] {
		t.Fatalf("lanes = %v, want router and lane-b", lanes)
	}

	if err := cmdTraceMerge([]string{"-out", out}); err == nil {
		t.Fatal("trace-merge with no journals succeeded")
	}
	if err := cmdTraceMerge([]string{"-out", out, filepath.Join(dir, "missing.ndjson")}); err == nil {
		t.Fatal("trace-merge with a missing journal succeeded")
	}
}

// stats -cluster renders a router's federated view without running any
// local pipeline work.
func TestStatsClusterMode(t *testing.T) {
	var snap obs.Snapshot
	snap.Counters = []obs.MetricValue{{Name: "cache.hits", Value: 7}}
	view := map[string]any{
		"cluster": snap,
		"shards":  map[string]obs.Snapshot{"127.0.0.1:7001": snap},
		"stale":   false,
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/cluster/metrics.json" {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		json.NewEncoder(w).Encode(view)
	}))
	defer srv.Close()

	out := captureStdout(t, func() {
		if err := cmdStats([]string{"-cluster", srv.URL, "-format", "text"}); err != nil {
			t.Error(err)
		}
	})
	for _, want := range []string{"shard 127.0.0.1:7001", "cluster (1 shards)", "cache.hits"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats -cluster text output missing %q:\n%s", want, out)
		}
	}

	out = captureStdout(t, func() {
		if err := cmdStats([]string{"-cluster", srv.URL, "-format", "json"}); err != nil {
			t.Error(err)
		}
	})
	var decoded map[string]any
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("stats -cluster json output is not JSON: %v", err)
	}
	if _, ok := decoded["cluster"]; !ok {
		t.Fatalf("json output lacks cluster key: %s", out)
	}
}

// captureStdout redirects os.Stdout around fn.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string, 1)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	fn()
	w.Close()
	os.Stdout = old
	return <-done
}
