package fea

import (
	"math"
	"strings"
	"testing"
)

func TestNewModelErrors(t *testing.T) {
	if _, err := NewModel(0, 5, 1, 1, 2000, 0.3, 1); err == nil {
		t.Error("expected error for zero elements")
	}
	if _, err := NewModel(5, 5, -1, 1, 2000, 0.3, 1); err == nil {
		t.Error("expected error for negative size")
	}
	if _, err := NewModel(5, 5, 1, 1, 0, 0.3, 1); err == nil {
		t.Error("expected error for zero modulus")
	}
	if _, err := NewModel(5, 5, 1, 1, 2000, 0.6, 1); err == nil {
		t.Error("expected error for invalid Poisson ratio")
	}
	if _, err := NewModel(3000, 3000, 1, 1, 2000, 0.3, 1); err == nil {
		t.Error("expected error for oversized model")
	}
}

func TestUniformTension(t *testing.T) {
	// A pristine strip under uniform tension: stress = E * strain
	// everywhere, Kt = 1.
	const e, nu, strain = 2000.0, 0.0, 0.01
	m, err := NewModel(20, 8, 1, 1, e, nu, 3.2)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := m.SolveTension(strain)
	if err != nil {
		t.Fatal(err)
	}
	want := e * strain
	max, _, _ := sol.MaxStress()
	if math.Abs(max-want)/want > 0.02 {
		t.Errorf("max stress = %v, want ~%v", max, want)
	}
	if kt := sol.Kt(); kt > 1.05 {
		t.Errorf("pristine Kt = %v, want ~1", kt)
	}
	// All active elements near nominal stress.
	for _, vm := range sol.VonMises {
		if math.Abs(vm-want)/want > 0.05 {
			t.Fatalf("non-uniform stress %v in uniform tension", vm)
		}
	}
}

func TestPoissonContraction(t *testing.T) {
	// With nu > 0, uniaxial stretch produces lateral contraction.
	m, err := NewModel(20, 10, 1, 1, 2000, 0.35, 1)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := m.SolveTension(0.01)
	if err != nil {
		t.Fatal(err)
	}
	// Compare top-edge mid node y displacement: should be negative
	// (moving down) for the upper half.
	top := m.nodeID(10, 10)
	bottom := m.nodeID(10, 0)
	contraction := sol.U[2*top+1] - sol.U[2*bottom+1]
	if contraction >= 0 {
		t.Errorf("expected lateral contraction, got %v", contraction)
	}
}

func TestCentreHoleConcentration(t *testing.T) {
	// A strip with a small interior void concentrates stress near the
	// void; the classical value for a circular hole is ~3.
	m, err := NewModel(60, 30, 1, 1, 2000, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A 2x2 element void at the centre.
	for _, d := range [][2]int{{29, 14}, {30, 14}, {29, 15}, {30, 15}} {
		m.Deactivate(d[0], d[1])
	}
	sol, err := m.SolveTension(0.01)
	if err != nil {
		t.Fatal(err)
	}
	kt := sol.Kt()
	if kt < 1.5 || kt > 5 {
		t.Errorf("hole Kt = %v, want in [1.5, 5]", kt)
	}
	// Peak stress adjacent to the hole.
	_, ix, iy := sol.MaxStress()
	if ix < 25 || ix > 35 || iy < 10 || iy > 19 {
		t.Errorf("peak stress at (%d,%d), expected near the hole", ix, iy)
	}
}

func TestDeactivateSlit(t *testing.T) {
	m, err := NewModel(40, 20, 1, 1, 2000, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	before := m.ActiveCount()
	m.DeactivateSlit([][2]float64{{5, 0}, {20, 10}})
	if m.ActiveCount() >= before {
		t.Error("slit should deactivate elements")
	}
	if m.Active(5, 0) {
		t.Error("slit start element should be inactive")
	}
}

// The Fig. 9 reproduction: an edge slit (the unbonded spline seam)
// concentrates stress at its tip, and deeper slits concentrate more.
func TestSplitTipAnalysis(t *testing.T) {
	_, kt0, err := SplitTipAnalysis(33, 6, 3.2, 2000, 0.35, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	if kt0 > 1.1 {
		t.Errorf("no-slit Kt = %v, want ~1", kt0)
	}
	sol, kt1, err := SplitTipAnalysis(33, 6, 3.2, 2000, 0.35, 1.5, 60)
	if err != nil {
		t.Fatal(err)
	}
	if kt1 < 1.5 {
		t.Errorf("slit Kt = %v, want > 1.5", kt1)
	}
	// Failure initiates at the slit tip: peak stress near (l/2, depth).
	_, ix, iy := sol.MaxStress()
	x := float64(ix) * sol.Model.DX
	y := float64(iy) * sol.Model.DY
	if math.Abs(x-16.5) > 5 || y > 4 {
		t.Errorf("peak stress at (%.1f, %.1f), expected near slit tip (16.5, 1.5)", x, y)
	}
	// A deeper slit still concentrates stress well above nominal. (Kt is
	// not monotone in depth for shallow-angle slits under prescribed end
	// displacement: the specimen also becomes globally more compliant.)
	_, kt2, err := SplitTipAnalysis(33, 6, 3.2, 2000, 0.35, 2.5, 60)
	if err != nil {
		t.Fatal(err)
	}
	if kt2 < 1.5 || kt2 > 8 {
		t.Errorf("deeper slit Kt = %v, want in [1.5, 8]", kt2)
	}
}

func TestSplitTipAnalysisErrors(t *testing.T) {
	if _, _, err := SplitTipAnalysis(33, 6, 3.2, 2000, 0.35, 7, 60); err == nil {
		t.Error("expected error for slit deeper than width")
	}
}

func TestSolveAllInactive(t *testing.T) {
	m, _ := NewModel(2, 2, 1, 1, 2000, 0.3, 1)
	for iy := 0; iy < 2; iy++ {
		for ix := 0; ix < 2; ix++ {
			m.Deactivate(ix, iy)
		}
	}
	if _, err := m.SolveTension(0.01); err == nil {
		t.Error("expected error with no active elements")
	}
}

func TestFieldASCII(t *testing.T) {
	sol, _, err := SplitTipAnalysis(33, 6, 3.2, 2000, 0.35, 1.5, 40)
	if err != nil {
		t.Fatal(err)
	}
	art := sol.FieldASCII()
	lines := 0
	for _, c := range art {
		if c == '\n' {
			lines++
		}
	}
	if lines != sol.Model.NY {
		t.Errorf("field lines = %d, want %d", lines, sol.Model.NY)
	}
	// The slit (inactive elements) renders as 'o' and the hottest cell
	// as '@'.
	if !strings.ContainsRune(art, 'o') {
		t.Error("slit not rendered")
	}
	if !strings.ContainsRune(art, '@') {
		t.Error("peak stress not rendered")
	}
}
