// Package fea is a small plane-stress finite-element solver on structured
// quadrilateral grids. The AM process chain uses it twice (paper Fig. 1,
// Fig. 3): during design optimisation of the CAD model, and — central to
// ObfusCADe — to quantify the stress concentration at the tip of a spline
// split feature (paper Fig. 9), which drives the premature tensile failure
// of counterfeit prints.
//
// Elements are 4-node bilinear quads with 2x2 Gauss integration; the
// linear system is solved matrix-free with Jacobi-preconditioned conjugate
// gradients.
package fea

import (
	"fmt"
	"math"
)

// Model is a rectangular plane-stress domain discretised into NX x NY
// equal quad elements of size DX x DY. Elements can be deactivated to
// carve slits, notches and voids.
type Model struct {
	NX, NY int
	DX, DY float64
	// E is Young's modulus (MPa); Nu is Poisson's ratio; Thickness is
	// the out-of-plane thickness (mm).
	E, Nu, Thickness float64

	active []bool
}

// NewModel allocates a fully active model.
func NewModel(nx, ny int, dx, dy, e, nu, thickness float64) (*Model, error) {
	switch {
	case nx < 1 || ny < 1:
		return nil, fmt.Errorf("fea: need at least 1x1 elements, got %dx%d", nx, ny)
	case dx <= 0 || dy <= 0:
		return nil, fmt.Errorf("fea: element size must be positive (%g, %g)", dx, dy)
	case e <= 0 || thickness <= 0:
		return nil, fmt.Errorf("fea: modulus and thickness must be positive")
	case nu < 0 || nu >= 0.5:
		return nil, fmt.Errorf("fea: Poisson ratio %g out of [0, 0.5)", nu)
	case nx*ny > 4_000_000:
		return nil, fmt.Errorf("fea: %d elements exceed sanity limit", nx*ny)
	}
	active := make([]bool, nx*ny)
	for i := range active {
		active[i] = true
	}
	return &Model{NX: nx, NY: ny, DX: dx, DY: dy, E: e, Nu: nu, Thickness: thickness,
		active: active}, nil
}

// Width returns the domain extent in x.
func (m *Model) Width() float64 { return float64(m.NX) * m.DX }

// Height returns the domain extent in y.
func (m *Model) Height() float64 { return float64(m.NY) * m.DY }

// Active reports whether element (ix, iy) carries material.
func (m *Model) Active(ix, iy int) bool {
	if ix < 0 || iy < 0 || ix >= m.NX || iy >= m.NY {
		return false
	}
	return m.active[iy*m.NX+ix]
}

// Deactivate removes element (ix, iy) from the model.
func (m *Model) Deactivate(ix, iy int) {
	if ix >= 0 && iy >= 0 && ix < m.NX && iy < m.NY {
		m.active[iy*m.NX+ix] = false
	}
}

// ActiveCount returns the number of active elements.
func (m *Model) ActiveCount() int {
	n := 0
	for _, a := range m.active {
		if a {
			n++
		}
	}
	return n
}

// DeactivateSlit removes the elements crossed by the polyline (a crack or
// split trace given in domain coordinates).
func (m *Model) DeactivateSlit(poly [][2]float64) {
	for i := 0; i+1 < len(poly); i++ {
		a, b := poly[i], poly[i+1]
		steps := int(math.Hypot(b[0]-a[0], b[1]-a[1])/math.Min(m.DX, m.DY)*2) + 1
		for s := 0; s <= steps; s++ {
			t := float64(s) / float64(steps)
			x := a[0] + t*(b[0]-a[0])
			y := a[1] + t*(b[1]-a[1])
			m.Deactivate(int(x/m.DX), int(y/m.DY))
		}
	}
}

// nodeID returns the node index at grid position (ix, iy) with
// ix in [0, NX], iy in [0, NY].
func (m *Model) nodeID(ix, iy int) int { return iy*(m.NX+1) + ix }

// numNodes returns the node count.
func (m *Model) numNodes() int { return (m.NX + 1) * (m.NY + 1) }

// dMatrix returns the plane-stress constitutive matrix.
func (m *Model) dMatrix() [3][3]float64 {
	f := m.E / (1 - m.Nu*m.Nu)
	return [3][3]float64{
		{f, f * m.Nu, 0},
		{f * m.Nu, f, 0},
		{0, 0, f * (1 - m.Nu) / 2},
	}
}

// elementStiffness computes the 8x8 stiffness of one quad element.
func (m *Model) elementStiffness() [8][8]float64 {
	var ke [8][8]float64
	d := m.dMatrix()
	gp := [2]float64{-1 / math.Sqrt(3), 1 / math.Sqrt(3)}
	a, b := m.DX/2, m.DY/2 // Jacobian is diagonal for rectangles
	for _, xi := range gp {
		for _, eta := range gp {
			// Shape function derivatives in natural coordinates for
			// nodes (-1,-1), (1,-1), (1,1), (-1,1).
			dNxi := [4]float64{-(1 - eta) / 4, (1 - eta) / 4, (1 + eta) / 4, -(1 + eta) / 4}
			dNeta := [4]float64{-(1 - xi) / 4, -(1 + xi) / 4, (1 + xi) / 4, (1 - xi) / 4}
			var bm [3][8]float64
			for i := 0; i < 4; i++ {
				dNx := dNxi[i] / a
				dNy := dNeta[i] / b
				bm[0][2*i] = dNx
				bm[1][2*i+1] = dNy
				bm[2][2*i] = dNy
				bm[2][2*i+1] = dNx
			}
			w := a * b * m.Thickness // Gauss weight 1x1 times |J| times t
			for i := 0; i < 8; i++ {
				for j := 0; j < 8; j++ {
					var sum float64
					for p := 0; p < 3; p++ {
						for q := 0; q < 3; q++ {
							sum += bm[p][i] * d[p][q] * bm[q][j]
						}
					}
					ke[i][j] += sum * w
				}
			}
		}
	}
	return ke
}

// elementNodes returns the four node indices of element (ix, iy) in the
// local order (-1,-1), (1,-1), (1,1), (-1,1).
func (m *Model) elementNodes(ix, iy int) [4]int {
	return [4]int{
		m.nodeID(ix, iy),
		m.nodeID(ix+1, iy),
		m.nodeID(ix+1, iy+1),
		m.nodeID(ix, iy+1),
	}
}

// Solution holds a solved displacement field and derived stresses.
type Solution struct {
	Model *Model
	// U is the displacement vector, 2 dofs per node (ux, uy).
	U []float64
	// VonMises holds the per-element von Mises stress at the element
	// centre (0 for inactive elements), MPa.
	VonMises []float64
	// AppliedStrain is the nominal strain imposed on the domain.
	AppliedStrain float64
	// Iterations is the CG iteration count.
	Iterations int
}

// SolveTension stretches the domain along x by the given nominal strain:
// the left edge is held (ux = 0), the right edge is displaced by
// strain * Width, and one corner node is pinned in y. Returns the solved
// field with element stresses.
func (m *Model) SolveTension(strain float64) (*Solution, error) {
	if m.ActiveCount() == 0 {
		return nil, fmt.Errorf("fea: no active elements")
	}
	ndof := 2 * m.numNodes()
	fixed := make([]bool, ndof)
	prescribed := make([]float64, ndof)
	for iy := 0; iy <= m.NY; iy++ {
		left := m.nodeID(0, iy)
		right := m.nodeID(m.NX, iy)
		fixed[2*left] = true
		prescribed[2*left] = 0
		fixed[2*right] = true
		prescribed[2*right] = strain * m.Width()
	}
	// Pin y on the left and right bottom corners to remove rigid modes.
	fixed[2*m.nodeID(0, 0)+1] = true
	fixed[2*m.nodeID(m.NX, 0)+1] = true

	ke := m.elementStiffness()
	matvec := func(v, out []float64) {
		for i := range out {
			out[i] = 0
		}
		for iy := 0; iy < m.NY; iy++ {
			for ix := 0; ix < m.NX; ix++ {
				if !m.active[iy*m.NX+ix] {
					continue
				}
				nodes := m.elementNodes(ix, iy)
				var ue [8]float64
				for i := 0; i < 4; i++ {
					ue[2*i] = v[2*nodes[i]]
					ue[2*i+1] = v[2*nodes[i]+1]
				}
				for i := 0; i < 4; i++ {
					var fx, fy float64
					for j := 0; j < 8; j++ {
						fx += ke[2*i][j] * ue[j]
						fy += ke[2*i+1][j] * ue[j]
					}
					out[2*nodes[i]] += fx
					out[2*nodes[i]+1] += fy
				}
			}
		}
	}

	// Diagonal for Jacobi preconditioning.
	diag := make([]float64, ndof)
	for iy := 0; iy < m.NY; iy++ {
		for ix := 0; ix < m.NX; ix++ {
			if !m.active[iy*m.NX+ix] {
				continue
			}
			nodes := m.elementNodes(ix, iy)
			for i := 0; i < 4; i++ {
				diag[2*nodes[i]] += ke[2*i][2*i]
				diag[2*nodes[i]+1] += ke[2*i+1][2*i+1]
			}
		}
	}
	for i := range diag {
		if diag[i] == 0 {
			diag[i] = 1 // unattached dof
		}
	}

	// Solve K u = 0 with prescribed dofs via residual splitting:
	// start from u = prescribed, iterate on the free dofs.
	u := make([]float64, ndof)
	copy(u, prescribed)
	r := make([]float64, ndof)
	matvec(u, r)
	for i := range r {
		if fixed[i] {
			r[i] = 0
		} else {
			r[i] = -r[i]
		}
	}
	z := make([]float64, ndof)
	p := make([]float64, ndof)
	ap := make([]float64, ndof)
	for i := range r {
		z[i] = r[i] / diag[i]
	}
	copy(p, z)
	rz := dot(r, z)
	norm0 := math.Sqrt(dot(r, r))
	iters := 0
	maxIter := 20 * ndof
	sol := &Solution{Model: m, AppliedStrain: strain}
	for iter := 0; iter < maxIter; iter++ {
		if math.Sqrt(dot(r, r)) <= 1e-9*(1+norm0) {
			break
		}
		iters = iter + 1
		matvec(p, ap)
		for i := range ap {
			if fixed[i] {
				ap[i] = 0
			}
		}
		pap := dot(p, ap)
		if pap <= 0 {
			break
		}
		alpha := rz / pap
		for i := range u {
			if !fixed[i] {
				u[i] += alpha * p[i]
			}
			r[i] -= alpha * ap[i]
		}
		for i := range z {
			z[i] = r[i] / diag[i]
		}
		rzNew := dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	sol.U = u
	sol.Iterations = iters
	sol.VonMises = m.elementStresses(u)
	return sol, nil
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// elementStresses evaluates von Mises stress at each active element's
// centre.
func (m *Model) elementStresses(u []float64) []float64 {
	d := m.dMatrix()
	out := make([]float64, m.NX*m.NY)
	a, b := m.DX/2, m.DY/2
	// B matrix at the element centre (xi = eta = 0).
	dNxi := [4]float64{-0.25, 0.25, 0.25, -0.25}
	dNeta := [4]float64{-0.25, -0.25, 0.25, 0.25}
	for iy := 0; iy < m.NY; iy++ {
		for ix := 0; ix < m.NX; ix++ {
			ei := iy*m.NX + ix
			if !m.active[ei] {
				continue
			}
			nodes := m.elementNodes(ix, iy)
			var eps [3]float64 // epsx, epsy, gamma
			for i := 0; i < 4; i++ {
				ux := u[2*nodes[i]]
				uy := u[2*nodes[i]+1]
				dNx := dNxi[i] / a
				dNy := dNeta[i] / b
				eps[0] += dNx * ux
				eps[1] += dNy * uy
				eps[2] += dNy*ux + dNx*uy
			}
			var sig [3]float64
			for p := 0; p < 3; p++ {
				for q := 0; q < 3; q++ {
					sig[p] += d[p][q] * eps[q]
				}
			}
			vm := math.Sqrt(sig[0]*sig[0] + sig[1]*sig[1] - sig[0]*sig[1] + 3*sig[2]*sig[2])
			out[ei] = vm
		}
	}
	return out
}

// MaxStress returns the peak von Mises stress and the element where it
// occurs.
func (s *Solution) MaxStress() (val float64, ix, iy int) {
	for e, v := range s.VonMises {
		if v > val {
			val = v
			ix = e % s.Model.NX
			iy = e / s.Model.NX
		}
	}
	return val, ix, iy
}

// NominalStress returns the far-field stress implied by the applied
// strain on pristine material.
func (s *Solution) NominalStress() float64 {
	return s.Model.E * s.AppliedStrain
}

// Kt returns the stress concentration factor: peak von Mises over nominal
// stress.
func (s *Solution) Kt() float64 {
	nom := s.NominalStress()
	if nom == 0 {
		return 1
	}
	max, _, _ := s.MaxStress()
	kt := max / nom
	if kt < 1 {
		kt = 1
	}
	return kt
}

// FieldASCII renders the von Mises stress field as ASCII art, one
// character per element, '.' for inactive elements and increasing
// intensity through " .:-=+*#%@" — a terminal rendering of the paper's
// Fig. 9 stress contour plot.
func (s *Solution) FieldASCII() string {
	max, _, _ := s.MaxStress()
	if max <= 0 {
		max = 1
	}
	ramp := []byte(" .:-=+*#%@")
	var sb []byte
	for iy := s.Model.NY - 1; iy >= 0; iy-- {
		for ix := 0; ix < s.Model.NX; ix++ {
			if !s.Model.Active(ix, iy) {
				sb = append(sb, 'o')
				continue
			}
			v := s.VonMises[iy*s.Model.NX+ix] / max
			k := int(v * float64(len(ramp)-1))
			if k < 0 {
				k = 0
			}
			if k >= len(ramp) {
				k = len(ramp) - 1
			}
			sb = append(sb, ramp[k])
		}
		sb = append(sb, '\n')
	}
	return string(sb)
}

// SplitTipAnalysis builds the paper's Fig. 9 scenario: a gauge-section
// strip of width w and length l with an edge slit reaching depth d into
// the width at a shallow angle (the unbonded portion of a spline split
// seam), loaded in tension along x. It returns the solution and the
// stress concentration factor at the slit tip.
func SplitTipAnalysis(l, w, t, e, nu, slitDepth float64, nx int) (*Solution, float64, error) {
	if slitDepth < 0 || slitDepth >= w {
		return nil, 0, fmt.Errorf("fea: slit depth %g out of [0, %g)", slitDepth, w)
	}
	if nx <= 0 {
		nx = 120
	}
	dx := l / float64(nx)
	ny := int(math.Round(w / dx))
	if ny < 8 {
		ny = 8
	}
	dy := w / float64(ny)
	m, err := NewModel(nx, ny, dx, dy, e, nu, t)
	if err != nil {
		return nil, 0, err
	}
	if slitDepth > 0 {
		// A shallow-angle slit entering from the bottom edge at mid
		// length: (l/2 - 2d, 0) -> (l/2, d).
		m.DeactivateSlit([][2]float64{
			{l/2 - 2*slitDepth, 0},
			{l / 2, slitDepth},
		})
	}
	sol, err := m.SolveTension(0.01)
	if err != nil {
		return nil, 0, err
	}
	return sol, sol.Kt(), nil
}
