package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:   "Demo",
		Headers: []string{"name", "value"},
	}
	tbl.AddRow("alpha", "1")
	tbl.AddRow("beta-longer", "22")
	out := tbl.Render()
	if !strings.HasPrefix(out, "Demo\n") {
		t.Errorf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d, want 5", len(lines))
	}
	// Aligned columns: every line same width prefix for first column.
	if !strings.Contains(lines[1], "name") || !strings.Contains(lines[2], "---") {
		t.Errorf("header/separator malformed: %q", out)
	}
}

func TestAddRowPadsAndTruncates(t *testing.T) {
	tbl := &Table{Headers: []string{"a", "b"}}
	tbl.AddRow("only-one")
	tbl.AddRow("x", "y", "extra-dropped")
	if len(tbl.Rows[0]) != 2 || tbl.Rows[0][1] != "" {
		t.Errorf("padding failed: %v", tbl.Rows[0])
	}
	if len(tbl.Rows[1]) != 2 {
		t.Errorf("truncation failed: %v", tbl.Rows[1])
	}
}

func TestCSVQuoting(t *testing.T) {
	tbl := &Table{Headers: []string{"name", "note"}}
	tbl.AddRow("a", `contains, comma and "quote"`)
	csv := tbl.CSV()
	if !strings.Contains(csv, `"contains, comma and ""quote"""`) {
		t.Errorf("CSV quoting failed: %q", csv)
	}
	if !strings.HasPrefix(csv, "name,note\n") {
		t.Errorf("CSV header malformed: %q", csv)
	}
}

func TestSeries(t *testing.T) {
	s := &Series{Name: "fig4", XLabel: "deviation", YLabel: "gap"}
	s.Add(0.08, 0.041)
	s.Add(0.02, 0.012)
	out := s.Render()
	if !strings.Contains(out, "# fig4") || !strings.Contains(out, "0.08") {
		t.Errorf("series render = %q", out)
	}
	if len(s.X) != 2 || len(s.Y) != 2 {
		t.Error("series Add failed")
	}
}
