// Package report renders the tables and data series the benchmark harness
// regenerates from the paper (ASCII tables for terminals, CSV for
// plotting).
package report

import (
	"fmt"
	"strings"
)

// Table is a simple rectangular table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	// AlignRight marks columns to right-align when rendering (numeric
	// columns in metric tables). Nil or short slices leave the remaining
	// columns left-aligned, so existing tables render unchanged.
	AlignRight []bool
}

// AddRow appends a row, padding or truncating to the header width.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteString("\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			if i < len(t.AlignRight) && t.AlignRight[i] {
				fmt.Fprintf(&sb, "%*s", widths[i], c)
			} else {
				fmt.Fprintf(&sb, "%-*s", widths[i], c)
			}
		}
		sb.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (quoting cells that
// contain commas or quotes).
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString(",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				sb.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteString("\n")
	}
	writeRow(t.Headers)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}

// Series is a named (x, y) data series for figure regeneration.
type Series struct {
	Name   string
	XLabel string
	YLabel string
	X, Y   []float64
}

// Add appends one point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Render formats the series as aligned columns.
func (s *Series) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s\n", s.Name)
	fmt.Fprintf(&sb, "%-14s %-14s\n", s.XLabel, s.YLabel)
	for i := range s.X {
		fmt.Fprintf(&sb, "%-14.6g %-14.6g\n", s.X[i], s.Y[i])
	}
	return sb.String()
}
