package slicer

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"obfuscade/internal/brep"
	"obfuscade/internal/geom"
	"obfuscade/internal/mesh"
	"obfuscade/internal/parallel"
	"obfuscade/internal/tessellate"
)

func boxMesh(min, max geom.Vec3) *mesh.Mesh {
	return &mesh.Mesh{Shells: []mesh.Shell{mesh.BoxShell("box", "box", min, max)}}
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultOptions()
	bad.LayerHeight = 0
	if err := bad.Validate(); err == nil {
		t.Error("expected error for zero layer height")
	}
	bad = DefaultOptions()
	bad.RoadWidth = -1
	if err := bad.Validate(); err == nil {
		t.Error("expected error for negative road width")
	}
	bad = DefaultOptions()
	bad.SnapTol = 0
	if err := bad.Validate(); err == nil {
		t.Error("expected error for zero snap tolerance")
	}
}

// Parallel per-layer slicing must produce a layer stack identical to the
// serial baseline, including contour order and interface analysis.
func TestSliceParallelMatchesSerial(t *testing.T) {
	defer parallel.SetDefault(0)
	part, err := brep.NewTensileBar("bar", brep.DefaultTensileBar())
	if err != nil {
		t.Fatal(err)
	}
	s, err := brep.SplitSplineThroughGauge(brep.DefaultTensileBar(), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := brep.SplitBySpline(part, "bar", s); err != nil {
		t.Fatal(err)
	}
	m, err := tessellate.Tessellate(part, tessellate.Coarse)
	if err != nil {
		t.Fatal(err)
	}
	parallel.SetDefault(1)
	serial, err := Slice(m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	parallel.SetDefault(8)
	par, err := Slice(m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Layers) != len(par.Layers) {
		t.Fatalf("layer counts differ: %d vs %d", len(serial.Layers), len(par.Layers))
	}
	for i := range serial.Layers {
		if !reflect.DeepEqual(serial.Layers[i], par.Layers[i]) {
			t.Fatalf("layer %d differs between serial and parallel slicing", i)
		}
	}
}

func TestSliceBoxLayers(t *testing.T) {
	m := boxMesh(geom.V3(0, 0, 0), geom.V3(10, 5, 3.2))
	opts := DefaultOptions()
	res, err := Slice(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := int(math.Ceil(3.2 / opts.LayerHeight))
	if len(res.Layers) != want {
		t.Errorf("layers = %d, want %d", len(res.Layers), want)
	}
	for i := range res.Layers {
		l := &res.Layers[i]
		if len(l.Contours) != 1 {
			t.Fatalf("layer %d contours = %d, want 1", i, len(l.Contours))
		}
		c := l.Contours[0]
		if !c.Closed {
			t.Errorf("layer %d contour open", i)
		}
		if !c.Poly.IsCCW() {
			t.Errorf("layer %d outward contour should wind CCW", i)
		}
		if !geom.ApproxEq(c.Poly.Area(), 50, 1e-6) {
			t.Errorf("layer %d area = %v, want 50", i, c.Poly.Area())
		}
		if !l.Material(geom.V2(5, 2.5)) {
			t.Errorf("layer %d: interior should be material", i)
		}
		if l.Material(geom.V2(20, 2.5)) {
			t.Errorf("layer %d: exterior should not be material", i)
		}
	}
	if len(res.BodyNames) != 1 || res.BodyNames[0] != "box" {
		t.Errorf("BodyNames = %v", res.BodyNames)
	}
}

func TestSliceCavityVoid(t *testing.T) {
	outer := mesh.BoxShell("outer", "host", geom.V3(0, 0, 0), geom.V3(10, 10, 10))
	inner := mesh.BoxShell("cavity", "host", geom.V3(3, 3, 3), geom.V3(7, 7, 7))
	inner.FlipOrientation()
	inner.Orient = mesh.Inward
	m := &mesh.Mesh{Shells: []mesh.Shell{outer, inner}}
	res, err := Slice(m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	mid := &res.Layers[len(res.Layers)/2]
	if len(mid.Contours) != 2 {
		t.Fatalf("mid layer contours = %d, want 2", len(mid.Contours))
	}
	if mid.Material(geom.V2(5, 5)) {
		t.Error("cavity interior should not be material")
	}
	if !mid.Material(geom.V2(1.5, 5)) {
		t.Error("annulus should be material")
	}
	if w := mid.SignedWinding(geom.V2(5, 5)); w != 0 {
		t.Errorf("cavity winding = %d, want 0", w)
	}
}

// The slicer-level reproduction of Table 3: material decision at the
// sphere centre for the four CAD variants.
func TestSphereVariantsMaterialRule(t *testing.T) {
	size := geom.V3(25.4, 12.7, 12.7)
	c := geom.V3(12.7, 6.35, 6.35)
	const r = 3.175

	variant := func(opts brep.EmbedOpts) *Result {
		p, err := brep.NewRectPrism("prism", size)
		if err != nil {
			t.Fatal(err)
		}
		if err := brep.EmbedSphere(p, "prism", c, r, opts); err != nil {
			t.Fatal(err)
		}
		m, err := tessellate.Tessellate(p, tessellate.Fine)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Slice(m, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	cases := []struct {
		name     string
		opts     brep.EmbedOpts
		material bool // expected at sphere centre
	}{
		{"solid-no-removal", brep.EmbedOpts{}, false},
		{"surface-no-removal", brep.EmbedOpts{SurfaceBody: true}, false},
		{"solid-removal", brep.EmbedOpts{MaterialRemoval: true}, true},
		{"surface-removal", brep.EmbedOpts{MaterialRemoval: true, SurfaceBody: true}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := variant(tc.opts)
			// Find the layer crossing the sphere centre.
			var layer *Layer
			for i := range res.Layers {
				if math.Abs(res.Layers[i].Z-c.Z) <= res.Opts.LayerHeight/2 {
					layer = &res.Layers[i]
					break
				}
			}
			if layer == nil {
				t.Fatal("no layer at sphere centre")
			}
			centre := geom.V2(c.X, c.Y)
			if got := layer.Material(centre); got != tc.material {
				t.Errorf("material at centre = %t, want %t (winding %d)",
					got, tc.material, layer.SignedWinding(centre))
			}
			// The prism interior away from the sphere is always material.
			if !layer.Material(geom.V2(3, 6.35)) {
				t.Error("prism interior should be material")
			}
		})
	}
}

func buildSplitBar(t *testing.T, res tessellate.Resolution) *mesh.Mesh {
	t.Helper()
	p, err := brep.NewTensileBar("bar", brep.DefaultTensileBar())
	if err != nil {
		t.Fatal(err)
	}
	s, err := brep.SplitSplineThroughGauge(brep.DefaultTensileBar(), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := brep.SplitBySpline(p, "bar", s); err != nil {
		t.Fatal(err)
	}
	m, err := tessellate.Tessellate(p, res)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// orientXZ stands the mesh on its long edge: the x-z print orientation of
// paper Fig. 6 (rotate about X so the width becomes the build direction).
func orientXZ(m *mesh.Mesh) {
	m.Transform(geom.RotateX(math.Pi / 2))
	b := m.Bounds()
	m.Transform(geom.Translate(geom.V3(0, 0, -b.Min.Z).Add(geom.V3(0, -b.Min.Y, 0))))
}

func TestSplitBarXYAlwaysBridged(t *testing.T) {
	for _, res := range tessellate.Presets() {
		m := buildSplitBar(t, res)
		sliced, err := Slice(m, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		frac := sliced.DiscontinuousLayerFraction("bar-upper", "bar-lower")
		if frac != 0 {
			t.Errorf("%s: x-y discontinuous fraction = %g, want 0", res.Name, frac)
		}
		st := sliced.InterfaceStatsBetween("bar-upper", "bar-lower")
		if st.Layers == 0 {
			t.Fatalf("%s: no interface found", res.Name)
		}
		// Void width bounded by ~2x the chordal deviation plus probing
		// slack.
		if st.MaxWidth > 3*res.Deviation+1e-3 {
			t.Errorf("%s: max void width %g exceeds 3x deviation %g",
				res.Name, st.MaxWidth, res.Deviation)
		}
	}
}

func TestSplitBarXZDiscontinuousAllResolutions(t *testing.T) {
	for _, res := range tessellate.Presets() {
		m := buildSplitBar(t, res)
		orientXZ(m)
		sliced, err := Slice(m, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		frac := sliced.DiscontinuousLayerFraction("bar-upper", "bar-lower")
		if frac < 0.15 {
			t.Errorf("%s: x-z discontinuous fraction = %g, want >= 0.15", res.Name, frac)
		}
	}
}

func TestIntactBarNoInterfaces(t *testing.T) {
	p, err := brep.NewTensileBar("bar", brep.DefaultTensileBar())
	if err != nil {
		t.Fatal(err)
	}
	m, err := tessellate.Tessellate(p, tessellate.Coarse)
	if err != nil {
		t.Fatal(err)
	}
	sliced, err := Slice(m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range sliced.Layers {
		if len(sliced.Layers[i].Interfaces) != 0 {
			t.Fatalf("layer %d has unexpected interfaces", i)
		}
	}
}

func TestRasterizeBox(t *testing.T) {
	m := boxMesh(geom.V3(0, 0, 0), geom.V3(10, 5, 1))
	res, err := Slice(m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	l := &res.Layers[0]
	r, err := l.Rasterize(geom.V2(-1, -1), geom.V2(11, 6), 0.25, res.BodyNames)
	if err != nil {
		t.Fatal(err)
	}
	area := float64(r.CountClass(Model)) * 0.25 * 0.25
	if math.Abs(area-50) > 2 {
		t.Errorf("raster model area = %v, want ~50", area)
	}
	// Owner bit set inside.
	ix := int((5.0 - r.Origin.X) / r.Cell)
	iy := int((2.5 - r.Origin.Y) / r.Cell)
	if r.OwnerAt(ix, iy) != 1 {
		t.Errorf("owner at centre = %b, want bit 0", r.OwnerAt(ix, iy))
	}
	if r.At(0, 0) != Empty {
		t.Error("corner should be empty")
	}
}

func TestRasterizeErrors(t *testing.T) {
	m := boxMesh(geom.V3(0, 0, 0), geom.V3(1, 1, 1))
	res, _ := Slice(m, DefaultOptions())
	l := &res.Layers[0]
	if _, err := l.Rasterize(geom.V2(0, 0), geom.V2(1, 1), 0, nil); err == nil {
		t.Error("expected error for zero cell")
	}
	if _, err := l.Rasterize(geom.V2(1, 1), geom.V2(0, 0), 0.1, nil); err == nil {
		t.Error("expected error for inverted bounds")
	}
}

func TestToolpathsBox(t *testing.T) {
	m := boxMesh(geom.V3(0, 0, 0), geom.V3(10, 5, 1))
	res, err := Slice(m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	paths, err := res.Toolpaths()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != len(res.Layers) {
		t.Fatalf("toolpath layers = %d, want %d", len(paths), len(res.Layers))
	}
	total := TotalExtruded(paths)
	// Expected extrusion ~ layers x (perimeter 30 + infill area/road 50/0.5).
	expect := float64(len(paths)) * (30 + 50/res.Opts.RoadWidth)
	if total < 0.5*expect || total > 1.5*expect {
		t.Errorf("total extruded = %v, want ~%v", total, expect)
	}
	// Both infill directions should occur (alternating layers).
	sawPerimeter, sawInfill := false, false
	for _, p := range paths {
		for _, mv := range p.Moves {
			switch mv.Role {
			case Perimeter:
				sawPerimeter = true
				if mv.Body != "box" {
					t.Fatalf("perimeter body = %q", mv.Body)
				}
			case Infill:
				sawInfill = true
			}
		}
	}
	if !sawPerimeter || !sawInfill {
		t.Error("expected both perimeter and infill moves")
	}
	lo, hi := PathBounds(paths)
	if lo.X < -1 || hi.X > 11 {
		t.Errorf("path bounds out of range: %v %v", lo, hi)
	}
}

func TestMoveRoleString(t *testing.T) {
	if Travel.String() != "travel" || Support.String() != "support" {
		t.Error("MoveRole.String misbehaves")
	}
	if Perimeter.String() != "perimeter" || Infill.String() != "infill" {
		t.Error("MoveRole.String misbehaves")
	}
}

func TestSliceEmptyMesh(t *testing.T) {
	if _, err := Slice(&mesh.Mesh{}, DefaultOptions()); err == nil {
		t.Error("expected error for empty mesh")
	}
}

func TestSliceSTLRoundTripComponents(t *testing.T) {
	// After an STL round trip the body provenance is gone; edge-component
	// splitting recovers two separable bodies whose slicing matches.
	m := buildSplitBar(t, tessellate.Coarse)
	soup := mesh.Shell{Name: "import"}
	for _, s := range m.Shells {
		soup.Tris = append(soup.Tris, s.Tris...)
	}
	comps := soup.SplitEdgeComponents(1e-7)
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	m2 := &mesh.Mesh{Shells: comps}
	sliced, err := Slice(m2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(sliced.BodyNames) != 2 {
		t.Fatalf("BodyNames = %v", sliced.BodyNames)
	}
	frac := sliced.DiscontinuousLayerFraction(sliced.BodyNames[0], sliced.BodyNames[1])
	if frac != 0 {
		t.Errorf("x-y recovered-component discontinuity = %g, want 0", frac)
	}
}

// Regression: a deadline must interrupt slicing mid-stage. The layer
// tasks receive the worker context and check it between shells, so even
// a serial (1-worker) pool aborts promptly instead of slicing the whole
// stack to the stage boundary.
func TestSliceCtxCancellation(t *testing.T) {
	m := boxMesh(geom.V3(0, 0, 0), geom.V3(10, 5, 50)) // a few hundred layers
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		parallel.SetDefault(workers)
		res, err := SliceCtx(ctx, m, DefaultOptions())
		parallel.SetDefault(0)
		if err == nil {
			t.Fatalf("workers=%d: cancelled slice succeeded with %d layers",
				workers, len(res.Layers))
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}
