package slicer

import (
	"testing"

	"obfuscade/internal/geom"
	"obfuscade/internal/mesh"
)

func TestMultiplePerimeters(t *testing.T) {
	m := &mesh.Mesh{Shells: []mesh.Shell{
		mesh.BoxShell("box", "box", geom.V3(0, 0, 0), geom.V3(20, 10, 0.5)),
	}}
	lengths := map[int]float64{}
	for _, walls := range []int{1, 2, 3} {
		opts := DefaultOptions()
		opts.Perimeters = walls
		res, err := Slice(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		paths, err := res.Toolpaths()
		if err != nil {
			t.Fatal(err)
		}
		var perim float64
		for _, lt := range paths {
			for _, mv := range lt.Moves {
				if mv.Role == Perimeter {
					perim += mv.Len()
				}
			}
		}
		lengths[walls] = perim
	}
	// Each extra wall adds a loop slightly smaller than the outline
	// (60mm outline; the w-th inset loses 8*roadWidth per wall).
	if lengths[2] <= lengths[1]*1.5 || lengths[3] <= lengths[2] {
		t.Errorf("perimeter lengths should grow with wall count: %v", lengths)
	}
}

func TestPerimetersNarrowRegionFallback(t *testing.T) {
	// A sliver thinner than 2 road widths cannot hold a second wall.
	m := &mesh.Mesh{Shells: []mesh.Shell{
		mesh.BoxShell("box", "box", geom.V3(0, 0, 0), geom.V3(20, 0.8, 0.5)),
	}}
	opts := DefaultOptions()
	opts.Perimeters = 3
	res, err := Slice(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := res.Toolpaths()
	if err != nil {
		t.Fatal(err)
	}
	// Should still produce exactly one wall per contour, no panic.
	loops := 0
	for _, mv := range paths[0].Moves {
		if mv.Role == Perimeter && mv.To == paths[0].Moves[0].To {
			loops++
		}
	}
	if loops == 0 {
		t.Error("no perimeter found")
	}
}

func TestPerimetersValidation(t *testing.T) {
	opts := DefaultOptions()
	opts.Perimeters = -1
	if err := opts.Validate(); err == nil {
		t.Error("expected error for negative perimeters")
	}
	opts.Perimeters = 99
	if err := opts.Validate(); err == nil {
		t.Error("expected error for absurd perimeter count")
	}
}
