package slicer

import (
	"testing"

	"obfuscade/internal/geom"
	"obfuscade/internal/mesh"
)

func TestSparseInfillReducesExtrusion(t *testing.T) {
	m := &mesh.Mesh{Shells: []mesh.Shell{
		mesh.BoxShell("box", "box", geom.V3(0, 0, 0), geom.V3(30, 20, 1)),
	}}
	lengths := map[float64]float64{}
	for _, density := range []float64{1, 0.5, 0.25} {
		opts := DefaultOptions()
		opts.InfillDensity = density
		res, err := Slice(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		paths, err := res.Toolpaths()
		if err != nil {
			t.Fatal(err)
		}
		lengths[density] = TotalExtruded(paths)
	}
	if lengths[0.5] >= lengths[1] || lengths[0.25] >= lengths[0.5] {
		t.Errorf("extrusion should fall with density: %v", lengths)
	}
	// The interior dominates this part, so halving density should cut
	// extrusion by roughly a third or more (perimeters are unaffected).
	if lengths[0.5] > 0.8*lengths[1] {
		t.Errorf("half density saved too little: %v vs %v", lengths[0.5], lengths[1])
	}
}

func TestInfillDensityValidation(t *testing.T) {
	opts := DefaultOptions()
	opts.InfillDensity = 1.5
	if err := opts.Validate(); err == nil {
		t.Error("expected error for density > 1")
	}
	opts.InfillDensity = -0.1
	if err := opts.Validate(); err == nil {
		t.Error("expected error for negative density")
	}
	opts.InfillDensity = 0 // means solid
	if err := opts.Validate(); err != nil {
		t.Errorf("zero density should mean solid: %v", err)
	}
}
