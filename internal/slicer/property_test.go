package slicer

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"obfuscade/internal/brep"
	"obfuscade/internal/geom"
	"obfuscade/internal/mesh"
	"obfuscade/internal/parallel"
	"obfuscade/internal/tessellate"
)

// Property: every layer of a sliced axis-aligned box has exactly the
// box's footprint area, and the number of layers covers the height.
func TestSliceBoxAreaProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	opts := DefaultOptions()
	for trial := 0; trial < 25; trial++ {
		w := 1 + rng.Float64()*30
		d := 1 + rng.Float64()*20
		h := 0.5 + rng.Float64()*5
		m := &mesh.Mesh{Shells: []mesh.Shell{
			mesh.BoxShell("box", "box", geom.V3(0, 0, 0), geom.V3(w, d, h)),
		}}
		res, err := Slice(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		wantLayers := int(math.Ceil(h / opts.LayerHeight))
		if len(res.Layers) != wantLayers {
			t.Fatalf("trial %d: layers = %d, want %d", trial, len(res.Layers), wantLayers)
		}
		for li := range res.Layers {
			l := &res.Layers[li]
			var area float64
			for _, c := range l.Contours {
				if !c.Closed {
					t.Fatalf("trial %d layer %d: open contour", trial, li)
				}
				area += c.Poly.SignedArea()
			}
			// The final slice plane may land above the solid when the
			// height is not a multiple of the layer height; that layer
			// is legitimately empty.
			if li == len(res.Layers)-1 && len(l.Contours) == 0 && l.Z > h {
				continue
			}
			if math.Abs(area-w*d)/(w*d) > 1e-6 {
				t.Fatalf("trial %d layer %d: area %v, want %v", trial, li, area, w*d)
			}
		}
	}
}

// Property: slicing is invariant under in-plane translation.
func TestSliceTranslationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	opts := DefaultOptions()
	base := mesh.BoxShell("box", "box", geom.V3(0, 0, 0), geom.V3(7, 5, 2))
	ref, err := Slice(&mesh.Mesh{Shells: []mesh.Shell{base}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		dx := (rng.Float64() - 0.5) * 100
		dy := (rng.Float64() - 0.5) * 100
		m := &mesh.Mesh{Shells: []mesh.Shell{
			mesh.BoxShell("box", "box", geom.V3(dx, dy, 0), geom.V3(7+dx, 5+dy, 2)),
		}}
		moved, err := Slice(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(moved.Layers) != len(ref.Layers) {
			t.Fatalf("trial %d: layer count changed", trial)
		}
		for li := range moved.Layers {
			if len(ref.Layers[li].Contours) == 0 && len(moved.Layers[li].Contours) == 0 {
				continue
			}
			if len(ref.Layers[li].Contours) == 0 || len(moved.Layers[li].Contours) == 0 {
				t.Fatalf("trial %d layer %d: contour presence differs", trial, li)
			}
			a := ref.Layers[li].Contours[0].Poly.Area()
			b := moved.Layers[li].Contours[0].Poly.Area()
			if math.Abs(a-b) > 1e-6 {
				t.Fatalf("trial %d layer %d: area %v vs %v", trial, li, a, b)
			}
		}
	}
}

// Property: the winding-rule material decision is consistent with the
// raster classification at cell centres.
func TestRasterMatchesPointClassification(t *testing.T) {
	outer := mesh.BoxShell("outer", "host", geom.V3(0, 0, 0), geom.V3(12, 10, 4))
	inner := mesh.BoxShell("cavity", "host", geom.V3(4, 4, 1), geom.V3(8, 7, 3))
	inner.FlipOrientation()
	inner.Orient = mesh.Inward
	m := &mesh.Mesh{Shells: []mesh.Shell{outer, inner}}
	res, err := Slice(m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	mid := &res.Layers[len(res.Layers)/2]
	r, err := mid.Rasterize(geom.V2(-1, -1), geom.V2(13, 11), 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for iy := 0; iy < r.NY; iy++ {
		for ix := 0; ix < r.NX; ix++ {
			p := r.Center(ix, iy)
			want := mid.Material(p)
			got := r.At(ix, iy) == Model
			if want != got {
				t.Fatalf("cell (%d,%d) at %v: raster %t vs point %t", ix, iy, p, got, want)
			}
		}
	}
}

// randomBoxMesh builds a randomized multi-shell, multi-body mesh: a few
// solid boxes (distinct bodies), sometimes with a flipped inward cavity
// inside, sometimes overlapping each other — the configurations whose
// chaining and winding behaviour the indexed kernels must reproduce.
func randomBoxMesh(rng *rand.Rand) *mesh.Mesh {
	m := &mesh.Mesh{}
	nBodies := 1 + rng.Intn(3)
	for bi := 0; bi < nBodies; bi++ {
		body := fmt.Sprintf("body%d", bi)
		ox := rng.Float64() * 14
		oy := rng.Float64() * 10
		w := 2 + rng.Float64()*10
		d := 2 + rng.Float64()*8
		h := 0.5 + rng.Float64()*3
		min := geom.V3(ox, oy, 0)
		max := geom.V3(ox+w, oy+d, h)
		m.Shells = append(m.Shells, mesh.BoxShell(body+"-outer", body, min, max))
		if rng.Float64() < 0.5 && w > 2 && d > 2 && h > 0.8 {
			inner := mesh.BoxShell(body+"-cavity", body,
				min.Add(geom.V3(w/4, d/4, h/4)),
				max.Sub(geom.V3(w/4, d/4, h/4)))
			inner.FlipOrientation()
			inner.Orient = mesh.Inward
			m.Shells = append(m.Shells, inner)
		}
	}
	return m
}

// Property: the indexed slicer is byte-identical to the naive full-rescan
// reference on randomized multi-shell meshes, both serial and on a pool.
func TestSliceMatchesNaiveRandomMeshes(t *testing.T) {
	defer parallel.SetDefault(0)
	const baseSeed = 0x5eed_0b5f
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(parallel.SplitMix(baseSeed, trial)))
		m := randomBoxMesh(rng)
		opts := DefaultOptions()
		want, err := sliceNaive(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 8} {
			parallel.SetDefault(workers)
			got, err := Slice(m, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d (workers=%d): indexed slice differs from naive reference",
					trial, workers)
			}
		}
	}
}

// Property: the bucketed rasterizer is byte-identical to the naive
// per-row rescan on layers of randomized meshes, with and without body
// ownership tracking.
func TestRasterizeMatchesNaiveRandomMeshes(t *testing.T) {
	const baseSeed = 0x7a57e2
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(parallel.SplitMix(baseSeed, trial)))
		m := randomBoxMesh(rng)
		res, err := Slice(m, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		b := res.Bounds
		min := geom.V2(b.Min.X-1, b.Min.Y-1)
		max := geom.V2(b.Max.X+1, b.Max.Y+1)
		cell := 0.2 + rng.Float64()*0.4
		for _, li := range []int{0, len(res.Layers) / 2, len(res.Layers) - 1} {
			l := &res.Layers[li]
			for _, bodies := range [][]string{nil, res.BodyNames} {
				got, err := l.Rasterize(min, max, cell, bodies)
				if err != nil {
					t.Fatal(err)
				}
				want, err := rasterizeNaive(l, min, max, cell, bodies)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d layer %d (bodies=%v): raster differs from naive",
						trial, li, bodies)
				}
			}
		}
	}
}

// Golden: on the paper's split tensile bar, in both print orientations,
// the indexed kernels reproduce the naive reference exactly — including
// the discontinuous-layer fraction that drives Table 2.
func TestSliceMatchesNaiveSplitBarGolden(t *testing.T) {
	for _, tc := range []struct {
		name   string
		orient func(*mesh.Mesh)
	}{
		{"xy", func(*mesh.Mesh) {}},
		{"xz", orientXZ},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := buildSplitBar(t, tessellate.Coarse)
			tc.orient(m)
			opts := DefaultOptions()
			got, err := Slice(m, opts)
			if err != nil {
				t.Fatal(err)
			}
			want, err := sliceNaive(m, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatal("indexed slice differs from naive reference")
			}
			gf := got.DiscontinuousLayerFraction("bar-upper", "bar-lower")
			wf := want.DiscontinuousLayerFraction("bar-upper", "bar-lower")
			if gf != wf {
				t.Fatalf("discontinuous fraction %g != naive %g", gf, wf)
			}
		})
	}
}

// Golden: the four embedded-sphere CAD variants of Table 3 slice
// identically through the indexed and naive kernels, and the material
// decision at the sphere centre stays pinned to the table.
func TestSliceMatchesNaiveSphereVariantsGolden(t *testing.T) {
	size := geom.V3(25.4, 12.7, 12.7)
	c := geom.V3(12.7, 6.35, 6.35)
	const r = 3.175
	cases := []struct {
		name     string
		opts     brep.EmbedOpts
		material bool
	}{
		{"solid-no-removal", brep.EmbedOpts{}, false},
		{"solid-removal", brep.EmbedOpts{MaterialRemoval: true}, true},
		{"surface-removal", brep.EmbedOpts{MaterialRemoval: true, SurfaceBody: true}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := brep.NewRectPrism("prism", size)
			if err != nil {
				t.Fatal(err)
			}
			if err := brep.EmbedSphere(p, "prism", c, r, tc.opts); err != nil {
				t.Fatal(err)
			}
			m, err := tessellate.Tessellate(p, tessellate.Coarse)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Slice(m, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			want, err := sliceNaive(m, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatal("indexed slice differs from naive reference")
			}
			var layer *Layer
			for i := range got.Layers {
				if math.Abs(got.Layers[i].Z-c.Z) <= got.Opts.LayerHeight/2 {
					layer = &got.Layers[i]
					break
				}
			}
			if layer == nil {
				t.Fatal("no layer at sphere centre")
			}
			if m := layer.Material(geom.V2(c.X, c.Y)); m != tc.material {
				t.Errorf("material at centre = %t, want %t", m, tc.material)
			}
		})
	}
}
