package slicer

import (
	"math"
	"math/rand"
	"testing"

	"obfuscade/internal/geom"
	"obfuscade/internal/mesh"
)

// Property: every layer of a sliced axis-aligned box has exactly the
// box's footprint area, and the number of layers covers the height.
func TestSliceBoxAreaProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	opts := DefaultOptions()
	for trial := 0; trial < 25; trial++ {
		w := 1 + rng.Float64()*30
		d := 1 + rng.Float64()*20
		h := 0.5 + rng.Float64()*5
		m := &mesh.Mesh{Shells: []mesh.Shell{
			mesh.BoxShell("box", "box", geom.V3(0, 0, 0), geom.V3(w, d, h)),
		}}
		res, err := Slice(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		wantLayers := int(math.Ceil(h / opts.LayerHeight))
		if len(res.Layers) != wantLayers {
			t.Fatalf("trial %d: layers = %d, want %d", trial, len(res.Layers), wantLayers)
		}
		for li := range res.Layers {
			l := &res.Layers[li]
			var area float64
			for _, c := range l.Contours {
				if !c.Closed {
					t.Fatalf("trial %d layer %d: open contour", trial, li)
				}
				area += c.Poly.SignedArea()
			}
			// The final slice plane may land above the solid when the
			// height is not a multiple of the layer height; that layer
			// is legitimately empty.
			if li == len(res.Layers)-1 && len(l.Contours) == 0 && l.Z > h {
				continue
			}
			if math.Abs(area-w*d)/(w*d) > 1e-6 {
				t.Fatalf("trial %d layer %d: area %v, want %v", trial, li, area, w*d)
			}
		}
	}
}

// Property: slicing is invariant under in-plane translation.
func TestSliceTranslationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	opts := DefaultOptions()
	base := mesh.BoxShell("box", "box", geom.V3(0, 0, 0), geom.V3(7, 5, 2))
	ref, err := Slice(&mesh.Mesh{Shells: []mesh.Shell{base}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		dx := (rng.Float64() - 0.5) * 100
		dy := (rng.Float64() - 0.5) * 100
		m := &mesh.Mesh{Shells: []mesh.Shell{
			mesh.BoxShell("box", "box", geom.V3(dx, dy, 0), geom.V3(7+dx, 5+dy, 2)),
		}}
		moved, err := Slice(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(moved.Layers) != len(ref.Layers) {
			t.Fatalf("trial %d: layer count changed", trial)
		}
		for li := range moved.Layers {
			if len(ref.Layers[li].Contours) == 0 && len(moved.Layers[li].Contours) == 0 {
				continue
			}
			if len(ref.Layers[li].Contours) == 0 || len(moved.Layers[li].Contours) == 0 {
				t.Fatalf("trial %d layer %d: contour presence differs", trial, li)
			}
			a := ref.Layers[li].Contours[0].Poly.Area()
			b := moved.Layers[li].Contours[0].Poly.Area()
			if math.Abs(a-b) > 1e-6 {
				t.Fatalf("trial %d layer %d: area %v vs %v", trial, li, a, b)
			}
		}
	}
}

// Property: the winding-rule material decision is consistent with the
// raster classification at cell centres.
func TestRasterMatchesPointClassification(t *testing.T) {
	outer := mesh.BoxShell("outer", "host", geom.V3(0, 0, 0), geom.V3(12, 10, 4))
	inner := mesh.BoxShell("cavity", "host", geom.V3(4, 4, 1), geom.V3(8, 7, 3))
	inner.FlipOrientation()
	inner.Orient = mesh.Inward
	m := &mesh.Mesh{Shells: []mesh.Shell{outer, inner}}
	res, err := Slice(m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	mid := &res.Layers[len(res.Layers)/2]
	r, err := mid.Rasterize(geom.V2(-1, -1), geom.V2(13, 11), 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for iy := 0; iy < r.NY; iy++ {
		for ix := 0; ix < r.NX; ix++ {
			p := r.Center(ix, iy)
			want := mid.Material(p)
			got := r.At(ix, iy) == Model
			if want != got {
				t.Fatalf("cell (%d,%d) at %v: raster %t vs point %t", ix, iy, p, got, want)
			}
		}
	}
}
