package slicer

import (
	"fmt"
	"math"
	"sort"

	"obfuscade/internal/geom"
	"obfuscade/internal/mesh"
)

// This file keeps the pre-index slicer kernels as unexported reference
// implementations. They are the plain O(layers * triangles) rescan and
// O(rows * edges) scanline versions the indexed kernels must match
// byte-for-byte; the equivalence property tests in property_test.go
// deep-compare the two on randomized meshes and on the paper's golden
// parts. They share finishLayer's probe/interface code with the indexed
// path, so any output difference is attributable to the kernels alone.

// sliceNaive is the serial full-rescan slicer: Slice without the sweep
// index, the scratch pool, or the worker fan-out.
func sliceNaive(m *mesh.Mesh, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	bounds := m.Bounds()
	if bounds.IsEmpty() {
		return nil, fmt.Errorf("slicer: empty mesh")
	}
	res := &Result{Opts: opts, Bounds: bounds}
	bodySet := map[string]bool{}
	for _, s := range m.Shells {
		bodySet[s.Body] = true
	}
	for b := range bodySet {
		res.BodyNames = append(res.BodyNames, b)
	}
	sort.Strings(res.BodyNames)

	nLayers := int(math.Ceil((bounds.Max.Z - bounds.Min.Z) / opts.LayerHeight))
	if nLayers <= 0 {
		nLayers = 1
	}
	if nLayers > 100000 {
		return nil, fmt.Errorf("slicer: %d layers exceed sanity limit (layer height %g)",
			nLayers, opts.LayerHeight)
	}
	res.Layers = make([]Layer, nLayers)
	for i := 0; i < nLayers; i++ {
		z := bounds.Min.Z + (float64(i)+0.5)*opts.LayerHeight
		layer := Layer{Index: i, Z: z}
		for si := range m.Shells {
			shell := &m.Shells[si]
			layer.Contours = append(layer.Contours, sliceShellNaive(shell, z, opts)...)
		}
		layer.buildProbeIndex()
		layer.Interfaces = findInterfacesNaive(&layer, opts)
		res.Layers[i] = layer
	}
	return res, nil
}

// findInterfacesNaive probes each pair of bodies with the original
// brute-force boundary scans.
func findInterfacesNaive(l *Layer, opts Options) []BodyInterface {
	bodies := l.Bodies()
	var out []BodyInterface
	for i := 0; i < len(bodies); i++ {
		for j := i + 1; j < len(bodies); j++ {
			bi := probeInterfaceNaive(l, bodies[i], bodies[j], opts)
			if len(bi.Samples) > 0 {
				out = append(out, bi)
			}
		}
	}
	return out
}

// probeInterfaceNaive is the original interface probe: every sample scans
// every edge of body B's boundary twice (nearest distance, then offset),
// with no range bound and no bounding-box pruning.
func probeInterfaceNaive(l *Layer, a, b string, opts Options) BodyInterface {
	bi := BodyInterface{BodyA: a, BodyB: b}
	var bLoops []geom.Polygon
	for _, c := range l.Contours {
		if c.Closed && c.Body == b {
			bLoops = append(bLoops, c.Poly)
		}
	}
	if len(bLoops) == 0 {
		return bi
	}
	// nearestOnB returns the distance from p to B's boundary and the unit
	// tangent of the nearest boundary segment.
	nearestOnB := func(p geom.Vec2) (float64, geom.Vec2) {
		best := math.Inf(1)
		var tangent geom.Vec2
		for _, lp := range bLoops {
			n := len(lp)
			for i := 0; i < n; i++ {
				s := geom.Segment2{A: lp[i], B: lp[(i+1)%n]}
				if d := s.Dist(p); d < best {
					best = d
					tangent = s.B.Sub(s.A).Normalized()
				}
			}
		}
		return best, tangent
	}
	// Probe along body A's boundary at road-width/4 spacing. A probe
	// counts as an interface sample only when the offset to B is mostly
	// normal to both boundaries: that selects genuine seam geometry and
	// rejects collinear continuations (e.g. the shared end-cap edges
	// where a split curve terminates).
	step := opts.RoadWidth / 4
	for _, c := range l.Contours {
		if !c.Closed || c.Body != a {
			continue
		}
		n := len(c.Poly)
		for i := 0; i < n; i++ {
			p0 := c.Poly[i]
			p1 := c.Poly[(i+1)%n]
			segLen := p0.Dist(p1)
			tA := p1.Sub(p0).Normalized()
			steps := int(segLen/step) + 1
			for k := 0; k < steps; k++ {
				p := p0.Lerp(p1, (float64(k)+0.5)/float64(steps))
				d, tB := nearestOnB(p)
				if d > opts.InterfaceRange {
					continue
				}
				if d > nearTol {
					if math.Abs(tA.Dot(tB)) < 0.7 {
						continue // boundaries not locally parallel
					}
					// The offset must be mostly normal to B's boundary.
					off := offsetToBoundary(p, bLoops)
					if off.Len() > 0 && math.Abs(off.Normalized().Dot(tB)) > 0.5 {
						continue // offset runs along B's boundary
					}
					// The space between the boundaries must be a genuine
					// void (gap or doubly-covered sliver), not material
					// of a third body lying between A and B.
					if l.Material(p.Add(off.Scale(0.5))) {
						continue
					}
				}
				bi.Samples = append(bi.Samples, InterfaceSample{
					P:       p,
					Width:   d,
					Overlap: l.BodyWinding(b, p) > 0,
				})
				bi.Length += segLen / float64(steps)
			}
		}
	}
	if len(bi.Samples) > 0 {
		bi.Crossings = countCrossingsNaive(l, a, b)
	}
	return bi
}

// offsetToBoundary returns the vector from p to the nearest point on any
// of the loops.
func offsetToBoundary(p geom.Vec2, loops []geom.Polygon) geom.Vec2 {
	best := math.Inf(1)
	var q geom.Vec2
	for _, lp := range loops {
		n := len(lp)
		for i := 0; i < n; i++ {
			s := geom.Segment2{A: lp[i], B: lp[(i+1)%n]}
			c := s.ClosestPoint(p)
			if d := c.Dist(p); d < best {
				best = d
				q = c
			}
		}
	}
	return q.Sub(p)
}

// countCrossingsNaive counts proper boundary intersections between the two
// bodies' contours with edge-level bounding-box rejection only.
func countCrossingsNaive(l *Layer, a, b string) int {
	type edge struct {
		s          geom.Segment2
		minX, maxX float64
		minY, maxY float64
	}
	collect := func(body string) []edge {
		var out []edge
		for _, c := range l.Contours {
			if !c.Closed || c.Body != body {
				continue
			}
			n := len(c.Poly)
			for i := 0; i < n; i++ {
				s := geom.Segment2{A: c.Poly[i], B: c.Poly[(i+1)%n]}
				out = append(out, edge{
					s:    s,
					minX: math.Min(s.A.X, s.B.X), maxX: math.Max(s.A.X, s.B.X),
					minY: math.Min(s.A.Y, s.B.Y), maxY: math.Max(s.A.Y, s.B.Y),
				})
			}
		}
		return out
	}
	ea := collect(a)
	eb := collect(b)
	count := 0
	for _, x := range ea {
		for _, y := range eb {
			if x.maxX < y.minX || y.maxX < x.minX || x.maxY < y.minY || y.maxY < x.minY {
				continue
			}
			if x.s.ProperlyIntersects(y.s) {
				count++
			}
		}
	}
	return count
}

// sliceShellNaive intersects every triangle of the shell with the plane z
// and chains the directed segments into contours, using the original
// map-of-slices snap grid whose take() walk rescans consumed entries.
func sliceShellNaive(s *mesh.Shell, z float64, opts Options) []Contour {
	type seg struct{ a, b geom.Vec2 }
	var segs []seg
	for _, t := range s.Tris {
		p, q, ok := t.IntersectPlaneZ(z)
		if !ok {
			continue
		}
		a, b := p.XY(), q.XY()
		if a.Eq(b, opts.SnapTol/4) {
			continue
		}
		// Orient the segment so that material lies to its left:
		// direction = z-hat x facet normal.
		n := t.Normal()
		dir := geom.V2(-n.Y, n.X)
		if b.Sub(a).Dot(dir) < 0 {
			a, b = b, a
		}
		segs = append(segs, seg{a, b})
	}
	if len(segs) == 0 {
		return nil
	}

	// Chain segments end-to-start using a snap grid.
	quant := func(p geom.Vec2) [2]int64 {
		return [2]int64{
			int64(math.Round(p.X / opts.SnapTol)),
			int64(math.Round(p.Y / opts.SnapTol)),
		}
	}
	starts := make(map[[2]int64][]int)
	for i, sg := range segs {
		k := quant(sg.a)
		starts[k] = append(starts[k], i)
	}
	used := make([]bool, len(segs))
	take := func(p geom.Vec2) int {
		k := quant(p)
		// Check the snap cell and its 8 neighbours to be robust at cell
		// boundaries.
		for dx := int64(-1); dx <= 1; dx++ {
			for dy := int64(-1); dy <= 1; dy++ {
				for _, i := range starts[[2]int64{k[0] + dx, k[1] + dy}] {
					if !used[i] && segs[i].a.Eq(p, opts.SnapTol) {
						return i
					}
				}
			}
		}
		return -1
	}

	var contours []Contour
	for i := range segs {
		if used[i] {
			continue
		}
		used[i] = true
		loop := geom.Polygon{segs[i].a, segs[i].b}
		closed := false
		for {
			next := take(loop[len(loop)-1])
			if next == -1 {
				break
			}
			used[next] = true
			if segs[next].b.Eq(loop[0], opts.SnapTol) {
				closed = true
				break
			}
			loop = append(loop, segs[next].b)
		}
		loop = loop.Simplify(opts.SnapTol / 2)
		if len(loop) < 3 || loop.Area() < opts.MinContourArea {
			continue
		}
		contours = append(contours, Contour{
			Poly:   loop,
			Shell:  s.Name,
			Body:   s.Body,
			Orient: s.Orient,
			Closed: closed,
		})
	}
	return contours
}

// rasterizeNaive is the original scanline rasterizer: every row rescans
// every contour edge and allocates its own crossing and winding buffers.
func rasterizeNaive(l *Layer, min, max geom.Vec2, cell float64, bodies []string) (*Raster, error) {
	if cell <= 0 {
		return nil, fmt.Errorf("slicer: cell size must be positive, got %g", cell)
	}
	nx := int(math.Ceil((max.X - min.X) / cell))
	ny := int(math.Ceil((max.Y - min.Y) / cell))
	if nx <= 0 || ny <= 0 {
		return nil, fmt.Errorf("slicer: empty raster bounds")
	}
	if nx*ny > 50_000_000 {
		return nil, fmt.Errorf("slicer: raster %dx%d exceeds sanity limit", nx, ny)
	}
	bodyBit := make(map[string]int, len(bodies))
	for i, b := range bodies {
		if i >= 32 {
			return nil, fmt.Errorf("slicer: more than 32 bodies not supported")
		}
		bodyBit[b] = i
	}
	r := &Raster{
		Origin: min,
		Cell:   cell,
		NX:     nx,
		NY:     ny,
		Class:  make([]CellClass, nx*ny),
		Owner:  make([]uint32, nx*ny),
		Bodies: bodies,
	}

	type naiveCrossing struct {
		x     float64
		delta int
		body  int
	}
	var crossings []naiveCrossing
	for iy := 0; iy < ny; iy++ {
		y := min.Y + (float64(iy)+0.5)*cell
		crossings = crossings[:0]
		for _, c := range l.Contours {
			if !c.Closed {
				continue
			}
			bit, okBody := bodyBit[c.Body]
			if !okBody {
				bit = -1
			}
			n := len(c.Poly)
			for i := 0; i < n; i++ {
				a := c.Poly[i]
				b := c.Poly[(i+1)%n]
				// Half-open rule [minY, maxY) avoids double counting at
				// shared vertices.
				if (a.Y <= y) == (b.Y <= y) {
					continue
				}
				t := (y - a.Y) / (b.Y - a.Y)
				x := a.X + t*(b.X-a.X)
				delta := 1
				if b.Y > a.Y {
					delta = -1 // upward edge closes the winding to its right
				}
				crossings = append(crossings, naiveCrossing{x: x, delta: delta, body: bit})
			}
		}
		sort.Slice(crossings, func(i, j int) bool { return crossings[i].x < crossings[j].x })

		w := 0
		bodyW := make([]int, len(bodies))
		ci := 0
		for ix := 0; ix < nx; ix++ {
			xc := min.X + (float64(ix)+0.5)*cell
			for ci < len(crossings) && crossings[ci].x <= xc {
				w += crossings[ci].delta
				if crossings[ci].body >= 0 {
					bodyW[crossings[ci].body] += crossings[ci].delta
				}
				ci++
			}
			idx := iy*nx + ix
			var owner uint32
			for bi, bw := range bodyW {
				if bw > 0 && bw%2 == 1 {
					owner |= 1 << uint(bi)
				}
			}
			r.Owner[idx] = owner
			switch {
			case w > 0 && w%2 == 1:
				r.Class[idx] = Model
			case w != 0 || owner != 0:
				r.Class[idx] = Void
			default:
				r.Class[idx] = Empty
			}
		}
	}
	return r, nil
}
