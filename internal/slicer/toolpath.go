package slicer

import (
	"fmt"
	"math"

	"obfuscade/internal/geom"
)

// MoveRole labels what a toolpath move deposits.
type MoveRole uint8

const (
	// Travel moves reposition without extruding.
	Travel MoveRole = iota
	// Perimeter moves trace contour outlines with model material.
	Perimeter
	// Infill moves fill the interior with model material.
	Infill
	// Support moves deposit dissolvable support material.
	Support
)

// String implements fmt.Stringer.
func (r MoveRole) String() string {
	switch r {
	case Travel:
		return "travel"
	case Perimeter:
		return "perimeter"
	case Infill:
		return "infill"
	case Support:
		return "support"
	default:
		return fmt.Sprintf("MoveRole(%d)", int(r))
	}
}

// Move is one straight toolhead motion within a layer.
type Move struct {
	From, To geom.Vec2
	Role     MoveRole
	// Body names the body the move belongs to (perimeters only).
	Body string
}

// Len returns the travel distance of the move.
func (m Move) Len() float64 { return m.From.Dist(m.To) }

// LayerToolpath is the ordered move list for one layer.
type LayerToolpath struct {
	Index int
	Z     float64
	Moves []Move
}

// ExtrudedLength sums the lengths of extruding (non-travel) moves.
func (lt *LayerToolpath) ExtrudedLength() float64 {
	var sum float64
	for _, m := range lt.Moves {
		if m.Role != Travel {
			sum += m.Len()
		}
	}
	return sum
}

// Toolpath generates the printing toolpath for one layer: perimeters along
// every material-bounding contour, then raster infill at road-width
// spacing with alternating direction per layer ("solid model interior").
func (l *Layer) Toolpath(min, max geom.Vec2, opts Options) (*LayerToolpath, error) {
	lt := &LayerToolpath{Index: l.Index, Z: l.Z}
	var pos geom.Vec2
	hasPos := false
	moveTo := func(p geom.Vec2) {
		if !hasPos {
			// Record the layer's initial positioning as a zero-length
			// travel so G-code generation replays the exact start point.
			lt.Moves = append(lt.Moves, Move{From: p, To: p, Role: Travel})
		} else if !pos.Eq(p, 1e-9) {
			lt.Moves = append(lt.Moves, Move{From: pos, To: p, Role: Travel})
		}
		pos = p
		hasPos = true
	}
	extrude := func(p geom.Vec2, role MoveRole, body string) {
		lt.Moves = append(lt.Moves, Move{From: pos, To: p, Role: role, Body: body})
		pos = p
	}

	// Perimeters: each closed contour is traced as its own loop (plus
	// optional inset walls). Two split bodies therefore get separate
	// perimeter walls along their shared boundary — the cold seam of the
	// x-z prints (Fig. 7).
	walls := opts.Perimeters
	if walls <= 0 {
		walls = 1
	}
	traceLoop := func(poly geom.Polygon, body string) {
		moveTo(poly[0])
		for i := 1; i < len(poly); i++ {
			extrude(poly[i], Perimeter, body)
		}
		extrude(poly[0], Perimeter, body)
	}
	for _, c := range l.Contours {
		if !c.Closed || len(c.Poly) < 3 {
			continue
		}
		loop := c.Poly
		for w := 0; w < walls; w++ {
			traceLoop(loop, c.Body)
			if w+1 == walls {
				break
			}
			inset, ok := loop.Inset(opts.RoadWidth)
			if !ok {
				break // region too narrow for another wall
			}
			loop = inset
		}
	}

	// Raster infill from the scanline classification.
	r, err := l.Rasterize(min, max, opts.RoadWidth, nil)
	if err != nil {
		return nil, err
	}
	horizontal := l.Index%2 == 0
	emitRun := func(a, b geom.Vec2) {
		moveTo(a)
		extrude(b, Infill, "")
	}
	// Sparse infill skips raster lines: density d prints every round(1/d)
	// lines. Perimeters are always printed.
	skip := 1
	if opts.InfillDensity > 0 && opts.InfillDensity < 1 {
		skip = int(math.Round(1 / opts.InfillDensity))
		if skip < 1 {
			skip = 1
		}
	}
	if horizontal {
		for iy := 0; iy < r.NY; iy++ {
			if iy%skip != 0 {
				continue
			}
			runStart := -1
			for ix := 0; ix <= r.NX; ix++ {
				solid := ix < r.NX && r.At(ix, iy) == Model
				if solid && runStart < 0 {
					runStart = ix
				}
				if !solid && runStart >= 0 {
					a := r.Center(runStart, iy)
					b := r.Center(ix-1, iy)
					emitRun(a, b)
					runStart = -1
				}
			}
		}
	} else {
		for ix := 0; ix < r.NX; ix++ {
			if ix%skip != 0 {
				continue
			}
			runStart := -1
			for iy := 0; iy <= r.NY; iy++ {
				solid := iy < r.NY && r.At(ix, iy) == Model
				if solid && runStart < 0 {
					runStart = iy
				}
				if !solid && runStart >= 0 {
					a := r.Center(ix, runStart)
					b := r.Center(ix, iy-1)
					emitRun(a, b)
					runStart = -1
				}
			}
		}
	}
	return lt, nil
}

// Toolpaths generates toolpaths for every layer of the result.
func (r *Result) Toolpaths() ([]*LayerToolpath, error) {
	min := geom.V2(r.Bounds.Min.X-r.Opts.RoadWidth, r.Bounds.Min.Y-r.Opts.RoadWidth)
	max := geom.V2(r.Bounds.Max.X+r.Opts.RoadWidth, r.Bounds.Max.Y+r.Opts.RoadWidth)
	out := make([]*LayerToolpath, 0, len(r.Layers))
	for i := range r.Layers {
		lt, err := r.Layers[i].Toolpath(min, max, r.Opts)
		if err != nil {
			return nil, fmt.Errorf("slicer: layer %d: %w", i, err)
		}
		out = append(out, lt)
	}
	return out, nil
}

// TotalExtruded sums extruded length over all layers (a cheap volume
// proxy for integrity checks).
func TotalExtruded(paths []*LayerToolpath) float64 {
	var sum float64
	for _, p := range paths {
		sum += p.ExtrudedLength()
	}
	return sum
}

// PathBounds returns the 2D bounding box of all extruding moves.
func PathBounds(paths []*LayerToolpath) (geom.Vec2, geom.Vec2) {
	lo := geom.V2(math.Inf(1), math.Inf(1))
	hi := geom.V2(math.Inf(-1), math.Inf(-1))
	for _, p := range paths {
		for _, m := range p.Moves {
			if m.Role == Travel {
				continue
			}
			for _, q := range [2]geom.Vec2{m.From, m.To} {
				lo.X = math.Min(lo.X, q.X)
				lo.Y = math.Min(lo.Y, q.Y)
				hi.X = math.Max(hi.X, q.X)
				hi.Y = math.Max(hi.Y, q.Y)
			}
		}
	}
	return lo, hi
}
