package slicer

import (
	"math/rand"
	"testing"

	"obfuscade/internal/geom"
	"obfuscade/internal/mesh"
	"obfuscade/internal/parallel"
)

// The sweep index must be complete (every triangle that transversally
// crosses a layer plane appears in that layer's bucket) and ordered
// (bucket entries ascend, matching the naive rescan's visiting order).
func TestSweepIndexCompleteAndOrdered(t *testing.T) {
	const baseSeed = 0x1d3a5eed
	opts := DefaultOptions()
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(parallel.SplitMix(baseSeed, trial)))
		m := randomBoxMesh(rng)
		bounds := m.Bounds()
		nLayers := int((bounds.Max.Z - bounds.Min.Z) / opts.LayerHeight)
		if nLayers <= 0 {
			nLayers = 1
		}
		idx := buildSweepIndex(m, bounds.Min.Z, opts.LayerHeight, nLayers)
		for si := range m.Shells {
			shell := &m.Shells[si]
			for li := 0; li < nLayers; li++ {
				z := bounds.Min.Z + (float64(li)+0.5)*opts.LayerHeight
				bucket := idx.shells[si].layer(li)
				inBucket := make(map[int32]bool, len(bucket))
				prev := int32(-1)
				for _, ti := range bucket {
					if ti <= prev {
						t.Fatalf("trial %d shell %d layer %d: bucket not ascending", trial, si, li)
					}
					prev = ti
					inBucket[ti] = true
				}
				for ti, tr := range shell.Tris {
					if _, _, ok := tr.IntersectPlaneZ(z); ok && !inBucket[int32(ti)] {
						t.Fatalf("trial %d shell %d layer %d: crossing triangle %d missing from bucket",
							trial, si, li, ti)
					}
				}
			}
		}
	}
}

// layerSpan must be conservative: the returned range contains every layer
// whose plane lies strictly inside the z-interval.
func TestLayerSpanConservative(t *testing.T) {
	const (
		minZ    = 0.0
		h       = 0.25
		nLayers = 40
	)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 2000; trial++ {
		a := rng.Float64() * 10
		b := a + rng.Float64()*3
		lo, hi := layerSpan(a, b, minZ, h, nLayers)
		for l := 0; l < nLayers; l++ {
			z := minZ + (float64(l)+0.5)*h
			if a < z && z < b && (l < lo || l > hi) {
				t.Fatalf("trial %d: plane %g inside (%g,%g) but layer %d outside [%d,%d]",
					trial, z, a, b, l, lo, hi)
			}
		}
	}
}

// A zero-extent interval (horizontal facet) must not panic and may map to
// an empty or single-layer range.
func TestLayerSpanDegenerate(t *testing.T) {
	lo, hi := layerSpan(1.0, 1.0, 0, 0.25, 10)
	if lo < 0 || hi > 9 {
		t.Fatalf("degenerate span [%d,%d] out of clamp range", lo, hi)
	}
}

// The pooled chain scratch must not leak state between uses: slicing the
// same mesh twice through the pool yields identical results.
func TestChainScratchReuse(t *testing.T) {
	m := &mesh.Mesh{Shells: []mesh.Shell{
		mesh.BoxShell("box", "box", geom.V3(0, 0, 0), geom.V3(5, 4, 1)),
	}}
	first, err := Slice(m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := Slice(m, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if len(again.Layers) != len(first.Layers) {
			t.Fatal("layer count changed on scratch reuse")
		}
		for li := range again.Layers {
			if len(again.Layers[li].Contours) != len(first.Layers[li].Contours) {
				t.Fatalf("layer %d contours changed on scratch reuse", li)
			}
		}
	}
}
