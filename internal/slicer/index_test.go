package slicer

import (
	"context"
	"math/rand"
	"testing"

	"obfuscade/internal/geom"
	"obfuscade/internal/mesh"
	"obfuscade/internal/parallel"
)

// The sweep index must be complete (every triangle that transversally
// crosses a layer plane appears in that layer's bucket) and ordered
// (bucket entries ascend, matching the naive rescan's visiting order).
func TestSweepIndexCompleteAndOrdered(t *testing.T) {
	const baseSeed = 0x1d3a5eed
	opts := DefaultOptions()
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(parallel.SplitMix(baseSeed, trial)))
		m := randomBoxMesh(rng)
		bounds := m.Bounds()
		nLayers := int((bounds.Max.Z - bounds.Min.Z) / opts.LayerHeight)
		if nLayers <= 0 {
			nLayers = 1
		}
		idx := buildSweepIndex(context.Background(), m, bounds.Min.Z, opts.LayerHeight, nLayers)
		for si := range m.Shells {
			shell := &m.Shells[si]
			for li := 0; li < nLayers; li++ {
				z := bounds.Min.Z + (float64(li)+0.5)*opts.LayerHeight
				bucket := idx.shells[si].layer(li)
				inBucket := make(map[int32]bool, len(bucket))
				prev := int32(-1)
				for _, ti := range bucket {
					if ti <= prev {
						t.Fatalf("trial %d shell %d layer %d: bucket not ascending", trial, si, li)
					}
					prev = ti
					inBucket[ti] = true
				}
				for ti, tr := range shell.Tris {
					if _, _, ok := tr.IntersectPlaneZ(z); ok && !inBucket[int32(ti)] {
						t.Fatalf("trial %d shell %d layer %d: crossing triangle %d missing from bucket",
							trial, si, li, ti)
					}
				}
			}
		}
	}
}

// layerSpan must be conservative: the returned range contains every layer
// whose plane lies strictly inside the z-interval.
func TestLayerSpanConservative(t *testing.T) {
	const (
		minZ    = 0.0
		h       = 0.25
		nLayers = 40
	)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 2000; trial++ {
		a := rng.Float64() * 10
		b := a + rng.Float64()*3
		lo, hi := layerSpan(a, b, minZ, h, nLayers)
		for l := 0; l < nLayers; l++ {
			z := minZ + (float64(l)+0.5)*h
			if a < z && z < b && (l < lo || l > hi) {
				t.Fatalf("trial %d: plane %g inside (%g,%g) but layer %d outside [%d,%d]",
					trial, z, a, b, l, lo, hi)
			}
		}
	}
}

// A zero-extent interval (horizontal facet) must not panic and may map to
// an empty or single-layer range.
func TestLayerSpanDegenerate(t *testing.T) {
	lo, hi := layerSpan(1.0, 1.0, 0, 0.25, 10)
	if lo < 0 || hi > 9 {
		t.Fatalf("degenerate span [%d,%d] out of clamp range", lo, hi)
	}
}

// An injected prebuilt index must yield exactly the inline result, and an
// incompatible index must be rejected (counted) and rebuilt — wrong
// injection may cost time, never correctness.
func TestSliceIndexedMatchesInline(t *testing.T) {
	ctx := context.Background()
	opts := DefaultOptions()
	m := &mesh.Mesh{Shells: []mesh.Shell{
		mesh.BoxShell("box", "box", geom.V3(0, 0, 0), geom.V3(5, 4, 3)),
	}}
	inline, err := SliceCtx(ctx, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndex(ctx, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ix.SizeBytes() <= 0 {
		t.Error("index reports non-positive size")
	}
	injected, err := SliceIndexedCtx(ctx, m, opts, ix)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, inline, injected, "injected")

	// An index built for a different mesh fails the guard and triggers an
	// inline rebuild with identical output.
	other := &mesh.Mesh{Shells: []mesh.Shell{
		mesh.BoxShell("tall", "tall", geom.V3(0, 0, 0), geom.V3(2, 2, 9)),
	}}
	foreign, err := BuildIndex(ctx, other, opts)
	if err != nil {
		t.Fatal(err)
	}
	before := mIndexRejected.Value()
	rebuilt, err := SliceIndexedCtx(ctx, m, opts, foreign)
	if err != nil {
		t.Fatal(err)
	}
	if got := mIndexRejected.Value() - before; got != 1 {
		t.Errorf("rejected counter advanced by %d, want 1", got)
	}
	assertSameResult(t, inline, rebuilt, "rebuilt after rejection")
}

func assertSameResult(t *testing.T, want, got *Result, label string) {
	t.Helper()
	if len(got.Layers) != len(want.Layers) {
		t.Fatalf("%s: layer count %d != %d", label, len(got.Layers), len(want.Layers))
	}
	for li := range got.Layers {
		a, b := want.Layers[li], got.Layers[li]
		if a.Z != b.Z || len(a.Contours) != len(b.Contours) {
			t.Fatalf("%s: layer %d differs", label, li)
		}
		for ci := range a.Contours {
			ap, bp := a.Contours[ci].Poly, b.Contours[ci].Poly
			if len(ap) != len(bp) {
				t.Fatalf("%s: layer %d contour %d point count differs", label, li, ci)
			}
			for pi := range ap {
				if ap[pi] != bp[pi] {
					t.Fatalf("%s: layer %d contour %d point %d differs", label, li, ci, pi)
				}
			}
		}
	}
}

// The pooled chain scratch must not leak state between uses: slicing the
// same mesh twice through the pool yields identical results.
func TestChainScratchReuse(t *testing.T) {
	m := &mesh.Mesh{Shells: []mesh.Shell{
		mesh.BoxShell("box", "box", geom.V3(0, 0, 0), geom.V3(5, 4, 1)),
	}}
	first, err := Slice(m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := Slice(m, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if len(again.Layers) != len(first.Layers) {
			t.Fatal("layer count changed on scratch reuse")
		}
		for li := range again.Layers {
			if len(again.Layers[li].Contours) != len(first.Layers[li].Contours) {
				t.Fatalf("layer %d contours changed on scratch reuse", li)
			}
		}
	}
}
