// Package slicer converts triangle meshes into stacks of 2D layers with
// classified regions and toolpaths, emulating the slicing stage of the AM
// process chain (CatalystEX in the paper).
//
// The slicer's semantics are the ones the ObfusCADe features exploit:
//
//   - Each shell's cross-section contours are chained independently, so a
//     multi-body STL yields per-body contours whose mutual mismatch is the
//     tessellation gap of paper Fig. 4.
//   - Region classification uses a signed odd-winding rule ("material
//     where the signed winding number is positive and odd"), the rule that
//     reproduces all four rows of the paper's Table 3 and carves the
//     micro-void band along a spline split.
package slicer

import (
	"context"
	"fmt"
	"math"
	"sort"

	"obfuscade/internal/geom"
	"obfuscade/internal/mesh"
	"obfuscade/internal/obs"
	"obfuscade/internal/parallel"
	"obfuscade/internal/trace"
)

// Slicing metrics: per-call latency plus deterministic layer/contour
// totals (counted once after the parallel fan-out assembles, so the
// values never depend on scheduling).
var (
	stSlice   = obs.Stage("slicer.slice")
	mLayers   = obs.Default().Counter("slicer.layers.sliced")
	mContours = obs.Default().Counter("slicer.contours")
)

// Options configures slicing. The defaults (DefaultOptions) match the
// paper's FDM setup: 0.1778 mm layer resolution, solid model interior.
type Options struct {
	// LayerHeight is the slice thickness in mm (paper: 0.01778 cm).
	LayerHeight float64
	// SnapTol is the endpoint snap distance when chaining cross-section
	// segments into contours, mm.
	SnapTol float64
	// RoadWidth is the extrusion road width in mm, used for toolpath
	// spacing.
	RoadWidth float64
	// InterfaceRange is the maximum distance at which two bodies'
	// boundaries are considered to form an interface (seam), mm.
	InterfaceRange float64
	// MinContourArea discards contour loops smaller than this area, mm^2.
	MinContourArea float64
	// InfillDensity is the fraction of interior raster lines actually
	// printed, in (0, 1]. Zero means 1 (solid interior, the paper's
	// setting). A counterfeit shop printing sparse to save material is
	// caught by the weight/density inspection.
	InfillDensity float64
	// Perimeters is the number of concentric outline walls per contour
	// (inset by one road width each). Zero means 1.
	Perimeters int
}

// DefaultOptions returns the slicing properties used throughout the paper
// (§3.1): 0.1778 mm layers, solid interior.
func DefaultOptions() Options {
	return Options{
		LayerHeight:    0.1778,
		SnapTol:        1e-4,
		RoadWidth:      0.5,
		InterfaceRange: 0.75,
		MinContourArea: 1e-6,
	}
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if o.LayerHeight <= 0 {
		return fmt.Errorf("slicer: LayerHeight must be positive, got %g", o.LayerHeight)
	}
	if o.SnapTol <= 0 {
		return fmt.Errorf("slicer: SnapTol must be positive, got %g", o.SnapTol)
	}
	if o.RoadWidth <= 0 {
		return fmt.Errorf("slicer: RoadWidth must be positive, got %g", o.RoadWidth)
	}
	if o.InfillDensity < 0 || o.InfillDensity > 1 {
		return fmt.Errorf("slicer: InfillDensity %g out of (0, 1]", o.InfillDensity)
	}
	if o.Perimeters < 0 || o.Perimeters > 16 {
		return fmt.Errorf("slicer: Perimeters %d out of [0, 16]", o.Perimeters)
	}
	return nil
}

// Contour is one cross-section loop with provenance.
type Contour struct {
	// Poly is the loop geometry. Its winding direction encodes shell
	// orientation: outward shells produce loops winding CCW around
	// material.
	Poly geom.Polygon
	// Shell and Body name the originating shell and CAD body.
	Shell, Body string
	// Orient is the originating shell's orientation.
	Orient mesh.Orientation
	// Closed is false for chains that failed to close (damaged meshes).
	Closed bool
}

// Layer is one slice of the model.
type Layer struct {
	// Index is the zero-based layer number.
	Index int
	// Z is the slicing plane height.
	Z float64
	// Contours lists the cross-section loops of every shell.
	Contours []Contour
	// Interfaces describes where distinct bodies meet in this layer.
	Interfaces []BodyInterface
	// probe caches per-contour bounding boxes for the winding and
	// distance probes. Built by the slicer after the contours assemble;
	// nil for hand-built layers, which fall back to the unindexed scans.
	probe *probeIndex
}

// Result is a sliced model.
type Result struct {
	Opts   Options
	Bounds geom.AABB
	Layers []Layer
	// BodyNames lists the distinct body names seen, sorted.
	BodyNames []string
}

// Slice cuts the mesh into horizontal layers. The mesh must sit at or
// above z = 0; layers are placed at the mid-height of each slab, the
// convention of the paper's slicer.
func Slice(m *mesh.Mesh, opts Options) (*Result, error) {
	return SliceCtx(context.Background(), m, opts)
}

// SliceReference runs the retained naive (pre-index) kernels. It is the
// DeepEqual oracle the indexed kernels are property-tested against, and
// the sanitizer's proof surface: other packages compare SliceReference
// output across a transformation to show the transformation is
// slicing-invariant without depending on the indexed fast path.
func SliceReference(m *mesh.Mesh, opts Options) (*Result, error) {
	return sliceNaive(m, opts)
}

// SliceCtx is Slice with trace propagation: the stage span parents to
// the span carried by ctx, and the per-layer fan-out emits a batch
// instant recording the deterministic layer count.
func SliceCtx(ctx context.Context, m *mesh.Mesh, opts Options) (*Result, error) {
	return SliceIndexedCtx(ctx, m, opts, nil)
}

// SliceIndexedCtx is SliceCtx with an optional pre-built z-sweep index
// (BuildIndex). A nil index is built inline, exactly as SliceCtx always
// has; an injected index skips the serial build prologue — the whole
// point of memoizing it across near-duplicate jobs. An injected index
// that fails the compatibility guard (wrong layer grid or shell shape —
// a caller bug) is counted on slicer.index.rejected and rebuilt, so a
// bad injection can cost time but never correctness.
func SliceIndexedCtx(ctx context.Context, m *mesh.Mesh, opts Options, ix *Index) (res *Result, err error) {
	span := stSlice.Start()
	ctx, tsp := trace.StartSpan(ctx, "stage", "slicer.slice")
	defer func() {
		tsp.End()
		span.EndErr(err)
	}()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	bounds := m.Bounds()
	if bounds.IsEmpty() {
		return nil, fmt.Errorf("slicer: empty mesh")
	}
	res = &Result{Opts: opts, Bounds: bounds}
	bodySet := map[string]bool{}
	for _, s := range m.Shells {
		bodySet[s.Body] = true
	}
	for b := range bodySet {
		res.BodyNames = append(res.BodyNames, b)
	}
	sort.Strings(res.BodyNames)

	nLayers, err := layerCount(bounds, opts.LayerHeight)
	if err != nil {
		return nil, err
	}
	// The sweep index is built once, serially, before the fan-out: every
	// layer bucket then holds exactly the triangles whose z-extent spans
	// that plane, so each layer task does O(crossings) work instead of
	// rescanning the whole shell. An injected index (same content-hashed
	// mesh sliced under the same grid) skips that serial prologue.
	var idx *sweepIndex
	if ix != nil && ix.compatible(m, bounds.Min.Z, opts.LayerHeight, nLayers) {
		idx = ix.sweep
	} else {
		if ix != nil {
			mIndexRejected.Inc()
		}
		idx = buildSweepIndex(ctx, m, bounds.Min.Z, opts.LayerHeight, nLayers)
	}

	// Each layer depends only on its own plane height, so layers slice
	// concurrently on the worker pool and assemble by index — the stack is
	// identical to a serial run. Tasks take the worker context and check it
	// between shells, so a deadline set by the job service interrupts a
	// slice mid-stage (even on a 1-worker pool, where ForEachCtx itself
	// only checks between tasks) instead of running the stage to its end.
	res.Layers = make([]Layer, nLayers)
	trace.Instant(ctx, "batch", "slicer.layers", trace.A("count", fmt.Sprint(nLayers)))
	if err := parallel.ForEachCtx(ctx, nLayers, 0, func(tctx context.Context, i int) error {
		z := bounds.Min.Z + (float64(i)+0.5)*opts.LayerHeight
		layer := Layer{Index: i, Z: z}
		sc := chainScratchPool.Get().(*chainScratch)
		for si := range m.Shells {
			if err := tctx.Err(); err != nil {
				chainScratchPool.Put(sc)
				return err
			}
			shell := &m.Shells[si]
			contours := sliceShell(shell, idx.shells[si].layer(i), z, opts, sc)
			layer.Contours = append(layer.Contours, contours...)
		}
		chainScratchPool.Put(sc)
		layer.buildProbeIndex()
		layer.Interfaces = findInterfaces(&layer, opts)
		res.Layers[i] = layer
		return nil
	}); err != nil {
		return nil, err
	}
	mLayers.Add(int64(nLayers))
	var contours int64
	for i := range res.Layers {
		contours += int64(len(res.Layers[i].Contours))
	}
	mContours.Add(contours)
	return res, nil
}

// sliceShell intersects the bucketed triangles of one shell with the
// plane z and chains the directed segments into contours. tris is the
// ascending triangle subset from the sweep index (only triangles whose
// z-extent spans the plane); sc is the pooled scratch. Output is
// byte-identical to sliceShellNaive: the bucket visits crossing triangles
// in the same order as a full rescan, and the snap-grid cell lists stay in
// ascending segment order, so chaining picks the same successor at every
// step.
func sliceShell(s *mesh.Shell, tris []int32, z float64, opts Options, sc *chainScratch) []Contour {
	segs := sc.segs[:0]
	for _, ti := range tris {
		t := s.Tris[ti]
		p, q, ok := t.IntersectPlaneZ(z)
		if !ok {
			continue
		}
		a, b := p.XY(), q.XY()
		if a.Eq(b, opts.SnapTol/4) {
			continue
		}
		// Orient the segment so that material lies to its left:
		// direction = z-hat x facet normal.
		n := t.Normal()
		dir := geom.V2(-n.Y, n.X)
		if b.Sub(a).Dot(dir) < 0 {
			a, b = b, a
		}
		segs = append(segs, chainSeg{a, b})
	}
	sc.segs = segs
	if len(segs) == 0 {
		return nil
	}

	// Chain segments end-to-start using a snap grid. The per-cell index
	// lists live in one arena (sc.entries) and consumed segments are
	// removed by an order-preserving delete, so a cell's list only ever
	// shrinks: chaining a degenerate mesh where many endpoints share a
	// snap cell stays near-linear instead of rescanning consumed entries
	// (the naive take() walk degrades to O(n²) there).
	quant := func(p geom.Vec2) [2]int64 {
		return [2]int64{
			int64(math.Round(p.X / opts.SnapTol)),
			int64(math.Round(p.Y / opts.SnapTol)),
		}
	}
	clear(sc.cellOf)
	sc.segCell = grow(sc.segCell, len(segs))
	nCells := int32(0)
	for i, sg := range segs {
		k := quant(sg.a)
		id, ok := sc.cellOf[k]
		if !ok {
			id = nCells
			nCells++
			sc.cellOf[k] = id
		}
		sc.segCell[i] = id
	}
	sc.cellCnt = grow(sc.cellCnt, int(nCells))
	for c := range sc.cellCnt {
		sc.cellCnt[c] = 0
	}
	for _, c := range sc.segCell {
		sc.cellCnt[c]++
	}
	sc.cellOff = grow(sc.cellOff, int(nCells))
	var acc int32
	for c, n := range sc.cellCnt {
		sc.cellOff[c] = acc
		acc += n
	}
	sc.entries = grow(sc.entries, len(segs))
	// Fill with the cursor trick (ascending segment order per cell), then
	// restore the offsets.
	for i := range segs {
		c := sc.segCell[i]
		sc.entries[sc.cellOff[c]] = int32(i)
		sc.cellOff[c]++
	}
	for c := range sc.cellOff {
		sc.cellOff[c] -= sc.cellCnt[c]
	}
	if cap(sc.used) < len(segs) {
		sc.used = make([]bool, len(segs))
	}
	used := sc.used[:len(segs)]
	for i := range used {
		used[i] = false
	}

	// removeEntry deletes the j-th live entry of cell c, preserving order.
	removeEntry := func(c int32, j int32) {
		off, cnt := sc.cellOff[c], sc.cellCnt[c]
		copy(sc.entries[j:off+cnt-1], sc.entries[j+1:off+cnt])
		sc.cellCnt[c] = cnt - 1
	}
	// consume removes segment i from its own cell list.
	consume := func(i int) {
		c := sc.segCell[i]
		off, cnt := sc.cellOff[c], sc.cellCnt[c]
		for j := off; j < off+cnt; j++ {
			if sc.entries[j] == int32(i) {
				removeEntry(c, j)
				return
			}
		}
	}
	take := func(p geom.Vec2) int {
		k := quant(p)
		// Check the snap cell and its 8 neighbours to be robust at cell
		// boundaries.
		for dx := int64(-1); dx <= 1; dx++ {
			for dy := int64(-1); dy <= 1; dy++ {
				c, ok := sc.cellOf[[2]int64{k[0] + dx, k[1] + dy}]
				if !ok {
					continue
				}
				off, cnt := sc.cellOff[c], sc.cellCnt[c]
				for j := off; j < off+cnt; j++ {
					i := sc.entries[j]
					if segs[i].a.Eq(p, opts.SnapTol) {
						removeEntry(c, j)
						return int(i)
					}
				}
			}
		}
		return -1
	}

	var contours []Contour
	for i := range segs {
		if used[i] {
			continue
		}
		used[i] = true
		consume(i)
		loop := geom.Polygon{segs[i].a, segs[i].b}
		closed := false
		for {
			next := take(loop[len(loop)-1])
			if next == -1 {
				break
			}
			used[next] = true
			if segs[next].b.Eq(loop[0], opts.SnapTol) {
				closed = true
				break
			}
			loop = append(loop, segs[next].b)
		}
		loop = loop.Simplify(opts.SnapTol / 2)
		if len(loop) < 3 || loop.Area() < opts.MinContourArea {
			continue
		}
		contours = append(contours, Contour{
			Poly:   loop,
			Shell:  s.Name,
			Body:   s.Body,
			Orient: s.Orient,
			Closed: closed,
		})
	}
	return contours
}
