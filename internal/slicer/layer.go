package slicer

import (
	"math"
	"sort"

	"obfuscade/internal/geom"
)

// probeIndex caches read-only, derived geometry for one layer's probes:
// the bounding box of every contour. A point outside a closed loop's box
// has winding number zero, so the box is an exact reject test — indexed
// probes return precisely what the unindexed scans return.
type probeIndex struct {
	bounds []geom.Bounds2 // parallel to Layer.Contours
}

// buildProbeIndex computes the per-contour bounds cache. The slicer calls
// it once per layer, after chaining and before interface probing; it is
// deterministic, so serial and pooled runs produce identical layers.
func (l *Layer) buildProbeIndex() {
	px := &probeIndex{bounds: make([]geom.Bounds2, len(l.Contours))}
	for i := range l.Contours {
		px.bounds[i] = l.Contours[i].Poly.Bounds()
	}
	l.probe = px
}

// rejects reports whether contour i's bounding box excludes p, meaning
// its winding contribution is provably zero. Always false without a probe
// index.
func (l *Layer) rejects(i int, p geom.Vec2) bool {
	return l.probe != nil && !l.probe.bounds[i].ContainsPoint(p)
}

// SignedWinding returns the summed winding number of every closed contour
// around p. Outward shells contribute positively around material, cavity
// and reversed-surface shells negatively.
func (l *Layer) SignedWinding(p geom.Vec2) int {
	w := 0
	for i := range l.Contours {
		c := &l.Contours[i]
		if !c.Closed || l.rejects(i, p) {
			continue
		}
		w += c.Poly.WindingNumber(p)
	}
	return w
}

// Material reports whether point p receives model material under the
// slicer's fill rule: signed winding positive and odd. This single rule
// reproduces the paper's observations:
//
//   - plain solid: w=1 -> material;
//   - sphere embedded without removal (solid or surface): |w| even inside
//     the sphere -> no material (support fills it, Table 3 rows 1-2);
//   - removal + solid sphere: w=1 -> material (Table 3 row 3);
//   - removal + surface sphere: w=-1 -> no material (Table 3 row 4);
//   - the doubly-covered slivers where two split bodies overlap: w=2 ->
//     void micro-band along the spline (Fig. 4/8 mechanism).
func (l *Layer) Material(p geom.Vec2) bool {
	w := l.SignedWinding(p)
	return w > 0 && w%2 == 1
}

// BodyWinding returns the winding number of one body's own closed
// contours around p.
func (l *Layer) BodyWinding(body string, p geom.Vec2) int {
	w := 0
	for i := range l.Contours {
		c := &l.Contours[i]
		if !c.Closed || c.Body != body || l.rejects(i, p) {
			continue
		}
		w += c.Poly.WindingNumber(p)
	}
	return w
}

// InsideBody reports whether p is inside the named body's material region.
func (l *Layer) InsideBody(body string, p geom.Vec2) bool {
	w := l.BodyWinding(body, p)
	return w > 0 && w%2 == 1
}

// Bodies returns the sorted body names present (with closed contours) in
// this layer.
func (l *Layer) Bodies() []string {
	set := map[string]bool{}
	for _, c := range l.Contours {
		if c.Closed {
			set[c.Body] = true
		}
	}
	out := make([]string, 0, len(set))
	for b := range set {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// InterfaceSample is one probe of the void band between two bodies.
type InterfaceSample struct {
	// P is the probe location on body A's boundary.
	P geom.Vec2
	// Width is the local void width: the distance to body B's boundary.
	// Gap and doubly-covered (overlap) slivers are both voids under the
	// odd-winding fill rule; Overlap distinguishes them.
	Width float64
	// Overlap is true when the probe point lies inside body B (the
	// bodies doubly cover the sliver) and false when it lies outside
	// (open gap).
	Overlap bool
}

// BodyInterface summarises where two bodies meet within one layer.
type BodyInterface struct {
	// BodyA and BodyB are the two body names, BodyA < BodyB.
	BodyA, BodyB string
	// Samples are probes along the interface.
	Samples []InterfaceSample
	// Length is the approximate interface arc length in this layer.
	Length float64
	// Crossings counts proper intersections between the two bodies'
	// contour boundaries. Zero with a non-empty interface means the
	// bodies are fully separated in this layer — the per-layer
	// discontinuity of paper Fig. 7a. Interleaved tessellation mismatch
	// (x-y orientation) yields many crossings in every layer, which is
	// why the x-y sliced model never shows a discontinuity.
	Crossings int
}

// MaxWidth returns the widest void probe of the interface.
func (bi *BodyInterface) MaxWidth() float64 {
	var w float64
	for _, s := range bi.Samples {
		if s.Width > w {
			w = s.Width
		}
	}
	return w
}

// MeanWidth returns the average void width over all probes.
func (bi *BodyInterface) MeanWidth() float64 {
	if len(bi.Samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range bi.Samples {
		sum += s.Width
	}
	return sum / float64(len(bi.Samples))
}

// HasOverlap reports whether any probe found the bodies doubly covering.
func (bi *BodyInterface) HasOverlap() bool {
	for _, s := range bi.Samples {
		if s.Overlap {
			return true
		}
	}
	return false
}

// findInterfaces probes each pair of bodies in the layer for near-contact
// regions.
func findInterfaces(l *Layer, opts Options) []BodyInterface {
	bodies := l.Bodies()
	var out []BodyInterface
	for i := 0; i < len(bodies); i++ {
		for j := i + 1; j < len(bodies); j++ {
			bi := probeInterface(l, bodies[i], bodies[j], opts)
			if len(bi.Samples) > 0 {
				out = append(out, bi)
			}
		}
	}
	return out
}

// nearTol is the probe distance below which the perpendicularity filters
// are skipped: offsets this small have numerically meaningless direction.
const nearTol = 0.02

// probeEdge is one boundary segment of the probed body with its bounding
// box, flattened for the nearest-boundary search.
type probeEdge struct {
	a, b   geom.Vec2
	bounds geom.Bounds2
}

// probeLoop is one closed loop of the probed body as a flat edge list
// with a loop-level bounding box, so the nearest-boundary search prunes
// whole loops (then single edges) against the best squared distance found
// so far. Pruning is exact: a box's DistSq lower-bounds the distance to
// every edge it contains, and only strict improvements update the best,
// so the surviving minimum — and its tangent — match the full scan.
type probeLoop struct {
	bounds geom.Bounds2
	edges  []probeEdge
}

func buildProbeLoop(poly geom.Polygon, bounds geom.Bounds2) probeLoop {
	n := len(poly)
	pl := probeLoop{bounds: bounds, edges: make([]probeEdge, n)}
	for i := 0; i < n; i++ {
		a, b := poly[i], poly[(i+1)%n]
		pl.edges[i] = probeEdge{a: a, b: b, bounds: geom.Bounds2{
			Min: geom.V2(math.Min(a.X, b.X), math.Min(a.Y, b.Y)),
			Max: geom.V2(math.Max(a.X, b.X), math.Max(a.Y, b.Y)),
		}}
	}
	return pl
}

func probeInterface(l *Layer, a, b string, opts Options) BodyInterface {
	bi := BodyInterface{BodyA: a, BodyB: b}
	var bLoops []probeLoop
	for i := range l.Contours {
		c := &l.Contours[i]
		if c.Closed && c.Body == b {
			bounds := c.Poly.Bounds()
			if l.probe != nil {
				bounds = l.probe.bounds[i]
			}
			bLoops = append(bLoops, buildProbeLoop(c.Poly, bounds))
		}
	}
	if len(bLoops) == 0 {
		return bi
	}
	// nearestOnB returns the distance from p to B's boundary, the unit
	// tangent of the nearest boundary segment, and the nearest point
	// itself (so the offset needs no second scan). Squared distances
	// drive the search and the sqrt happens once on the winner.
	//
	// The search is bounded at the interface range: probes farther than
	// that are discarded by the caller regardless of the exact distance,
	// so the bound starts one ulp above rangeSq and the +Inf return means
	// "beyond range". Any squared distance > rangeSq is >= that sentinel
	// (no float lies between), so every probe within range still sees the
	// exhaustive minimum — most probe points are far from B and now cost
	// one bounding-box check per loop instead of a full edge scan.
	rangeSq := opts.InterfaceRange * opts.InterfaceRange
	sentinel := math.Nextafter(rangeSq, math.Inf(1))
	nearestOnB := func(p geom.Vec2) (float64, geom.Vec2, geom.Vec2) {
		best := sentinel
		found := false
		var tangent, closest geom.Vec2
		for li := range bLoops {
			lp := &bLoops[li]
			if lp.bounds.DistSq(p) >= best {
				continue
			}
			for ei := range lp.edges {
				e := &lp.edges[ei]
				if e.bounds.DistSq(p) >= best {
					continue
				}
				d := e.b.Sub(e.a)
				t := 0.0
				if ll := d.LenSq(); ll != 0 {
					t = geom.Clamp(p.Sub(e.a).Dot(d)/ll, 0, 1)
				}
				c := e.a.Lerp(e.b, t)
				if dsq := c.DistSq(p); dsq < best {
					best = dsq
					found = true
					tangent = d.Normalized()
					closest = c
				}
			}
		}
		if !found {
			return math.Inf(1), geom.Vec2{}, geom.Vec2{}
		}
		// Hypot, not sqrt(best): bit-compatible with the reference scan's
		// Segment2.Dist so the naive-equivalence goldens compare exactly.
		return closest.Dist(p), tangent, closest
	}
	// Probe along body A's boundary at road-width/4 spacing. A probe
	// counts as an interface sample only when the offset to B is mostly
	// normal to both boundaries: that selects genuine seam geometry and
	// rejects collinear continuations (e.g. the shared end-cap edges
	// where a split curve terminates).
	step := opts.RoadWidth / 4
	for _, c := range l.Contours {
		if !c.Closed || c.Body != a {
			continue
		}
		n := len(c.Poly)
		for i := 0; i < n; i++ {
			p0 := c.Poly[i]
			p1 := c.Poly[(i+1)%n]
			segLen := p0.Dist(p1)
			tA := p1.Sub(p0).Normalized()
			steps := int(segLen/step) + 1
			for k := 0; k < steps; k++ {
				p := p0.Lerp(p1, (float64(k)+0.5)/float64(steps))
				d, tB, q := nearestOnB(p)
				if d > opts.InterfaceRange {
					continue
				}
				if d > nearTol {
					if math.Abs(tA.Dot(tB)) < 0.7 {
						continue // boundaries not locally parallel
					}
					// The offset must be mostly normal to B's boundary.
					off := q.Sub(p)
					if off.Len() > 0 && math.Abs(off.Normalized().Dot(tB)) > 0.5 {
						continue // offset runs along B's boundary
					}
					// The space between the boundaries must be a genuine
					// void (gap or doubly-covered sliver), not material
					// of a third body lying between A and B.
					if l.Material(p.Add(off.Scale(0.5))) {
						continue
					}
				}
				bi.Samples = append(bi.Samples, InterfaceSample{
					P:       p,
					Width:   d,
					Overlap: l.BodyWinding(b, p) > 0,
				})
				bi.Length += segLen / float64(steps)
			}
		}
	}
	if len(bi.Samples) > 0 {
		bi.Crossings = countCrossings(l, a, b)
	}
	return bi
}

// countCrossings counts proper boundary intersections between the two
// bodies' contours. Whole contour pairs are rejected by bounding box
// before any edge pair is tested; disjoint boxes cannot intersect, so the
// count is unchanged.
func countCrossings(l *Layer, a, b string) int {
	collect := func(body string) []probeLoop {
		var out []probeLoop
		for i := range l.Contours {
			c := &l.Contours[i]
			if !c.Closed || c.Body != body {
				continue
			}
			bounds := c.Poly.Bounds()
			if l.probe != nil {
				bounds = l.probe.bounds[i]
			}
			out = append(out, buildProbeLoop(c.Poly, bounds))
		}
		return out
	}
	la := collect(a)
	lb := collect(b)
	count := 0
	for ai := range la {
		for bi := range lb {
			if !la[ai].bounds.Overlaps(lb[bi].bounds) {
				continue
			}
			for _, x := range la[ai].edges {
				for _, y := range lb[bi].edges {
					if !x.bounds.Overlaps(y.bounds) {
						continue
					}
					if (geom.Segment2{A: x.a, B: x.b}).ProperlyIntersects(geom.Segment2{A: y.a, B: y.b}) {
						count++
					}
				}
			}
		}
	}
	return count
}

// Discontinuous reports whether the two bodies form an interface in this
// layer but their boundaries never cross: the cross-sections are fully
// separated islands, the per-layer discontinuity visible in the paper's
// Fig. 7a. Interleaved tessellation mismatch (x-y orientation) produces
// crossings in every layer, so x-y slices are never discontinuous; in the
// x-z orientation the mismatch at a slice's crossing station is a pure gap
// in a large fraction of layers at every STL resolution.
func (l *Layer) Discontinuous(a, b string) bool {
	for _, bi := range l.Interfaces {
		if (bi.BodyA == a && bi.BodyB == b) || (bi.BodyA == b && bi.BodyB == a) {
			// Zero crossings with measurable separation means separated
			// islands. Zero crossings with (near-)zero width means the
			// boundaries are exactly coincident — e.g. a solid body
			// re-embedded into its cavity (§3.2.2) — which prints as
			// continuous material.
			const coincidentTol = 1e-7
			return len(bi.Samples) > 0 && bi.Crossings == 0 && bi.MaxWidth() > coincidentTol
		}
	}
	return false
}

// DiscontinuousLayerFraction returns the fraction of layers containing
// both bodies in which their regions are fully separated.
func (r *Result) DiscontinuousLayerFraction(a, b string) float64 {
	both, disc := 0, 0
	for i := range r.Layers {
		l := &r.Layers[i]
		present := 0
		for _, name := range l.Bodies() {
			if name == a || name == b {
				present++
			}
		}
		if present != 2 {
			continue
		}
		both++
		if l.Discontinuous(a, b) {
			disc++
		}
	}
	if both == 0 {
		return 0
	}
	return float64(disc) / float64(both)
}

// InterfaceStats aggregates the void-band geometry across all layers.
type InterfaceStats struct {
	// Layers is the number of layers with an interface between the pair.
	Layers int
	// MaxWidth is the largest void width found anywhere.
	MaxWidth float64
	// MeanWidth is the sample-weighted mean void width.
	MeanWidth float64
	// Area is the approximate total interface area (length x layer
	// height summed over layers), mm^2.
	Area float64
	// MeanCrossings is the average number of proper boundary crossings
	// per interface layer — the gap/overlap interleaving count of paper
	// Fig. 4's magnified views. High in x-y (the contours weave), low or
	// zero in x-z.
	MeanCrossings float64
}

// InterfaceStatsBetween aggregates interface geometry for a body pair
// over the whole sliced model.
func (r *Result) InterfaceStatsBetween(a, b string) InterfaceStats {
	var st InterfaceStats
	var widthSum float64
	var nSamples, crossings int
	for i := range r.Layers {
		for _, bi := range r.Layers[i].Interfaces {
			if !((bi.BodyA == a && bi.BodyB == b) || (bi.BodyA == b && bi.BodyB == a)) {
				continue
			}
			st.Layers++
			st.Area += bi.Length * r.Opts.LayerHeight
			crossings += bi.Crossings
			for _, s := range bi.Samples {
				widthSum += s.Width
				nSamples++
				if s.Width > st.MaxWidth {
					st.MaxWidth = s.Width
				}
			}
		}
	}
	if nSamples > 0 {
		st.MeanWidth = widthSum / float64(nSamples)
	}
	if st.Layers > 0 {
		st.MeanCrossings = float64(crossings) / float64(st.Layers)
	}
	return st
}
