package slicer

import (
	"context"
	"fmt"
	"math"
	"sync"

	"obfuscade/internal/geom"
	"obfuscade/internal/mesh"
	"obfuscade/internal/obs"
	"obfuscade/internal/trace"
)

// Index metrics: build latency plus deterministic size counters. The
// crossing count is exactly the number of (triangle, layer) pairs the
// indexed kernel visits, so layers_per_second regressions can be
// correlated with workload growth rather than guessed at. The rejected
// counter counts injected indexes that failed the compatibility guard
// (a caller bug — content-addressed memo keys make it structurally
// impossible); they fall back to a fresh build, never to wrong output.
var (
	stIndexBuild    = obs.Stage("slicer.index.build")
	mIndexTris      = obs.Default().Counter("slicer.index.triangles")
	mIndexCrossings = obs.Default().Counter("slicer.index.crossings")
	mIndexRejected  = obs.Default().Counter("slicer.index.rejected")
)

// sweepIndex maps every layer to the triangles whose z-extent spans its
// slicing plane, one bucket list per (shell, layer). It is built once per
// SliceCtx in O(T + crossings) from the mesh's ZSpans view and is
// read-only afterwards, so the parallel layer fan-out shares it without
// locks.
//
// Bucket ranges are conservative by up to one layer on each side (float
// guard): Triangle.IntersectPlaneZ re-checks the exact transversality
// condition, so a conservative bucket can only add cheap rejections, never
// change the output. Within a bucket, triangle indices are ascending —
// the same visiting order as the naive full rescan — which is what keeps
// the indexed kernel byte-identical to sliceShellNaive.
type sweepIndex struct {
	shells []shellIndex
}

// shellIndex is one shell's layer buckets in arena form: bucket i is
// tris[off[i]:off[i+1]].
type shellIndex struct {
	off  []int32
	tris []int32
}

// layer returns the ascending triangle indices bucketed for layer i.
func (ix *shellIndex) layer(i int) []int32 {
	return ix.tris[ix.off[i]:ix.off[i+1]]
}

// layerSpan converts a z-interval to a conservative [lo, hi] layer range
// for planes at z = minZ + (i+0.5)*h, clamped to [0, nLayers).
func layerSpan(zmin, zmax, minZ, h float64, nLayers int) (lo, hi int) {
	lo = int(math.Floor((zmin - minZ) / h))
	hi = int(math.Ceil((zmax-minZ)/h - 0.5))
	if lo < 0 {
		lo = 0
	}
	if hi > nLayers-1 {
		hi = nLayers - 1
	}
	return lo, hi
}

// buildSweepIndex builds the per-shell layer buckets for a slice run.
// The stage span and timing are emitted here — not at the call sites —
// so the trace census and stage histograms are identical whether the
// index is built inline by SliceCtx or inside a memo build closure.
func buildSweepIndex(ctx context.Context, m *mesh.Mesh, minZ, layerH float64, nLayers int) *sweepIndex {
	span := stIndexBuild.Start()
	defer span.End()
	_, tsp := trace.StartSpan(ctx, "stage", "slicer.index.build")
	defer tsp.End()

	ix := &sweepIndex{shells: make([]shellIndex, len(m.Shells))}
	var spans []mesh.ZSpan
	var tris, crossings int64
	for si := range m.Shells {
		spans = m.Shells[si].ZSpans(spans)
		tris += int64(len(spans))
		counts := make([]int32, nLayers)
		total := 0
		for _, sp := range spans {
			lo, hi := layerSpan(sp.Min, sp.Max, minZ, layerH, nLayers)
			for l := lo; l <= hi; l++ {
				counts[l]++
				total++
			}
		}
		sh := shellIndex{
			off:  make([]int32, nLayers+1),
			tris: make([]int32, total),
		}
		var acc int32
		for l, c := range counts {
			sh.off[l] = acc
			acc += c
		}
		sh.off[nLayers] = acc
		// Fill in triangle order so every bucket is ascending; the cursor
		// trick advances off[l] while filling and restores it afterwards.
		for ti, sp := range spans {
			lo, hi := layerSpan(sp.Min, sp.Max, minZ, layerH, nLayers)
			for l := lo; l <= hi; l++ {
				sh.tris[sh.off[l]] = int32(ti)
				sh.off[l]++
			}
		}
		for l := nLayers - 1; l > 0; l-- {
			sh.off[l] = sh.off[l-1]
		}
		if nLayers > 0 {
			sh.off[0] = 0
		}
		ix.shells[si] = sh
		crossings += int64(total)
	}
	mIndexTris.Add(tris)
	mIndexCrossings.Add(crossings)
	return ix
}

// Index is an immutable, shareable z-sweep index over one oriented mesh
// at one layer height — the serial prologue of a slice run, detached so
// near-duplicate jobs (the same STL bytes sliced again, e.g. by a stage
// memo replaying a matrix key) reuse it instead of rebuilding. It holds
// only triangle ordinals, never mesh pointers, so it is valid for any
// mesh whose triangles are byte-identical to the one it was built from;
// the compatibility guard in SliceIndexedCtx re-derives the cheap shape
// facts (layer grid, shell sizes) and rejects anything else.
type Index struct {
	sweep       *sweepIndex
	minZ        float64
	layerHeight float64
	nLayers     int
	// shellTris is the per-shell triangle count — with the content hash
	// the memo keys on, enough to reject a structurally foreign mesh.
	shellTris []int
}

// layerCount is the shared layer-grid derivation of SliceCtx and
// BuildIndex; the two must agree or an injected index would silently
// bucket for a different grid.
func layerCount(bounds geom.AABB, layerH float64) (int, error) {
	n := int(math.Ceil((bounds.Max.Z - bounds.Min.Z) / layerH))
	if n <= 0 {
		n = 1
	}
	if n > 100000 {
		return 0, fmt.Errorf("slicer: %d layers exceed sanity limit (layer height %g)", n, layerH)
	}
	return n, nil
}

// BuildIndex builds the z-sweep index for slicing m under opts, for
// injection into SliceIndexedCtx. The index is read-only after return
// and safe to share across concurrent slice runs.
func BuildIndex(ctx context.Context, m *mesh.Mesh, opts Options) (*Index, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	bounds := m.Bounds()
	if bounds.IsEmpty() {
		return nil, fmt.Errorf("slicer: empty mesh")
	}
	nLayers, err := layerCount(bounds, opts.LayerHeight)
	if err != nil {
		return nil, err
	}
	ix := &Index{
		minZ:        bounds.Min.Z,
		layerHeight: opts.LayerHeight,
		nLayers:     nLayers,
		shellTris:   make([]int, len(m.Shells)),
	}
	for si := range m.Shells {
		ix.shellTris[si] = len(m.Shells[si].Tris)
	}
	ix.sweep = buildSweepIndex(ctx, m, bounds.Min.Z, opts.LayerHeight, nLayers)
	return ix, nil
}

// SizeBytes reports the index's memory residency, for memo byte budgets.
func (ix *Index) SizeBytes() int64 {
	var n int64
	for _, sh := range ix.sweep.shells {
		n += int64(len(sh.off)+len(sh.tris)) * 4
	}
	return n + int64(len(ix.shellTris))*8
}

// compatible reports whether the index was built for exactly this layer
// grid and shell structure.
func (ix *Index) compatible(m *mesh.Mesh, minZ, layerH float64, nLayers int) bool {
	if ix == nil || ix.sweep == nil ||
		ix.minZ != minZ || ix.layerHeight != layerH || ix.nLayers != nLayers ||
		len(ix.shellTris) != len(m.Shells) {
		return false
	}
	for si := range m.Shells {
		if ix.shellTris[si] != len(m.Shells[si].Tris) {
			return false
		}
	}
	return true
}

// chainSeg is one directed cross-section segment awaiting chaining.
type chainSeg struct{ a, b geom.Vec2 }

// chainScratch is the reusable working set of one sliceShell call: the
// segment list, the snap-grid cell table and its arena-backed per-cell
// index lists, and the consumed bitset. Pooled so the parallel layer
// fan-out stays allocation-flat regardless of layer count.
type chainScratch struct {
	segs    []chainSeg
	cellOf  map[[2]int64]int32 // quantised start point -> dense cell id
	segCell []int32            // per segment: its cell id
	cellCnt []int32            // per cell: live entry count (shrinks on take)
	cellOff []int32            // per cell: arena offset
	entries []int32            // arena of segment indices, ascending per cell
	used    []bool             // consumed segments (loop seeds and takes)
}

var chainScratchPool = sync.Pool{New: func() any {
	return &chainScratch{cellOf: make(map[[2]int64]int32)}
}}

// grow returns b resized to n, reallocating only when capacity is short.
// Contents are unspecified; callers overwrite or zero what they need.
func grow(b []int32, n int) []int32 {
	if cap(b) < n {
		return make([]int32, n)
	}
	return b[:n]
}
