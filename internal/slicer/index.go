package slicer

import (
	"math"
	"sync"

	"obfuscade/internal/geom"
	"obfuscade/internal/mesh"
	"obfuscade/internal/obs"
)

// Index metrics: build latency plus deterministic size counters. The
// crossing count is exactly the number of (triangle, layer) pairs the
// indexed kernel visits, so layers_per_second regressions can be
// correlated with workload growth rather than guessed at.
var (
	stIndexBuild    = obs.Stage("slicer.index.build")
	mIndexTris      = obs.Default().Counter("slicer.index.triangles")
	mIndexCrossings = obs.Default().Counter("slicer.index.crossings")
)

// sweepIndex maps every layer to the triangles whose z-extent spans its
// slicing plane, one bucket list per (shell, layer). It is built once per
// SliceCtx in O(T + crossings) from the mesh's ZSpans view and is
// read-only afterwards, so the parallel layer fan-out shares it without
// locks.
//
// Bucket ranges are conservative by up to one layer on each side (float
// guard): Triangle.IntersectPlaneZ re-checks the exact transversality
// condition, so a conservative bucket can only add cheap rejections, never
// change the output. Within a bucket, triangle indices are ascending —
// the same visiting order as the naive full rescan — which is what keeps
// the indexed kernel byte-identical to sliceShellNaive.
type sweepIndex struct {
	shells []shellIndex
}

// shellIndex is one shell's layer buckets in arena form: bucket i is
// tris[off[i]:off[i+1]].
type shellIndex struct {
	off  []int32
	tris []int32
}

// layer returns the ascending triangle indices bucketed for layer i.
func (ix *shellIndex) layer(i int) []int32 {
	return ix.tris[ix.off[i]:ix.off[i+1]]
}

// layerSpan converts a z-interval to a conservative [lo, hi] layer range
// for planes at z = minZ + (i+0.5)*h, clamped to [0, nLayers).
func layerSpan(zmin, zmax, minZ, h float64, nLayers int) (lo, hi int) {
	lo = int(math.Floor((zmin - minZ) / h))
	hi = int(math.Ceil((zmax-minZ)/h - 0.5))
	if lo < 0 {
		lo = 0
	}
	if hi > nLayers-1 {
		hi = nLayers - 1
	}
	return lo, hi
}

// buildSweepIndex builds the per-shell layer buckets for a slice run.
func buildSweepIndex(m *mesh.Mesh, minZ, layerH float64, nLayers int) *sweepIndex {
	span := stIndexBuild.Start()
	defer span.End()

	ix := &sweepIndex{shells: make([]shellIndex, len(m.Shells))}
	var spans []mesh.ZSpan
	var tris, crossings int64
	for si := range m.Shells {
		spans = m.Shells[si].ZSpans(spans)
		tris += int64(len(spans))
		counts := make([]int32, nLayers)
		total := 0
		for _, sp := range spans {
			lo, hi := layerSpan(sp.Min, sp.Max, minZ, layerH, nLayers)
			for l := lo; l <= hi; l++ {
				counts[l]++
				total++
			}
		}
		sh := shellIndex{
			off:  make([]int32, nLayers+1),
			tris: make([]int32, total),
		}
		var acc int32
		for l, c := range counts {
			sh.off[l] = acc
			acc += c
		}
		sh.off[nLayers] = acc
		// Fill in triangle order so every bucket is ascending; the cursor
		// trick advances off[l] while filling and restores it afterwards.
		for ti, sp := range spans {
			lo, hi := layerSpan(sp.Min, sp.Max, minZ, layerH, nLayers)
			for l := lo; l <= hi; l++ {
				sh.tris[sh.off[l]] = int32(ti)
				sh.off[l]++
			}
		}
		for l := nLayers - 1; l > 0; l-- {
			sh.off[l] = sh.off[l-1]
		}
		if nLayers > 0 {
			sh.off[0] = 0
		}
		ix.shells[si] = sh
		crossings += int64(total)
	}
	mIndexTris.Add(tris)
	mIndexCrossings.Add(crossings)
	return ix
}

// chainSeg is one directed cross-section segment awaiting chaining.
type chainSeg struct{ a, b geom.Vec2 }

// chainScratch is the reusable working set of one sliceShell call: the
// segment list, the snap-grid cell table and its arena-backed per-cell
// index lists, and the consumed bitset. Pooled so the parallel layer
// fan-out stays allocation-flat regardless of layer count.
type chainScratch struct {
	segs    []chainSeg
	cellOf  map[[2]int64]int32 // quantised start point -> dense cell id
	segCell []int32            // per segment: its cell id
	cellCnt []int32            // per cell: live entry count (shrinks on take)
	cellOff []int32            // per cell: arena offset
	entries []int32            // arena of segment indices, ascending per cell
	used    []bool             // consumed segments (loop seeds and takes)
}

var chainScratchPool = sync.Pool{New: func() any {
	return &chainScratch{cellOf: make(map[[2]int64]int32)}
}}

// grow returns b resized to n, reallocating only when capacity is short.
// Contents are unspecified; callers overwrite or zero what they need.
func grow(b []int32, n int) []int32 {
	if cap(b) < n {
		return make([]int32, n)
	}
	return b[:n]
}
