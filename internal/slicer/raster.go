package slicer

import (
	"fmt"
	"math"
	"sort"

	"obfuscade/internal/geom"
)

// CellClass classifies one raster cell of a layer.
type CellClass uint8

const (
	// Empty cells receive no material.
	Empty CellClass = iota
	// Model cells receive model material.
	Model
	// Void cells are enclosed by model geometry but receive no model
	// material (even winding): cavities and split slivers. The printer
	// decides whether support reaches them.
	Void
)

// Raster is the scanline classification of one layer at a fixed cell size.
type Raster struct {
	// Origin is the world position of cell (0, 0)'s corner.
	Origin geom.Vec2
	// Cell is the cell edge length, mm.
	Cell float64
	// NX, NY are the grid dimensions.
	NX, NY int
	// Class holds the classification, row-major (y*NX + x).
	Class []CellClass
	// Owner holds a bitmask of bodies whose material covers the cell
	// centre (bit i = Bodies[i]).
	Owner []uint32
	// Bodies indexes the owner bits.
	Bodies []string
}

// At returns the classification at cell (ix, iy), Empty outside the grid.
func (r *Raster) At(ix, iy int) CellClass {
	if ix < 0 || iy < 0 || ix >= r.NX || iy >= r.NY {
		return Empty
	}
	return r.Class[iy*r.NX+ix]
}

// OwnerAt returns the owner bitmask at (ix, iy).
func (r *Raster) OwnerAt(ix, iy int) uint32 {
	if ix < 0 || iy < 0 || ix >= r.NX || iy >= r.NY {
		return 0
	}
	return r.Owner[iy*r.NX+ix]
}

// Center returns the world coordinates of a cell centre.
func (r *Raster) Center(ix, iy int) geom.Vec2 {
	return geom.V2(
		r.Origin.X+(float64(ix)+0.5)*r.Cell,
		r.Origin.Y+(float64(iy)+0.5)*r.Cell,
	)
}

// CountClass returns the number of cells with the given class.
func (r *Raster) CountClass(c CellClass) int {
	n := 0
	for _, v := range r.Class {
		if v == c {
			n++
		}
	}
	return n
}

// Rasterize classifies the layer over the given 2D bounds with the given
// cell size, using one scanline pass per row (O(edges + cells)).
func (l *Layer) Rasterize(min, max geom.Vec2, cell float64, bodies []string) (*Raster, error) {
	if cell <= 0 {
		return nil, fmt.Errorf("slicer: cell size must be positive, got %g", cell)
	}
	nx := int(math.Ceil((max.X - min.X) / cell))
	ny := int(math.Ceil((max.Y - min.Y) / cell))
	if nx <= 0 || ny <= 0 {
		return nil, fmt.Errorf("slicer: empty raster bounds")
	}
	if nx*ny > 50_000_000 {
		return nil, fmt.Errorf("slicer: raster %dx%d exceeds sanity limit", nx, ny)
	}
	bodyBit := make(map[string]int, len(bodies))
	for i, b := range bodies {
		if i >= 32 {
			return nil, fmt.Errorf("slicer: more than 32 bodies not supported")
		}
		bodyBit[b] = i
	}
	r := &Raster{
		Origin: min,
		Cell:   cell,
		NX:     nx,
		NY:     ny,
		Class:  make([]CellClass, nx*ny),
		Owner:  make([]uint32, nx*ny),
		Bodies: bodies,
	}

	type crossing struct {
		x     float64
		delta int // contribution to signed winding for points right of x
		body  int // body bit, -1 if unknown
	}
	var crossings []crossing
	for iy := 0; iy < ny; iy++ {
		y := min.Y + (float64(iy)+0.5)*cell
		crossings = crossings[:0]
		for _, c := range l.Contours {
			if !c.Closed {
				continue
			}
			bit, okBody := bodyBit[c.Body]
			if !okBody {
				bit = -1
			}
			n := len(c.Poly)
			for i := 0; i < n; i++ {
				a := c.Poly[i]
				b := c.Poly[(i+1)%n]
				// Half-open rule [minY, maxY) avoids double counting at
				// shared vertices.
				if (a.Y <= y) == (b.Y <= y) {
					continue
				}
				t := (y - a.Y) / (b.Y - a.Y)
				x := a.X + t*(b.X-a.X)
				delta := 1
				if b.Y > a.Y {
					delta = -1 // upward edge closes the winding to its right
				}
				crossings = append(crossings, crossing{x: x, delta: delta, body: bit})
			}
		}
		sort.Slice(crossings, func(i, j int) bool { return crossings[i].x < crossings[j].x })

		w := 0
		bodyW := make([]int, len(bodies))
		ci := 0
		for ix := 0; ix < nx; ix++ {
			xc := min.X + (float64(ix)+0.5)*cell
			for ci < len(crossings) && crossings[ci].x <= xc {
				w += crossings[ci].delta
				if crossings[ci].body >= 0 {
					bodyW[crossings[ci].body] += crossings[ci].delta
				}
				ci++
			}
			idx := iy*nx + ix
			var owner uint32
			for bi, bw := range bodyW {
				if bw > 0 && bw%2 == 1 {
					owner |= 1 << uint(bi)
				}
			}
			r.Owner[idx] = owner
			switch {
			case w > 0 && w%2 == 1:
				r.Class[idx] = Model
			case w != 0 || owner != 0:
				// Inside some geometry but not receiving material:
				// cavity, doubly-covered sliver, or reversed surface
				// enclosure.
				r.Class[idx] = Void
			default:
				r.Class[idx] = Empty
			}
		}
	}
	return r, nil
}

// SolidArea integrates the model-material area of the layer by scanline at
// the given x resolution (exact in y per row sample).
func (l *Layer) SolidArea(min, max geom.Vec2, cell float64) float64 {
	r, err := l.Rasterize(min, max, cell, nil)
	if err != nil {
		return 0
	}
	return float64(r.CountClass(Model)) * cell * cell
}
