package slicer

import (
	"fmt"
	"math"
	"slices"
	"sync"

	"obfuscade/internal/geom"
)

// CellClass classifies one raster cell of a layer.
type CellClass uint8

const (
	// Empty cells receive no material.
	Empty CellClass = iota
	// Model cells receive model material.
	Model
	// Void cells are enclosed by model geometry but receive no model
	// material (even winding): cavities and split slivers. The printer
	// decides whether support reaches them.
	Void
)

// Raster is the scanline classification of one layer at a fixed cell size.
type Raster struct {
	// Origin is the world position of cell (0, 0)'s corner.
	Origin geom.Vec2
	// Cell is the cell edge length, mm.
	Cell float64
	// NX, NY are the grid dimensions.
	NX, NY int
	// Class holds the classification, row-major (y*NX + x).
	Class []CellClass
	// Owner holds a bitmask of bodies whose material covers the cell
	// centre (bit i = Bodies[i]).
	Owner []uint32
	// Bodies indexes the owner bits.
	Bodies []string
}

// At returns the classification at cell (ix, iy), Empty outside the grid.
func (r *Raster) At(ix, iy int) CellClass {
	if ix < 0 || iy < 0 || ix >= r.NX || iy >= r.NY {
		return Empty
	}
	return r.Class[iy*r.NX+ix]
}

// OwnerAt returns the owner bitmask at (ix, iy).
func (r *Raster) OwnerAt(ix, iy int) uint32 {
	if ix < 0 || iy < 0 || ix >= r.NX || iy >= r.NY {
		return 0
	}
	return r.Owner[iy*r.NX+ix]
}

// Center returns the world coordinates of a cell centre.
func (r *Raster) Center(ix, iy int) geom.Vec2 {
	return geom.V2(
		r.Origin.X+(float64(ix)+0.5)*r.Cell,
		r.Origin.Y+(float64(iy)+0.5)*r.Cell,
	)
}

// CountClass returns the number of cells with the given class.
func (r *Raster) CountClass(c CellClass) int {
	n := 0
	for _, v := range r.Class {
		if v == c {
			n++
		}
	}
	return n
}

// crossing is one scanline/edge intersection.
type crossing struct {
	x     float64
	delta int32 // contribution to signed winding for points right of x
	body  int32 // body bit, -1 if unknown
}

// rasterEdge is one non-horizontal contour edge flattened for scanline
// rasterization, with its winding contribution and body bit precomputed.
type rasterEdge struct {
	a, b  geom.Vec2
	delta int32
	body  int32
}

// rasterScratch is the reusable working set of one Rasterize call: the
// flat edge list, the per-row bucket arena, the crossing list and the
// per-body winding accumulator. Pooled so repeated rasterization (the
// toolpath planner calls Rasterize once per layer) stays allocation-flat.
type rasterScratch struct {
	edges     []rasterEdge
	rowCnt    []int32
	rowOff    []int32
	entries   []int32
	crossings []crossing
	bodyW     []int
}

var rasterScratchPool = sync.Pool{New: func() any { return new(rasterScratch) }}

// rowSpan converts an edge's y-interval to a conservative [lo, hi] row
// range for scanlines at y = minY + (iy+0.5)*cell, clamped to [0, ny).
// Rows can only be added, never lost: the exact half-open crossing rule is
// re-checked per row, so a conservative range cannot change the raster.
func rowSpan(yLo, yHi, minY, cell float64, ny int) (lo, hi int) {
	lo = int(math.Floor((yLo-minY)/cell - 0.5))
	hi = int(math.Ceil((yHi-minY)/cell - 0.5))
	if lo < 0 {
		lo = 0
	}
	if hi > ny-1 {
		hi = ny - 1
	}
	return lo, hi
}

// Rasterize classifies the layer over the given 2D bounds with the given
// cell size. Edges are flattened and bucketed by row interval once, so
// each scanline visits only the edges that can cross it
// (O(edges + crossings + cells) instead of O(rows * edges)).
//
// The per-row crossing list is built by ascending edge index — the same
// order the naive full scan produces — and equal-x crossings are consumed
// together before any cell is classified, so the output is byte-identical
// to rasterizeNaive.
func (l *Layer) Rasterize(min, max geom.Vec2, cell float64, bodies []string) (*Raster, error) {
	return l.RasterizeInto(min, max, cell, bodies, nil)
}

// RasterizeInto is Rasterize recycling the cell arrays of a previous
// raster: when reuse is non-nil its Class/Owner backing stores are stolen
// (cleared, resized) for the new result, so a caller rasterizing many
// layers of one build — the virtual printer's deposit loop — allocates
// the big arrays once instead of per layer. reuse must not be read
// afterwards. Output is byte-identical to Rasterize.
func (l *Layer) RasterizeInto(min, max geom.Vec2, cell float64, bodies []string, reuse *Raster) (*Raster, error) {
	if cell <= 0 {
		return nil, fmt.Errorf("slicer: cell size must be positive, got %g", cell)
	}
	nx := int(math.Ceil((max.X - min.X) / cell))
	ny := int(math.Ceil((max.Y - min.Y) / cell))
	if nx <= 0 || ny <= 0 {
		return nil, fmt.Errorf("slicer: empty raster bounds")
	}
	if nx*ny > 50_000_000 {
		return nil, fmt.Errorf("slicer: raster %dx%d exceeds sanity limit", nx, ny)
	}
	bodyBit := make(map[string]int, len(bodies))
	for i, b := range bodies {
		if i >= 32 {
			return nil, fmt.Errorf("slicer: more than 32 bodies not supported")
		}
		bodyBit[b] = i
	}
	r := &Raster{
		Origin: min,
		Cell:   cell,
		NX:     nx,
		NY:     ny,
		Bodies: bodies,
	}
	if reuse != nil && cap(reuse.Class) >= nx*ny && cap(reuse.Owner) >= nx*ny {
		r.Class = reuse.Class[:nx*ny]
		clear(r.Class)
		r.Owner = reuse.Owner[:nx*ny]
		clear(r.Owner)
	} else {
		r.Class = make([]CellClass, nx*ny)
		r.Owner = make([]uint32, nx*ny)
	}

	sc := rasterScratchPool.Get().(*rasterScratch)
	defer rasterScratchPool.Put(sc)

	// Flatten the closed contours' edges in contour order. Horizontal
	// edges can never satisfy the half-open crossing rule and are dropped
	// here once instead of per row.
	edges := sc.edges[:0]
	for _, c := range l.Contours {
		if !c.Closed {
			continue
		}
		bit, okBody := bodyBit[c.Body]
		if !okBody {
			bit = -1
		}
		n := len(c.Poly)
		for i := 0; i < n; i++ {
			a := c.Poly[i]
			b := c.Poly[(i+1)%n]
			if a.Y == b.Y {
				continue
			}
			delta := int32(1)
			if b.Y > a.Y {
				delta = -1 // upward edge closes the winding to its right
			}
			edges = append(edges, rasterEdge{a: a, b: b, delta: delta, body: int32(bit)})
		}
	}
	sc.edges = edges

	// Bucket edges by row interval (count, prefix offsets, cursor fill).
	// Filling in ascending edge order keeps every bucket ascending.
	sc.rowCnt = grow(sc.rowCnt, ny)
	for i := range sc.rowCnt {
		sc.rowCnt[i] = 0
	}
	total := 0
	for ei := range edges {
		e := &edges[ei]
		yLo, yHi := e.a.Y, e.b.Y
		if yLo > yHi {
			yLo, yHi = yHi, yLo
		}
		lo, hi := rowSpan(yLo, yHi, min.Y, cell, ny)
		for iy := lo; iy <= hi; iy++ {
			sc.rowCnt[iy]++
			total++
		}
	}
	sc.rowOff = grow(sc.rowOff, ny+1)
	var acc int32
	for iy, c := range sc.rowCnt {
		sc.rowOff[iy] = acc
		acc += c
	}
	sc.rowOff[ny] = acc
	sc.entries = grow(sc.entries, total)
	for ei := range edges {
		e := &edges[ei]
		yLo, yHi := e.a.Y, e.b.Y
		if yLo > yHi {
			yLo, yHi = yHi, yLo
		}
		lo, hi := rowSpan(yLo, yHi, min.Y, cell, ny)
		for iy := lo; iy <= hi; iy++ {
			sc.entries[sc.rowOff[iy]] = int32(ei)
			sc.rowOff[iy]++
		}
	}
	for iy := ny - 1; iy > 0; iy-- {
		sc.rowOff[iy] = sc.rowOff[iy-1]
	}
	if ny > 0 {
		sc.rowOff[0] = 0
	}

	if cap(sc.bodyW) < len(bodies) {
		sc.bodyW = make([]int, len(bodies))
	}
	bodyW := sc.bodyW[:len(bodies)]

	crossings := sc.crossings
	for iy := 0; iy < ny; iy++ {
		y := min.Y + (float64(iy)+0.5)*cell
		crossings = crossings[:0]
		for _, ei := range sc.entries[sc.rowOff[iy]:sc.rowOff[iy+1]] {
			e := &edges[ei]
			// Half-open rule [minY, maxY) avoids double counting at
			// shared vertices.
			if (e.a.Y <= y) == (e.b.Y <= y) {
				continue
			}
			t := (y - e.a.Y) / (e.b.Y - e.a.Y)
			x := e.a.X + t*(e.b.X-e.a.X)
			crossings = append(crossings, crossing{x: x, delta: e.delta, body: e.body})
		}
		slices.SortFunc(crossings, func(p, q crossing) int {
			switch {
			case p.x < q.x:
				return -1
			case p.x > q.x:
				return 1
			default:
				return 0
			}
		})

		w := 0
		for i := range bodyW {
			bodyW[i] = 0
		}
		ci := 0
		for ix := 0; ix < nx; ix++ {
			xc := min.X + (float64(ix)+0.5)*cell
			for ci < len(crossings) && crossings[ci].x <= xc {
				w += int(crossings[ci].delta)
				if crossings[ci].body >= 0 {
					bodyW[crossings[ci].body] += int(crossings[ci].delta)
				}
				ci++
			}
			idx := iy*nx + ix
			var owner uint32
			for bi, bw := range bodyW {
				if bw > 0 && bw%2 == 1 {
					owner |= 1 << uint(bi)
				}
			}
			r.Owner[idx] = owner
			switch {
			case w > 0 && w%2 == 1:
				r.Class[idx] = Model
			case w != 0 || owner != 0:
				// Inside some geometry but not receiving material:
				// cavity, doubly-covered sliver, or reversed surface
				// enclosure.
				r.Class[idx] = Void
			default:
				r.Class[idx] = Empty
			}
		}
	}
	sc.crossings = crossings
	return r, nil
}

// SolidArea integrates the model-material area of the layer by scanline at
// the given x resolution (exact in y per row sample).
func (l *Layer) SolidArea(min, max geom.Vec2, cell float64) float64 {
	r, err := l.Rasterize(min, max, cell, nil)
	if err != nil {
		return 0
	}
	return float64(r.CountClass(Model)) * cell * cell
}
