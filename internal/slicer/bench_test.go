package slicer

import (
	"testing"

	"obfuscade/internal/brep"
	"obfuscade/internal/geom"
	"obfuscade/internal/mesh"
	"obfuscade/internal/parallel"
	"obfuscade/internal/tessellate"
)

// Kernel benchmarks: indexed vs naive on the paper's split tensile bar.
// Both run on a 1-worker pool so the comparison isolates the kernels from
// the fan-out; the layers/s metric is what the benchdiff gate tracks.
//
//	go test ./internal/slicer -bench 'BenchmarkSliceKernel' -run '^$' -benchmem

func benchSplitBar(b *testing.B, res tessellate.Resolution) *mesh.Mesh {
	b.Helper()
	p, err := brep.NewTensileBar("bar", brep.DefaultTensileBar())
	if err != nil {
		b.Fatal(err)
	}
	s, err := brep.SplitSplineThroughGauge(brep.DefaultTensileBar(), 2, 3)
	if err != nil {
		b.Fatal(err)
	}
	if err := brep.SplitBySpline(p, "bar", s); err != nil {
		b.Fatal(err)
	}
	m, err := tessellate.Tessellate(p, res)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkSliceKernelIndexed(b *testing.B) {
	m := benchSplitBar(b, tessellate.Fine)
	parallel.SetDefault(1)
	defer parallel.SetDefault(0)
	opts := DefaultOptions()
	var layers int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Slice(m, opts)
		if err != nil {
			b.Fatal(err)
		}
		layers = len(res.Layers)
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(layers*b.N)/sec, "layers/s")
	}
}

func BenchmarkSliceKernelNaive(b *testing.B) {
	m := benchSplitBar(b, tessellate.Fine)
	opts := DefaultOptions()
	var layers int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sliceNaive(m, opts)
		if err != nil {
			b.Fatal(err)
		}
		layers = len(res.Layers)
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(layers*b.N)/sec, "layers/s")
	}
}

// Rasterizer benchmarks on a mid-gauge layer of the split bar; allocs/op
// is the headline number (the bucketed version reuses pooled scratch).
//
//	go test ./internal/slicer -bench 'BenchmarkRasterize' -run '^$' -benchmem

func benchRasterLayer(b *testing.B) (*Layer, geom.Vec2, geom.Vec2, []string) {
	b.Helper()
	m := benchSplitBar(b, tessellate.Fine)
	res, err := Slice(m, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	l := &res.Layers[len(res.Layers)/2]
	bd := res.Bounds
	return l, geom.V2(bd.Min.X-1, bd.Min.Y-1), geom.V2(bd.Max.X+1, bd.Max.Y+1), res.BodyNames
}

func BenchmarkRasterize(b *testing.B) {
	l, min, max, bodies := benchRasterLayer(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Rasterize(min, max, 0.25, bodies); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRasterizeNaive(b *testing.B) {
	l, min, max, bodies := benchRasterLayer(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rasterizeNaive(l, min, max, 0.25, bodies); err != nil {
			b.Fatal(err)
		}
	}
}
