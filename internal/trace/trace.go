// Package trace is the run-level structured event subsystem of the
// manufacture pipeline: where package obs answers "how much work, how
// fast" in aggregate, trace answers "which key, on which worker, in what
// order" for one run — the audit trail a production AM service retains
// and the synthetic stand-in for the printer's physical deposition
// timeline that the paper's side-channel references treat as an
// information channel.
//
// Events are recorded into a fixed-capacity ring buffer guarded by one
// short mutex hold per event (a struct copy); span IDs come from an
// atomic allocator so span creation never takes the lock. When the ring
// wraps, the oldest events are overwritten and counted as dropped — a
// bounded-memory contract that lets the recorder stay always-on.
//
// Determinism contract (asserted by the tests in internal/core):
//
//   - The *multiset* of (kind, cat, name, args) tuples depends only on
//     the work performed: same seed and inputs give the same event
//     counts at any worker-pool size (Recorder.DeterministicJSON).
//   - Sequence numbers, span IDs, timestamps, durations and worker
//     attribution are scheduling-dependent and excluded from the
//     deterministic view.
//
// The span hierarchy mirrors the paper's process chain: a run span
// (quality matrix) parents one span per processing key, which parents
// the stage spans (CAD, STL, slicing, printing, simulation), which emit
// batch instants for the per-layer and per-replicate fan-outs.
package trace

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies an event.
type Kind string

const (
	// KindSpan is a completed timed span.
	KindSpan Kind = "span"
	// KindInstant is a point event (typically a batch marker carrying a
	// deterministic count in its args).
	KindInstant Kind = "instant"
)

// Arg is one key/value attribute of an event. Args are kept in the
// order the call site supplies them, so the serialized form is stable.
type Arg struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// A constructs an Arg.
func A(key, value string) Arg { return Arg{Key: key, Value: value} }

// Event is one recorded trace event. Start is the offset from the
// recorder's epoch (its creation or last Reset).
type Event struct {
	// Seq is the monotonic sequence number in recording order.
	Seq uint64 `json:"seq"`
	// ID is the span ID (0 for instants).
	ID uint64 `json:"id,omitempty"`
	// Parent is the enclosing span's ID (0 at the root).
	Parent uint64 `json:"parent,omitempty"`
	// Kind is span or instant.
	Kind Kind `json:"kind"`
	// Cat is the hierarchy level: "run", "key", "stage" or "batch".
	Cat string `json:"cat"`
	// Name identifies the event within its category.
	Name string `json:"name"`
	// Worker is the worker-pool lane that produced the event (-1 when
	// recorded outside a pool task).
	Worker int `json:"worker"`
	// Trace is the end-to-end trace identifier carried by the recording
	// context (empty outside a propagated request). Like worker
	// attribution it is excluded from the deterministic multiset view.
	Trace string `json:"trace,omitempty"`
	// Start is the offset from the recorder epoch.
	Start time.Duration `json:"start_ns"`
	// Dur is the span duration (0 for instants).
	Dur time.Duration `json:"dur_ns,omitempty"`
	// Args carries event attributes in call-site order.
	Args []Arg `json:"args,omitempty"`
}

// DefaultCapacity is the ring size of recorders created with New(0):
// comfortably larger than a full paperbench -exp all pass, small enough
// (a few MB) to stay resident forever.
const DefaultCapacity = 1 << 14

// Recorder is a fixed-capacity ring buffer of events. All methods are
// safe for concurrent use.
type Recorder struct {
	ids atomic.Uint64 // span ID allocator, lock-free

	mu      sync.Mutex
	epoch   time.Time
	process string  // exported journal lane name (SetProcess)
	buf     []Event // grows to cap, then wraps at total%cap
	cap     int
	total   uint64 // events ever recorded; next event's Seq
}

// New returns a recorder with the given ring capacity (<= 0 means
// DefaultCapacity).
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{cap: capacity, epoch: time.Now()}
}

// Epoch returns the recorder's time origin: event Start offsets are
// relative to it. The merge exporter uses per-process epochs to align
// journals from different processes onto one timeline.
func (r *Recorder) Epoch() time.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// SetProcess names the process for exported journals ("router",
// "shard-0", ...). The name rides the NDJSON meta line so a merged
// trace labels each lane even when the merger supplies no override.
func (r *Recorder) SetProcess(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.process = name
}

// ProcessName returns the name set by SetProcess, or "".
func (r *Recorder) ProcessName() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.process
}

var std = New(0)

// Default returns the process-wide recorder used by the pipeline's
// instrumentation.
func Default() *Recorder { return std }

func (r *Recorder) record(e Event) {
	now := time.Now()
	r.mu.Lock()
	e.Seq = r.total
	e.Start = now.Sub(r.epoch) - e.Dur
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, e)
	} else {
		r.buf[int(r.total)%r.cap] = e
	}
	r.total++
	r.mu.Unlock()
}

// Events returns a copy of the retained events in sequence order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) < r.cap {
		return append(out, r.buf...)
	}
	start := int(r.total) % r.cap
	out = append(out, r.buf[start:]...)
	return append(out, r.buf[:start]...)
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Dropped returns how many events the ring has overwritten.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total - uint64(len(r.buf))
}

// Reset discards all events and restarts the epoch. Span IDs keep
// counting up, so spans straddling a Reset never collide with new ones.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf = nil
	r.total = 0
	r.epoch = time.Now()
}

// Context plumbing: the current span ID and the worker lane travel in
// the context so deeply nested stages attribute events correctly
// without new function parameters at every level.

type spanCtxKey struct{}
type workerCtxKey struct{}

// WithWorker tags ctx with a worker-pool lane ID. The parallel package
// stamps every task context; call sites rarely need this directly.
func WithWorker(ctx context.Context, id int) context.Context {
	return context.WithValue(ctx, workerCtxKey{}, id)
}

// Worker returns the worker lane carried by ctx, or -1 when the work is
// not running on a pool.
func Worker(ctx context.Context) int {
	if ctx == nil {
		return -1
	}
	if id, ok := ctx.Value(workerCtxKey{}).(int); ok {
		return id
	}
	return -1
}

func parentSpan(ctx context.Context) uint64 {
	if ctx == nil {
		return 0
	}
	if id, ok := ctx.Value(spanCtxKey{}).(uint64); ok {
		return id
	}
	return 0
}

// Span is one in-flight timed region. The zero or nil Span is a no-op,
// so instrumented code never nil-checks.
type Span struct {
	r       *Recorder
	id      uint64
	parent  uint64
	cat     string
	name    string
	worker  int
	trace   string
	start   time.Time
	args    []Arg
	ended   bool
	endOnce sync.Once
}

// ID returns the span's identifier — what a proxied request's
// HeaderTrace names as the remote parent. 0 for the nil span.
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// StartSpan opens a span under the span carried by ctx and returns a
// derived context that parents nested spans and instants to it.
func (r *Recorder) StartSpan(ctx context.Context, cat, name string, args ...Arg) (context.Context, *Span) {
	if ctx == nil {
		ctx = context.Background()
	}
	s := &Span{
		r:      r,
		id:     r.ids.Add(1),
		parent: parentSpan(ctx),
		cat:    cat,
		name:   name,
		worker: Worker(ctx),
		trace:  TraceIDFrom(ctx),
		start:  time.Now(),
		args:   append([]Arg(nil), args...),
	}
	return context.WithValue(ctx, spanCtxKey{}, s.id), s
}

// SetArg appends an attribute to the span before it ends. Call it only
// from the goroutine that owns the span.
func (s *Span) SetArg(key, value string) {
	if s == nil || s.ended {
		return
	}
	s.args = append(s.args, Arg{Key: key, Value: value})
}

// End records the span. Safe to call more than once; only the first
// call records.
func (s *Span) End() {
	if s == nil || s.r == nil {
		return
	}
	s.endOnce.Do(func() {
		s.ended = true
		s.r.record(Event{
			ID:     s.id,
			Parent: s.parent,
			Kind:   KindSpan,
			Cat:    s.cat,
			Name:   s.name,
			Worker: s.worker,
			Trace:  s.trace,
			Dur:    time.Since(s.start),
			Args:   s.args,
		})
	})
}

// Instant records a point event under the span carried by ctx.
func (r *Recorder) Instant(ctx context.Context, cat, name string, args ...Arg) {
	r.record(Event{
		Parent: parentSpan(ctx),
		Kind:   KindInstant,
		Cat:    cat,
		Name:   name,
		Worker: Worker(ctx),
		Trace:  TraceIDFrom(ctx),
		Args:   append([]Arg(nil), args...),
	})
}

// StartSpan opens a span on the default recorder.
func StartSpan(ctx context.Context, cat, name string, args ...Arg) (context.Context, *Span) {
	return std.StartSpan(ctx, cat, name, args...)
}

// Instant records a point event on the default recorder.
func Instant(ctx context.Context, cat, name string, args ...Arg) {
	std.Instant(ctx, cat, name, args...)
}
