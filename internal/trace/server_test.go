package trace

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"obfuscade/internal/obs"
)

func startTestServer(t *testing.T) (*DebugServer, *obs.Registry, *Recorder) {
	t.Helper()
	reg := obs.NewRegistry()
	reg.Counter("test.hits").Add(3)
	rec := New(32)
	ctx, s := rec.StartSpan(context.Background(), "run", "server-test")
	rec.Instant(ctx, "batch", "mark", A("count", "1"))
	s.End()
	srv, err := StartDebugServer("127.0.0.1:0", reg, rec)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, reg, rec
}

func get(t *testing.T, url string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d\n%s", url, resp.StatusCode, body)
	}
	return string(body), resp
}

func TestDebugServerMetrics(t *testing.T) {
	srv, _, _ := startTestServer(t)
	body, resp := get(t, srv.URL()+"/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type %q lacks exposition version", ct)
	}
	if !strings.Contains(body, "obfuscade_test_hits_total 3") {
		t.Fatalf("metrics body missing counter:\n%s", body)
	}
	// Every non-comment line must be "name value" — the shape Prometheus
	// scrapes.
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
}

func TestDebugServerMetricsJSON(t *testing.T) {
	srv, _, _ := startTestServer(t)
	body, _ := get(t, srv.URL()+"/metrics.json")
	var snap map[string]any
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("metrics.json not valid JSON: %v", err)
	}
}

func TestDebugServerTrace(t *testing.T) {
	srv, _, _ := startTestServer(t)
	body, resp := get(t, srv.URL()+"/trace")
	if cd := resp.Header.Get("Content-Disposition"); !strings.Contains(cd, "trace.json") {
		t.Fatalf("Content-Disposition %q", cd)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("/trace not valid Chrome JSON: %v", err)
	}
	if len(out.TraceEvents) < 3 { // process_name + 2 events at least
		t.Fatalf("too few trace events: %d", len(out.TraceEvents))
	}

	nd, _ := get(t, srv.URL()+"/trace.ndjson")
	lines := strings.Split(strings.TrimRight(nd, "\n"), "\n")
	if len(lines) != 3 { // meta header + 2 events
		t.Fatalf("trace.ndjson: want 3 lines (meta + 2 events), got %d", len(lines))
	}
	if !strings.Contains(lines[0], `"kind":"meta"`) || !strings.Contains(lines[0], "epoch_unix_ns") {
		t.Fatalf("trace.ndjson first line is not the meta header: %s", lines[0])
	}
}

func TestDebugServerPprof(t *testing.T) {
	srv, _, _ := startTestServer(t)
	body, _ := get(t, srv.URL()+"/debug/pprof/cmdline")
	if body == "" {
		t.Fatal("pprof cmdline empty")
	}
}

func TestStartDebugServerBindFailure(t *testing.T) {
	srv, _, _ := startTestServer(t)
	if _, err := StartDebugServer(srv.Addr(), nil, nil); err == nil {
		t.Fatal("second bind on the same address must fail synchronously")
	} else if !strings.Contains(err.Error(), "debug server") {
		t.Fatalf("error %v lacks context", err)
	}
	if _, err := StartDebugServer("not-an-address", nil, nil); err == nil {
		t.Fatal("bad address must fail")
	}
}

// Shutdown drains gracefully: an in-flight request completes, and no new
// connection is accepted afterwards.
func TestDebugServerShutdown(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, _ *http.Request) {
		close(entered)
		<-release
		io.WriteString(w, "drained")
	})
	srv, err := StartServer("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		body string
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get(srv.URL() + "/slow")
		if err != nil {
			got <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		got <- result{body: string(body), err: err}
	}()
	<-entered
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	// The in-flight request is still blocked; release it and both the
	// request and the shutdown must complete.
	close(release)
	if r := <-got; r.err != nil || r.body != "drained" {
		t.Fatalf("in-flight request: body=%q err=%v", r.body, r.err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := http.Get(srv.URL() + "/slow"); err == nil {
		t.Fatal("connection accepted after Shutdown")
	}
}
