package trace

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRecorderSequenceAndHierarchy(t *testing.T) {
	r := New(16)
	ctx, run := r.StartSpan(context.Background(), "run", "root")
	r.Instant(ctx, "batch", "marker", A("count", "3"))
	kctx, key := r.StartSpan(ctx, "key", "child")
	key.SetArg("grade", "good")
	key.End()
	key.End() // idempotent: second End must not re-record
	run.End()

	events := r.Events()
	if len(events) != 3 {
		t.Fatalf("want 3 events, got %d: %+v", len(events), events)
	}
	for i, e := range events {
		if e.Seq != uint64(i) {
			t.Fatalf("event %d has Seq %d", i, e.Seq)
		}
	}
	inst, child, root := events[0], events[1], events[2]
	if inst.Kind != KindInstant || inst.Parent != root.ID {
		t.Fatalf("instant not parented to run span: %+v (root %d)", inst, root.ID)
	}
	if child.Parent != root.ID {
		t.Fatalf("key span not parented to run span: %+v (root %d)", child, root.ID)
	}
	if len(child.Args) != 1 || child.Args[0] != A("grade", "good") {
		t.Fatalf("SetArg lost: %+v", child.Args)
	}
	if got := parentSpan(kctx); got != child.ID {
		t.Fatalf("derived ctx carries span %d, want %d", got, child.ID)
	}
}

func TestRecorderRingWraparound(t *testing.T) {
	r := New(8)
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		r.Instant(ctx, "batch", fmt.Sprintf("e%d", i))
	}
	if r.Len() != 8 {
		t.Fatalf("Len = %d, want 8", r.Len())
	}
	if r.Dropped() != 12 {
		t.Fatalf("Dropped = %d, want 12", r.Dropped())
	}
	events := r.Events()
	for i, e := range events {
		want := uint64(12 + i)
		if e.Seq != want {
			t.Fatalf("retained event %d has Seq %d, want %d", i, e.Seq, want)
		}
		if e.Name != fmt.Sprintf("e%d", want) {
			t.Fatalf("retained event %d is %q, want e%d", i, e.Name, want)
		}
	}
}

func TestRecorderReset(t *testing.T) {
	r := New(4)
	r.Instant(context.Background(), "batch", "before")
	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Fatalf("after Reset: Len=%d Dropped=%d", r.Len(), r.Dropped())
	}
	_, s := r.StartSpan(context.Background(), "run", "after")
	s.End()
	if got := r.Events(); len(got) != 1 || got[0].Seq != 0 {
		t.Fatalf("post-Reset events: %+v", got)
	}
}

func TestWorkerContext(t *testing.T) {
	if Worker(context.Background()) != -1 {
		t.Fatal("background ctx must report lane -1")
	}
	ctx := WithWorker(context.Background(), 3)
	if Worker(ctx) != 3 {
		t.Fatalf("Worker = %d, want 3", Worker(ctx))
	}
	r := New(4)
	_, s := r.StartSpan(ctx, "stage", "work")
	s.End()
	r.Instant(ctx, "batch", "mark")
	for _, e := range r.Events() {
		if e.Worker != 3 {
			t.Fatalf("event %q attributed to lane %d, want 3", e.Name, e.Worker)
		}
	}
}

func TestNilSpanIsNoOp(t *testing.T) {
	var s *Span
	s.SetArg("k", "v") // must not panic
	s.End()
}

func TestRecorderConcurrent(t *testing.T) {
	r := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			ctx := WithWorker(context.Background(), lane)
			for i := 0; i < 50; i++ {
				sctx, s := r.StartSpan(ctx, "stage", "work")
				r.Instant(sctx, "batch", "tick")
				s.End()
			}
		}(g)
	}
	wg.Wait()
	if total := uint64(r.Len()) + r.Dropped(); total != 800 {
		t.Fatalf("recorded %d events, want 800", total)
	}
	// Retained events must still be in strict sequence order.
	events := r.Events()
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatalf("sequence gap at %d: %d -> %d", i, events[i-1].Seq, events[i].Seq)
		}
	}
}

func TestSpanDurationAndStart(t *testing.T) {
	r := New(4)
	_, s := r.StartSpan(context.Background(), "stage", "sleepy")
	time.Sleep(5 * time.Millisecond)
	s.End()
	e := r.Events()[0]
	if e.Dur < 5*time.Millisecond {
		t.Fatalf("Dur = %v, want >= 5ms", e.Dur)
	}
	if e.Start < 0 {
		t.Fatalf("Start = %v, want >= 0", e.Start)
	}
}

func TestDefaultRecorderPackageFuncs(t *testing.T) {
	Default().Reset()
	defer Default().Reset()
	ctx, s := StartSpan(context.Background(), "run", "pkg")
	Instant(ctx, "batch", "pkg-instant")
	s.End()
	if Default().Len() != 2 {
		t.Fatalf("default recorder Len = %d, want 2", Default().Len())
	}
}
