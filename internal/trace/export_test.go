package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenEvents is a fixed, hand-built event slice: a run span on the
// main lane, two key spans on worker lanes 0 and 1, and a batch instant
// — enough to exercise spans, instants, lane metadata and arg merging.
func goldenEvents() []Event {
	return []Event{
		{Seq: 0, Kind: KindInstant, Cat: "batch", Name: "slicer.layers",
			Parent: 2, Worker: 0, Start: 150 * time.Microsecond,
			Args: []Arg{A("count", "40")}},
		{Seq: 1, ID: 2, Parent: 1, Kind: KindSpan, Cat: "key", Name: "fine/XY",
			Worker: 0, Start: 100 * time.Microsecond, Dur: 900 * time.Microsecond,
			Args: []Arg{A("grade", "good")}},
		{Seq: 2, ID: 3, Parent: 1, Kind: KindSpan, Cat: "key", Name: "coarse/XZ",
			Worker: 1, Start: 120 * time.Microsecond, Dur: 700 * time.Microsecond,
			Args: []Arg{A("grade", "degraded")}},
		{Seq: 3, ID: 1, Kind: KindSpan, Cat: "run", Name: "core.matrix",
			Worker: -1, Start: 50 * time.Microsecond, Dur: 1200 * time.Microsecond,
			Args: []Arg{A("keys", "2")}},
	}
}

func TestWriteChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenEvents()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "chrome_trace.golden")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("Chrome trace drifted from golden.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestWriteChromeTraceIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenEvents()); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	// 1 process_name + 4 events + 3 lane thread_names (main, worker 0, worker 1).
	if len(out.TraceEvents) != 8 {
		t.Fatalf("want 8 trace events, got %d", len(out.TraceEvents))
	}
	phs := map[string]int{}
	for _, e := range out.TraceEvents {
		phs[e["ph"].(string)]++
	}
	if phs["M"] != 4 || phs["X"] != 3 || phs["i"] != 1 {
		t.Fatalf("phase census mismatch: %v", phs)
	}
}

func TestWriteNDJSON(t *testing.T) {
	r := New(8)
	ctx, s := r.StartSpan(context.Background(), "run", "root")
	r.Instant(ctx, "batch", "mark", A("count", "2"))
	s.End()
	var buf bytes.Buffer
	if err := r.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 { // meta header + 2 events
		t.Fatalf("want 3 NDJSON lines, got %d: %q", len(lines), buf.String())
	}
	var meta struct {
		Kind        string `json:"kind"`
		EpochUnixNS int64  `json:"epoch_unix_ns"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &meta); err != nil || meta.Kind != "meta" || meta.EpochUnixNS == 0 {
		t.Fatalf("first line is not a meta header (err %v): %s", err, lines[0])
	}
	for i, line := range lines[1:] {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %d not valid JSON: %v", i, err)
		}
		if e.Seq != uint64(i) {
			t.Fatalf("line %d has Seq %d", i, e.Seq)
		}
	}
}

func TestCountsDropsSchedulingDetail(t *testing.T) {
	// Two event sets with identical work but different interleaving,
	// worker attribution, IDs and timings must reduce to equal counts.
	a := []Event{
		{Seq: 0, ID: 1, Kind: KindSpan, Cat: "key", Name: "fine/XY", Worker: 0, Dur: time.Millisecond},
		{Seq: 1, ID: 2, Kind: KindSpan, Cat: "key", Name: "coarse/XZ", Worker: 1, Dur: 2 * time.Millisecond},
		{Seq: 2, Kind: KindInstant, Cat: "batch", Name: "layers", Worker: 0, Args: []Arg{A("count", "40")}},
	}
	b := []Event{
		{Seq: 0, Kind: KindInstant, Cat: "batch", Name: "layers", Worker: -1, Args: []Arg{A("count", "40")}},
		{Seq: 1, ID: 9, Kind: KindSpan, Cat: "key", Name: "coarse/XZ", Worker: -1, Dur: 5 * time.Millisecond},
		{Seq: 2, ID: 8, Kind: KindSpan, Cat: "key", Name: "fine/XY", Worker: -1, Dur: 7 * time.Millisecond},
	}
	aj, _ := json.Marshal(Counts(a))
	bj, _ := json.Marshal(Counts(b))
	if !bytes.Equal(aj, bj) {
		t.Fatalf("counts differ:\n%s\n%s", aj, bj)
	}
}

func TestCountsAggregates(t *testing.T) {
	events := []Event{
		{Kind: KindInstant, Cat: "batch", Name: "tick"},
		{Kind: KindInstant, Cat: "batch", Name: "tick"},
		{Kind: KindInstant, Cat: "batch", Name: "tick", Args: []Arg{A("count", "1")}},
	}
	rows := Counts(events)
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %+v", rows)
	}
	// Sorted by args within same cat/name/kind: "" < "count=1".
	if rows[0].Count != 2 || rows[0].Args != "" {
		t.Fatalf("row 0: %+v", rows[0])
	}
	if rows[1].Count != 1 || rows[1].Args != "count=1" {
		t.Fatalf("row 1: %+v", rows[1])
	}
}

func TestDeterministicJSONStable(t *testing.T) {
	r := New(16)
	ctx, s := r.StartSpan(context.Background(), "run", "root")
	r.Instant(ctx, "batch", "mark", A("count", "7"))
	s.End()
	first, err := r.DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}
	second, err := r.DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("DeterministicJSON not stable across calls")
	}
}
