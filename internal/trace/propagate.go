package trace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// Cross-process trace propagation. A request that crosses the
// router→shard boundary carries two headers:
//
//	X-Obfuscade-Trace: <trace-id>-<parent-span-id>
//	X-Request-ID:      <opaque request identifier>
//
// The trace ID is a 16-hex-char random identifier minted once per
// end-to-end request (by the router, or adopted from the client when it
// already sends one); the parent span ID is the sender's current span
// in its own recorder. The receiver adopts both with WithRemoteParent,
// so every span it records carries the shared trace ID and its root
// spans parent under the sender's span — after merging the per-process
// NDJSON journals (WriteMergedChromeTrace) the whole request renders as
// one tree across process lanes.
//
// The request ID is operational identity, not trace structure: it is
// echoed on every response (including sheds and proxy errors) and
// written to both sides' access logs, so one client-visible ID
// correlates the router's and the owning shard's log lines.

const (
	// HeaderTrace carries the trace context across process boundaries.
	HeaderTrace = "X-Obfuscade-Trace"
	// HeaderRequestID carries (and echoes) the per-request identity.
	HeaderRequestID = "X-Request-ID"
)

// TraceContext is the parsed form of a HeaderTrace value.
type TraceContext struct {
	// TraceID is the end-to-end request's trace identifier.
	TraceID string
	// Parent is the sender's span ID the receiver should parent under.
	Parent uint64
}

// NewTraceID mints a 16-hex-char random trace identifier.
func NewTraceID() string {
	var b [8]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// NewRequestID mints a request identifier for clients that sent none.
func NewRequestID() string {
	var b [8]byte
	rand.Read(b[:])
	return "req-" + hex.EncodeToString(b[:])
}

// FormatTraceHeader renders tc as a HeaderTrace value.
func FormatTraceHeader(tc TraceContext) string {
	return tc.TraceID + "-" + strconv.FormatUint(tc.Parent, 10)
}

// ParseTraceHeader parses a HeaderTrace value. The boolean is false for
// an empty or malformed header — the receiver then starts a fresh trace
// instead of failing the request.
func ParseTraceHeader(v string) (TraceContext, bool) {
	i := strings.LastIndexByte(v, '-')
	if i <= 0 || i == len(v)-1 {
		return TraceContext{}, false
	}
	id := v[:i]
	if !isHexID(id) {
		return TraceContext{}, false
	}
	parent, err := strconv.ParseUint(v[i+1:], 10, 64)
	if err != nil {
		return TraceContext{}, false
	}
	return TraceContext{TraceID: id, Parent: parent}, true
}

func isHexID(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') && (c < 'A' || c > 'F') {
			return false
		}
	}
	return true
}

type traceIDCtxKey struct{}
type requestIDCtxKey struct{}

// WithTraceID tags ctx with a trace identifier; spans recorded under it
// carry the ID in their events.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceIDCtxKey{}, id)
}

// TraceIDFrom returns the trace identifier carried by ctx, or "".
func TraceIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	if id, ok := ctx.Value(traceIDCtxKey{}).(string); ok {
		return id
	}
	return ""
}

// WithRequestID tags ctx with the per-request identity.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDCtxKey{}, id)
}

// RequestIDFrom returns the request identity carried by ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	if id, ok := ctx.Value(requestIDCtxKey{}).(string); ok {
		return id
	}
	return ""
}

// WithRemoteParent adopts an incoming trace context: spans opened under
// the returned context carry tc.TraceID and parent under tc.Parent —
// the sender's span in its own process. Span IDs are only unique within
// a process; the merge exporter keeps processes on separate lanes, so
// the (trace ID, parent) pair is unambiguous after stitching.
func WithRemoteParent(ctx context.Context, tc TraceContext) context.Context {
	ctx = WithTraceID(ctx, tc.TraceID)
	return context.WithValue(ctx, spanCtxKey{}, tc.Parent)
}

// ContextSpanID returns the span ID carried by ctx (the span a nested
// span would parent under), or 0 at the root. Senders use it to build
// the outgoing HeaderTrace value.
func ContextSpanID(ctx context.Context) uint64 { return parentSpan(ctx) }

// OutgoingTraceHeader renders the HeaderTrace value for a proxied
// request under ctx, or "" when ctx carries no trace identifier.
func OutgoingTraceHeader(ctx context.Context) string {
	id := TraceIDFrom(ctx)
	if id == "" {
		return ""
	}
	return FormatTraceHeader(TraceContext{TraceID: id, Parent: parentSpan(ctx)})
}

// EnsureTraceID returns ctx carrying a trace identifier, minting one
// when absent, plus the effective ID.
func EnsureTraceID(ctx context.Context) (context.Context, string) {
	if id := TraceIDFrom(ctx); id != "" {
		return ctx, id
	}
	id := NewTraceID()
	return WithTraceID(ctx, id), id
}

// String renders tc for logs and errors.
func (tc TraceContext) String() string {
	return fmt.Sprintf("%s parent=%d", tc.TraceID, tc.Parent)
}
