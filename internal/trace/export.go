package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// chromeEvent is one entry of the Chrome trace_event format (the JSON
// consumed by Perfetto and chrome://tracing). Timestamps and durations
// are microseconds; worker lanes map to thread IDs so the pool renders
// as parallel tracks.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  *float64          `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	S    string            `json:"s,omitempty"` // instant scope
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chromeTID maps a worker lane to a Chrome thread ID. Lane 0 becomes
// tid 1, etc.; events recorded outside the pool land on tid 0 ("main").
func chromeTID(worker int) int { return worker + 1 }

// WriteChromeTrace renders events in the Chrome trace_event JSON format.
// Spans become complete ("X") events, instants become instant ("i")
// events, and every worker lane gets a thread_name metadata record so
// Perfetto labels the tracks.
func WriteChromeTrace(w io.Writer, events []Event) error {
	tids := map[int]bool{}
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{
		{Name: "process_name", Ph: "M", PID: 1, TID: 0,
			Args: map[string]string{"name": "obfuscade pipeline"}},
	}}
	for _, e := range events {
		tids[chromeTID(e.Worker)] = true
		ce := chromeEvent{
			Name: e.Name,
			Cat:  e.Cat,
			TS:   float64(e.Start.Nanoseconds()) / 1e3,
			PID:  1,
			TID:  chromeTID(e.Worker),
			Args: map[string]string{
				"seq":    fmt.Sprintf("%d", e.Seq),
				"span":   fmt.Sprintf("%d", e.ID),
				"parent": fmt.Sprintf("%d", e.Parent),
			},
		}
		if e.Trace != "" {
			ce.Args["trace"] = e.Trace
		}
		for _, a := range e.Args {
			ce.Args[a.Key] = a.Value
		}
		if e.Kind == KindInstant {
			ce.Ph = "i"
			ce.S = "t"
		} else {
			ce.Ph = "X"
			dur := float64(e.Dur.Nanoseconds()) / 1e3
			ce.Dur = &dur
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	lanes := make([]int, 0, len(tids))
	for tid := range tids {
		lanes = append(lanes, tid)
	}
	sort.Ints(lanes)
	for _, tid := range lanes {
		name := "main"
		if tid > 0 {
			name = fmt.Sprintf("worker %d", tid-1)
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tid,
			Args: map[string]string{"name": name}})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// WriteChrome renders the recorder's retained events as a Chrome trace.
func (r *Recorder) WriteChrome(w io.Writer) error {
	return WriteChromeTrace(w, r.Events())
}

// ndjsonMeta is the first line of an NDJSON journal: the recorder's
// epoch (unix nanoseconds) and optional process name. The merge
// exporter uses epochs to place journals from different processes onto
// one absolute timeline; a journal without a meta line still merges,
// anchored at offset zero.
type ndjsonMeta struct {
	Kind        string `json:"kind"`
	Process     string `json:"process,omitempty"`
	EpochUnixNS int64  `json:"epoch_unix_ns"`
}

// metaKind marks the journal header line; Counts and the event decoder
// skip lines of this kind.
const metaKind = "meta"

// WriteNDJSON writes the retained events as an NDJSON journal: one meta
// header line (epoch + process name) followed by one event object per
// line in sequence order.
func (r *Recorder) WriteNDJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	meta := ndjsonMeta{Kind: metaKind, Process: r.ProcessName(), EpochUnixNS: r.Epoch().UnixNano()}
	if err := enc.Encode(meta); err != nil {
		return err
	}
	for _, e := range r.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// CountRow is the deterministic census of one event shape: how many
// events share a (kind, cat, name, args) tuple.
type CountRow struct {
	Kind  Kind   `json:"kind"`
	Cat   string `json:"cat"`
	Name  string `json:"name"`
	Args  string `json:"args,omitempty"`
	Count int64  `json:"count"`
}

// Counts reduces events to their scheduling-independent multiset: rows
// keyed by (kind, cat, name, args) with occurrence counts, sorted by
// key. Sequence numbers, IDs, timestamps and worker lanes are dropped —
// with a fixed seed the result is byte-identical at any pool size.
func Counts(events []Event) []CountRow {
	type key struct {
		kind      Kind
		cat, name string
		args      string
	}
	argString := func(args []Arg) string {
		if len(args) == 0 {
			return ""
		}
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = a.Key + "=" + a.Value
		}
		return strings.Join(parts, " ")
	}
	m := map[key]int64{}
	for _, e := range events {
		m[key{e.Kind, e.Cat, e.Name, argString(e.Args)}]++
	}
	rows := make([]CountRow, 0, len(m))
	for k, n := range m {
		rows = append(rows, CountRow{Kind: k.kind, Cat: k.cat, Name: k.name, Args: k.args, Count: n})
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Cat != b.Cat {
			return a.Cat < b.Cat
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Args < b.Args
	})
	return rows
}

// DeterministicJSON renders the recorder's event multiset (Counts) as
// indented JSON — the form the determinism tests compare across worker
// counts.
func (r *Recorder) DeterministicJSON() ([]byte, error) {
	return json.MarshalIndent(Counts(r.Events()), "", "  ")
}
