package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// mergedTrace decodes the Chrome JSON the merge exporter writes.
type mergedTrace struct {
	TraceEvents []struct {
		Name string            `json:"name"`
		Cat  string            `json:"cat"`
		Ph   string            `json:"ph"`
		TS   float64           `json:"ts"`
		PID  int               `json:"pid"`
		TID  int               `json:"tid"`
		Args map[string]string `json:"args"`
	} `json:"traceEvents"`
}

// TestMergeStitchesRouterAndShard drives the full propagation + merge
// path across two independent recorders standing in for two processes:
// the router opens a proxy span, propagates its context over the
// header format, the shard adopts it, and after stitching the two
// NDJSON journals the shard's spans are descendants of the router's
// proxy span under one shared trace ID with per-process lanes.
func TestMergeStitchesRouterAndShard(t *testing.T) {
	routerRec, shardRec := New(32), New(32)
	routerRec.SetProcess("router")
	shardRec.SetProcess("shard-0")

	// Router side: mint a trace, open the proxy span, build the header.
	rctx, traceID := EnsureTraceID(context.Background())
	rctx, proxy := routerRec.StartSpan(rctx, "router", "jobs", A("key", "k1"))
	header := OutgoingTraceHeader(rctx)
	proxy.End()

	// Shard side: parse the header, adopt the remote parent, run "work".
	tc, ok := ParseTraceHeader(header)
	if !ok {
		t.Fatalf("shard could not parse propagated header %q", header)
	}
	sctx := WithRemoteParent(context.Background(), tc)
	sctx, jobSpan := shardRec.StartSpan(sctx, "serve", "job", A("key", "k1"))
	_, stage := shardRec.StartSpan(sctx, "stage", "slicer")
	stage.End()
	jobSpan.End()

	var routerND, shardND bytes.Buffer
	if err := routerRec.WriteNDJSON(&routerND); err != nil {
		t.Fatal(err)
	}
	if err := shardRec.WriteNDJSON(&shardND); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	err := WriteMergedChromeTrace(&out, []MergeInput{
		{R: &routerND}, // no override: meta line's "router" names the lane
		{Process: "shard-0", R: &shardND},
	})
	if err != nil {
		t.Fatal(err)
	}
	var merged mergedTrace
	if err := json.Unmarshal(out.Bytes(), &merged); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}

	// Per-process lanes: two process_name metadata records, distinct pids.
	processes := map[string]int{}
	for _, e := range merged.TraceEvents {
		if e.Name == "process_name" && e.Ph == "M" {
			processes[e.Args["name"]] = e.PID
		}
	}
	if len(processes) != 2 || processes["router"] == 0 || processes["shard-0"] == 0 {
		t.Fatalf("process lanes = %v, want router and shard-0", processes)
	}
	if processes["router"] == processes["shard-0"] {
		t.Fatal("router and shard share a pid; lanes collapsed")
	}

	// Parentage: the shard's job span carries the router's span as its
	// parent arg, and every event of the request shares the trace ID.
	var routerSpanID string
	for _, e := range merged.TraceEvents {
		if e.PID == processes["router"] && e.Name == "jobs" && e.Cat == "router" {
			routerSpanID = e.Args["span"]
			if e.Args["trace"] != traceID {
				t.Fatalf("router span trace = %q, want %q", e.Args["trace"], traceID)
			}
		}
	}
	if routerSpanID == "" {
		t.Fatal("router proxy span missing from merged trace")
	}
	foundJob, foundStage := false, false
	for _, e := range merged.TraceEvents {
		if e.PID != processes["shard-0"] || e.Ph == "M" {
			continue
		}
		if e.Args["trace"] != traceID {
			t.Fatalf("shard event %s trace = %q, want %q", e.Name, e.Args["trace"], traceID)
		}
		switch e.Name {
		case "job":
			foundJob = true
			if e.Args["parent"] != routerSpanID {
				t.Fatalf("shard job span parent = %s, want router span %s", e.Args["parent"], routerSpanID)
			}
		case "slicer":
			foundStage = true
		}
	}
	if !foundJob || !foundStage {
		t.Fatalf("shard spans missing from merged trace (job=%v stage=%v)", foundJob, foundStage)
	}
}

// TestMergeAlignsEpochs pins timestamp re-anchoring: a journal whose
// epoch is 1ms later than the other's starts 1000µs further down the
// merged timeline.
func TestMergeAlignsEpochs(t *testing.T) {
	early := `{"kind":"meta","epoch_unix_ns":1000000000}
{"seq":0,"id":1,"kind":"span","cat":"run","name":"a","worker":-1,"start_ns":0,"dur_ns":1000}
`
	late := `{"kind":"meta","epoch_unix_ns":1001000000}
{"seq":0,"id":1,"kind":"span","cat":"run","name":"b","worker":-1,"start_ns":0,"dur_ns":1000}
`
	var out bytes.Buffer
	err := WriteMergedChromeTrace(&out, []MergeInput{
		{Process: "p1", R: strings.NewReader(early)},
		{Process: "p2", R: strings.NewReader(late)},
	})
	if err != nil {
		t.Fatal(err)
	}
	var merged mergedTrace
	if err := json.Unmarshal(out.Bytes(), &merged); err != nil {
		t.Fatal(err)
	}
	ts := map[string]float64{}
	for _, e := range merged.TraceEvents {
		if e.Ph == "X" {
			ts[e.Name] = e.TS
		}
	}
	if got := ts["b"] - ts["a"]; got != 1000 {
		t.Fatalf("epoch alignment: b starts %+vµs after a, want 1000", got)
	}
}

func TestMergeRejectsEmptyAndMalformed(t *testing.T) {
	if err := WriteMergedChromeTrace(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("merging zero journals succeeded")
	}
	bad := strings.NewReader("not json\n")
	err := WriteMergedChromeTrace(&bytes.Buffer{}, []MergeInput{{Process: "x", R: bad}})
	if err == nil {
		t.Fatal("malformed journal merged silently")
	}
}

func TestReadNDJSONRoundTrip(t *testing.T) {
	r := New(8)
	r.SetProcess("unit")
	ctx, sp := r.StartSpan(context.Background(), "run", "root")
	r.Instant(ctx, "batch", "mark")
	sp.End()
	var buf bytes.Buffer
	if err := r.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	process, epoch, events, err := ReadNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if process != "unit" || epoch != r.Epoch().UnixNano() {
		t.Fatalf("meta: process=%q epoch=%d, want unit/%d", process, epoch, r.Epoch().UnixNano())
	}
	if len(events) != 2 {
		t.Fatalf("decoded %d events, want 2", len(events))
	}
}
