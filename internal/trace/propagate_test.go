package trace

import (
	"context"
	"testing"
)

func TestTraceHeaderRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: "4bf92f3577b34da6", Parent: 42}
	h := FormatTraceHeader(tc)
	if h != "4bf92f3577b34da6-42" {
		t.Fatalf("header = %q", h)
	}
	got, ok := ParseTraceHeader(h)
	if !ok || got != tc {
		t.Fatalf("round trip: %+v ok=%v, want %+v", got, ok, tc)
	}
}

func TestParseTraceHeaderRejectsMalformed(t *testing.T) {
	for _, v := range []string{
		"",                    // empty
		"abc",                 // no separator
		"-42",                 // empty trace id
		"abc-",                // empty parent
		"nothex!-42",          // bad charset
		"4bf92f3577b34da6-xy", // non-numeric parent
		"4bf92f3577b34da6-—7", // unicode dash garbage
	} {
		if tc, ok := ParseTraceHeader(v); ok {
			t.Errorf("ParseTraceHeader(%q) accepted as %+v", v, tc)
		}
	}
}

func TestNewTraceIDShape(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 16 || !isHexID(a) {
		t.Fatalf("trace id %q is not 16 hex chars", a)
	}
	if a == b {
		t.Fatalf("two trace ids collided: %q", a)
	}
	if id := NewRequestID(); len(id) != len("req-")+16 {
		t.Fatalf("request id %q has unexpected shape", id)
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if TraceIDFrom(ctx) != "" || RequestIDFrom(ctx) != "" {
		t.Fatal("empty context carries identifiers")
	}
	ctx = WithTraceID(ctx, "deadbeefdeadbeef")
	ctx = WithRequestID(ctx, "req-1")
	if TraceIDFrom(ctx) != "deadbeefdeadbeef" || RequestIDFrom(ctx) != "req-1" {
		t.Fatalf("context lost identifiers: trace=%q req=%q", TraceIDFrom(ctx), RequestIDFrom(ctx))
	}
	ctx2, id := EnsureTraceID(ctx)
	if id != "deadbeefdeadbeef" || ctx2 != ctx {
		t.Fatal("EnsureTraceID replaced an existing trace id")
	}
	if _, id := EnsureTraceID(context.Background()); len(id) != 16 {
		t.Fatalf("EnsureTraceID minted %q", id)
	}
}

// TestWithRemoteParentAdoptsContext pins the propagation contract: a
// span opened under an adopted remote context parents under the remote
// span ID and carries the remote trace ID in its event.
func TestWithRemoteParentAdoptsContext(t *testing.T) {
	r := New(16)
	tc := TraceContext{TraceID: "4bf92f3577b34da6", Parent: 777}
	ctx := WithRemoteParent(context.Background(), tc)
	if got := OutgoingTraceHeader(ctx); got != "4bf92f3577b34da6-777" {
		t.Fatalf("OutgoingTraceHeader = %q", got)
	}
	sctx, sp := r.StartSpan(ctx, "serve", "job")
	r.Instant(sctx, "batch", "mark")
	sp.End()

	events := r.Events()
	if len(events) != 2 {
		t.Fatalf("recorded %d events, want 2", len(events))
	}
	for _, e := range events {
		if e.Trace != tc.TraceID {
			t.Fatalf("event %s carries trace %q, want %q", e.Name, e.Trace, tc.TraceID)
		}
	}
	// The instant is inside the local span; the local span parents under
	// the remote one.
	var span, instant Event
	for _, e := range events {
		if e.Kind == KindSpan {
			span = e
		} else {
			instant = e
		}
	}
	if span.Parent != tc.Parent {
		t.Fatalf("span parent = %d, want remote %d", span.Parent, tc.Parent)
	}
	if instant.Parent != span.ID {
		t.Fatalf("instant parent = %d, want local span %d", instant.Parent, span.ID)
	}
	// The nested context's outgoing header now names the local span.
	if got := OutgoingTraceHeader(sctx); got != FormatTraceHeader(TraceContext{TraceID: tc.TraceID, Parent: span.ID}) {
		t.Fatalf("nested OutgoingTraceHeader = %q", got)
	}
}

func TestOutgoingTraceHeaderEmptyWithoutTraceID(t *testing.T) {
	r := New(4)
	ctx, sp := r.StartSpan(context.Background(), "router", "probe")
	defer sp.End()
	if got := OutgoingTraceHeader(ctx); got != "" {
		t.Fatalf("header without a trace id = %q, want empty", got)
	}
}
