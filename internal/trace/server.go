package trace

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"obfuscade/internal/obs"
)

// DebugServer is the unified debug surface shared by the CLIs: live
// Prometheus metrics, the metrics snapshot as JSON, the trace ring
// buffer as a Chrome trace download, and the standard pprof handlers.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// NewDebugMux builds the debug handler tree:
//
//	/metrics       Prometheus text exposition of the obs registry
//	/metrics.json  obs snapshot as indented JSON
//	/trace         current trace ring buffer as Chrome trace JSON
//	/trace.ndjson  current trace ring buffer as an NDJSON journal
//	/debug/pprof/  net/http/pprof profiles
func NewDebugMux(reg *obs.Registry, rec *Recorder) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		data, err := reg.Snapshot().JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="trace.json"`)
		rec.WriteChrome(w)
	})
	mux.HandleFunc("/trace.ndjson", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		rec.WriteNDJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartServer binds addr synchronously — a bad address or occupied port
// fails here, not from a background goroutine — then serves h until
// Close or Shutdown. It is the listener/lifecycle half of
// StartDebugServer, shared with the obfuscation job service so the job
// routes and the debug routes ride one mux on one port.
func StartServer(addr string, h http.Handler) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("trace: debug server: %w", err)
	}
	s := &DebugServer{ln: ln, srv: &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
	}}
	go s.srv.Serve(ln)
	return s, nil
}

// StartDebugServer binds addr synchronously and serves the debug mux
// until Close. reg and rec default to the process-wide instances when
// nil.
func StartDebugServer(addr string, reg *obs.Registry, rec *Recorder) (*DebugServer, error) {
	if reg == nil {
		reg = obs.Default()
	}
	if rec == nil {
		rec = Default()
	}
	return StartServer(addr, NewDebugMux(reg, rec))
}

// Addr returns the bound address (useful with ":0").
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *DebugServer) URL() string { return "http://" + s.Addr() }

// Close stops the server immediately, dropping in-flight requests.
func (s *DebugServer) Close() error { return s.srv.Close() }

// Shutdown stops the server gracefully: the listener closes at once so
// no new connection is accepted, while in-flight requests run to
// completion or until ctx expires, whichever comes first.
func (s *DebugServer) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }
