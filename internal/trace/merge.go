package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Merge exporter: stitch the NDJSON journals of N processes (router +
// shards) into one Chrome trace. Each journal becomes one process lane
// (its own pid with a process_name metadata record), worker lanes stay
// thread tracks within it, and timestamps are re-anchored onto one
// absolute timeline using each journal's epoch meta line — so a routed
// request renders as router proxy span and shard pipeline spans in
// their true wall-clock relation, linked by the shared trace ID and the
// propagated parent span ID in the event args.

// MergeInput is one process's journal to stitch.
type MergeInput struct {
	// Process labels the lane ("router", "shard-0", ...). When empty the
	// journal's own meta line (SetProcess) names it; a journal with
	// neither gets "process-<n>".
	Process string
	// R streams the NDJSON journal (WriteNDJSON's format).
	R io.Reader
}

// parsedJournal is one decoded NDJSON input.
type parsedJournal struct {
	process string
	epochNS int64
	events  []Event
}

// ReadNDJSON decodes one journal: the optional meta header line and the
// events. Unknown or malformed lines fail loudly — a journal is an
// audit artifact, not a best-effort log.
func ReadNDJSON(r io.Reader) (process string, epochUnixNS int64, events []Event, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		// The meta line and events share the "kind" discriminator.
		var probe struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return "", 0, nil, fmt.Errorf("trace: journal line %d: %w", line, err)
		}
		if probe.Kind == metaKind {
			var m ndjsonMeta
			if err := json.Unmarshal(raw, &m); err != nil {
				return "", 0, nil, fmt.Errorf("trace: journal meta line %d: %w", line, err)
			}
			process, epochUnixNS = m.Process, m.EpochUnixNS
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return "", 0, nil, fmt.Errorf("trace: journal line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return "", 0, nil, fmt.Errorf("trace: reading journal: %w", err)
	}
	return process, epochUnixNS, events, nil
}

// WriteMergedChromeTrace stitches the journals into one Chrome trace.
// Process lanes appear in input order as pid 1..N; within each lane the
// usual worker-thread mapping applies. Events keep their span/parent/
// trace args, so a shard span's parent arg names the router span it was
// propagated from (unambiguous per lane pair via the shared trace ID).
func WriteMergedChromeTrace(w io.Writer, inputs []MergeInput) error {
	if len(inputs) == 0 {
		return fmt.Errorf("trace: merging zero journals")
	}
	journals := make([]parsedJournal, len(inputs))
	minEpoch := int64(0)
	haveEpoch := false
	for i, in := range inputs {
		process, epoch, events, err := ReadNDJSON(in.R)
		if err != nil {
			return err
		}
		if in.Process != "" {
			process = in.Process
		}
		if process == "" {
			process = fmt.Sprintf("process-%d", i+1)
		}
		journals[i] = parsedJournal{process: process, epochNS: epoch, events: events}
		if epoch != 0 && (!haveEpoch || epoch < minEpoch) {
			minEpoch, haveEpoch = epoch, true
		}
	}

	out := chromeTrace{DisplayTimeUnit: "ms"}
	for i, j := range journals {
		pid := i + 1
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid, TID: 0,
			Args: map[string]string{"name": j.process}})
		// Journals without an epoch anchor at the merged origin.
		var baseUS float64
		if haveEpoch && j.epochNS != 0 {
			baseUS = float64(j.epochNS-minEpoch) / 1e3
		}
		tids := map[int]bool{}
		for _, e := range j.events {
			tids[chromeTID(e.Worker)] = true
			ce := chromeEvent{
				Name: e.Name,
				Cat:  e.Cat,
				TS:   baseUS + float64(e.Start.Nanoseconds())/1e3,
				PID:  pid,
				TID:  chromeTID(e.Worker),
				Args: map[string]string{
					"seq":    fmt.Sprintf("%d", e.Seq),
					"span":   fmt.Sprintf("%d", e.ID),
					"parent": fmt.Sprintf("%d", e.Parent),
				},
			}
			if e.Trace != "" {
				ce.Args["trace"] = e.Trace
			}
			for _, a := range e.Args {
				ce.Args[a.Key] = a.Value
			}
			if e.Kind == KindInstant {
				ce.Ph = "i"
				ce.S = "t"
			} else {
				ce.Ph = "X"
				dur := float64(e.Dur.Nanoseconds()) / 1e3
				ce.Dur = &dur
			}
			out.TraceEvents = append(out.TraceEvents, ce)
		}
		lanes := make([]int, 0, len(tids))
		for tid := range tids {
			lanes = append(lanes, tid)
		}
		sort.Ints(lanes)
		for _, tid := range lanes {
			name := "main"
			if tid > 0 {
				name = fmt.Sprintf("worker %d", tid-1)
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", PID: pid, TID: tid,
				Args: map[string]string{"name": name}})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}
