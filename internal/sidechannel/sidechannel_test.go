package sidechannel

import (
	"math"
	"testing"

	"obfuscade/internal/geom"
	"obfuscade/internal/mesh"
	"obfuscade/internal/slicer"
)

func boxPaths(t *testing.T) []*slicer.LayerToolpath {
	t.Helper()
	m := &mesh.Mesh{Shells: []mesh.Shell{
		mesh.BoxShell("box", "box", geom.V3(5, 5, 0), geom.V3(25, 15, 0.5)),
	}}
	res, err := slicer.Slice(m, slicer.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	paths, err := res.Toolpaths()
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultOptions()
	bad.Feed = 0
	if err := bad.Validate(); err == nil {
		t.Error("expected error for zero feed")
	}
	bad = DefaultOptions()
	bad.DirFlipProb = 2
	if err := bad.Validate(); err == nil {
		t.Error("expected error for probability > 1")
	}
}

func TestNoiselessReconstructionExact(t *testing.T) {
	paths := boxPaths(t)
	opts := DefaultOptions()
	opts.FreqNoiseStd = 0
	opts.DirFlipProb = 0
	tr, err := Emanate(paths, opts)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Reconstruct(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	truth := GroundTruth(paths)
	meanErr, err := MeanError(rec, truth)
	if err != nil {
		t.Fatal(err)
	}
	if meanErr > 1e-9 {
		t.Errorf("noiseless reconstruction error = %v, want ~0", meanErr)
	}
}

// The headline result of refs [4]/[16]: a close-proximity recording
// reconstructs the design with small error — a real IP-theft channel.
func TestNoisyReconstructionSmallError(t *testing.T) {
	paths := boxPaths(t)
	opts := DefaultOptions()
	tr, err := Emanate(paths, opts)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Reconstruct(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	truth := GroundTruth(paths)
	meanErr, err := MeanError(rec, truth)
	if err != nil {
		t.Fatal(err)
	}
	// The part is 20x10 mm; reconstruction within ~1.5 mm leaks the
	// design.
	if meanErr > 1.6 {
		t.Errorf("reconstruction error = %v mm, want < 1.6", meanErr)
	}
	if rec.ExtrudedLength <= 0 {
		t.Error("extruded length should be recovered")
	}
	// Recovered bounding box close to the true design size.
	lo, hi := bboxOf(rec.Points)
	size := hi.Sub(lo)
	if math.Abs(size.X-21) > 3 || math.Abs(size.Y-11) > 3 {
		t.Errorf("recovered size %v, want ~ (21, 11)", size)
	}
}

func bboxOf(pts []geom.Vec2) (lo, hi geom.Vec2) {
	lo = geom.V2(math.Inf(1), math.Inf(1))
	hi = geom.V2(math.Inf(-1), math.Inf(-1))
	for _, p := range pts {
		lo.X = math.Min(lo.X, p.X)
		lo.Y = math.Min(lo.Y, p.Y)
		hi.X = math.Max(hi.X, p.X)
		hi.Y = math.Max(hi.Y, p.Y)
	}
	return lo, hi
}

// More measurement noise means worse reconstruction — the paper's
// mitigation story (shielding, distance, masking noise emission).
func TestErrorGrowsWithNoise(t *testing.T) {
	paths := boxPaths(t)
	var prev float64 = -1
	for _, noise := range []float64{0, 0.05, 0.25} {
		opts := DefaultOptions()
		opts.FreqNoiseStd = noise
		opts.DirFlipProb = 0
		tr, err := Emanate(paths, opts)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := Reconstruct(tr, opts)
		if err != nil {
			t.Fatal(err)
		}
		truth := GroundTruth(paths)
		meanErr, err := MeanError(rec, truth)
		if err != nil {
			t.Fatal(err)
		}
		if meanErr < prev {
			t.Errorf("error should grow with noise: %v after %v", meanErr, prev)
		}
		prev = meanErr
	}
}

func TestEmanateEmpty(t *testing.T) {
	if _, err := Emanate(nil, DefaultOptions()); err == nil {
		t.Error("expected error for empty toolpaths")
	}
}

func TestReconstructEmpty(t *testing.T) {
	if _, err := Reconstruct(&Trace{}, DefaultOptions()); err == nil {
		t.Error("expected error for empty trace")
	}
}

func TestMeanErrorLengthMismatch(t *testing.T) {
	rec := &Reconstruction{Points: []geom.Vec2{{}}}
	if _, err := MeanError(rec, nil); err == nil {
		t.Error("expected error for length mismatch")
	}
}
