// Package sidechannel simulates the acoustic/magnetic information-leakage
// attacks on FDM printers discussed in the paper's §2 (refs [4] and [16]):
// a smartphone near the printer records stepper-motor emanations whose
// frequencies are proportional to axis speeds, and an attacker
// dead-reckons the tool path — stealing the design IP without ever
// touching a file.
package sidechannel

import (
	"fmt"
	"math"
	"math/rand"

	"obfuscade/internal/geom"
	"obfuscade/internal/slicer"
)

// Options configures the emanation physics.
type Options struct {
	// StepsPerMM converts axis speed to stepper frequency.
	StepsPerMM float64
	// Feed is the tool speed in mm/s used for all moves.
	Feed float64
	// FreqNoiseStd is the relative standard deviation of measured
	// frequencies (microphone quality / distance).
	FreqNoiseStd float64
	// DirFlipProb is the probability the attacker misreads a direction
	// sign from the magnetic phase.
	DirFlipProb float64
	// Seed seeds the measurement noise.
	Seed int64
}

// DefaultOptions returns a close-proximity smartphone scenario (ref [4]).
func DefaultOptions() Options {
	return Options{
		StepsPerMM:   80,
		Feed:         30,
		FreqNoiseStd: 0.01,
		// Direction is read from the magnetic-field phase, which is
		// reliable at close proximity (ref [4]); raise this to model a
		// distant or occluded attacker.
		DirFlipProb: 0,
		Seed:        1,
	}
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if o.StepsPerMM <= 0 || o.Feed <= 0 {
		return fmt.Errorf("sidechannel: StepsPerMM and Feed must be positive")
	}
	if o.FreqNoiseStd < 0 || o.DirFlipProb < 0 || o.DirFlipProb > 1 {
		return fmt.Errorf("sidechannel: invalid noise parameters")
	}
	return nil
}

// Sample is one recorded segment of the emanation trace.
type Sample struct {
	// Dt is the segment duration in seconds.
	Dt float64
	// FreqX, FreqY are the measured stepper frequencies (Hz),
	// proportional to per-axis speed.
	FreqX, FreqY float64
	// SignX, SignY are the inferred motion directions (+1/-1, 0 for no
	// motion on the axis).
	SignX, SignY int
	// Extruding reports whether the extruder motor was audible.
	Extruding bool
}

// Trace is a recorded emanation sequence.
type Trace struct {
	Samples []Sample
	// Start is the (known or guessed) initial head position.
	Start geom.Vec2
}

// segment is one continuous head motion; flatten enforces continuity by
// synthesising the travel moves the head physically performs between
// discontinuous toolpath records (e.g. across layer changes) — those
// motions emanate like any other.
type segment struct {
	from, to geom.Vec2
	extrude  bool
}

func flatten(paths []*slicer.LayerToolpath) []segment {
	var segs []segment
	var pos geom.Vec2
	havePos := false
	for _, lt := range paths {
		for _, mv := range lt.Moves {
			if havePos && mv.From.Sub(pos).Len() > 1e-9 {
				segs = append(segs, segment{from: pos, to: mv.From})
			}
			if mv.To.Sub(mv.From).Len() > 0 {
				segs = append(segs, segment{
					from: mv.From, to: mv.To,
					extrude: mv.Role != slicer.Travel,
				})
			}
			pos = mv.To
			havePos = true
		}
	}
	return segs
}

// Emanate records the emanation trace of the given toolpaths.
func Emanate(paths []*slicer.LayerToolpath, opts Options) (*Trace, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	tr := &Trace{}
	segs := flatten(paths)
	for i, sg := range segs {
		if i == 0 {
			tr.Start = sg.from
		}
		{
			d := sg.to.Sub(sg.from)
			dist := d.Len()
			dt := dist / opts.Feed
			vx := math.Abs(d.X) / dt
			vy := math.Abs(d.Y) / dt
			noisy := func(v float64) float64 {
				return v * opts.StepsPerMM * (1 + rng.NormFloat64()*opts.FreqNoiseStd)
			}
			s := Sample{
				Dt:        dt,
				FreqX:     noisy(vx),
				FreqY:     noisy(vy),
				SignX:     signOf(d.X),
				SignY:     signOf(d.Y),
				Extruding: sg.extrude,
			}
			if rng.Float64() < opts.DirFlipProb {
				s.SignX = -s.SignX
			}
			if rng.Float64() < opts.DirFlipProb {
				s.SignY = -s.SignY
			}
			tr.Samples = append(tr.Samples, s)
		}
	}
	if len(tr.Samples) == 0 {
		return nil, fmt.Errorf("sidechannel: no motion to record")
	}
	return tr, nil
}

func signOf(v float64) int {
	switch {
	case v > 1e-12:
		return 1
	case v < -1e-12:
		return -1
	default:
		return 0
	}
}

// Reconstruction is the attacker's recovered tool path.
type Reconstruction struct {
	// Points is the dead-reckoned head position after each sample,
	// starting at the trace's start position.
	Points []geom.Vec2
	// ExtrudedLength is the recovered total extrusion length.
	ExtrudedLength float64
}

// Reconstruct dead-reckons the tool path from an emanation trace — the
// attack of refs [4] and [16].
func Reconstruct(tr *Trace, opts Options) (*Reconstruction, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if tr == nil || len(tr.Samples) == 0 {
		return nil, fmt.Errorf("sidechannel: empty trace")
	}
	rec := &Reconstruction{Points: make([]geom.Vec2, 0, len(tr.Samples)+1)}
	pos := tr.Start
	rec.Points = append(rec.Points, pos)
	for _, s := range tr.Samples {
		dx := float64(s.SignX) * s.FreqX / opts.StepsPerMM * s.Dt
		dy := float64(s.SignY) * s.FreqY / opts.StepsPerMM * s.Dt
		pos = pos.Add(geom.V2(dx, dy))
		rec.Points = append(rec.Points, pos)
		if s.Extruding {
			rec.ExtrudedLength += math.Hypot(dx, dy)
		}
	}
	return rec, nil
}

// GroundTruth extracts the true vertex sequence from toolpaths for error
// evaluation, aligned one-to-one with the reconstruction (same continuity
// handling as Emanate).
func GroundTruth(paths []*slicer.LayerToolpath) []geom.Vec2 {
	segs := flatten(paths)
	if len(segs) == 0 {
		return nil
	}
	pts := make([]geom.Vec2, 0, len(segs)+1)
	pts = append(pts, segs[0].from)
	for _, sg := range segs {
		pts = append(pts, sg.to)
	}
	return pts
}

// MeanError returns the mean pointwise distance between the reconstructed
// and true vertex sequences (they align one-to-one by construction).
func MeanError(rec *Reconstruction, truth []geom.Vec2) (float64, error) {
	if len(rec.Points) != len(truth) {
		return 0, fmt.Errorf("sidechannel: length mismatch %d vs %d",
			len(rec.Points), len(truth))
	}
	var sum float64
	for i := range truth {
		sum += rec.Points[i].Dist(truth[i])
	}
	return sum / float64(len(truth)), nil
}
