// Package inspect implements the non-destructive testing stage of the AM
// process chain (paper Fig. 1 "testing", Table 1 "Testing" row):
// CT-scan-style volumetric comparison of a printed artifact against its
// design intent, and dimensional metrology. These are the checks that
// catch sabotage attacks (voids, scaling, protrusions, Trojan cavities)
// after printing, and that authenticate ObfusCADe feature signatures.
package inspect

import (
	"fmt"

	"obfuscade/internal/geom"
	"obfuscade/internal/mesh"
	"obfuscade/internal/slicer"
	"obfuscade/internal/voxel"
)

// VoxelizeMesh rasterises a watertight design mesh into a voxel grid with
// the given cell sizes — the reference volume a CT comparison needs. The
// same winding rule as the slicer is applied, so design intent and print
// agree on what "solid" means.
func VoxelizeMesh(m *mesh.Mesh, cell, cellZ float64) (*voxel.Grid, error) {
	opts := slicer.DefaultOptions()
	opts.LayerHeight = cellZ
	sliced, err := slicer.Slice(m, opts)
	if err != nil {
		return nil, fmt.Errorf("inspect: voxelize: %w", err)
	}
	bounds := sliced.Bounds
	bounds.Min.X -= cell
	bounds.Min.Y -= cell
	bounds.Max.X += cell
	bounds.Max.Y += cell
	grid, err := voxel.NewGrid(bounds, cell, cellZ)
	if err != nil {
		return nil, err
	}
	rmin := geom.V2(grid.Origin.X, grid.Origin.Y)
	rmax := geom.V2(
		grid.Origin.X+float64(grid.NX)*cell,
		grid.Origin.Y+float64(grid.NY)*cell,
	)
	for li := range sliced.Layers {
		r, err := sliced.Layers[li].Rasterize(rmin, rmax, cell, nil)
		if err != nil {
			return nil, err
		}
		for iy := 0; iy < r.NY && iy < grid.NY; iy++ {
			for ix := 0; ix < r.NX && ix < grid.NX; ix++ {
				if r.At(ix, iy) == slicer.Model {
					grid.Set(ix, iy, li, voxel.Model)
				}
			}
		}
	}
	return grid, nil
}

// CTReport is the volumetric comparison of a printed part against its
// design.
type CTReport struct {
	// MissingVolume is design-solid space the print left empty, mm^3.
	MissingVolume float64
	// ExtraVolume is printed material outside the design, mm^3.
	ExtraVolume float64
	// DesignVolume is the reference solid volume, mm^3.
	DesignVolume float64
	// MatchFraction is the volumetric IoU (intersection over union).
	MatchFraction float64
	// InternalCavities counts enclosed voids in the print.
	InternalCavities int
}

// Anomalous reports whether the deviation exceeds tolerance tol
// (fraction of the design volume) in either direction, or internal
// cavities exist.
func (r CTReport) Anomalous(tol float64) bool {
	if r.DesignVolume <= 0 {
		return true
	}
	return r.MissingVolume/r.DesignVolume > tol ||
		r.ExtraVolume/r.DesignVolume > tol ||
		r.InternalCavities > 0
}

// CTCompare overlays the printed grid on the reference grid (sampling the
// reference at each printed voxel centre) and reports the volumetric
// deviation. The grids may have different resolutions and origins.
func CTCompare(printed, reference *voxel.Grid) (CTReport, error) {
	if printed == nil || reference == nil {
		return CTReport{}, fmt.Errorf("inspect: nil grid")
	}
	rep := CTReport{DesignVolume: reference.Volume(voxel.Model)}
	vv := printed.VoxelVolume()
	var both, printedOnly float64
	for z := 0; z < printed.NZ; z++ {
		for y := 0; y < printed.NY; y++ {
			for x := 0; x < printed.NX; x++ {
				if printed.At(x, y, z) != voxel.Model {
					continue
				}
				c := printed.Center(x, y, z)
				rx, ry, rz := reference.Locate(c)
				if reference.At(rx, ry, rz) == voxel.Model {
					both += vv
				} else {
					printedOnly += vv
				}
			}
		}
	}
	rep.ExtraVolume = printedOnly
	rep.MissingVolume = rep.DesignVolume - both
	if rep.MissingVolume < 0 {
		rep.MissingVolume = 0
	}
	union := rep.DesignVolume + printedOnly
	if union > 0 {
		rep.MatchFraction = both / union
	}
	rep.InternalCavities = len(printed.InternalCavities())
	return rep, nil
}

// BalanceCheck compares the printed part's centre of mass against the
// reference grid's — a scale-and-pivot inspection that catches
// off-centre hidden cavities without CT equipment. It returns the shift
// distance in mm.
func BalanceCheck(printed, reference *voxel.Grid) (float64, error) {
	pc, ok := printed.CenterOfMass()
	if !ok {
		return 0, fmt.Errorf("inspect: printed part has no material")
	}
	rc, ok := reference.CenterOfMass()
	if !ok {
		return 0, fmt.Errorf("inspect: reference has no material")
	}
	return pc.Dist(rc), nil
}

// DimensionReport is the metrology comparison of overall dimensions.
type DimensionReport struct {
	// Measured is the printed part's bounding size, mm.
	Measured geom.Vec3
	// Design is the design's bounding size, mm.
	Design geom.Vec3
	// Delta is measured minus design, mm.
	Delta geom.Vec3
}

// WithinTolerance reports whether every dimension is within tol mm of the
// design.
func (d DimensionReport) WithinTolerance(tol float64) bool {
	return d.Delta.Abs().X <= tol && d.Delta.Abs().Y <= tol && d.Delta.Abs().Z <= tol
}

// MeasureDimensions compares the printed part's model-material bounding
// box against the design mesh's bounds — the go/no-go gauge check that
// catches dimension-scaling attacks.
func MeasureDimensions(printed *voxel.Grid, design *mesh.Mesh) DimensionReport {
	lo := [3]int{printed.NX, printed.NY, printed.NZ}
	hi := [3]int{-1, -1, -1}
	for z := 0; z < printed.NZ; z++ {
		for y := 0; y < printed.NY; y++ {
			for x := 0; x < printed.NX; x++ {
				if printed.At(x, y, z) != voxel.Model {
					continue
				}
				v := [3]int{x, y, z}
				for i := 0; i < 3; i++ {
					if v[i] < lo[i] {
						lo[i] = v[i]
					}
					if v[i] > hi[i] {
						hi[i] = v[i]
					}
				}
			}
		}
	}
	rep := DimensionReport{Design: design.Bounds().Size()}
	if hi[0] < 0 {
		rep.Delta = rep.Design.Neg()
		return rep
	}
	rep.Measured = geom.V3(
		float64(hi[0]-lo[0]+1)*printed.Cell,
		float64(hi[1]-lo[1]+1)*printed.Cell,
		float64(hi[2]-lo[2]+1)*printed.CellZ,
	)
	rep.Delta = rep.Measured.Sub(rep.Design)
	return rep
}
