package inspect

import (
	"math"
	"testing"

	"obfuscade/internal/brep"
	"obfuscade/internal/geom"
	"obfuscade/internal/mesh"
	"obfuscade/internal/printer"
	"obfuscade/internal/slicer"
	"obfuscade/internal/supplychain"
	"obfuscade/internal/tessellate"
	"obfuscade/internal/voxel"
)

func prismMesh(t *testing.T) *mesh.Mesh {
	t.Helper()
	p, err := brep.NewRectPrism("prism", geom.V3(25.4, 12.7, 12.7))
	if err != nil {
		t.Fatal(err)
	}
	m, err := tessellate.Tessellate(p, tessellate.Fine)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func printMesh(t *testing.T, m *mesh.Mesh) *printer.Build {
	t.Helper()
	prof := printer.DimensionElite()
	opts := slicer.DefaultOptions()
	opts.LayerHeight = prof.LayerHeight
	sliced, err := slicer.Slice(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := printer.Print(sliced, prof, printer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestVoxelizeMeshVolume(t *testing.T) {
	m := prismMesh(t)
	g, err := VoxelizeMesh(m, 0.25, 0.1778)
	if err != nil {
		t.Fatal(err)
	}
	want := 25.4 * 12.7 * 12.7
	got := g.Volume(voxel.Model)
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("voxelized volume = %v, want ~%v", got, want)
	}
}

func TestCTCompareCleanPrint(t *testing.T) {
	m := prismMesh(t)
	ref, err := VoxelizeMesh(m, 0.25, 0.1778)
	if err != nil {
		t.Fatal(err)
	}
	b := printMesh(t, m)
	rep, err := CTCompare(b.Grid, ref)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MatchFraction < 0.9 {
		t.Errorf("clean print match = %v, want > 0.9", rep.MatchFraction)
	}
	if rep.Anomalous(0.08) {
		t.Errorf("clean print flagged anomalous: %+v", rep)
	}
}

func TestCTCompareDetectsVoidAttack(t *testing.T) {
	design := prismMesh(t)
	ref, err := VoxelizeMesh(design, 0.25, 0.1778)
	if err != nil {
		t.Fatal(err)
	}
	// The attacker embeds a hidden cavity (CAD Trojan) before printing.
	p, err := brep.NewRectPrism("prism", geom.V3(25.4, 12.7, 12.7))
	if err != nil {
		t.Fatal(err)
	}
	if err := supplychain.CADTrojanAttack(p, nil); err != nil {
		t.Fatal(err)
	}
	trojaned, err := tessellate.Tessellate(p, tessellate.Fine)
	if err != nil {
		t.Fatal(err)
	}
	b := printMesh(t, trojaned)
	rep, err := CTCompare(b.Grid, ref)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Anomalous(0.01) {
		t.Errorf("Trojan cavity not flagged: %+v", rep)
	}
	if rep.InternalCavities == 0 {
		t.Error("CT should see the internal cavity")
	}
	if rep.MissingVolume <= 0 {
		t.Error("CT should see missing volume")
	}
}

func TestDimensionsDetectScalingAttack(t *testing.T) {
	design := prismMesh(t)
	scaled := design.Clone()
	if err := supplychain.ScaleAttack(scaled, 1.04); err != nil {
		t.Fatal(err)
	}
	b := printMesh(t, scaled)
	rep := MeasureDimensions(b.Grid, design)
	if rep.WithinTolerance(0.5) {
		t.Errorf("4%% scaling not caught: %+v", rep)
	}
	// A clean print passes the same gauge.
	clean := printMesh(t, design)
	cleanRep := MeasureDimensions(clean.Grid, design)
	if !cleanRep.WithinTolerance(0.6) {
		t.Errorf("clean print out of tolerance: %+v", cleanRep)
	}
}

func TestMeasureDimensionsEmptyPrint(t *testing.T) {
	design := prismMesh(t)
	ref, err := VoxelizeMesh(design, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	empty := ref.Clone()
	empty.Replace(voxel.Model, voxel.Empty)
	rep := MeasureDimensions(empty, design)
	if rep.WithinTolerance(0.1) {
		t.Error("empty print should fail metrology")
	}
}

func TestCTCompareNil(t *testing.T) {
	if _, err := CTCompare(nil, nil); err == nil {
		t.Error("expected error for nil grids")
	}
}

func TestBalanceCheckFindsOffCentreCavity(t *testing.T) {
	design := prismMesh(t)
	ref, err := VoxelizeMesh(design, 0.25, 0.1778)
	if err != nil {
		t.Fatal(err)
	}
	clean := printMesh(t, design)
	shift, err := BalanceCheck(clean.Grid, ref)
	if err != nil {
		t.Fatal(err)
	}
	if shift > 0.1 {
		t.Errorf("clean print CG shift = %v mm, want ~0", shift)
	}
	// A clearly off-centre hidden cavity (a surface sphere with material
	// removal prints as washed-out support): r=3 at 5.3 mm off centre
	// shifts the CG by ~0.15 mm — within reach of a precision balance.
	// (The small randomly-placed Trojan of CADTrojanAttack shifts it by
	// only ~2 µm, which is why CT remains the primary check.)
	p, err := brep.NewRectPrism("prism", geom.V3(25.4, 12.7, 12.7))
	if err != nil {
		t.Fatal(err)
	}
	if err := brep.EmbedSphere(p, "prism", geom.V3(18, 6.35, 6.35), 3,
		brep.EmbedOpts{MaterialRemoval: true, SurfaceBody: true}); err != nil {
		t.Fatal(err)
	}
	m, err := tessellate.Tessellate(p, tessellate.Fine)
	if err != nil {
		t.Fatal(err)
	}
	trojaned := printMesh(t, m)
	shift, err = BalanceCheck(trojaned.Grid, ref)
	if err != nil {
		t.Fatal(err)
	}
	if shift < 0.05 {
		t.Errorf("off-centre cavity CG shift = %v mm, want detectable", shift)
	}
	empty := ref.Clone()
	empty.Replace(voxel.Model, voxel.Empty)
	if _, err := BalanceCheck(empty, ref); err == nil {
		t.Error("expected error for empty print")
	}
}
