package stego

import (
	"math"

	"obfuscade/internal/mesh"
)

// Report is a per-channel suspicion assessment of a mesh. Scores are in
// [0, 1]: a canonical (sanitized) mesh scores exactly 0 on both
// channels; an embedded payload scores ~1 on the facet-order channel
// and ~0.3 on the coordinate-LSB channel; a raw, never-sanitized export
// scores high on both — which is the paper's point: order and LSB
// entropy are always *available* to an exfiltrator, so the defense is
// to sanitize unconditionally, not to trust a detector.
type Report struct {
	Facets int `json:"facets"`
	// FacetOrderScore is the normalized inversion count of the facet
	// list against the canonical spatial sort (2·inversions / max, so a
	// uniformly random permutation scores ≈ 1).
	FacetOrderScore   float64 `json:"facet_order_score"`
	FacetOrderSuspect bool    `json:"facet_order_suspect"`
	// CoordLSBScore is the Shannon entropy (normalized to [0, 1]) of
	// the sub-quantum coordinate residues over 8 bins.
	CoordLSBScore   float64 `json:"coord_lsb_score"`
	CoordLSBSuspect bool    `json:"coord_lsb_suspect"`
	Quantum         float64 `json:"quantum"`
}

// Suspicious reports whether either channel tripped its threshold.
func (r Report) Suspicious() bool { return r.FacetOrderSuspect || r.CoordLSBSuspect }

// Detect scores both channels of m without reference to any original.
func Detect(m *mesh.Mesh, opts Options) Report {
	opts = opts.withDefaults()
	tris := m.AllTriangles()
	rep := Report{Facets: len(tris), Quantum: opts.Quantum}
	if len(tris) == 0 {
		return rep
	}

	// Order statistic: inversions of the canonical ranks as they appear
	// in file order. A canonical file is sorted (0 inversions); payload
	// permutations look uniform (≈ n(n-1)/4 inversions).
	if n := len(tris); n > 1 {
		ranks, _ := canonRanks(canonKeys(tris, opts.Quantum))
		inv := countInversions(ranks)
		maxInv := float64(n) * float64(n-1) / 2
		rep.FacetOrderScore = math.Min(1, 2*float64(inv)/maxInv)
		rep.FacetOrderSuspect = rep.FacetOrderScore > opts.OrderThreshold
	}

	// LSB entropy: histogram of sub-quantum residues. On-grid files put
	// every coordinate in the center bin (entropy 0); the LSB channel
	// splits mass between two bins (≈ 1 bit); arbitrary coordinates
	// fill all 8 (≈ 3 bits).
	var bins [8]int
	total := 0
	for i := range tris {
		for j := 0; j < 9; j++ {
			r := residue(coordAt(&tris[i], j), opts.Quantum) // [-0.5, 0.5)
			b := int((r + 0.5) * 8)
			if b < 0 {
				b = 0
			}
			if b > 7 {
				b = 7
			}
			bins[b]++
			total++
		}
	}
	h := 0.0
	for _, c := range bins {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	rep.CoordLSBScore = h / 3 // log2(8) bins
	rep.CoordLSBSuspect = rep.CoordLSBScore > opts.LSBThreshold
	return rep
}

// countInversions counts pairs i<j with ranks[i] > ranks[j] by merge
// sort, O(n log n).
func countInversions(ranks []int) int64 {
	a := make([]int, len(ranks))
	copy(a, ranks)
	buf := make([]int, len(a))
	return mergeCount(a, buf)
}

func mergeCount(a, buf []int) int64 {
	n := len(a)
	if n < 2 {
		return 0
	}
	mid := n / 2
	inv := mergeCount(a[:mid], buf[:mid]) + mergeCount(a[mid:], buf[mid:])
	i, j, k := 0, mid, 0
	for i < mid && j < n {
		if a[i] <= a[j] {
			buf[k] = a[i]
			i++
		} else {
			buf[k] = a[j]
			j++
			inv += int64(mid - i)
		}
		k++
	}
	copy(buf[k:], a[i:mid])
	copy(buf[k+mid-i:], a[j:])
	copy(a, buf[:n])
	return inv
}
