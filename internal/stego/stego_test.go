package stego

import (
	"bytes"
	"fmt"
	"math/big"
	"math/rand"
	"strings"
	"testing"

	"obfuscade/internal/geom"
	"obfuscade/internal/mesh"
)

// testMesh builds a multi-box mesh with enough facets for both
// channels to carry a real payload. Random float coordinates make
// every facet key distinct (after quantization) with probability ~1.
func testMesh(rng *rand.Rand, boxes int) *mesh.Mesh {
	m := &mesh.Mesh{}
	for b := 0; b < boxes; b++ {
		ox := rng.Float64() * 40
		oy := rng.Float64() * 40
		w := 1 + rng.Float64()*6
		d := 1 + rng.Float64()*6
		h := 0.5 + rng.Float64()*3
		m.Shells = append(m.Shells, mesh.BoxShell(
			fmt.Sprintf("shell%d", b), "body", geom.V3(ox, oy, 0), geom.V3(ox+w, oy+d, h)))
	}
	return m
}

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("exfiltrated CAD secret")
	frame, err := buildFrame(payload)
	if err != nil {
		t.Fatal(err)
	}
	got, err := parseFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("frame round trip = %q", got)
	}
}

func TestFrameErrors(t *testing.T) {
	if _, err := buildFrame(nil); err == nil {
		t.Error("empty payload must error")
	}
	if _, err := buildFrame(make([]byte, maxPayload+1)); err == nil {
		t.Error("oversize payload must error")
	}
	frame, _ := buildFrame([]byte("x"))
	cases := map[string][]byte{
		"short":     frame[:3],
		"magic":     append([]byte{0, 0}, frame[2:]...),
		"truncated": frame[:len(frame)-1],
	}
	crc := append([]byte(nil), frame...)
	crc[len(crc)-1] ^= 0xFF
	cases["crc"] = crc
	for name, f := range cases {
		if _, err := parseFrame(f); err == nil {
			t.Errorf("%s: corrupted frame must error", name)
		}
	}
}

func TestPermIntRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, w := range []int{1, 2, 3, 5, 16, 64} {
		f := factorial(w)
		for trial := 0; trial < 20; trial++ {
			v := new(big.Int).Rand(rng, f)
			perm := permFromInt(v, w)
			seen := make([]bool, w)
			for _, p := range perm {
				if p < 0 || p >= w || seen[p] {
					t.Fatalf("w=%d: not a permutation: %v", w, perm)
				}
				seen[p] = true
			}
			if got := intFromPerm(perm); got.Cmp(v) != 0 {
				t.Fatalf("w=%d: round trip %v != %v", w, got, v)
			}
		}
	}
}

func TestCapacity(t *testing.T) {
	if got := Capacity(2, ChannelFacetOrder); got != 0 {
		t.Errorf("2 facets: facet-order capacity = %d, want 0", got)
	}
	if got := Capacity(200, ChannelFacetOrder); got <= 0 {
		t.Errorf("200 facets: facet-order capacity = %d, want > 0", got)
	}
	if got := Capacity(200, ChannelCoordLSB); got != 9*200/8-frameOver {
		t.Errorf("coord-lsb capacity = %d", got)
	}
	if got := Capacity(100, Channel(0)); got != 0 {
		t.Errorf("invalid channel capacity = %d, want 0", got)
	}
	// Capacity saturates at the frame's uint16 length bound.
	if got := Capacity(100000, ChannelCoordLSB); got != maxPayload {
		t.Errorf("huge mesh capacity = %d, want %d", got, maxPayload)
	}
}

func TestEmbedExtractEachChannel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := testMesh(rng, 20) // 240 facets
	payload := make([]byte, 48)
	rng.Read(payload)
	for _, ch := range []Channel{ChannelFacetOrder, ChannelCoordLSB} {
		t.Run(ch.String(), func(t *testing.T) {
			emb, err := Embed(m, payload, Options{Channels: ch})
			if err != nil {
				t.Fatal(err)
			}
			got, err := Extract(emb, ch, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("extracted %x, want %x", got, payload)
			}
		})
	}
}

func TestEmbedBothChannelsIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := testMesh(rng, 20)
	payload := []byte("dual-channel payload")
	emb, err := Embed(m, payload, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range []Channel{ChannelFacetOrder, ChannelCoordLSB} {
		got, err := Extract(emb, ch, Options{})
		if err != nil {
			t.Fatalf("%s: %v", ch, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("%s: extracted %q", ch, got)
		}
	}
}

func TestEmbedErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := testMesh(rng, 4) // 48 facets
	if _, err := Embed(m, nil, Options{}); err == nil {
		t.Error("empty payload must error")
	}
	huge := make([]byte, 4096)
	if _, err := Embed(m, huge, Options{Channels: ChannelFacetOrder}); err == nil ||
		!strings.Contains(err.Error(), "capacity") {
		t.Errorf("oversize facet-order payload: %v", err)
	}
	if _, err := Embed(m, huge, Options{Channels: ChannelCoordLSB}); err == nil ||
		!strings.Contains(err.Error(), "capacity") {
		t.Errorf("oversize coord-lsb payload: %v", err)
	}

	// Two byte-identical boxes: duplicate facet keys make the
	// permutation ambiguous, so the facet-order channel must refuse.
	dup := &mesh.Mesh{Shells: []mesh.Shell{
		mesh.BoxShell("a", "body", geom.V3(0, 0, 0), geom.V3(4, 4, 2)),
		mesh.BoxShell("b", "body", geom.V3(0, 0, 0), geom.V3(4, 4, 2)),
	}}
	if _, err := Embed(dup, []byte("x"), Options{Channels: ChannelFacetOrder}); err == nil ||
		!strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("duplicate facets: %v", err)
	}
	if _, err := Extract(dup, ChannelFacetOrder, Options{}); err == nil {
		t.Error("duplicate-facet extract must error")
	}
}

func TestExtractErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := Sanitize(testMesh(rng, 4), Options{})
	if _, err := Extract(m, ChannelFacetOrder|ChannelCoordLSB, Options{}); err == nil {
		t.Error("Extract with both channels must error")
	}
	one := &mesh.Mesh{Shells: []mesh.Shell{{Tris: m.Shells[0].Tris[:1]}}}
	if _, err := Extract(one, ChannelFacetOrder, Options{}); err == nil {
		t.Error("single facet carries no ordering")
	}
	// A clean mesh has no frame: both channels must fail loudly.
	for _, ch := range []Channel{ChannelFacetOrder, ChannelCoordLSB} {
		if _, err := Extract(m, ch, Options{}); err == nil {
			t.Errorf("%s: clean mesh must not yield a payload", ch)
		}
	}
}

func TestDetectScores(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := testMesh(rng, 20)
	clean := Sanitize(m, Options{})
	rep := Detect(clean, Options{})
	if rep.Suspicious() || rep.FacetOrderScore != 0 || rep.CoordLSBScore != 0 {
		t.Fatalf("canonical mesh must score clean: %+v", rep)
	}
	if rep.Facets != clean.TriangleCount() {
		t.Fatalf("facets = %d", rep.Facets)
	}

	payload := make([]byte, 40)
	rng.Read(payload)
	perm, err := Embed(m, payload, Options{Channels: ChannelFacetOrder})
	if err != nil {
		t.Fatal(err)
	}
	if rep := Detect(perm, Options{}); !rep.FacetOrderSuspect || rep.CoordLSBSuspect {
		t.Fatalf("facet-order embed: %+v", rep)
	}
	lsb, err := Embed(m, payload, Options{Channels: ChannelCoordLSB})
	if err != nil {
		t.Fatal(err)
	}
	if rep := Detect(lsb, Options{}); !rep.CoordLSBSuspect || rep.FacetOrderSuspect {
		t.Fatalf("coord-lsb embed: %+v", rep)
	}

	// Empty mesh: zero report, no panic.
	if rep := Detect(&mesh.Mesh{}, Options{}); rep.Facets != 0 || rep.Suspicious() {
		t.Fatalf("empty mesh: %+v", rep)
	}
}

func TestCountInversions(t *testing.T) {
	cases := []struct {
		in   []int
		want int64
	}{
		{nil, 0},
		{[]int{0, 1, 2, 3}, 0},
		{[]int{3, 2, 1, 0}, 6},
		{[]int{1, 0, 3, 2}, 2},
	}
	for _, tc := range cases {
		if got := countInversions(tc.in); got != tc.want {
			t.Errorf("inversions(%v) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestChannelString(t *testing.T) {
	for ch, want := range map[Channel]string{
		ChannelFacetOrder:                   "facet-order",
		ChannelCoordLSB:                     "coord-lsb",
		ChannelFacetOrder | ChannelCoordLSB: "facet-order+coord-lsb",
		Channel(8):                          "channel(8)",
	} {
		if got := ch.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(ch), got, want)
		}
	}
}

func TestSanitizeDeterministicAcrossShuffles(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := testMesh(rng, 10)
	want := Sanitize(m, Options{})
	// Shuffling the input facet order must not change the output at all.
	for trial := 0; trial < 5; trial++ {
		tris := m.AllTriangles()
		rng.Shuffle(len(tris), func(i, j int) { tris[i], tris[j] = tris[j], tris[i] })
		shuffled := &mesh.Mesh{Shells: []mesh.Shell{{
			Name: m.Shells[0].Name, Body: m.Shells[0].Body, Orient: m.Shells[0].Orient, Tris: tris,
		}}}
		got := Sanitize(shuffled, Options{})
		if len(got.Shells) != 1 || len(got.Shells[0].Tris) != len(want.Shells[0].Tris) {
			t.Fatal("shape mismatch")
		}
		for i := range got.Shells[0].Tris {
			if got.Shells[0].Tris[i] != want.Shells[0].Tris[i] {
				t.Fatalf("trial %d: facet %d differs after shuffle", trial, i)
			}
		}
	}
	// Idempotence: sanitizing a sanitized mesh is the identity.
	again := Sanitize(want, Options{})
	for i := range again.Shells[0].Tris {
		if again.Shells[0].Tris[i] != want.Shells[0].Tris[i] {
			t.Fatalf("sanitize not idempotent at facet %d", i)
		}
	}
}
