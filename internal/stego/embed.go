package stego

import (
	"fmt"
	"math"
	"math/big"
	"sort"

	"obfuscade/internal/geom"
	"obfuscade/internal/mesh"
)

// Capacity returns the payload capacity in bytes of one channel over a
// mesh of n facets (frame overhead already subtracted; negative
// capacities clamp to 0).
func Capacity(n int, ch Channel) int {
	var bits int
	switch ch {
	case ChannelFacetOrder:
		w := n
		if w > permWindow {
			w = permWindow
		}
		// floor(log2(w!)) usable bits.
		f := factorial(w)
		bits = f.BitLen() - 1
	case ChannelCoordLSB:
		bits = 9 * n
	default:
		return 0
	}
	cap := bits/8 - frameOver
	if cap < 0 {
		return 0
	}
	if cap > maxPayload {
		return maxPayload
	}
	return cap
}

func factorial(n int) *big.Int {
	f := big.NewInt(1)
	for i := 2; i <= n; i++ {
		f.Mul(f, big.NewInt(int64(i)))
	}
	return f
}

// Embed hides payload in the selected channel(s) of a copy of m. The
// mesh is canonicalized first (the embedder plays the attacker inside a
// pipeline that emits canonical files), then the payload is written
// into each selected channel independently — the LSB channel perturbs
// coordinates by quantum/4 in canonical facet order, the facet-order
// channel then permutes the first permWindow facets by the payload's
// factoradic expansion. The channels do not interfere: facet keys are
// quantized, so LSB offsets never change the canonical ranking the
// permutation is read from.
func Embed(m *mesh.Mesh, payload []byte, opts Options) (*mesh.Mesh, error) {
	opts = opts.withDefaults()
	base := Sanitize(m, opts)
	tris := base.Shells[0].Tris
	n := len(tris)
	frame, err := buildFrame(payload)
	if err != nil {
		return nil, err
	}

	if opts.Channels&ChannelCoordLSB != 0 {
		if got, want := 9*n, len(frame)*8; got < want {
			return nil, fmt.Errorf("stego: coord-lsb: %d bits needed, %d available (%d facets); capacity %d bytes",
				want, got, n, Capacity(n, ChannelCoordLSB))
		}
		padded := padFrame(frame, 9*n/8)
		delta := opts.Quantum / 4
		for k := 0; k < len(padded)*8; k++ {
			if padded[k/8]&(1<<(7-k%8)) == 0 {
				continue
			}
			t := &tris[k/9]
			j := k % 9
			c := coordAt(t, j) + delta
			if math.Abs(residue(c, opts.Quantum)) < 0.125 {
				return nil, fmt.Errorf("stego: coord-lsb: coordinate %g too large for quantum %g (offset lost to rounding)",
					c, opts.Quantum)
			}
			setCoordAt(t, j, c)
		}
	}

	if opts.Channels&ChannelFacetOrder != 0 {
		w := n
		if w > permWindow {
			w = permWindow
		}
		if len(payload) > Capacity(n, ChannelFacetOrder) {
			return nil, fmt.Errorf("stego: facet-order: payload %d bytes exceeds capacity %d (%d facets)",
				len(payload), Capacity(n, ChannelFacetOrder), n)
		}
		keys := canonKeys(tris, opts.Quantum)
		if _, dup := canonRanks(keys); dup {
			return nil, fmt.Errorf("stego: facet-order: duplicate facets make the permutation ambiguous")
		}
		padded := padFrame(frame, (factorial(w).BitLen()-1)/8)
		perm := permFromInt(new(big.Int).SetBytes(padded), w)
		permuted := make([]geom.Triangle, n)
		copy(permuted, tris)
		for i := 0; i < w; i++ {
			permuted[i] = tris[perm[i]]
		}
		base.Shells[0].Tris = permuted
	}
	return base, nil
}

// permFromInt expands v (< w!) in the factorial number system and maps
// the digits to a permutation of [0, w) via the Lehmer code.
func permFromInt(v *big.Int, w int) []int {
	// Factorial-base digits, least significant first: digit k ∈ [0, k].
	digits := make([]int, w) // digits[0] is always 0
	rem := new(big.Int).Set(v)
	mod := new(big.Int)
	for k := 1; k < w && rem.Sign() != 0; k++ {
		rem.DivMod(rem, big.NewInt(int64(k+1)), mod)
		digits[k] = int(mod.Int64())
	}
	avail := make([]int, w)
	for i := range avail {
		avail[i] = i
	}
	perm := make([]int, w)
	for i := 0; i < w; i++ {
		d := digits[w-1-i] // most significant digit first: d ∈ [0, w-1-i]
		perm[i] = avail[d]
		avail = append(avail[:d], avail[d+1:]...)
	}
	return perm
}

// intFromPerm inverts permFromInt.
func intFromPerm(perm []int) *big.Int {
	w := len(perm)
	avail := make([]int, w)
	for i := range avail {
		avail[i] = i
	}
	digits := make([]int, w)
	for i := 0; i < w; i++ {
		d := sort.SearchInts(avail, perm[i])
		digits[w-1-i] = d
		avail = append(avail[:d], avail[d+1:]...)
	}
	v := new(big.Int)
	for k := w - 1; k >= 1; k-- {
		v.Mul(v, big.NewInt(int64(k+1)))
		v.Add(v, big.NewInt(int64(digits[k])))
	}
	return v
}

// Extract recovers a payload hidden in a single channel of m. It fails
// — rather than returning garbage — when no valid frame is present,
// which is what makes post-sanitization unrecoverability provable: the
// frame's magic and checksum cannot survive re-canonicalization.
func Extract(m *mesh.Mesh, ch Channel, opts Options) ([]byte, error) {
	opts = opts.withDefaults()
	tris := m.AllTriangles()
	n := len(tris)
	switch ch {
	case ChannelFacetOrder:
		w := n
		if w > permWindow {
			w = permWindow
		}
		if w < 2 {
			return nil, fmt.Errorf("stego: facet-order: %d facets carry no ordering", n)
		}
		keys := canonKeys(tris, opts.Quantum)
		ranks, dup := canonRanks(keys)
		if dup {
			return nil, fmt.Errorf("stego: facet-order: duplicate facets make the permutation ambiguous")
		}
		perm := make([]int, w)
		for i := 0; i < w; i++ {
			if ranks[i] >= w {
				return nil, fmt.Errorf("stego: facet-order: facet order is not a windowed permutation")
			}
			perm[i] = ranks[i]
		}
		return parseFrame(intFromPerm(perm).Bytes())
	case ChannelCoordLSB:
		// Bits are read in canonical facet order so extraction is
		// independent of any facet-order embedding on top.
		keys := canonKeys(tris, opts.Quantum)
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return less9(keys[idx[a]], keys[idx[b]]) })
		frame := make([]byte, 0, 64)
		var cur byte
		for k := 0; k < 9*n; k++ {
			t := &tris[idx[k/9]]
			if math.Abs(residue(coordAt(t, k%9), opts.Quantum)) >= 0.125 {
				cur |= 1 << (7 - k%8)
			}
			if k%8 == 7 {
				frame = append(frame, cur)
				cur = 0
				// Stop as soon as the self-describing frame is complete.
				if len(frame) >= 4 {
					if frame[0] != frameMagic0 || frame[1] != frameMagic1 {
						break
					}
					want := 4 + int(frame[2])<<8 + int(frame[3]) + 4
					if len(frame) >= want {
						break
					}
				}
			}
		}
		return parseFrame(frame)
	default:
		return nil, fmt.Errorf("stego: Extract needs exactly one channel, got %s", ch)
	}
}
