package stego

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"obfuscade/internal/slicer"
	"obfuscade/internal/stl"
)

// The tentpole property, end to end: take a canonical design file C,
// let an attacker embed a payload through any channel combination, then
// sanitize. The sanitized mesh must (1) equal C exactly, (2) slice
// byte-identically to C under the retained naive reference kernels
// (the PR 5 DeepEqual oracle) *and* the indexed kernels, and (3) carry
// no recoverable payload — extraction fails outright, it does not
// return garbage.
func TestSanitizeDestroysChannelsSliceByteIdentical(t *testing.T) {
	channels := []Channel{
		ChannelFacetOrder,
		ChannelCoordLSB,
		ChannelFacetOrder | ChannelCoordLSB,
	}
	for trial := 0; trial < 5; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		orig := testMesh(rng, 15) // 180 facets
		c := Sanitize(orig, Options{})
		wantSlice, err := slicer.SliceReference(c, slicer.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		payload := make([]byte, 1+rng.Intn(40))
		rng.Read(payload)

		for _, ch := range channels {
			emb, err := Embed(c, payload, Options{Channels: ch})
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, ch, err)
			}
			if rep := Detect(emb, Options{}); !rep.Suspicious() {
				t.Fatalf("trial %d %s: detector missed the embedding: %+v", trial, ch, rep)
			}

			s := Sanitize(emb, Options{})
			if !reflect.DeepEqual(s, c) {
				t.Fatalf("trial %d %s: sanitized mesh differs from pre-embed original", trial, ch)
			}
			if rep := Detect(s, Options{}); rep.Suspicious() {
				t.Fatalf("trial %d %s: detector still suspicious after sanitize: %+v", trial, ch, rep)
			}

			gotNaive, err := slicer.SliceReference(s, slicer.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotNaive, wantSlice) {
				t.Fatalf("trial %d %s: naive-kernel slice differs after embed+sanitize", trial, ch)
			}
			gotIndexed, err := slicer.Slice(s, slicer.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotIndexed, gotNaive) {
				t.Fatalf("trial %d %s: indexed slice differs from naive oracle", trial, ch)
			}

			// Unrecoverability: no channel yields the payload — or any
			// payload — from the sanitized mesh.
			for _, ex := range []Channel{ChannelFacetOrder, ChannelCoordLSB} {
				if got, err := Extract(s, ex, Options{}); err == nil {
					t.Fatalf("trial %d %s: payload %x recovered via %s after sanitize", trial, ch, got, ex)
				}
			}
		}
	}
}

// The same guarantee at the wire level, the shape the service relies on
// for content addressing: sanitizing the attacker's STL bytes yields
// bytes identical to sanitizing the original file, and re-sanitizing
// the output is the identity.
func TestSanitizeSTLCanonicalBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	orig := testMesh(rng, 12)
	origSTL, err := stl.Marshal(orig, stl.Binary, "part")
	if err != nil {
		t.Fatal(err)
	}
	cleanSTL, rep, err := SanitizeSTL(origSTL, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Version != Version || rep.Triangles != orig.TriangleCount() || rep.Quantum != DefaultQuantum {
		t.Fatalf("report = %+v", rep)
	}
	if rep.After.Suspicious() {
		t.Fatalf("sanitized output still suspicious: %+v", rep.After)
	}

	payload := []byte("stolen blueprint fragment")
	emb, err := Embed(orig, payload, Options{})
	if err != nil {
		t.Fatal(err)
	}
	embSTL, err := stl.Marshal(emb, stl.Binary, "part")
	if err != nil {
		t.Fatal(err)
	}
	// The payload survives the STL wire format round trip...
	decoded, err := stl.Unmarshal(embSTL)
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range []Channel{ChannelFacetOrder, ChannelCoordLSB} {
		got, err := Extract(decoded, ch, Options{})
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("%s: payload lost in STL round trip: %q, %v", ch, got, err)
		}
	}
	// ...and sanitizing the stego file reproduces the canonical bytes.
	fromEmb, rep2, err := SanitizeSTL(embSTL, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Before.Suspicious() {
		t.Fatalf("detector missed wire-level embedding: %+v", rep2.Before)
	}
	if !bytes.Equal(fromEmb, cleanSTL) {
		t.Fatal("sanitized stego STL differs from sanitized original STL")
	}
	again, _, err := SanitizeSTL(cleanSTL, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, cleanSTL) {
		t.Fatal("sanitize is not idempotent at the byte level")
	}
}

func TestSanitizeSTLRejectsGarbage(t *testing.T) {
	if _, _, err := SanitizeSTL([]byte("not an stl"), Options{}); err == nil {
		t.Fatal("garbage input must error")
	}
	// Non-finite coordinates are rejected by the hardened decoder
	// before they can poison the sanitizer.
	bad := "solid x\nfacet normal 0 0 1\nouter loop\nvertex NaN 0 0\nvertex 1 0 0\nvertex 0 1 0\nendloop\nendfacet\nendsolid x\n"
	if _, _, err := SanitizeSTL([]byte(bad), Options{}); err == nil {
		t.Fatal("non-finite input must error")
	}
}
