package stego

import (
	"fmt"

	"obfuscade/internal/stl"
)

// SanitizeReport is the service- and CLI-facing result of sanitizing
// one design file: the detector's verdict before and after, so callers
// see both what the file looked like on arrival and proof the output is
// canonical.
type SanitizeReport struct {
	Version   string  `json:"version"`
	Triangles int     `json:"triangles"`
	Quantum   float64 `json:"quantum"`
	Before    Report  `json:"before"`
	After     Report  `json:"after"`
}

// SanitizeSTL decodes an STL file (binary or ASCII), destroys its stego
// channels, and re-encodes it as binary STL. The output is canonical:
// sanitizing the result again returns identical bytes.
func SanitizeSTL(data []byte, opts Options) ([]byte, SanitizeReport, error) {
	opts = opts.withDefaults()
	var rep SanitizeReport
	m, err := stl.Unmarshal(data)
	if err != nil {
		return nil, rep, fmt.Errorf("stego: %w", err)
	}
	rep.Version = Version
	rep.Quantum = opts.Quantum
	rep.Before = Detect(m, opts)
	clean := Sanitize(m, opts)
	rep.After = Detect(clean, opts)
	rep.Triangles = clean.TriangleCount()
	name := "sanitized"
	if len(clean.Shells) > 0 && clean.Shells[0].Name != "" {
		name = clean.Shells[0].Name
	}
	out, err := stl.Marshal(clean, stl.Binary, name)
	if err != nil {
		return nil, rep, fmt.Errorf("stego: %w", err)
	}
	return out, rep, nil
}
