// Package stego implements the covert-channel threat model of "Stop
// Stealing My Data: Sanitizing Stego Channels in 3D Printing Design
// Files" (arXiv 2404.05106) over the repository's STL representation.
//
// An STL file carries more entropy than the geometry it describes: the
// *order* of its facets and the low bits of its coordinates are both
// free variables a tool in the design chain can set without changing
// the printed part. That makes every exported design file a covert
// exfiltration surface. This package provides all three roles:
//
//   - Embed hides a payload in one (or both) of two channels: a
//     facet-permutation channel (the payload selects the ordering of
//     the canonically-sorted facet list, ~log2(n!) bits) and a
//     coordinate-LSB channel (each payload bit nudges one coordinate by
//     a quarter of the sanitizer's quantum, 9 bits per facet).
//   - Detect scores a mesh per channel with order statistics
//     (normalized inversion count against the canonical facet order)
//     and LSB entropy (Shannon entropy of the sub-quantum coordinate
//     residues), without needing the original file.
//   - Sanitize destroys both channels: facets are re-ordered by a
//     deterministic spatial sort and every coordinate is re-quantized
//     to the grid, so the output depends only on the geometry — two
//     files describing the same part sanitize to identical bytes, and
//     no residual ordering or sub-quantum freedom remains to carry
//     data. Property tests prove sanitized meshes slice byte-identically
//     (against the retained naive slicer kernels) and that embedded
//     payloads are unrecoverable afterwards.
//
// The defense is the pair (attack, sanitizer) registered in
// internal/supplychain and exposed by the service as POST /sanitize.
package stego

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"obfuscade/internal/parallel"
)

// Version tags the sanitizer's behaviour. It is hashed into the
// service's content addresses so a change to the canonical order, the
// quantum default, or the frame format invalidates cached results.
const Version = "obfuscade-stego/1"

// DefaultQuantum is the coordinate grid the sanitizer snaps to: 2^-10
// model units (sub-micron at mm scale), far below any printer's
// resolution but coarse enough that quantization is exact in both
// float32 (the STL wire format) and float64 for any sane part size.
const DefaultQuantum = 1.0 / 1024

// permWindow bounds the facet-permutation channel to the first w
// canonically-sorted facets. log2(4096!) ≈ 43k bits (~5.3 KB) of
// capacity while keeping the factoradic arithmetic far from the
// quadratic blow-up a million-facet mesh would cause.
const permWindow = 4096

// Channel selects which stego channel(s) an Embed call uses.
type Channel int

const (
	// ChannelFacetOrder hides the payload in the permutation of the
	// facet list relative to the canonical spatial sort.
	ChannelFacetOrder Channel = 1 << iota
	// ChannelCoordLSB hides the payload in sub-quantum coordinate
	// offsets: bit 1 shifts a coordinate by quantum/4, bit 0 leaves it
	// on the grid.
	ChannelCoordLSB
)

func (c Channel) String() string {
	switch c {
	case ChannelFacetOrder:
		return "facet-order"
	case ChannelCoordLSB:
		return "coord-lsb"
	case ChannelFacetOrder | ChannelCoordLSB:
		return "facet-order+coord-lsb"
	default:
		return fmt.Sprintf("channel(%d)", int(c))
	}
}

// Options parameterize every operation in the package. The zero value
// is usable: withDefaults fills in the quantum and detection
// thresholds.
type Options struct {
	// Quantum is the coordinate grid pitch. Powers of two divide
	// floating-point values exactly; anything else works but loses the
	// bit-exactness guarantees. Defaults to DefaultQuantum.
	Quantum float64
	// Channels selects the embedding channel(s). Defaults to both.
	Channels Channel
	// OrderThreshold is the facet-order suspicion score above which
	// Detect flags the channel. Defaults to 0.05 (canonical files score
	// exactly 0; a random permutation scores ~1).
	OrderThreshold float64
	// LSBThreshold is the coordinate-LSB suspicion score above which
	// Detect flags the channel. Defaults to 0.05 (on-grid files score
	// exactly 0; an embedded payload scores ~0.3, arbitrary coordinates
	// ~1).
	LSBThreshold float64
}

func (o Options) withDefaults() Options {
	if o.Quantum <= 0 || math.IsNaN(o.Quantum) || math.IsInf(o.Quantum, 0) {
		o.Quantum = DefaultQuantum
	}
	if o.Channels == 0 {
		o.Channels = ChannelFacetOrder | ChannelCoordLSB
	}
	if o.OrderThreshold <= 0 {
		o.OrderThreshold = 0.05
	}
	if o.LSBThreshold <= 0 {
		o.LSBThreshold = 0.05
	}
	return o
}

// Payload framing: both channels carry the same self-describing frame
// so extraction needs no out-of-band length, and sanitization is
// *provably* destructive — after re-canonicalization the extracted bits
// fail the magic/CRC check rather than decoding to garbage that might
// be mistaken for data.
const (
	frameMagic0 = 0x53 // 'S'
	frameMagic1 = 0x74 // 't'
	frameOver   = 2 + 2 + 4
	// maxPayload bounds a single frame: a uint16 length plus overhead.
	maxPayload = 1<<16 - 1
)

func buildFrame(payload []byte) ([]byte, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("stego: empty payload")
	}
	if len(payload) > maxPayload {
		return nil, fmt.Errorf("stego: payload %d bytes exceeds frame limit %d", len(payload), maxPayload)
	}
	frame := make([]byte, 0, frameOver+len(payload))
	frame = append(frame, frameMagic0, frameMagic1)
	frame = binary.BigEndian.AppendUint16(frame, uint16(len(payload)))
	frame = append(frame, payload...)
	frame = binary.BigEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	return frame, nil
}

// padFrame extends a frame to total bytes with deterministic filler
// (SplitMix over the frame's checksum). Both channels embed at full
// capacity: a short payload rattling around a large channel would leave
// most of the order/LSB freedom canonical and hide from the detector's
// own statistics, so the embedder — like any competent exfiltrator —
// fills the channel. parseFrame ignores the padding on extraction.
func padFrame(frame []byte, total int) []byte {
	if total <= len(frame) {
		return frame
	}
	out := make([]byte, len(frame), total)
	copy(out, frame)
	seed := int64(crc32.ChecksumIEEE(frame)) + int64(len(frame))<<32
	for i := 0; len(out) < total; i++ {
		out = binary.BigEndian.AppendUint64(out, uint64(parallel.SplitMix(seed, i)))
	}
	return out[:total]
}

func parseFrame(frame []byte) ([]byte, error) {
	if len(frame) < frameOver {
		return nil, fmt.Errorf("stego: no frame present")
	}
	if frame[0] != frameMagic0 || frame[1] != frameMagic1 {
		return nil, fmt.Errorf("stego: frame magic mismatch")
	}
	n := int(binary.BigEndian.Uint16(frame[2:]))
	if len(frame) < 4+n+4 {
		return nil, fmt.Errorf("stego: truncated frame: %d payload bytes promised, %d available", n, len(frame)-frameOver)
	}
	payload := frame[4 : 4+n]
	want := binary.BigEndian.Uint32(frame[4+n:])
	if crc32.ChecksumIEEE(payload) != want {
		return nil, fmt.Errorf("stego: frame checksum mismatch")
	}
	out := make([]byte, n)
	copy(out, payload)
	return out, nil
}
