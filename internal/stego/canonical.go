package stego

import (
	"math"
	"sort"

	"obfuscade/internal/geom"
	"obfuscade/internal/mesh"
)

// quantize snaps a coordinate to the grid. With a power-of-two quantum
// both the scale and the product are exact in float64, and any grid
// value a sane part can reach (|c| < 2^13 with the default quantum) is
// also exact in float32 — so quantized meshes survive the STL wire
// format bit-for-bit.
func quantize(c, q float64) float64 {
	return math.Round(c/q) * q
}

// residue is the sub-quantum remainder of a coordinate in units of the
// quantum, in [-0.5, 0.5). Zero for on-grid coordinates; ±0.25 for the
// LSB channel's bit-1 offsets.
func residue(c, q float64) float64 {
	r := c / q
	return r - math.Round(r)
}

// flat9 is a triangle flattened to its nine coordinates in vertex-major
// order — the canonical sort key and the coordinate enumeration order
// of the LSB channel.
type flat9 [9]float64

func flatten(t geom.Triangle) flat9 {
	return flat9{t.A.X, t.A.Y, t.A.Z, t.B.X, t.B.Y, t.B.Z, t.C.X, t.C.Y, t.C.Z}
}

func unflatten(f flat9) geom.Triangle {
	return geom.Triangle{
		A: geom.V3(f[0], f[1], f[2]),
		B: geom.V3(f[3], f[4], f[5]),
		C: geom.V3(f[6], f[7], f[8]),
	}
}

func less9(a, b flat9) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// canonTriangle quantizes a triangle and rotates its vertex cycle to
// the lexicographically smallest of the three rotations. The rotation
// preserves winding (and therefore the facet normal) but removes the
// "which vertex comes first" freedom — a third covert channel the
// sanitizer destroys for free.
func canonTriangle(t geom.Triangle, q float64) flat9 {
	rots := [3]flat9{
		flatten(geom.Triangle{A: t.A, B: t.B, C: t.C}),
		flatten(geom.Triangle{A: t.B, B: t.C, C: t.A}),
		flatten(geom.Triangle{A: t.C, B: t.A, C: t.B}),
	}
	for i := range rots {
		for j := range rots[i] {
			rots[i][j] = quantize(rots[i][j], q)
		}
	}
	best := rots[0]
	for _, r := range rots[1:] {
		if less9(r, best) {
			best = r
		}
	}
	return best
}

// canonKeys computes the canonical (quantized, rotation-normalized)
// key of every triangle. Keys are invariant under both channels:
// facet-order embedding only moves whole triangles, and LSB embedding
// perturbs coordinates by strictly less than half a quantum.
func canonKeys(tris []geom.Triangle, q float64) []flat9 {
	keys := make([]flat9, len(tris))
	for i, t := range tris {
		keys[i] = canonTriangle(t, q)
	}
	return keys
}

// canonRanks returns, for each triangle, its rank in the canonical
// spatial sort. Ties (geometrically identical facets) are broken by
// input position, which is the conservative choice for the detector's
// inversion count. dup reports whether any two keys collided.
func canonRanks(keys []flat9) (ranks []int, dup bool) {
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return less9(keys[idx[a]], keys[idx[b]])
	})
	ranks = make([]int, len(keys))
	for r, i := range idx {
		ranks[i] = r
		if r > 0 && keys[idx[r-1]] == keys[i] {
			dup = true
		}
	}
	return ranks, dup
}

// Sanitize destroys every stego channel this package models: all
// coordinates are re-quantized to the grid (killing sub-quantum LSB
// freedom), each facet's vertex cycle is rotated to its canonical
// start (killing the vertex-order channel), and the facet list is
// re-ordered by a deterministic spatial sort (killing the permutation
// channel). The result is a pure function of the geometry: any two
// inputs describing the same quantized part sanitize to identical
// meshes, so Sanitize∘Embed∘Sanitize = Sanitize for every payload. The
// output is a single shell — the STL wire format, where these channels
// live, has no shell structure to preserve.
func Sanitize(m *mesh.Mesh, opts Options) *mesh.Mesh {
	opts = opts.withDefaults()
	tris := m.AllTriangles()
	flats := canonKeys(tris, opts.Quantum)
	sort.Slice(flats, func(a, b int) bool { return less9(flats[a], flats[b]) })
	out := make([]geom.Triangle, len(flats))
	for i, f := range flats {
		out[i] = unflatten(f)
	}
	shell := mesh.Shell{Orient: mesh.Outward, Tris: out}
	if len(m.Shells) > 0 {
		shell.Name = m.Shells[0].Name
		shell.Body = m.Shells[0].Body
		shell.Orient = m.Shells[0].Orient
	}
	return &mesh.Mesh{Shells: []mesh.Shell{shell}}
}

// coordAt / setCoordAt address coordinate j (0..8, vertex-major) of a
// triangle — the LSB channel's enumeration.
func coordAt(t *geom.Triangle, j int) float64 {
	v := [3]*geom.Vec3{&t.A, &t.B, &t.C}[j/3]
	switch j % 3 {
	case 0:
		return v.X
	case 1:
		return v.Y
	default:
		return v.Z
	}
}

func setCoordAt(t *geom.Triangle, j int, c float64) {
	v := [3]*geom.Vec3{&t.A, &t.B, &t.C}[j/3]
	switch j % 3 {
	case 0:
		v.X = c
	case 1:
		v.Y = c
	default:
		v.Z = c
	}
}
