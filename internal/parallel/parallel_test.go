package parallel

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"obfuscade/internal/obs"
)

func TestWorkersSizing(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d", got)
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
	if got := Workers(1 << 20); got != maxWorkers {
		t.Errorf("Workers(huge) = %d, want cap %d", got, maxWorkers)
	}
}

func TestSetDefault(t *testing.T) {
	defer SetDefault(0)
	SetDefault(3)
	if got := Default(); got != 3 {
		t.Errorf("Default() = %d after SetDefault(3)", got)
	}
	if got := Workers(0); got != 3 {
		t.Errorf("Workers(0) = %d with default 3", got)
	}
	SetDefault(0)
	if got := Default(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Default() = %d after reset", got)
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		const n = 100
		counts := make([]int32, n)
		err := ForEach(context.Background(), n, workers, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachZeroTasks(t *testing.T) {
	if err := ForEach(context.Background(), 0, 4, func(int) error { return errors.New("boom") }); err != nil {
		t.Errorf("n=0 should be a no-op, got %v", err)
	}
}

func TestErrorAggregationOrdered(t *testing.T) {
	sentinel := errors.New("bad key")
	for _, workers := range []int{1, 4} {
		err := ForEach(context.Background(), 20, workers, func(i int) error {
			if i%5 == 0 {
				return fmt.Errorf("index %d: %w", i, sentinel)
			}
			return nil
		})
		var list ErrorList
		if !errors.As(err, &list) {
			t.Fatalf("workers=%d: error type %T", workers, err)
		}
		if len(list) != 4 {
			t.Fatalf("workers=%d: %d errors, want 4", workers, len(list))
		}
		for j, te := range list {
			if te.Index != j*5 {
				t.Errorf("workers=%d: error %d has index %d, want %d (index order)",
					workers, j, te.Index, j*5)
			}
		}
		if !errors.Is(err, sentinel) {
			t.Errorf("workers=%d: errors.Is should see the wrapped sentinel", workers)
		}
		var te *TaskError
		if !errors.As(err, &te) {
			t.Errorf("workers=%d: errors.As should find a *TaskError", workers)
		}
	}
}

func TestErrorListDeterministicMessage(t *testing.T) {
	run := func() string {
		err := ForEach(context.Background(), 16, 8, func(i int) error {
			if i%3 == 0 {
				return fmt.Errorf("f%d", i)
			}
			return nil
		})
		return err.Error()
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		if got := run(); got != first {
			t.Fatalf("aggregated error message depends on scheduling:\n%q\nvs\n%q", first, got)
		}
	}
}

func TestCancellationStopsDispatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int32
	err := ForEach(ctx, 1000, 4, func(i int) error {
		if atomic.AddInt32(&ran, 1) == 1 {
			cancel()
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := atomic.LoadInt32(&ran); n >= 1000 {
		t.Errorf("all %d tasks ran despite cancellation", n)
	}
}

func TestCancellationSerialPath(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int32
	err := ForEach(ctx, 10, 1, func(i int) error {
		atomic.AddInt32(&ran, 1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Errorf("%d tasks ran on a pre-cancelled context", ran)
	}
}

func TestMapOrderedAssembly(t *testing.T) {
	for _, workers := range []int{1, 8} {
		out, err := Map(context.Background(), 50, workers, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapPartialOnError(t *testing.T) {
	out, err := Map(context.Background(), 4, 2, func(i int) (string, error) {
		if i == 2 {
			return "", errors.New("boom")
		}
		return fmt.Sprintf("v%d", i), nil
	})
	if err == nil {
		t.Fatal("want aggregated error")
	}
	want := []string{"v0", "v1", "", "v3"}
	for i, w := range want {
		if out[i] != w {
			t.Errorf("out[%d] = %q, want %q", i, out[i], w)
		}
	}
}

func TestSplitMixIndependentStreams(t *testing.T) {
	// Distinct (seed, index) pairs must give distinct seeds, and each
	// derived stream must be reproducible.
	seen := map[int64]bool{}
	for seed := int64(0); seed < 10; seed++ {
		for i := 0; i < 100; i++ {
			s := SplitMix(seed, i)
			if seen[s] {
				t.Fatalf("seed collision at (%d, %d)", seed, i)
			}
			seen[s] = true
		}
	}
	a := rand.New(rand.NewSource(SplitMix(42, 3))).NormFloat64()
	b := rand.New(rand.NewSource(SplitMix(42, 3))).NormFloat64()
	if a != b {
		t.Error("derived stream not reproducible")
	}
}

func TestForEachMetricsWorkerIndependent(t *testing.T) {
	// Counter totals (submitted/completed/failed) and histogram counts must
	// depend only on the workload, never on the pool size — the obs
	// determinism contract the CI bench gate relies on.
	run := func(workers int) (submitted, completed, failed, queueObs, taskObs int64) {
		obs.Default().Reset()
		_ = ForEach(context.Background(), 24, workers, func(i int) error {
			if i%6 == 0 {
				return errors.New("boom")
			}
			return nil
		})
		snap := obs.Default().Snapshot()
		submitted, _ = snap.Counter("parallel.tasks.submitted")
		completed, _ = snap.Counter("parallel.tasks.completed")
		failed, _ = snap.Counter("parallel.tasks.failed")
		if h, ok := snap.Stage("parallel.queue.wait.seconds"); ok {
			queueObs = h.Count
		}
		if h, ok := snap.Stage("parallel.task.seconds"); ok {
			taskObs = h.Count
		}
		return
	}
	for _, workers := range []int{1, 2, 8} {
		s, c, f, q, tk := run(workers)
		if s != 24 || c != 20 || f != 4 {
			t.Errorf("workers=%d: submitted/completed/failed = %d/%d/%d, want 24/20/4",
				workers, s, c, f)
		}
		if q != 24 || tk != 24 {
			t.Errorf("workers=%d: queue/task observations = %d/%d, want 24/24",
				workers, q, tk)
		}
	}
	obs.Default().Reset()
}

func TestForEachUtilizationGauges(t *testing.T) {
	obs.Default().Reset()
	err := ForEach(context.Background(), 8, 2, func(i int) error {
		time.Sleep(2 * time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := obs.Default().Snapshot()
	busy, okB := snap.Gauge("parallel.pool.busy.nanos")
	wall, okW := snap.Gauge("parallel.pool.wall.nanos")
	if !okB || !okW {
		t.Fatalf("pool gauges missing: busy=%v wall=%v", okB, okW)
	}
	if busy <= 0 || wall <= 0 {
		t.Errorf("non-positive pool time: busy=%d wall=%d", busy, wall)
	}
	// Busy time can never exceed the reserved worker-time by more than
	// scheduling noise; allow slack for coarse timers.
	if busy > 2*wall {
		t.Errorf("busy %dns implausibly exceeds reserved %dns", busy, wall)
	}
	if calls, _ := snap.Counter("parallel.foreach.calls"); calls != 1 {
		t.Errorf("foreach calls = %d, want 1", calls)
	}
	obs.Default().Reset()
}

// Regression: on a 1-worker pool the dispatcher itself checks ctx only
// between tasks. A long-running task must therefore observe cancellation
// through the worker context it receives — the job service relies on this
// to interrupt pipeline stages mid-task when a request deadline expires.
func TestSerialTaskObservesMidTaskCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	go func() {
		<-started
		cancel()
	}()
	err := ForEachCtx(ctx, 3, 1, func(wctx context.Context, i int) error {
		if i == 0 {
			close(started)
			select {
			case <-wctx.Done():
				return wctx.Err()
			case <-time.After(10 * time.Second):
				return fmt.Errorf("task never saw the cancellation")
			}
		}
		return fmt.Errorf("task %d ran after cancellation", i)
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
