// Package parallel is the deterministic bounded worker pool used by the
// hot paths of the manufacture pipeline (quality matrix, key-space
// brute-force analysis, tensile replicates, per-layer slicing, the
// paperbench regenerators).
//
// Design rules that make parallel output byte-identical to serial output:
//
//   - Tasks are indexed 0..n-1 and results are always assembled by index,
//     never by completion order.
//   - Tasks must not share mutable state; anything random derives an
//     independent, seed-derived stream per index (see parallel.SplitMix).
//   - Errors are captured per task and aggregated in index order, so the
//     combined error message does not depend on scheduling.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"obfuscade/internal/obs"
	"obfuscade/internal/trace"
)

// Pool metrics (package obs). Counters and histogram counts are
// deterministic for a given workload; the gauges accumulate wall-clock
// nanoseconds (busy vs reserved) from which worker utilization derives.
var (
	mSubmitted = obs.Default().Counter("parallel.tasks.submitted")
	mCompleted = obs.Default().Counter("parallel.tasks.completed")
	mFailed    = obs.Default().Counter("parallel.tasks.failed")
	gActive    = obs.Default().Gauge("parallel.workers.active")
	gBusyNanos = obs.Default().Gauge("parallel.pool.busy.nanos")
	gWallNanos = obs.Default().Gauge("parallel.pool.wall.nanos")
	hQueueWait = obs.Default().Histogram("parallel.queue.wait.seconds", nil)
	hTask      = obs.Default().Histogram("parallel.task.seconds", nil)
	stForEach  = obs.Stage("parallel.foreach")
)

// maxWorkers is a sanity cap on explicitly requested pool sizes.
const maxWorkers = 256

// defaultWorkers holds the process-wide default pool size; 0 means
// GOMAXPROCS. CLIs set it from their -workers flag.
var defaultWorkers atomic.Int64

// SetDefault sets the process-wide default worker count used when a call
// site passes workers <= 0. n <= 0 restores the GOMAXPROCS default.
func SetDefault(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Default returns the current default worker count.
func Default() int {
	if n := int(defaultWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Workers normalises a requested pool size: values <= 0 mean Default()
// (GOMAXPROCS-capped fan-out); explicit requests are honoured up to a
// sanity cap so a typo cannot spawn unbounded goroutines.
func Workers(requested int) int {
	if requested <= 0 {
		return Default()
	}
	if requested > maxWorkers {
		return maxWorkers
	}
	return requested
}

// TaskError records the failure of one indexed task.
type TaskError struct {
	// Index is the task index the error belongs to.
	Index int
	// Err is the task's error.
	Err error
}

// Error implements error.
func (e *TaskError) Error() string { return fmt.Sprintf("task %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying error to errors.Is / errors.As.
func (e *TaskError) Unwrap() error { return e.Err }

// ErrorList aggregates task errors in ascending index order.
type ErrorList []*TaskError

// Error implements error.
func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "parallel: no errors"
	case 1:
		return l[0].Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d tasks failed: ", len(l))
	for i, e := range l {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(e.Error())
	}
	return b.String()
}

// Unwrap exposes every task error to errors.Is / errors.As.
func (l ErrorList) Unwrap() []error {
	out := make([]error, len(l))
	for i, e := range l {
		out[i] = e
	}
	return out
}

// ForEach runs fn(i) for i in [0, n) on a bounded pool of workers
// (workers <= 0 means Default()). Every task error is captured; the
// aggregate is returned as an ErrorList ordered by index, so the result —
// including the error — is independent of scheduling. Cancelling ctx
// stops dispatching new tasks; tasks already running finish, and the
// returned error wraps ctx's error.
//
// fn writes to caller-owned, per-index storage; ForEach guarantees that
// all such writes happen-before it returns.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	return ForEachCtx(ctx, n, workers, func(_ context.Context, i int) error { return fn(i) })
}

// ForEachCtx is ForEach for context-aware tasks: fn receives a task
// context derived from ctx and tagged with the worker lane running it
// (trace.WithWorker), so trace events emitted inside the task carry
// worker attribution and parent to the caller's span. The lane a task
// lands on is scheduling-dependent; deterministic work must not branch
// on it.
func ForEachCtx(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) (err error) {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	w := Workers(workers)
	if w > n {
		w = n
	}

	// Instrumentation: queue wait is measured from dispatch start to task
	// start; per-task busy time feeds the utilization gauges. The serial
	// fast path below wraps fn identically, so counter totals and
	// histogram counts are independent of the worker count.
	mSubmitted.Add(int64(n))
	span := stForEach.Start()
	dispatchStart := time.Now()
	task := fn
	run := func(wctx context.Context, i int) error {
		hQueueWait.Observe(time.Since(dispatchStart).Seconds())
		gActive.Add(1)
		t0 := time.Now()
		err := task(wctx, i)
		busy := time.Since(t0)
		gActive.Add(-1)
		gBusyNanos.Add(busy.Nanoseconds())
		hTask.Observe(busy.Seconds())
		if err != nil {
			mFailed.Inc()
		} else {
			mCompleted.Inc()
		}
		return err
	}
	defer func() {
		gWallNanos.Add(time.Since(dispatchStart).Nanoseconds() * int64(w))
		span.EndErr(err)
	}()

	if w == 1 {
		// Serial fast path: identical semantics, no goroutines.
		wctx := trace.WithWorker(ctx, 0)
		var errs ErrorList
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return append(errs, &TaskError{Index: i, Err: ctx.Err()})
			}
			if err := run(wctx, i); err != nil {
				errs = append(errs, &TaskError{Index: i, Err: err})
			}
		}
		if len(errs) == 0 {
			return nil
		}
		return errs
	}

	var (
		next int64 = -1
		mu   sync.Mutex
		errs ErrorList
		wg   sync.WaitGroup
	)
	canceled := false
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			wctx := trace.WithWorker(ctx, lane)
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					mu.Lock()
					if !canceled {
						canceled = true
						errs = append(errs, &TaskError{Index: i, Err: err})
					}
					mu.Unlock()
					return
				}
				if err := run(wctx, i); err != nil {
					mu.Lock()
					errs = append(errs, &TaskError{Index: i, Err: err})
					mu.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()
	if len(errs) == 0 {
		return nil
	}
	sort.Slice(errs, func(a, b int) bool { return errs[a].Index < errs[b].Index })
	return errs
}

// Map runs fn(i) for i in [0, n) on a bounded pool and returns the
// results assembled in index order. Failed indices keep the zero value;
// the error (if any) is an ErrorList ordered by index. The partial result
// slice is always returned so callers can salvage completed work.
func Map[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, err
}

// SplitMix derives an independent RNG seed for sub-stream i of a parent
// seed using the splitmix64 finaliser. Parallel tasks each seed their own
// rand.Rand from SplitMix(seed, i) so the noise a task draws depends only
// on (seed, i), never on which worker ran it or in what order.
func SplitMix(seed int64, i int) int64 {
	z := uint64(seed) + (uint64(i)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}
