package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"testing"

	"obfuscade/internal/cache"
	"obfuscade/internal/parallel"
	"obfuscade/internal/printer"
)

func TestNormalizeDefaultsAndValidation(t *testing.T) {
	norm, err := Request{}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Part != "bar" || norm.Resolution != "coarse" || norm.Orientation != "x-y" {
		t.Fatalf("defaults = %+v", norm)
	}
	bad := []Request{
		{Part: "teapot"},
		{Resolution: "ultra"},
		{Orientation: "y-z"},
		{TimeoutMS: -1},
	}
	for _, r := range bad {
		if _, err := r.Normalize(); err == nil {
			t.Fatalf("request %+v must not normalize", r)
		}
	}
}

func TestCacheKeyDerivation(t *testing.T) {
	base, err := Request{Seed: 7}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	// timeout_ms must not affect the address: it changes when a job
	// fails, never what it produces.
	withTimeout := base
	withTimeout.TimeoutMS = 5000
	if base.CacheKey() != withTimeout.CacheKey() {
		t.Fatal("timeout_ms leaked into the cache key")
	}
	// Every output-determining field must affect the address.
	variants := []Request{
		{Part: "prism", Seed: 7},
		{Resolution: "fine", Seed: 7},
		{Orientation: "x-z", Seed: 7},
		{RestoreSphere: true, Seed: 7},
		{Seed: 8},
		{Simulate: true, Seed: 7},
	}
	for _, v := range variants {
		norm, err := v.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		if norm.CacheKey() == base.CacheKey() {
			t.Fatalf("variant %+v collides with base key", v)
		}
	}
}

func TestDoHitIsByteIdentical(t *testing.T) {
	svc := NewService(0, printer.DimensionElite())
	req := Request{Seed: 1}
	first, err := svc.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Outcome != cache.Miss {
		t.Fatalf("first call outcome = %s, want miss", first.Outcome)
	}
	second, err := svc.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if second.Outcome != cache.Hit {
		t.Fatalf("second call outcome = %s, want hit", second.Outcome)
	}
	if !bytes.Equal(first.STL, second.STL) {
		t.Fatal("cached STL differs from fresh run")
	}
	if !bytes.Equal(first.Manifest, second.Manifest) {
		t.Fatal("cached manifest differs from fresh run")
	}
	sum := sha256.Sum256(first.STL)
	if got := hex.EncodeToString(sum[:]); got != first.STLSHA256 {
		t.Fatalf("STL digest %s != reported %s", got, first.STLSHA256)
	}
	var manifest map[string]any
	if err := json.Unmarshal(first.Manifest, &manifest); err != nil {
		t.Fatalf("manifest not valid JSON: %v", err)
	}
	if manifest["stl_sha256"] != first.STLSHA256 {
		t.Fatal("manifest digest disagrees with result digest")
	}
	s := svc.CacheStats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("cache stats = %+v", s)
	}
}

// The cached artifact must be byte-identical to a fresh run at any pool
// size: caching extends the pipeline's determinism contract, it must
// not narrow it.
func TestDoDeterministicAcrossPoolSizes(t *testing.T) {
	req := Request{Seed: 42}
	defer parallel.SetDefault(0)

	runAt := func(workers int) *Result {
		parallel.SetDefault(workers)
		svc := NewService(0, printer.DimensionElite())
		res, err := svc.Do(context.Background(), req)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	serial := runAt(1)
	pooled := runAt(8)
	if !bytes.Equal(serial.STL, pooled.STL) {
		t.Fatal("STL bytes differ between pool sizes 1 and 8")
	}
	if serial.STLSHA256 != pooled.STLSHA256 {
		t.Fatalf("digests differ: %s vs %s", serial.STLSHA256, pooled.STLSHA256)
	}
	// stage_seconds is wall-clock-derived and exempt from the
	// determinism contract; every other manifest field must agree.
	stripTimes := func(raw []byte) map[string]any {
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatal(err)
		}
		delete(m, "stage_seconds")
		return m
	}
	a, b := stripTimes(serial.Manifest), stripTimes(pooled.Manifest)
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if !bytes.Equal(aj, bj) {
		t.Fatalf("deterministic manifest fields differ:\n%s\n%s", aj, bj)
	}
}

func TestDoDistinctRequestsMiss(t *testing.T) {
	svc := NewService(0, printer.DimensionElite())
	a, err := svc.Do(context.Background(), Request{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := svc.Do(context.Background(), Request{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Outcome != cache.Miss || b.Outcome != cache.Miss {
		t.Fatalf("outcomes = %s, %s; want two misses", a.Outcome, b.Outcome)
	}
	// Seed is provenance metadata, not geometry: the STLs agree but the
	// manifests (and so the cache entries) do not.
	if !bytes.Equal(a.STL, b.STL) {
		t.Fatal("same geometry with different seeds must produce the same STL")
	}
	if bytes.Equal(a.Manifest, b.Manifest) {
		t.Fatal("manifests with different seeds must differ")
	}
	if s := svc.CacheStats(); s.Misses != 2 || s.Entries != 2 {
		t.Fatalf("cache stats = %+v", s)
	}
}

func TestDoValidationError(t *testing.T) {
	svc := NewService(0, printer.DimensionElite())
	if _, err := svc.Do(context.Background(), Request{Part: "teapot"}); err == nil {
		t.Fatal("invalid request must not run")
	}
	if s := svc.CacheStats(); s.Misses != 0 {
		t.Fatalf("invalid request reached the cache: %+v", s)
	}
}
