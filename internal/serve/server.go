package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"obfuscade/internal/obs"
	"obfuscade/internal/printer"
	"obfuscade/internal/trace"
)

// maxRequestBytes bounds a job submission body; requests are small
// parameter records, never geometry.
const maxRequestBytes = 1 << 20

// Options configures a Server.
type Options struct {
	// Addr is the listen address ("127.0.0.1:0" picks a free port).
	Addr string
	// CacheBytes is the result cache budget; <= 0 means unbounded.
	CacheBytes int64
	// JobTimeout is the default per-job pipeline deadline; <= 0 means
	// no default (a request may still set timeout_ms).
	JobTimeout time.Duration
	// Profile is the printer profile; the zero value selects the
	// Dimension Elite.
	Profile printer.Profile
	// ManifestOut, when non-nil, receives one NDJSON provenance line
	// per completed job at shutdown.
	ManifestOut io.Writer
}

// jobState is the lifecycle of a submitted job.
type jobState string

const (
	stateRunning jobState = "running"
	stateDone    jobState = "done"
	stateFailed  jobState = "failed"
)

// job is one submitted request, keyed by its cache key so identical
// submissions share an entry.
type job struct {
	id      string
	req     Request
	done    chan struct{} // closed when result/err are set
	result  *Result
	err     error
	created time.Time
}

// jobStatus is the JSON the status endpoints return.
type jobStatus struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Outcome   string `json:"outcome,omitempty"`
	Grade     string `json:"grade,omitempty"`
	STLSHA256 string `json:"stl_sha256,omitempty"`
	STLBytes  int    `json:"stl_bytes,omitempty"`
	Error     string `json:"error,omitempty"`
	STLURL    string `json:"stl_url,omitempty"`
	Manifest  string `json:"manifest_url,omitempty"`
}

// Server is the HTTP job service. Job routes and the debug surface
// (/metrics, /trace, /debug/pprof/) share one mux on one port.
type Server struct {
	svc  *Service
	http *trace.DebugServer

	rootCtx    context.Context
	cancelJobs context.CancelFunc
	jobTimeout time.Duration
	manifestW  io.Writer

	mu       sync.Mutex
	jobs     map[string]*job
	draining bool
	wg       sync.WaitGroup
}

// Start builds the service, mounts the job routes on the shared debug
// mux, and binds the listener synchronously.
func Start(opts Options) (*Server, error) {
	prof := opts.Profile
	if prof.Name == "" {
		prof = printer.DimensionElite()
	}
	rootCtx, cancel := context.WithCancel(context.Background())
	s := &Server{
		svc:        NewService(opts.CacheBytes, prof),
		rootCtx:    rootCtx,
		cancelJobs: cancel,
		jobTimeout: opts.JobTimeout,
		manifestW:  opts.ManifestOut,
		jobs:       map[string]*job{},
	}
	mux := trace.NewDebugMux(obs.Default(), trace.Default())
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/stl", s.handleSTL)
	mux.HandleFunc("GET /jobs/{id}/manifest", s.handleManifest)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	ds, err := trace.StartServer(opts.Addr, mux)
	if err != nil {
		cancel()
		return nil, err
	}
	s.http = ds
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.http.Addr() }

// URL returns the server's base URL.
func (s *Server) URL() string { return s.http.URL() }

// Service exposes the underlying job service (tests and benchmarks).
func (s *Server) Service() *Service { return s.svc }

// Close drops everything immediately: in-flight jobs are cancelled and
// connections closed. Use Shutdown for a graceful drain.
func (s *Server) Close() error {
	s.cancelJobs()
	return s.http.Close()
}

// Shutdown drains the server: new submissions are refused, in-flight
// jobs run to completion or until ctx expires (then they are
// cancelled), completed manifests are flushed to Options.ManifestOut,
// and finally the HTTP listener closes.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		// Out of patience: cancel the root context so the context-aware
		// pipeline stages abort, then wait for the workers to unwind.
		s.cancelJobs()
		<-drained
	}

	var flushErr error
	if s.manifestW != nil {
		flushErr = s.flushManifests()
	}
	if err := s.http.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	s.cancelJobs()
	return flushErr
}

// flushManifests writes one NDJSON provenance line per completed job,
// in submission order.
func (s *Server) flushManifests() error {
	s.mu.Lock()
	done := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		select {
		case <-j.done:
			if j.err == nil {
				done = append(done, j)
			}
		default:
		}
	}
	s.mu.Unlock()
	sort.Slice(done, func(a, b int) bool { return done[a].created.Before(done[b].created) })
	bw := bufio.NewWriter(s.manifestW)
	for _, j := range done {
		bw.Write(j.result.Manifest)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// submit registers (or joins) the job for a normalized request. The
// bool reports whether this call started a new run.
func (s *Server) submit(norm Request) (*job, bool, error) {
	id := string(norm.CacheKey())
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false, errDraining
	}
	if j, ok := s.jobs[id]; ok {
		select {
		case <-j.done:
			// Finished: fall through and re-run. The cache makes the
			// re-run a hit, so this only refreshes the job entry.
		default:
			return j, false, nil // join the in-flight run
		}
	}
	j := &job{id: id, req: norm, done: make(chan struct{}), created: time.Now()}
	s.jobs[id] = j
	s.wg.Add(1)
	go s.runJob(j)
	return j, true, nil
}

var errDraining = errors.New("serve: draining, not accepting jobs")

// runJob executes one job under the root context and the per-job
// deadline, then publishes the result.
func (s *Server) runJob(j *job) {
	defer s.wg.Done()
	ctx := s.rootCtx
	if t := s.effectiveTimeout(j.req); t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	res, err := s.svc.Do(ctx, j.req)
	s.mu.Lock()
	j.result, j.err = res, err
	s.mu.Unlock()
	close(j.done)
}

// effectiveTimeout resolves a job's deadline: the request's timeout_ms
// when set, capped by the server default.
func (s *Server) effectiveTimeout(req Request) time.Duration {
	t := s.jobTimeout
	if req.TimeoutMS > 0 {
		rt := time.Duration(req.TimeoutMS) * time.Millisecond
		if t <= 0 || rt < t {
			t = rt
		}
	}
	return t
}

// lookup returns the job entry for an id.
func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// status snapshots a job into its wire form.
func (s *Server) status(j *job) jobStatus {
	st := jobStatus{ID: j.id, State: string(stateRunning)}
	select {
	case <-j.done:
	default:
		return st
	}
	s.mu.Lock()
	res, err := j.result, j.err
	s.mu.Unlock()
	if err != nil {
		st.State = string(stateFailed)
		st.Error = err.Error()
		return st
	}
	st.State = string(stateDone)
	st.Outcome = res.Outcome.String()
	st.Grade = res.Grade
	st.STLSHA256 = res.STLSHA256
	st.STLBytes = len(res.STL)
	st.STLURL = "/jobs/" + j.id + "/stl"
	st.Manifest = "/jobs/" + j.id + "/manifest"
	return st
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// handleSubmit accepts a job request. By default it returns 202 with
// the job's id immediately; ?wait=1 blocks until the job finishes and
// returns the final status.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: decoding request: %w", err))
		return
	}
	norm, err := req.Normalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j, _, err := s.submit(norm)
	if errors.Is(err, errDraining) {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if r.URL.Query().Get("wait") == "" {
		writeJSON(w, http.StatusAccepted, s.status(j))
		return
	}
	select {
	case <-j.done:
	case <-r.Context().Done():
		writeError(w, http.StatusRequestTimeout, r.Context().Err())
		return
	}
	st := s.status(j)
	if st.State == string(stateFailed) {
		writeJSON(w, http.StatusInternalServerError, st)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("serve: unknown job"))
		return
	}
	writeJSON(w, http.StatusOK, s.status(j))
}

// artifact fetches a finished job's result, translating lifecycle into
// status codes: 404 unknown, 409 still running, 500 failed.
func (s *Server) artifact(w http.ResponseWriter, r *http.Request) (*Result, bool) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("serve: unknown job"))
		return nil, false
	}
	select {
	case <-j.done:
	default:
		writeError(w, http.StatusConflict, errors.New("serve: job still running"))
		return nil, false
	}
	s.mu.Lock()
	res, err := j.result, j.err
	s.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return nil, false
	}
	return res, true
}

func (s *Server) handleSTL(w http.ResponseWriter, r *http.Request) {
	res, ok := s.artifact(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="`+res.Request.Part+`.stl"`)
	w.Header().Set("X-Stl-Sha256", res.STLSHA256)
	w.Write(res.STL)
}

func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	res, ok := s.artifact(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(res.Manifest)
	w.Write([]byte("\n"))
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	inflight := 0
	for _, j := range s.jobs {
		select {
		case <-j.done:
		default:
			inflight++
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   map[bool]string{false: "ok", true: "draining"}[draining],
		"inflight": inflight,
		"cache":    s.svc.CacheStats(),
	})
}
