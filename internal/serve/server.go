package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"obfuscade/internal/cache/diskstore"
	"obfuscade/internal/obs"
	"obfuscade/internal/printer"
	"obfuscade/internal/trace"
)

// maxRequestBytes bounds a job submission body; requests are small
// parameter records, never geometry.
const maxRequestBytes = 1 << 20

// maxBatchJobs bounds one batch submission. A full quality-matrix
// sweep (parts × resolutions × orientations × restore) is well under
// this; anything larger should be split across batches.
const maxBatchJobs = 256

// defaultMaxCompleted bounds the completed-job registry when
// Options.MaxCompleted is zero. Pruned jobs cost one re-submission
// round trip: the result cache makes the re-run a hit.
const defaultMaxCompleted = 4096

// retryAfterSeconds is the backoff hint attached to shed responses.
const retryAfterSeconds = 1

// Options configures a Server.
type Options struct {
	// Addr is the listen address ("127.0.0.1:0" picks a free port).
	Addr string
	// CacheBytes is the in-memory result cache budget; <= 0 means
	// unbounded.
	CacheBytes int64
	// CacheDir, when non-empty, roots the persistent result cache tier:
	// computed artifacts are written through to disk and survive
	// restarts of the server on the same directory.
	CacheDir string
	// DiskCacheBytes is the disk tier's byte budget; <= 0 means
	// unbounded. Ignored when CacheDir is empty.
	DiskCacheBytes int64
	// MaxQueue bounds the number of jobs admitted but not yet finished.
	// A submission that would start a job past the bound is shed with
	// 429 + Retry-After; joining an already-running job is always
	// admitted (it adds no load). <= 0 means unbounded.
	MaxQueue int
	// MaxCompleted bounds the finished-job registry: once more than
	// this many completed jobs are retained, the oldest are pruned
	// (their artifacts stay in the result cache; re-submitting is a
	// cache hit). 0 means defaultMaxCompleted; < 0 means unbounded.
	MaxCompleted int
	// JobTimeout is the default per-job pipeline deadline; <= 0 means
	// no default (a request may still set timeout_ms).
	JobTimeout time.Duration
	// Profile is the printer profile; the zero value selects the
	// Dimension Elite.
	Profile printer.Profile
	// ManifestOut, when non-nil, receives one NDJSON provenance line
	// per completed job at shutdown.
	ManifestOut io.Writer
	// AccessLog, when non-nil, receives one NDJSON access-log line per
	// HTTP request (see AccessEntry). Entries flush as they are written
	// and once more on graceful drain.
	AccessLog io.Writer
}

// jobState is the lifecycle of a submitted job.
type jobState string

const (
	stateRunning jobState = "running"
	stateDone    jobState = "done"
	stateFailed  jobState = "failed"
)

// job is one submitted request, keyed by its cache key so identical
// submissions share an entry.
type job struct {
	id      string
	req     Request
	done    chan struct{} // closed when result/err are set
	result  *Result
	err     error
	created time.Time

	// Trace identity captured from the submitting request: jobs outlive
	// their HTTP request (they run under the server's root context), so
	// the propagated context is frozen here at admission and re-adopted
	// in runJob. A joined run keeps the identity of the submission that
	// started it.
	traceID    string
	parentSpan uint64
	reqID      string
}

// jobStatus is the JSON the status endpoints return.
type jobStatus struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Outcome   string `json:"outcome,omitempty"`
	Grade     string `json:"grade,omitempty"`
	STLSHA256 string `json:"stl_sha256,omitempty"`
	STLBytes  int    `json:"stl_bytes,omitempty"`
	Error     string `json:"error,omitempty"`
	STLURL    string `json:"stl_url,omitempty"`
	Manifest  string `json:"manifest_url,omitempty"`
}

// Server is the HTTP job service. Job routes and the debug surface
// (/metrics, /trace, /debug/pprof/) share one mux on one port.
type Server struct {
	svc       *Service
	disk      *diskstore.Store // nil when serving memory-only
	http      *trace.DebugServer
	accessLog *AccessLogger // nil when access logging is off

	rootCtx      context.Context
	cancelJobs   context.CancelFunc
	jobTimeout   time.Duration
	manifestW    io.Writer
	maxQueue     int
	maxCompleted int

	mu        sync.Mutex
	jobs      map[string]*job
	completed []*job // finished jobs, oldest first, pruned past maxCompleted
	inflight  int    // jobs admitted but not yet finished
	draining  bool
	wg        sync.WaitGroup
}

// Start builds the service, mounts the job routes on the shared debug
// mux, and binds the listener synchronously. When Options.CacheDir is
// set the result cache is tiered over a disk store opened (or resumed)
// there.
func Start(opts Options) (*Server, error) {
	prof := opts.Profile
	if prof.Name == "" {
		prof = printer.DimensionElite()
	}
	maxCompleted := opts.MaxCompleted
	if maxCompleted == 0 {
		maxCompleted = defaultMaxCompleted
	}
	rootCtx, cancel := context.WithCancel(context.Background())
	s := &Server{
		rootCtx:      rootCtx,
		cancelJobs:   cancel,
		jobTimeout:   opts.JobTimeout,
		manifestW:    opts.ManifestOut,
		maxQueue:     opts.MaxQueue,
		maxCompleted: maxCompleted,
		jobs:         map[string]*job{},
	}
	if opts.CacheDir != "" {
		store, err := diskstore.Open(opts.CacheDir, opts.DiskCacheBytes)
		if err != nil {
			cancel()
			return nil, err
		}
		s.disk = store
		s.svc = NewTieredService(opts.CacheBytes, prof, store)
	} else {
		s.svc = NewService(opts.CacheBytes, prof)
	}
	if opts.AccessLog != nil {
		s.accessLog = NewAccessLogger(opts.AccessLog)
	}
	mux := trace.NewDebugMux(obs.Default(), trace.Default())
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("POST /jobs/batch", s.handleBatch)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/stl", s.handleSTL)
	mux.HandleFunc("GET /jobs/{id}/manifest", s.handleManifest)
	mux.HandleFunc("POST /sanitize", s.handleSanitize)
	mux.HandleFunc("GET /sanitize/{id}/stl", s.handleSanitizeSTL)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	ds, err := trace.StartServer(opts.Addr, WithObservability(mux, "serve", s.accessLog))
	if err != nil {
		cancel()
		if s.disk != nil {
			s.disk.Close()
		}
		return nil, err
	}
	s.http = ds
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.http.Addr() }

// URL returns the server's base URL.
func (s *Server) URL() string { return s.http.URL() }

// Service exposes the underlying job service (tests and benchmarks).
func (s *Server) Service() *Service { return s.svc }

// DiskStats snapshots the disk cache tier; ok is false when the server
// runs memory-only.
func (s *Server) DiskStats() (diskstore.Stats, bool) {
	if s.disk == nil {
		return diskstore.Stats{}, false
	}
	return s.disk.Stats(), true
}

// Close drops everything immediately: in-flight jobs are cancelled and
// connections closed. Use Shutdown for a graceful drain.
func (s *Server) Close() error {
	s.cancelJobs()
	err := s.http.Close()
	if s.disk != nil {
		if derr := s.disk.Close(); err == nil {
			err = derr
		}
	}
	return err
}

// Shutdown drains the server: new submissions are refused, in-flight
// jobs run to completion or until ctx expires (then they are
// cancelled), completed manifests are flushed to Options.ManifestOut,
// and finally the HTTP listener closes.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		// Out of patience: cancel the root context so the context-aware
		// pipeline stages abort, then wait for the workers to unwind.
		s.cancelJobs()
		<-drained
	}

	var flushErr error
	if s.manifestW != nil {
		flushErr = s.flushManifests()
	}
	if err := s.http.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		if s.disk != nil {
			s.disk.Close()
		}
		return err
	}
	s.cancelJobs()
	if err := s.accessLog.Close(); err != nil && flushErr == nil {
		flushErr = err
	}
	if s.disk != nil {
		// Compacts the atime journal so the next boot restores recency.
		if err := s.disk.Close(); err != nil && flushErr == nil {
			flushErr = err
		}
	}
	return flushErr
}

// flushManifests writes one NDJSON provenance line per completed job,
// in submission order.
func (s *Server) flushManifests() error {
	s.mu.Lock()
	done := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		select {
		case <-j.done:
			if j.err == nil {
				done = append(done, j)
			}
		default:
		}
	}
	s.mu.Unlock()
	sort.Slice(done, func(a, b int) bool { return done[a].created.Before(done[b].created) })
	bw := bufio.NewWriter(s.manifestW)
	for _, j := range done {
		bw.Write(j.result.Manifest)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// submit registers (or joins) the job for a normalized request. The
// bool reports whether this call started a new run. ctx supplies the
// trace identity a fresh run inherits.
func (s *Server) submit(ctx context.Context, norm Request) (*job, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	jobs, started, err := s.submitLocked(ctx, []Request{norm})
	if err != nil {
		return nil, false, err
	}
	return jobs[0], started, nil
}

// submitLocked atomically admits a set of normalized requests: each
// either joins an in-flight run (always admitted — it adds no load) or
// starts a new one, counted against the admission bound. Admission is
// all-or-nothing: if starting the new runs would push the in-flight
// queue past maxQueue, nothing is started and the whole set is shed.
// The bool reports whether any new run started.
func (s *Server) submitLocked(ctx context.Context, norms []Request) ([]*job, bool, error) {
	if s.draining {
		return nil, false, errDraining
	}
	jobs := make([]*job, len(norms))
	var fresh []*job
	batch := map[string]*job{} // dedupe identical requests within one call
	for i, norm := range norms {
		id := string(norm.CacheKey())
		if j, ok := batch[id]; ok {
			jobs[i] = j
			continue
		}
		if j, ok := s.jobs[id]; ok {
			select {
			case <-j.done:
				// Finished: fall through and re-run. The cache makes the
				// re-run a hit, so this only refreshes the job entry.
			default:
				jobs[i] = j // join the in-flight run
				batch[id] = j
				continue
			}
		}
		j := &job{
			id: id, req: norm, done: make(chan struct{}), created: time.Now(),
			traceID:    trace.TraceIDFrom(ctx),
			parentSpan: trace.ContextSpanID(ctx),
			reqID:      trace.RequestIDFrom(ctx),
		}
		jobs[i] = j
		batch[id] = j
		fresh = append(fresh, j)
	}
	if len(fresh) == 0 {
		return jobs, false, nil
	}
	if s.maxQueue > 0 && s.inflight+len(fresh) > s.maxQueue {
		mShed.Inc()
		return nil, false, errOverloaded
	}
	for _, j := range fresh {
		s.jobs[j.id] = j
		s.inflight++
		s.wg.Add(1)
		go s.runJob(j)
	}
	return jobs, true, nil
}

var (
	errDraining   = errors.New("serve: draining, not accepting jobs")
	errOverloaded = errors.New("serve: admission queue full, retry later")
)

// runJob executes one job under the root context and the per-job
// deadline, then publishes the result and retires the job into the
// bounded completed registry. The submitting request's trace identity
// is re-adopted here — the job outlives its HTTP request, so the
// pipeline's run/key/stage spans still descend from the caller's span
// (the router's proxy span in a cluster) in a merged trace.
func (s *Server) runJob(j *job) {
	defer s.wg.Done()
	ctx := s.rootCtx
	if j.traceID != "" {
		ctx = trace.WithRemoteParent(ctx, trace.TraceContext{TraceID: j.traceID, Parent: j.parentSpan})
	}
	if j.reqID != "" {
		ctx = trace.WithRequestID(ctx, j.reqID)
	}
	ctx, span := trace.StartSpan(ctx, "serve", "job", trace.A("key", j.id))
	defer span.End()
	if t := s.effectiveTimeout(j.req); t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	res, err := s.svc.Do(ctx, j.req)
	if res != nil {
		span.SetArg("outcome", res.Outcome.String())
	}
	// End before publishing: a waiter unblocked by close(j.done) must
	// find the job span already recorded.
	span.End()
	s.mu.Lock()
	j.result, j.err = res, err
	s.inflight--
	s.completed = append(s.completed, j)
	s.pruneCompletedLocked()
	s.mu.Unlock()
	close(j.done)
}

// pruneCompletedLocked bounds the finished-job registry: the oldest
// completed jobs past maxCompleted leave the id map, so a long-running
// server's memory stays proportional to the retention cap instead of
// the total number of distinct requests it has ever served. A pruned
// id simply 404s; re-submitting it is a result-cache hit.
func (s *Server) pruneCompletedLocked() {
	if s.maxCompleted <= 0 {
		return
	}
	for len(s.completed) > s.maxCompleted {
		old := s.completed[0]
		s.completed[0] = nil // release the *job promptly
		s.completed = s.completed[1:]
		// A re-submission may have replaced the map entry with a newer
		// run of the same id; only evict the entry this job owns.
		if cur, ok := s.jobs[old.id]; ok && cur == old {
			delete(s.jobs, old.id)
		}
	}
	// Re-slicing walks the backing array forward; copy back once the
	// dead prefix dominates so the array does not grow without bound.
	if cap(s.completed) > 2*len(s.completed) && cap(s.completed) > 64 {
		s.completed = append([]*job(nil), s.completed...)
	}
}

// effectiveTimeout resolves a job's deadline: the request's timeout_ms
// when set, capped by the server default.
func (s *Server) effectiveTimeout(req Request) time.Duration {
	t := s.jobTimeout
	if req.TimeoutMS > 0 {
		rt := time.Duration(req.TimeoutMS) * time.Millisecond
		if t <= 0 || rt < t {
			t = rt
		}
	}
	return t
}

// lookup returns the job entry for an id.
func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// status snapshots a job into its wire form.
func (s *Server) status(j *job) jobStatus {
	st := jobStatus{ID: j.id, State: string(stateRunning)}
	select {
	case <-j.done:
	default:
		return st
	}
	s.mu.Lock()
	res, err := j.result, j.err
	s.mu.Unlock()
	if err != nil {
		st.State = string(stateFailed)
		st.Error = err.Error()
		return st
	}
	st.State = string(stateDone)
	st.Outcome = res.Outcome.String()
	st.Grade = res.Grade
	st.STLSHA256 = res.STLSHA256
	st.STLBytes = len(res.STL)
	st.STLURL = "/jobs/" + j.id + "/stl"
	st.Manifest = "/jobs/" + j.id + "/manifest"
	return st
}

// annotateJobOutcome records a finished job's cache outcome on the
// request's access-log entry.
func (s *Server) annotateJobOutcome(ctx context.Context, j *job) {
	s.mu.Lock()
	res := j.result
	s.mu.Unlock()
	if res != nil {
		AnnotateOutcome(ctx, res.Outcome.String())
	}
}

// annotateBatchItem records one batch item's cache outcome as a
// per-item access-log line (request ID "<batch id>#<seq>"); a failed
// item logs "failed" so the batch's shape is still reconstructible from
// the log alone.
func (s *Server) annotateBatchItem(ctx context.Context, j *job) {
	s.mu.Lock()
	res, err := j.result, j.err
	s.mu.Unlock()
	switch {
	case err != nil:
		AnnotateBatchItem(ctx, "failed")
	case res != nil:
		AnnotateBatchItem(ctx, res.Outcome.String())
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// parseWait interprets the ?wait query parameter with strconv.ParseBool
// semantics: absent means async, "1"/"true"/... block, "0"/"false"/...
// are explicitly async, anything else is a client error. (A previous
// version treated any non-empty value as true, so ?wait=0 blocked.)
func parseWait(r *http.Request) (bool, error) {
	raw := r.URL.Query().Get("wait")
	if raw == "" {
		return false, nil
	}
	wait, err := strconv.ParseBool(raw)
	if err != nil {
		return false, fmt.Errorf("serve: wait parameter %q is not a boolean", raw)
	}
	return wait, nil
}

// writeSubmitError maps a submission failure onto its status code:
// draining → 503, queue full → 429 with a Retry-After hint.
func writeSubmitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errDraining):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, errOverloaded):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		writeError(w, http.StatusTooManyRequests, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

// handleSubmit accepts a job request. By default it returns 202 with
// the job's id immediately; ?wait=1 (or any ParseBool truth) blocks
// until the job finishes and returns the final status.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	wait, err := parseWait(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: decoding request: %w", err))
		return
	}
	norm, err := req.Normalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j, _, err := s.submit(r.Context(), norm)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	if !wait {
		writeJSON(w, http.StatusAccepted, s.status(j))
		return
	}
	select {
	case <-j.done:
	case <-r.Context().Done():
		writeError(w, http.StatusRequestTimeout, r.Context().Err())
		return
	}
	s.annotateJobOutcome(r.Context(), j)
	st := s.status(j)
	if st.State == string(stateFailed) {
		writeJSON(w, http.StatusInternalServerError, st)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// batchRequest is the body of POST /jobs/batch: a set of job requests
// admitted atomically — a whole quality-matrix sweep in one round trip.
type batchRequest struct {
	Jobs []Request `json:"jobs"`
}

// batchResponse answers a batch with one status per submitted job, in
// submission order.
type batchResponse struct {
	Results []jobStatus `json:"results"`
}

// handleBatch accepts a set of jobs in one request, fans them out on
// the worker pool (identical entries coalesce onto one run), waits for
// all of them, and returns per-item statuses in submission order.
// Admission is atomic: either every new run fits under the queue bound
// or the whole batch is shed with 429 + Retry-After, leaving in-flight
// jobs untouched.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	var batch batchRequest
	if err := dec.Decode(&batch); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: decoding batch: %w", err))
		return
	}
	if len(batch.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("serve: empty batch"))
		return
	}
	if len(batch.Jobs) > maxBatchJobs {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("serve: batch of %d jobs exceeds the limit of %d", len(batch.Jobs), maxBatchJobs))
		return
	}
	norms := make([]Request, len(batch.Jobs))
	for i, req := range batch.Jobs {
		norm, err := req.Normalize()
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("serve: batch job %d: %w", i, err))
			return
		}
		norms[i] = norm
	}
	mBatches.Inc()
	mBatchJobs.Add(int64(len(norms)))

	s.mu.Lock()
	jobs, _, err := s.submitLocked(r.Context(), norms)
	s.mu.Unlock()
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	resp := batchResponse{Results: make([]jobStatus, len(jobs))}
	for i, j := range jobs {
		select {
		case <-j.done:
		case <-r.Context().Done():
			writeError(w, http.StatusRequestTimeout, r.Context().Err())
			return
		}
		s.annotateBatchItem(r.Context(), j)
		resp.Results[i] = s.status(j)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("serve: unknown job"))
		return
	}
	writeJSON(w, http.StatusOK, s.status(j))
}

// artifact fetches a finished job's result, translating lifecycle into
// status codes: 404 unknown, 409 still running, 500 failed.
func (s *Server) artifact(w http.ResponseWriter, r *http.Request) (*Result, bool) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("serve: unknown job"))
		return nil, false
	}
	select {
	case <-j.done:
	default:
		writeError(w, http.StatusConflict, errors.New("serve: job still running"))
		return nil, false
	}
	s.mu.Lock()
	res, err := j.result, j.err
	s.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return nil, false
	}
	AnnotateOutcome(r.Context(), res.Outcome.String())
	return res, true
}

func (s *Server) handleSTL(w http.ResponseWriter, r *http.Request) {
	res, ok := s.artifact(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="`+res.Request.Part+`.stl"`)
	w.Header().Set("X-Stl-Sha256", res.STLSHA256)
	w.Write(res.STL)
}

func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	res, ok := s.artifact(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(res.Manifest)
	w.Write([]byte("\n"))
}

// handleHealth reports liveness for load balancers. A draining server
// answers 503 so traffic is routed away while in-flight jobs finish —
// a 200 here once kept balancers pointed at shutting-down instances.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	inflight := s.inflight
	s.mu.Unlock()
	body := map[string]any{
		"status":   map[bool]string{false: "ok", true: "draining"}[draining],
		"inflight": inflight,
		"cache":    s.svc.CacheStats(),
	}
	if st, ok := s.DiskStats(); ok {
		body["disk"] = st
	}
	code := http.StatusOK
	if draining {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}
