package serve

import (
	"encoding/json"
	"fmt"

	"obfuscade/internal/cache"
	"obfuscade/internal/core"
	"obfuscade/internal/mech"
	"obfuscade/internal/tessellate"
)

// Request is one obfuscation job submission. The zero value of every
// field is a valid default, so `{}` is a complete request (coarse bar,
// flat orientation, seed 0, no simulation).
type Request struct {
	// Part names the protected design: bar, bar-sphere, double-bar or
	// prism (see core.BuildProtected). Default bar.
	Part string `json:"part,omitempty"`
	// Resolution is the STL export preset: coarse, fine or custom.
	// Default coarse.
	Resolution string `json:"resolution,omitempty"`
	// Orientation is the print orientation: x-y or x-z. Default x-y.
	Orientation string `json:"orientation,omitempty"`
	// RestoreSphere applies the secret sphere-restore CAD operation.
	RestoreSphere bool `json:"restore_sphere,omitempty"`
	// Seed is the process noise seed stamped into the provenance.
	Seed int64 `json:"seed,omitempty"`
	// Simulate runs the G-code simulator and reports print time.
	Simulate bool `json:"simulate,omitempty"`
	// TimeoutMS bounds this job's pipeline wall time. Zero uses the
	// server default. Deliberately excluded from the cache key: a
	// deadline changes when a job fails, never what it produces.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// parts is the serving vocabulary of core.BuildProtected.
var parts = map[string]bool{"bar": true, "bar-sphere": true, "double-bar": true, "prism": true}

// Normalize fills defaults and validates the request, returning the
// canonical form used for cache addressing. Two requests that normalize
// equal produce byte-identical artifacts.
func (r Request) Normalize() (Request, error) {
	if r.Part == "" {
		r.Part = "bar"
	}
	if !parts[r.Part] {
		return r, fmt.Errorf("serve: unknown part %q (want bar, bar-sphere, double-bar or prism)", r.Part)
	}
	if r.Resolution == "" {
		r.Resolution = "coarse"
	}
	res, err := tessellate.ByName(r.Resolution)
	if err != nil {
		return r, fmt.Errorf("serve: %w", err)
	}
	r.Resolution = res.Name
	switch r.Orientation {
	case "":
		r.Orientation = mech.XY.String()
	case mech.XY.String(), mech.XZ.String():
	default:
		return r, fmt.Errorf("serve: unknown orientation %q (want %s or %s)",
			r.Orientation, mech.XY, mech.XZ)
	}
	if r.TimeoutMS < 0 {
		return r, fmt.Errorf("serve: negative timeout_ms %d", r.TimeoutMS)
	}
	return r, nil
}

// spec converts a normalized request into the job it describes.
func (r Request) spec() (core.JobSpec, error) {
	res, err := tessellate.ByName(r.Resolution)
	if err != nil {
		return core.JobSpec{}, err
	}
	o := mech.XY
	if r.Orientation == mech.XZ.String() {
		o = mech.XZ
	}
	return core.JobSpec{
		Part:     r.Part,
		Key:      core.Key{Resolution: res, Orientation: o, RestoreSphere: r.RestoreSphere},
		Seed:     r.Seed,
		Simulate: r.Simulate,
	}, nil
}

// canonicalRequest is the cache-key encoding of a normalized request:
// the fields that determine output bytes, plus the pipeline version so
// a deploy that changes output invalidates older cached results. Field
// order is fixed; encoding/json preserves struct order, so the bytes
// are stable across runs and builds.
type canonicalRequest struct {
	Version       string `json:"version"`
	Part          string `json:"part"`
	Resolution    string `json:"resolution"`
	Orientation   string `json:"orientation"`
	RestoreSphere bool   `json:"restore_sphere"`
	Seed          int64  `json:"seed"`
	Simulate      bool   `json:"simulate"`
}

// CacheKey content-addresses a normalized request. TimeoutMS is
// excluded (it cannot change the artifact), and core.PipelineVersion is
// included (a pipeline change must miss).
func (r Request) CacheKey() cache.Key {
	data, err := json.Marshal(canonicalRequest{
		Version:       core.PipelineVersion,
		Part:          r.Part,
		Resolution:    r.Resolution,
		Orientation:   r.Orientation,
		RestoreSphere: r.RestoreSphere,
		Seed:          r.Seed,
		Simulate:      r.Simulate,
	})
	if err != nil {
		// Marshalling a flat struct of strings/ints cannot fail.
		panic(err)
	}
	return cache.KeyOf(data)
}
