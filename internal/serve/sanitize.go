package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"

	"obfuscade/internal/cache"
	"obfuscade/internal/obs"
	"obfuscade/internal/stego"
	"obfuscade/internal/trace"
)

// MaxSanitizeBytes bounds a POST /sanitize body. Unlike job
// submissions, sanitize requests carry real geometry; 8 MiB covers
// ~170k binary-STL facets.
const MaxSanitizeBytes = 8 << 20

var (
	stSanitize   = obs.Stage("serve.sanitize")
	mSanRequests = obs.Default().Counter("serve.sanitize.requests")
	mSanDone     = obs.Default().Counter("serve.sanitize.completed")
	mSanFailed   = obs.Default().Counter("serve.sanitize.failed")
	mSanFlagged  = obs.Default().Counter("serve.sanitize.flagged")
)

// sanitizedResult is the immutable artifact stored per sanitize key:
// the canonical STL bytes, the detection report (JSON), and the output
// digest.
type sanitizedResult struct {
	stl    []byte
	report []byte
	sha    string
}

// SizeBytes implements cache.Value.
func (r *sanitizedResult) SizeBytes() int64 {
	return int64(len(r.stl) + len(r.report) + len(r.sha))
}

// SanitizeKey content-addresses a sanitize request: the raw body plus
// the quantum plus the sanitizer version, so a behaviour change
// invalidates cached artifacts just like PipelineVersion does for jobs.
// The router uses the same key to place the request on the shard that
// will cache it.
func SanitizeKey(body []byte, quantum float64) cache.Key {
	canonical := make([]byte, 0, len(body)+64)
	canonical = append(canonical, "sanitize\x00"...)
	canonical = append(canonical, stego.Version...)
	canonical = append(canonical, 0)
	canonical = strconv.AppendFloat(canonical, quantum, 'x', -1, 64)
	canonical = append(canonical, 0)
	canonical = append(canonical, body...)
	return cache.KeyOf(canonical)
}

// ParseSanitizeQuantum reads the optional ?quantum query parameter
// (coordinate grid pitch in model units); absent means
// stego.DefaultQuantum.
func ParseSanitizeQuantum(r *http.Request) (float64, error) {
	raw := r.URL.Query().Get("quantum")
	if raw == "" {
		return stego.DefaultQuantum, nil
	}
	q, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("serve: quantum parameter %q is not a number", raw)
	}
	if q <= 0 || math.IsNaN(q) || math.IsInf(q, 0) {
		return 0, fmt.Errorf("serve: quantum must be a positive finite number, got %q", raw)
	}
	return q, nil
}

// admitSanitize counts a sanitize run against the same admission bound
// as jobs. It is called inside the cache compute function, so hits,
// disk hits and coalesced joins are never shed — like job joins, they
// add no compute load.
func (s *Server) admitSanitize() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return errDraining
	}
	if s.maxQueue > 0 && s.inflight+1 > s.maxQueue {
		mShed.Inc()
		return errOverloaded
	}
	s.inflight++
	return nil
}

func (s *Server) releaseSanitize() {
	s.mu.Lock()
	s.inflight--
	s.mu.Unlock()
}

// sanitizeStatus is the JSON POST /sanitize returns.
type sanitizeStatus struct {
	ID        string          `json:"id"`
	Outcome   string          `json:"outcome"`
	STLSHA256 string          `json:"stl_sha256"`
	STLBytes  int             `json:"stl_bytes"`
	STLURL    string          `json:"stl_url"`
	Report    json.RawMessage `json:"report"`
}

// handleSanitize accepts a raw STL body, destroys its stego channels
// (canonical facet sort + coordinate re-quantization), and returns the
// detection report plus a handle to the sanitized artifact. Results are
// content-addressed in the same two-tier cache as jobs: a repeated
// upload is a hit (disk_hit across restarts), concurrent identical
// uploads coalesce onto one run, and only the run that actually
// sanitizes counts against the admission queue.
func (s *Server) handleSanitize(w http.ResponseWriter, r *http.Request) {
	quantum, err := ParseSanitizeQuantum(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxSanitizeBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("serve: sanitize body exceeds %d bytes", MaxSanitizeBytes))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: reading sanitize body: %w", err))
		return
	}
	if len(body) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("serve: empty sanitize body"))
		return
	}
	mSanRequests.Inc()
	key := SanitizeKey(body, quantum)
	ctx, span := trace.StartSpan(r.Context(), "serve", "sanitize", trace.A("key", string(key)))
	defer span.End()
	v, out, err := s.svc.cache.GetOrCompute(ctx, key, func(context.Context) (cache.Value, error) {
		if err := s.admitSanitize(); err != nil {
			return nil, err
		}
		defer s.releaseSanitize()
		return s.runSanitize(body, quantum)
	})
	if err != nil {
		if errors.Is(err, errDraining) || errors.Is(err, errOverloaded) {
			writeSubmitError(w, err)
			return
		}
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	res := v.(*sanitizedResult)
	span.SetArg("outcome", out.String())
	AnnotateOutcome(r.Context(), out.String())
	writeJSON(w, http.StatusOK, sanitizeStatus{
		ID:        string(key),
		Outcome:   out.String(),
		STLSHA256: res.sha,
		STLBytes:  len(res.stl),
		STLURL:    "/sanitize/" + string(key) + "/stl",
		Report:    res.report,
	})
}

// runSanitize executes one sanitize under the stage timer and freezes
// the outcome into an immutable cache value.
func (s *Server) runSanitize(body []byte, quantum float64) (cache.Value, error) {
	t := stSanitize.Start()
	clean, rep, err := stego.SanitizeSTL(body, stego.Options{Quantum: quantum})
	t.EndErr(err)
	if err != nil {
		mSanFailed.Inc()
		return nil, fmt.Errorf("serve: sanitize: %w", err)
	}
	report, err := json.Marshal(rep)
	if err != nil {
		mSanFailed.Inc()
		return nil, fmt.Errorf("serve: encoding sanitize report: %w", err)
	}
	if rep.Before.Suspicious() {
		mSanFlagged.Inc()
	}
	mSanDone.Inc()
	sum := sha256.Sum256(clean)
	return &sanitizedResult{stl: clean, report: report, sha: hex.EncodeToString(sum[:])}, nil
}

var errUnknownSanitize = errors.New("serve: unknown sanitize artifact (re-POST the file)")

// handleSanitizeSTL serves a sanitized artifact by its content address.
// The read goes through the cache (not just memory) so a restarted
// server still answers from the disk tier; an address it has never
// computed is a 404.
func (s *Server) handleSanitizeSTL(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, out, err := s.svc.cache.GetOrCompute(r.Context(), cache.Key(id), func(context.Context) (cache.Value, error) {
		return nil, errUnknownSanitize
	})
	if err != nil {
		writeError(w, http.StatusNotFound, errUnknownSanitize)
		return
	}
	res, ok := v.(*sanitizedResult)
	if !ok {
		writeError(w, http.StatusNotFound, errUnknownSanitize)
		return
	}
	AnnotateOutcome(r.Context(), out.String())
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="sanitized.stl"`)
	w.Header().Set("X-Stl-Sha256", res.sha)
	w.Write(res.stl)
}
