package serve

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"obfuscade/internal/trace"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// fixedClock hands out timestamps advancing a fixed step per call, so
// durations and log timestamps are deterministic for the golden file.
type fixedClock struct {
	t    time.Time
	step time.Duration
}

func (c *fixedClock) now() time.Time {
	c.t = c.t.Add(c.step)
	return c.t
}

// TestAccessLogGolden pins the NDJSON access-log format byte-for-byte:
// field set, field order, timestamp format and annotation plumbing. A
// drifting format silently breaks downstream log pipelines, so changes
// must be deliberate (-update-golden).
func TestAccessLogGolden(t *testing.T) {
	var buf bytes.Buffer
	logger := NewAccessLogger(&buf)
	clock := &fixedClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC), step: 5 * time.Millisecond}
	logger.now = clock.now

	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		AnnotateOutcome(r.Context(), "miss")
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"id":"k1"}`))
	})
	mux.HandleFunc("GET /jobs/k1/stl", func(w http.ResponseWriter, r *http.Request) {
		AnnotateShard(r.Context(), "127.0.0.1:7001")
		AnnotateOutcome(r.Context(), "hit")
		AnnotateHedge(r.Context(), true, true)
		w.Write([]byte("solid"))
	})
	mux.HandleFunc("POST /shed", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, errOverloaded)
	})
	mux.HandleFunc("POST /jobs/batch", func(w http.ResponseWriter, r *http.Request) {
		AnnotateBatchItem(r.Context(), "miss")
		AnnotateBatchItem(r.Context(), "hit")
		w.Write([]byte(`{"results":[]}`))
	})
	h := WithObservability(mux, "serve", logger)

	type call struct {
		method, path, reqID, traceHdr string
		extraLines                    int // per-item batch lines after the main entry
	}
	calls := []call{
		{"POST", "/jobs", "req-client-1", "4bf92f3577b34da6-7", 0},
		{"GET", "/jobs/k1/stl", "req-client-2", "4bf92f3577b34da6-7", 0},
		{"POST", "/shed", "req-client-3", "", 0},
		{"POST", "/jobs/batch", "req-client-4", "4bf92f3577b34da6-7", 2},
	}
	for _, c := range calls {
		r := httptest.NewRequest(c.method, c.path, nil)
		r.Header.Set(trace.HeaderRequestID, c.reqID)
		if c.traceHdr != "" {
			r.Header.Set(trace.HeaderTrace, c.traceHdr)
		}
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		if got := w.Header().Get(trace.HeaderRequestID); got != c.reqID {
			t.Fatalf("%s %s echoed request id %q, want %q", c.method, c.path, got, c.reqID)
		}
	}

	// The third call sends no trace header, so its trace ID is minted at
	// random; normalize it for the golden comparison after checking shape.
	wantLines := 0
	for _, c := range calls {
		wantLines += 1 + c.extraLines
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != wantLines {
		t.Fatalf("logged %d lines, want %d", len(lines), wantLines)
	}
	// The batch request logs one sequenced line per item after its own.
	for i, wantID := range []string{"req-client-4", "req-client-4#0", "req-client-4#1"} {
		var e AccessEntry
		if err := json.Unmarshal([]byte(lines[3+i]), &e); err != nil {
			t.Fatal(err)
		}
		if e.RequestID != wantID {
			t.Fatalf("batch line %d request id %q, want %q", i, e.RequestID, wantID)
		}
	}
	var shed AccessEntry
	if err := json.Unmarshal([]byte(lines[2]), &shed); err != nil {
		t.Fatal(err)
	}
	if len(shed.Trace) != 16 {
		t.Fatalf("shed entry trace %q is not a minted 16-hex id", shed.Trace)
	}
	got := strings.ReplaceAll(buf.String(), shed.Trace, "MINTED")

	golden := filepath.Join("testdata", "access_log.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update-golden to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("access log drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestObservabilityGeneratesRequestID pins the no-client-ID path: the
// middleware mints an ID, echoes it, and logs the same value.
func TestObservabilityGeneratesRequestID(t *testing.T) {
	var buf bytes.Buffer
	logger := NewAccessLogger(&buf)
	h := WithObservability(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if trace.RequestIDFrom(r.Context()) == "" {
			t.Error("handler context carries no request id")
		}
	}), "serve", logger)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/healthz", nil))
	echoed := w.Header().Get(trace.HeaderRequestID)
	if !strings.HasPrefix(echoed, "req-") {
		t.Fatalf("generated request id %q lacks req- prefix", echoed)
	}
	var e AccessEntry
	if err := json.Unmarshal(buf.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if e.RequestID != echoed {
		t.Fatalf("logged request id %q != echoed %q", e.RequestID, echoed)
	}
	if e.Status != http.StatusOK {
		t.Fatalf("status without explicit WriteHeader = %d, want 200", e.Status)
	}
}

// TestObservabilityAdoptsTraceHeader pins span adoption end to end on a
// live recorder: a span opened inside a handler parents under the
// header's span ID and carries its trace ID.
func TestObservabilityAdoptsTraceHeader(t *testing.T) {
	rec := trace.New(16)
	h := WithObservability(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, sp := rec.StartSpan(r.Context(), "serve", "probe")
		sp.End()
	}), "serve", nil)
	r := httptest.NewRequest("GET", "/x", nil)
	r.Header.Set(trace.HeaderTrace, "deadbeefdeadbeef-42")
	h.ServeHTTP(httptest.NewRecorder(), r)
	events := rec.Events()
	if len(events) != 1 {
		t.Fatalf("recorded %d events, want 1", len(events))
	}
	if events[0].Parent != 42 || events[0].Trace != "deadbeefdeadbeef" {
		t.Fatalf("span parent=%d trace=%q, want 42/deadbeefdeadbeef", events[0].Parent, events[0].Trace)
	}
}
