package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"obfuscade/internal/obs"
	"obfuscade/internal/trace"
)

var mAccessLogErrors = obs.Default().Counter("serve.accesslog.errors")

// AccessEntry is one NDJSON access-log line: the operational record of
// one HTTP request as either the router or a shard saw it. The request
// and trace IDs are the correlation keys — the same pair appears in the
// router's entry and the owning shard's entry for one routed request.
type AccessEntry struct {
	// TS is the request completion time (RFC3339, nanoseconds).
	TS string `json:"ts"`
	// Role is the process's role: "serve" (standalone shard) or "router".
	Role string `json:"role"`
	// Method and Path identify the route.
	Method string `json:"method"`
	Path   string `json:"path"`
	// Status is the response status code; Bytes the body bytes written.
	Status int   `json:"status"`
	Bytes  int64 `json:"bytes"`
	// DurMS is the handler wall time in milliseconds.
	DurMS float64 `json:"dur_ms"`
	// RequestID is the echoed (or generated) X-Request-ID.
	RequestID string `json:"request_id"`
	// Trace is the request's trace identifier.
	Trace string `json:"trace,omitempty"`
	// Shard is the owning shard a router proxied to (router role only).
	Shard string `json:"shard,omitempty"`
	// Outcome is the result-cache outcome when the handler resolved one:
	// "hit", "disk_hit" or "miss".
	Outcome string `json:"outcome,omitempty"`
	// HedgeFired/HedgeWon record hedged-read attribution (router role).
	HedgeFired bool `json:"hedge_fired,omitempty"`
	HedgeWon   bool `json:"hedge_won,omitempty"`
}

// AccessLogger serializes AccessEntry lines to one writer. Safe for
// concurrent use; every entry is flushed through to the underlying
// writer immediately, so an operator tailing the file (or the cluster
// smoke test) sees a request as soon as it completes — Close only adds
// the final flush on graceful drain.
type AccessLogger struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	now func() time.Time
}

// NewAccessLogger wraps w. The caller keeps ownership of any underlying
// file; Close flushes but does not close it.
func NewAccessLogger(w io.Writer) *AccessLogger {
	return &AccessLogger{bw: bufio.NewWriter(w), now: time.Now}
}

// Log writes one entry as an NDJSON line. Encoding failures only bump
// serve.accesslog.errors: the access log must never fail a request.
func (l *AccessLogger) Log(e AccessEntry) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	data, err := json.Marshal(e)
	if err != nil {
		mAccessLogErrors.Inc()
		return
	}
	l.bw.Write(data)
	l.bw.WriteByte('\n')
	if err := l.bw.Flush(); err != nil {
		mAccessLogErrors.Inc()
	}
}

// Close flushes buffered entries. Call it on graceful drain.
func (l *AccessLogger) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bw.Flush()
}

// accessAnnotations collects handler-supplied attribution (owning
// shard, cache outcome, hedge flags) for the middleware to fold into
// the request's log entry. It travels in the request context.
type accessAnnotations struct {
	mu         sync.Mutex
	shard      string
	outcome    string
	hedgeFired bool
	hedgeWon   bool
	items      []string // per-item outcomes of a batch request, in order
}

type annCtxKey struct{}

func annotationsFrom(ctx context.Context) *accessAnnotations {
	a, _ := ctx.Value(annCtxKey{}).(*accessAnnotations)
	return a
}

// AnnotateShard records the owning shard a request was proxied to.
func AnnotateShard(ctx context.Context, shard string) {
	if a := annotationsFrom(ctx); a != nil {
		a.mu.Lock()
		a.shard = shard
		a.mu.Unlock()
	}
}

// AnnotateOutcome records the result-cache outcome that served the
// request ("hit", "disk_hit", "miss").
func AnnotateOutcome(ctx context.Context, outcome string) {
	if a := annotationsFrom(ctx); a != nil {
		a.mu.Lock()
		a.outcome = outcome
		a.mu.Unlock()
	}
}

// AnnotateBatchItem appends one batch item's cache outcome. The
// middleware emits an extra access-log line per item with the request
// ID suffixed "#<seq>", so a batch of N jobs is N+1 lines: the batch
// entry plus one attributable line per item. (Before this existed,
// batch items raced to overwrite the single outcome field and the log
// recorded only whichever item annotated last.)
func AnnotateBatchItem(ctx context.Context, outcome string) {
	if a := annotationsFrom(ctx); a != nil {
		a.mu.Lock()
		a.items = append(a.items, outcome)
		a.mu.Unlock()
	}
}

// AnnotateHedge records hedged-read attribution: fired when the
// duplicate read launched, won when it answered first.
func AnnotateHedge(ctx context.Context, fired, won bool) {
	if a := annotationsFrom(ctx); a != nil {
		a.mu.Lock()
		a.hedgeFired = a.hedgeFired || fired
		a.hedgeWon = a.hedgeWon || won
		a.mu.Unlock()
	}
}

// statusWriter captures the status code and body byte count a handler
// produced.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards http.Flusher so streaming responses keep working
// through the wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// WithObservability wraps h with the cluster-observability middleware
// shared by router and shard mode:
//
//   - X-Request-ID is adopted from the client or generated, echoed on
//     every response — including 429 sheds, proxy errors and hedged
//     reads — and carried in the request context.
//   - X-Obfuscade-Trace, when present, is adopted so spans opened under
//     the request parent under the sender's span with its trace ID;
//     otherwise a fresh trace ID is minted for the request.
//   - When log is non-nil, one AccessEntry per request is written with
//     status, latency, byte count and any handler annotations.
//
// role names the process's side of the boundary in log entries.
func WithObservability(h http.Handler, role string, log *AccessLogger) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx := r.Context()

		reqID := r.Header.Get(trace.HeaderRequestID)
		if reqID == "" {
			reqID = trace.NewRequestID()
		}
		w.Header().Set(trace.HeaderRequestID, reqID)
		ctx = trace.WithRequestID(ctx, reqID)

		var traceID string
		if tc, ok := trace.ParseTraceHeader(r.Header.Get(trace.HeaderTrace)); ok {
			ctx = trace.WithRemoteParent(ctx, tc)
			traceID = tc.TraceID
		} else {
			ctx, traceID = trace.EnsureTraceID(ctx)
		}

		ann := &accessAnnotations{}
		ctx = context.WithValue(ctx, annCtxKey{}, ann)

		sw := &statusWriter{ResponseWriter: w}
		now := time.Now
		if log != nil {
			now = log.now
		}
		start := now()
		h.ServeHTTP(sw, r.WithContext(ctx))

		if log == nil {
			return
		}
		end := now()
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		ann.mu.Lock()
		entry := AccessEntry{
			TS:         end.UTC().Format(time.RFC3339Nano),
			Role:       role,
			Method:     r.Method,
			Path:       r.URL.Path,
			Status:     sw.status,
			Bytes:      sw.bytes,
			DurMS:      float64(end.Sub(start).Nanoseconds()) / 1e6,
			RequestID:  reqID,
			Trace:      traceID,
			Shard:      ann.shard,
			Outcome:    ann.outcome,
			HedgeFired: ann.hedgeFired,
			HedgeWon:   ann.hedgeWon,
		}
		items := append([]string(nil), ann.items...)
		ann.mu.Unlock()
		log.Log(entry)
		// One line per batch item, after the batch entry, sharing its
		// timing but carrying a sequenced request ID and the item's own
		// outcome. Bytes stay on the batch entry.
		for i, out := range items {
			item := entry
			item.RequestID = reqID + "#" + strconv.Itoa(i)
			item.Outcome = out
			item.Bytes = 0
			log.Log(item)
		}
	})
}
