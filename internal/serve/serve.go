// Package serve is the obfuscation job service: a long-running HTTP
// front end over the manufacture pipeline. Requests are normalized,
// content-addressed (SHA-256 of the canonical request plus the pipeline
// version) and served through a two-tier result cache — an in-memory
// LRU over an optional content-addressed disk store — with singleflight
// coalescing, so N concurrent identical submissions run the pipeline
// once, a repeated request returns byte-for-byte the artifact of the
// first, and a process restart on the same cache directory serves
// previously computed artifacts without re-running the pipeline. Jobs
// run under per-job deadlines that propagate through the context-aware
// pipeline stages; admission control sheds load (429 + Retry-After)
// once the in-flight queue passes its bound; shutdown drains in-flight
// jobs and flushes their provenance manifests.
package serve

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"

	"obfuscade/internal/cache"
	"obfuscade/internal/core"
	"obfuscade/internal/obs"
	"obfuscade/internal/printer"
)

var (
	stJob      = obs.Stage("serve.job")
	mRequests  = obs.Default().Counter("serve.requests")
	mCompleted = obs.Default().Counter("serve.jobs.completed")
	mFailed    = obs.Default().Counter("serve.jobs.failed")
	mShed      = obs.Default().Counter("serve.shed")
	mBatches   = obs.Default().Counter("serve.batch.requests")
	mBatchJobs = obs.Default().Counter("serve.batch.jobs")
	gInflight  = obs.Default().Gauge("serve.jobs.inflight")
)

// cachedResult is the immutable artifact stored per cache key.
type cachedResult struct {
	stl      []byte
	manifest []byte // provenance as a single JSON line, no trailing newline
	stlSHA   string
	grade    string
}

// SizeBytes implements cache.Value.
func (r *cachedResult) SizeBytes() int64 {
	return int64(len(r.stl) + len(r.manifest) + len(r.stlSHA) + len(r.grade))
}

// resultCodec round-trips cache values through the disk tier as
// length-prefixed binary frames. A job result (cachedResult) is four
// fields (stl, manifest, sha, grade), each a big-endian uint32 length
// followed by that many bytes — the original frame layout, kept
// byte-compatible so caches written before sanitize existed still
// decode. A sanitize result (sanitizedResult) is discriminated by a
// leading sanitizeFrameMark word followed by three fields (stl, report,
// sha). The disk store's own integrity digest covers the frame, so the
// codec only validates structure, not content.
type resultCodec struct{}

// sanitizeFrameMark discriminates sanitize frames from legacy job
// frames sharing one disk tier: a first uint32 of 0xFFFFFFFF can never
// be a legacy stl-field length (a 4 GiB artifact is orders of magnitude
// past every request bound), so old frames decode exactly as before.
const sanitizeFrameMark = 0xFFFFFFFF

func appendFields(buf []byte, fields [][]byte) []byte {
	for _, f := range fields {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(f)))
		buf = append(buf, f...)
	}
	return buf
}

// splitFields parses exactly n length-prefixed fields consuming all of
// data.
func splitFields(data []byte, n int) ([][]byte, error) {
	fields := make([][]byte, n)
	for i := range fields {
		if len(data) < 4 {
			return nil, errBadFrame
		}
		ln := binary.BigEndian.Uint32(data)
		data = data[4:]
		if uint64(len(data)) < uint64(ln) {
			return nil, errBadFrame
		}
		fields[i] = data[:ln:ln]
		data = data[ln:]
	}
	if len(data) != 0 {
		return nil, errBadFrame
	}
	return fields, nil
}

// Encode implements cache.Codec.
func (resultCodec) Encode(v cache.Value) ([]byte, error) {
	switch r := v.(type) {
	case *cachedResult:
		buf := make([]byte, 0, int(r.SizeBytes())+16)
		return appendFields(buf, [][]byte{r.stl, r.manifest, []byte(r.stlSHA), []byte(r.grade)}), nil
	case *sanitizedResult:
		buf := make([]byte, 0, int(r.SizeBytes())+16)
		buf = binary.BigEndian.AppendUint32(buf, sanitizeFrameMark)
		return appendFields(buf, [][]byte{r.stl, r.report, []byte(r.sha)}), nil
	default:
		return nil, fmt.Errorf("serve: encoding %T, want *cachedResult or *sanitizedResult", v)
	}
}

var errBadFrame = errors.New("serve: malformed cached result frame")

// Decode implements cache.Codec. A structurally invalid payload (for
// example one written by a build with a different layout) returns an
// error, which the cache treats as a miss and recomputes.
func (resultCodec) Decode(data []byte) (cache.Value, error) {
	if len(data) >= 4 && binary.BigEndian.Uint32(data) == sanitizeFrameMark {
		fields, err := splitFields(data[4:], 3)
		if err != nil {
			return nil, err
		}
		return &sanitizedResult{stl: fields[0], report: fields[1], sha: string(fields[2])}, nil
	}
	fields, err := splitFields(data, 4)
	if err != nil {
		return nil, err
	}
	return &cachedResult{
		stl:      fields[0],
		manifest: fields[1],
		stlSHA:   string(fields[2]),
		grade:    string(fields[3]),
	}, nil
}

// Result is the deliverable of one Service.Do call.
type Result struct {
	// Request is the normalized request that was served.
	Request Request
	// STL is the binary STL artifact.
	STL []byte
	// Manifest is the provenance record as a JSON line.
	Manifest []byte
	// STLSHA256 is the artifact digest (also inside the manifest).
	STLSHA256 string
	// Grade is the artifact's quality classification.
	Grade string
	// Outcome reports how the cache served this call.
	Outcome cache.Outcome
}

// Service runs obfuscation jobs through the content-addressed cache.
// It is the transport-free core of the HTTP server, usable directly
// from tests and benchmarks.
type Service struct {
	cache *cache.Cache
	prof  printer.Profile
}

// NewService builds a memory-only service with the given cache byte
// budget (<= 0 means unbounded) and printer profile.
func NewService(cacheBytes int64, prof printer.Profile) *Service {
	return &Service{cache: cache.New(cacheBytes), prof: prof}
}

// NewTieredService builds a service whose result cache is layered over
// a persistent backing store, so computed artifacts survive process
// restarts.
func NewTieredService(cacheBytes int64, prof printer.Profile, store cache.Store) *Service {
	return &Service{cache: cache.NewTiered(cacheBytes, store, resultCodec{}), prof: prof}
}

// CacheStats snapshots the service's cache counters.
func (s *Service) CacheStats() cache.Stats { return s.cache.Stats() }

// Do serves one request: normalize, address, and either return the
// cached artifact or run the pipeline (coalescing with concurrent
// identical requests). ctx bounds the pipeline run when this caller
// ends up the singleflight leader.
func (s *Service) Do(ctx context.Context, req Request) (*Result, error) {
	norm, err := req.Normalize()
	if err != nil {
		return nil, err
	}
	mRequests.Inc()
	key := norm.CacheKey()
	v, out, err := s.cache.GetOrCompute(ctx, key, func(ctx context.Context) (cache.Value, error) {
		return s.run(ctx, norm)
	})
	if err != nil {
		return nil, err
	}
	r := v.(*cachedResult)
	return &Result{
		Request:   norm,
		STL:       r.stl,
		Manifest:  r.manifest,
		STLSHA256: r.stlSHA,
		Grade:     r.grade,
		Outcome:   out,
	}, nil
}

// run executes the pipeline for a normalized request and freezes the
// outcome into an immutable cache value.
func (s *Service) run(ctx context.Context, norm Request) (cache.Value, error) {
	spec, err := norm.spec()
	if err != nil {
		return nil, err
	}
	gInflight.Add(1)
	t := stJob.Start()
	job, err := core.RunJob(ctx, spec, s.prof)
	t.EndErr(err)
	gInflight.Add(-1)
	if err != nil {
		mFailed.Inc()
		return nil, fmt.Errorf("serve: job %s: %w", norm.CacheKey(), err)
	}
	manifest, err := json.Marshal(job.Provenance)
	if err != nil {
		mFailed.Inc()
		return nil, fmt.Errorf("serve: encoding manifest: %w", err)
	}
	mCompleted.Inc()
	return &cachedResult{
		stl:      job.STL,
		manifest: manifest,
		stlSHA:   job.Provenance.STLSHA256,
		grade:    job.Provenance.Grade,
	}, nil
}
