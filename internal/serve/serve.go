// Package serve is the obfuscation job service: a long-running HTTP
// front end over the manufacture pipeline. Requests are normalized,
// content-addressed (SHA-256 of the canonical request plus the pipeline
// version) and served through an LRU result cache with singleflight
// coalescing, so N concurrent identical submissions run the pipeline
// once and a repeated request returns byte-for-byte the artifact of the
// first. Jobs run under per-job deadlines that propagate through the
// context-aware pipeline stages; shutdown drains in-flight jobs and
// flushes their provenance manifests.
package serve

import (
	"context"
	"encoding/json"
	"fmt"

	"obfuscade/internal/cache"
	"obfuscade/internal/core"
	"obfuscade/internal/obs"
	"obfuscade/internal/printer"
)

var (
	stJob      = obs.Stage("serve.job")
	mRequests  = obs.Default().Counter("serve.requests")
	mCompleted = obs.Default().Counter("serve.jobs.completed")
	mFailed    = obs.Default().Counter("serve.jobs.failed")
	gInflight  = obs.Default().Gauge("serve.jobs.inflight")
)

// cachedResult is the immutable artifact stored per cache key.
type cachedResult struct {
	stl      []byte
	manifest []byte // provenance as a single JSON line, no trailing newline
	stlSHA   string
	grade    string
}

// SizeBytes implements cache.Value.
func (r *cachedResult) SizeBytes() int64 {
	return int64(len(r.stl) + len(r.manifest) + len(r.stlSHA) + len(r.grade))
}

// Result is the deliverable of one Service.Do call.
type Result struct {
	// Request is the normalized request that was served.
	Request Request
	// STL is the binary STL artifact.
	STL []byte
	// Manifest is the provenance record as a JSON line.
	Manifest []byte
	// STLSHA256 is the artifact digest (also inside the manifest).
	STLSHA256 string
	// Grade is the artifact's quality classification.
	Grade string
	// Outcome reports how the cache served this call.
	Outcome cache.Outcome
}

// Service runs obfuscation jobs through the content-addressed cache.
// It is the transport-free core of the HTTP server, usable directly
// from tests and benchmarks.
type Service struct {
	cache *cache.Cache
	prof  printer.Profile
}

// NewService builds a service with the given cache byte budget
// (<= 0 means unbounded) and printer profile.
func NewService(cacheBytes int64, prof printer.Profile) *Service {
	return &Service{cache: cache.New(cacheBytes), prof: prof}
}

// CacheStats snapshots the service's cache counters.
func (s *Service) CacheStats() cache.Stats { return s.cache.Stats() }

// Do serves one request: normalize, address, and either return the
// cached artifact or run the pipeline (coalescing with concurrent
// identical requests). ctx bounds the pipeline run when this caller
// ends up the singleflight leader.
func (s *Service) Do(ctx context.Context, req Request) (*Result, error) {
	norm, err := req.Normalize()
	if err != nil {
		return nil, err
	}
	mRequests.Inc()
	key := norm.CacheKey()
	v, out, err := s.cache.GetOrCompute(ctx, key, func(ctx context.Context) (cache.Value, error) {
		return s.run(ctx, norm)
	})
	if err != nil {
		return nil, err
	}
	r := v.(*cachedResult)
	return &Result{
		Request:   norm,
		STL:       r.stl,
		Manifest:  r.manifest,
		STLSHA256: r.stlSHA,
		Grade:     r.grade,
		Outcome:   out,
	}, nil
}

// run executes the pipeline for a normalized request and freezes the
// outcome into an immutable cache value.
func (s *Service) run(ctx context.Context, norm Request) (cache.Value, error) {
	spec, err := norm.spec()
	if err != nil {
		return nil, err
	}
	gInflight.Add(1)
	t := stJob.Start()
	job, err := core.RunJob(ctx, spec, s.prof)
	t.EndErr(err)
	gInflight.Add(-1)
	if err != nil {
		mFailed.Inc()
		return nil, fmt.Errorf("serve: job %s: %w", norm.CacheKey(), err)
	}
	manifest, err := json.Marshal(job.Provenance)
	if err != nil {
		mFailed.Inc()
		return nil, fmt.Errorf("serve: encoding manifest: %w", err)
	}
	mCompleted.Inc()
	return &cachedResult{
		stl:      job.STL,
		manifest: manifest,
		stlSHA:   job.Provenance.STLSHA256,
		grade:    job.Provenance.Grade,
	}, nil
}
