package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"obfuscade/internal/geom"
	"obfuscade/internal/mesh"
	"obfuscade/internal/stego"
	"obfuscade/internal/stl"
)

// stegoSTL builds a binary STL carrying a payload in both stego
// channels — the attacker-side input POST /sanitize exists to clean.
func stegoSTL(t *testing.T, payload []byte) []byte {
	t.Helper()
	m := &mesh.Mesh{}
	for b := 0; b < 12; b++ {
		fb := float64(b)
		m.Shells = append(m.Shells, mesh.BoxShell(
			fmt.Sprintf("shell%d", b), "body",
			geom.V3(fb*7, fb*3.5, 0), geom.V3(fb*7+4+fb/8, fb*3.5+2.5, 1.5+fb/4)))
	}
	emb, err := stego.Embed(m, payload, stego.Options{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := stl.Marshal(emb, stl.Binary, "leaky")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func postSanitize(t *testing.T, url string, body []byte) (sanitizeStatus, *http.Response) {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st sanitizeStatus
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("POST %s: decoding reply: %v", url, err)
		}
	}
	return st, resp
}

func TestSanitizeEndToEnd(t *testing.T) {
	s := startTestServer(t, Options{})
	body := stegoSTL(t, []byte("stolen turbine blade profile"))

	st, resp := postSanitize(t, s.URL()+"/sanitize", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if st.Outcome != "miss" || st.ID == "" || st.STLSHA256 == "" || st.STLBytes == 0 {
		t.Fatalf("first sanitize: %+v", st)
	}
	var rep stego.SanitizeReport
	if err := json.Unmarshal(st.Report, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Before.Suspicious() {
		t.Fatalf("detector missed the embedding: %+v", rep.Before)
	}
	if rep.After.Suspicious() {
		t.Fatalf("output still suspicious: %+v", rep.After)
	}
	if rep.Version != stego.Version || rep.Quantum != stego.DefaultQuantum {
		t.Fatalf("report = %+v", rep)
	}

	// The artifact is served by its content address, digest intact.
	clean, resp2 := fetch(t, s.URL()+st.STLURL)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("artifact fetch: %d", resp2.StatusCode)
	}
	sum := sha256.Sum256(clean)
	if hex.EncodeToString(sum[:]) != st.STLSHA256 {
		t.Fatal("artifact digest mismatch")
	}
	if got := resp2.Header.Get("X-Stl-Sha256"); got != st.STLSHA256 {
		t.Fatalf("X-Stl-Sha256 = %q", got)
	}
	// No payload survives in the artifact.
	cleanMesh, err := stl.Unmarshal(clean)
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range []stego.Channel{stego.ChannelFacetOrder, stego.ChannelCoordLSB} {
		if got, err := stego.Extract(cleanMesh, ch, stego.Options{}); err == nil {
			t.Fatalf("%s: payload %q recovered from sanitized artifact", ch, got)
		}
	}

	// A repeated upload is a cache hit on the same address.
	st2, _ := postSanitize(t, s.URL()+"/sanitize", body)
	if st2.Outcome != "hit" || st2.ID != st.ID || st2.STLSHA256 != st.STLSHA256 {
		t.Fatalf("repeat sanitize: %+v", st2)
	}

	// Sanitizing the sanitized output is the identity (a distinct
	// address — the body differs — but byte-identical output).
	st3, _ := postSanitize(t, s.URL()+"/sanitize", clean)
	if st3.Outcome != "miss" || st3.ID == st.ID {
		t.Fatalf("re-sanitize: %+v", st3)
	}
	if st3.STLSHA256 != st.STLSHA256 {
		t.Fatal("sanitize is not idempotent through the service")
	}

	// An address the server never computed is a 404.
	if _, resp := fetch(t, s.URL()+"/sanitize/deadbeef/stl"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown artifact: %d", resp.StatusCode)
	}
	// A job artifact address is not a sanitize artifact.
	job, _ := post(t, s.URL()+"/jobs?wait=1", `{"seed": 31}`)
	if _, resp := fetch(t, s.URL()+"/sanitize/"+job.ID+"/stl"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("job address served as sanitize artifact: %d", resp.StatusCode)
	}
}

func TestSanitizeBadInput(t *testing.T) {
	s := startTestServer(t, Options{})
	cases := []struct {
		name string
		url  string
		body []byte
		want int
	}{
		{"empty", s.URL() + "/sanitize", nil, http.StatusBadRequest},
		{"garbage", s.URL() + "/sanitize", []byte("not an stl at all"), http.StatusUnprocessableEntity},
		{"bad quantum", s.URL() + "/sanitize?quantum=zero", []byte("x"), http.StatusBadRequest},
		{"negative quantum", s.URL() + "/sanitize?quantum=-1", []byte("x"), http.StatusBadRequest},
		{"oversize", s.URL() + "/sanitize", make([]byte, MaxSanitizeBytes+1), http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		_, resp := postSanitize(t, tc.url, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
	// Failures are never cached: the same garbage fails again, it does
	// not come back as a hit.
	_, resp := postSanitize(t, s.URL()+"/sanitize", []byte("not an stl at all"))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("repeated garbage: %d", resp.StatusCode)
	}
}

// Sanitize runs share the job admission bound, but only actual compute
// counts: a full queue sheds a fresh upload with 429, while a cached
// address keeps answering (a hit adds no load).
func TestSanitizeShedsUnderLoadServesHits(t *testing.T) {
	s := startTestServer(t, Options{MaxQueue: 1})
	body := stegoSTL(t, []byte("warm me"))
	if st, _ := postSanitize(t, s.URL()+"/sanitize", body); st.Outcome != "miss" {
		t.Fatalf("warmup: %+v", st)
	}

	// Occupy the single queue slot with a fake in-flight job.
	norm, err := Request{Seed: 901}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	j := &job{id: string(norm.CacheKey()), req: norm, done: make(chan struct{}), created: time.Now()}
	s.mu.Lock()
	s.jobs[j.id] = j
	s.inflight++
	s.mu.Unlock()

	fresh := stegoSTL(t, []byte("shed me"))
	_, resp := postSanitize(t, s.URL()+"/sanitize", fresh)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded sanitize: status %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed sanitize missing Retry-After")
	}
	// The warm address still answers while the queue is full.
	if st, _ := postSanitize(t, s.URL()+"/sanitize", body); st.Outcome != "hit" {
		t.Fatalf("hit under load: %+v", st)
	}

	// Drain the slot: the shed body is admitted now.
	s.mu.Lock()
	s.inflight--
	delete(s.jobs, j.id)
	s.mu.Unlock()
	if st, _ := postSanitize(t, s.URL()+"/sanitize", fresh); st.Outcome != "miss" {
		t.Fatalf("post-drain sanitize: %+v", st)
	}

	// A draining server refuses fresh sanitizes with 503.
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	_, resp = postSanitize(t, s.URL()+"/sanitize", stegoSTL(t, []byte("late")))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining sanitize: status %d", resp.StatusCode)
	}
}

// A restart on the same cache directory serves previously sanitized
// artifacts from the disk tier: the upload is a disk_hit and the
// artifact read survives the loss of process memory.
func TestSanitizeRestartWarmDiskHit(t *testing.T) {
	dir := t.TempDir()
	s1, err := Start(Options{Addr: "127.0.0.1:0", CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	body := stegoSTL(t, []byte("persist me"))
	st, _ := postSanitize(t, s1.URL()+"/sanitize", body)
	if st.Outcome != "miss" {
		t.Fatalf("first run: %+v", st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()

	s2 := startTestServer(t, Options{CacheDir: dir})
	st2, _ := postSanitize(t, s2.URL()+"/sanitize", body)
	if st2.Outcome != "disk_hit" || st2.ID != st.ID || st2.STLSHA256 != st.STLSHA256 {
		t.Fatalf("restart sanitize: %+v", st2)
	}
	clean, resp := fetch(t, s2.URL()+st2.STLURL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restart artifact fetch: %d", resp.StatusCode)
	}
	sum := sha256.Sum256(clean)
	if hex.EncodeToString(sum[:]) != st.STLSHA256 {
		t.Fatal("restart artifact digest mismatch")
	}
}

func TestSanitizeCodecRoundTrip(t *testing.T) {
	codec := resultCodec{}
	san := &sanitizedResult{stl: []byte("solid bytes"), report: []byte(`{"x":1}`), sha: "abc123"}
	frame, err := codec.Encode(san)
	if err != nil {
		t.Fatal(err)
	}
	v, err := codec.Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := v.(*sanitizedResult)
	if !ok {
		t.Fatalf("decoded %T", v)
	}
	if !bytes.Equal(got.stl, san.stl) || !bytes.Equal(got.report, san.report) || got.sha != san.sha {
		t.Fatalf("round trip: %+v", got)
	}

	// Legacy job frames still decode as job results — the sentinel can
	// never collide with a real stl length.
	jobFrame, err := codec.Encode(&cachedResult{stl: []byte("s"), manifest: []byte("m"), stlSHA: "h", grade: "good"})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := codec.Decode(jobFrame); err != nil {
		t.Fatal(err)
	} else if _, ok := v.(*cachedResult); !ok {
		t.Fatalf("legacy frame decoded as %T", v)
	}

	// Structural corruption fails loudly in both layouts.
	for name, data := range map[string][]byte{
		"truncated sanitize": frame[:len(frame)-1],
		"trailing sanitize":  append(append([]byte(nil), frame...), 0),
		"truncated job":      jobFrame[:len(jobFrame)-1],
		"empty sentinel":     {0xFF, 0xFF, 0xFF, 0xFF},
	} {
		if _, err := codec.Decode(data); err == nil {
			t.Errorf("%s: corrupt frame must error", name)
		}
	}
}

func TestSanitizeKeyStability(t *testing.T) {
	body := []byte("some stl bytes")
	k1 := SanitizeKey(body, stego.DefaultQuantum)
	if k2 := SanitizeKey(body, stego.DefaultQuantum); k2 != k1 {
		t.Fatal("key is not deterministic")
	}
	if k := SanitizeKey(body, stego.DefaultQuantum/2); k == k1 {
		t.Fatal("quantum does not reach the key")
	}
	if k := SanitizeKey([]byte("other stl bytes"), stego.DefaultQuantum); k == k1 {
		t.Fatal("body does not reach the key")
	}
}

func TestParseSanitizeQuantum(t *testing.T) {
	ok := func(raw string, want float64) {
		t.Helper()
		r, _ := http.NewRequest("POST", "/sanitize?"+raw, nil)
		got, err := ParseSanitizeQuantum(r)
		if err != nil || got != want {
			t.Fatalf("%q: %g, %v (want %g)", raw, got, err, want)
		}
	}
	ok("", stego.DefaultQuantum)
	ok("quantum=0.5", 0.5)
	for _, raw := range []string{"quantum=abc", "quantum=0", "quantum=-2", "quantum=NaN", "quantum=Inf"} {
		r, _ := http.NewRequest("POST", "/sanitize?"+raw, nil)
		if _, err := ParseSanitizeQuantum(r); err == nil {
			t.Errorf("%q: must error", raw)
		}
	}
}

// Sanitize requests appear in the access log with their cache outcome,
// like jobs.
func TestSanitizeAccessLogOutcome(t *testing.T) {
	var buf bytes.Buffer
	s := startTestServer(t, Options{AccessLog: &buf})
	body := stegoSTL(t, []byte("log me"))
	postSanitize(t, s.URL()+"/sanitize", body)
	postSanitize(t, s.URL()+"/sanitize", body)
	outcomes := []string{}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var e AccessEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatal(err)
		}
		if e.Path == "/sanitize" {
			outcomes = append(outcomes, e.Outcome)
		}
	}
	if len(outcomes) != 2 || outcomes[0] != "miss" || outcomes[1] != "hit" {
		t.Fatalf("sanitize outcomes in access log = %v", outcomes)
	}
}
