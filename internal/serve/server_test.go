package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"obfuscade/internal/trace"
)

func startTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	s, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// post submits a job body and decodes the status reply.
func post(t *testing.T, url, body string) (jobStatus, *http.Response) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("POST %s: decoding reply: %v", url, err)
	}
	return st, resp
}

func fetch(t *testing.T, url string) ([]byte, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body, resp
}

func TestServerEndToEnd(t *testing.T) {
	s := startTestServer(t, Options{})

	// First submission: a miss that runs the pipeline.
	first, resp := post(t, s.URL()+"/jobs?wait=1", `{"seed": 1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %+v", resp.StatusCode, first)
	}
	if first.State != "done" || first.Outcome != "miss" {
		t.Fatalf("first submission: %+v", first)
	}
	if first.STLSHA256 == "" || first.Grade == "" {
		t.Fatalf("missing artifact metadata: %+v", first)
	}

	// Identical submission: a hit with the identical digest.
	second, _ := post(t, s.URL()+"/jobs?wait=1", `{"seed": 1}`)
	if second.Outcome != "hit" {
		t.Fatalf("repeat submission outcome = %s, want hit", second.Outcome)
	}
	if second.ID != first.ID || second.STLSHA256 != first.STLSHA256 {
		t.Fatalf("repeat submission differs: %+v vs %+v", second, first)
	}

	// Distinct submission: a different job and a second miss.
	distinct, _ := post(t, s.URL()+"/jobs?wait=1", `{"seed": 2, "resolution": "fine"}`)
	if distinct.Outcome != "miss" || distinct.ID == first.ID {
		t.Fatalf("distinct submission: %+v", distinct)
	}

	// The STL artifact hashes to the reported digest.
	stlBytes, resp := fetch(t, s.URL()+first.STLURL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("STL fetch: %d", resp.StatusCode)
	}
	sum := sha256.Sum256(stlBytes)
	if got := hex.EncodeToString(sum[:]); got != first.STLSHA256 {
		t.Fatalf("served STL hashes to %s, reported %s", got, first.STLSHA256)
	}
	if h := resp.Header.Get("X-Stl-Sha256"); h != first.STLSHA256 {
		t.Fatalf("X-Stl-Sha256 = %s", h)
	}

	// The manifest is one provenance JSON line agreeing with the digest.
	manifest, _ := fetch(t, s.URL()+first.Manifest)
	var prov map[string]any
	if err := json.Unmarshal(manifest, &prov); err != nil {
		t.Fatalf("manifest: %v", err)
	}
	if prov["stl_sha256"] != first.STLSHA256 {
		t.Fatal("manifest digest disagrees with job status")
	}

	// Cache counters surface on /metrics for scrapers.
	metrics, _ := fetch(t, s.URL()+"/metrics")
	for _, name := range []string{"obfuscade_cache_hits_total", "obfuscade_cache_misses_total"} {
		if !strings.Contains(string(metrics), name) {
			t.Fatalf("/metrics missing %s", name)
		}
	}
	st := s.Service().CacheStats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("cache stats = %+v", st)
	}
}

func TestServerAsyncSubmitAndPoll(t *testing.T) {
	s := startTestServer(t, Options{})
	st, resp := post(t, s.URL()+"/jobs", `{"seed": 3}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit status %d", resp.StatusCode)
	}
	if st.ID == "" {
		t.Fatalf("no job id: %+v", st)
	}
	deadline := time.After(60 * time.Second)
	for st.State != "done" {
		select {
		case <-deadline:
			t.Fatalf("job never finished: %+v", st)
		case <-time.After(20 * time.Millisecond):
		}
		body, resp := fetch(t, s.URL()+"/jobs/"+st.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d", resp.StatusCode)
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == "failed" {
			t.Fatalf("job failed: %+v", st)
		}
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	s := startTestServer(t, Options{})
	for _, body := range []string{
		`{"part": "teapot"}`,
		`{"resolution": "ultra"}`,
		`{"orientation": "diagonal"}`,
		`{"unknown_field": 1}`,
		`{"timeout_ms": -5}`,
		`not json`,
	} {
		st, resp := post(t, s.URL()+"/jobs", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %s: status %d (%+v)", body, resp.StatusCode, st)
		}
	}
	if _, resp := fetch(t, s.URL()+"/jobs/no-such-job"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status %d", resp.StatusCode)
	}
}

// A job whose deadline expires fails with a deadline error, and the
// server keeps serving fresh jobs afterwards — a timeout must not
// poison the worker pool or the cache.
func TestServerJobDeadline(t *testing.T) {
	s := startTestServer(t, Options{})
	// A fine-resolution simulated job so the 1ms deadline reliably
	// expires before the pipeline can finish (a coarse job on a warm
	// machine can beat the timer and flake).
	st, resp := post(t, s.URL()+"/jobs?wait=1", `{"seed": 4, "timeout_ms": 1, "resolution": "fine", "simulate": true}`)
	if resp.StatusCode != http.StatusInternalServerError || st.State != "failed" {
		t.Fatalf("timed-out job: status %d %+v", resp.StatusCode, st)
	}
	if !strings.Contains(st.Error, context.DeadlineExceeded.Error()) {
		t.Fatalf("error %q does not mention the deadline", st.Error)
	}
	// Errors are not cached: the same request with a sane deadline runs
	// fresh and succeeds.
	ok, resp := post(t, s.URL()+"/jobs?wait=1", `{"seed": 4, "resolution": "fine", "simulate": true}`)
	if resp.StatusCode != http.StatusOK || ok.State != "done" || ok.Outcome != "miss" {
		t.Fatalf("post-timeout job: status %d %+v", resp.StatusCode, ok)
	}
}

// Shutdown refuses new submissions, drains in-flight jobs, and flushes
// one NDJSON provenance line per completed job.
func TestServerGracefulShutdownFlushesManifests(t *testing.T) {
	var manifests bytes.Buffer
	s := startTestServer(t, Options{ManifestOut: &manifests})
	for seed := 1; seed <= 3; seed++ {
		st, resp := post(t, s.URL()+"/jobs?wait=1", fmt.Sprintf(`{"seed": %d}`, seed))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: status %d %+v", seed, resp.StatusCode, st)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	lines := strings.Split(strings.TrimRight(manifests.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("manifest lines = %d, want 3:\n%s", len(lines), manifests.String())
	}
	seeds := map[float64]bool{}
	for _, line := range lines {
		var prov map[string]any
		if err := json.Unmarshal([]byte(line), &prov); err != nil {
			t.Fatalf("manifest line %q: %v", line, err)
		}
		seeds[prov["seed"].(float64)] = true
	}
	if len(seeds) != 3 {
		t.Fatalf("flushed seeds = %v", seeds)
	}
	// The listener is closed: no new connection is accepted.
	if _, err := http.Get(s.URL() + "/healthz"); err == nil {
		t.Fatal("connection accepted after Shutdown")
	}
}

// A draining server refuses new submissions with 503.
func TestServerDrainingRefusesSubmissions(t *testing.T) {
	s := startTestServer(t, Options{})
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	norm, err := Request{}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.submit(context.Background(), norm); !errors.Is(err, errDraining) {
		t.Fatalf("submit while draining: %v", err)
	}
	st, resp := post(t, s.URL()+"/jobs", `{}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: status %d %+v", resp.StatusCode, st)
	}
}

// Concurrent identical submissions coalesce onto one job entry.
func TestServerCoalescesIdenticalSubmissions(t *testing.T) {
	s := startTestServer(t, Options{})
	const n = 8
	type out struct {
		st   jobStatus
		code int
	}
	results := make(chan out, n)
	for i := 0; i < n; i++ {
		go func() {
			resp, err := http.Post(s.URL()+"/jobs?wait=1", "application/json",
				strings.NewReader(`{"seed": 9}`))
			if err != nil {
				results <- out{code: -1}
				return
			}
			defer resp.Body.Close()
			var st jobStatus
			json.NewDecoder(resp.Body).Decode(&st)
			results <- out{st: st, code: resp.StatusCode}
		}()
	}
	ids := map[string]bool{}
	for i := 0; i < n; i++ {
		r := <-results
		if r.code != http.StatusOK || r.st.State != "done" {
			t.Fatalf("submission %d: code %d %+v", i, r.code, r.st)
		}
		ids[r.st.ID] = true
	}
	if len(ids) != 1 {
		t.Fatalf("identical submissions produced %d job ids", len(ids))
	}
	// All 8 submissions ran the pipeline at most once; every outcome
	// beyond the leader's is a hit or a coalesce, never a second miss.
	st := s.Service().CacheStats()
	if st.Misses != 1 {
		t.Fatalf("pipeline ran %d times for one unique request (stats %+v)", st.Misses, st)
	}
}

// ?wait follows strconv.ParseBool: absent and false values are async
// (202), truthy values block (200), garbage is a client error. A
// previous version treated any non-empty value as true, so ?wait=0
// blocked.
func TestWaitParameterSemantics(t *testing.T) {
	s := startTestServer(t, Options{})
	cases := []struct {
		query string
		code  int
	}{
		{"", http.StatusAccepted},
		{"?wait=0", http.StatusAccepted},
		{"?wait=false", http.StatusAccepted},
		{"?wait=1", http.StatusOK},
		{"?wait=true", http.StatusOK},
		{"?wait=banana", http.StatusBadRequest},
		{"?wait=yes", http.StatusBadRequest},
	}
	for _, tc := range cases {
		st, resp := post(t, s.URL()+"/jobs"+tc.query, `{"seed": 21}`)
		if resp.StatusCode != tc.code {
			t.Fatalf("wait query %q: status %d, want %d (%+v)", tc.query, resp.StatusCode, tc.code, st)
		}
		if tc.code == http.StatusOK && st.State != "done" {
			t.Fatalf("wait query %q: blocking submit returned state %s", tc.query, st.State)
		}
	}
}

// The finished-job registry is bounded: churning unique requests
// through a server prunes the oldest completed entries, the memory
// stays proportional to the cap, and a pruned id is just a 404 whose
// re-submission is a cache hit.
func TestJobRegistryBoundedUnderChurn(t *testing.T) {
	const cap = 4
	s := startTestServer(t, Options{MaxCompleted: cap})
	var firstID string
	for seed := 100; seed < 112; seed++ {
		st, resp := post(t, s.URL()+"/jobs?wait=1", fmt.Sprintf(`{"seed": %d}`, seed))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: status %d %+v", seed, resp.StatusCode, st)
		}
		if firstID == "" {
			firstID = st.ID
		}
	}
	s.mu.Lock()
	n := len(s.jobs)
	s.mu.Unlock()
	if n > cap {
		t.Fatalf("registry holds %d jobs after churn, cap is %d", n, cap)
	}
	// The oldest job was pruned: unknown id now, but its artifact
	// survives in the result cache so re-submission is an instant hit.
	if _, resp := fetch(t, s.URL()+"/jobs/"+firstID); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pruned job id: status %d, want 404", resp.StatusCode)
	}
	st, resp := post(t, s.URL()+"/jobs?wait=1", `{"seed": 100}`)
	if resp.StatusCode != http.StatusOK || st.Outcome != "hit" {
		t.Fatalf("re-submission of pruned job: status %d %+v", resp.StatusCode, st)
	}
}

// A draining server reports 503 from /healthz so load balancers stop
// routing to it. (It used to say 200 "draining", which balancers read
// as healthy.)
func TestHealthzDrainingReturns503(t *testing.T) {
	s := startTestServer(t, Options{})
	body, resp := fetch(t, s.URL()+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"status":"ok"`) {
		t.Fatalf("healthy server: status %d body %s", resp.StatusCode, body)
	}
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	body, resp = fetch(t, s.URL()+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining server healthz: status %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), `"status":"draining"`) {
		t.Fatalf("draining healthz body: %s", body)
	}
}

// Past the admission bound, new submissions are shed with 429 and a
// Retry-After hint while in-flight jobs are untouched; joining an
// in-flight run is always admitted.
func TestAdmissionQueueSheds(t *testing.T) {
	s := startTestServer(t, Options{MaxQueue: 2})

	// Fill the queue artificially: two registered in-flight jobs.
	hold := make([]*job, 2)
	s.mu.Lock()
	for i := range hold {
		norm, err := Request{Seed: int64(900 + i)}.Normalize()
		if err != nil {
			s.mu.Unlock()
			t.Fatal(err)
		}
		j := &job{id: string(norm.CacheKey()), req: norm, done: make(chan struct{}), created: time.Now()}
		s.jobs[j.id] = j
		s.inflight++
		hold[i] = j
	}
	s.mu.Unlock()

	// A fresh submission is shed.
	st, resp := post(t, s.URL()+"/jobs", `{"seed": 950}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded submit: status %d %+v", resp.StatusCode, st)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("shed response missing Retry-After")
	}
	// Joining one of the in-flight jobs is still admitted (202, running).
	join, resp := post(t, s.URL()+"/jobs", `{"seed": 900}`)
	if resp.StatusCode != http.StatusAccepted || join.State != "running" {
		t.Fatalf("join while full: status %d %+v", resp.StatusCode, join)
	}
	// The in-flight jobs are unaffected by the shed: still registered,
	// still running.
	s.mu.Lock()
	inflight := s.inflight
	s.mu.Unlock()
	if inflight != 2 {
		t.Fatalf("inflight = %d after shed, want 2", inflight)
	}

	// Release the slots; admission recovers.
	s.mu.Lock()
	for _, j := range hold {
		j.result, j.err = nil, errors.New("test: abandoned")
		s.inflight--
		close(j.done)
	}
	s.mu.Unlock()
	ok, resp := post(t, s.URL()+"/jobs?wait=1", `{"seed": 951}`)
	if resp.StatusCode != http.StatusOK || ok.State != "done" {
		t.Fatalf("post-recovery submit: status %d %+v", resp.StatusCode, ok)
	}
}

// postJSON posts a body and returns the raw response.
func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// One batch request coalesces a quality-matrix sweep: per-item statuses
// come back in submission order, identical items share a job, and the
// pipeline runs once per unique request.
func TestBatchQualityMatrixSweep(t *testing.T) {
	s := startTestServer(t, Options{})
	body := `{"jobs": [
		{"seed": 31, "resolution": "coarse", "orientation": "x-y"},
		{"seed": 31, "resolution": "coarse", "orientation": "x-z"},
		{"seed": 31, "resolution": "fine", "orientation": "x-y"},
		{"seed": 31, "resolution": "fine", "orientation": "x-z"},
		{"seed": 31, "resolution": "coarse", "orientation": "x-y"}
	]}`
	resp, data := postJSON(t, s.URL()+"/jobs/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d body %s", resp.StatusCode, data)
	}
	var br batchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 5 {
		t.Fatalf("batch results = %d, want 5", len(br.Results))
	}
	ids := map[string]bool{}
	for i, st := range br.Results {
		if st.State != "done" {
			t.Fatalf("batch item %d: %+v", i, st)
		}
		if st.STLSHA256 == "" {
			t.Fatalf("batch item %d missing digest", i)
		}
		ids[st.ID] = true
	}
	// Item 4 duplicates item 0: four unique jobs, four pipeline runs.
	if len(ids) != 4 {
		t.Fatalf("batch produced %d unique jobs, want 4", len(ids))
	}
	if br.Results[0].ID != br.Results[4].ID {
		t.Fatal("identical batch items did not coalesce")
	}
	if st := s.Service().CacheStats(); st.Misses != 4 {
		t.Fatalf("pipeline ran %d times for 4 unique requests", st.Misses)
	}
}

func TestBatchValidation(t *testing.T) {
	s := startTestServer(t, Options{})
	for _, tc := range []struct {
		body string
		code int
	}{
		{`{"jobs": []}`, http.StatusBadRequest},
		{`{}`, http.StatusBadRequest},
		{`{"jobs": [{"part": "teapot"}]}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	} {
		resp, data := postJSON(t, s.URL()+"/jobs/batch", tc.body)
		if resp.StatusCode != tc.code {
			t.Fatalf("batch body %q: status %d, want %d (%s)", tc.body, resp.StatusCode, tc.code, data)
		}
	}
	// An oversize batch is refused outright.
	var sb strings.Builder
	sb.WriteString(`{"jobs": [`)
	for i := 0; i <= maxBatchJobs; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"seed": %d}`, i)
	}
	sb.WriteString(`]}`)
	resp, _ := postJSON(t, s.URL()+"/jobs/batch", sb.String())
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversize batch: status %d, want 400", resp.StatusCode)
	}
	// A draining server refuses batches like it refuses singles.
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	resp, _ = postJSON(t, s.URL()+"/jobs/batch", `{"jobs": [{"seed": 1}]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining batch: status %d, want 503", resp.StatusCode)
	}
}

// Batch admission is atomic: a batch whose new runs cannot fit under
// the queue bound is shed whole, leaving nothing half-started.
func TestBatchShedsAtomically(t *testing.T) {
	s := startTestServer(t, Options{MaxQueue: 1})
	s.mu.Lock()
	s.inflight = 1 // one slot, already taken
	s.mu.Unlock()
	resp, _ := postJSON(t, s.URL()+"/jobs/batch", `{"jobs": [{"seed": 61}, {"seed": 62}]}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded batch: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed batch missing Retry-After")
	}
	s.mu.Lock()
	registered := len(s.jobs)
	s.inflight = 0
	s.mu.Unlock()
	if registered != 0 {
		t.Fatalf("shed batch left %d jobs registered", registered)
	}
}

// The restart-warm contract end to end: a server populated on a cache
// directory is stopped; a new server on the same directory serves the
// identical request from disk — no pipeline run, byte-identical STL.
func TestServerRestartWarmFromDisk(t *testing.T) {
	dir := t.TempDir()
	req := `{"seed": 77, "resolution": "coarse"}`

	s1 := startTestServer(t, Options{CacheDir: dir})
	first, resp := post(t, s1.URL()+"/jobs?wait=1", req)
	if resp.StatusCode != http.StatusOK || first.Outcome != "miss" {
		t.Fatalf("cold job: status %d %+v", resp.StatusCode, first)
	}
	stl1, resp := fetch(t, s1.URL()+first.STLURL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("STL fetch: %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	s2 := startTestServer(t, Options{CacheDir: dir})
	warm, resp := post(t, s2.URL()+"/jobs?wait=1", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm job: status %d %+v", resp.StatusCode, warm)
	}
	if warm.Outcome != "disk_hit" {
		t.Fatalf("post-restart outcome = %s, want disk_hit", warm.Outcome)
	}
	if warm.STLSHA256 != first.STLSHA256 {
		t.Fatalf("digests differ across restart: %s vs %s", warm.STLSHA256, first.STLSHA256)
	}
	stl2, resp := fetch(t, s2.URL()+warm.STLURL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm STL fetch: %d", resp.StatusCode)
	}
	if !bytes.Equal(stl1, stl2) {
		t.Fatal("restart-warm STL bytes differ from the original run")
	}
	// The pipeline did not run: the warm service saw one disk hit and
	// zero misses.
	if st := s2.Service().CacheStats(); st.DiskHits != 1 || st.Misses != 0 {
		t.Fatalf("warm cache stats = %+v", st)
	}
	if st, ok := s2.DiskStats(); !ok || st.Hits != 1 {
		t.Fatalf("disk stats = %+v ok=%v", st, ok)
	}
	// A second identical request is now a plain memory hit.
	again, _ := post(t, s2.URL()+"/jobs?wait=1", req)
	if again.Outcome != "hit" {
		t.Fatalf("second warm request outcome = %s, want hit", again.Outcome)
	}
}

// The resultCodec round-trips a cached result bit-exactly through the
// disk-frame encoding, and rejects malformed frames.
func TestResultCodecRoundTrip(t *testing.T) {
	in := &cachedResult{
		stl:      []byte{0x00, 0x01, 0xff, 0xfe},
		manifest: []byte(`{"k":"v"}`),
		stlSHA:   "abc123",
		grade:    "degraded",
	}
	data, err := resultCodec{}.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	v, err := resultCodec{}.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	out := v.(*cachedResult)
	if !bytes.Equal(out.stl, in.stl) || !bytes.Equal(out.manifest, in.manifest) ||
		out.stlSHA != in.stlSHA || out.grade != in.grade {
		t.Fatalf("round trip mangled the result: %+v", out)
	}
	for _, bad := range [][]byte{nil, {1}, data[:len(data)-1], append(append([]byte(nil), data...), 0)} {
		if _, err := (resultCodec{}).Decode(bad); err == nil {
			t.Fatalf("malformed frame of %d bytes decoded", len(bad))
		}
	}
}

// TestServerAdoptsTraceAndLogsAccess drives a live server with a
// propagated trace header plus an access-log writer, and asserts both
// halves of the cluster-observability contract: the async job's
// "serve"/"job" span parents under the remote span from the header, and
// the access log carries the request/trace IDs with the cache outcome.
func TestServerAdoptsTraceAndLogsAccess(t *testing.T) {
	var logBuf bytes.Buffer
	s := startTestServer(t, Options{AccessLog: &logBuf})

	req, err := http.NewRequest("POST", s.URL()+"/jobs?wait=1", strings.NewReader(`{"seed": 404}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Obfuscade-Trace", "feedfacefeedface-31337")
	req.Header.Set("X-Request-ID", "req-adopt-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "req-adopt-1" {
		t.Fatalf("echoed request id %q, want req-adopt-1", got)
	}

	// The job span must carry the header's trace ID and parent under its
	// span ID even though the job ran detached from the HTTP request.
	foundJob := false
	for _, e := range trace.Default().Events() {
		if e.Cat == "serve" && e.Name == "job" && e.Trace == "feedfacefeedface" {
			foundJob = true
			if e.Parent != 31337 {
				t.Fatalf("job span parent = %d, want remote 31337", e.Parent)
			}
		}
	}
	if !foundJob {
		t.Fatal("no serve/job span carrying the propagated trace id")
	}

	var entry AccessEntry
	if err := json.Unmarshal(logBuf.Bytes(), &entry); err != nil {
		t.Fatalf("access log %q: %v", logBuf.String(), err)
	}
	if entry.RequestID != "req-adopt-1" || entry.Trace != "feedfacefeedface" {
		t.Fatalf("access entry ids = %q/%q", entry.RequestID, entry.Trace)
	}
	if entry.Role != "serve" || entry.Status != http.StatusOK || entry.Outcome != "miss" {
		t.Fatalf("access entry = %+v", entry)
	}
}
