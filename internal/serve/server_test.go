package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func startTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	s, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// post submits a job body and decodes the status reply.
func post(t *testing.T, url, body string) (jobStatus, *http.Response) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("POST %s: decoding reply: %v", url, err)
	}
	return st, resp
}

func fetch(t *testing.T, url string) ([]byte, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body, resp
}

func TestServerEndToEnd(t *testing.T) {
	s := startTestServer(t, Options{})

	// First submission: a miss that runs the pipeline.
	first, resp := post(t, s.URL()+"/jobs?wait=1", `{"seed": 1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %+v", resp.StatusCode, first)
	}
	if first.State != "done" || first.Outcome != "miss" {
		t.Fatalf("first submission: %+v", first)
	}
	if first.STLSHA256 == "" || first.Grade == "" {
		t.Fatalf("missing artifact metadata: %+v", first)
	}

	// Identical submission: a hit with the identical digest.
	second, _ := post(t, s.URL()+"/jobs?wait=1", `{"seed": 1}`)
	if second.Outcome != "hit" {
		t.Fatalf("repeat submission outcome = %s, want hit", second.Outcome)
	}
	if second.ID != first.ID || second.STLSHA256 != first.STLSHA256 {
		t.Fatalf("repeat submission differs: %+v vs %+v", second, first)
	}

	// Distinct submission: a different job and a second miss.
	distinct, _ := post(t, s.URL()+"/jobs?wait=1", `{"seed": 2, "resolution": "fine"}`)
	if distinct.Outcome != "miss" || distinct.ID == first.ID {
		t.Fatalf("distinct submission: %+v", distinct)
	}

	// The STL artifact hashes to the reported digest.
	stlBytes, resp := fetch(t, s.URL()+first.STLURL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("STL fetch: %d", resp.StatusCode)
	}
	sum := sha256.Sum256(stlBytes)
	if got := hex.EncodeToString(sum[:]); got != first.STLSHA256 {
		t.Fatalf("served STL hashes to %s, reported %s", got, first.STLSHA256)
	}
	if h := resp.Header.Get("X-Stl-Sha256"); h != first.STLSHA256 {
		t.Fatalf("X-Stl-Sha256 = %s", h)
	}

	// The manifest is one provenance JSON line agreeing with the digest.
	manifest, _ := fetch(t, s.URL()+first.Manifest)
	var prov map[string]any
	if err := json.Unmarshal(manifest, &prov); err != nil {
		t.Fatalf("manifest: %v", err)
	}
	if prov["stl_sha256"] != first.STLSHA256 {
		t.Fatal("manifest digest disagrees with job status")
	}

	// Cache counters surface on /metrics for scrapers.
	metrics, _ := fetch(t, s.URL()+"/metrics")
	for _, name := range []string{"obfuscade_cache_hits_total", "obfuscade_cache_misses_total"} {
		if !strings.Contains(string(metrics), name) {
			t.Fatalf("/metrics missing %s", name)
		}
	}
	st := s.Service().CacheStats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("cache stats = %+v", st)
	}
}

func TestServerAsyncSubmitAndPoll(t *testing.T) {
	s := startTestServer(t, Options{})
	st, resp := post(t, s.URL()+"/jobs", `{"seed": 3}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit status %d", resp.StatusCode)
	}
	if st.ID == "" {
		t.Fatalf("no job id: %+v", st)
	}
	deadline := time.After(60 * time.Second)
	for st.State != "done" {
		select {
		case <-deadline:
			t.Fatalf("job never finished: %+v", st)
		case <-time.After(20 * time.Millisecond):
		}
		body, resp := fetch(t, s.URL()+"/jobs/"+st.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d", resp.StatusCode)
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == "failed" {
			t.Fatalf("job failed: %+v", st)
		}
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	s := startTestServer(t, Options{})
	for _, body := range []string{
		`{"part": "teapot"}`,
		`{"resolution": "ultra"}`,
		`{"orientation": "diagonal"}`,
		`{"unknown_field": 1}`,
		`{"timeout_ms": -5}`,
		`not json`,
	} {
		st, resp := post(t, s.URL()+"/jobs", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %s: status %d (%+v)", body, resp.StatusCode, st)
		}
	}
	if _, resp := fetch(t, s.URL()+"/jobs/no-such-job"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status %d", resp.StatusCode)
	}
}

// A job whose deadline expires fails with a deadline error, and the
// server keeps serving fresh jobs afterwards — a timeout must not
// poison the worker pool or the cache.
func TestServerJobDeadline(t *testing.T) {
	s := startTestServer(t, Options{})
	st, resp := post(t, s.URL()+"/jobs?wait=1", `{"seed": 4, "timeout_ms": 1}`)
	if resp.StatusCode != http.StatusInternalServerError || st.State != "failed" {
		t.Fatalf("timed-out job: status %d %+v", resp.StatusCode, st)
	}
	if !strings.Contains(st.Error, context.DeadlineExceeded.Error()) {
		t.Fatalf("error %q does not mention the deadline", st.Error)
	}
	// Errors are not cached: the same request with a sane deadline runs
	// fresh and succeeds.
	ok, resp := post(t, s.URL()+"/jobs?wait=1", `{"seed": 4}`)
	if resp.StatusCode != http.StatusOK || ok.State != "done" || ok.Outcome != "miss" {
		t.Fatalf("post-timeout job: status %d %+v", resp.StatusCode, ok)
	}
}

// Shutdown refuses new submissions, drains in-flight jobs, and flushes
// one NDJSON provenance line per completed job.
func TestServerGracefulShutdownFlushesManifests(t *testing.T) {
	var manifests bytes.Buffer
	s := startTestServer(t, Options{ManifestOut: &manifests})
	for seed := 1; seed <= 3; seed++ {
		st, resp := post(t, s.URL()+"/jobs?wait=1", fmt.Sprintf(`{"seed": %d}`, seed))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: status %d %+v", seed, resp.StatusCode, st)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	lines := strings.Split(strings.TrimRight(manifests.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("manifest lines = %d, want 3:\n%s", len(lines), manifests.String())
	}
	seeds := map[float64]bool{}
	for _, line := range lines {
		var prov map[string]any
		if err := json.Unmarshal([]byte(line), &prov); err != nil {
			t.Fatalf("manifest line %q: %v", line, err)
		}
		seeds[prov["seed"].(float64)] = true
	}
	if len(seeds) != 3 {
		t.Fatalf("flushed seeds = %v", seeds)
	}
	// The listener is closed: no new connection is accepted.
	if _, err := http.Get(s.URL() + "/healthz"); err == nil {
		t.Fatal("connection accepted after Shutdown")
	}
}

// A draining server refuses new submissions with 503.
func TestServerDrainingRefusesSubmissions(t *testing.T) {
	s := startTestServer(t, Options{})
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	norm, err := Request{}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.submit(norm); !errors.Is(err, errDraining) {
		t.Fatalf("submit while draining: %v", err)
	}
	st, resp := post(t, s.URL()+"/jobs", `{}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: status %d %+v", resp.StatusCode, st)
	}
}

// Concurrent identical submissions coalesce onto one job entry.
func TestServerCoalescesIdenticalSubmissions(t *testing.T) {
	s := startTestServer(t, Options{})
	const n = 8
	type out struct {
		st   jobStatus
		code int
	}
	results := make(chan out, n)
	for i := 0; i < n; i++ {
		go func() {
			resp, err := http.Post(s.URL()+"/jobs?wait=1", "application/json",
				strings.NewReader(`{"seed": 9}`))
			if err != nil {
				results <- out{code: -1}
				return
			}
			defer resp.Body.Close()
			var st jobStatus
			json.NewDecoder(resp.Body).Decode(&st)
			results <- out{st: st, code: resp.StatusCode}
		}()
	}
	ids := map[string]bool{}
	for i := 0; i < n; i++ {
		r := <-results
		if r.code != http.StatusOK || r.st.State != "done" {
			t.Fatalf("submission %d: code %d %+v", i, r.code, r.st)
		}
		ids[r.st.ID] = true
	}
	if len(ids) != 1 {
		t.Fatalf("identical submissions produced %d job ids", len(ids))
	}
	// All 8 submissions ran the pipeline at most once; every outcome
	// beyond the leader's is a hit or a coalesce, never a second miss.
	st := s.Service().CacheStats()
	if st.Misses != 1 {
		t.Fatalf("pipeline ran %d times for one unique request (stats %+v)", st.Misses, st)
	}
}
