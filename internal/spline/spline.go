// Package spline implements the planar spline curves used by the CAD
// kernel's sketch features, most importantly the spline split feature of
// ObfusCADe §3.1.
//
// Curves are piecewise cubic Béziers. Flattening (conversion to a chordal
// polyline) is controlled by the same two parameters SolidWorks exposes in
// its STL export dialog (paper Fig. 5): the maximum chordal Deviation and
// the maximum Angle between adjacent facets. Two bodies that share a spline
// boundary flatten it independently, with different sampling phases; the
// resulting vertex mismatch is exactly the tessellation-induced gap
// mechanism shown in the paper's Fig. 4.
package spline

import (
	"fmt"
	"math"

	"obfuscade/internal/geom"
)

// CubicBezier is a single cubic Bézier span with control points P0..P3.
type CubicBezier struct {
	P0, P1, P2, P3 geom.Vec2
}

// Eval returns the curve point at parameter t in [0, 1].
func (c CubicBezier) Eval(t float64) geom.Vec2 {
	u := 1 - t
	b0 := u * u * u
	b1 := 3 * u * u * t
	b2 := 3 * u * t * t
	b3 := t * t * t
	return c.P0.Scale(b0).Add(c.P1.Scale(b1)).Add(c.P2.Scale(b2)).Add(c.P3.Scale(b3))
}

// Deriv returns the first derivative (tangent, unnormalised) at t.
func (c CubicBezier) Deriv(t float64) geom.Vec2 {
	u := 1 - t
	d0 := c.P1.Sub(c.P0).Scale(3 * u * u)
	d1 := c.P2.Sub(c.P1).Scale(6 * u * t)
	d2 := c.P3.Sub(c.P2).Scale(3 * t * t)
	return d0.Add(d1).Add(d2)
}

// Spline is a piecewise-cubic planar curve. Spans join with positional
// continuity; Catmull-Rom construction additionally gives C1 continuity.
type Spline struct {
	Spans []CubicBezier
}

// FromBezier wraps a single Bézier span as a Spline.
func FromBezier(c CubicBezier) *Spline { return &Spline{Spans: []CubicBezier{c}} }

// Interpolate builds a C1 Catmull-Rom spline through the given points
// (at least two). This mirrors how a designer sketches a spline through
// picked points in a CAD sketcher.
func Interpolate(pts []geom.Vec2) (*Spline, error) {
	if len(pts) < 2 {
		return nil, fmt.Errorf("spline: need at least 2 points, got %d", len(pts))
	}
	n := len(pts)
	spans := make([]CubicBezier, 0, n-1)
	for i := 0; i < n-1; i++ {
		p1 := pts[i]
		p2 := pts[i+1]
		var p0, p3 geom.Vec2
		if i == 0 {
			p0 = p1.Add(p1.Sub(p2)) // reflect for natural end tangent
		} else {
			p0 = pts[i-1]
		}
		if i+2 >= n {
			p3 = p2.Add(p2.Sub(p1))
		} else {
			p3 = pts[i+2]
		}
		// Catmull-Rom to Bézier control point conversion (tension 0.5).
		c1 := p1.Add(p2.Sub(p0).Scale(1.0 / 6.0))
		c2 := p2.Sub(p3.Sub(p1).Scale(1.0 / 6.0))
		spans = append(spans, CubicBezier{p1, c1, c2, p2})
	}
	return &Spline{Spans: spans}, nil
}

// Eval returns the curve point at global parameter t in [0, 1], where each
// span occupies an equal parameter interval.
func (s *Spline) Eval(t float64) geom.Vec2 {
	span, local := s.locate(t)
	return s.Spans[span].Eval(local)
}

// Deriv returns the unnormalised tangent at global parameter t.
func (s *Spline) Deriv(t float64) geom.Vec2 {
	span, local := s.locate(t)
	return s.Spans[span].Deriv(local)
}

func (s *Spline) locate(t float64) (span int, local float64) {
	t = geom.Clamp(t, 0, 1)
	n := len(s.Spans)
	scaled := t * float64(n)
	span = int(scaled)
	if span >= n {
		span = n - 1
	}
	return span, scaled - float64(span)
}

// Start returns the first curve point.
func (s *Spline) Start() geom.Vec2 { return s.Spans[0].P0 }

// End returns the last curve point.
func (s *Spline) End() geom.Vec2 { return s.Spans[len(s.Spans)-1].P3 }

// ArcLength returns the curve length computed by dense chordal sampling.
func (s *Spline) ArcLength() float64 {
	const samplesPerSpan = 256
	var l float64
	for _, c := range s.Spans {
		prev := c.Eval(0)
		for i := 1; i <= samplesPerSpan; i++ {
			p := c.Eval(float64(i) / samplesPerSpan)
			l += prev.Dist(p)
			prev = p
		}
	}
	return l
}

// Curvature returns the unsigned curvature at global parameter t
// (1/radius; 0 for straight sections).
func (s *Spline) Curvature(t float64) float64 {
	span, local := s.locate(t)
	c := s.Spans[span]
	d1 := c.Deriv(local)
	// Second derivative of a cubic Bézier.
	u := 1 - local
	a := c.P2.Sub(c.P1.Scale(2)).Add(c.P0)
	b := c.P3.Sub(c.P2.Scale(2)).Add(c.P1)
	d2 := a.Scale(6 * u).Add(b.Scale(6 * local))
	speed := d1.Len()
	if speed == 0 {
		return 0
	}
	return math.Abs(d1.Cross(d2)) / (speed * speed * speed)
}

// ParamAtArcLength returns the global parameter at which the curve has
// accumulated arc length target (clamped to [0, total]).
func (s *Spline) ParamAtArcLength(target float64) float64 {
	if target <= 0 {
		return 0
	}
	const steps = 2048
	var acc float64
	prev := s.Eval(0)
	for i := 1; i <= steps; i++ {
		t := float64(i) / steps
		p := s.Eval(t)
		seg := prev.Dist(p)
		if acc+seg >= target {
			frac := 0.0
			if seg > 0 {
				frac = (target - acc) / seg
			}
			return (float64(i-1) + frac) / steps
		}
		acc += seg
		prev = p
	}
	return 1
}

// Transform returns a copy of the spline with f applied to every control
// point.
func (s *Spline) Transform(f func(geom.Vec2) geom.Vec2) *Spline {
	out := &Spline{Spans: make([]CubicBezier, len(s.Spans))}
	for i, c := range s.Spans {
		out.Spans[i] = CubicBezier{f(c.P0), f(c.P1), f(c.P2), f(c.P3)}
	}
	return out
}

// FlattenOpts controls chordal flattening, mirroring the STL export
// parameters of paper Fig. 5.
type FlattenOpts struct {
	// Deviation is the maximum allowed distance between the curve and its
	// chordal approximation, in model units (mm).
	Deviation float64
	// Angle is the maximum allowed angle between adjacent chords, radians.
	Angle float64
	// Phase shifts the interior sample parameters by Phase/N of a
	// subdivision interval, in [0, 1). Two bodies sharing the curve
	// tessellate with different phases, producing the vertex mismatch of
	// paper Fig. 4. Endpoints are always sampled exactly.
	Phase float64
	// MaxSegments caps the subdivision count (safety valve). Zero means
	// a default of 4096.
	MaxSegments int
}

// Validate reports whether the options are usable.
func (o FlattenOpts) Validate() error {
	if o.Deviation <= 0 {
		return fmt.Errorf("spline: Deviation must be positive, got %g", o.Deviation)
	}
	if o.Angle <= 0 {
		return fmt.Errorf("spline: Angle must be positive, got %g", o.Angle)
	}
	if o.Phase < 0 || o.Phase >= 1 {
		return fmt.Errorf("spline: Phase must be in [0,1), got %g", o.Phase)
	}
	return nil
}

// Flatten converts the spline to a polyline satisfying the chordal
// tolerance. The returned slice includes both endpoints.
func (s *Spline) Flatten(opts FlattenOpts) ([]geom.Vec2, error) {
	params, err := s.FlattenParams(opts)
	if err != nil {
		return nil, err
	}
	pts := make([]geom.Vec2, len(params))
	for i, t := range params {
		pts[i] = s.Eval(t)
	}
	return pts, nil
}

// FlattenParams returns the global parameter values of the flattening
// vertices. Uniform-in-parameter sampling with an increasing segment count
// is used so that the Phase option produces a deterministic, controlled
// mismatch between two flattenings of the same curve.
func (s *Spline) FlattenParams(opts FlattenOpts) ([]float64, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	maxSeg := opts.MaxSegments
	if maxSeg <= 0 {
		maxSeg = 4096
	}
	n := len(s.Spans) // start with one chord per span
	for ; n <= maxSeg; n *= 2 {
		params := s.sampleParams(n, opts.Phase)
		if s.chordsWithinTol(params, opts.Deviation, opts.Angle) {
			return params, nil
		}
	}
	return s.sampleParams(maxSeg, opts.Phase),
		fmt.Errorf("spline: tolerance not reached within %d segments", maxSeg)
}

func (s *Spline) sampleParams(n int, phase float64) []float64 {
	params := make([]float64, 0, n+1)
	params = append(params, 0)
	for i := 1; i < n; i++ {
		params = append(params, (float64(i)+phase)/float64(n))
	}
	params = append(params, 1)
	return params
}

func (s *Spline) chordsWithinTol(params []float64, dev, angle float64) bool {
	// Chordal deviation: check midpoints of each parameter interval.
	for i := 0; i+1 < len(params); i++ {
		a := s.Eval(params[i])
		b := s.Eval(params[i+1])
		for _, f := range [3]float64{0.25, 0.5, 0.75} {
			m := s.Eval(params[i] + f*(params[i+1]-params[i]))
			if (geom.Segment2{A: a, B: b}).Dist(m) > dev {
				return false
			}
		}
	}
	// Facet angle, evaluated within each interval (chord versus curve) so
	// the criterion measures tessellation error rather than penalising
	// genuine curvature concentrated at interval boundaries.
	for i := 0; i+1 < len(params); i++ {
		a := s.Eval(params[i])
		m := s.Eval((params[i] + params[i+1]) / 2)
		b := s.Eval(params[i+1])
		u := m.Sub(a)
		v := b.Sub(m)
		if u.Len() == 0 || v.Len() == 0 {
			continue
		}
		cosang := geom.Clamp(u.Dot(v)/(u.Len()*v.Len()), -1, 1)
		if math.Acos(cosang) > angle {
			return false
		}
	}
	return true
}

// MaxMismatch measures the largest lateral distance between two polylines
// that approximate the same curve — the magnitude of the tessellation gap
// along a split (paper Fig. 4). It samples polyline a densely and measures
// the distance to polyline b.
func MaxMismatch(a, b []geom.Vec2) float64 {
	var worst float64
	for i := 0; i+1 < len(a); i++ {
		for _, f := range [3]float64{0, 0.33, 0.67} {
			p := a[i].Lerp(a[i+1], f)
			d := distToPolyline(p, b)
			if d > worst {
				worst = d
			}
		}
	}
	if len(a) > 0 {
		if d := distToPolyline(a[len(a)-1], b); d > worst {
			worst = d
		}
	}
	return worst
}

func distToPolyline(p geom.Vec2, line []geom.Vec2) float64 {
	best := math.Inf(1)
	for i := 0; i+1 < len(line); i++ {
		d := (geom.Segment2{A: line[i], B: line[i+1]}).Dist(p)
		if d < best {
			best = d
		}
	}
	return best
}
