package spline

import (
	"math"
	"testing"

	"obfuscade/internal/geom"
)

func TestCurvatureLineZero(t *testing.T) {
	s := FromBezier(line(geom.V2(0, 0), geom.V2(10, 5)))
	for _, tt := range []float64{0.1, 0.5, 0.9} {
		if k := s.Curvature(tt); k > 1e-9 {
			t.Errorf("line curvature at %g = %v", tt, k)
		}
	}
}

func TestCurvatureCircleApprox(t *testing.T) {
	// A cubic Bézier quarter circle of radius 5: control offset
	// k = 4/3*(sqrt(2)-1)*r.
	const r = 5.0
	k := 4.0 / 3.0 * (math.Sqrt2 - 1) * r
	c := CubicBezier{
		P0: geom.V2(r, 0),
		P1: geom.V2(r, k),
		P2: geom.V2(k, r),
		P3: geom.V2(0, r),
	}
	s := FromBezier(c)
	for _, tt := range []float64{0.2, 0.5, 0.8} {
		got := s.Curvature(tt)
		if math.Abs(got-1/r)/(1/r) > 0.03 {
			t.Errorf("quarter-circle curvature at %g = %v, want ~%v", tt, got, 1/r)
		}
	}
}

func TestParamAtArcLength(t *testing.T) {
	s := FromBezier(line(geom.V2(0, 0), geom.V2(20, 0)))
	for _, tc := range []struct{ target, want float64 }{
		{0, 0}, {5, 0.25}, {10, 0.5}, {20, 1}, {25, 1}, {-1, 0},
	} {
		got := s.ParamAtArcLength(tc.target)
		if math.Abs(got-tc.want) > 2e-3 {
			t.Errorf("ParamAtArcLength(%g) = %v, want %v", tc.target, got, tc.want)
		}
	}
}

func TestParamAtArcLengthMonotone(t *testing.T) {
	s, err := Interpolate([]geom.Vec2{
		geom.V2(0, 0), geom.V2(5, 4), geom.V2(11, -3), geom.V2(18, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	total := s.ArcLength()
	prev := -1.0
	for i := 0; i <= 10; i++ {
		p := s.ParamAtArcLength(total * float64(i) / 10)
		if p <= prev {
			t.Fatalf("param not monotone at step %d: %v after %v", i, p, prev)
		}
		prev = p
	}
	// Round trip: evaluating at the returned parameters accumulates the
	// requested arc lengths.
	half := s.ParamAtArcLength(total / 2)
	if half < 0.2 || half > 0.8 {
		t.Errorf("mid-length parameter %v implausible", half)
	}
}
