package spline

import (
	"math"
	"testing"
	"testing/quick"

	"obfuscade/internal/geom"
)

func line(a, b geom.Vec2) CubicBezier {
	return CubicBezier{a, a.Lerp(b, 1.0/3), a.Lerp(b, 2.0/3), b}
}

func TestBezierEvalEndpoints(t *testing.T) {
	c := CubicBezier{geom.V2(0, 0), geom.V2(1, 2), geom.V2(3, -1), geom.V2(4, 0)}
	if got := c.Eval(0); !got.Eq(c.P0, 1e-15) {
		t.Errorf("Eval(0) = %v", got)
	}
	if got := c.Eval(1); !got.Eq(c.P3, 1e-15) {
		t.Errorf("Eval(1) = %v", got)
	}
}

func TestBezierLineEval(t *testing.T) {
	c := line(geom.V2(0, 0), geom.V2(10, 0))
	if got := c.Eval(0.5); !got.Eq(geom.V2(5, 0), 1e-12) {
		t.Errorf("midpoint = %v", got)
	}
	if got := c.Deriv(0.5); !geom.ApproxEq(got.Y, 0, 1e-12) || got.X <= 0 {
		t.Errorf("line tangent = %v", got)
	}
}

func TestInterpolatePassesThroughPoints(t *testing.T) {
	pts := []geom.Vec2{
		geom.V2(0, 0), geom.V2(5, 3), geom.V2(12, -2), geom.V2(21, 1),
	}
	s, err := Interpolate(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(s.Spans))
	}
	for i, p := range pts {
		tt := float64(i) / float64(len(pts)-1)
		if got := s.Eval(tt); !got.Eq(p, 1e-9) {
			t.Errorf("Eval(%g) = %v, want %v", tt, got, p)
		}
	}
}

func TestInterpolateErrors(t *testing.T) {
	if _, err := Interpolate([]geom.Vec2{{}}); err == nil {
		t.Error("expected error for single point")
	}
}

func TestInterpolateC1Continuity(t *testing.T) {
	pts := []geom.Vec2{geom.V2(0, 0), geom.V2(3, 4), geom.V2(8, 2), geom.V2(10, 6)}
	s, err := Interpolate(pts)
	if err != nil {
		t.Fatal(err)
	}
	// Tangent direction must be continuous across span joins.
	for i := 0; i+1 < len(s.Spans); i++ {
		out := s.Spans[i].Deriv(1).Normalized()
		in := s.Spans[i+1].Deriv(0).Normalized()
		if !out.Eq(in, 1e-9) {
			t.Errorf("tangent jump at join %d: %v vs %v", i, out, in)
		}
	}
}

func TestArcLengthLine(t *testing.T) {
	s := FromBezier(line(geom.V2(0, 0), geom.V2(21, 0)))
	if got := s.ArcLength(); !geom.ApproxEq(got, 21, 1e-6) {
		t.Errorf("ArcLength = %v, want 21", got)
	}
}

func TestArcLengthExceedsChord(t *testing.T) {
	s, _ := Interpolate([]geom.Vec2{geom.V2(0, 0), geom.V2(3, 5), geom.V2(6, -5), geom.V2(9, 0)})
	chord := s.Start().Dist(s.End())
	if s.ArcLength() <= chord {
		t.Errorf("arc length %v should exceed chord %v", s.ArcLength(), chord)
	}
}

func TestFlattenHonoursDeviation(t *testing.T) {
	s, _ := Interpolate([]geom.Vec2{
		geom.V2(0, 0), geom.V2(7, 2), geom.V2(14, -2), geom.V2(21, 0),
	})
	for _, dev := range []float64{0.5, 0.05, 0.005} {
		pts, err := s.Flatten(FlattenOpts{Deviation: dev, Angle: 0.5})
		if err != nil {
			t.Fatalf("dev %g: %v", dev, err)
		}
		// Every densely sampled curve point must be within dev of the
		// polyline.
		for i := 0; i <= 500; i++ {
			p := s.Eval(float64(i) / 500)
			if d := distToPolyline(p, pts); d > dev*1.01 {
				t.Fatalf("dev %g: curve point %v is %g from polyline", dev, p, d)
			}
		}
	}
}

func TestFlattenFinerDeviationMoreSegments(t *testing.T) {
	s, _ := Interpolate([]geom.Vec2{
		geom.V2(0, 0), geom.V2(7, 2), geom.V2(14, -2), geom.V2(21, 0),
	})
	coarse, _ := s.Flatten(FlattenOpts{Deviation: 0.2, Angle: 0.6})
	fine, _ := s.Flatten(FlattenOpts{Deviation: 0.002, Angle: 0.1})
	if len(fine) <= len(coarse) {
		t.Errorf("fine (%d pts) should use more segments than coarse (%d)", len(fine), len(coarse))
	}
}

func TestFlattenEndpointsExact(t *testing.T) {
	s, _ := Interpolate([]geom.Vec2{geom.V2(1, 2), geom.V2(5, -1), geom.V2(9, 3)})
	for _, phase := range []float64{0, 0.25, 0.5, 0.99} {
		pts, err := s.Flatten(FlattenOpts{Deviation: 0.05, Angle: 0.5, Phase: phase})
		if err != nil {
			t.Fatal(err)
		}
		if !pts[0].Eq(s.Start(), 1e-12) || !pts[len(pts)-1].Eq(s.End(), 1e-12) {
			t.Errorf("phase %g: endpoints not exact", phase)
		}
	}
}

func TestFlattenOptsValidate(t *testing.T) {
	bad := []FlattenOpts{
		{Deviation: 0, Angle: 0.1},
		{Deviation: 0.1, Angle: 0},
		{Deviation: 0.1, Angle: 0.1, Phase: 1.5},
		{Deviation: 0.1, Angle: 0.1, Phase: -0.1},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if err := (FlattenOpts{Deviation: 0.1, Angle: 0.1, Phase: 0.5}).Validate(); err != nil {
		t.Errorf("valid opts rejected: %v", err)
	}
}

// The core ObfusCADe mechanism: two flattenings of the same curve with
// different phases mismatch by an amount bounded by ~2x the deviation
// tolerance, and the mismatch shrinks as the tolerance tightens (paper
// Fig. 4: coarse STL shows visible gaps, custom STL does not).
func TestPhaseMismatchScalesWithDeviation(t *testing.T) {
	s, _ := Interpolate([]geom.Vec2{
		geom.V2(0, -3), geom.V2(5, 2), geom.V2(11, -2), geom.V2(16, 3), geom.V2(21, -1),
	})
	var prev float64 = math.Inf(1)
	for _, dev := range []float64{0.2, 0.02, 0.002} {
		a, err := s.Flatten(FlattenOpts{Deviation: dev, Angle: 1, Phase: 0})
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.Flatten(FlattenOpts{Deviation: dev, Angle: 1, Phase: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		mm := MaxMismatch(a, b)
		if mm > 2.2*dev {
			t.Errorf("dev %g: mismatch %g exceeds 2.2x deviation", dev, mm)
		}
		if mm >= prev {
			t.Errorf("dev %g: mismatch %g did not shrink (prev %g)", dev, mm, prev)
		}
		prev = mm
	}
}

func TestMaxMismatchIdentical(t *testing.T) {
	a := []geom.Vec2{geom.V2(0, 0), geom.V2(1, 1), geom.V2(2, 0)}
	if got := MaxMismatch(a, a); got > 1e-12 {
		t.Errorf("self mismatch = %v", got)
	}
}

func TestTransform(t *testing.T) {
	s, _ := Interpolate([]geom.Vec2{geom.V2(0, 0), geom.V2(2, 1), geom.V2(4, 0)})
	moved := s.Transform(func(p geom.Vec2) geom.Vec2 { return p.Add(geom.V2(10, 0)) })
	if got := moved.Eval(0.5); !got.Eq(s.Eval(0.5).Add(geom.V2(10, 0)), 1e-12) {
		t.Errorf("Transform mismatch: %v", got)
	}
}

// Property: Eval stays within the convex hull's bounding box of the control
// points (Bézier convex-hull property, per span).
func TestBezierConvexHullBounds(t *testing.T) {
	f := func(xs [8]float64, tv float64) bool {
		for i := range xs {
			if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) {
				xs[i] = 0
			}
			xs[i] = geom.Clamp(xs[i], -1e3, 1e3)
		}
		c := CubicBezier{
			geom.V2(xs[0], xs[1]), geom.V2(xs[2], xs[3]),
			geom.V2(xs[4], xs[5]), geom.V2(xs[6], xs[7]),
		}
		tt := geom.Clamp(math.Abs(tv), 0, 1)
		p := c.Eval(tt)
		minX := math.Min(math.Min(xs[0], xs[2]), math.Min(xs[4], xs[6]))
		maxX := math.Max(math.Max(xs[0], xs[2]), math.Max(xs[4], xs[6]))
		minY := math.Min(math.Min(xs[1], xs[3]), math.Min(xs[5], xs[7]))
		maxY := math.Max(math.Max(xs[1], xs[3]), math.Max(xs[5], xs[7]))
		tol := 1e-9 * (1 + math.Abs(maxX) + math.Abs(maxY))
		return p.X >= minX-tol && p.X <= maxX+tol && p.Y >= minY-tol && p.Y <= maxY+tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: arc length is at least the endpoint chord length.
func TestArcLengthAtLeastChord(t *testing.T) {
	f := func(xs [8]float64) bool {
		for i := range xs {
			if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) {
				xs[i] = 0
			}
			xs[i] = geom.Clamp(xs[i], -1e3, 1e3)
		}
		s := FromBezier(CubicBezier{
			geom.V2(xs[0], xs[1]), geom.V2(xs[2], xs[3]),
			geom.V2(xs[4], xs[5]), geom.V2(xs[6], xs[7]),
		})
		chord := s.Start().Dist(s.End())
		return s.ArcLength() >= chord-1e-9*(1+chord)
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
