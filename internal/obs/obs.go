// Package obs is the zero-dependency observability layer of the
// manufacture pipeline: atomic counters, gauges and fixed-bucket latency
// histograms registered in a process-wide registry, plus a StageTimer/Span
// API for timing pipeline stages (CAD, STL, slicing, printing, testing —
// the per-stage decomposition of paper Fig. 1 / Table 1).
//
// Determinism contract (relied on by tests and the CI bench gate):
//
//   - Counters and histogram observation counts depend only on the work
//     performed — same seed and inputs give the same values regardless of
//     worker count or scheduling (Snapshot.DeterministicJSON).
//   - Gauges and histogram bucket contents may hold wall-clock-derived
//     values and are excluded from the deterministic view.
//   - Histograms use fixed bucket bounds chosen at registration, never
//     rebucketed at runtime, so a snapshot's shape (bucket count and
//     bounds) is scheduling-independent and the exported JSON layout is
//     stable across runs.
//
// Metrics are cheap (one or two atomic ops) and always on; hot call sites
// cache the metric pointers in package variables. Registry.Reset zeroes
// values in place, keeping every cached pointer valid.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored; counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic value that can move in both directions. Gauges may
// hold timing-derived quantities (e.g. accumulated busy nanoseconds), so
// they are excluded from the deterministic snapshot view.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets are the default latency bucket upper bounds in seconds:
// roughly exponential from 100 µs to 60 s, matched to the pipeline's
// stage costs (a layer slice is sub-millisecond, a full quality matrix a
// few seconds). The final implicit bucket catches everything larger.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram is a fixed-bucket histogram of float64 observations
// (typically seconds). Bucket i counts observations v <= bounds[i]; the
// final bucket counts the overflow. Bounds are fixed at registration.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sumBits.Store(0)
}

// Registry holds named metrics. All methods are safe for concurrent use;
// metric constructors are get-or-create, so two call sites naming the
// same metric share one instance.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

var std = NewRegistry()

// Default returns the process-wide registry used by the pipeline's
// instrumentation.
func Default() *Registry { return std }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds (nil means DefBuckets) on first use. The first
// registration's bounds win; later callers share the existing histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Reset zeroes every registered metric in place. Cached metric pointers
// remain valid; only the values are cleared. Tests reset before a
// measured run so snapshots cover exactly that run.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		h.reset()
	}
}
