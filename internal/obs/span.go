package obs

import "time"

// StageTimer instruments one named pipeline stage. It owns three metrics
// in its registry:
//
//	<name>.calls    counter  completed invocations (success or failure)
//	<name>.errors   counter  invocations that returned an error
//	<name>.seconds  histogram latency of each invocation
//
// Call sites cache the StageTimer in a package variable and wrap each
// invocation in Start/End, typically via a deferred EndErr on a named
// return value.
type StageTimer struct {
	calls *Counter
	errs  *Counter
	secs  *Histogram
}

// NewStage creates (or attaches to) the stage metrics for name in r.
func NewStage(r *Registry, name string) *StageTimer {
	return &StageTimer{
		calls: r.Counter(name + ".calls"),
		errs:  r.Counter(name + ".errors"),
		secs:  r.Histogram(name+".seconds", nil),
	}
}

// Stage is NewStage on the default registry.
func Stage(name string) *StageTimer { return NewStage(Default(), name) }

// Span is one in-flight timed invocation of a stage. The zero Span is a
// no-op, so instrumented code never has to nil-check.
type Span struct {
	t     *StageTimer
	start time.Time
}

// Start begins timing one invocation.
func (t *StageTimer) Start() Span { return Span{t: t, start: time.Now()} }

// End finishes the span as a success.
func (s Span) End() { s.finish(nil) }

// EndErr finishes the span, counting an error when err is non-nil. It is
// designed for use with deferred named returns:
//
//	func Slice(...) (res *Result, err error) {
//		span := stSlice.Start()
//		defer func() { span.EndErr(err) }()
//		...
func (s Span) EndErr(err error) { s.finish(err) }

func (s Span) finish(err error) {
	if s.t == nil {
		return
	}
	s.t.secs.Observe(time.Since(s.start).Seconds())
	s.t.calls.Inc()
	if err != nil {
		s.t.errs.Inc()
	}
}
