package obs

import "testing"

// Micro-benchmarks for the always-on instrumentation: these bound the
// per-call overhead the pipeline pays for metrics (one or two atomic ops).

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := newHistogram(nil)
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

func BenchmarkSpanStartEnd(b *testing.B) {
	st := NewStage(NewRegistry(), "bench.stage")
	for i := 0; i < b.N; i++ {
		st.Start().End()
	}
}
