package obs

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-3) // negative deltas ignored: counters only go up
	c.Add(0)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	g.Add(1)
	if got := g.Value(); got != 8 {
		t.Errorf("gauge = %d, want 8", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("concurrent counter = %d, want 8000", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{0.01, 0.1, 1})
	// One observation per region: below first bound, exactly on a bound
	// (counts as <= bound), between bounds, and overflow.
	h.Observe(0.001)
	h.Observe(0.1)
	h.Observe(0.5)
	h.Observe(100)
	if got := h.Count(); got != 4 {
		t.Fatalf("count = %d, want 4", got)
	}
	want := []int64{1, 1, 1, 1}
	for i, w := range want {
		if got := h.buckets[i].Load(); got != w {
			t.Errorf("bucket[%d] = %d, want %d", i, got, w)
		}
	}
	if got := h.Sum(); got != 0.001+0.1+0.5+100 {
		t.Errorf("sum = %g", got)
	}
}

func TestHistogramDefaultBucketsAndSortedBounds(t *testing.T) {
	h := newHistogram(nil)
	if len(h.bounds) != len(DefBuckets) {
		t.Fatalf("default bounds len = %d, want %d", len(h.bounds), len(DefBuckets))
	}
	// Bounds are copied and sorted at construction, even if passed shuffled.
	h2 := newHistogram([]float64{1, 0.01, 0.1})
	for i := 1; i < len(h2.bounds); i++ {
		if h2.bounds[i-1] > h2.bounds[i] {
			t.Fatalf("bounds not sorted: %v", h2.bounds)
		}
	}
}

func TestHistogramConcurrentSum(t *testing.T) {
	h := newHistogram([]float64{1})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 4000 {
		t.Errorf("count = %d, want 4000", got)
	}
	if got, want := h.Sum(), 2000.0; got != want {
		t.Errorf("sum = %g, want %g (CAS float add lost updates)", got, want)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Error("counter get-or-create returned distinct instances")
	}
	if r.Gauge("x") != r.Gauge("x") {
		t.Error("gauge get-or-create returned distinct instances")
	}
	h1 := r.Histogram("x", []float64{1, 2})
	h2 := r.Histogram("x", []float64{5, 6, 7}) // first registration's bounds win
	if h1 != h2 {
		t.Error("histogram get-or-create returned distinct instances")
	}
	if len(h1.bounds) != 2 || h1.bounds[1] != 2 {
		t.Errorf("first-registered bounds lost: %v", h1.bounds)
	}
}

func TestResetKeepsPointersValid(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{1})
	c.Add(3)
	g.Set(7)
	h.Observe(0.5)
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("reset did not zero all metrics")
	}
	// The cached pointers must still feed the same registered metric.
	c.Inc()
	if got := r.Counter("c").Value(); got != 1 {
		t.Errorf("cached pointer detached after Reset: registry sees %d", got)
	}
	h.Observe(2)
	if got := h.buckets[len(h.buckets)-1].Load(); got != 1 {
		t.Errorf("overflow bucket after reset = %d, want 1", got)
	}
}

func TestSnapshotSortedAndZeroOmitted(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Inc()
	r.Counter("zero") // registered but never incremented: omitted
	r.Gauge("g").Set(2)
	r.Gauge("gzero")
	r.Histogram("t", []float64{1}).Observe(0.5)
	r.Histogram("tzero", nil)
	s := r.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "a" || s.Counters[1].Name != "b" {
		t.Errorf("counters = %+v, want name-sorted [a b]", s.Counters)
	}
	if len(s.Gauges) != 1 || s.Gauges[0].Name != "g" {
		t.Errorf("gauges = %+v", s.Gauges)
	}
	if len(s.Stages) != 1 || s.Stages[0].Name != "t" {
		t.Errorf("stages = %+v", s.Stages)
	}
	if _, ok := s.Counter("zero"); ok {
		t.Error("zero-valued counter present in snapshot")
	}
	if v, ok := s.Counter("a"); !ok || v != 1 {
		t.Errorf("Counter(a) = %d,%v", v, ok)
	}
	if v, ok := s.Gauge("g"); !ok || v != 2 {
		t.Errorf("Gauge(g) = %d,%v", v, ok)
	}
	if hs, ok := s.Stage("t"); !ok || hs.Count != 1 {
		t.Errorf("Stage(t) = %+v,%v", hs, ok)
	}
	if _, ok := s.Stage("missing"); ok {
		t.Error("Stage(missing) reported present")
	}
}

func TestSnapshotJSONByteIdentical(t *testing.T) {
	build := func() Snapshot {
		r := NewRegistry()
		r.Counter("n").Add(41)
		r.Counter("m").Add(7)
		r.Gauge("g").Set(3)
		h := r.Histogram("stage.seconds", []float64{0.1, 1})
		h.Observe(0.05)
		h.Observe(0.5)
		return r.Snapshot()
	}
	a, err := build().JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := build().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("identical registries gave different JSON:\n%s\n---\n%s", a, b)
	}
}

func TestDeterministicJSONExcludesGauges(t *testing.T) {
	r := NewRegistry()
	r.Counter("work.items").Add(10)
	r.Gauge("pool.busy.nanos").Set(123456789) // wall-clock-derived: excluded
	h := r.Histogram("stage.seconds", nil)
	h.Observe(0.2)
	out, err := r.Snapshot().DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	if strings.Contains(s, "pool.busy.nanos") {
		t.Errorf("deterministic view leaked a gauge:\n%s", s)
	}
	if strings.Contains(s, "sum_seconds") || strings.Contains(s, "bounds_seconds") {
		t.Errorf("deterministic view leaked timing values:\n%s", s)
	}
	if !strings.Contains(s, "work.items") || !strings.Contains(s, "stage.seconds") {
		t.Errorf("deterministic view missing counters or timing counts:\n%s", s)
	}
}

func TestStageTimer(t *testing.T) {
	r := NewRegistry()
	st := NewStage(r, "demo")
	st.Start().End()
	st.Start().EndErr(nil)
	st.Start().EndErr(errors.New("boom"))
	s := r.Snapshot()
	if v, _ := s.Counter("demo.calls"); v != 3 {
		t.Errorf("calls = %d, want 3", v)
	}
	if v, _ := s.Counter("demo.errors"); v != 1 {
		t.Errorf("errors = %d, want 1", v)
	}
	hs, ok := s.Stage("demo.seconds")
	if !ok || hs.Count != 3 {
		t.Errorf("seconds count = %d,%v, want 3", hs.Count, ok)
	}
	if hs.SumSeconds < 0 {
		t.Errorf("negative latency sum %g", hs.SumSeconds)
	}
}

func TestZeroSpanIsNoOp(t *testing.T) {
	var s Span
	s.End() // must not panic
	s.EndErr(errors.New("ignored"))
}

func TestDefaultRegistryAndStage(t *testing.T) {
	if Default() == nil {
		t.Fatal("nil default registry")
	}
	st := Stage("obs.test.stage")
	sp := st.Start()
	time.Sleep(time.Millisecond)
	sp.End()
	if v, _ := Default().Snapshot().Counter("obs.test.stage.calls"); v < 1 {
		t.Errorf("default-registry stage calls = %d", v)
	}
}

func TestQuantileAndMean(t *testing.T) {
	hs := HistogramSnapshot{
		Name:       "q",
		Count:      10,
		SumSeconds: 5,
		Bounds:     []float64{0.1, 1, 10},
		Counts:     []int64{5, 4, 1, 0},
	}
	if got := hs.Mean(); got != 0.5 {
		t.Errorf("mean = %g, want 0.5", got)
	}
	if got := hs.Quantile(0.5); got != 0.1 {
		t.Errorf("p50 = %g, want 0.1 (rank 5 is in the first bucket)", got)
	}
	if got := hs.Quantile(0.95); got != 10 {
		t.Errorf("p95 = %g, want 10", got)
	}
	// Clamping and the overflow bucket.
	if got := hs.Quantile(-1); got != 0.1 {
		t.Errorf("q<0 = %g, want 0.1", got)
	}
	over := HistogramSnapshot{Count: 1, Bounds: []float64{1}, Counts: []int64{0, 1}}
	if got := over.Quantile(1); got != 1 {
		t.Errorf("overflow quantile = %g, want largest finite bound 1", got)
	}
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %g", got)
	}
	if got := empty.Mean(); got != 0 {
		t.Errorf("empty mean = %g", got)
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	NewStage(r, "stage.a").Start().End()
	r.Counter("items").Add(12)
	// Busy/wall gauges drive the derived utilization line.
	r.Gauge("parallel.pool.busy.nanos").Set(500)
	r.Gauge("parallel.pool.wall.nanos").Set(1000)
	var buf bytes.Buffer
	r.Snapshot().WriteText(&buf)
	out := buf.String()
	for _, want := range []string{
		"pipeline stage timings", "stage.a", "pipeline counters",
		"items", "(gauge)", "worker pool utilization: 50%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}
}
