package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"obfuscade/internal/report"
)

// MetricValue is one named scalar in a snapshot.
type MetricValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramSnapshot is the frozen state of one histogram. Bounds has the
// fixed bucket upper bounds; Counts has len(Bounds)+1 entries, the last
// being the overflow bucket.
type HistogramSnapshot struct {
	Name       string    `json:"name"`
	Count      int64     `json:"count"`
	SumSeconds float64   `json:"sum_seconds"`
	Bounds     []float64 `json:"bounds_seconds"`
	Counts     []int64   `json:"counts"`
}

// Mean returns the mean observation, or 0 with no observations.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.SumSeconds / float64(h.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) from the bucket counts,
// returning the upper bound of the bucket holding the target rank. The
// overflow bucket reports the largest finite bound.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q*float64(h.Count) + 0.5)
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			break
		}
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Snapshot is a frozen, name-sorted view of a registry. Zero-valued
// metrics are omitted, so a snapshot covers exactly the work performed
// since the last Reset.
type Snapshot struct {
	Counters []MetricValue       `json:"counters"`
	Gauges   []MetricValue       `json:"gauges"`
	Stages   []HistogramSnapshot `json:"timings"`
}

// Snapshot freezes the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	for name, c := range r.counters {
		if v := c.Value(); v != 0 {
			s.Counters = append(s.Counters, MetricValue{Name: name, Value: v})
		}
	}
	for name, g := range r.gauges {
		if v := g.Value(); v != 0 {
			s.Gauges = append(s.Gauges, MetricValue{Name: name, Value: v})
		}
	}
	for name, h := range r.hists {
		if h.Count() == 0 {
			continue
		}
		hs := HistogramSnapshot{
			Name:       name,
			Count:      h.Count(),
			SumSeconds: h.Sum(),
			Bounds:     append([]float64(nil), h.bounds...),
			Counts:     make([]int64, len(h.buckets)),
		}
		for i := range h.buckets {
			hs.Counts[i] = h.buckets[i].Load()
		}
		s.Stages = append(s.Stages, hs)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Stages, func(i, j int) bool { return s.Stages[i].Name < s.Stages[j].Name })
	return s
}

// MergeSnapshots sums a set of snapshots into one cluster-wide view:
// counters and gauges add by name, and histograms with identical bucket
// bounds merge bucket-wise (count, sum and per-bucket counts add). A
// histogram whose bounds disagree across inputs — which only happens
// across incompatible builds — keeps the first input's buckets and adds
// only count and sum, so totals stay honest even when shapes drift.
// The result is name-sorted like any Snapshot.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	counters := map[string]int64{}
	gauges := map[string]int64{}
	hists := map[string]*HistogramSnapshot{}
	var histOrder []string
	for _, s := range snaps {
		for _, m := range s.Counters {
			counters[m.Name] += m.Value
		}
		for _, m := range s.Gauges {
			gauges[m.Name] += m.Value
		}
		for _, h := range s.Stages {
			acc, ok := hists[h.Name]
			if !ok {
				cp := h
				cp.Bounds = append([]float64(nil), h.Bounds...)
				cp.Counts = append([]int64(nil), h.Counts...)
				hists[h.Name] = &cp
				histOrder = append(histOrder, h.Name)
				continue
			}
			acc.Count += h.Count
			acc.SumSeconds += h.SumSeconds
			if boundsEqual(acc.Bounds, h.Bounds) && len(acc.Counts) == len(h.Counts) {
				for i, c := range h.Counts {
					acc.Counts[i] += c
				}
			}
		}
	}
	var out Snapshot
	for name, v := range counters {
		out.Counters = append(out.Counters, MetricValue{Name: name, Value: v})
	}
	for name, v := range gauges {
		out.Gauges = append(out.Gauges, MetricValue{Name: name, Value: v})
	}
	for _, name := range histOrder {
		out.Stages = append(out.Stages, *hists[name])
	}
	sort.Slice(out.Counters, func(i, j int) bool { return out.Counters[i].Name < out.Counters[j].Name })
	sort.Slice(out.Gauges, func(i, j int) bool { return out.Gauges[i].Name < out.Gauges[j].Name })
	sort.Slice(out.Stages, func(i, j int) bool { return out.Stages[i].Name < out.Stages[j].Name })
	return out
}

func boundsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter returns the snapshotted value of a counter, if present.
func (s Snapshot) Counter(name string) (int64, bool) {
	for _, m := range s.Counters {
		if m.Name == name {
			return m.Value, true
		}
	}
	return 0, false
}

// Gauge returns the snapshotted value of a gauge, if present.
func (s Snapshot) Gauge(name string) (int64, bool) {
	for _, m := range s.Gauges {
		if m.Name == name {
			return m.Value, true
		}
	}
	return 0, false
}

// Stage returns the snapshotted histogram of a stage, if present.
func (s Snapshot) Stage(name string) (HistogramSnapshot, bool) {
	for _, h := range s.Stages {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramSnapshot{}, false
}

// JSON renders the full snapshot as indented JSON. Field order and
// metric order are fixed (name-sorted), so identical metric states give
// byte-identical output.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// deterministicView is the scheduling-independent slice of a snapshot:
// counters plus per-stage observation counts. Gauges, latency sums and
// bucket contents are wall-clock-derived and excluded.
type deterministicView struct {
	Counters     []MetricValue `json:"counters"`
	TimingCounts []MetricValue `json:"timing_counts"`
}

// DeterministicJSON renders only the scheduling-independent metrics:
// with a fixed seed, two runs of the same work produce byte-identical
// output regardless of worker count — the property the determinism tests
// assert on.
func (s Snapshot) DeterministicJSON() ([]byte, error) {
	v := deterministicView{Counters: s.Counters}
	for _, h := range s.Stages {
		v.TimingCounts = append(v.TimingCounts, MetricValue{Name: h.Name, Value: h.Count})
	}
	return json.MarshalIndent(v, "", "  ")
}

// StageTable renders the timing histograms as a human table: calls,
// total and mean latency, and coarse bucket-resolution quantiles.
func (s Snapshot) StageTable() *report.Table {
	t := &report.Table{
		Title:      "pipeline stage timings",
		Headers:    []string{"stage", "calls", "total s", "mean ms", "p50 ms", "p95 ms"},
		AlignRight: []bool{false, true, true, true, true, true},
	}
	for _, h := range s.Stages {
		t.AddRow(
			strings.TrimSuffix(h.Name, ".seconds"),
			fmt.Sprintf("%d", h.Count),
			fmt.Sprintf("%.3f", h.SumSeconds),
			fmt.Sprintf("%.3f", 1000*h.Mean()),
			fmt.Sprintf("%.3f", 1000*h.Quantile(0.50)),
			fmt.Sprintf("%.3f", 1000*h.Quantile(0.95)),
		)
	}
	return t
}

// CounterTable renders counters and gauges as a human table.
func (s Snapshot) CounterTable() *report.Table {
	t := &report.Table{
		Title:      "pipeline counters",
		Headers:    []string{"metric", "value"},
		AlignRight: []bool{false, true},
	}
	for _, m := range s.Counters {
		t.AddRow(m.Name, fmt.Sprintf("%d", m.Value))
	}
	for _, m := range s.Gauges {
		t.AddRow(m.Name+" (gauge)", fmt.Sprintf("%d", m.Value))
	}
	return t
}

// WriteText writes the human-readable stats report (stage table, counter
// table, and the derived worker-pool utilization) used by the CLIs'
// -stats flags.
func (s Snapshot) WriteText(w io.Writer) {
	fmt.Fprintln(w, s.StageTable().Render())
	fmt.Fprintln(w, s.CounterTable().Render())
	busy, okB := s.Gauge("parallel.pool.busy.nanos")
	wall, okW := s.Gauge("parallel.pool.wall.nanos")
	if okB && okW && wall > 0 {
		fmt.Fprintf(w, "worker pool utilization: %.0f%% (task-busy time / worker-seconds reserved)\n",
			100*float64(busy)/float64(wall))
	}
}
