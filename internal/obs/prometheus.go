package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// promName sanitizes a metric name into the Prometheus charset
// [a-zA-Z0-9_:] and prefixes the exporter namespace, so
// "core.matrix.keys" becomes "obfuscade_core_matrix_keys".
func promName(name string) string {
	var b strings.Builder
	b.WriteString("obfuscade_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters as <name>_total, gauges as-is, and
// stage histograms with cumulative le buckets plus _sum and _count. The
// output order is fixed (name-sorted, inherited from Snapshot), so
// identical metric states scrape byte-identically.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	return s.WritePrometheusLabeled(w, "obfuscade_", nil)
}

// promLabels renders a label set as the {k="v",...} selector suffix.
// Keys are emitted in the order given; values are escaped per the text
// exposition format. An empty set renders as "".
func promLabels(labels [][2]string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, kv := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[0])
		b.WriteString("=\"")
		v := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(kv[1])
		b.WriteString(v)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheusLabeled renders the snapshot with a custom namespace
// prefix and a constant label set on every series — the form the
// router's /cluster/metrics federation endpoint uses to emit each
// shard's metrics under a shard="host:port" label, and the cluster-wide
// sums under a separate namespace so federated scrapes never double
// count. Histogram bucket lines merge the constant labels with their le
// label.
func (s Snapshot) WritePrometheusLabeled(w io.Writer, namespace string, labels [][2]string) error {
	sel := promLabels(labels)
	ns := func(metric string) string {
		return namespace + strings.TrimPrefix(promName(metric), "obfuscade_")
	}
	for _, m := range s.Counters {
		name := ns(m.Name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s%s %d\n", name, name, sel, m.Value); err != nil {
			return err
		}
	}
	for _, m := range s.Gauges {
		name := ns(m.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s%s %d\n", name, name, sel, m.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Stages {
		name := ns(h.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		var cum int64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			le := strconv.FormatFloat(bound, 'g', -1, 64)
			bsel := promLabels(append(append([][2]string(nil), labels...), [2]string{"le", le}))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, bsel, cum); err != nil {
				return err
			}
		}
		isel := promLabels(append(append([][2]string(nil), labels...), [2]string{"le", "+Inf"}))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, isel, h.Count); err != nil {
			return err
		}
		sum := strconv.FormatFloat(h.SumSeconds, 'g', -1, 64)
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n", name, sel, sum, name, sel, h.Count); err != nil {
			return err
		}
	}
	return nil
}
