package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// promName sanitizes a metric name into the Prometheus charset
// [a-zA-Z0-9_:] and prefixes the exporter namespace, so
// "core.matrix.keys" becomes "obfuscade_core_matrix_keys".
func promName(name string) string {
	var b strings.Builder
	b.WriteString("obfuscade_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters as <name>_total, gauges as-is, and
// stage histograms with cumulative le buckets plus _sum and _count. The
// output order is fixed (name-sorted, inherited from Snapshot), so
// identical metric states scrape byte-identically.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, m := range s.Counters {
		name := promName(m.Name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, m.Value); err != nil {
			return err
		}
	}
	for _, m := range s.Gauges {
		name := promName(m.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, m.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Stages {
		name := promName(h.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		var cum int64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			le := strconv.FormatFloat(bound, 'g', -1, 64)
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count); err != nil {
			return err
		}
		sum := strconv.FormatFloat(h.SumSeconds, 'g', -1, 64)
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, sum, name, h.Count); err != nil {
			return err
		}
	}
	return nil
}
