package obs

import (
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"core.matrix.keys": "obfuscade_core_matrix_keys",
		"already_clean":    "obfuscade_already_clean",
		"weird-chars/here": "obfuscade_weird_chars_here",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	snap := Snapshot{
		Counters: []MetricValue{{Name: "slicer.layers.sliced", Value: 42}},
		Gauges:   []MetricValue{{Name: "pool.workers", Value: 8}},
		Stages: []HistogramSnapshot{{
			Name:       "core.matrix",
			Count:      5,
			SumSeconds: 2.5,
			Bounds:     []float64{0.1, 1, 10},
			Counts:     []int64{1, 3, 1},
		}},
	}
	var b strings.Builder
	if err := snap.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := []string{
		"# TYPE obfuscade_slicer_layers_sliced_total counter",
		"obfuscade_slicer_layers_sliced_total 42",
		"# TYPE obfuscade_pool_workers gauge",
		"obfuscade_pool_workers 8",
		"# TYPE obfuscade_core_matrix histogram",
		`obfuscade_core_matrix_bucket{le="0.1"} 1`,
		`obfuscade_core_matrix_bucket{le="1"} 4`, // cumulative: 1+3
		`obfuscade_core_matrix_bucket{le="10"} 5`,
		`obfuscade_core_matrix_bucket{le="+Inf"} 5`,
		"obfuscade_core_matrix_sum 2.5",
		"obfuscade_core_matrix_count 5",
	}
	for _, line := range want {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing line %q\nfull output:\n%s", line, out)
		}
	}
}

func TestWritePrometheusEmptySnapshot(t *testing.T) {
	var b strings.Builder
	if err := (Snapshot{}).WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("empty snapshot produced output: %q", b.String())
	}
}
