package obs

import (
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"core.matrix.keys": "obfuscade_core_matrix_keys",
		"already_clean":    "obfuscade_already_clean",
		"weird-chars/here": "obfuscade_weird_chars_here",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	snap := Snapshot{
		Counters: []MetricValue{{Name: "slicer.layers.sliced", Value: 42}},
		Gauges:   []MetricValue{{Name: "pool.workers", Value: 8}},
		Stages: []HistogramSnapshot{{
			Name:       "core.matrix",
			Count:      5,
			SumSeconds: 2.5,
			Bounds:     []float64{0.1, 1, 10},
			Counts:     []int64{1, 3, 1},
		}},
	}
	var b strings.Builder
	if err := snap.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := []string{
		"# TYPE obfuscade_slicer_layers_sliced_total counter",
		"obfuscade_slicer_layers_sliced_total 42",
		"# TYPE obfuscade_pool_workers gauge",
		"obfuscade_pool_workers 8",
		"# TYPE obfuscade_core_matrix histogram",
		`obfuscade_core_matrix_bucket{le="0.1"} 1`,
		`obfuscade_core_matrix_bucket{le="1"} 4`, // cumulative: 1+3
		`obfuscade_core_matrix_bucket{le="10"} 5`,
		`obfuscade_core_matrix_bucket{le="+Inf"} 5`,
		"obfuscade_core_matrix_sum 2.5",
		"obfuscade_core_matrix_count 5",
	}
	for _, line := range want {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing line %q\nfull output:\n%s", line, out)
		}
	}
}

func TestWritePrometheusEmptySnapshot(t *testing.T) {
	var b strings.Builder
	if err := (Snapshot{}).WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("empty snapshot produced output: %q", b.String())
	}
}

func TestWritePrometheusLabeled(t *testing.T) {
	snap := Snapshot{
		Counters: []MetricValue{{Name: "cache.hits", Value: 7}},
		Gauges:   []MetricValue{{Name: "serve.jobs.inflight", Value: 2}},
		Stages: []HistogramSnapshot{{
			Name:       "serve.job",
			Count:      3,
			SumSeconds: 1.5,
			Bounds:     []float64{0.5},
			Counts:     []int64{3},
		}},
	}
	var b strings.Builder
	if err := snap.WritePrometheusLabeled(&b, "obfuscade_", [][2]string{{"shard", "127.0.0.1:9"}}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := []string{
		`obfuscade_cache_hits_total{shard="127.0.0.1:9"} 7`,
		`obfuscade_serve_jobs_inflight{shard="127.0.0.1:9"} 2`,
		`obfuscade_serve_job_bucket{shard="127.0.0.1:9",le="0.5"} 3`,
		`obfuscade_serve_job_bucket{shard="127.0.0.1:9",le="+Inf"} 3`,
		`obfuscade_serve_job_sum{shard="127.0.0.1:9"} 1.5`,
		`obfuscade_serve_job_count{shard="127.0.0.1:9"} 3`,
	}
	for _, line := range want {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("labeled exposition missing %q\nfull output:\n%s", line, out)
		}
	}

	// A custom namespace re-prefixes every series (cluster sums).
	b.Reset()
	if err := snap.WritePrometheusLabeled(&b, "obfuscade_cluster_", nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "obfuscade_cluster_cache_hits_total 7\n") {
		t.Errorf("namespaced exposition wrong:\n%s", b.String())
	}
}

func TestPromLabelsEscaping(t *testing.T) {
	got := promLabels([][2]string{{"shard", `a"b\c`}})
	if got != `{shard="a\"b\\c"}` {
		t.Fatalf("promLabels = %s", got)
	}
}

func TestMergeSnapshots(t *testing.T) {
	a := Snapshot{
		Counters: []MetricValue{{Name: "cache.hits", Value: 5}, {Name: "serve.requests", Value: 2}},
		Gauges:   []MetricValue{{Name: "serve.jobs.inflight", Value: 1}},
		Stages: []HistogramSnapshot{{
			Name: "serve.job", Count: 2, SumSeconds: 1,
			Bounds: []float64{0.5, 1}, Counts: []int64{1, 1, 0},
		}},
	}
	b := Snapshot{
		Counters: []MetricValue{{Name: "cache.hits", Value: 7}},
		Stages: []HistogramSnapshot{{
			Name: "serve.job", Count: 3, SumSeconds: 2,
			Bounds: []float64{0.5, 1}, Counts: []int64{0, 2, 1},
		}},
	}
	m := MergeSnapshots(a, b)
	if v, _ := m.Counter("cache.hits"); v != 12 {
		t.Fatalf("merged cache.hits = %d, want 12", v)
	}
	if v, _ := m.Counter("serve.requests"); v != 2 {
		t.Fatalf("merged serve.requests = %d, want 2", v)
	}
	if v, _ := m.Gauge("serve.jobs.inflight"); v != 1 {
		t.Fatalf("merged inflight = %d, want 1", v)
	}
	h, ok := m.Stage("serve.job")
	if !ok || h.Count != 5 || h.SumSeconds != 3 {
		t.Fatalf("merged histogram: %+v", h)
	}
	for i, want := range []int64{1, 3, 1} {
		if h.Counts[i] != want {
			t.Fatalf("merged bucket %d = %d, want %d", i, h.Counts[i], want)
		}
	}
	// Mismatched bounds: count/sum still add, buckets keep the first shape.
	c := Snapshot{Stages: []HistogramSnapshot{{
		Name: "serve.job", Count: 1, SumSeconds: 4,
		Bounds: []float64{9}, Counts: []int64{1, 0},
	}}}
	m2 := MergeSnapshots(a, c)
	h2, _ := m2.Stage("serve.job")
	if h2.Count != 3 || h2.SumSeconds != 5 || len(h2.Bounds) != 2 {
		t.Fatalf("mismatched-bounds merge: %+v", h2)
	}
}
