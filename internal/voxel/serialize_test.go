package voxel

import (
	"bytes"
	"testing"

	"obfuscade/internal/geom"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	g := newTestGrid(t, 12, 9, 7)
	fillBox(g, [3]int{2, 2, 2}, [3]int{9, 7, 5}, Model)
	fillBox(g, [3]int{4, 4, 3}, [3]int{5, 5, 4}, Support)

	data, err := g.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(back) {
		t.Error("round trip changed grid content")
	}
	if back.Count(Support) != g.Count(Support) {
		t.Error("support count mismatch")
	}
}

func TestRLECompresses(t *testing.T) {
	g := newTestGrid(t, 50, 50, 20)
	fillBox(g, [3]int{5, 5, 5}, [3]int{44, 44, 14}, Model)
	data, err := g.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	raw := g.NX * g.NY * g.NZ
	if len(data) > raw/5 {
		t.Errorf("RLE size %d, raw %d: expected >5x compression", len(data), raw)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("not a grid")); err == nil {
		t.Error("expected error for bad magic")
	}
	g := newTestGrid(t, 4, 4, 4)
	data, _ := g.Marshal()
	// Truncated.
	if _, err := Unmarshal(data[:len(data)-3]); err == nil {
		t.Error("expected error for truncated data")
	}
	// Corrupted run count overflowing the grid.
	bad := append([]byte{}, data...)
	bad[len(voxlMagic)+5*8+3*8] = 0xFF // bump the first run count high byte
	if _, err := Unmarshal(bad); err == nil {
		t.Error("expected error for overflowing run")
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	a := newTestGrid(t, 4, 4, 4)
	b := newTestGrid(t, 4, 4, 4)
	if !a.Equal(b) {
		t.Error("identical grids should be equal")
	}
	b.Set(1, 1, 1, Model)
	if a.Equal(b) {
		t.Error("content difference not detected")
	}
	if a.Equal(nil) {
		t.Error("nil grid should not be equal")
	}
	c, _ := NewGrid(geom.AABB{Min: geom.V3(1, 0, 0), Max: geom.V3(4, 3, 3)}, 1, 1)
	if a.Equal(c) {
		t.Error("origin difference not detected")
	}
}

func TestSaveWriterError(t *testing.T) {
	g := newTestGrid(t, 4, 4, 4)
	w := &failingWriter{}
	if err := g.Save(w); err == nil {
		t.Error("expected write error to propagate")
	}
}

type failingWriter struct{}

func (f *failingWriter) Write(p []byte) (int, error) {
	return 0, bytes.ErrTooLarge
}
