package voxel

import (
	"math"
	"testing"

	"obfuscade/internal/geom"
)

func newTestGrid(t *testing.T, nx, ny, nz int) *Grid {
	t.Helper()
	g, err := NewGrid(geom.AABB{
		Min: geom.V3(0, 0, 0),
		Max: geom.V3(float64(nx)-0.5, float64(ny)-0.5, float64(nz)-0.5),
	}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NX != nx || g.NY != ny || g.NZ != nz {
		t.Fatalf("grid dims %dx%dx%d, want %dx%dx%d", g.NX, g.NY, g.NZ, nx, ny, nz)
	}
	return g
}

func TestNewGridErrors(t *testing.T) {
	b := geom.AABB{Min: geom.V3(0, 0, 0), Max: geom.V3(1, 1, 1)}
	if _, err := NewGrid(b, 0, 1); err == nil {
		t.Error("expected error for zero cell")
	}
	if _, err := NewGrid(b, 1, -1); err == nil {
		t.Error("expected error for negative cellZ")
	}
	huge := geom.AABB{Min: geom.V3(0, 0, 0), Max: geom.V3(1e5, 1e5, 1e5)}
	if _, err := NewGrid(huge, 0.1, 0.1); err == nil {
		t.Error("expected error for oversized grid")
	}
}

func TestSetAtBounds(t *testing.T) {
	g := newTestGrid(t, 4, 4, 4)
	g.Set(1, 2, 3, Model)
	if g.At(1, 2, 3) != Model {
		t.Error("Set/At round trip failed")
	}
	if g.At(-1, 0, 0) != Empty || g.At(9, 0, 0) != Empty {
		t.Error("out-of-grid reads should be Empty")
	}
	g.Set(-1, 0, 0, Model) // must not panic
	if g.Count(Model) != 1 {
		t.Errorf("Count = %d, want 1", g.Count(Model))
	}
}

func TestVolumeAndReplace(t *testing.T) {
	g := newTestGrid(t, 3, 3, 3)
	g.Set(0, 0, 0, Support)
	g.Set(1, 1, 1, Support)
	if got := g.Volume(Support); !geom.ApproxEq(got, 2, 1e-12) {
		t.Errorf("Volume = %v", got)
	}
	if n := g.Replace(Support, Empty); n != 2 {
		t.Errorf("Replace = %d, want 2", n)
	}
	if g.Count(Support) != 0 {
		t.Error("support not washed out")
	}
}

func TestLocateCenterInverse(t *testing.T) {
	g := newTestGrid(t, 5, 5, 5)
	for _, v := range [][3]int{{0, 0, 0}, {4, 3, 2}, {1, 4, 4}} {
		c := g.Center(v[0], v[1], v[2])
		x, y, z := g.Locate(c)
		if x != v[0] || y != v[1] || z != v[2] {
			t.Errorf("Locate(Center(%v)) = (%d,%d,%d)", v, x, y, z)
		}
	}
}

func fillBox(g *Grid, min, max [3]int, m Material) {
	for z := min[2]; z <= max[2]; z++ {
		for y := min[1]; y <= max[1]; y++ {
			for x := min[0]; x <= max[0]; x++ {
				g.Set(x, y, z, m)
			}
		}
	}
}

func TestComponentsAndCavities(t *testing.T) {
	g := newTestGrid(t, 10, 10, 10)
	// A solid block with a 2x2x2 internal void.
	fillBox(g, [3]int{1, 1, 1}, [3]int{8, 8, 8}, Model)
	fillBox(g, [3]int{4, 4, 4}, [3]int{5, 5, 5}, Empty)

	comps := g.Components(Model)
	if len(comps) != 1 {
		t.Fatalf("model components = %d, want 1", len(comps))
	}
	if comps[0].Voxels != 8*8*8-8 {
		t.Errorf("model voxels = %d", comps[0].Voxels)
	}
	cavities := g.InternalCavities()
	if len(cavities) != 1 {
		t.Fatalf("cavities = %d, want 1", len(cavities))
	}
	if cavities[0].Voxels != 8 {
		t.Errorf("cavity voxels = %d, want 8", cavities[0].Voxels)
	}
	if cavities[0].TouchesBoundary {
		t.Error("internal cavity must not touch boundary")
	}
	wb := cavities[0].BoundsWorld(g)
	if !geom.ApproxEq(wb.Size().X, 2, 1e-9) {
		t.Errorf("cavity world size = %v", wb.Size())
	}
	// Porosity: 8 void / (504 model + 8 void).
	want := 8.0 / 512.0
	if got := g.Porosity(); math.Abs(got-want) > 1e-12 {
		t.Errorf("porosity = %v, want %v", got, want)
	}
}

func TestComponentsSeparate(t *testing.T) {
	g := newTestGrid(t, 10, 4, 4)
	fillBox(g, [3]int{0, 0, 0}, [3]int{2, 3, 3}, Model)
	fillBox(g, [3]int{6, 0, 0}, [3]int{9, 3, 3}, Model)
	comps := g.Components(Model)
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	if comps[0].Voxels < comps[1].Voxels {
		t.Error("components not sorted by size")
	}
	if !comps[0].TouchesBoundary {
		t.Error("boundary block should touch boundary")
	}
}

func TestDiagonalNotConnected(t *testing.T) {
	g := newTestGrid(t, 4, 4, 4)
	g.Set(0, 0, 0, Model)
	g.Set(1, 1, 0, Model) // diagonal neighbour: 6-connectivity keeps apart
	if got := len(g.Components(Model)); got != 2 {
		t.Errorf("diagonal components = %d, want 2", got)
	}
}

func TestCrossSectionArea(t *testing.T) {
	g := newTestGrid(t, 6, 5, 4)
	fillBox(g, [3]int{2, 0, 0}, [3]int{3, 4, 3}, Model)
	if got := g.CrossSectionArea(2); !geom.ApproxEq(got, 20, 1e-12) {
		t.Errorf("cross-section = %v, want 20", got)
	}
	if got := g.CrossSectionArea(0); got != 0 {
		t.Errorf("empty cross-section = %v", got)
	}
	if got := g.CrossSectionArea(-1); got != 0 {
		t.Errorf("out-of-range cross-section = %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := newTestGrid(t, 3, 3, 3)
	g.Set(0, 0, 0, Model)
	c := g.Clone()
	c.Set(0, 0, 0, Empty)
	if g.At(0, 0, 0) != Model {
		t.Error("Clone should not share storage")
	}
}

func TestMaterialString(t *testing.T) {
	if Empty.String() != "empty" || Model.String() != "model" || Support.String() != "support" {
		t.Error("Material.String misbehaves")
	}
}

func TestPorosityNoModel(t *testing.T) {
	g := newTestGrid(t, 3, 3, 3)
	if g.Porosity() != 0 {
		t.Error("empty grid porosity should be 0")
	}
}
