// Package voxel provides dense 3D occupancy grids used by the virtual
// printer for material deposition and by the testing stage for
// CT-scan-style non-destructive inspection (Table 1, "Testing" row).
package voxel

import (
	"fmt"

	"obfuscade/internal/geom"
)

// Material labels the content of one voxel.
type Material uint8

const (
	// Empty voxels contain nothing.
	Empty Material = iota
	// Model voxels contain build material (ABS / VeroClear).
	Model
	// Support voxels contain dissolvable support material.
	Support
)

// String implements fmt.Stringer.
func (m Material) String() string {
	switch m {
	case Empty:
		return "empty"
	case Model:
		return "model"
	case Support:
		return "support"
	default:
		return fmt.Sprintf("Material(%d)", int(m))
	}
}

// Grid is a dense voxel grid. Cell (0,0,0)'s minimum corner sits at
// Origin; the in-plane cell size is Cell and the vertical size is CellZ
// (layer height), matching the anisotropic resolution of layered
// manufacturing.
type Grid struct {
	Origin     geom.Vec3
	Cell       float64
	CellZ      float64
	NX, NY, NZ int
	cells      []Material
}

// NewGrid allocates a grid covering the given bounds.
func NewGrid(bounds geom.AABB, cell, cellZ float64) (*Grid, error) {
	if cell <= 0 || cellZ <= 0 {
		return nil, fmt.Errorf("voxel: cell sizes must be positive (%g, %g)", cell, cellZ)
	}
	size := bounds.Size()
	nx := int(size.X/cell) + 1
	ny := int(size.Y/cell) + 1
	nz := int(size.Z/cellZ) + 1
	if nx <= 0 || ny <= 0 || nz <= 0 {
		return nil, fmt.Errorf("voxel: empty bounds")
	}
	total := nx * ny * nz
	if total > 200_000_000 {
		return nil, fmt.Errorf("voxel: %d voxels exceed sanity limit", total)
	}
	return &Grid{
		Origin: bounds.Min,
		Cell:   cell,
		CellZ:  cellZ,
		NX:     nx, NY: ny, NZ: nz,
		cells: getCells(total),
	}, nil
}

func (g *Grid) idx(x, y, z int) int { return (z*g.NY+y)*g.NX + x }

// In reports whether the voxel coordinates are inside the grid.
func (g *Grid) In(x, y, z int) bool {
	return x >= 0 && y >= 0 && z >= 0 && x < g.NX && y < g.NY && z < g.NZ
}

// At returns the material at voxel (x, y, z); Empty outside the grid.
func (g *Grid) At(x, y, z int) Material {
	if !g.In(x, y, z) {
		return Empty
	}
	return g.cells[g.idx(x, y, z)]
}

// Set stores the material at (x, y, z); out-of-grid writes are ignored.
func (g *Grid) Set(x, y, z int, m Material) {
	if g.In(x, y, z) {
		g.cells[g.idx(x, y, z)] = m
	}
}

// Count returns the number of voxels with the given material.
func (g *Grid) Count(m Material) int {
	n := 0
	for _, c := range g.cells {
		if c == m {
			n++
		}
	}
	return n
}

// VoxelVolume returns the volume of a single voxel in mm^3.
func (g *Grid) VoxelVolume() float64 { return g.Cell * g.Cell * g.CellZ }

// Volume returns the total volume of voxels with the given material.
func (g *Grid) Volume(m Material) float64 {
	return float64(g.Count(m)) * g.VoxelVolume()
}

// Center returns the world position of a voxel centre.
func (g *Grid) Center(x, y, z int) geom.Vec3 {
	return geom.V3(
		g.Origin.X+(float64(x)+0.5)*g.Cell,
		g.Origin.Y+(float64(y)+0.5)*g.Cell,
		g.Origin.Z+(float64(z)+0.5)*g.CellZ,
	)
}

// Locate returns the voxel containing world point p (may be out of grid).
func (g *Grid) Locate(p geom.Vec3) (x, y, z int) {
	return int((p.X - g.Origin.X) / g.Cell),
		int((p.Y - g.Origin.Y) / g.Cell),
		int((p.Z - g.Origin.Z) / g.CellZ)
}

// Replace rewrites every voxel of material from to material to and
// returns the number changed (e.g. washing out dissolvable support).
func (g *Grid) Replace(from, to Material) int {
	n := 0
	for i, c := range g.cells {
		if c == from {
			g.cells[i] = to
			n++
		}
	}
	return n
}

// Clone returns a deep copy of the grid. The copy draws from the same
// freelist as NewGrid and can be Released independently.
func (g *Grid) Clone() *Grid {
	ng := *g
	ng.cells = getCells(len(g.cells))
	copy(ng.cells, g.cells)
	return &ng
}

// Component is one connected region of voxels of a single material
// (6-connectivity).
type Component struct {
	Material Material
	// Voxels is the voxel count.
	Voxels int
	// TouchesBoundary reports whether the component reaches the grid
	// boundary (an external region rather than an internal cavity).
	TouchesBoundary bool
	// Bounds is the voxel-space bounding box {min, max} inclusive.
	MinV, MaxV [3]int
	// Seed is one voxel of the component.
	Seed [3]int
}

// BoundsWorld returns the world-space bounding box of the component.
func (c *Component) BoundsWorld(g *Grid) geom.AABB {
	return geom.AABB{
		Min: geom.V3(
			g.Origin.X+float64(c.MinV[0])*g.Cell,
			g.Origin.Y+float64(c.MinV[1])*g.Cell,
			g.Origin.Z+float64(c.MinV[2])*g.CellZ,
		),
		Max: geom.V3(
			g.Origin.X+float64(c.MaxV[0]+1)*g.Cell,
			g.Origin.Y+float64(c.MaxV[1]+1)*g.Cell,
			g.Origin.Z+float64(c.MaxV[2]+1)*g.CellZ,
		),
	}
}

// Components labels the 6-connected components of the given material and
// returns them sorted by descending size.
func (g *Grid) Components(m Material) []Component {
	sc := ccScratchPool.Get().(*ccScratch)
	defer ccScratchPool.Put(sc)
	visited := sc.getVisited(len(g.cells))
	var comps []Component
	stack := sc.stack[:0]
	defer func() { sc.stack = stack }()
	for z := 0; z < g.NZ; z++ {
		for y := 0; y < g.NY; y++ {
			for x := 0; x < g.NX; x++ {
				i := g.idx(x, y, z)
				if visited[i] || g.cells[i] != m {
					continue
				}
				comp := Component{
					Material: m,
					MinV:     [3]int{x, y, z},
					MaxV:     [3]int{x, y, z},
					Seed:     [3]int{x, y, z},
				}
				stack = stack[:0]
				stack = append(stack, [3]int{x, y, z})
				visited[i] = true
				for len(stack) > 0 {
					v := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					comp.Voxels++
					for d := 0; d < 3; d++ {
						if v[d] < comp.MinV[d] {
							comp.MinV[d] = v[d]
						}
						if v[d] > comp.MaxV[d] {
							comp.MaxV[d] = v[d]
						}
					}
					if v[0] == 0 || v[1] == 0 || v[2] == 0 ||
						v[0] == g.NX-1 || v[1] == g.NY-1 || v[2] == g.NZ-1 {
						comp.TouchesBoundary = true
					}
					for _, d := range [6][3]int{
						{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1},
					} {
						nx, ny, nz := v[0]+d[0], v[1]+d[1], v[2]+d[2]
						if !g.In(nx, ny, nz) {
							continue
						}
						ni := g.idx(nx, ny, nz)
						if visited[ni] || g.cells[ni] != m {
							continue
						}
						visited[ni] = true
						stack = append(stack, [3]int{nx, ny, nz})
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	// Sort by descending size (insertion sort; component counts are tiny).
	for i := 1; i < len(comps); i++ {
		for j := i; j > 0 && comps[j].Voxels > comps[j-1].Voxels; j-- {
			comps[j], comps[j-1] = comps[j-1], comps[j]
		}
	}
	return comps
}

// InternalCavities returns empty components fully enclosed by material —
// what an X-ray/CT inspection of the printed artifact reveals. This is
// the genuine-part authentication check of ObfusCADe: the washed-out
// sphere leaves a detectable internal cavity.
func (g *Grid) InternalCavities() []Component {
	var out []Component
	for _, c := range g.Components(Empty) {
		if !c.TouchesBoundary {
			out = append(out, c)
		}
	}
	return out
}

// Porosity returns the fraction of void volume inside the material
// envelope: internal empty voxels / (model + internal empty).
func (g *Grid) Porosity() float64 {
	model := g.Count(Model)
	if model == 0 {
		return 0
	}
	internal := 0
	for _, c := range g.InternalCavities() {
		internal += c.Voxels
	}
	return float64(internal) / float64(model+internal)
}

// CenterOfMass returns the centroid of the model-material voxels — the
// balance point a simple scale-and-pivot inspection measures. A hidden
// off-centre cavity shifts it detectably even without a CT scanner.
func (g *Grid) CenterOfMass() (geom.Vec3, bool) {
	var sum geom.Vec3
	n := 0
	for z := 0; z < g.NZ; z++ {
		for y := 0; y < g.NY; y++ {
			for x := 0; x < g.NX; x++ {
				if g.At(x, y, z) == Model {
					sum = sum.Add(g.Center(x, y, z))
					n++
				}
			}
		}
	}
	if n == 0 {
		return geom.Vec3{}, false
	}
	return sum.Scale(1 / float64(n)), true
}

// CrossSectionArea returns the model-material area of the voxel column
// plane x = ix (area in mm^2). Useful for weakest-section analysis.
func (g *Grid) CrossSectionArea(ix int) float64 {
	if ix < 0 || ix >= g.NX {
		return 0
	}
	n := 0
	for z := 0; z < g.NZ; z++ {
		for y := 0; y < g.NY; y++ {
			if g.At(ix, y, z) == Model {
				n++
			}
		}
	}
	return float64(n) * g.Cell * g.CellZ
}
