package voxel

import (
	"strings"
	"testing"

	"obfuscade/internal/geom"
)

func TestSectionASCII(t *testing.T) {
	g, err := NewGrid(geom.AABB{Min: geom.V3(0, 0, 0), Max: geom.V3(9.5, 9.5, 9.5)}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	fillBox(g, [3]int{2, 2, 2}, [3]int{7, 7, 7}, Model)
	g.Set(5, 5, 5, Support)

	out, err := g.SectionASCII(AxisZ, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != g.NY {
		t.Fatalf("lines = %d, want %d", len(lines), g.NY)
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, "s") || !strings.Contains(out, ".") {
		t.Errorf("section missing glyphs:\n%s", out)
	}
	// Orientation: the top output row corresponds to the highest v.
	if lines[0] != strings.Repeat(".", g.NX) {
		t.Errorf("top row should be empty: %q", lines[0])
	}

	for _, axis := range []Axis{AxisX, AxisY} {
		if _, err := g.SectionASCII(axis, 5, 0); err != nil {
			t.Errorf("axis %d: %v", axis, err)
		}
	}
}

func TestSectionASCIIErrors(t *testing.T) {
	g, _ := NewGrid(geom.AABB{Min: geom.V3(0, 0, 0), Max: geom.V3(4, 4, 4)}, 1, 1)
	if _, err := g.SectionASCII(AxisZ, 99, 0); err == nil {
		t.Error("expected error for out-of-range index")
	}
	if _, err := g.SectionASCII(Axis(9), 0, 0); err == nil {
		t.Error("expected error for bad axis")
	}
}

func TestSectionASCIIDownsample(t *testing.T) {
	g, _ := NewGrid(geom.AABB{Min: geom.V3(0, 0, 0), Max: geom.V3(399.5, 9.5, 0.5)}, 1, 1)
	fillBox(g, [3]int{0, 0, 0}, [3]int{399, 9, 0}, Model)
	g.Set(200, 5, 0, Support) // single support voxel hidden behind model in the block
	out, err := g.SectionASCII(AxisZ, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	for _, l := range lines {
		if len(l) > 100 {
			t.Fatalf("line width %d exceeds cap", len(l))
		}
	}
	// Model wins during downsampling.
	if strings.Contains(out, "s") {
		t.Error("support should be masked by model when downsampling")
	}
}
