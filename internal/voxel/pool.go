// Freelists for the two dominant allocation sources of the virtual
// printer: grid cell storage (one multi-megabyte []Material per build)
// and the Components flood-fill scratch (a visited bitmap the size of the
// grid plus a traversal stack, formerly allocated per call).
//
// Pooling is invisible in every deterministic artifact: recycled storage
// is cleared before use, pool hits are never counted (sync.Pool reuse
// depends on GC timing and scheduling, so a hit counter would break the
// serial-equals-parallel metrics contract), and a released grid fails
// loudly (nil cells) if used again.
package voxel

import "sync"

// cellPool recycles grid cell storage between builds.
var cellPool sync.Pool

// getCells returns a zeroed []Material of the given length, recycling
// pooled storage when its capacity suffices.
func getCells(total int) []Material {
	if v := cellPool.Get(); v != nil {
		c := v.([]Material)
		if cap(c) >= total {
			c = c[:total]
			clear(c)
			return c
		}
	}
	return make([]Material, total)
}

// Release returns the grid's cell storage to the package freelist and
// leaves the grid unusable (any further access panics on the nil cells
// slice — loud, rather than silently reading recycled memory). Callers
// that retain the grid in a result — e.g. a Build a caller will inspect —
// must not release it; the quality matrix releases per-key grids after
// grading and provenance capture, when nothing downstream reads voxels.
func (g *Grid) Release() {
	if g == nil || g.cells == nil {
		return
	}
	cellPool.Put(g.cells[:0])
	g.cells = nil
}

// ccScratch is the reusable working set of one Components call.
type ccScratch struct {
	visited []bool
	stack   [][3]int
}

var ccScratchPool = sync.Pool{New: func() any { return new(ccScratch) }}

// getVisited returns sc.visited resized to n and zeroed.
func (sc *ccScratch) getVisited(n int) []bool {
	if cap(sc.visited) < n {
		sc.visited = make([]bool, n)
	} else {
		sc.visited = sc.visited[:n]
		clear(sc.visited)
	}
	return sc.visited
}
