package voxel

import (
	"sync"
	"testing"

	"obfuscade/internal/geom"
)

func testBounds() geom.AABB {
	return geom.AABB{Min: geom.V3(0, 0, 0), Max: geom.V3(4, 3, 2)}
}

// Recycled grids must come back fully zeroed: a dirty freelist would
// materialise phantom voxels in the next build.
func TestGridReleaseRecyclesZeroed(t *testing.T) {
	g, err := NewGrid(testBounds(), 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < g.NX; x++ {
		g.Set(x, 1, 1, Model)
	}
	g.Release()
	if g.cells != nil {
		t.Fatal("Release left cells attached")
	}
	g.Release() // double release is a no-op
	ng, err := NewGrid(testBounds(), 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if n := ng.Count(Model) + ng.Count(Support); n != 0 {
		t.Fatalf("recycled grid has %d stale voxels", n)
	}
}

// Using a released grid must fail loudly, not read recycled memory.
func TestReleasedGridPanics(t *testing.T) {
	g, err := NewGrid(testBounds(), 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	g.Release()
	defer func() {
		if recover() == nil {
			t.Error("Set on a released grid did not panic")
		}
	}()
	g.Set(0, 0, 0, Model)
}

// The pooled Components scratch must not leak state: repeated calls on
// the same grid return identical component lists, including under
// concurrent use from many goroutines (tier-2 runs this with -race).
func TestComponentsPooledScratch(t *testing.T) {
	g, err := NewGrid(geom.AABB{Min: geom.V3(0, 0, 0), Max: geom.V3(10, 10, 10)}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Solid block with two internal cavities of different sizes.
	for z := 0; z < g.NZ; z++ {
		for y := 0; y < g.NY; y++ {
			for x := 0; x < g.NX; x++ {
				g.Set(x, y, z, Model)
			}
		}
	}
	g.Set(2, 2, 2, Empty)
	g.Set(5, 5, 5, Empty)
	g.Set(5, 5, 6, Empty)

	want := g.Components(Empty)
	if len(want) != 2 || want[0].Voxels != 2 || want[1].Voxels != 1 {
		t.Fatalf("unexpected baseline components: %+v", want)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				got := g.Components(Empty)
				if len(got) != len(want) {
					t.Errorf("worker %d: %d components, want %d", w, len(got), len(want))
					return
				}
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("worker %d: component %d = %+v, want %+v", w, i, got[i], want[i])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// Clone must allocate independent storage even when drawing from the
// freelist, and a released clone must not corrupt the original.
func TestCloneIndependentOfFreelist(t *testing.T) {
	g, err := NewGrid(testBounds(), 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	g.Set(1, 1, 1, Model)
	c := g.Clone()
	c.Set(1, 1, 1, Support)
	if g.At(1, 1, 1) != Model {
		t.Fatal("clone shares storage with original")
	}
	c.Release()
	if g.At(1, 1, 1) != Model {
		t.Fatal("releasing the clone corrupted the original")
	}
}
