package voxel

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"obfuscade/internal/geom"
)

// The VOXL binary format: a small header followed by run-length-encoded
// material bytes. Printed-artifact grids are dominated by long runs of a
// single material, so RLE compresses them by two to three orders of
// magnitude — cheap enough to archive every inspected build alongside its
// CT report.

const voxlMagic = "VOXL1\n"

// Save serialises the grid to w.
func (g *Grid) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(voxlMagic); err != nil {
		return fmt.Errorf("voxel: save: %w", err)
	}
	head := []any{
		g.Origin.X, g.Origin.Y, g.Origin.Z,
		g.Cell, g.CellZ,
		int64(g.NX), int64(g.NY), int64(g.NZ),
	}
	for _, v := range head {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("voxel: save header: %w", err)
		}
	}
	// RLE: (count uint32, material byte) pairs over the flat cell array.
	i := 0
	for i < len(g.cells) {
		m := g.cells[i]
		j := i
		for j < len(g.cells) && g.cells[j] == m && j-i < (1<<31) {
			j++
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(j-i)); err != nil {
			return fmt.Errorf("voxel: save run: %w", err)
		}
		if err := bw.WriteByte(byte(m)); err != nil {
			return fmt.Errorf("voxel: save run: %w", err)
		}
		i = j
	}
	return bw.Flush()
}

// Marshal serialises the grid to bytes.
func (g *Grid) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Load parses a grid saved by Save.
func Load(r io.Reader) (*Grid, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(voxlMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("voxel: load magic: %w", err)
	}
	if string(magic) != voxlMagic {
		return nil, fmt.Errorf("voxel: bad magic %q", magic)
	}
	var ox, oy, oz, cell, cellZ float64
	var nx, ny, nz int64
	for _, v := range []any{&ox, &oy, &oz, &cell, &cellZ, &nx, &ny, &nz} {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("voxel: load header: %w", err)
		}
	}
	if nx <= 0 || ny <= 0 || nz <= 0 || cell <= 0 || cellZ <= 0 {
		return nil, fmt.Errorf("voxel: invalid header dims %dx%dx%d", nx, ny, nz)
	}
	total := nx * ny * nz
	if total > 200_000_000 {
		return nil, fmt.Errorf("voxel: %d voxels exceed sanity limit", total)
	}
	g := &Grid{
		Origin: geom.V3(ox, oy, oz),
		Cell:   cell, CellZ: cellZ,
		NX: int(nx), NY: int(ny), NZ: int(nz),
		cells: make([]Material, total),
	}
	i := int64(0)
	for i < total {
		var count uint32
		if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
			return nil, fmt.Errorf("voxel: load run: %w", err)
		}
		mb, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("voxel: load run byte: %w", err)
		}
		if mb > byte(Support) {
			return nil, fmt.Errorf("voxel: invalid material %d", mb)
		}
		if int64(count) == 0 || i+int64(count) > total {
			return nil, fmt.Errorf("voxel: run overflows grid")
		}
		for k := int64(0); k < int64(count); k++ {
			g.cells[i+k] = Material(mb)
		}
		i += int64(count)
	}
	return g, nil
}

// Unmarshal parses grid bytes.
func Unmarshal(data []byte) (*Grid, error) {
	return Load(bytes.NewReader(data))
}

// Equal reports whether two grids have identical geometry and content.
func (g *Grid) Equal(o *Grid) bool {
	if o == nil || g.NX != o.NX || g.NY != o.NY || g.NZ != o.NZ ||
		g.Cell != o.Cell || g.CellZ != o.CellZ || !g.Origin.Eq(o.Origin, 0) {
		return false
	}
	return bytes.Equal(materialBytes(g.cells), materialBytes(o.cells))
}

func materialBytes(m []Material) []byte {
	out := make([]byte, len(m))
	for i, v := range m {
		out[i] = byte(v)
	}
	return out
}
