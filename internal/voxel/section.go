package voxel

import (
	"fmt"
	"strings"
)

// Axis selects a section plane orientation.
type Axis int

const (
	// AxisX sections at constant x (a y-z plane).
	AxisX Axis = iota
	// AxisY sections at constant y (an x-z plane).
	AxisY
	// AxisZ sections at constant z (an x-y plane, i.e. one build layer).
	AxisZ
)

// sectionGlyphs maps materials to their rendering characters: '.' empty,
// '#' model, 's' support.
func glyph(m Material) byte {
	switch m {
	case Model:
		return '#'
	case Support:
		return 's'
	default:
		return '.'
	}
}

// SectionASCII renders one cross-section of the grid as ASCII art — the
// textual analogue of the paper's cut-open photographs (Fig. 10c/d).
// index selects the slice along the axis; maxCols caps the output width
// by downsampling (0 means 120).
func (g *Grid) SectionASCII(axis Axis, index, maxCols int) (string, error) {
	if maxCols <= 0 {
		maxCols = 120
	}
	var nu, nv int
	var at func(u, v int) Material
	switch axis {
	case AxisX:
		if index < 0 || index >= g.NX {
			return "", fmt.Errorf("voxel: x index %d out of [0,%d)", index, g.NX)
		}
		nu, nv = g.NY, g.NZ
		at = func(u, v int) Material { return g.At(index, u, v) }
	case AxisY:
		if index < 0 || index >= g.NY {
			return "", fmt.Errorf("voxel: y index %d out of [0,%d)", index, g.NY)
		}
		nu, nv = g.NX, g.NZ
		at = func(u, v int) Material { return g.At(u, index, v) }
	case AxisZ:
		if index < 0 || index >= g.NZ {
			return "", fmt.Errorf("voxel: z index %d out of [0,%d)", index, g.NZ)
		}
		nu, nv = g.NX, g.NY
		at = func(u, v int) Material { return g.At(u, v, index) }
	default:
		return "", fmt.Errorf("voxel: unknown axis %d", int(axis))
	}
	step := 1
	if nu > maxCols {
		step = (nu + maxCols - 1) / maxCols
	}
	var sb strings.Builder
	// Render with v (height) decreasing so "up" is up.
	for v := nv - 1; v >= 0; v -= step {
		for u := 0; u < nu; u += step {
			// Downsampling rule: model wins, then support, then empty,
			// so thin features stay visible.
			best := Empty
			for du := 0; du < step && u+du < nu; du++ {
				for dv := 0; dv < step && v-dv >= 0; dv++ {
					m := at(u+du, v-dv)
					if m == Model {
						best = Model
					} else if m == Support && best == Empty {
						best = Support
					}
				}
			}
			sb.WriteByte(glyph(best))
		}
		sb.WriteByte('\n')
	}
	return sb.String(), nil
}
