package supplychain

import (
	"fmt"
	"sort"

	"obfuscade/internal/report"
)

// RiskScore quantifies one registry entry with the standard
// likelihood x impact model used in security risk assessments.
type RiskScore struct {
	Risk Risk
	// Likelihood and Impact are on a 1-5 scale.
	Likelihood, Impact int
}

// Severity is the product likelihood x impact (1-25).
func (r RiskScore) Severity() int { return r.Likelihood * r.Impact }

// Level buckets the severity: low (<6), medium (<12), high (<20),
// critical (>=20).
func (r RiskScore) Level() string {
	switch s := r.Severity(); {
	case s >= 20:
		return "critical"
	case s >= 12:
		return "high"
	case s >= 6:
		return "medium"
	default:
		return "low"
	}
}

// ScoredRegistry returns the Table 1 registry with likelihood/impact
// scores reflecting the paper's discussion: counterfeiting and IP theft
// carry "unbounded financial loss" (maximum impact), cloud-exposed
// digital artifacts are the most likely targets, and physical-access
// attacks are rarer.
func ScoredRegistry() []RiskScore {
	score := map[Stage][2]int{ // default per-stage {likelihood, impact}
		StageCAD:     {4, 5},
		StageSTL:     {4, 4},
		StageSlicing: {3, 4},
		StagePrinter: {2, 4},
		StageTesting: {2, 3},
	}
	var out []RiskScore
	for _, r := range Registry() {
		s := score[r.Stage]
		rs := RiskScore{Risk: r, Likelihood: s[0], Impact: s[1]}
		// IP theft and counterfeiting rows carry the unbounded-loss
		// impact the paper highlights.
		if containsAny(r.Description, "IP theft", "counterfeit", "reverse-engineering", "information leakage") {
			rs.Impact = 5
		}
		out = append(out, rs)
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Severity() > out[j].Severity()
	})
	return out
}

func containsAny(s string, subs ...string) bool {
	for _, sub := range subs {
		if len(sub) > 0 && len(s) >= len(sub) && indexOf(s, sub) >= 0 {
			return true
		}
	}
	return false
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// RiskMatrix renders the scored registry ranked by severity.
func RiskMatrix() *report.Table {
	t := &report.Table{
		Title:   "Quantified risk matrix (likelihood x impact, ranked)",
		Headers: []string{"Severity", "Level", "Stage", "Risk"},
	}
	for _, rs := range ScoredRegistry() {
		t.AddRow(
			fmt.Sprintf("%d", rs.Severity()),
			rs.Level(),
			rs.Risk.Stage.String(),
			rs.Risk.Description,
		)
	}
	return t
}
