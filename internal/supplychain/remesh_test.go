package supplychain

import (
	"testing"

	"obfuscade/internal/brep"
	"obfuscade/internal/mesh"
	"obfuscade/internal/slicer"
	"obfuscade/internal/tessellate"
)

func splitBarSoup(t *testing.T) *mesh.Mesh {
	t.Helper()
	p, err := brep.NewTensileBar("bar", brep.DefaultTensileBar())
	if err != nil {
		t.Fatal(err)
	}
	s, err := brep.SplitSplineThroughGauge(brep.DefaultTensileBar(), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := brep.SplitBySpline(p, "bar", s); err != nil {
		t.Fatal(err)
	}
	m, err := tessellate.Tessellate(p, tessellate.Coarse)
	if err != nil {
		t.Fatal(err)
	}
	soup := mesh.Shell{Name: "import"}
	for _, sh := range m.Shells {
		soup.Tris = append(soup.Tris, sh.Tris...)
	}
	return &mesh.Mesh{Shells: []mesh.Shell{soup}}
}

// The counterfeiter's "clean the stolen STL by remeshing" countermeasure
// fails: the two split bodies sample the shared spline at staggered
// parameters, so no clustering size merges their boundaries — the split
// survives — while the clustering deforms the whole surface by up to half
// the cluster size and leaves geometry-review artifacts. The defense is
// robust against this attack class (documented in EXPERIMENTS.md).
func TestRemeshAttackAnalysis(t *testing.T) {
	prevDev := 0.0
	for _, cluster := range []float64{0.02, 0.08, 0.2} {
		m := splitBarSoup(t)
		orig := m.Clone()
		if err := RemeshAttack(m, cluster); err != nil {
			t.Fatal(err)
		}
		// 1. The split survives: still two edge-connected bodies.
		comps := m.Shells[0].SplitEdgeComponents(1e-7)
		if len(comps) != 2 {
			t.Errorf("cluster %g: components = %d, want 2 (split should survive)",
				cluster, len(comps))
		}
		// 2. Dimensional damage grows with the cluster size.
		dev := MaxSurfaceDeviation(orig, m)
		if dev < prevDev {
			t.Errorf("cluster %g: deviation %g should grow (prev %g)", cluster, dev, prevDev)
		}
		if cluster >= 0.2 && dev < 0.1 {
			t.Errorf("cluster %g: deviation %g implausibly small", cluster, dev)
		}
		prevDev = dev
		// 3. Geometry review flags the tampering.
		if issues := m.Validate(1e-9); len(issues) == 0 {
			t.Errorf("cluster %g: remeshed file passed geometry review", cluster)
		}
		// 4. The seam still slices as two separate bodies.
		sliced, err := slicer.Slice(&mesh.Mesh{Shells: comps}, slicer.DefaultOptions())
		if err != nil {
			t.Fatalf("cluster %g: %v", cluster, err)
		}
		if len(sliced.BodyNames) != 2 {
			t.Errorf("cluster %g: sliced bodies = %d", cluster, len(sliced.BodyNames))
		}
		st := sliced.InterfaceStatsBetween(sliced.BodyNames[0], sliced.BodyNames[1])
		if st.Layers == 0 {
			t.Errorf("cluster %g: seam interface disappeared", cluster)
		}
	}
}

func TestRemeshAttackErrors(t *testing.T) {
	m := splitBarSoup(t)
	if err := RemeshAttack(m, 0); err == nil {
		t.Error("expected error for zero cluster")
	}
}
