package supplychain

import (
	"bytes"
	"strings"
	"testing"
)

func ticketFixture(t *testing.T) (*Signer, string, []JobTicket, *TicketValidator) {
	t.Helper()
	signer, err := NewSigner(bytes.Repeat([]byte{3}, 32))
	if err != nil {
		t.Fatal(err)
	}
	digest := Digest([]byte("the design"))
	tickets, err := signer.IssueTickets(digest, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewTicketValidator(signer.Public(), digest)
	if err != nil {
		t.Fatal(err)
	}
	return signer, digest, tickets, v
}

func TestTicketsAuthorizeOnce(t *testing.T) {
	_, _, tickets, v := ticketFixture(t)
	for _, tk := range tickets {
		if err := v.Authorize(tk); err != nil {
			t.Fatalf("ticket %d rejected: %v", tk.Serial, err)
		}
	}
	if v.Used() != 3 {
		t.Errorf("used = %d, want 3", v.Used())
	}
	// The 4th print — overproduction — replays a ticket and fails.
	if err := v.Authorize(tickets[0]); err == nil {
		t.Error("replayed ticket accepted: overproduction not prevented")
	}
}

func TestTicketForgeryRejected(t *testing.T) {
	_, digest, tickets, v := ticketFixture(t)
	forged := tickets[0]
	forged.Serial = 9999 // signature no longer matches
	if err := v.Authorize(forged); err == nil {
		t.Error("forged serial accepted")
	}
	// A ticket signed by a different key.
	other, _ := NewSigner(bytes.Repeat([]byte{4}, 32))
	fake, err := other.IssueTickets(digest, 1, 500)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Authorize(fake[0]); err == nil {
		t.Error("ticket from wrong signer accepted")
	}
}

func TestTicketWrongDesignRejected(t *testing.T) {
	signer, _, _, v := ticketFixture(t)
	otherDigest := Digest([]byte("another design"))
	tickets, err := signer.IssueTickets(otherDigest, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Authorize(tickets[0]); err == nil {
		t.Error("ticket for different design accepted")
	}
}

func TestTicketIssueErrors(t *testing.T) {
	signer, _, _, _ := ticketFixture(t)
	if _, err := signer.IssueTickets("", 1, 0); err == nil {
		t.Error("expected error for empty digest")
	}
	if _, err := signer.IssueTickets("d", 0, 0); err == nil {
		t.Error("expected error for zero tickets")
	}
	if _, err := NewTicketValidator(nil, "d"); err == nil {
		t.Error("expected error for bad key")
	}
	if _, err := NewTicketValidator(signer.Public(), ""); err == nil {
		t.Error("expected error for empty digest")
	}
}

func TestScoredRegistry(t *testing.T) {
	scored := ScoredRegistry()
	if len(scored) != len(Registry()) {
		t.Fatalf("scored entries = %d, want %d", len(scored), len(Registry()))
	}
	// Ranked by severity, descending.
	for i := 1; i < len(scored); i++ {
		if scored[i].Severity() > scored[i-1].Severity() {
			t.Fatal("registry not ranked by severity")
		}
	}
	// IP-theft rows carry the paper's maximum impact.
	foundMax := false
	for _, rs := range scored {
		if rs.Impact == 5 && rs.Likelihood >= 4 {
			foundMax = true
		}
		if rs.Likelihood < 1 || rs.Likelihood > 5 || rs.Impact < 1 || rs.Impact > 5 {
			t.Fatalf("score out of scale: %+v", rs)
		}
		if rs.Level() == "" {
			t.Fatal("empty level")
		}
	}
	if !foundMax {
		t.Error("no maximum-impact IP-theft risk found")
	}
	out := RiskMatrix().Render()
	if !strings.Contains(out, "critical") && !strings.Contains(out, "high") {
		t.Errorf("risk matrix lacks high-severity rows:\n%s", out)
	}
}
