package supplychain

import (
	"strings"
	"testing"

	"obfuscade/internal/geom"
	"obfuscade/internal/mesh"
	"obfuscade/internal/stego"
)

// The attack/defense pair of the stego-exfiltration row: the attack
// hides data inside the geometry-neutral freedom of a design file (so
// no geometric mitigation fires), the registered sanitize mitigation
// destroys the channels, and the defender's detector flags the stego
// file before sanitization.
func TestStegoExfiltrationAttackAndSanitize(t *testing.T) {
	m := &mesh.Mesh{}
	for b := 0; b < 10; b++ {
		fb := float64(b)
		m.Shells = append(m.Shells, mesh.BoxShell(
			"s", "body", geom.V3(fb*9, fb*5, 0), geom.V3(fb*9+5+fb/4, fb*5+3, 2+fb/8)))
	}
	payload := []byte("exfiltrated process parameters")
	stolen, err := StegoExfiltrationAttack(m, payload)
	if err != nil {
		t.Fatal(err)
	}
	// The attack is covert against geometric review but not against the
	// channel detector.
	rep := stego.Detect(stolen, stego.Options{})
	if !rep.Suspicious() {
		t.Fatalf("detector missed the exfiltration channel: %+v", rep)
	}
	// The payload really is carried.
	for _, ch := range []stego.Channel{stego.ChannelFacetOrder, stego.ChannelCoordLSB} {
		got, err := stego.Extract(stolen, ch, stego.Options{})
		if err != nil || string(got) != string(payload) {
			t.Fatalf("%s: attack lost its payload: %q, %v", ch, got, err)
		}
	}
	// The registered mitigation destroys both channels.
	clean := stego.Sanitize(stolen, stego.Options{})
	if rep := stego.Detect(clean, stego.Options{}); rep.Suspicious() {
		t.Fatalf("sanitized file still suspicious: %+v", rep)
	}
	for _, ch := range []stego.Channel{stego.ChannelFacetOrder, stego.ChannelCoordLSB} {
		if got, err := stego.Extract(clean, ch, stego.Options{}); err == nil {
			t.Fatalf("%s: payload %q survived the sanitize mitigation", ch, got)
		}
	}
}

// The taxonomy, catalog and registry all carry the stego pair, and the
// information-leakage wording drives the risk score to maximum impact.
func TestStegoRegisteredInTaxonomyAndRegistry(t *testing.T) {
	found := false
	Taxonomy().Walk(func(_ int, n *TaxonomyNode) {
		for _, id := range n.AttackIDs {
			if id == "stl-stego" {
				found = true
			}
		}
	})
	if !found {
		t.Fatal("taxonomy carries no stl-stego leaf")
	}
	inCatalog := false
	for _, a := range Catalog() {
		if a.ID == "stl-stego" {
			inCatalog = true
			if a.Stage != StageSTL {
				t.Fatalf("stl-stego stage = %v", a.Stage)
			}
		}
	}
	if !inCatalog {
		t.Fatal("catalog carries no stl-stego attack")
	}
	for _, sr := range ScoredRegistry() {
		if !strings.Contains(sr.Risk.Description, "Stego-channel") {
			continue
		}
		if sr.Risk.Stage != StageSTL {
			t.Fatalf("stego risk stage = %v", sr.Risk.Stage)
		}
		if sr.Impact != 5 {
			t.Fatalf("information-leakage risk impact = %d, want 5", sr.Impact)
		}
		mentionsSanitize := false
		for _, m := range sr.Risk.Mitigations {
			if strings.Contains(m, "Sanitize") {
				mentionsSanitize = true
			}
		}
		if !mentionsSanitize {
			t.Fatal("stego risk row names no sanitize mitigation")
		}
		return
	}
	t.Fatal("registry carries no stego-channel risk row")
}
