package supplychain

import (
	"context"
	"reflect"
	"testing"

	"obfuscade/internal/mech"
	"obfuscade/internal/memo"
	"obfuscade/internal/printer"
	"obfuscade/internal/tessellate"
)

// The memoized pipeline must be byte-identical to the reference path:
// the memo trades time and allocations, never content. Every stage
// artifact of every (resolution, orientation) combination is compared
// against a nil-Memo run, with the memo shared across combinations so
// cross-key reuse actually happens (same resolution, both orientations
// share one tessellation).
func TestMemoizedPipelineByteIdentical(t *testing.T) {
	part := barPart(t)
	mm := memo.New(0)
	for _, res := range []tessellate.Resolution{tessellate.Coarse, tessellate.Fine} {
		for _, o := range []mech.Orientation{mech.XY, mech.XZ} {
			pl := Pipeline{Resolution: res, Orientation: o, Printer: printer.DimensionElite()}
			ref, err := pl.Execute(part)
			if err != nil {
				t.Fatalf("%s/%v reference: %v", res.Name, o, err)
			}
			pl.Memo = mm
			got, err := pl.Execute(part)
			if err != nil {
				t.Fatalf("%s/%v memoized: %v", res.Name, o, err)
			}
			// Stage wall times are the only fields allowed to differ.
			ref.StageSeconds, got.StageSeconds = nil, nil
			if !reflect.DeepEqual(ref, got) {
				t.Errorf("%s/%v: memoized run diverges from reference", res.Name, o)
			}
		}
	}
	st := mm.Stats()
	// 2 resolutions x 2 orientations: tessellation is orientation-blind so
	// only 2 builds; the z-sweep index keys on orientation so 4 builds.
	if st.Builds != 2+4 {
		t.Errorf("memo builds = %d, want 6 (2 tess + 4 index)", st.Builds)
	}
	if st.Hits+st.Coalesced != 2 {
		t.Errorf("memo reuses = %d, want 2 (one tess hit per resolution)", st.Hits+st.Coalesced)
	}
}

// A memoized mesh is shared between keys; consumers transform their own
// clone. Mutating one run's mesh must not leak into a later run that
// reuses the memo entry.
func TestMemoizedMeshImmutable(t *testing.T) {
	part := barPart(t)
	mm := memo.New(0)
	pl := Pipeline{Resolution: tessellate.Coarse, Orientation: mech.XZ,
		Printer: printer.DimensionElite(), Memo: mm}
	first, err := pl.Execute(part)
	if err != nil {
		t.Fatal(err)
	}
	// The XZ path rotated its clone; a reuse of the same tess entry must
	// still see the unrotated master.
	again, err := pl.Execute(part)
	if err != nil {
		t.Fatal(err)
	}
	if string(first.STLBytes) != string(again.STLBytes) {
		t.Error("repeated memoized run changed STL bytes: shared mesh was mutated")
	}
	if st := mm.Stats(); st.Builds != 2 {
		t.Errorf("builds = %d, want 2 (tess + index built once, reused after)", st.Builds)
	}
}

// Memoized build closures must propagate context cancellation instead of
// caching a partial artifact.
func TestMemoizedPipelineCancellation(t *testing.T) {
	part := barPart(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pl := Pipeline{Resolution: tessellate.Coarse, Orientation: mech.XY,
		Printer: printer.DimensionElite(), Memo: memo.New(0)}
	if _, err := pl.ExecuteCtx(ctx, part); err == nil {
		t.Error("cancelled memoized run returned nil error")
	}
}
