package supplychain

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"time"

	"obfuscade/internal/brep"
	"obfuscade/internal/fea"
	"obfuscade/internal/gcode"
	"obfuscade/internal/geom"
	"obfuscade/internal/mech"
	"obfuscade/internal/memo"
	"obfuscade/internal/mesh"
	"obfuscade/internal/printer"
	"obfuscade/internal/slicer"
	"obfuscade/internal/stl"
	"obfuscade/internal/tessellate"
	"obfuscade/internal/trace"
)

// memoSchema versions the memoized stage artifacts. Bump it whenever a
// stage's output bytes change for the same inputs (the memo analogue of
// the core.PipelineVersion bump that invalidates the serving cache) so a
// long-lived memo can never serve stale geometry across a deploy.
// Per-run memos — the default the quality matrix uses — die with the run
// and need no invalidation at all.
const memoSchema = "supplychain/1"

// Pipeline is the full cloud-aware AM process chain of paper Fig. 1:
// CAD -> (FEA) -> STL -> slicing/G-code -> printing -> testing. Each
// stage's artifact is retained so attacks can be injected and mitigations
// evaluated at every hand-off.
type Pipeline struct {
	// Resolution is the CAD -> STL export setting.
	Resolution tessellate.Resolution
	// Orientation is the print orientation (paper Fig. 6).
	Orientation mech.Orientation
	// Printer is the machine profile; its layer height drives slicing.
	Printer printer.Profile
	// PrintOpts configures the virtual build.
	PrintOpts printer.Options
	// SliceOpts overrides slicing options; LayerHeight is always forced
	// to the printer profile's. Zero value uses defaults.
	SliceOpts slicer.Options
	// RunFEA enables the design-stage FEA pass (paper Fig. 3's model
	// optimisation step); adds runtime.
	RunFEA bool
	// Memo, when non-nil, memoizes the content-addressed stage artifacts
	// (tessellated master mesh, slicer z-sweep index) so near-duplicate
	// keys — same geometry at a different orientation or a repeated run —
	// share the serial prologue work instead of redoing it. Nil keeps the
	// reference path; outputs are byte-identical either way.
	Memo *memo.Memo
}

// DefaultPipeline returns the paper's baseline process: Coarse STL,
// flat x-y orientation, FDM printer, standard slicing.
func DefaultPipeline() Pipeline {
	return Pipeline{
		Resolution:  tessellate.Coarse,
		Orientation: mech.XY,
		Printer:     printer.DimensionElite(),
	}
}

// Run is the result of executing the pipeline on a part.
type Run struct {
	Part *brep.Part
	// CADBytes is the serialised native CAD file.
	CADBytes []byte
	// Mesh is the tessellated geometry after orientation.
	Mesh *mesh.Mesh
	// STLBytes is the exported binary STL.
	STLBytes []byte
	// STLStats summarises the exported file.
	STLStats stl.Stats
	// Sliced is the layer stack.
	Sliced *slicer.Result
	// Toolpaths are the per-layer tool motions.
	Toolpaths []*slicer.LayerToolpath
	// GCode is the generated program.
	GCode *gcode.Program
	// Build is the virtual print.
	Build *printer.Build
	// DesignKt is the stress concentration found by the design-stage
	// FEA (1 when RunFEA is off or no concentrator is present).
	DesignKt float64
	// StageSeconds records each stage's wall time, keyed by stage name
	// (cad, stl, slice, toolpath, gcode, print, fea). Values are
	// wall-clock-derived and excluded from determinism contracts; the
	// key set is fixed by the pipeline shape.
	StageSeconds map[string]float64
}

// Execute runs the process chain on the part. The part is not modified.
func (p Pipeline) Execute(part *brep.Part) (*Run, error) {
	return p.ExecuteCtx(context.Background(), part)
}

// ExecuteCtx is Execute with trace propagation: each stage span parents
// to the span carried by ctx (typically a per-key span of the quality
// matrix) and the per-stage wall times are retained in Run.StageSeconds
// for the provenance manifest.
func (p Pipeline) ExecuteCtx(ctx context.Context, part *brep.Part) (*Run, error) {
	if err := p.Printer.Validate(); err != nil {
		return nil, err
	}
	ctx, tsp := trace.StartSpan(ctx, "stage", "supplychain.execute")
	defer tsp.End()
	run := &Run{Part: part, DesignKt: 1, StageSeconds: map[string]float64{}}
	t0 := time.Now()
	mark := func(stage string) {
		now := time.Now()
		run.StageSeconds[stage] = now.Sub(t0).Seconds()
		t0 = now
	}

	cadBytes, err := brep.Save(part)
	if err != nil {
		return nil, fmt.Errorf("supplychain: CAD stage: %w", err)
	}
	run.CADBytes = cadBytes
	mark("cad")

	m, err := p.tessellated(ctx, part, cadBytes)
	if err != nil {
		return nil, fmt.Errorf("supplychain: STL export stage: %w", err)
	}
	if p.Orientation == mech.XZ {
		m.Transform(geom.RotateX(math.Pi / 2))
	}
	b := m.Bounds()
	m.Transform(geom.Translate(geom.V3(-b.Min.X, -b.Min.Y, -b.Min.Z)))
	run.Mesh = m

	stlBytes, err := stl.Marshal(m, stl.Binary, part.Name)
	if err != nil {
		return nil, fmt.Errorf("supplychain: STL encode: %w", err)
	}
	run.STLBytes = stlBytes
	run.STLStats = stl.StatsOf(m)
	mark("stl")

	sliceOpts := p.SliceOpts
	if sliceOpts.LayerHeight == 0 && sliceOpts.RoadWidth == 0 {
		sliceOpts = slicer.DefaultOptions()
	}
	sliceOpts.LayerHeight = p.Printer.LayerHeight
	sliceOpts.RoadWidth = p.Printer.RoadWidth
	idx, err := p.sweepIndex(ctx, m, cadBytes, sliceOpts)
	if err != nil {
		return nil, fmt.Errorf("supplychain: slicing stage: %w", err)
	}
	sliced, err := slicer.SliceIndexedCtx(ctx, m, sliceOpts, idx)
	if err != nil {
		return nil, fmt.Errorf("supplychain: slicing stage: %w", err)
	}
	run.Sliced = sliced
	mark("slice")

	paths, err := sliced.Toolpaths()
	if err != nil {
		return nil, fmt.Errorf("supplychain: toolpath stage: %w", err)
	}
	run.Toolpaths = paths
	mark("toolpath")
	prog, err := gcode.Generate(part.Name, paths, gcode.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("supplychain: G-code stage: %w", err)
	}
	run.GCode = prog
	mark("gcode")

	build, err := printer.PrintCtx(ctx, sliced, p.Printer, p.PrintOpts)
	if err != nil {
		return nil, fmt.Errorf("supplychain: printing stage: %w", err)
	}
	run.Build = build
	mark("print")

	if p.RunFEA {
		kt, err := designKt(part, build)
		if err != nil {
			return nil, fmt.Errorf("supplychain: FEA stage: %w", err)
		}
		run.DesignKt = kt
		mark("fea")
	}
	return run, nil
}

// resKey canonically encodes a Resolution for memo keys.
func resKey(r tessellate.Resolution) []byte {
	return []byte(r.Name + "|" +
		strconv.FormatFloat(r.Deviation, 'g', -1, 64) + "|" +
		strconv.FormatFloat(r.AngleDeg, 'g', -1, 64))
}

// tessellated returns the tessellated master mesh for the part, through
// the memo when one is wired. Memoized meshes are shared and immutable:
// every consumer — including the call that built the entry — receives a
// Clone, so the orientation transform downstream can never corrupt a
// value another matrix key is about to reuse.
func (p Pipeline) tessellated(ctx context.Context, part *brep.Part, cadBytes []byte) (*mesh.Mesh, error) {
	if p.Memo == nil {
		return tessellate.Tessellate(part, p.Resolution)
	}
	key := memo.Keyed("tess", memoSchema, cadBytes, resKey(p.Resolution))
	v, _, err := p.Memo.Do(ctx, key, func(context.Context) (any, int64, error) {
		m, err := tessellate.Tessellate(part, p.Resolution)
		if err != nil {
			return nil, 0, err
		}
		// 72 bytes of vertex data per triangle plus per-shell headers.
		return m, int64(m.TriangleCount())*72 + int64(len(m.Shells))*128, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*mesh.Mesh).Clone(), nil
}

// sweepIndex returns the slicer's z-sweep index for the oriented mesh,
// through the memo when one is wired; without a memo it returns nil and
// SliceIndexedCtx builds inline — exactly the reference path. The key
// derives from the same content that determined the mesh (CAD bytes,
// resolution, orientation) plus the layer height, never from the mesh
// pointer, so a hit can only ever describe identical geometry; the
// slicer's compatibility guard backstops even that with a counted
// rebuild rather than wrong output.
func (p Pipeline) sweepIndex(ctx context.Context, m *mesh.Mesh, cadBytes []byte, opts slicer.Options) (*slicer.Index, error) {
	if p.Memo == nil {
		return nil, nil
	}
	key := memo.Keyed("zidx", memoSchema, cadBytes, resKey(p.Resolution),
		[]byte(fmt.Sprint(p.Orientation)),
		[]byte(strconv.FormatFloat(opts.LayerHeight, 'g', -1, 64)))
	v, _, err := p.Memo.Do(ctx, key, func(ctx context.Context) (any, int64, error) {
		ix, err := slicer.BuildIndex(ctx, m, opts)
		if err != nil {
			return nil, 0, err
		}
		return ix, ix.SizeBytes(), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*slicer.Index), nil
}

// designKt runs the Fig. 9 slit analysis when the build contains a seam;
// pristine builds return 1.
func designKt(part *brep.Part, build *printer.Build) (float64, error) {
	if len(build.Seams) == 0 {
		return 1, nil
	}
	// Use the gauge geometry of the first prismatic body.
	var prism *brep.Prism
	for _, b := range part.Bodies {
		if pr, ok := b.Shape.(*brep.Prism); ok {
			prism = pr
			break
		}
	}
	if prism == nil {
		return 1, nil
	}
	w := prism.Top.Start().Y - prism.Bottom.Start().Y
	if w <= 0 {
		w = 6
	}
	t := prism.Z1 - prism.Z0
	seam := build.Seams[0]
	// The slit depth is the unbonded fraction of the half-width.
	depth := (1 - seam.BondQuality) * w / 4
	if depth <= 0 {
		return 1, nil
	}
	_, kt, err := fea.SplitTipAnalysis(33, w, t, 2000, 0.35, depth, 60)
	if err != nil {
		return 1, err
	}
	return kt, nil
}

// TestPrinted converts a pipeline run into a tensile specimen and tests
// it: the destructive-testing stage of Fig. 1. The material is selected
// from the printer profile and orientation; seam state comes from the
// build. n replicates are tested with the given noise seed.
func (p Pipeline) TestPrinted(run *Run, name string, n int, seed int64) (mech.GroupResult, error) {
	var mat mech.Material
	switch p.Printer.ModelMaterial {
	case "VeroClear":
		mat = mech.VeroClear(p.Orientation)
	default:
		mat = mech.ABS(p.Orientation)
	}
	spec := mech.Specimen{Mat: mat}
	if seam := firstSeam(run.Build); seam != nil {
		spec.SeamPresent = true
		spec.SeamQuality = seam.BondQuality
		kt := run.DesignKt
		if kt <= 1 {
			kt = 2.6 // default slit-tip concentration when FEA was skipped
		}
		spec.Kt = kt
		spec.ModulusKnockdown = 0.03
	}
	return mech.TestGroup(name, spec, n, seed)
}

func firstSeam(b *printer.Build) *printer.SeamRecord {
	if b == nil || len(b.Seams) == 0 {
		return nil
	}
	return &b.Seams[0]
}
