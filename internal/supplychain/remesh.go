package supplychain

import (
	"fmt"
	"math"

	"obfuscade/internal/geom"
	"obfuscade/internal/mesh"
)

// RemeshAttack is a counterfeiter countermeasure against ObfusCADe's
// spline split: cluster-weld all vertices on a grid of size cluster so
// the two split bodies' mismatched boundaries snap together, hoping to
// heal the massless separation. Degenerate triangles produced by the
// clustering are dropped.
//
// The repository's analysis (see TestRemeshAttackAnalysis and
// EXPERIMENTS.md) shows the trade-off this attacker faces: clustering
// coarse enough to fuse the boundaries (>= the tessellation mismatch)
// deforms the whole surface by up to cluster/2 — an order of magnitude
// more than the split gap it removes — and leaves non-manifold junk at
// the seam, so the "cleaned" file fails both metrology and geometry
// review.
func RemeshAttack(m *mesh.Mesh, cluster float64) error {
	if cluster <= 0 {
		return fmt.Errorf("supplychain: cluster size must be positive")
	}
	snap := func(v geom.Vec3) geom.Vec3 {
		return geom.V3(
			math.Round(v.X/cluster)*cluster,
			math.Round(v.Y/cluster)*cluster,
			math.Round(v.Z/cluster)*cluster,
		)
	}
	for si := range m.Shells {
		s := &m.Shells[si]
		kept := s.Tris[:0]
		for _, t := range s.Tris {
			nt := geom.Triangle{A: snap(t.A), B: snap(t.B), C: snap(t.C)}
			if nt.IsDegenerate(1e-12) {
				continue
			}
			kept = append(kept, nt)
		}
		s.Tris = kept
	}
	return nil
}

// MaxSurfaceDeviation measures the largest vertex displacement between a
// mesh and its remeshed copy — the dimensional damage a clustering attack
// inflicts. The meshes must have come from the same source (triangles are
// compared positionally).
func MaxSurfaceDeviation(original, remeshed *mesh.Mesh) float64 {
	var worst float64
	// Compare vertex sets via nearest-snap: for clustering remeshes the
	// deviation per vertex is bounded by the snap distance, measured
	// here empirically over original vertices.
	var remeshVerts []geom.Vec3
	for si := range remeshed.Shells {
		idx := mesh.IndexShell(&remeshed.Shells[si], 1e-9)
		remeshVerts = append(remeshVerts, idx.Verts...)
	}
	if len(remeshVerts) == 0 {
		return math.Inf(1)
	}
	for si := range original.Shells {
		idx := mesh.IndexShell(&original.Shells[si], 1e-9)
		for _, v := range idx.Verts {
			best := math.Inf(1)
			for _, r := range remeshVerts {
				if d := v.Dist(r); d < best {
					best = d
				}
			}
			if best > worst {
				worst = best
			}
		}
	}
	return worst
}
