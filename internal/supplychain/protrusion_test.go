package supplychain

import (
	"testing"

	"obfuscade/internal/brep"
	"obfuscade/internal/mesh"
	"obfuscade/internal/stl"
	"obfuscade/internal/tessellate"
)

func TestProtrusionAttackDetected(t *testing.T) {
	p, err := brep.NewTensileBar("bar", brep.DefaultTensileBar())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := tessellate.Tessellate(p, tessellate.Coarse)
	if err != nil {
		t.Fatal(err)
	}
	tampered := ref.Clone()
	if err := ProtrusionAttack(tampered, 9, 0.8); err != nil {
		t.Fatal(err)
	}
	// More triangles and more volume than the reference.
	d := stl.Compare(ref, tampered)
	if d.Identical(1e-6) {
		t.Error("protrusion attack not detected by diff")
	}
	if d.TriangleDelta <= 0 {
		t.Errorf("protrusions should add triangles: %+v", d)
	}
	if d.VolumeDelta <= 0 {
		t.Errorf("protrusions should add volume: %+v", d)
	}
	// The tampered mesh remains watertight (a stealthy attack), so the
	// manifold check alone is NOT sufficient — the reference diff is the
	// effective mitigation for this attack class.
	rep := mesh.IndexShell(&tampered.Shells[0], 1e-9).Analyze()
	if !rep.Watertight() {
		t.Errorf("protrusion mesh should stay watertight: %+v", rep)
	}
}

func TestProtrusionAttackErrors(t *testing.T) {
	m := &mesh.Mesh{}
	if err := ProtrusionAttack(m, 1, 0.5); err == nil {
		t.Error("expected error for step < 2")
	}
	if err := ProtrusionAttack(m, 5, 0); err == nil {
		t.Error("expected error for zero height")
	}
}

func TestUnitMismatchAttack(t *testing.T) {
	p, err := brep.NewTensileBar("bar", brep.DefaultTensileBar())
	if err != nil {
		t.Fatal(err)
	}
	m, err := tessellate.Tessellate(p, tessellate.Coarse)
	if err != nil {
		t.Fatal(err)
	}
	want := m.Bounds().Size()
	shrunk := m.Clone()
	UnitMismatchAttack(shrunk, true)
	got := shrunk.Bounds().Size()
	if !geomApprox(got.X*25.4, want.X) {
		t.Errorf("mm->inch shrink: %v vs %v", got, want)
	}
	inflated := m.Clone()
	UnitMismatchAttack(inflated, false)
	if !geomApprox(inflated.Bounds().Size().X, want.X*25.4) {
		t.Errorf("inch->mm inflate: %v", inflated.Bounds().Size())
	}
	// Detected by the reference diff.
	if stl.Compare(m, shrunk).Identical(1e-6) {
		t.Error("unit mismatch not detected")
	}
}

func geomApprox(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-6*(1+b)
}
