// Package supplychain models the cloud-aware additive-manufacturing
// process chain of paper Fig. 1, the attack taxonomy of Fig. 2 and the
// per-stage risk/mitigation registry of Table 1 — including *executable*
// attacks on the digital artifacts and the defender-side integrity checks
// that catch them.
package supplychain

import "obfuscade/internal/report"

// Stage is one step of the AM process chain (paper Fig. 1).
type Stage int

const (
	// StageCAD covers CAD modelling and FEA optimisation.
	StageCAD Stage = iota
	// StageSTL covers the exported STL file.
	StageSTL
	// StageSlicing covers slicing and G-code generation.
	StageSlicing
	// StagePrinter covers the printer firmware and machine.
	StagePrinter
	// StageTesting covers post-print inspection and testing.
	StageTesting
)

// String implements fmt.Stringer.
func (s Stage) String() string {
	switch s {
	case StageCAD:
		return "CAD model & FEA"
	case StageSTL:
		return "STL file"
	case StageSlicing:
		return "Slicing & G-code"
	case StagePrinter:
		return "3D Printer"
	case StageTesting:
		return "Testing"
	default:
		return "unknown"
	}
}

// Stages lists the chain in order.
func Stages() []Stage {
	return []Stage{StageCAD, StageSTL, StageSlicing, StagePrinter, StageTesting}
}

// Risk is one row fragment of Table 1: a risk description paired with the
// mitigation strategies that counter it.
type Risk struct {
	Stage       Stage
	Description string
	Mitigations []string
}

// Registry returns the paper's Table 1 as structured data.
func Registry() []Risk {
	return []Risk{
		{StageCAD, "IP theft, ransomware, software Trojans, malware",
			[]string{"Data-Loss Prevention software, code reviews, periodic backups"}},
		{StageCAD, "CAD libraries & FEA databases corruption/modification",
			[]string{"IP file access/integrity controls, entitlement reviews"}},
		{StageCAD, "Malicious insider corrupts CAD model, adds vulnerabilities",
			[]string{"CAD-level design obfuscation for IP protection (this work)"}},
		{StageSTL, "Removal/addition of tetrahedrons (voids/protrusions)",
			[]string{"Review 3D rendering/file contents/manifold geometry errors"}},
		{StageSTL, "Dimension & ratio scaling, shape changes, end point changes",
			[]string{"Verification of digital signatures, file sizes/hashes"}},
		{StageSTL, "File theft/loss/corruption, ransomware",
			[]string{"Strict access control to files, regular backups"}},
		{StageSTL, "Stego-channel data exfiltration (information leakage) via facet order & coordinate LSBs",
			[]string{"Sanitize design files: canonical facet sort + coordinate re-quantization (POST /sanitize)"}},
		{StageSlicing, "Orientation changes, addition of porosity/contaminants",
			[]string{"Simulation of generated G-code, code review"}},
		{StageSlicing, "Damage to printer actuators using malicious coordinates",
			[]string{"Actuator limit switch preventing physical damage"}},
		{StageSlicing, "IP theft/reverse-engineering, reconstruction of CAD model",
			[]string{"Periodic review of printer parameters, strict access controls"}},
		{StagePrinter, "Malicious firmware updates, unauthorized remote access",
			[]string{"Strict access control, network firewalls, secure updates"}},
		{StagePrinter, "Activation of firmware Trojans, malicious operator",
			[]string{"Inspection of printed object, measurement of weight/density"}},
		{StagePrinter, "Acoustic/thermal side channels, IP theft, information leakage",
			[]string{"Side-channel shielding, noise emission, physical access controls"}},
		{StagePrinter, "File parser/firmware zero-day, corrupted calibration files",
			[]string{"Tensile strength test, X-Ray/Ultrasound/CT scan reconstruction"}},
		{StageTesting, "Detection granularity versus test time trade-off",
			[]string{"High resolution CT/ultrasonic tests on random samples"}},
		{StageTesting, "Low CT/ultrasonic equipment resolution",
			[]string{"Use higher resolution equipment, test over different angles"}},
	}
}

// Table1 renders the registry in the layout of the paper's Table 1.
func Table1() *report.Table {
	t := &report.Table{
		Title:   "Table 1: Cybersecurity risks during different stages of the AM supply chain",
		Headers: []string{"AM stage", "Cybersecurity risk", "Risk-mitigation strategy"},
	}
	for _, r := range Registry() {
		for i, m := range r.Mitigations {
			stage, desc := "", ""
			if i == 0 {
				stage, desc = r.Stage.String(), r.Description
			}
			t.AddRow(stage, desc, m)
		}
	}
	return t
}

// TaxonomyNode is one node of the attack taxonomy tree (paper Fig. 2).
type TaxonomyNode struct {
	Name     string
	Children []*TaxonomyNode
	// AttackIDs reference executable attacks implemented in this
	// package (see Catalog), empty for non-leaf categories.
	AttackIDs []string
}

// Taxonomy returns the attack taxonomy of paper Fig. 2: attacks organised
// by adversarial goal across the system's abstraction levels.
func Taxonomy() *TaxonomyNode {
	return &TaxonomyNode{
		Name: "Attacks in additive manufacturing",
		Children: []*TaxonomyNode{
			{
				Name: "Theft of technical data (IP theft)",
				Children: []*TaxonomyNode{
					{Name: "Digital file theft (CAD/STL/G-code exfiltration)", AttackIDs: []string{"file-theft"}},
					{Name: "Stego-channel exfiltration in design files (facet order, coordinate LSBs)", AttackIDs: []string{"stl-stego"}},
					{Name: "Tool-path reverse engineering", AttackIDs: []string{"toolpath-re"}},
					{Name: "Side-channel leakage (acoustic/magnetic/thermal)", AttackIDs: []string{"side-channel"}},
				},
			},
			{
				Name: "Sabotage (quality degradation)",
				Children: []*TaxonomyNode{
					{Name: "STL design tampering (voids, scaling, reorientation)", AttackIDs: []string{"stl-void", "stl-scale", "stl-reorient"}},
					{Name: "G-code tampering (porosity, contaminant paths)", AttackIDs: []string{"gcode-porosity"}},
					{Name: "Firmware Trojans / corrupted calibration", AttackIDs: []string{"firmware-trojan"}},
					{Name: "Equipment damage (malicious coordinates)", AttackIDs: []string{"gcode-envelope"}},
				},
			},
			{
				Name: "Counterfeiting and overproduction",
				Children: []*TaxonomyNode{
					{Name: "Unauthorized reproduction from stolen files", AttackIDs: []string{"counterfeit"}},
					{Name: "Overproduction by contracted manufacturer", AttackIDs: []string{"overproduction"}},
				},
			},
		},
	}
}

// Walk visits every node depth-first.
func (n *TaxonomyNode) Walk(f func(depth int, node *TaxonomyNode)) {
	var rec func(d int, node *TaxonomyNode)
	rec = func(d int, node *TaxonomyNode) {
		f(d, node)
		for _, c := range node.Children {
			rec(d+1, c)
		}
	}
	rec(0, n)
}

// LeafCount returns the number of leaf categories.
func (n *TaxonomyNode) LeafCount() int {
	count := 0
	n.Walk(func(_ int, node *TaxonomyNode) {
		if len(node.Children) == 0 {
			count++
		}
	})
	return count
}
