package supplychain

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"obfuscade/internal/brep"
	"obfuscade/internal/gcode"
	"obfuscade/internal/geom"
	"obfuscade/internal/mech"
	"obfuscade/internal/stl"
	"obfuscade/internal/tessellate"
)

func TestRegistryCoversAllStages(t *testing.T) {
	seen := map[Stage]bool{}
	for _, r := range Registry() {
		seen[r.Stage] = true
		if r.Description == "" || len(r.Mitigations) == 0 {
			t.Errorf("incomplete risk entry: %+v", r)
		}
	}
	for _, s := range Stages() {
		if !seen[s] {
			t.Errorf("stage %v missing from registry", s)
		}
	}
}

func TestTable1Renders(t *testing.T) {
	tbl := Table1()
	out := tbl.Render()
	for _, want := range []string{"CAD model & FEA", "STL file", "3D Printer",
		"design obfuscation", "digital signatures"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
	if len(tbl.Rows) < 10 {
		t.Errorf("Table 1 rows = %d, want >= 10", len(tbl.Rows))
	}
}

func TestTaxonomyStructure(t *testing.T) {
	tax := Taxonomy()
	if len(tax.Children) != 3 {
		t.Fatalf("top-level categories = %d, want 3", len(tax.Children))
	}
	if got := tax.LeafCount(); got < 8 {
		t.Errorf("leaf categories = %d, want >= 8", got)
	}
	// Every attack ID referenced by the taxonomy that names an
	// executable attack should exist in the catalog (or be a scenario
	// ID used by examples).
	catalog := map[string]bool{}
	for _, a := range Catalog() {
		catalog[a.ID] = true
	}
	executable := 0
	tax.Walk(func(_ int, n *TaxonomyNode) {
		for _, id := range n.AttackIDs {
			if catalog[id] {
				executable++
			}
		}
	})
	if executable < 5 {
		t.Errorf("executable taxonomy attacks = %d, want >= 5", executable)
	}
}

func TestStageString(t *testing.T) {
	if StageCAD.String() == "unknown" || Stage(99).String() != "unknown" {
		t.Error("Stage.String misbehaves")
	}
}

func barPart(t *testing.T) *brep.Part {
	t.Helper()
	p, err := brep.NewTensileBar("bar", brep.DefaultTensileBar())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestVoidAttackDetectedByValidation(t *testing.T) {
	p := barPart(t)
	m, err := tessellate.Tessellate(p, tessellate.Coarse)
	if err != nil {
		t.Fatal(err)
	}
	if issues := m.Validate(1e-9); len(issues) != 0 {
		t.Fatalf("pristine mesh has issues: %v", issues)
	}
	if err := VoidAttack(m, 7); err != nil {
		t.Fatal(err)
	}
	if issues := m.Validate(1e-9); len(issues) == 0 {
		t.Error("void attack not detected by geometry validation")
	}
	if err := VoidAttack(m, 1); err == nil {
		t.Error("expected error for step < 2")
	}
}

func TestScaleAttackDetectedByDiff(t *testing.T) {
	p := barPart(t)
	ref, _ := tessellate.Tessellate(p, tessellate.Coarse)
	tampered := ref.Clone()
	if err := ScaleAttack(tampered, 1.01); err != nil {
		t.Fatal(err)
	}
	d := stl.Compare(ref, tampered)
	if d.Identical(1e-6) {
		t.Error("scaling attack not detected")
	}
	if err := ScaleAttack(tampered, -1); err == nil {
		t.Error("expected error for negative factor")
	}
}

func TestScaleAttackDetectedByDigest(t *testing.T) {
	p := barPart(t)
	m, _ := tessellate.Tessellate(p, tessellate.Coarse)
	data, _ := stl.Marshal(m, stl.Binary, "bar")
	digest := Digest(data)
	_ = ScaleAttack(m, 1.001)
	data2, _ := stl.Marshal(m, stl.Binary, "bar")
	if VerifyDigest(data2, digest) {
		t.Error("digest should change after tampering")
	}
}

func TestReorientAttackChangesAnisotropy(t *testing.T) {
	p := barPart(t)
	m, _ := tessellate.Tessellate(p, tessellate.Coarse)
	before := m.Bounds().Size()
	if err := ReorientAttack(m, math.Pi/2); err != nil {
		t.Fatal(err)
	}
	after := m.Bounds().Size()
	if math.Abs(before.Y-after.Z) > 1e-6 || after.Min(geom.V3(0, 0, 0)) != (geom.V3(0, 0, 0)) {
		t.Errorf("reorient: before %v after %v", before, after)
	}
	b := m.Bounds()
	if b.Min.Z < -1e-9 {
		t.Error("reoriented part should sit on the plate")
	}
}

func TestSignerSealAndTamper(t *testing.T) {
	seed := bytes.Repeat([]byte{7}, 32)
	signer, err := NewSigner(seed)
	if err != nil {
		t.Fatal(err)
	}
	art := signer.Seal("design.stl", []byte("payload"))
	if err := art.Check(signer.Public()); err != nil {
		t.Errorf("genuine artifact rejected: %v", err)
	}
	art.Data = []byte("tampered")
	if err := art.Check(signer.Public()); err == nil {
		t.Error("tampered artifact accepted")
	}
	// Wrong key.
	other, _ := NewSigner(bytes.Repeat([]byte{9}, 32))
	good := signer.Seal("x", []byte("data"))
	if err := good.Check(other.Public()); err == nil {
		t.Error("signature verified with wrong key")
	}
	if _, err := NewSigner([]byte("short")); err == nil {
		t.Error("expected error for bad seed size")
	}
	if _, err := NewSigner(nil); err != nil {
		t.Errorf("random keygen failed: %v", err)
	}
}

func TestPipelineExecuteIntactBar(t *testing.T) {
	pl := DefaultPipeline()
	run, err := pl.Execute(barPart(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(run.CADBytes) == 0 || len(run.STLBytes) == 0 {
		t.Error("missing artifacts")
	}
	if run.STLStats.Triangles != run.Mesh.TriangleCount() {
		t.Error("STL stats inconsistent")
	}
	if len(run.Sliced.Layers) == 0 || len(run.Toolpaths) == 0 {
		t.Error("missing slicing artifacts")
	}
	if run.Build == nil || run.Build.ModelVolume <= 0 {
		t.Error("missing build")
	}
	if len(run.Build.Seams) != 0 {
		t.Error("intact bar should have no seams")
	}
	// G-code simulates cleanly inside the machine envelope.
	rep, err := gcode.Simulate(run.GCode, gcode.DimensionEliteEnvelope())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("violations on clean run: %v", rep.Violations)
	}
}

func TestPipelineXZOrientation(t *testing.T) {
	pl := DefaultPipeline()
	pl.Orientation = mech.XZ
	run, err := pl.Execute(barPart(t))
	if err != nil {
		t.Fatal(err)
	}
	// Standing on edge: height equals the bar's grip width.
	h := run.Mesh.Bounds().Size().Z
	if math.Abs(h-19) > 0.1 {
		t.Errorf("x-z build height = %v, want ~19", h)
	}
	if len(run.Sliced.Layers) < 100 {
		t.Errorf("x-z layers = %d, want > 100", len(run.Sliced.Layers))
	}
}

func TestPipelineTestPrintedIntactVsSplit(t *testing.T) {
	pl := DefaultPipeline()
	intactRun, err := pl.Execute(barPart(t))
	if err != nil {
		t.Fatal(err)
	}
	intact, err := pl.TestPrinted(intactRun, "intact x-y", 5, 1)
	if err != nil {
		t.Fatal(err)
	}

	split := barPart(t)
	s, err := brep.SplitSplineThroughGauge(brep.DefaultTensileBar(), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := brep.SplitBySpline(split, "bar", s); err != nil {
		t.Fatal(err)
	}
	splitRun, err := pl.Execute(split)
	if err != nil {
		t.Fatal(err)
	}
	if len(splitRun.Build.Seams) == 0 {
		t.Fatal("split bar should have a seam")
	}
	splitGroup, err := pl.TestPrinted(splitRun, "spline x-y", 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if splitGroup.FailureStrain.Mean > 0.6*intact.FailureStrain.Mean {
		t.Errorf("split failure strain %v vs intact %v: want >= 40%% loss",
			splitGroup.FailureStrain.Mean, intact.FailureStrain.Mean)
	}
	if splitGroup.Toughness.Mean > intact.Toughness.Mean/2 {
		t.Errorf("split toughness %v vs intact %v: want >= 2x loss",
			splitGroup.Toughness.Mean, intact.Toughness.Mean)
	}
}

func TestCADTrojanDetectedByCT(t *testing.T) {
	p, err := brep.NewRectPrism("prism", geom.V3(25.4, 12.7, 12.7))
	if err != nil {
		t.Fatal(err)
	}
	if err := CADTrojanAttack(p, rand.New(rand.NewSource(3))); err != nil {
		t.Fatal(err)
	}
	pl := DefaultPipeline()
	pl.Resolution = tessellate.Fine
	run, err := pl.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	cavities := run.Build.Grid.InternalCavities()
	if len(cavities) == 0 {
		t.Error("CT inspection should find the Trojan cavity")
	}
}

func TestCADTrojanNoSolidBody(t *testing.T) {
	p := &brep.Part{Name: "empty"}
	if err := CADTrojanAttack(p, nil); err == nil {
		t.Error("expected error for part without solid prism")
	}
}

func TestPorosityAndEnvelopeAttacks(t *testing.T) {
	pl := DefaultPipeline()
	run, err := pl.Execute(barPart(t))
	if err != nil {
		t.Fatal(err)
	}
	env := gcode.DimensionEliteEnvelope()
	// Porosity: detected by compare-against-reference.
	tampered := &gcode.Program{Name: run.GCode.Name,
		Commands: append([]gcode.Command{}, run.GCode.Commands...)}
	if err := PorosityAttack(tampered, 5); err != nil {
		t.Fatal(err)
	}
	d, err := gcode.Compare(run.GCode, tampered, env)
	if err != nil {
		t.Fatal(err)
	}
	if d.Equivalent(1e-3) {
		t.Error("porosity attack not detected")
	}
	if err := PorosityAttack(tampered, 0); err == nil {
		t.Error("expected error for step < 2")
	}
	// Envelope: detected by limit-switch simulation.
	EnvelopeAttack(tampered)
	rep, err := gcode.Simulate(tampered, env)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Error("envelope attack not detected")
	}
}

func TestCatalogComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, a := range Catalog() {
		if a.ID == "" || a.Name == "" || a.Description == "" {
			t.Errorf("incomplete catalog entry: %+v", a)
		}
		if ids[a.ID] {
			t.Errorf("duplicate attack ID %q", a.ID)
		}
		ids[a.ID] = true
	}
}
