package supplychain

import (
	"crypto/ed25519"
	"encoding/binary"
	"fmt"
)

// JobTicket authorises the printing of exactly one part. The IP owner
// issues a fixed batch of signed tickets to the contracted manufacturer;
// printing more parts than tickets — the "overproduction" leaf of the
// Fig. 2 taxonomy — fails authorisation.
type JobTicket struct {
	// Serial is the unique ticket number within the order.
	Serial uint64
	// PartDigest binds the ticket to one design (SHA-256 of the CAD or
	// STL artifact).
	PartDigest string
	// Signature covers Serial and PartDigest.
	Signature []byte
}

func ticketMessage(serial uint64, partDigest string) []byte {
	msg := make([]byte, 8+len(partDigest))
	binary.BigEndian.PutUint64(msg, serial)
	copy(msg[8:], partDigest)
	return msg
}

// IssueTickets signs n production tickets for the given part, numbered
// from startSerial.
func (s *Signer) IssueTickets(partDigest string, n int, startSerial uint64) ([]JobTicket, error) {
	if n < 1 {
		return nil, fmt.Errorf("supplychain: ticket count must be >= 1, got %d", n)
	}
	if partDigest == "" {
		return nil, fmt.Errorf("supplychain: ticket needs a part digest")
	}
	out := make([]JobTicket, 0, n)
	for i := 0; i < n; i++ {
		serial := startSerial + uint64(i)
		out = append(out, JobTicket{
			Serial:     serial,
			PartDigest: partDigest,
			Signature:  s.Sign(ticketMessage(serial, partDigest)),
		})
	}
	return out, nil
}

// TicketValidator runs inside the (trusted) printer firmware: it verifies
// signatures, binds tickets to the loaded design, and burns serials so a
// ticket authorises exactly one print.
type TicketValidator struct {
	pub        ed25519.PublicKey
	partDigest string
	burned     map[uint64]bool
}

// NewTicketValidator creates a validator for one production run.
func NewTicketValidator(pub ed25519.PublicKey, partDigest string) (*TicketValidator, error) {
	if len(pub) != ed25519.PublicKeySize {
		return nil, fmt.Errorf("supplychain: invalid public key size %d", len(pub))
	}
	if partDigest == "" {
		return nil, fmt.Errorf("supplychain: validator needs a part digest")
	}
	return &TicketValidator{
		pub:        pub,
		partDigest: partDigest,
		burned:     make(map[uint64]bool),
	}, nil
}

// Authorize validates one ticket and burns it. It returns an error for
// forged signatures, tickets for other designs, and replayed serials.
func (v *TicketValidator) Authorize(t JobTicket) error {
	if t.PartDigest != v.partDigest {
		return fmt.Errorf("supplychain: ticket %d is for a different design", t.Serial)
	}
	if !Verify(v.pub, ticketMessage(t.Serial, t.PartDigest), t.Signature) {
		return fmt.Errorf("supplychain: ticket %d signature invalid", t.Serial)
	}
	if v.burned[t.Serial] {
		return fmt.Errorf("supplychain: ticket %d already used (overproduction attempt)", t.Serial)
	}
	v.burned[t.Serial] = true
	return nil
}

// Used returns how many tickets have been burned.
func (v *TicketValidator) Used() int { return len(v.burned) }
