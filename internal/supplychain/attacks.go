package supplychain

import (
	"fmt"
	"math/rand"

	"obfuscade/internal/brep"
	"obfuscade/internal/gcode"
	"obfuscade/internal/geom"
	"obfuscade/internal/mesh"
	"obfuscade/internal/stego"
)

// AttackInfo describes one executable attack from the taxonomy.
type AttackInfo struct {
	ID          string
	Name        string
	Stage       Stage
	Description string
}

// Catalog lists the executable attacks implemented here, keyed by the
// taxonomy's attack IDs.
func Catalog() []AttackInfo {
	return []AttackInfo{
		{"stl-void", "STL void injection", StageSTL,
			"remove triangles to open voids in the printed part"},
		{"stl-scale", "STL dimension scaling", StageSTL,
			"scale the model so printed parts are out of tolerance"},
		{"stl-reorient", "STL reorientation", StageSTL,
			"rotate the model so anisotropy weakens the part"},
		{"gcode-porosity", "G-code porosity injection", StageSlicing,
			"drop extrusion moves to create internal porosity"},
		{"gcode-envelope", "Malicious coordinates", StageSlicing,
			"drive the head beyond the build envelope to damage actuators"},
		{"cad-trojan", "CAD design Trojan", StageCAD,
			"covertly embed a defect feature inside the solid model"},
		{"stl-stego", "STL stego-channel exfiltration", StageSTL,
			"hide stolen data in facet ordering and sub-quantum coordinate offsets of exported STL files"},
		{"firmware-trojan", "Firmware Trojan", StagePrinter,
			"printer firmware silently thins roads below spec"},
	}
}

// StegoExfiltrationAttack hides payload inside the geometry-neutral
// freedom of an exported design file (facet order + coordinate LSBs):
// the printed part is unchanged, so none of the Table 1 geometric
// mitigations fire. Its counter is the stego sanitizer — the registered
// STL-stage mitigation — which destroys both channels without touching
// the printed geometry.
func StegoExfiltrationAttack(m *mesh.Mesh, payload []byte) (*mesh.Mesh, error) {
	return stego.Embed(m, payload, stego.Options{})
}

// VoidAttack removes every n-th triangle of each shell — the Table 1
// "removal of tetrahedrons" tampering. The damaged mesh fails manifold
// validation, which is exactly the mitigation check.
func VoidAttack(m *mesh.Mesh, n int) error {
	if n < 2 {
		return fmt.Errorf("supplychain: void attack step must be >= 2")
	}
	for si := range m.Shells {
		s := &m.Shells[si]
		kept := s.Tris[:0]
		for i, t := range s.Tris {
			if (i+1)%n == 0 {
				continue
			}
			kept = append(kept, t)
		}
		s.Tris = kept
	}
	return nil
}

// ProtrusionAttack adds spurious tetrahedra ("addition of tetrahedrons",
// Table 1 STL row) on top of existing surface triangles: small bumps that
// ruin mating surfaces and balance. Each affected triangle is replaced by
// a tetrahedral cap over its centroid.
func ProtrusionAttack(m *mesh.Mesh, n int, height float64) error {
	if n < 2 {
		return fmt.Errorf("supplychain: protrusion step must be >= 2")
	}
	if height <= 0 {
		return fmt.Errorf("supplychain: protrusion height must be positive")
	}
	for si := range m.Shells {
		s := &m.Shells[si]
		var added []geom.Triangle
		for i := range s.Tris {
			if (i+1)%n != 0 {
				continue
			}
			t := s.Tris[i]
			apex := t.Centroid().Add(t.Normal().Scale(height))
			// Replace the face with three faces through the raised apex.
			added = append(added,
				geom.Triangle{A: t.A, B: t.B, C: apex},
				geom.Triangle{A: t.B, B: t.C, C: apex},
				geom.Triangle{A: t.C, B: t.A, C: apex},
			)
			// Mark the original for removal by degenerating it in place.
			s.Tris[i] = geom.Triangle{A: t.A, B: t.A, C: t.A}
		}
		kept := s.Tris[:0]
		for _, t := range s.Tris {
			if !t.IsDegenerate(1e-12) {
				kept = append(kept, t)
			}
		}
		s.Tris = append(kept, added...)
	}
	return nil
}

// ScaleAttack scales the mesh about the origin by the given factor — the
// Table 1 "dimension & ratio scaling" tampering. Subtle factors (e.g.
// 1.01) evade visual review but break fit and tolerance.
func ScaleAttack(m *mesh.Mesh, factor float64) error {
	if factor <= 0 {
		return fmt.Errorf("supplychain: scale factor must be positive, got %g", factor)
	}
	m.Transform(geom.ScaleUniform(factor))
	return nil
}

// UnitMismatchAttack rescales the mesh as if its units were mislabelled
// (mm read as inches or vice versa) — a classic STL exchange failure the
// paper's §3.1 slicing properties guard against ("STL unit of
// millimeters"). toInches shrinks a mm-designed file by 25.4x; otherwise
// it inflates it. Caught instantly by dimensional metrology.
func UnitMismatchAttack(m *mesh.Mesh, toInches bool) {
	factor := 25.4
	if toInches {
		factor = 1 / 25.4
	}
	m.Transform(geom.ScaleUniform(factor))
}

// ReorientAttack rotates the mesh by angle radians about the X axis and
// re-seats it on the build plate — the "orientation changes" tampering
// that degrades strength through print anisotropy.
func ReorientAttack(m *mesh.Mesh, angle float64) error {
	m.Transform(geom.RotateX(angle))
	b := m.Bounds()
	m.Transform(geom.Translate(geom.V3(-b.Min.X, -b.Min.Y, -b.Min.Z)))
	return nil
}

// PorosityAttack drops every n-th extruding move from a G-code program —
// internal porosity invisible from outside. Detected by the gcode.Compare
// mitigation.
func PorosityAttack(p *gcode.Program, n int) error {
	if n < 2 {
		return fmt.Errorf("supplychain: porosity attack step must be >= 2")
	}
	kept := p.Commands[:0]
	count := 0
	for _, c := range p.Commands {
		if c.Code == "G1" {
			if _, hasE := c.Arg("E"); hasE {
				count++
				if count%n == 0 {
					continue
				}
			}
		}
		kept = append(kept, c)
	}
	p.Commands = kept
	return nil
}

// EnvelopeAttack appends a move far outside the build envelope — the
// actuator-damage attack stopped by the limit-switch mitigation
// (gcode.Simulate violations).
func EnvelopeAttack(p *gcode.Program) {
	p.Commands = append(p.Commands, gcode.Command{
		Code: "G0",
		Args: map[string]float64{"X": 10_000, "Y": 10_000, "F": 99_000},
	})
}

// CADTrojanAttack covertly embeds a surface sphere (with material
// removal) inside the part's first solid prismatic body: the printed part
// gains a hidden cavity that reduces strength — a malicious use of the
// very mechanism ObfusCADe employs defensively. Detected by CT inspection
// (voxel.InternalCavities) at the testing stage.
func CADTrojanAttack(p *brep.Part, rng *rand.Rand) error {
	for _, b := range p.Bodies {
		if b.Kind != brep.Solid {
			continue
		}
		if _, ok := b.Shape.(*brep.Prism); !ok {
			continue
		}
		bounds := b.Shape.Bounds()
		size := bounds.Size()
		r := 0.15 * minComponent(size)
		if r <= 0 {
			continue
		}
		c := bounds.Center()
		if rng != nil {
			c.X += (rng.Float64() - 0.5) * 0.2 * size.X
		}
		return brep.EmbedSphere(p, b.Name, c, r, brep.EmbedOpts{
			MaterialRemoval: true,
			SurfaceBody:     true,
		})
	}
	return fmt.Errorf("supplychain: no suitable solid body for Trojan")
}

func minComponent(v geom.Vec3) float64 {
	m := v.X
	if v.Y < m {
		m = v.Y
	}
	if v.Z < m {
		m = v.Z
	}
	return m
}
