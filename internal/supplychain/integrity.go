package supplychain

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Digest returns the SHA-256 hex digest of an artifact — the "file
// sizes/hashes" verification of Table 1.
func Digest(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// VerifyDigest reports whether the artifact still matches the recorded
// digest.
func VerifyDigest(data []byte, digest string) bool {
	return Digest(data) == digest
}

// Signer signs design artifacts on behalf of the IP owner — the "digital
// signatures" mitigation of Table 1.
type Signer struct {
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// NewSigner generates a fresh Ed25519 key pair from the given seed bytes
// (must be ed25519.SeedSize = 32 bytes) so tests are deterministic; pass
// nil for a random key.
func NewSigner(seed []byte) (*Signer, error) {
	if seed == nil {
		pub, priv, err := ed25519.GenerateKey(nil)
		if err != nil {
			return nil, fmt.Errorf("supplychain: keygen: %w", err)
		}
		return &Signer{pub: pub, priv: priv}, nil
	}
	if len(seed) != ed25519.SeedSize {
		return nil, fmt.Errorf("supplychain: seed must be %d bytes, got %d",
			ed25519.SeedSize, len(seed))
	}
	priv := ed25519.NewKeyFromSeed(seed)
	return &Signer{pub: priv.Public().(ed25519.PublicKey), priv: priv}, nil
}

// Public returns the verification key to distribute to manufacturers.
func (s *Signer) Public() ed25519.PublicKey { return s.pub }

// Sign returns a detached signature over the artifact.
func (s *Signer) Sign(data []byte) []byte {
	return ed25519.Sign(s.priv, data)
}

// Verify checks a detached signature against a public key.
func Verify(pub ed25519.PublicKey, data, sig []byte) bool {
	return ed25519.Verify(pub, data, sig)
}

// SignedArtifact bundles an artifact with its provenance metadata as it
// travels between supply-chain parties.
type SignedArtifact struct {
	Name      string
	Data      []byte
	Digest    string
	Signature []byte
}

// Seal wraps an artifact with digest and signature.
func (s *Signer) Seal(name string, data []byte) SignedArtifact {
	return SignedArtifact{
		Name:      name,
		Data:      data,
		Digest:    Digest(data),
		Signature: s.Sign(data),
	}
}

// Check verifies both digest and signature, returning a descriptive error
// on tampering.
func (a *SignedArtifact) Check(pub ed25519.PublicKey) error {
	if !VerifyDigest(a.Data, a.Digest) {
		return fmt.Errorf("supplychain: artifact %q digest mismatch", a.Name)
	}
	if !Verify(pub, a.Data, a.Signature) {
		return fmt.Errorf("supplychain: artifact %q signature invalid", a.Name)
	}
	return nil
}
