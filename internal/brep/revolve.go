package brep

import (
	"fmt"
	"math"

	"obfuscade/internal/geom"
)

// Revolve is a solid of revolution: the radius profile R(x) swept about
// the x axis over [X0, X1], with flat disc caps at the ends. It models
// the axisymmetric engineering parts (shafts, nozzles, bushings) the
// paper's introduction motivates.
type Revolve struct {
	// X0, X1 bound the axis span.
	X0, X1 float64
	// Radius is the profile R(x); it must be strictly positive over the
	// open interval and may taper to >0 at the ends (capped flat).
	Radius func(x float64) float64
	// Tag names the profile for serialisation.
	Tag string
	// Axis is the revolution axis position in y, z (the axis runs along
	// x at this offset).
	Axis geom.Vec2
	// Breaks lists interior x stations where the profile may jump
	// (steps produce annular faces there). Must be strictly inside
	// (X0, X1) and sorted ascending.
	Breaks []float64
}

// Bounds implements Shape.
func (r *Revolve) Bounds() geom.AABB {
	maxR := r.maxRadius()
	return geom.AABB{
		Min: geom.V3(r.X0, r.Axis.X-maxR, r.Axis.Y-maxR),
		Max: geom.V3(r.X1, r.Axis.X+maxR, r.Axis.Y+maxR),
	}
}

func (r *Revolve) maxRadius() float64 {
	maxR := 0.0
	const n = 256
	for i := 0; i <= n; i++ {
		x := r.X0 + float64(i)/n*(r.X1-r.X0)
		if v := r.Radius(x); v > maxR {
			maxR = v
		}
	}
	return maxR
}

// Volume implements Shape (solid of revolution by the disc method).
func (r *Revolve) Volume() float64 {
	const n = 2048
	var v float64
	dx := (r.X1 - r.X0) / n
	for i := 0; i < n; i++ {
		x := r.X0 + (float64(i)+0.5)*dx
		rad := r.Radius(x)
		v += math.Pi * rad * rad * dx
	}
	return v
}

func (r *Revolve) kindTag() string { return "revolve:" + r.Tag }

// Validate reports whether the shape is well-formed.
func (r *Revolve) Validate() error {
	if r.X1 <= r.X0 {
		return fmt.Errorf("brep: revolve has empty span [%g, %g]", r.X0, r.X1)
	}
	if r.Radius == nil {
		return fmt.Errorf("brep: revolve needs a radius profile")
	}
	const n = 64
	for i := 0; i <= n; i++ {
		x := r.X0 + float64(i)/n*(r.X1-r.X0)
		if r.Radius(x) <= 0 {
			return fmt.Errorf("brep: revolve radius must stay positive (R(%g) = %g)",
				x, r.Radius(x))
		}
	}
	prev := r.X0
	for _, b := range r.Breaks {
		if b <= prev || b >= r.X1 {
			return fmt.Errorf("brep: break %g outside (%g, %g) or unsorted", b, prev, r.X1)
		}
		prev = b
	}
	return nil
}

// Pieces returns the smooth x intervals delimited by the breaks.
func (r *Revolve) Pieces() [][2]float64 {
	edges := append([]float64{r.X0}, r.Breaks...)
	edges = append(edges, r.X1)
	out := make([][2]float64, 0, len(edges)-1)
	for i := 0; i+1 < len(edges); i++ {
		out = append(out, [2]float64{edges[i], edges[i+1]})
	}
	return out
}

// NewShaft creates a stepped-shaft part: a cylinder of radius r1 over
// [0, l1], transitioning to radius r2 until length l — a typical
// axisymmetric machine element for the embedded-sphere feature.
func NewShaft(name string, l1, r1, l, r2 float64) (*Part, error) {
	if l1 <= 0 || l <= l1 || r1 <= 0 || r2 <= 0 {
		return nil, fmt.Errorf("brep: invalid shaft dimensions l1=%g l=%g r1=%g r2=%g",
			l1, l, r1, r2)
	}
	rev := &Revolve{
		X0: 0, X1: l, Tag: "stepped-shaft",
		Radius: func(x float64) float64 {
			if x <= l1 {
				return r1
			}
			return r2
		},
		Axis:   geom.V2(0, 0),
		Breaks: []float64{l1},
	}
	if err := rev.Validate(); err != nil {
		return nil, err
	}
	p := &Part{Name: name, Bodies: []*Body{{
		Name:  "shaft",
		Kind:  Solid,
		Shape: rev,
	}}}
	p.record("stepped-shaft l1=%g r1=%g l=%g r2=%g", l1, r1, l, r2)
	return p, nil
}
