package brep

import (
	"math"
	"testing"

	"obfuscade/internal/geom"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	p := mustBar(t)
	d := DefaultTensileBar()
	s, err := SplitSplineThroughGauge(d, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := SplitBySpline(p, "bar", s); err != nil {
		t.Fatal(err)
	}

	data, err := Save(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Load(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != p.Name || len(got.Bodies) != len(p.Bodies) {
		t.Fatalf("round-trip structure mismatch: %d bodies", len(got.Bodies))
	}
	if len(got.History) != len(p.History) {
		t.Errorf("history lost: %v", got.History)
	}
	// Volume is preserved within the sampling tolerance of analytic
	// boundaries.
	if math.Abs(got.Volume()-p.Volume())/p.Volume() > 0.01 {
		t.Errorf("volume changed: %v -> %v", p.Volume(), got.Volume())
	}
	up := got.Body("bar-upper")
	if up == nil || up.Phase != upperBodyPhase {
		t.Error("upper body phase lost in round trip")
	}
}

func TestSaveLoadSphereVariants(t *testing.T) {
	size := geom.V3(25.4, 12.7, 12.7)
	c := geom.V3(12.7, 6.35, 6.35)
	p, _ := NewRectPrism("prism", size)
	if err := EmbedSphere(p, "prism", c, 3.175, EmbedOpts{MaterialRemoval: true, SurfaceBody: true}); err != nil {
		t.Fatal(err)
	}
	data, err := Save(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Load(data)
	if err != nil {
		t.Fatal(err)
	}
	sph := got.Body("sphere")
	if sph == nil || sph.Kind != Surface {
		t.Fatal("surface sphere lost")
	}
	if len(got.Body("prism").Cavities) != 1 {
		t.Error("cavity lost")
	}
}

// The paper's §3.2 file-size observations, reproduced at CAD level:
// solid and surface sphere parts serialise to different sizes, and
// material-removal variants are larger than no-removal variants.
func TestCADFileSizeObservations(t *testing.T) {
	size := geom.V3(25.4, 12.7, 12.7)
	c := geom.V3(12.7, 6.35, 6.35)
	const r = 3.175

	sizes := map[string]int{}
	for name, opts := range map[string]EmbedOpts{
		"intact":          {},
		"solid":           {},
		"surface":         {SurfaceBody: true},
		"solid-removal":   {MaterialRemoval: true},
		"surface-removal": {MaterialRemoval: true, SurfaceBody: true},
	} {
		p, _ := NewRectPrism("prism", size)
		if name != "intact" {
			if err := EmbedSphere(p, "prism", c, r, opts); err != nil {
				t.Fatal(err)
			}
		}
		data, err := Save(p)
		if err != nil {
			t.Fatal(err)
		}
		sizes[name] = len(data)
	}

	if sizes["solid"] <= sizes["intact"] {
		t.Errorf("embedding a sphere should enlarge the CAD file: %v", sizes)
	}
	if sizes["solid"] == sizes["surface"] {
		t.Errorf("solid and surface sphere CAD files should differ in size: %v", sizes)
	}
	if sizes["solid-removal"] <= sizes["solid"] {
		t.Errorf("material removal should enlarge the CAD file: %v", sizes)
	}
	if sizes["surface-removal"] <= sizes["surface"] {
		t.Errorf("material removal should enlarge the surface CAD file: %v", sizes)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load([]byte("not json")); err == nil {
		t.Error("expected error for garbage input")
	}
	if _, err := Load([]byte(`{"format":"OTHER-9"}`)); err == nil {
		t.Error("expected error for unknown format")
	}
	if _, err := Load([]byte(`{"format":"OCAD-1","bodies":[{"name":"x","kind":"gas","shape":{"kind":"sphere","r":1}}]}`)); err == nil {
		t.Error("expected error for unknown body kind")
	}
	if _, err := Load([]byte(`{"format":"OCAD-1","bodies":[{"name":"x","kind":"solid","shape":{"kind":"torus"}}]}`)); err == nil {
		t.Error("expected error for unknown shape kind")
	}
}
