package brep

import (
	"encoding/json"
	"fmt"
	"sort"

	"obfuscade/internal/geom"
	"obfuscade/internal/spline"
)

// This file implements the kernel's native part format ("OCAD"). The
// format exists so the repository can reproduce the paper's §3.2 file-size
// observations: solid bodies carry computed volumetric properties that
// surface bodies lack, so a part with a solid sphere serialises larger
// than the same part with a surface sphere, even though both export to
// byte-identical STL sizes. Material removal adds a cavity record, making
// the with-removal variants larger still.

type cadFile struct {
	Format  string    `json:"format"`
	Name    string    `json:"name"`
	History []string  `json:"history"`
	Bodies  []cadBody `json:"bodies"`
}

type cadBody struct {
	Name     string        `json:"name"`
	Kind     string        `json:"kind"`
	Phase    float64       `json:"phase"`
	Shape    cadShape      `json:"shape"`
	Cavities []cadShape    `json:"cavities,omitempty"`
	Mass     *massProps    `json:"mass,omitempty"`
	Surface  *surfaceProps `json:"surface,omitempty"`
}

// massProps are the volumetric properties a CAD system stores for solid
// bodies.
type massProps struct {
	Volume   float64    `json:"volume"`
	Centroid geom.Vec3  `json:"centroid"`
	Inertia  [6]float64 `json:"inertia"` // Ixx Iyy Izz Ixy Ixz Iyz (thin approximation)
}

// surfaceProps are the lighter-weight properties stored for surface bodies.
type surfaceProps struct {
	Area float64 `json:"area"`
}

type cadShape struct {
	Kind   string       `json:"kind"`
	Z0     float64      `json:"z0,omitempty"`
	Z1     float64      `json:"z1,omitempty"`
	Top    *cadBoundary `json:"top,omitempty"`
	Bottom *cadBoundary `json:"bottom,omitempty"`
	Center geom.Vec3    `json:"center,omitempty"`
	R      float64      `json:"r,omitempty"`
	// Revolve fields.
	X0     float64       `json:"x0,omitempty"`
	X1     float64       `json:"x1,omitempty"`
	Tag    string        `json:"tag,omitempty"`
	Axis   geom.Vec2     `json:"axis,omitempty"`
	Pieces [][]geom.Vec2 `json:"pieces,omitempty"`
}

type cadBoundary struct {
	Kind    string         `json:"kind"`
	X0      float64        `json:"x0,omitempty"`
	Y0      float64        `json:"y0,omitempty"`
	X1      float64        `json:"x1,omitempty"`
	Y1      float64        `json:"y1,omitempty"`
	Tag     string         `json:"tag,omitempty"`
	Samples []geom.Vec2    `json:"samples,omitempty"`
	Spans   []cadSpan      `json:"spans,omitempty"`
	Parts   []*cadBoundary `json:"parts,omitempty"`
}

type cadSpan struct {
	P0, P1, P2, P3 geom.Vec2
}

// funcSampleCount is how densely analytic boundaries are sampled when
// serialised; loading reconstructs a piecewise-linear equivalent.
const funcSampleCount = 512

// Save serialises the part to the native CAD format.
func Save(p *Part) ([]byte, error) {
	f := cadFile{Format: "OCAD-1", Name: p.Name, History: p.History}
	for _, b := range p.Bodies {
		cb := cadBody{
			Name:  b.Name,
			Kind:  b.Kind.String(),
			Phase: b.Phase,
		}
		sh, err := encodeShape(b.Shape)
		if err != nil {
			return nil, fmt.Errorf("brep: save body %q: %w", b.Name, err)
		}
		cb.Shape = sh
		for _, c := range b.Cavities {
			cs, err := encodeShape(c)
			if err != nil {
				return nil, fmt.Errorf("brep: save cavity of %q: %w", b.Name, err)
			}
			cb.Cavities = append(cb.Cavities, cs)
		}
		if b.Kind == Solid {
			v := b.Volume()
			ctr := b.Shape.Bounds().Center()
			cb.Mass = &massProps{
				Volume:   v,
				Centroid: ctr,
				Inertia:  thinInertia(v, b.Shape.Bounds()),
			}
		} else {
			cb.Surface = &surfaceProps{Area: approxArea(b.Shape)}
		}
		f.Bodies = append(f.Bodies, cb)
	}
	return json.MarshalIndent(f, "", " ")
}

func thinInertia(v float64, b geom.AABB) [6]float64 {
	s := b.Size()
	return [6]float64{
		v * (s.Y*s.Y + s.Z*s.Z) / 12,
		v * (s.X*s.X + s.Z*s.Z) / 12,
		v * (s.X*s.X + s.Y*s.Y) / 12,
		0, 0, 0,
	}
}

func approxArea(s Shape) float64 {
	switch t := s.(type) {
	case *Sphere:
		return 4 * 3.141592653589793 * t.R * t.R
	case *Prism:
		poly, err := t.Profile(refOpts, 0)
		if err != nil {
			return 0
		}
		return 2*poly.Area() + poly.Perimeter()*(t.Z1-t.Z0)
	default:
		return 0
	}
}

func encodeShape(s Shape) (cadShape, error) {
	switch t := s.(type) {
	case *Prism:
		top, err := encodeBoundary(t.Top)
		if err != nil {
			return cadShape{}, err
		}
		bot, err := encodeBoundary(t.Bottom)
		if err != nil {
			return cadShape{}, err
		}
		return cadShape{Kind: "prism", Z0: t.Z0, Z1: t.Z1, Top: top, Bottom: bot}, nil
	case *Sphere:
		return cadShape{Kind: "sphere", Center: t.Center, R: t.R}, nil
	case *Revolve:
		cs := cadShape{Kind: "revolve", X0: t.X0, X1: t.X1, Tag: t.Tag, Axis: t.Axis}
		const perPiece = 128
		for _, piece := range t.Pieces() {
			a, b := piece[0], piece[1]
			eps := 1e-9 * (b - a)
			var samples []geom.Vec2
			for i := 0; i <= perPiece; i++ {
				x := a + float64(i)/perPiece*(b-a)
				samples = append(samples, geom.V2(x, t.Radius(geom.Clamp(x, a+eps, b-eps))))
			}
			cs.Pieces = append(cs.Pieces, samples)
		}
		return cs, nil
	default:
		return cadShape{}, fmt.Errorf("unknown shape %T", s)
	}
}

func encodeBoundary(b Boundary) (*cadBoundary, error) {
	switch t := b.(type) {
	case *LineBoundary:
		return &cadBoundary{Kind: "line", X0: t.X0, Y0: t.Y0, X1: t.X1, Y1: t.Y1}, nil
	case *FuncBoundary:
		samples := make([]geom.Vec2, 0, funcSampleCount+1)
		for i := 0; i <= funcSampleCount; i++ {
			x := t.X0 + float64(i)/funcSampleCount*(t.X1-t.X0)
			samples = append(samples, geom.V2(x, t.F(x)))
		}
		return &cadBoundary{Kind: "func", Tag: t.Tag, X0: t.X0, X1: t.X1, Samples: samples}, nil
	case *SplineBoundary:
		cb := &cadBoundary{Kind: "spline"}
		for _, sp := range t.S.Spans {
			cb.Spans = append(cb.Spans, cadSpan{P0: sp.P0, P1: sp.P1, P2: sp.P2, P3: sp.P3})
		}
		return cb, nil
	case *CompositeBoundary:
		cb := &cadBoundary{Kind: "composite"}
		for _, part := range t.Parts {
			enc, err := encodeBoundary(part)
			if err != nil {
				return nil, err
			}
			cb.Parts = append(cb.Parts, enc)
		}
		return cb, nil
	default:
		return nil, fmt.Errorf("unknown boundary %T", b)
	}
}

// Load parses a part from the native CAD format.
func Load(data []byte) (*Part, error) {
	var f cadFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("brep: load: %w", err)
	}
	if f.Format != "OCAD-1" {
		return nil, fmt.Errorf("brep: unsupported format %q", f.Format)
	}
	p := &Part{Name: f.Name, History: f.History}
	for _, cb := range f.Bodies {
		var kind Kind
		switch cb.Kind {
		case "solid":
			kind = Solid
		case "surface":
			kind = Surface
		default:
			return nil, fmt.Errorf("brep: unknown body kind %q", cb.Kind)
		}
		shape, err := decodeShape(cb.Shape)
		if err != nil {
			return nil, fmt.Errorf("brep: load body %q: %w", cb.Name, err)
		}
		body := &Body{Name: cb.Name, Kind: kind, Shape: shape, Phase: cb.Phase}
		for _, cs := range cb.Cavities {
			cav, err := decodeShape(cs)
			if err != nil {
				return nil, fmt.Errorf("brep: load cavity of %q: %w", cb.Name, err)
			}
			body.Cavities = append(body.Cavities, cav)
		}
		p.Bodies = append(p.Bodies, body)
	}
	return p, nil
}

func decodeShape(cs cadShape) (Shape, error) {
	switch cs.Kind {
	case "prism":
		top, err := decodeBoundary(cs.Top)
		if err != nil {
			return nil, err
		}
		bot, err := decodeBoundary(cs.Bottom)
		if err != nil {
			return nil, err
		}
		return &Prism{Top: top, Bottom: bot, Z0: cs.Z0, Z1: cs.Z1}, nil
	case "sphere":
		return &Sphere{Center: cs.Center, R: cs.R}, nil
	case "revolve":
		if len(cs.Pieces) == 0 {
			return nil, fmt.Errorf("revolve with no profile pieces")
		}
		pieces := cs.Pieces
		var breaks []float64
		for i := 0; i+1 < len(pieces); i++ {
			if len(pieces[i]) < 2 {
				return nil, fmt.Errorf("revolve piece %d too short", i)
			}
			breaks = append(breaks, pieces[i][len(pieces[i])-1].X)
		}
		radius := func(x float64) float64 {
			// Locate the piece: left-continuous at breaks.
			pi := 0
			for pi+1 < len(pieces) && x > pieces[pi][len(pieces[pi])-1].X {
				pi++
			}
			return lerpSamples(pieces[pi])(x)
		}
		rev := &Revolve{
			X0: cs.X0, X1: cs.X1, Tag: cs.Tag, Axis: cs.Axis,
			Radius: radius, Breaks: breaks,
		}
		if err := rev.Validate(); err != nil {
			return nil, err
		}
		return rev, nil
	default:
		return nil, fmt.Errorf("unknown shape kind %q", cs.Kind)
	}
}

func decodeBoundary(cb *cadBoundary) (Boundary, error) {
	if cb == nil {
		return nil, fmt.Errorf("missing boundary")
	}
	switch cb.Kind {
	case "line":
		return &LineBoundary{X0: cb.X0, Y0: cb.Y0, X1: cb.X1, Y1: cb.Y1}, nil
	case "func":
		samples := cb.Samples
		if len(samples) < 2 {
			return nil, fmt.Errorf("func boundary with %d samples", len(samples))
		}
		if !sort.SliceIsSorted(samples, func(i, j int) bool { return samples[i].X < samples[j].X }) {
			return nil, fmt.Errorf("func boundary samples not x-sorted")
		}
		return &FuncBoundary{
			X0: cb.X0, X1: cb.X1, Tag: cb.Tag,
			F: lerpSamples(samples),
		}, nil
	case "spline":
		s := &spline.Spline{}
		for _, sp := range cb.Spans {
			s.Spans = append(s.Spans, spline.CubicBezier{P0: sp.P0, P1: sp.P1, P2: sp.P2, P3: sp.P3})
		}
		if len(s.Spans) == 0 {
			return nil, fmt.Errorf("spline boundary with no spans")
		}
		return &SplineBoundary{S: s}, nil
	case "composite":
		c := &CompositeBoundary{}
		for _, part := range cb.Parts {
			dec, err := decodeBoundary(part)
			if err != nil {
				return nil, err
			}
			c.Parts = append(c.Parts, dec)
		}
		if len(c.Parts) == 0 {
			return nil, fmt.Errorf("empty composite boundary")
		}
		return c, nil
	default:
		return nil, fmt.Errorf("unknown boundary kind %q", cb.Kind)
	}
}

// lerpSamples returns a piecewise-linear y(x) through x-sorted samples.
func lerpSamples(samples []geom.Vec2) func(float64) float64 {
	return func(x float64) float64 {
		i := sort.Search(len(samples), func(i int) bool { return samples[i].X >= x })
		if i == 0 {
			return samples[0].Y
		}
		if i >= len(samples) {
			return samples[len(samples)-1].Y
		}
		a, b := samples[i-1], samples[i]
		if b.X == a.X {
			return a.Y
		}
		t := (x - a.X) / (b.X - a.X)
		return a.Y + t*(b.Y-a.Y)
	}
}
