package brep

import (
	"math"
	"testing"

	"obfuscade/internal/geom"
)

func TestAddThroughHole(t *testing.T) {
	p, err := NewRectPrism("plate", geom.V3(40, 20, 3))
	if err != nil {
		t.Fatal(err)
	}
	before := p.Volume()
	const r = 3
	if err := AddThroughHole(p, "prism", 10, 10, r); err != nil {
		t.Fatal(err)
	}
	holeVol := math.Pi * r * r * 3
	got := p.Volume()
	if math.Abs(got-(before-holeVol))/before > 0.01 {
		t.Errorf("volume after hole = %v, want ~%v", got, before-holeVol)
	}
	if len(p.Body("prism").Cavities) != 1 {
		t.Error("cavity not recorded")
	}
	// Two holes are fine.
	if err := AddThroughHole(p, "prism", 30, 10, r); err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Volume()-(before-2*holeVol))/before > 0.01 {
		t.Errorf("volume after 2 holes = %v", p.Volume())
	}
}

func TestAddThroughHoleErrors(t *testing.T) {
	p, _ := NewRectPrism("plate", geom.V3(40, 20, 3))
	if err := AddThroughHole(p, "missing", 10, 10, 3); err == nil {
		t.Error("expected error for missing body")
	}
	if err := AddThroughHole(p, "prism", 10, 10, -1); err == nil {
		t.Error("expected error for negative radius")
	}
	if err := AddThroughHole(p, "prism", 1, 10, 3); err == nil {
		t.Error("expected error for hole leaving the body")
	}
	if err := AddThroughHole(p, "prism", 10, 19.5, 3); err == nil {
		t.Error("expected error for hole through the top edge")
	}
}

func TestShaftSaveLoadRoundTrip(t *testing.T) {
	p, err := NewShaft("shaft", 10, 6, 25, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := EmbedSphere(p, "shaft", geom.V3(5, 0, 0), 2, EmbedOpts{MaterialRemoval: true}); err != nil {
		t.Fatal(err)
	}
	data, err := Save(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Load(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Bodies) != 2 {
		t.Fatalf("bodies = %d, want 2", len(got.Bodies))
	}
	if math.Abs(got.Volume()-p.Volume())/p.Volume() > 0.01 {
		t.Errorf("round-trip volume %v vs %v", got.Volume(), p.Volume())
	}
	rev, ok := got.Body("shaft").Shape.(*Revolve)
	if !ok {
		t.Fatal("shape type lost")
	}
	if len(rev.Breaks) != 1 || math.Abs(rev.Breaks[0]-10) > 1e-9 {
		t.Errorf("breaks lost: %v", rev.Breaks)
	}
	// The step stays sharp: radius just left and right of the break.
	if math.Abs(rev.Radius(9.999)-6) > 0.01 || math.Abs(rev.Radius(10.001)-3) > 0.01 {
		t.Errorf("step smeared: R(10-) = %v, R(10+) = %v",
			rev.Radius(9.999), rev.Radius(10.001))
	}
}
