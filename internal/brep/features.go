package brep

import (
	"fmt"
	"math"

	"obfuscade/internal/geom"
	"obfuscade/internal/spline"
)

// Phases assigned to the two bodies produced by a split. Distinct phases
// make the shared spline boundary tessellate with mismatched vertices,
// reproducing the gaps of paper Fig. 4.
const (
	upperBodyPhase = 0.25
	lowerBodyPhase = 0.75
)

// SplitBySpline applies the paper's §3.1 spline split feature: the named
// prismatic body is divided into an upper and a lower body by a sketch
// spline that crosses the body's full x extent. The two bodies share the
// spline as their boundary with zero separation; no material is removed.
//
// The new bodies are named <body>-upper and <body>-lower.
func SplitBySpline(p *Part, bodyName string, s *spline.Spline) error {
	body := p.Body(bodyName)
	if body == nil {
		return fmt.Errorf("brep: no body %q in part %q", bodyName, p.Name)
	}
	if body.Kind != Solid {
		return fmt.Errorf("brep: cannot split %s body %q", body.Kind, bodyName)
	}
	prism, ok := body.Shape.(*Prism)
	if !ok {
		return fmt.Errorf("brep: split requires a prismatic body, got %T", body.Shape)
	}
	if len(body.Cavities) > 0 {
		return fmt.Errorf("brep: cannot split body %q with cavities", bodyName)
	}
	x0 := prism.Bottom.Start().X
	x1 := prism.Bottom.End().X
	const tol = 1e-6
	if math.Abs(s.Start().X-x0) > tol || math.Abs(s.End().X-x1) > tol {
		return fmt.Errorf("brep: split spline must span x=[%g,%g], spans [%g,%g]",
			x0, x1, s.Start().X, s.End().X)
	}
	// The spline must stay strictly between the body's boundaries so that
	// the split yields two non-degenerate bodies.
	sb := &SplineBoundary{S: s}
	sLo, sHi := sb.YRange()
	_, botHi := prism.Bottom.YRange()
	topLo, _ := prism.Top.YRange()
	if sLo <= botHi || sHi >= topLo {
		return fmt.Errorf("brep: split spline y range [%g,%g] leaves the body interior (bottom max %g, top min %g)",
			sLo, sHi, botHi, topLo)
	}

	upper := &Body{
		Name:  body.Name + "-upper",
		Kind:  Solid,
		Phase: upperBodyPhase,
		Shape: &Prism{Top: prism.Top, Bottom: sb, Z0: prism.Z0, Z1: prism.Z1},
	}
	lower := &Body{
		Name:  body.Name + "-lower",
		Kind:  Solid,
		Phase: lowerBodyPhase,
		Shape: &Prism{Top: sb, Bottom: prism.Bottom, Z0: prism.Z0, Z1: prism.Z1},
	}
	p.RemoveBody(bodyName)
	p.Bodies = append(p.Bodies, upper, lower)
	p.record("split-by-spline body=%s arc-length=%.3g", bodyName, s.ArcLength())
	return nil
}

// EmbedOpts selects the CAD operation variant for EmbedSphere, the four
// combinations of the paper's Table 3.
type EmbedOpts struct {
	// MaterialRemoval first cuts a spherical cavity in the host body and
	// then inserts the new sphere body into the empty space (§3.2.2).
	// Without it, the sphere body simply coexists with the host solid
	// (§3.2.1).
	MaterialRemoval bool
	// SurfaceBody creates the sphere as a zero-thickness surface body
	// instead of a solid body.
	SurfaceBody bool
}

// EmbedSphere applies the §3.2 embedded-sphere feature: a sphere of radius
// r centred at c is embedded inside the named host body. The new body is
// named "sphere".
func EmbedSphere(p *Part, hostName string, c geom.Vec3, r float64, opts EmbedOpts) error {
	host := p.Body(hostName)
	if host == nil {
		return fmt.Errorf("brep: no body %q in part %q", hostName, p.Name)
	}
	if host.Kind != Solid {
		return fmt.Errorf("brep: host body %q must be solid", hostName)
	}
	if r <= 0 {
		return fmt.Errorf("brep: sphere radius must be positive, got %g", r)
	}
	hb := host.Shape.Bounds()
	sb := (&Sphere{Center: c, R: r}).Bounds()
	if !hb.Contains(sb.Min) || !hb.Contains(sb.Max) {
		return fmt.Errorf("brep: sphere %v r=%g not fully inside host bounds %v..%v",
			c, r, hb.Min, hb.Max)
	}
	if p.Body("sphere") != nil {
		return fmt.Errorf("brep: part already has a sphere body")
	}
	if opts.MaterialRemoval {
		host.Cavities = append(host.Cavities, &Sphere{Center: c, R: r})
	}
	kind := Solid
	if opts.SurfaceBody {
		kind = Surface
	}
	p.Bodies = append(p.Bodies, &Body{
		Name:  "sphere",
		Kind:  kind,
		Shape: &Sphere{Center: c, R: r},
	})
	p.record("embed-sphere host=%s c=%v r=%g removal=%t surface=%t",
		hostName, c, r, opts.MaterialRemoval, opts.SurfaceBody)
	return nil
}

// AddThroughHole cuts a circular hole of radius r through the full
// thickness of a prismatic solid body at (cx, cy). Real engineering
// designs "often include complex and multi-component systems" (§3.1);
// holes let the demo parts carry realistic mounting features alongside
// the security features.
func AddThroughHole(p *Part, bodyName string, cx, cy, r float64) error {
	body := p.Body(bodyName)
	if body == nil {
		return fmt.Errorf("brep: no body %q in part %q", bodyName, p.Name)
	}
	if body.Kind != Solid {
		return fmt.Errorf("brep: host body %q must be solid", bodyName)
	}
	prism, ok := body.Shape.(*Prism)
	if !ok {
		return fmt.Errorf("brep: through holes require a prismatic body, got %T", body.Shape)
	}
	if r <= 0 {
		return fmt.Errorf("brep: hole radius must be positive, got %g", r)
	}
	// The hole disc must lie inside the body's profile over its x span
	// (evaluated locally: a hole in a wide grip is fine even when the
	// gauge section is narrower).
	x0 := prism.Bottom.Start().X
	x1 := prism.Bottom.End().X
	if cx-r <= x0 || cx+r >= x1 {
		return fmt.Errorf("brep: hole at (%g,%g) r=%g leaves the body in x", cx, cy, r)
	}
	_, botHi, err := boundaryRangeOver(prism.Bottom, cx-r, cx+r)
	if err != nil {
		return err
	}
	topLo, _, err := boundaryRangeOver(prism.Top, cx-r, cx+r)
	if err != nil {
		return err
	}
	if cy-r <= botHi || cy+r >= topLo {
		return fmt.Errorf("brep: hole at (%g,%g) r=%g leaves the body interior (local y range %g..%g)",
			cx, cy, r, botHi, topLo)
	}
	circle := func(sign float64) Boundary {
		return &FuncBoundary{
			X0: cx - r, X1: cx + r, Tag: "hole-arc",
			F: func(x float64) float64 {
				dx := geom.Clamp(x-cx, -r, r)
				return cy + sign*math.Sqrt(math.Max(0, r*r-dx*dx))
			},
		}
	}
	body.Cavities = append(body.Cavities, &Prism{
		Top:    circle(+1),
		Bottom: circle(-1),
		Z0:     prism.Z0,
		Z1:     prism.Z1,
	})
	p.record("through-hole body=%s c=(%g,%g) r=%g", bodyName, cx, cy, r)
	return nil
}

// boundaryRangeOver returns the min/max y of a boundary restricted to the
// x interval [x0, x1], using a reference-resolution flattening.
func boundaryRangeOver(b Boundary, x0, x1 float64) (lo, hi float64, err error) {
	pts, err := b.Flatten(refOpts)
	if err != nil {
		return 0, 0, err
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := 0; i+1 < len(pts); i++ {
		a, c := pts[i], pts[i+1]
		if c.X < x0 || a.X > x1 || c.X <= a.X {
			continue
		}
		// Clip the segment's parameter range to the window.
		f0 := geom.Clamp((x0-a.X)/(c.X-a.X), 0, 1)
		f1 := geom.Clamp((x1-a.X)/(c.X-a.X), 0, 1)
		for _, f := range [3]float64{f0, (f0 + f1) / 2, f1} {
			p := a.Lerp(c, f)
			lo = math.Min(lo, p.Y)
			hi = math.Max(hi, p.Y)
		}
	}
	if math.IsInf(lo, 1) {
		return 0, 0, fmt.Errorf("brep: boundary has no span over [%g,%g]", x0, x1)
	}
	return lo, hi, nil
}

// SplitSplineThroughGauge builds the paper's split curve for a tensile
// bar: straight runs along the centreline in the grips, with a wavy spline
// crossing the gauge section whose arc length is controlled by the wave
// amplitude. amplitude is the peak y offset from the centreline (must keep
// the curve inside the gauge width), waves is the number of half-waves.
func SplitSplineThroughGauge(d TensileBarDims, amplitude float64, waves int) (*spline.Spline, error) {
	return SplitSplineAt(d, d.MidY(), amplitude, waves)
}

// SplitSplineAt builds a split curve routed along y = centerY instead of
// the specimen centreline, enabling multiple stacked split features in one
// body ("such features can overlap or cut across other design features",
// paper §3.1). The wave band [centerY-amplitude, centerY+amplitude] must
// stay inside the gauge width.
func SplitSplineAt(d TensileBarDims, centerY, amplitude float64, waves int) (*spline.Spline, error) {
	if waves < 1 {
		return nil, fmt.Errorf("brep: waves must be >= 1, got %d", waves)
	}
	lo := d.MidY() - d.GaugeWidth/2
	hi := d.MidY() + d.GaugeWidth/2
	if amplitude <= 0 || centerY-amplitude <= lo || centerY+amplitude >= hi {
		return nil, fmt.Errorf("brep: wave band [%g,%g] must stay inside gauge (%g,%g)",
			centerY-amplitude, centerY+amplitude, lo, hi)
	}
	mid := centerY
	gs, ge := d.GaugeStart(), d.GaugeEnd()
	// Control points: straight through the grips, sinusoidal through the
	// gauge region.
	pts := []geom.Vec2{geom.V2(0, mid), geom.V2(gs-d.transitionLength(), mid)}
	const perWave = 4
	n := waves * perWave
	for i := 0; i <= n; i++ {
		x := gs + float64(i)/float64(n)*(ge-gs)
		y := mid + amplitude*math.Sin(float64(waves)*math.Pi*float64(i)/float64(n))
		pts = append(pts, geom.V2(x, y))
	}
	pts = append(pts, geom.V2(ge+d.transitionLength(), mid), geom.V2(d.Length, mid))
	return spline.Interpolate(pts)
}
