package brep

import (
	"math"
	"strings"
	"testing"

	"obfuscade/internal/geom"
	"obfuscade/internal/spline"
)

func mustBar(t *testing.T) *Part {
	t.Helper()
	p, err := NewTensileBar("bar", DefaultTensileBar())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDefaultTensileBarValid(t *testing.T) {
	if err := DefaultTensileBar().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTensileBarDimsValidate(t *testing.T) {
	bad := DefaultTensileBar()
	bad.GaugeWidth = 25 // wider than grip
	if err := bad.Validate(); err == nil {
		t.Error("expected error for gauge wider than grip")
	}
	bad = DefaultTensileBar()
	bad.FilletRadius = 1 // too small for the width drop
	if err := bad.Validate(); err == nil {
		t.Error("expected error for tiny fillet")
	}
	bad = DefaultTensileBar()
	bad.Thickness = -1
	if err := bad.Validate(); err == nil {
		t.Error("expected error for negative thickness")
	}
	bad = DefaultTensileBar()
	bad.Length = 40 // gauge + transitions will not fit
	if err := bad.Validate(); err == nil {
		t.Error("expected error for too-short bar")
	}
}

func TestHalfWidthProfile(t *testing.T) {
	d := DefaultTensileBar()
	if got := d.HalfWidth(0); !geom.ApproxEq(got, d.GripWidth/2, 1e-12) {
		t.Errorf("grip half-width = %v", got)
	}
	mid := d.Length / 2
	if got := d.HalfWidth(mid); !geom.ApproxEq(got, d.GaugeWidth/2, 1e-12) {
		t.Errorf("gauge half-width = %v", got)
	}
	// Continuity at the transition endpoints.
	gs := d.GaugeStart()
	tl := d.transitionLength()
	if got := d.HalfWidth(gs - tl + 1e-9); math.Abs(got-d.GripWidth/2) > 1e-3 {
		t.Errorf("half-width at grip end = %v, want ~%v", got, d.GripWidth/2)
	}
	if got := d.HalfWidth(gs - 1e-9); math.Abs(got-d.GaugeWidth/2) > 1e-3 {
		t.Errorf("half-width at gauge start = %v, want ~%v", got, d.GaugeWidth/2)
	}
	// Monotone decrease across the left transition.
	prev := math.Inf(1)
	for x := gs - tl; x <= gs; x += 0.1 {
		h := d.HalfWidth(x)
		if h > prev+1e-9 {
			t.Fatalf("half-width not monotone at x=%g", x)
		}
		prev = h
	}
}

func TestTensileBarVolume(t *testing.T) {
	p := mustBar(t)
	d := DefaultTensileBar()
	v := p.Volume()
	// Sanity bracket: between all-gauge-width and all-grip-width slabs.
	lo := d.Length * d.GaugeWidth * d.Thickness
	hi := d.Length * d.GripWidth * d.Thickness
	if v <= lo || v >= hi {
		t.Errorf("volume %v outside (%v, %v)", v, lo, hi)
	}
}

func TestPrismProfileClosedCCW(t *testing.T) {
	p := mustBar(t)
	prism := p.Bodies[0].Shape.(*Prism)
	poly, err := prism.Profile(spline.FlattenOpts{Deviation: 0.05, Angle: 0.3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !poly.IsCCW() {
		t.Error("profile should be CCW")
	}
	if poly.Area() <= 0 {
		t.Error("profile area should be positive")
	}
}

func TestNewRectPrism(t *testing.T) {
	p, err := NewRectPrism("prism", geom.V3(25.4, 12.7, 12.7))
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Volume(); !geom.ApproxEq(got, 25.4*12.7*12.7, 1e-6) {
		t.Errorf("prism volume = %v", got)
	}
	if _, err := NewRectPrism("bad", geom.V3(-1, 1, 1)); err == nil {
		t.Error("expected error for negative size")
	}
}

func TestSplitSplineThroughGauge(t *testing.T) {
	d := DefaultTensileBar()
	s, err := SplitSplineThroughGauge(d, 2.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !geom.ApproxEq(s.Start().X, 0, 1e-9) || !geom.ApproxEq(s.End().X, d.Length, 1e-9) {
		t.Errorf("spline span [%g,%g]", s.Start().X, s.End().X)
	}
	// Arc length exceeds the straight-line length because of the waves.
	if s.ArcLength() <= d.Length {
		t.Errorf("wavy spline arc length %v should exceed %v", s.ArcLength(), d.Length)
	}
	// Invalid parameters.
	if _, err := SplitSplineThroughGauge(d, 0, 3); err == nil {
		t.Error("expected error for zero amplitude")
	}
	if _, err := SplitSplineThroughGauge(d, 5, 3); err == nil {
		t.Error("expected error for amplitude beyond gauge half-width")
	}
	if _, err := SplitSplineThroughGauge(d, 1, 0); err == nil {
		t.Error("expected error for zero waves")
	}
}

func TestSplitBySpline(t *testing.T) {
	p := mustBar(t)
	d := DefaultTensileBar()
	s, err := SplitSplineThroughGauge(d, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	before := p.Volume()
	if err := SplitBySpline(p, "bar", s); err != nil {
		t.Fatal(err)
	}
	if p.Body("bar") != nil {
		t.Error("original body should be replaced")
	}
	up := p.Body("bar-upper")
	lo := p.Body("bar-lower")
	if up == nil || lo == nil {
		t.Fatal("split bodies missing")
	}
	if up.Phase == lo.Phase {
		t.Error("split bodies must have distinct tessellation phases")
	}
	// Zero-volume separation: volumes sum to the original.
	after := up.Volume() + lo.Volume()
	if math.Abs(after-before)/before > 0.01 {
		t.Errorf("split changed volume: %v -> %v", before, after)
	}
	if len(p.History) != 2 || !strings.Contains(p.History[1], "split-by-spline") {
		t.Errorf("history = %v", p.History)
	}
}

func TestSplitBySplineErrors(t *testing.T) {
	d := DefaultTensileBar()
	s, _ := SplitSplineThroughGauge(d, 2, 3)

	p := mustBar(t)
	if err := SplitBySpline(p, "missing", s); err == nil {
		t.Error("expected error for missing body")
	}
	// Spline not spanning the body.
	short, _ := spline.Interpolate([]geom.Vec2{geom.V2(10, 9.5), geom.V2(50, 9.5)})
	if err := SplitBySpline(p, "bar", short); err == nil {
		t.Error("expected error for non-spanning spline")
	}
	// Spline leaving the body interior.
	wild, _ := spline.Interpolate([]geom.Vec2{
		geom.V2(0, 9.5), geom.V2(d.Length/2, 25), geom.V2(d.Length, 9.5),
	})
	if err := SplitBySpline(p, "bar", wild); err == nil {
		t.Error("expected error for spline leaving interior")
	}
}

func TestEmbedSphereVariants(t *testing.T) {
	size := geom.V3(25.4, 12.7, 12.7)
	c := geom.V3(12.7, 6.35, 6.35)
	const r = 3.175

	for _, tc := range []struct {
		name     string
		opts     EmbedOpts
		kind     Kind
		cavities int
	}{
		{"solid-no-removal", EmbedOpts{}, Solid, 0},
		{"surface-no-removal", EmbedOpts{SurfaceBody: true}, Surface, 0},
		{"solid-removal", EmbedOpts{MaterialRemoval: true}, Solid, 1},
		{"surface-removal", EmbedOpts{MaterialRemoval: true, SurfaceBody: true}, Surface, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p, err := NewRectPrism("prism", size)
			if err != nil {
				t.Fatal(err)
			}
			if err := EmbedSphere(p, "prism", c, r, tc.opts); err != nil {
				t.Fatal(err)
			}
			sph := p.Body("sphere")
			if sph == nil {
				t.Fatal("sphere body missing")
			}
			if sph.Kind != tc.kind {
				t.Errorf("kind = %v, want %v", sph.Kind, tc.kind)
			}
			if got := len(p.Body("prism").Cavities); got != tc.cavities {
				t.Errorf("cavities = %d, want %d", got, tc.cavities)
			}
		})
	}
}

func TestEmbedSphereErrors(t *testing.T) {
	p, _ := NewRectPrism("prism", geom.V3(25.4, 12.7, 12.7))
	c := geom.V3(12.7, 6.35, 6.35)
	if err := EmbedSphere(p, "nope", c, 1, EmbedOpts{}); err == nil {
		t.Error("expected error for missing host")
	}
	if err := EmbedSphere(p, "prism", c, -1, EmbedOpts{}); err == nil {
		t.Error("expected error for negative radius")
	}
	if err := EmbedSphere(p, "prism", geom.V3(1, 1, 1), 5, EmbedOpts{}); err == nil {
		t.Error("expected error for sphere outside host")
	}
	if err := EmbedSphere(p, "prism", c, 3, EmbedOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := EmbedSphere(p, "prism", c, 2, EmbedOpts{}); err == nil {
		t.Error("expected error for duplicate sphere")
	}
}

func TestEmbeddedSphereVolumeSemantics(t *testing.T) {
	size := geom.V3(25.4, 12.7, 12.7)
	c := geom.V3(12.7, 6.35, 6.35)
	const r = 3.175
	boxVol := size.X * size.Y * size.Z
	sphVol := 4.0 / 3 * math.Pi * r * r * r

	// Without removal the solid sphere overlaps host material; total CAD
	// volume double-counts (two independent bodies).
	p1, _ := NewRectPrism("prism", size)
	_ = EmbedSphere(p1, "prism", c, r, EmbedOpts{})
	if got := p1.Volume(); !geom.ApproxEq(got, boxVol+sphVol, 1e-6) {
		t.Errorf("no-removal volume = %v, want %v", got, boxVol+sphVol)
	}
	// With removal the cavity subtracts and the solid sphere adds back.
	p2, _ := NewRectPrism("prism", size)
	_ = EmbedSphere(p2, "prism", c, r, EmbedOpts{MaterialRemoval: true})
	if got := p2.Volume(); !geom.ApproxEq(got, boxVol, 1e-6) {
		t.Errorf("removal volume = %v, want %v", got, boxVol)
	}
	// Surface sphere adds no volume.
	p3, _ := NewRectPrism("prism", size)
	_ = EmbedSphere(p3, "prism", c, r, EmbedOpts{MaterialRemoval: true, SurfaceBody: true})
	if got := p3.Volume(); !geom.ApproxEq(got, boxVol-sphVol, 1e-6) {
		t.Errorf("surface removal volume = %v, want %v", got, boxVol-sphVol)
	}
}

func TestPartBodyOps(t *testing.T) {
	p := mustBar(t)
	if p.Body("bar") == nil {
		t.Error("Body lookup failed")
	}
	if !p.RemoveBody("bar") {
		t.Error("RemoveBody should succeed")
	}
	if p.RemoveBody("bar") {
		t.Error("double RemoveBody should fail")
	}
}

func TestKindString(t *testing.T) {
	if Solid.String() != "solid" || Surface.String() != "surface" {
		t.Error("Kind.String misbehaves")
	}
}
