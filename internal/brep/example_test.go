package brep_test

import (
	"fmt"
	"log"

	"obfuscade/internal/brep"
	"obfuscade/internal/geom"
)

// Build the paper's protected tensile bar: a dogbone with the spline
// split feature dividing it into two bodies with zero separation.
func Example() {
	part, err := brep.NewTensileBar("bar", brep.DefaultTensileBar())
	if err != nil {
		log.Fatal(err)
	}
	s, err := brep.SplitSplineThroughGauge(brep.DefaultTensileBar(), 2, 3)
	if err != nil {
		log.Fatal(err)
	}
	before := part.Volume()
	if err := brep.SplitBySpline(part, "bar", s); err != nil {
		log.Fatal(err)
	}
	fmt.Println("bodies:", len(part.Bodies))
	fmt.Printf("volume preserved: %t\n", equalWithin(part.Volume(), before, 0.01))
	// Output:
	// bodies: 2
	// volume preserved: true
}

// Embed the Table 3 sphere feature in its sabotaged (no material removal)
// state.
func ExampleEmbedSphere() {
	part, err := brep.NewRectPrism("prism", geom.V3(25.4, 12.7, 12.7))
	if err != nil {
		log.Fatal(err)
	}
	err = brep.EmbedSphere(part, "prism", geom.V3(12.7, 6.35, 6.35), 3.175, brep.EmbedOpts{})
	if err != nil {
		log.Fatal(err)
	}
	sphere := part.Body("sphere")
	fmt.Println("sphere kind:", sphere.Kind)
	fmt.Println("host cavities:", len(part.Body("prism").Cavities))
	// Output:
	// sphere kind: solid
	// host cavities: 0
}

func equalWithin(a, b, rel float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= rel*b
}
