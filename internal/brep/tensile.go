package brep

import (
	"fmt"
	"math"

	"obfuscade/internal/geom"
)

// TensileBarDims parametrises a flat dogbone tensile specimen in the style
// of ASTM D638 Type IV, the geometry class used for the paper's Table 2
// experiments (gauge width 6 mm).
type TensileBarDims struct {
	// Length is the overall specimen length (x), mm.
	Length float64
	// GripWidth is the width of the wide grip ends (y), mm.
	GripWidth float64
	// GaugeWidth is the width of the narrow gauge section, mm.
	GaugeWidth float64
	// GaugeLength is the length of the constant-width gauge section, mm.
	GaugeLength float64
	// FilletRadius is the grip-to-gauge transition radius, mm.
	FilletRadius float64
	// Thickness is the specimen thickness (z), mm.
	Thickness float64
}

// DefaultTensileBar returns ASTM D638 Type IV-style dimensions matching
// the paper's 6 mm gauge width.
func DefaultTensileBar() TensileBarDims {
	return TensileBarDims{
		Length:       115,
		GripWidth:    19,
		GaugeWidth:   6,
		GaugeLength:  33,
		FilletRadius: 14,
		Thickness:    3.2,
	}
}

// Validate reports whether the dimensions describe a buildable dogbone.
func (d TensileBarDims) Validate() error {
	switch {
	case d.Length <= 0 || d.GripWidth <= 0 || d.GaugeWidth <= 0 ||
		d.GaugeLength <= 0 || d.FilletRadius <= 0 || d.Thickness <= 0:
		return fmt.Errorf("brep: tensile bar dimensions must be positive: %+v", d)
	case d.GaugeWidth >= d.GripWidth:
		return fmt.Errorf("brep: gauge width %g must be narrower than grip width %g",
			d.GaugeWidth, d.GripWidth)
	}
	drop := (d.GripWidth - d.GaugeWidth) / 2
	if d.FilletRadius < drop {
		return fmt.Errorf("brep: fillet radius %g too small for width drop %g",
			d.FilletRadius, drop)
	}
	if d.GaugeLength+2*d.transitionLength() >= d.Length {
		return fmt.Errorf("brep: gauge+transitions (%g) exceed length %g",
			d.GaugeLength+2*d.transitionLength(), d.Length)
	}
	return nil
}

// transitionLength returns the x extent of one fillet transition.
func (d TensileBarDims) transitionLength() float64 {
	drop := (d.GripWidth - d.GaugeWidth) / 2
	return math.Sqrt(d.FilletRadius*d.FilletRadius -
		(d.FilletRadius-drop)*(d.FilletRadius-drop))
}

// GaugeStart returns the x coordinate where the constant-width gauge
// section begins.
func (d TensileBarDims) GaugeStart() float64 { return (d.Length - d.GaugeLength) / 2 }

// GaugeEnd returns the x coordinate where the gauge section ends.
func (d TensileBarDims) GaugeEnd() float64 { return (d.Length + d.GaugeLength) / 2 }

// MidY returns the y coordinate of the specimen centreline.
func (d TensileBarDims) MidY() float64 { return d.GripWidth / 2 }

// HalfWidth returns the half-width h(x) of the dogbone profile about the
// centreline.
func (d TensileBarDims) HalfWidth(x float64) float64 {
	gs, ge := d.GaugeStart(), d.GaugeEnd()
	tl := d.transitionLength()
	hw := d.GripWidth / 2
	gw := d.GaugeWidth / 2
	r := d.FilletRadius
	switch {
	case x <= gs-tl || x >= ge+tl:
		return hw
	case x >= gs && x <= ge:
		return gw
	case x < gs: // left transition; fillet circle centred above gauge edge
		dx := gs - x
		return gw + r - math.Sqrt(r*r-dx*dx)
	default: // right transition
		dx := x - ge
		return gw + r - math.Sqrt(r*r-dx*dx)
	}
}

// outlineBoundary builds one side of the dogbone outline (side = +1 for
// top, -1 for bottom) as a composite of smooth pieces: flat grips, fillet
// arcs and the flat gauge. Tessellating each smooth piece separately keeps
// the adaptive flattening well-posed — the tangent kinks at the
// grip-to-fillet junctions are genuine model edges, always represented by
// a vertex.
func (d TensileBarDims) outlineBoundary(side float64) Boundary {
	mid := d.MidY()
	gs, ge := d.GaugeStart(), d.GaugeEnd()
	tl := d.transitionLength()
	grip := mid + side*d.GripWidth/2
	gauge := mid + side*d.GaugeWidth/2
	at := func(x float64) float64 { return mid + side*d.HalfWidth(x) }
	return &CompositeBoundary{Parts: []Boundary{
		&LineBoundary{X0: 0, Y0: grip, X1: gs - tl, Y1: grip},
		&FuncBoundary{X0: gs - tl, X1: gs, Tag: "fillet-left", F: at},
		&LineBoundary{X0: gs, Y0: gauge, X1: ge, Y1: gauge},
		&FuncBoundary{X0: ge, X1: ge + tl, Tag: "fillet-right", F: at},
		&LineBoundary{X0: ge + tl, Y0: grip, X1: d.Length, Y1: grip},
	}}
}

// NewTensileBar creates a single-body dogbone part named name, spanning
// x in [0, Length], centred on y = GripWidth/2, z in [0, Thickness].
func NewTensileBar(name string, d TensileBarDims) (*Part, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	top := d.outlineBoundary(+1)
	bottom := d.outlineBoundary(-1)
	body := &Body{
		Name: "bar",
		Kind: Solid,
		Shape: &Prism{
			Top:    top,
			Bottom: bottom,
			Z0:     0,
			Z1:     d.Thickness,
		},
	}
	p := &Part{Name: name, Bodies: []*Body{body}}
	p.record("tensile-bar L=%g W=%g w=%g l=%g R=%g t=%g",
		d.Length, d.GripWidth, d.GaugeWidth, d.GaugeLength, d.FilletRadius, d.Thickness)
	return p, nil
}

// NewRectPrism creates a single-body rectangular prism part, the host
// geometry of the §3.2 embedded-sphere experiments (default
// 25.4 x 12.7 x 12.7 mm = 1 x 0.5 x 0.5 in).
func NewRectPrism(name string, size geom.Vec3) (*Part, error) {
	if size.X <= 0 || size.Y <= 0 || size.Z <= 0 {
		return nil, fmt.Errorf("brep: prism size must be positive: %v", size)
	}
	body := &Body{
		Name: "prism",
		Kind: Solid,
		Shape: &Prism{
			Top:    &LineBoundary{X0: 0, Y0: size.Y, X1: size.X, Y1: size.Y},
			Bottom: &LineBoundary{X0: 0, Y0: 0, X1: size.X, Y1: 0},
			Z0:     0,
			Z1:     size.Z,
		},
	}
	p := &Part{Name: name, Bodies: []*Body{body}}
	p.record("rect-prism %gx%gx%g", size.X, size.Y, size.Z)
	return p, nil
}
