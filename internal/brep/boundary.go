package brep

import (
	"fmt"
	"math"

	"obfuscade/internal/geom"
	"obfuscade/internal/spline"
)

// Boundary is an x-monotone planar curve y(x), running left to right, that
// bounds a prism profile. Flatten converts it to a polyline whose chordal
// error satisfies the given options. Implementations that depend on the
// sampling phase (SplineBoundary) realise the paper's per-body tessellation
// mismatch.
type Boundary interface {
	// Flatten returns the polyline approximation, including both
	// endpoints, ordered by increasing x.
	Flatten(opts spline.FlattenOpts) ([]geom.Vec2, error)
	// Start returns the left endpoint.
	Start() geom.Vec2
	// End returns the right endpoint.
	End() geom.Vec2
	// YRange returns conservative lower/upper bounds of y along the curve.
	YRange() (lo, hi float64)
	// boundaryTag names the concrete type for serialisation.
	boundaryTag() string
}

// LineBoundary is a straight segment from (X0, Y0) to (X1, Y1).
type LineBoundary struct {
	X0, Y0, X1, Y1 float64
}

// Flatten implements Boundary.
func (l *LineBoundary) Flatten(spline.FlattenOpts) ([]geom.Vec2, error) {
	return []geom.Vec2{geom.V2(l.X0, l.Y0), geom.V2(l.X1, l.Y1)}, nil
}

// Start implements Boundary.
func (l *LineBoundary) Start() geom.Vec2 { return geom.V2(l.X0, l.Y0) }

// End implements Boundary.
func (l *LineBoundary) End() geom.Vec2 { return geom.V2(l.X1, l.Y1) }

// YRange implements Boundary.
func (l *LineBoundary) YRange() (float64, float64) {
	return math.Min(l.Y0, l.Y1), math.Max(l.Y0, l.Y1)
}

func (l *LineBoundary) boundaryTag() string { return "line" }

// FuncBoundary is an analytic curve y = F(x) over [X0, X1], flattened
// adaptively. It is used for the dogbone fillet arcs, whose facet count
// responds to the STL resolution setting (Fig. 5).
type FuncBoundary struct {
	X0, X1 float64
	F      func(x float64) float64
	// Tag distinguishes serialised instances.
	Tag string
}

// Flatten implements Boundary. Sampling is uniform in x with a segment
// count doubled until the chordal deviation and facet angle tolerances are
// met; interior stations are shifted by the phase fraction.
func (f *FuncBoundary) Flatten(opts spline.FlattenOpts) ([]geom.Vec2, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if f.X1 <= f.X0 {
		return nil, fmt.Errorf("brep: FuncBoundary has empty x span [%g,%g]", f.X0, f.X1)
	}
	const maxSeg = 1 << 14
	for n := 1; n <= maxSeg; n *= 2 {
		pts := f.sample(n, opts.Phase)
		if f.withinTol(pts, opts.Deviation, opts.Angle) {
			return pts, nil
		}
	}
	return f.sample(maxSeg, opts.Phase), nil
}

func (f *FuncBoundary) sample(n int, phase float64) []geom.Vec2 {
	pts := make([]geom.Vec2, 0, n+1)
	at := func(x float64) geom.Vec2 { return geom.V2(x, f.F(x)) }
	pts = append(pts, at(f.X0))
	for i := 1; i < n; i++ {
		x := f.X0 + (float64(i)+phase)/float64(n)*(f.X1-f.X0)
		pts = append(pts, at(x))
	}
	pts = append(pts, at(f.X1))
	return pts
}

func (f *FuncBoundary) withinTol(pts []geom.Vec2, dev, angle float64) bool {
	for i := 0; i+1 < len(pts); i++ {
		a, b := pts[i], pts[i+1]
		for _, frac := range [3]float64{0.25, 0.5, 0.75} {
			x := a.X + frac*(b.X-a.X)
			p := geom.V2(x, f.F(x))
			if (geom.Segment2{A: a, B: b}).Dist(p) > dev {
				return false
			}
		}
	}
	// The angular criterion is evaluated within each interval (chord
	// versus curve), so genuine tangent discontinuities at feature edges
	// (e.g. the grip-to-fillet kink of a dogbone) do not force endless
	// subdivision — they are real edges, not tessellation error.
	for i := 0; i+1 < len(pts); i++ {
		a, b := pts[i], pts[i+1]
		xm := (a.X + b.X) / 2
		m := geom.V2(xm, f.F(xm))
		u := m.Sub(a)
		v := b.Sub(m)
		if u.Len() == 0 || v.Len() == 0 {
			continue
		}
		c := geom.Clamp(u.Dot(v)/(u.Len()*v.Len()), -1, 1)
		if math.Acos(c) > angle {
			return false
		}
	}
	return true
}

// Start implements Boundary.
func (f *FuncBoundary) Start() geom.Vec2 { return geom.V2(f.X0, f.F(f.X0)) }

// End implements Boundary.
func (f *FuncBoundary) End() geom.Vec2 { return geom.V2(f.X1, f.F(f.X1)) }

// YRange implements Boundary (sampled conservatively).
func (f *FuncBoundary) YRange() (float64, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	const n = 256
	for i := 0; i <= n; i++ {
		y := f.F(f.X0 + float64(i)/n*(f.X1-f.X0))
		lo = math.Min(lo, y)
		hi = math.Max(hi, y)
	}
	return lo, hi
}

func (f *FuncBoundary) boundaryTag() string { return "func:" + f.Tag }

// SplineBoundary wraps a sketch spline as a prism boundary. This is the
// boundary created by the spline split feature; its flattening honours the
// phase option, so two bodies sharing the same SplineBoundary produce
// mismatched polylines (paper Fig. 4).
type SplineBoundary struct {
	S *spline.Spline
}

// Flatten implements Boundary.
func (s *SplineBoundary) Flatten(opts spline.FlattenOpts) ([]geom.Vec2, error) {
	return s.S.Flatten(opts)
}

// Start implements Boundary.
func (s *SplineBoundary) Start() geom.Vec2 { return s.S.Start() }

// End implements Boundary.
func (s *SplineBoundary) End() geom.Vec2 { return s.S.End() }

// YRange implements Boundary (sampled conservatively).
func (s *SplineBoundary) YRange() (float64, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	const n = 256
	for i := 0; i <= n; i++ {
		y := s.S.Eval(float64(i) / n).Y
		lo = math.Min(lo, y)
		hi = math.Max(hi, y)
	}
	return lo, hi
}

func (s *SplineBoundary) boundaryTag() string { return "spline" }

// CompositeBoundary concatenates boundaries end to end (left to right).
type CompositeBoundary struct {
	Parts []Boundary
}

// Flatten implements Boundary.
func (c *CompositeBoundary) Flatten(opts spline.FlattenOpts) ([]geom.Vec2, error) {
	if len(c.Parts) == 0 {
		return nil, fmt.Errorf("brep: empty composite boundary")
	}
	var out []geom.Vec2
	for i, p := range c.Parts {
		pts, err := p.Flatten(opts)
		if err != nil {
			return nil, err
		}
		if i > 0 {
			if len(out) > 0 && len(pts) > 0 && out[len(out)-1].Eq(pts[0], 1e-9) {
				pts = pts[1:] // drop duplicated junction vertex
			}
		}
		out = append(out, pts...)
	}
	return out, nil
}

// Start implements Boundary.
func (c *CompositeBoundary) Start() geom.Vec2 { return c.Parts[0].Start() }

// End implements Boundary.
func (c *CompositeBoundary) End() geom.Vec2 { return c.Parts[len(c.Parts)-1].End() }

// YRange implements Boundary.
func (c *CompositeBoundary) YRange() (float64, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range c.Parts {
		l, h := p.YRange()
		lo = math.Min(lo, l)
		hi = math.Max(hi, h)
	}
	return lo, hi
}

func (c *CompositeBoundary) boundaryTag() string { return "composite" }
