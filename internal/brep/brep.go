// Package brep is a small multi-body CAD kernel sufficient to express the
// designs in the ObfusCADe paper: prismatic solids with curved planar
// profiles, embedded spheres (solid or surface bodies, with or without
// material removal), and spline split features that divide one body into
// two with zero separation.
//
// The kernel deliberately mirrors the SolidWorks semantics the paper
// relies on:
//
//   - A part may contain several bodies. Bodies may be solids or surface
//     (zero-thickness) bodies.
//   - A split feature produces two solid bodies whose shared boundary is
//     the *same* curve object, but each body tessellates it independently
//     when exported (see package tessellate) — the root cause of the
//     Fig. 4 gaps.
//   - Material removal records a cavity on the host body; re-embedding a
//     body into the cavity does not merge it with the host.
package brep

import (
	"fmt"

	"obfuscade/internal/geom"
	"obfuscade/internal/spline"
)

// Kind distinguishes solid bodies from zero-thickness surface bodies.
type Kind int

const (
	// Solid bodies enclose material.
	Solid Kind = iota
	// Surface bodies are zero-thickness geometry (§3.2's "surface
	// sphere"). They export to STL identically to solid boundaries but
	// bound no volume.
	Surface
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == Surface {
		return "surface"
	}
	return "solid"
}

// Shape is the geometric support of a body.
type Shape interface {
	// Bounds returns the shape's bounding box.
	Bounds() geom.AABB
	// Volume returns the enclosed volume (0 for surface use).
	Volume() float64
	// kindTag names the concrete shape for serialisation.
	kindTag() string
}

// Prism is an extruded planar region. The profile is an x-monotone region
// in the XY plane bounded below by Bottom and above by Top (both polylines
// y(x) running left to right over the same x span), extruded from Z0 to Z1.
type Prism struct {
	Top, Bottom Boundary
	Z0, Z1      float64
}

// Bounds implements Shape.
func (p *Prism) Bounds() geom.AABB {
	b := geom.EmptyAABB()
	for _, q := range [4]geom.Vec2{p.Top.Start(), p.Top.End(), p.Bottom.Start(), p.Bottom.End()} {
		b.Extend(geom.V3(q.X, q.Y, p.Z0))
		b.Extend(geom.V3(q.X, q.Y, p.Z1))
	}
	lo, hi := p.Top.YRange()
	b.Extend(geom.V3(p.Top.Start().X, lo, p.Z0))
	b.Extend(geom.V3(p.Top.Start().X, hi, p.Z1))
	lo, hi = p.Bottom.YRange()
	b.Extend(geom.V3(p.Bottom.Start().X, lo, p.Z0))
	b.Extend(geom.V3(p.Bottom.Start().X, hi, p.Z1))
	return b
}

// Volume implements Shape. It evaluates the profile area with a reference
// fine flattening.
func (p *Prism) Volume() float64 {
	poly, err := p.Profile(refOpts, 0)
	if err != nil {
		return 0
	}
	return poly.Area() * (p.Z1 - p.Z0)
}

func (p *Prism) kindTag() string { return "prism" }

// refOpts is the reference flattening used for mass properties.
var refOpts = spline.FlattenOpts{Deviation: 0.005, Angle: 0.05}

// Profile returns the closed CCW profile polygon of the prism flattened
// with the given options; phase offsets the sampling of phase-sensitive
// boundaries (the split spline).
func (p *Prism) Profile(opts spline.FlattenOpts, phase float64) (geom.Polygon, error) {
	opts.Phase = phase
	bot, err := p.Bottom.Flatten(opts)
	if err != nil {
		return nil, fmt.Errorf("brep: flatten bottom: %w", err)
	}
	opts.Phase = phase
	top, err := p.Top.Flatten(opts)
	if err != nil {
		return nil, fmt.Errorf("brep: flatten top: %w", err)
	}
	if len(bot) < 2 || len(top) < 2 {
		return nil, fmt.Errorf("brep: degenerate prism boundaries")
	}
	// CCW loop: bottom left->right, right cap, top right->left, left cap.
	poly := make(geom.Polygon, 0, len(bot)+len(top))
	poly = append(poly, bot...)
	for i := len(top) - 1; i >= 0; i-- {
		poly = append(poly, top[i])
	}
	poly = poly.Simplify(1e-9)
	if len(poly) < 3 {
		return nil, fmt.Errorf("brep: degenerate prism profile")
	}
	if !poly.IsCCW() {
		poly = poly.Reversed()
	}
	return poly, nil
}

// Sphere is a spherical shape, used for embedded features and cavities.
type Sphere struct {
	Center geom.Vec3
	R      float64
}

// Bounds implements Shape.
func (s *Sphere) Bounds() geom.AABB {
	d := geom.V3(s.R, s.R, s.R)
	return geom.AABB{Min: s.Center.Sub(d), Max: s.Center.Add(d)}
}

// Volume implements Shape.
func (s *Sphere) Volume() float64 { return 4.0 / 3.0 * 3.141592653589793 * s.R * s.R * s.R }

func (s *Sphere) kindTag() string { return "sphere" }

// Body is one body of a multi-body part.
type Body struct {
	// Name identifies the body within its part.
	Name string
	// Kind is Solid or Surface.
	Kind Kind
	// Shape is the body geometry.
	Shape Shape
	// Cavities lists shapes subtracted from the body (material removal).
	Cavities []Shape
	// Phase is the tessellation sampling phase assigned to the body.
	// Bodies created by a split feature get distinct phases, which is
	// what makes their shared boundary tessellate differently.
	Phase float64
}

// Volume returns the net material volume of the body.
func (b *Body) Volume() float64 {
	if b.Kind == Surface {
		return 0
	}
	v := b.Shape.Volume()
	for _, c := range b.Cavities {
		v -= c.Volume()
	}
	return v
}

// Part is a named multi-body CAD part with a feature history.
type Part struct {
	Name string
	// Bodies in creation order.
	Bodies []*Body
	// History records applied feature operations, oldest first.
	History []string
}

// Body returns the body with the given name, or nil.
func (p *Part) Body(name string) *Body {
	for _, b := range p.Bodies {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// RemoveBody deletes the named body; it reports whether it was present.
func (p *Part) RemoveBody(name string) bool {
	for i, b := range p.Bodies {
		if b.Name == name {
			p.Bodies = append(p.Bodies[:i], p.Bodies[i+1:]...)
			return true
		}
	}
	return false
}

// Bounds returns the bounding box over all bodies.
func (p *Part) Bounds() geom.AABB {
	b := geom.EmptyAABB()
	for _, body := range p.Bodies {
		b = b.Union(body.Shape.Bounds())
	}
	return b
}

// Volume returns the total material volume over all solid bodies.
func (p *Part) Volume() float64 {
	var v float64
	for _, b := range p.Bodies {
		v += b.Volume()
	}
	return v
}

// record appends a feature description to the part history.
func (p *Part) record(format string, args ...any) {
	p.History = append(p.History, fmt.Sprintf(format, args...))
}
