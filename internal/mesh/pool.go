// Pooled scratch for the repair and component analyses. Both walk every
// face of a shell with bitmap/union-find working sets sized to the face
// count; allocating those per call made RepairWinding and
// SplitEdgeComponents allocation hot spots on large STL soups. Recycled
// storage is always re-initialised before use, and pool traffic is never
// counted — sync.Pool reuse depends on GC timing, so a hit counter would
// break the serial-equals-parallel metrics contract.
package mesh

import "sync"

// faceScratch is the reusable per-call working set of the face walkers.
type faceScratch struct {
	visited []bool
	flipped []bool
	parent  []int
}

var faceScratchPool = sync.Pool{New: func() any { return new(faceScratch) }}

// growBool returns b resized to n with every entry false.
func growBool(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	clear(b)
	return b
}

// growIdent returns b resized to n with b[i] = i (union-find identity).
func growIdent(b []int, n int) []int {
	if cap(b) < n {
		b = make([]int, n)
	} else {
		b = b[:n]
	}
	for i := range b {
		b[i] = i
	}
	return b
}
