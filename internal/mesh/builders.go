package mesh

import (
	"math"
	"sync"

	"obfuscade/internal/geom"
)

// BoxShell builds a closed, outward-oriented rectangular box shell spanning
// [min, max].
func BoxShell(name, body string, min, max geom.Vec3) Shell {
	v := [8]geom.Vec3{
		geom.V3(min.X, min.Y, min.Z), geom.V3(max.X, min.Y, min.Z),
		geom.V3(max.X, max.Y, min.Z), geom.V3(min.X, max.Y, min.Z),
		geom.V3(min.X, min.Y, max.Z), geom.V3(max.X, min.Y, max.Z),
		geom.V3(max.X, max.Y, max.Z), geom.V3(min.X, max.Y, max.Z),
	}
	quads := [][4]int{
		{3, 2, 1, 0}, // bottom, outward -Z
		{4, 5, 6, 7}, // top, outward +Z
		{0, 1, 5, 4}, // front y=min
		{2, 3, 7, 6}, // back y=max
		{1, 2, 6, 5}, // right x=max
		{3, 0, 4, 7}, // left x=min
	}
	s := Shell{Name: name, Body: body, Orient: Outward}
	for _, q := range quads {
		s.Tris = append(s.Tris,
			geom.Triangle{A: v[q[0]], B: v[q[1]], C: v[q[2]]},
			geom.Triangle{A: v[q[0]], B: v[q[2]], C: v[q[3]]},
		)
	}
	return s
}

// trigTables is the pooled scratch of SphereShell: per-ring sin/cos
// values computed once instead of four trig calls per emitted point.
// Entries are computed with the exact expressions the per-point reference
// uses, so the facets come out bit-identical.
type trigTables struct {
	st, ct, sp, cp []float64
}

var trigPool = sync.Pool{New: func() any { return new(trigTables) }}

// growF returns b resized to n, reallocating only when capacity is short.
// Contents are unspecified; callers overwrite what they need.
func growF(b []float64, n int) []float64 {
	if cap(b) < n {
		return make([]float64, n)
	}
	return b[:n]
}

// SphereShell builds a closed, outward-oriented UV sphere with the given
// number of latitude and longitude subdivisions. Orientation may be flipped
// afterwards for cavity shells.
//
// The facet stream is bit-identical to sphereShellReference (property
// tested); this version computes each ring's trig once, emits into an
// exactly-sized triangle buffer, and pools its scratch.
func SphereShell(name, body string, center geom.Vec3, radius float64, latSeg, lonSeg int) Shell {
	if latSeg < 2 {
		latSeg = 2
	}
	if lonSeg < 3 {
		lonSeg = 3
	}
	tt := trigPool.Get().(*trigTables)
	defer trigPool.Put(tt)
	tt.st = growF(tt.st, latSeg+1)
	tt.ct = growF(tt.ct, latSeg+1)
	for i := 0; i <= latSeg; i++ {
		theta := math.Pi * float64(i) / float64(latSeg) // 0..pi from +Z
		tt.st[i] = math.Sin(theta)
		tt.ct[i] = math.Cos(theta)
	}
	// The j == lonSeg column is phi = 2*pi, whose sin/cos are not the
	// float values of phi = 0; keeping a full extra column reproduces the
	// reference's wrap-around points exactly.
	tt.sp = growF(tt.sp, lonSeg+1)
	tt.cp = growF(tt.cp, lonSeg+1)
	for j := 0; j <= lonSeg; j++ {
		phi := 2 * math.Pi * float64(j) / float64(lonSeg)
		tt.sp[j] = math.Sin(phi)
		tt.cp[j] = math.Cos(phi)
	}
	point := func(i, j int) geom.Vec3 {
		return geom.Vec3{
			X: center.X + radius*tt.st[i]*tt.cp[j],
			Y: center.Y + radius*tt.st[i]*tt.sp[j],
			Z: center.Z + radius*tt.ct[i],
		}
	}
	// Every row emits 2 triangles per longitude segment except the two
	// polar rows, which emit 1.
	s := Shell{Name: name, Body: body, Orient: Outward,
		Tris: make([]geom.Triangle, 0, 2*lonSeg*(latSeg-1))}
	for i := 0; i < latSeg; i++ {
		for j := 0; j < lonSeg; j++ {
			p00 := point(i, j)
			p01 := point(i, j+1)
			p10 := point(i+1, j)
			p11 := point(i+1, j+1)
			if i > 0 { // skip degenerate cap triangles at the north pole
				s.Tris = append(s.Tris, geom.Triangle{A: p00, B: p10, C: p01})
			}
			if i < latSeg-1 { // skip south pole degenerates
				s.Tris = append(s.Tris, geom.Triangle{A: p01, B: p10, C: p11})
			}
		}
	}
	return s
}

// sphereShellReference is the straightforward per-point implementation,
// retained as the oracle for SphereShell's bit-identity property test.
func sphereShellReference(name, body string, center geom.Vec3, radius float64, latSeg, lonSeg int) Shell {
	if latSeg < 2 {
		latSeg = 2
	}
	if lonSeg < 3 {
		lonSeg = 3
	}
	point := func(i, j int) geom.Vec3 {
		theta := math.Pi * float64(i) / float64(latSeg) // 0..pi from +Z
		phi := 2 * math.Pi * float64(j) / float64(lonSeg)
		return geom.Vec3{
			X: center.X + radius*math.Sin(theta)*math.Cos(phi),
			Y: center.Y + radius*math.Sin(theta)*math.Sin(phi),
			Z: center.Z + radius*math.Cos(theta),
		}
	}
	s := Shell{Name: name, Body: body, Orient: Outward}
	for i := 0; i < latSeg; i++ {
		for j := 0; j < lonSeg; j++ {
			p00 := point(i, j)
			p01 := point(i, j+1)
			p10 := point(i+1, j)
			p11 := point(i+1, j+1)
			if i > 0 {
				s.Tris = append(s.Tris, geom.Triangle{A: p00, B: p10, C: p01})
			}
			if i < latSeg-1 {
				s.Tris = append(s.Tris, geom.Triangle{A: p01, B: p10, C: p11})
			}
		}
	}
	return s
}
