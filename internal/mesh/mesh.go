// Package mesh provides triangle-mesh data structures and analyses:
// shells with body provenance, vertex welding, adjacency, manifold and
// orientation checks, Euler characteristic, and mass properties.
//
// A Mesh is the in-memory equivalent of an STL file's content: a flat soup
// of oriented triangles, grouped into shells. Body provenance (which CAD
// body produced each shell) is what lets the slicer and the virtual printer
// reason about the split-feature seams of ObfusCADe §3.1.
package mesh

import (
	"fmt"
	"math"
	"sort"

	"obfuscade/internal/geom"
)

// Orientation describes which way a closed shell's normals point relative
// to the material it bounds.
type Orientation int

const (
	// Outward shells have normals pointing away from enclosed material
	// (a solid body's outer boundary).
	Outward Orientation = iota
	// Inward shells have normals pointing into the enclosed void
	// (a cavity boundary inside a solid).
	Inward
	// OpenSurface shells bound no volume (a surface body exported to
	// STL, §3.2's "surface sphere").
	OpenSurface
)

// String implements fmt.Stringer.
func (o Orientation) String() string {
	switch o {
	case Outward:
		return "outward"
	case Inward:
		return "inward"
	case OpenSurface:
		return "open-surface"
	default:
		return fmt.Sprintf("Orientation(%d)", int(o))
	}
}

// Shell is a group of triangles produced by one CAD body boundary.
type Shell struct {
	// Name identifies the shell (e.g. "body-upper", "sphere-cavity").
	Name string
	// Body names the CAD body that produced the shell; used for seam
	// provenance during slicing and printing.
	Body string
	// Orient records the shell's intended orientation semantics.
	Orient Orientation
	// Tris is the triangle soup. Triangle winding follows the right-hand
	// rule with respect to the face normal.
	Tris []geom.Triangle
}

// Mesh is an ordered collection of shells.
type Mesh struct {
	Shells []Shell
}

// TriangleCount returns the total number of triangles in all shells.
func (m *Mesh) TriangleCount() int {
	n := 0
	for _, s := range m.Shells {
		n += len(s.Tris)
	}
	return n
}

// AllTriangles returns a flat copy of every triangle in shell order.
func (m *Mesh) AllTriangles() []geom.Triangle {
	out := make([]geom.Triangle, 0, m.TriangleCount())
	for _, s := range m.Shells {
		out = append(out, s.Tris...)
	}
	return out
}

// Bounds returns the axis-aligned bounding box of the mesh.
func (m *Mesh) Bounds() geom.AABB {
	b := geom.EmptyAABB()
	for _, s := range m.Shells {
		for _, t := range s.Tris {
			b.Extend(t.A)
			b.Extend(t.B)
			b.Extend(t.C)
		}
	}
	return b
}

// SurfaceArea returns the total triangle area of the mesh.
func (m *Mesh) SurfaceArea() float64 {
	var a float64
	for _, s := range m.Shells {
		for _, t := range s.Tris {
			a += t.Area()
		}
	}
	return a
}

// Volume returns the signed volume enclosed by all shells (divergence
// theorem). Outward shells contribute positive volume, inward shells
// negative. Open shells contribute an orientation-dependent residue and
// should not be included in volume queries.
func (m *Mesh) Volume() float64 {
	var v float64
	for _, s := range m.Shells {
		for _, t := range s.Tris {
			v += t.SignedVolume()
		}
	}
	return v
}

// Transform applies m4 to every vertex of the mesh in place.
func (m *Mesh) Transform(m4 geom.Mat4) {
	for si := range m.Shells {
		tris := m.Shells[si].Tris
		for i := range tris {
			tris[i].A = m4.Apply(tris[i].A)
			tris[i].B = m4.Apply(tris[i].B)
			tris[i].C = m4.Apply(tris[i].C)
		}
	}
}

// Clone returns a deep copy of the mesh.
func (m *Mesh) Clone() *Mesh {
	out := &Mesh{Shells: make([]Shell, len(m.Shells))}
	for i, s := range m.Shells {
		ns := s
		ns.Tris = make([]geom.Triangle, len(s.Tris))
		copy(ns.Tris, s.Tris)
		out.Shells[i] = ns
	}
	return out
}

// ShellByName returns the first shell with the given name, or nil.
func (m *Mesh) ShellByName(name string) *Shell {
	for i := range m.Shells {
		if m.Shells[i].Name == name {
			return &m.Shells[i]
		}
	}
	return nil
}

// ZSpan is the z-extent of one triangle: the closed interval [Min, Max]
// its vertices cover along the build direction.
type ZSpan struct {
	Min, Max float64
}

// ZSpans appends the z-extent of every triangle, in triangle order, to buf
// and returns it. The result is the sweep view the slicer's layer index is
// built from: a plane at height z can only intersect triangle i
// transversally when spans[i].Min < z < spans[i].Max. Passing a previous
// result as buf reuses its backing array.
func (s *Shell) ZSpans(buf []ZSpan) []ZSpan {
	buf = buf[:0]
	for _, t := range s.Tris {
		lo, hi := t.A.Z, t.A.Z
		if t.B.Z < lo {
			lo = t.B.Z
		} else if t.B.Z > hi {
			hi = t.B.Z
		}
		if t.C.Z < lo {
			lo = t.C.Z
		} else if t.C.Z > hi {
			hi = t.C.Z
		}
		buf = append(buf, ZSpan{Min: lo, Max: hi})
	}
	return buf
}

// weldKey quantises a vertex to a lattice so numerically-identical
// vertices weld together.
type weldKey struct{ X, Y, Z int64 }

func quantise(v geom.Vec3, tol float64) weldKey {
	return weldKey{
		X: int64(math.Round(v.X / tol)),
		Y: int64(math.Round(v.Y / tol)),
		Z: int64(math.Round(v.Z / tol)),
	}
}

// Indexed is a vertex-welded indexed triangle mesh for one shell.
type Indexed struct {
	Verts []geom.Vec3
	// Faces holds vertex-index triples.
	Faces [][3]int
	// Source maps each face back to its index in the shell's Tris slice
	// (degenerate triangles are dropped during indexing, so the mapping
	// is not the identity).
	Source []int
}

// IndexShell welds shell vertices within tol and returns the indexed mesh.
func IndexShell(s *Shell, tol float64) *Indexed {
	idx := &Indexed{}
	lookup := make(map[weldKey]int)
	add := func(v geom.Vec3) int {
		k := quantise(v, tol)
		if i, ok := lookup[k]; ok {
			return i
		}
		i := len(idx.Verts)
		idx.Verts = append(idx.Verts, v)
		lookup[k] = i
		return i
	}
	for ti, t := range s.Tris {
		a, b, c := add(t.A), add(t.B), add(t.C)
		if a == b || b == c || a == c {
			continue // degenerate after welding
		}
		idx.Faces = append(idx.Faces, [3]int{a, b, c})
		idx.Source = append(idx.Source, ti)
	}
	return idx
}

// edgeKey is an undirected edge between two vertex indices.
type edgeKey struct{ A, B int }

func mkEdge(a, b int) edgeKey {
	if a > b {
		a, b = b, a
	}
	return edgeKey{a, b}
}

// TopologyReport summarises the connectivity of an indexed shell.
type TopologyReport struct {
	Verts, Edges, Faces int
	// BoundaryEdges counts edges used by exactly one face (holes in the
	// shell). Zero for watertight shells.
	BoundaryEdges int
	// NonManifoldEdges counts edges used by three or more faces.
	NonManifoldEdges int
	// OrientationConflicts counts manifold edges whose two adjacent faces
	// traverse the edge in the same direction (inconsistent winding).
	OrientationConflicts int
	// EulerCharacteristic is V - E + F.
	EulerCharacteristic int
}

// Watertight reports whether the shell is a closed, consistently-oriented
// 2-manifold.
func (r TopologyReport) Watertight() bool {
	return r.BoundaryEdges == 0 && r.NonManifoldEdges == 0 && r.OrientationConflicts == 0
}

// Analyze computes the topology report of an indexed shell.
func (x *Indexed) Analyze() TopologyReport {
	type edgeUse struct {
		count   int
		forward int // uses traversing the edge from lower to higher index
	}
	edges := make(map[edgeKey]*edgeUse)
	use := func(a, b int) {
		k := mkEdge(a, b)
		u := edges[k]
		if u == nil {
			u = &edgeUse{}
			edges[k] = u
		}
		u.count++
		if a < b {
			u.forward++
		}
	}
	for _, f := range x.Faces {
		use(f[0], f[1])
		use(f[1], f[2])
		use(f[2], f[0])
	}
	r := TopologyReport{
		Verts: len(x.Verts),
		Edges: len(edges),
		Faces: len(x.Faces),
	}
	for _, u := range edges {
		switch {
		case u.count == 1:
			r.BoundaryEdges++
		case u.count > 2:
			r.NonManifoldEdges++
		case u.count == 2 && u.forward != 1:
			// A consistently-oriented manifold edge is traversed once in
			// each direction.
			r.OrientationConflicts++
		}
	}
	r.EulerCharacteristic = r.Verts - r.Edges + r.Faces
	return r
}

// BoundaryLoops extracts the boundary polylines (sequences of vertex
// positions) of an open shell. Watertight shells return nil.
func (x *Indexed) BoundaryLoops() [][]geom.Vec3 {
	counts := make(map[edgeKey]int)
	dir := make(map[edgeKey][2]int)
	for _, f := range x.Faces {
		for e := 0; e < 3; e++ {
			a, b := f[e], f[(e+1)%3]
			k := mkEdge(a, b)
			counts[k]++
			dir[k] = [2]int{a, b}
		}
	}
	next := make(map[int][]int)
	for k, c := range counts {
		if c == 1 {
			d := dir[k]
			next[d[0]] = append(next[d[0]], d[1])
		}
	}
	// Deterministic traversal order.
	starts := make([]int, 0, len(next))
	for v := range next {
		starts = append(starts, v)
	}
	sort.Ints(starts)
	visited := make(map[int]bool)
	var loops [][]geom.Vec3
	for _, s := range starts {
		if visited[s] {
			continue
		}
		var loop []geom.Vec3
		cur := s
		for !visited[cur] {
			visited[cur] = true
			loop = append(loop, x.Verts[cur])
			nexts := next[cur]
			if len(nexts) == 0 {
				break
			}
			cur = nexts[0]
		}
		if len(loop) >= 2 {
			loops = append(loops, loop)
		}
	}
	return loops
}

// ValidationIssue describes one problem found by Validate.
type ValidationIssue struct {
	Shell   string
	Kind    string
	Message string
}

// Validate runs the geometry-error checks a defender applies to an STL
// file before printing (Table 1, "STL file" row mitigations): degenerate
// triangles, open boundaries on shells marked closed, non-manifold edges,
// inconsistent winding, and normal/vertex-order disagreement.
func (m *Mesh) Validate(tol float64) []ValidationIssue {
	var issues []ValidationIssue
	for i := range m.Shells {
		s := &m.Shells[i]
		degen := 0
		for _, t := range s.Tris {
			if t.IsDegenerate(tol) {
				degen++
			}
		}
		if degen > 0 {
			issues = append(issues, ValidationIssue{
				Shell: s.Name, Kind: "degenerate",
				Message: fmt.Sprintf("%d degenerate triangles", degen),
			})
		}
		rep := IndexShell(s, tol).Analyze()
		if s.Orient != OpenSurface && rep.BoundaryEdges > 0 {
			issues = append(issues, ValidationIssue{
				Shell: s.Name, Kind: "open-boundary",
				Message: fmt.Sprintf("%d boundary edges on closed shell", rep.BoundaryEdges),
			})
		}
		if rep.NonManifoldEdges > 0 {
			issues = append(issues, ValidationIssue{
				Shell: s.Name, Kind: "non-manifold",
				Message: fmt.Sprintf("%d non-manifold edges", rep.NonManifoldEdges),
			})
		}
		if rep.OrientationConflicts > 0 {
			issues = append(issues, ValidationIssue{
				Shell: s.Name, Kind: "winding",
				Message: fmt.Sprintf("%d orientation conflicts", rep.OrientationConflicts),
			})
		}
	}
	return issues
}

// FlipOrientation reverses the winding of every triangle in the shell.
func (s *Shell) FlipOrientation() {
	for i := range s.Tris {
		s.Tris[i].B, s.Tris[i].C = s.Tris[i].C, s.Tris[i].B
	}
}

// ShellVolume returns the signed volume enclosed by a single shell.
func (s *Shell) ShellVolume() float64 {
	var v float64
	for _, t := range s.Tris {
		v += t.SignedVolume()
	}
	return v
}
