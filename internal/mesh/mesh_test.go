package mesh

import (
	"math"
	"testing"
	"testing/quick"

	"obfuscade/internal/geom"
)

func TestBoxShellVolumeArea(t *testing.T) {
	s := BoxShell("box", "b", geom.V3(0, 0, 0), geom.V3(2, 3, 4))
	m := &Mesh{Shells: []Shell{s}}
	if got := m.Volume(); !geom.ApproxEq(got, 24, 1e-9) {
		t.Errorf("Volume = %v, want 24", got)
	}
	want := 2 * (2*3 + 3*4 + 2*4)
	if got := m.SurfaceArea(); !geom.ApproxEq(got, float64(want), 1e-9) {
		t.Errorf("SurfaceArea = %v, want %d", got, want)
	}
	if got := m.TriangleCount(); got != 12 {
		t.Errorf("TriangleCount = %d, want 12", got)
	}
}

func TestBoxShellWatertight(t *testing.T) {
	s := BoxShell("box", "b", geom.V3(0, 0, 0), geom.V3(1, 1, 1))
	rep := IndexShell(&s, 1e-9).Analyze()
	if !rep.Watertight() {
		t.Errorf("box should be watertight: %+v", rep)
	}
	if rep.EulerCharacteristic != 2 {
		t.Errorf("Euler characteristic = %d, want 2", rep.EulerCharacteristic)
	}
	if rep.Verts != 8 || rep.Faces != 12 || rep.Edges != 18 {
		t.Errorf("V/E/F = %d/%d/%d, want 8/18/12", rep.Verts, rep.Edges, rep.Faces)
	}
}

func TestSphereShellWatertightAndVolume(t *testing.T) {
	s := SphereShell("sph", "b", geom.V3(1, 2, 3), 5, 24, 48)
	rep := IndexShell(&s, 1e-9).Analyze()
	if !rep.Watertight() {
		t.Errorf("sphere should be watertight: %+v", rep)
	}
	if rep.EulerCharacteristic != 2 {
		t.Errorf("Euler characteristic = %d, want 2", rep.EulerCharacteristic)
	}
	vol := (&Mesh{Shells: []Shell{s}}).Volume()
	exact := 4.0 / 3 * math.Pi * 125
	if math.Abs(vol-exact)/exact > 0.02 {
		t.Errorf("sphere volume = %v, want ~%v", vol, exact)
	}
	if vol >= exact {
		t.Errorf("inscribed polyhedral volume %v should be below exact %v", vol, exact)
	}
}

func TestFlipOrientationNegatesVolume(t *testing.T) {
	s := BoxShell("box", "b", geom.V3(0, 0, 0), geom.V3(1, 1, 1))
	v := s.ShellVolume()
	s.FlipOrientation()
	if got := s.ShellVolume(); !geom.ApproxEq(got, -v, 1e-12) {
		t.Errorf("flipped volume = %v, want %v", got, -v)
	}
	rep := IndexShell(&s, 1e-9).Analyze()
	if !rep.Watertight() {
		t.Errorf("flipped shell should still be watertight: %+v", rep)
	}
}

func TestCavityMeshVolume(t *testing.T) {
	outer := BoxShell("outer", "b", geom.V3(0, 0, 0), geom.V3(4, 4, 4))
	inner := BoxShell("cavity", "b", geom.V3(1, 1, 1), geom.V3(3, 3, 3))
	inner.FlipOrientation()
	inner.Orient = Inward
	m := &Mesh{Shells: []Shell{outer, inner}}
	if got := m.Volume(); !geom.ApproxEq(got, 64-8, 1e-9) {
		t.Errorf("cavity volume = %v, want 56", got)
	}
}

func TestTransformAndBounds(t *testing.T) {
	s := BoxShell("box", "b", geom.V3(0, 0, 0), geom.V3(1, 2, 3))
	m := &Mesh{Shells: []Shell{s}}
	m.Transform(geom.RotateX(math.Pi / 2).Mul(geom.Translate(geom.V3(0, 0, 0))))
	b := m.Bounds()
	// Rotating +90 about X maps y->z, z->-y: new bounds y in [-3,0], z in [0,2].
	if !geom.ApproxEq(b.Min.Y, -3, 1e-9) || !geom.ApproxEq(b.Max.Z, 2, 1e-9) {
		t.Errorf("rotated bounds = %+v", b)
	}
	// Volume invariant under rigid transform.
	if got := m.Volume(); !geom.ApproxEq(got, 6, 1e-9) {
		t.Errorf("rotated volume = %v, want 6", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	s := BoxShell("box", "b", geom.V3(0, 0, 0), geom.V3(1, 1, 1))
	m := &Mesh{Shells: []Shell{s}}
	c := m.Clone()
	c.Transform(geom.Translate(geom.V3(100, 0, 0)))
	if m.Bounds().Max.X > 2 {
		t.Error("Clone should not share triangle storage")
	}
}

func TestShellByName(t *testing.T) {
	m := &Mesh{Shells: []Shell{
		BoxShell("a", "b1", geom.V3(0, 0, 0), geom.V3(1, 1, 1)),
		BoxShell("c", "b2", geom.V3(2, 0, 0), geom.V3(3, 1, 1)),
	}}
	if got := m.ShellByName("c"); got == nil || got.Body != "b2" {
		t.Errorf("ShellByName(c) = %v", got)
	}
	if got := m.ShellByName("missing"); got != nil {
		t.Errorf("ShellByName(missing) = %v", got)
	}
}

func TestValidateCleanBox(t *testing.T) {
	m := &Mesh{Shells: []Shell{BoxShell("box", "b", geom.V3(0, 0, 0), geom.V3(1, 1, 1))}}
	if issues := m.Validate(1e-9); len(issues) != 0 {
		t.Errorf("clean box issues: %v", issues)
	}
}

func TestValidateDetectsHole(t *testing.T) {
	s := BoxShell("box", "b", geom.V3(0, 0, 0), geom.V3(1, 1, 1))
	s.Tris = s.Tris[:len(s.Tris)-1] // remove one triangle -> hole
	m := &Mesh{Shells: []Shell{s}}
	issues := m.Validate(1e-9)
	found := false
	for _, is := range issues {
		if is.Kind == "open-boundary" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected open-boundary issue, got %v", issues)
	}
}

func TestValidateDetectsFlippedTriangle(t *testing.T) {
	s := BoxShell("box", "b", geom.V3(0, 0, 0), geom.V3(1, 1, 1))
	s.Tris[0].B, s.Tris[0].C = s.Tris[0].C, s.Tris[0].B
	m := &Mesh{Shells: []Shell{s}}
	issues := m.Validate(1e-9)
	found := false
	for _, is := range issues {
		if is.Kind == "winding" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected winding issue, got %v", issues)
	}
}

func TestValidateDetectsDegenerate(t *testing.T) {
	s := Shell{Name: "bad", Orient: OpenSurface, Tris: []geom.Triangle{
		{A: geom.V3(0, 0, 0), B: geom.V3(1, 0, 0), C: geom.V3(2, 0, 0)},
	}}
	m := &Mesh{Shells: []Shell{s}}
	issues := m.Validate(1e-9)
	if len(issues) == 0 || issues[0].Kind != "degenerate" {
		t.Errorf("expected degenerate issue, got %v", issues)
	}
}

func TestValidateOpenSurfaceAllowed(t *testing.T) {
	// A single triangle marked as an open surface should not raise
	// open-boundary issues: surface bodies legitimately have boundaries.
	s := Shell{Name: "surf", Orient: OpenSurface, Tris: []geom.Triangle{
		{A: geom.V3(0, 0, 0), B: geom.V3(1, 0, 0), C: geom.V3(0, 1, 0)},
	}}
	m := &Mesh{Shells: []Shell{s}}
	for _, is := range m.Validate(1e-9) {
		if is.Kind == "open-boundary" {
			t.Errorf("open surface should not report open-boundary: %v", is)
		}
	}
}

func TestBoundaryLoops(t *testing.T) {
	s := BoxShell("box", "b", geom.V3(0, 0, 0), geom.V3(1, 1, 1))
	idx := IndexShell(&s, 1e-9)
	if loops := idx.BoundaryLoops(); len(loops) != 0 {
		t.Errorf("watertight shell should have no boundary loops, got %d", len(loops))
	}
	// Remove the two top-face triangles -> one square boundary loop.
	open := Shell{Name: "open", Tris: s.Tris[:2*1]}
	open.Tris = append([]geom.Triangle{}, s.Tris...)
	open.Tris = append(open.Tris[:2], open.Tris[4:]...) // drop the top quad pair
	idx = IndexShell(&open, 1e-9)
	loops := idx.BoundaryLoops()
	if len(loops) != 1 {
		t.Fatalf("expected 1 boundary loop, got %d", len(loops))
	}
	if len(loops[0]) != 4 {
		t.Errorf("boundary loop should have 4 vertices, got %d", len(loops[0]))
	}
}

func TestIndexShellWelds(t *testing.T) {
	s := BoxShell("box", "b", geom.V3(0, 0, 0), geom.V3(1, 1, 1))
	idx := IndexShell(&s, 1e-9)
	if len(idx.Verts) != 8 {
		t.Errorf("welded verts = %d, want 8", len(idx.Verts))
	}
	if len(idx.Faces) != 12 {
		t.Errorf("faces = %d, want 12", len(idx.Faces))
	}
}

// Property: rigid transforms preserve mesh volume and surface area.
func TestRigidInvariants(t *testing.T) {
	f := func(angle, tx, ty, tz float64) bool {
		if math.IsNaN(angle) || math.IsInf(angle, 0) {
			angle = 0.5
		}
		angle = geom.Clamp(angle, -10, 10)
		clean := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return geom.Clamp(v, -1e3, 1e3)
		}
		m := &Mesh{Shells: []Shell{BoxShell("box", "b", geom.V3(0, 0, 0), geom.V3(1, 2, 3))}}
		m.Transform(geom.Translate(geom.V3(clean(tx), clean(ty), clean(tz))).Mul(geom.RotateZ(angle)))
		return math.Abs(m.Volume()-6) < 1e-6 && math.Abs(m.SurfaceArea()-22) < 1e-6
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: welding never increases vertex count beyond 3x face count and
// the box always stays watertight under rigid motion.
func TestWatertightUnderRigidMotion(t *testing.T) {
	f := func(angle float64) bool {
		if math.IsNaN(angle) || math.IsInf(angle, 0) {
			angle = 1
		}
		angle = geom.Clamp(angle, -10, 10)
		s := BoxShell("box", "b", geom.V3(0, 0, 0), geom.V3(1, 1, 1))
		m := &Mesh{Shells: []Shell{s}}
		m.Transform(geom.RotateY(angle))
		rep := IndexShell(&m.Shells[0], 1e-9).Analyze()
		return rep.Watertight()
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// ZSpans must report, per triangle in order, exactly the min and max
// vertex z — the invariant the slicer's sweep index relies on: a plane
// can cross triangle i transversally only strictly inside its span.
func TestZSpans(t *testing.T) {
	s := BoxShell("box", "b", geom.V3(0, 0, 1), geom.V3(2, 3, 4))
	spans := s.ZSpans(nil)
	if len(spans) != len(s.Tris) {
		t.Fatalf("spans = %d, want %d", len(spans), len(s.Tris))
	}
	for i, tr := range s.Tris {
		lo := math.Min(tr.A.Z, math.Min(tr.B.Z, tr.C.Z))
		hi := math.Max(tr.A.Z, math.Max(tr.B.Z, tr.C.Z))
		if spans[i].Min != lo || spans[i].Max != hi {
			t.Fatalf("tri %d span [%g,%g], want [%g,%g]", i, spans[i].Min, spans[i].Max, lo, hi)
		}
		for _, z := range []float64{spans[i].Min - 0.1, spans[i].Max + 0.1} {
			if _, _, ok := tr.IntersectPlaneZ(z); ok {
				t.Fatalf("tri %d intersects plane %g outside its span", i, z)
			}
		}
	}
	// Buffer reuse keeps the backing array.
	spans2 := s.ZSpans(spans)
	if &spans2[0] != &spans[0] {
		t.Error("ZSpans did not reuse the provided buffer")
	}
}
