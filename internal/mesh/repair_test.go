package mesh

import (
	"math/rand"
	"testing"

	"obfuscade/internal/geom"
)

func TestRepairWindingFixesFlips(t *testing.T) {
	s := BoxShell("box", "b", geom.V3(0, 0, 0), geom.V3(2, 3, 4))
	// Flip a few triangles.
	rng := rand.New(rand.NewSource(5))
	for _, i := range rng.Perm(len(s.Tris))[:4] {
		s.Tris[i].B, s.Tris[i].C = s.Tris[i].C, s.Tris[i].B
	}
	rep := IndexShell(&s, 1e-9).Analyze()
	if rep.OrientationConflicts == 0 {
		t.Fatal("setup should create conflicts")
	}
	flips := s.RepairWinding(1e-9)
	if flips == 0 {
		t.Error("repair should flip triangles")
	}
	rep = IndexShell(&s, 1e-9).Analyze()
	if !rep.Watertight() {
		t.Errorf("repaired shell not watertight: %+v", rep)
	}
	if v := s.ShellVolume(); !geom.ApproxEq(v, 24, 1e-9) {
		t.Errorf("repaired volume = %v, want 24 (outward)", v)
	}
}

func TestRepairWindingInsideOut(t *testing.T) {
	s := BoxShell("box", "b", geom.V3(0, 0, 0), geom.V3(1, 1, 1))
	s.FlipOrientation() // fully inside-out but self-consistent
	s.RepairWinding(1e-9)
	if v := s.ShellVolume(); v <= 0 {
		t.Errorf("inside-out shell not re-inverted: volume %v", v)
	}
}

func TestFillSmallHoles(t *testing.T) {
	s := BoxShell("box", "b", geom.V3(0, 0, 0), geom.V3(2, 2, 2))
	// Remove one triangle: a 3-vertex hole.
	s.Tris = append(s.Tris[:3], s.Tris[4:]...)
	rep := IndexShell(&s, 1e-9).Analyze()
	if rep.BoundaryEdges != 3 {
		t.Fatalf("setup boundary edges = %d", rep.BoundaryEdges)
	}
	filled, err := s.FillSmallHoles(1e-9, 8)
	if err != nil {
		t.Fatal(err)
	}
	if filled != 1 {
		t.Fatalf("filled = %d, want 1", filled)
	}
	rep = IndexShell(&s, 1e-9).Analyze()
	if !rep.Watertight() {
		t.Errorf("filled shell not watertight: %+v", rep)
	}
	if v := s.ShellVolume(); !geom.ApproxEq(v, 8, 1e-9) {
		t.Errorf("filled volume = %v, want 8", v)
	}
}

func TestFillSmallHolesRespectsLimit(t *testing.T) {
	s := BoxShell("box", "b", geom.V3(0, 0, 0), geom.V3(2, 2, 2))
	// Remove a whole face (two triangles): a 4-vertex hole.
	s.Tris = append(s.Tris[:2], s.Tris[4:]...)
	filled, err := s.FillSmallHoles(1e-9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if filled != 0 {
		t.Errorf("hole larger than limit should be left open, filled %d", filled)
	}
	filled, err = s.FillSmallHoles(1e-9, 6)
	if err != nil {
		t.Fatal(err)
	}
	if filled != 1 {
		t.Errorf("filled = %d, want 1", filled)
	}
	if !IndexShell(&s, 1e-9).Analyze().Watertight() {
		t.Error("quad hole fill not watertight")
	}
	if _, err := s.FillSmallHoles(1e-9, 2); err == nil {
		t.Error("expected error for maxLoopVerts < 3")
	}
}

func TestMeshRepairEndToEnd(t *testing.T) {
	// Simulate a damaged import: flipped triangles and a missing one.
	s := BoxShell("box", "b", geom.V3(0, 0, 0), geom.V3(3, 3, 3))
	s.Tris[7].B, s.Tris[7].C = s.Tris[7].C, s.Tris[7].B
	s.Tris = append(s.Tris[:10], s.Tris[11:]...)
	m := &Mesh{Shells: []Shell{s}}
	if len(m.Validate(1e-9)) == 0 {
		t.Fatal("setup should produce validation issues")
	}
	summary, err := m.Repair(1e-9, 8)
	if err != nil {
		t.Fatal(err)
	}
	if summary == "" {
		t.Error("empty repair summary")
	}
	if issues := m.Validate(1e-9); len(issues) != 0 {
		t.Errorf("issues after repair: %v", issues)
	}
	if v := m.Volume(); !geom.ApproxEq(v, 27, 1e-9) {
		t.Errorf("repaired volume = %v, want 27", v)
	}
}

func TestRepairCleanShellNoop(t *testing.T) {
	s := BoxShell("box", "b", geom.V3(0, 0, 0), geom.V3(1, 1, 1))
	if flips := s.RepairWinding(1e-9); flips != 0 {
		t.Errorf("clean shell flips = %d", flips)
	}
	filled, err := s.FillSmallHoles(1e-9, 8)
	if err != nil {
		t.Fatal(err)
	}
	if filled != 0 {
		t.Errorf("clean shell holes filled = %d", filled)
	}
}
