package mesh

import (
	"sync"
	"testing"

	"obfuscade/internal/geom"
)

// SphereShell's trig-table fast path must be bit-identical to the
// retained per-point reference — the correctness contract of the
// zero-alloc tessellation work.
func TestSphereShellMatchesReference(t *testing.T) {
	cases := []struct {
		center   geom.Vec3
		radius   float64
		lat, lon int
	}{
		{geom.V3(0, 0, 0), 1, 3, 6},
		{geom.V3(1.5, -2.25, 33), 2.1, 7, 13},
		{geom.V3(-8, 0.125, 4), 0.3, 24, 48},
		{geom.V3(0, 0, 0), 5, 1, 2}, // clamped to the minimums
	}
	for _, c := range cases {
		got := SphereShell("s", "b", c.center, c.radius, c.lat, c.lon)
		want := sphereShellReference("s", "b", c.center, c.radius, c.lat, c.lon)
		if len(got.Tris) != len(want.Tris) {
			t.Fatalf("lat=%d lon=%d: %d triangles, reference %d",
				c.lat, c.lon, len(got.Tris), len(want.Tris))
		}
		// The prealloc must be exact, not just sufficient.
		if cap(got.Tris) != len(got.Tris) {
			t.Errorf("lat=%d lon=%d: cap %d != len %d (inexact prealloc)",
				c.lat, c.lon, cap(got.Tris), len(got.Tris))
		}
		for i := range got.Tris {
			if got.Tris[i] != want.Tris[i] {
				t.Fatalf("lat=%d lon=%d: triangle %d differs:\n got %+v\nwant %+v",
					c.lat, c.lon, i, got.Tris[i], want.Tris[i])
			}
		}
	}
}

// The pooled trig scratch must be safe and leak-free under concurrent
// builders of different sizes (run with -race in tier 2).
func TestSphereShellConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				lat := 3 + (w+iter)%9
				lon := 6 + (w*iter)%17
				got := SphereShell("s", "b", geom.V3(0, 0, 0), 2, lat, lon)
				want := sphereShellReference("s", "b", geom.V3(0, 0, 0), 2, lat, lon)
				for i := range got.Tris {
					if got.Tris[i] != want.Tris[i] {
						t.Errorf("worker %d lat=%d lon=%d: triangle %d differs", w, lat, lon, i)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// The pooled face scratch of RepairWinding and SplitEdgeComponents must
// not leak state between calls: repeated runs on fresh copies of the same
// damaged shell behave identically.
func TestFaceScratchReuse(t *testing.T) {
	damaged := func() Shell {
		s := BoxShell("box", "box", geom.V3(0, 0, 0), geom.V3(2, 3, 4))
		// Flip a few triangles out of orientation.
		for _, i := range []int{1, 4, 7} {
			s.Tris[i].B, s.Tris[i].C = s.Tris[i].C, s.Tris[i].B
		}
		return s
	}
	first := damaged()
	firstFlips := first.RepairWinding(1e-9)
	firstComps := first.SplitEdgeComponents(1e-9)
	for i := 0; i < 5; i++ {
		s := damaged()
		if flips := s.RepairWinding(1e-9); flips != firstFlips {
			t.Fatalf("run %d: flips = %d, want %d (scratch leak?)", i, flips, firstFlips)
		}
		comps := s.SplitEdgeComponents(1e-9)
		if len(comps) != len(firstComps) {
			t.Fatalf("run %d: components = %d, want %d", i, len(comps), len(firstComps))
		}
		for ci := range comps {
			if len(comps[ci].Tris) != len(firstComps[ci].Tris) {
				t.Fatalf("run %d: component %d size changed", i, ci)
			}
		}
	}
}
