package mesh

import (
	"fmt"

	"obfuscade/internal/geom"
)

// RepairWinding makes a shell's triangle orientations consistent by
// propagating orientation across shared edges from the largest-area
// triangle, then flips the whole shell if it ends up inside-out (negative
// enclosed volume for a shell expected to be outward). It returns the
// number of triangles flipped. Non-manifold shells are repaired
// best-effort.
//
// This is the defender-side counterpart of the Table 1 "manifold geometry
// errors" review: detect with Validate, repair here, re-verify.
func (s *Shell) RepairWinding(tol float64) int {
	idx := IndexShell(s, tol)
	if len(idx.Faces) == 0 {
		return 0
	}
	// Adjacency: edge -> faces.
	type edgeUse struct {
		face    int
		forward bool // uses the edge from lower to higher vertex index
	}
	edges := make(map[edgeKey][]edgeUse)
	for fi, f := range idx.Faces {
		for e := 0; e < 3; e++ {
			a, b := f[e], f[(e+1)%3]
			edges[mkEdge(a, b)] = append(edges[mkEdge(a, b)], edgeUse{face: fi, forward: a < b})
		}
	}
	// Orientation is only well-defined across 2-manifold edges. Edges
	// used by four faces are body-body contact lines of a multi-body
	// soup (e.g. where a spline split meets the part ends); propagating
	// across them would flip a whole consistent body inside-out.
	sc := faceScratchPool.Get().(*faceScratch)
	defer faceScratchPool.Put(sc)
	sc.visited = growBool(sc.visited, len(idx.Faces))
	sc.flipped = growBool(sc.flipped, len(idx.Faces))
	visited, flipped := sc.visited, sc.flipped
	count := 0
	for {
		// Seed each unvisited component with its largest triangle.
		seed, bestArea := -1, -1.0
		for fi, f := range idx.Faces {
			if visited[fi] {
				continue
			}
			area := (geom.Triangle{A: idx.Verts[f[0]], B: idx.Verts[f[1]], C: idx.Verts[f[2]]}).Area()
			if area > bestArea {
				bestArea = area
				seed = fi
			}
		}
		if seed < 0 {
			break
		}
		component := []int{seed}
		queue := []int{seed}
		visited[seed] = true
		for len(queue) > 0 {
			fi := queue[0]
			queue = queue[1:]
			f := idx.Faces[fi]
			for e := 0; e < 3; e++ {
				a, b := f[e], f[(e+1)%3]
				uses := edges[mkEdge(a, b)]
				if len(uses) != 2 {
					continue // boundary or contact edge: do not propagate
				}
				myForward := (a < b) != flipped[fi]
				for _, u := range uses {
					if u.face == fi || visited[u.face] {
						continue
					}
					// Consistent orientation traverses a shared edge in
					// opposite directions.
					flipped[u.face] = u.forward == myForward
					visited[u.face] = true
					queue = append(queue, u.face)
					component = append(component, u.face)
				}
			}
		}
		// Apply flips, then re-invert the component if it encloses
		// negative volume (inside-out).
		var vol float64
		for _, fi := range component {
			if flipped[fi] {
				count++
				ti := idx.Source[fi]
				s.Tris[ti].B, s.Tris[ti].C = s.Tris[ti].C, s.Tris[ti].B
			}
			ti := idx.Source[fi]
			vol += s.Tris[ti].SignedVolume()
		}
		if s.Orient != OpenSurface && vol < 0 {
			for _, fi := range component {
				ti := idx.Source[fi]
				s.Tris[ti].B, s.Tris[ti].C = s.Tris[ti].C, s.Tris[ti].B
			}
		}
	}
	return count
}

// FillSmallHoles closes boundary loops with at most maxLoopVerts vertices
// by fan triangulation around the loop centroid, restoring watertightness
// after minor damage (e.g. an STL void attack). It returns the number of
// holes filled. Larger holes are left alone: silently inventing large
// amounts of geometry would mask real tampering.
func (s *Shell) FillSmallHoles(tol float64, maxLoopVerts int) (int, error) {
	if maxLoopVerts < 3 {
		return 0, fmt.Errorf("mesh: maxLoopVerts must be >= 3, got %d", maxLoopVerts)
	}
	idx := IndexShell(s, tol)
	loops := idx.BoundaryLoops()
	filled := 0
	for _, loop := range loops {
		if len(loop) < 3 || len(loop) > maxLoopVerts {
			continue
		}
		// Boundary loops traverse the hole in the direction the existing
		// triangles used the edges; fill triangles must traverse
		// opposite, i.e. walk the loop reversed.
		var centroid geom.Vec3
		for _, p := range loop {
			centroid = centroid.Add(p)
		}
		centroid = centroid.Scale(1 / float64(len(loop)))
		n := len(loop)
		for i := 0; i < n; i++ {
			a := loop[(i+1)%n]
			b := loop[i]
			tri := geom.Triangle{A: a, B: b, C: centroid}
			if tri.IsDegenerate(tol) {
				continue
			}
			s.Tris = append(s.Tris, tri)
		}
		filled++
	}
	return filled, nil
}

// Repair runs the standard repair sequence on every shell of the mesh:
// fix winding, fill small holes, fix winding again (hole fills can expose
// new inconsistencies). It returns a human-readable summary.
func (m *Mesh) Repair(tol float64, maxLoopVerts int) (string, error) {
	totalFlips, totalHoles := 0, 0
	for i := range m.Shells {
		s := &m.Shells[i]
		totalFlips += s.RepairWinding(tol)
		holes, err := s.FillSmallHoles(tol, maxLoopVerts)
		if err != nil {
			return "", err
		}
		totalHoles += holes
		if holes > 0 {
			totalFlips += s.RepairWinding(tol)
		}
	}
	return fmt.Sprintf("repaired: %d triangles reoriented, %d holes filled",
		totalFlips, totalHoles), nil
}
