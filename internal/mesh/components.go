package mesh

import (
	"fmt"

	"obfuscade/internal/geom"
)

// SplitEdgeComponents partitions the shell into edge-connected components:
// triangles belong to the same component when they share a (welded) edge.
// STL decoding flattens a multi-body export into one anonymous soup; this
// recovers the individual closed shells, because two bodies produced by a
// spline split share at most isolated vertices (the split curve endpoints),
// never edges.
//
// Component shells are named <shell>-c0, <shell>-c1, ... in descending
// triangle-count order, and inherit the source shell's body name if set,
// otherwise the component name.
func (s *Shell) SplitEdgeComponents(tol float64) []Shell {
	idx := IndexShell(s, tol)
	if len(idx.Faces) == 0 {
		return nil
	}
	// Union-find over faces via shared edges (pooled identity array).
	sc := faceScratchPool.Get().(*faceScratch)
	defer faceScratchPool.Put(sc)
	sc.parent = growIdent(sc.parent, len(idx.Faces))
	parent := sc.parent
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	// Only 2-manifold edges (used by exactly two faces) connect faces.
	// Edges used four times are body-body contact lines — e.g. the
	// vertical edges where a spline split curve meets the part ends,
	// which both split bodies legitimately contain — and must not fuse
	// the components.
	edgeFaces := make(map[edgeKey][]int)
	for fi, f := range idx.Faces {
		for e := 0; e < 3; e++ {
			k := mkEdge(f[e], f[(e+1)%3])
			edgeFaces[k] = append(edgeFaces[k], fi)
		}
	}
	for _, faces := range edgeFaces {
		if len(faces) == 2 {
			union(faces[0], faces[1])
		}
	}
	groups := make(map[int][]int)
	for fi := range idx.Faces {
		r := find(fi)
		groups[r] = append(groups[r], fi)
	}
	// Deterministic order: descending size, ties by smallest face index.
	type comp struct {
		faces []int
	}
	comps := make([]comp, 0, len(groups))
	for _, faces := range groups {
		comps = append(comps, comp{faces: faces})
	}
	for i := 0; i < len(comps); i++ {
		for j := i + 1; j < len(comps); j++ {
			ci, cj := comps[i], comps[j]
			if len(cj.faces) > len(ci.faces) ||
				(len(cj.faces) == len(ci.faces) && cj.faces[0] < ci.faces[0]) {
				comps[i], comps[j] = comps[j], comps[i]
			}
		}
	}
	out := make([]Shell, 0, len(comps))
	for ci, c := range comps {
		name := fmt.Sprintf("%s-c%d", s.Name, ci)
		body := s.Body
		if body == "" {
			body = name
		}
		ns := Shell{Name: name, Body: body, Orient: s.Orient}
		for _, fi := range c.faces {
			f := idx.Faces[fi]
			ns.Tris = append(ns.Tris, geom.Triangle{
				A: idx.Verts[f[0]],
				B: idx.Verts[f[1]],
				C: idx.Verts[f[2]],
			})
		}
		out = append(out, ns)
	}
	return out
}
