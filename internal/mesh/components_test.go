package mesh

import (
	"testing"

	"obfuscade/internal/geom"
)

func TestSplitEdgeComponentsTwoBoxes(t *testing.T) {
	a := BoxShell("a", "", geom.V3(0, 0, 0), geom.V3(1, 1, 1))
	b := BoxShell("b", "", geom.V3(5, 0, 0), geom.V3(7, 1, 1))
	soup := Shell{Name: "soup", Tris: append(append([]geom.Triangle{}, a.Tris...), b.Tris...)}
	comps := soup.SplitEdgeComponents(1e-9)
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	// Descending size: the 2x1x1 box has the same triangle count, so the
	// tie-break picks the one containing face 0.
	if len(comps[0].Tris) != 12 || len(comps[1].Tris) != 12 {
		t.Errorf("component sizes = %d, %d", len(comps[0].Tris), len(comps[1].Tris))
	}
	for _, c := range comps {
		rep := IndexShell(&c, 1e-9).Analyze()
		if !rep.Watertight() {
			t.Errorf("component %s not watertight", c.Name)
		}
	}
	if comps[0].Body == comps[1].Body {
		t.Error("anonymous components should get distinct body names")
	}
}

func TestSplitEdgeComponentsSingle(t *testing.T) {
	a := BoxShell("solo", "bar", geom.V3(0, 0, 0), geom.V3(1, 1, 1))
	comps := a.SplitEdgeComponents(1e-9)
	if len(comps) != 1 {
		t.Fatalf("components = %d, want 1", len(comps))
	}
	if comps[0].Body != "bar" {
		t.Errorf("body name should be inherited, got %q", comps[0].Body)
	}
}

func TestSplitEdgeComponentsVertexTouch(t *testing.T) {
	// Two boxes sharing exactly one corner vertex must remain separate
	// components (edge connectivity, not vertex connectivity) — this is
	// what keeps split bodies separable after STL round-trip.
	a := BoxShell("a", "", geom.V3(0, 0, 0), geom.V3(1, 1, 1))
	b := BoxShell("b", "", geom.V3(1, 1, 1), geom.V3(2, 2, 2))
	soup := Shell{Name: "s", Tris: append(append([]geom.Triangle{}, a.Tris...), b.Tris...)}
	comps := soup.SplitEdgeComponents(1e-9)
	if len(comps) != 2 {
		t.Fatalf("vertex-touching boxes: components = %d, want 2", len(comps))
	}
}

func TestSplitEdgeComponentsEmpty(t *testing.T) {
	s := Shell{Name: "empty"}
	if comps := s.SplitEdgeComponents(1e-9); comps != nil {
		t.Errorf("empty shell components = %v", comps)
	}
}
