// Package memo is the shared-geometry stage memo behind the quality
// matrix: a content-addressed map from stage keys (hashes of the exact
// inputs that determine a stage's output) to immutable stage artifacts,
// with singleflight coalescing so N concurrent matrix keys that need the
// same tessellation or slicer index compute it exactly once.
//
// It differs from internal/cache deliberately:
//
//   - Values are arbitrary in-memory artifacts (*mesh.Mesh, *slicer.Index),
//     not serialisable results — there is no disk tier and no codec.
//   - The intended lifetime is one matrix pass: core.QualityMatrixWorkers
//     creates a fresh Memo per run, so warm state never leaks between runs
//     and the determinism contracts (serial == pool-of-N metrics and trace
//     censuses) keep holding. Longer-lived memos are allowed but then the
//     caller owns the determinism story.
//   - Observability is scheduling-independent by construction: a serial
//     run resolves a repeated key as a plain hit while a pooled run
//     resolves it by coalescing onto the in-flight leader, so the two are
//     counted together as memo.reused. Only memo.builds and memo.reused
//     are counters (both depend solely on the key multiset); eviction and
//     residency are gauges, excluded from the deterministic metric view.
//
// Contracts callers rely on:
//
//   - Memoized values are immutable. A reuse returns the same value the
//     build stored; callers that need to mutate (e.g. orient a shared
//     mesh) must clone first.
//   - Errors are never memoized: a failed build propagates to every
//     coalesced waiter and the next caller retries from scratch.
//   - A waiter whose own context ends returns early with that context's
//     error; the leader keeps building and still populates the memo.
//   - A waiter whose leader failed because the *leader's* context was
//     cancelled is promoted: it re-runs the build itself instead of
//     inheriting a cancellation that was never its own.
package memo

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"sync"

	"obfuscade/internal/obs"
	"obfuscade/internal/trace"
)

// Memo metrics. builds and reused are deterministic counters (they count
// key-multiset facts, not scheduling accidents); residency and eviction
// are gauges because an LRU's eviction order under concurrency is not.
var (
	stLookup   = obs.Stage("memo.lookup")
	mBuilds    = obs.Default().Counter("memo.builds")
	mReused    = obs.Default().Counter("memo.reused")
	gEvictions = obs.Default().Gauge("memo.evictions")
	gBytes     = obs.Default().Gauge("memo.bytes")
	gEntries   = obs.Default().Gauge("memo.entries")
)

// Key addresses one memoized stage artifact: a stage tag plus the hex
// SHA-256 of the canonical input bytes. Build it with Keyed.
type Key string

// Keyed derives a Key from a stage tag, a schema-version string (bump it
// whenever the stage's output bytes change — the memo analogue of
// core.PipelineVersion invalidation), and the canonical input parts. The
// parts are length-prefix separated before hashing so ("ab","c") and
// ("a","bc") cannot collide.
func Keyed(stage, version string, parts ...[]byte) Key {
	h := sha256.New()
	var lenBuf [8]byte
	writePart := func(p []byte) {
		n := len(p)
		for i := 0; i < 8; i++ {
			lenBuf[i] = byte(n >> (8 * i))
		}
		h.Write(lenBuf[:])
		h.Write(p)
	}
	writePart([]byte(version))
	for _, p := range parts {
		writePart(p)
	}
	return Key(stage + "/" + hex.EncodeToString(h.Sum(nil)))
}

// Stage returns the key's stage tag (the part before the hash) for
// human-readable trace args.
func (k Key) Stage() string {
	for i := 0; i < len(k); i++ {
		if k[i] == '/' {
			return string(k[:i])
		}
	}
	return string(k)
}

// Outcome classifies how a Do call was served.
type Outcome int

const (
	// Built means this caller ran the build (the singleflight leader).
	Built Outcome = iota
	// Reused means the artifact already existed (memory hit) or an
	// identical in-flight build was joined (coalesced). The two are one
	// outcome on purpose: which of them a given reuse is depends on
	// scheduling, and the deterministic metric and trace contracts
	// require scheduling-independent observability.
	Reused
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	if o == Built {
		return "built"
	}
	return "reused"
}

// Stats is a point-in-time census of one memo instance. Hits and
// Coalesced split the Reused outcome for diagnostics; only their sum is
// scheduling-independent.
type Stats struct {
	Builds    int64 `json:"builds"`
	Hits      int64 `json:"hits"`
	Coalesced int64 `json:"coalesced"`
	Promoted  int64 `json:"promoted"`
	Evictions int64 `json:"evictions"`
	Entries   int64 `json:"entries"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes"`
}

// BuildFunc computes one stage artifact. size is the value's residency
// cost in bytes against the byte budget and must be stable for the
// value's lifetime.
type BuildFunc func(ctx context.Context) (val any, size int64, err error)

// call is one in-flight singleflight build. val/size/err are written
// before done closes; waiters read them only after <-done. ctx is the
// leader's context, inspected by waiters to distinguish "the build
// failed" from "the leader was cancelled out from under me".
type call struct {
	done chan struct{}
	ctx  context.Context
	val  any
	size int64
	err  error
}

// entry is one resident artifact; list elements hold *entry.
type entry struct {
	key  Key
	val  any
	size int64
}

// Memo is a content-addressed stage memo with singleflight coalescing
// and an optional LRU byte budget. All methods are safe for concurrent
// use.
type Memo struct {
	mu     sync.Mutex
	max    int64 // byte budget; <= 0 means unbounded
	bytes  int64
	ll     *list.List // front = most recently used
	items  map[Key]*list.Element
	flight map[Key]*call
	stats  Stats
}

// New returns a memo with the given byte budget. maxBytes <= 0 means
// unbounded — the right setting for a per-matrix-run memo, whose
// residency is bounded by the key space itself.
func New(maxBytes int64) *Memo {
	return &Memo{
		max:    maxBytes,
		ll:     list.New(),
		items:  map[Key]*list.Element{},
		flight: map[Key]*call{},
	}
}

// Get returns the resident artifact for key, refreshing its recency.
func (m *Memo) Get(key Key) (any, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.items[key]
	if !ok {
		return nil, false
	}
	m.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Do returns the artifact for key, running build on the first request.
// Concurrent callers with the same key coalesce: exactly one runs build
// (the leader, under the leader's ctx), the rest wait for its result.
// build must return a non-nil value on success. Errors are not memoized.
func (m *Memo) Do(ctx context.Context, key Key, build BuildFunc) (v any, out Outcome, err error) {
	sctx, sp := trace.StartSpan(ctx, "stage", "memo.lookup", trace.A("stage", key.Stage()))
	defer func() {
		sp.SetArg("outcome", out.String())
		sp.End()
	}()
	span := stLookup.Start()
	defer func() { span.EndErr(err) }()

	for {
		m.mu.Lock()
		if el, ok := m.items[key]; ok {
			m.ll.MoveToFront(el)
			m.stats.Hits++
			v := el.Value.(*entry).val
			m.mu.Unlock()
			mReused.Inc()
			return v, Reused, nil
		}
		if cl, ok := m.flight[key]; ok {
			m.stats.Coalesced++
			m.mu.Unlock()
			mReused.Inc()
			select {
			case <-cl.done:
				if cl.err != nil && cl.ctx.Err() != nil && ctx.Err() == nil {
					// The leader failed because *its* context was cancelled,
					// not because the build is doomed. This waiter is still
					// live — promote it: loop back and re-run rather than
					// inheriting the leader's cancellation.
					m.mu.Lock()
					m.stats.Promoted++
					m.mu.Unlock()
					continue
				}
				return cl.val, Reused, cl.err
			case <-ctx.Done():
				return nil, Reused, ctx.Err()
			}
		}
		cl := &call{done: make(chan struct{}), ctx: sctx}
		m.flight[key] = cl
		m.mu.Unlock()

		cl.val, cl.size, cl.err = build(sctx)

		m.mu.Lock()
		delete(m.flight, key)
		if cl.err == nil && cl.val != nil {
			m.addLocked(key, cl.val, cl.size)
		}
		m.stats.Builds++
		m.mu.Unlock()
		mBuilds.Inc()
		close(cl.done)
		return cl.val, Built, cl.err
	}
}

// addLocked inserts a built artifact, evicting least-recently-used
// entries until the byte budget holds. An artifact larger than the whole
// budget is not retained at all (it still serves the leader and any
// coalesced waiters of this flight).
func (m *Memo) addLocked(key Key, v any, size int64) {
	if m.max > 0 && size > m.max {
		return
	}
	if el, ok := m.items[key]; ok {
		old := el.Value.(*entry)
		m.bytes += size - old.size
		gBytes.Add(size - old.size)
		old.val, old.size = v, size
		m.ll.MoveToFront(el)
	} else {
		m.items[key] = m.ll.PushFront(&entry{key: key, val: v, size: size})
		m.bytes += size
		gBytes.Add(size)
		gEntries.Add(1)
	}
	for m.max > 0 && m.bytes > m.max {
		el := m.ll.Back()
		if el == nil {
			return
		}
		e := el.Value.(*entry)
		m.ll.Remove(el)
		delete(m.items, e.key)
		m.bytes -= e.size
		m.stats.Evictions++
		gEvictions.Add(1)
		gBytes.Add(-e.size)
		gEntries.Add(-1)
	}
}

// Len returns the number of resident artifacts.
func (m *Memo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.items)
}

// Bytes returns the resident byte total.
func (m *Memo) Bytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytes
}

// Stats returns a snapshot of this instance's counters and residency.
func (m *Memo) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.Entries = int64(len(m.items))
	s.Bytes = m.bytes
	s.MaxBytes = m.max
	return s
}
