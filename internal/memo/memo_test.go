package memo

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func buildVal(v string, size int64) BuildFunc {
	return func(context.Context) (any, int64, error) {
		return v, size, nil
	}
}

func TestKeyedSeparatesParts(t *testing.T) {
	if Keyed("tess", "v1", []byte("ab"), []byte("c")) == Keyed("tess", "v1", []byte("a"), []byte("bc")) {
		t.Error("length-prefix separation failed: shifted parts collide")
	}
	if Keyed("tess", "v1", []byte("a")) == Keyed("tess", "v2", []byte("a")) {
		t.Error("version not mixed into the key")
	}
	if Keyed("tess", "v1", []byte("a")) == Keyed("zidx", "v1", []byte("a")) {
		t.Error("stage tag not part of the key")
	}
	k := Keyed("tess", "v1", []byte("a"))
	if k.Stage() != "tess" {
		t.Errorf("Stage() = %q, want tess", k.Stage())
	}
	if Key("nohash").Stage() != "nohash" {
		t.Errorf("Stage() of tagless key = %q", Key("nohash").Stage())
	}
}

func TestDoBuildsOnceThenReuses(t *testing.T) {
	m := New(0)
	ctx := context.Background()
	var builds atomic.Int64
	build := func(context.Context) (any, int64, error) {
		builds.Add(1)
		return "artifact", 8, nil
	}
	k := Keyed("tess", "v1", []byte("part"))

	v, out, err := m.Do(ctx, k, build)
	if err != nil || v.(string) != "artifact" || out != Built {
		t.Fatalf("first Do = (%v, %v, %v), want (artifact, Built, nil)", v, out, err)
	}
	v, out, err = m.Do(ctx, k, build)
	if err != nil || v.(string) != "artifact" || out != Reused {
		t.Fatalf("second Do = (%v, %v, %v), want (artifact, Reused, nil)", v, out, err)
	}
	if builds.Load() != 1 {
		t.Errorf("build ran %d times, want 1", builds.Load())
	}
	if got, ok := m.Get(k); !ok || got.(string) != "artifact" {
		t.Errorf("Get = (%v, %v), want (artifact, true)", got, ok)
	}
	if _, ok := m.Get(Key("absent")); ok {
		t.Error("Get(absent) reported a hit")
	}
	st := m.Stats()
	if st.Builds != 1 || st.Hits != 1 || st.Entries != 1 || st.Bytes != 8 {
		t.Errorf("stats = %+v, want builds=1 hits=1 entries=1 bytes=8", st)
	}
	if Built.String() != "built" || Reused.String() != "reused" {
		t.Error("Outcome strings changed: the trace census contract depends on them")
	}
}

func TestDoErrorNotMemoized(t *testing.T) {
	m := New(0)
	ctx := context.Background()
	boom := errors.New("boom")
	calls := 0
	_, out, err := m.Do(ctx, "k", func(context.Context) (any, int64, error) {
		calls++
		return nil, 0, boom
	})
	if !errors.Is(err, boom) || out != Built {
		t.Fatalf("failed Do = (%v, %v), want (boom, Built)", out, err)
	}
	v, out, err := m.Do(ctx, "k", buildVal("ok", 2))
	if err != nil || v.(string) != "ok" || out != Built {
		t.Fatalf("retry after error = (%v, %v, %v), want fresh build", v, out, err)
	}
	if calls != 1 {
		t.Errorf("failing build ran %d times, want 1", calls)
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d, want 1 (error not retained)", m.Len())
	}
}

func TestLRUByteBudget(t *testing.T) {
	m := New(100)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		k := Key(fmt.Sprintf("k%d", i))
		if _, _, err := m.Do(ctx, k, buildVal(fmt.Sprint(i), 40)); err != nil {
			t.Fatal(err)
		}
	}
	// 3 x 40 > 100: k0 (least recently used) must have been evicted.
	if _, ok := m.Get("k0"); ok {
		t.Error("k0 survived past the byte budget")
	}
	if _, ok := m.Get("k2"); !ok {
		t.Error("k2 (most recent) evicted")
	}
	if m.Bytes() != 80 || m.Len() != 2 {
		t.Errorf("residency = (%d bytes, %d entries), want (80, 2)", m.Bytes(), m.Len())
	}
	if st := m.Stats(); st.Evictions != 1 || st.MaxBytes != 100 {
		t.Errorf("stats = %+v, want evictions=1 max=100", st)
	}

	// Touching k1 then inserting must evict k2, not the refreshed k1.
	m.Get("k1")
	if _, _, err := m.Do(ctx, "k3", buildVal("3", 40)); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Get("k1"); !ok {
		t.Error("recently-touched k1 evicted before the LRU k2")
	}
	if _, ok := m.Get("k2"); ok {
		t.Error("k2 survived eviction despite being LRU")
	}

	// Oversized artifacts serve the caller but are not retained.
	v, out, err := m.Do(ctx, "big", buildVal("huge", 1000))
	if err != nil || v.(string) != "huge" || out != Built {
		t.Fatalf("oversized Do = (%v, %v, %v)", v, out, err)
	}
	if _, ok := m.Get("big"); ok {
		t.Error("artifact larger than the whole budget was retained")
	}

	// Rebuilding an evicted key updates the existing entry in place when
	// raced (same-key re-add path).
	if _, _, err := m.Do(ctx, "k3", buildVal("3", 40)); err != nil {
		t.Fatal(err)
	}
	m.mu.Lock()
	m.addLocked("k3", "replacement", 60)
	m.mu.Unlock()
	if v, _ := m.Get("k3"); v.(string) != "replacement" {
		t.Error("in-place update of an existing key failed")
	}
}

func TestConcurrentCoalescing(t *testing.T) {
	m := New(0)
	var builds atomic.Int64
	release := make(chan struct{})
	build := func(context.Context) (any, int64, error) {
		builds.Add(1)
		<-release
		return "shared", 4, nil
	}
	const waiters = 8
	var wg sync.WaitGroup
	outcomes := make([]Outcome, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, out, err := m.Do(context.Background(), "k", build)
			if err != nil || v.(string) != "shared" {
				t.Errorf("waiter %d: (%v, %v)", i, v, err)
			}
			outcomes[i] = out
		}(i)
	}
	// Let the flight assemble, then release the leader.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if builds.Load() != 1 {
		t.Fatalf("build ran %d times under coalescing, want 1", builds.Load())
	}
	built := 0
	for _, out := range outcomes {
		if out == Built {
			built++
		}
	}
	if built != 1 {
		t.Errorf("%d waiters observed Built, want exactly 1", built)
	}
	st := m.Stats()
	if st.Builds != 1 || st.Hits+st.Coalesced != waiters-1 {
		t.Errorf("stats = %+v, want builds=1 and hits+coalesced=%d", st, waiters-1)
	}
}

func TestWaiterContextCancellation(t *testing.T) {
	m := New(0)
	release := make(chan struct{})
	leaderIn := make(chan struct{})
	go m.Do(context.Background(), "k", func(context.Context) (any, int64, error) {
		close(leaderIn)
		<-release
		return "late", 4, nil
	})
	<-leaderIn
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := m.Do(ctx, "k", buildVal("never", 1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter error = %v, want context.Canceled", err)
	}
	// The leader still completes and populates the memo.
	close(release)
	deadline := time.After(2 * time.Second)
	for {
		if v, ok := m.Get("k"); ok {
			if v.(string) != "late" {
				t.Fatalf("leader stored %v", v)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatal("leader never populated the memo after waiter cancellation")
		case <-time.After(time.Millisecond):
		}
	}
}

func TestWaiterPromotionOnLeaderCancellation(t *testing.T) {
	m := New(0)
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderIn := make(chan struct{})
	var rebuilds atomic.Int64
	go m.Do(leaderCtx, "k", func(ctx context.Context) (any, int64, error) {
		close(leaderIn)
		<-ctx.Done()
		return nil, 0, ctx.Err()
	})
	<-leaderIn

	done := make(chan struct{})
	var v any
	var err error
	go func() {
		defer close(done)
		v, _, err = m.Do(context.Background(), "k", func(context.Context) (any, int64, error) {
			rebuilds.Add(1)
			return "promoted", 4, nil
		})
	}()
	// Give the waiter time to join the flight, then kill the leader.
	time.Sleep(10 * time.Millisecond)
	cancelLeader()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("promoted waiter never completed")
	}
	if err != nil || v.(string) != "promoted" {
		t.Fatalf("promoted waiter = (%v, %v), want (promoted, nil)", v, err)
	}
	if rebuilds.Load() != 1 {
		t.Errorf("promoted waiter rebuilt %d times, want 1", rebuilds.Load())
	}
	if st := m.Stats(); st.Promoted != 1 {
		t.Errorf("stats.Promoted = %d, want 1", st.Promoted)
	}
}

// TestPoolOf8Hammer drives a realistic matrix-shaped workload — few hot
// keys, many goroutines, interleaved reads — through one memo from 8
// workers. Run with -race this is the tier-2 guard for the shared
// singleflight state.
func TestPoolOf8Hammer(t *testing.T) {
	m := New(1 << 20)
	keys := make([]Key, 6)
	for i := range keys {
		keys[i] = Keyed("tess", "v1", []byte(fmt.Sprintf("part-%d", i%3)))
	}
	var builds atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 200; iter++ {
				k := keys[(w+iter)%len(keys)]
				v, _, err := m.Do(context.Background(), k, func(context.Context) (any, int64, error) {
					builds.Add(1)
					return string(k), 64, nil
				})
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if v.(string) != string(k) {
					t.Errorf("worker %d: got %v for key %s", w, v, k)
					return
				}
				m.Get(k)
			}
		}(w)
	}
	wg.Wait()
	// 6 key strings collapse to 3 distinct hashes (i%3): exactly 3 builds
	// regardless of interleaving.
	if builds.Load() != 3 {
		t.Errorf("hammer built %d artifacts, want 3", builds.Load())
	}
	if m.Len() != 3 {
		t.Errorf("Len = %d, want 3", m.Len())
	}
}
