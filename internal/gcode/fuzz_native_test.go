package gcode

import "testing"

// Native fuzz target: the parser must never panic, and anything it parses
// must simulate without panicking.
func FuzzParse(f *testing.F) {
	f.Add("G21\nG90\nG1 X10 Y10 E0.5 F1800\n")
	f.Add("; comment only\n")
	f.Add("T0\nG92 E0\nG0 X-5\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Unmarshal([]byte(src))
		if err != nil || len(p.Commands) == 0 {
			return
		}
		if _, err := Simulate(p, DimensionEliteEnvelope()); err != nil {
			return
		}
	})
}
