package gcode_test

import (
	"fmt"
	"log"

	"obfuscade/internal/gcode"
)

// Parse a received G-code job, simulate it against the machine envelope,
// and inspect what it would physically do — the defender's pre-flight
// check (Table 1, "Simulation of generated G-code").
func Example() {
	job := `
G21 ; millimetres
G90 ; absolute
G92 E0
G1 Z0.1778 F4800
G0 X10 Y10
G1 X30 Y10 E0.66 F1800
G1 X30 Y20 E0.99
G1 X10 Y20 E1.65
G1 X10 Y10 E1.98
`
	prog, err := gcode.Unmarshal([]byte(job))
	if err != nil {
		log.Fatal(err)
	}
	rep, err := gcode.Simulate(prog, gcode.DimensionEliteEnvelope())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("violations:", len(rep.Violations))
	fmt.Printf("extruded: %.0f mm over %d layer(s)\n", rep.ExtrudeLength, rep.Layers)
	// Output:
	// violations: 0
	// extruded: 60 mm over 1 layer(s)
}
