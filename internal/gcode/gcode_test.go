package gcode

import (
	"math"
	"strings"
	"testing"

	"obfuscade/internal/geom"
	"obfuscade/internal/mesh"
	"obfuscade/internal/slicer"
)

func boxPaths(t *testing.T) []*slicer.LayerToolpath {
	t.Helper()
	m := &mesh.Mesh{Shells: []mesh.Shell{
		mesh.BoxShell("box", "box", geom.V3(10, 10, 0), geom.V3(30, 20, 1)),
	}}
	opts := slicer.DefaultOptions()
	res, err := slicer.Slice(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := res.Toolpaths()
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

func TestGenerateEncodeParseRoundTrip(t *testing.T) {
	paths := boxPaths(t)
	prog, err := Generate("box", paths, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	data, err := Marshal(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "G21") || !strings.Contains(string(data), "G90") {
		t.Error("missing preamble")
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	// Simulated physics must agree between original and round-tripped.
	env := DimensionEliteEnvelope()
	d, err := Compare(prog, back, env)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equivalent(1e-3) {
		t.Errorf("round trip not equivalent: %+v", d)
	}
}

func TestGenerateBadOptions(t *testing.T) {
	paths := boxPaths(t)
	bad := DefaultOptions()
	bad.PrintFeed = 0
	if _, err := Generate("x", paths, bad); err == nil {
		t.Error("expected error for zero feed")
	}
}

func TestSimulateReport(t *testing.T) {
	paths := boxPaths(t)
	prog, err := Generate("box", paths, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Simulate(prog, DimensionEliteEnvelope())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("unexpected violations: %v", rep.Violations)
	}
	if rep.Layers != len(paths) {
		t.Errorf("layers = %d, want %d", rep.Layers, len(paths))
	}
	wantExtrude := slicer.TotalExtruded(paths)
	if math.Abs(rep.ExtrudeLength-wantExtrude) > 1e-3*wantExtrude {
		t.Errorf("extrude length = %v, want %v", rep.ExtrudeLength, wantExtrude)
	}
	if rep.PrintTime <= 0 {
		t.Error("print time should be positive")
	}
	if rep.ExtrudedE <= 0 {
		t.Error("extruded E should be positive")
	}
	// Bounds include the box with its travel moves.
	if rep.Bounds.Max.X < 29 || rep.Bounds.Min.X > 11 {
		t.Errorf("bounds = %+v", rep.Bounds)
	}
}

func TestSimulateEnvelopeViolation(t *testing.T) {
	prog := &Program{Commands: []Command{
		{Code: "G90"},
		{Code: "G1", Args: map[string]float64{"X": 500, "Y": 0, "F": 1000}},
	}}
	rep, err := Simulate(prog, DimensionEliteEnvelope())
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("expected envelope violation")
	}
	if rep.Violations[0].Kind != "envelope" {
		t.Errorf("violation kind = %s", rep.Violations[0].Kind)
	}
}

func TestSimulateFeedrateViolation(t *testing.T) {
	prog := &Program{Commands: []Command{
		{Code: "G1", Args: map[string]float64{"X": 10, "F": 99999}},
	}}
	rep, err := Simulate(prog, DimensionEliteEnvelope())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range rep.Violations {
		if v.Kind == "feedrate" {
			found = true
		}
	}
	if !found {
		t.Error("expected feedrate violation")
	}
}

func TestSimulateUnknownCommand(t *testing.T) {
	prog := &Program{Commands: []Command{{Code: "G999"}}}
	rep, err := Simulate(prog, DimensionEliteEnvelope())
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Error("expected unknown-command violation")
	}
}

func TestSimulateEmpty(t *testing.T) {
	if _, err := Simulate(&Program{}, DimensionEliteEnvelope()); err == nil {
		t.Error("expected error for empty program")
	}
}

func TestParseMalformed(t *testing.T) {
	if _, err := Unmarshal([]byte("G1 Xabc\n")); err == nil {
		t.Error("expected parse error for bad number")
	}
	if _, err := Unmarshal([]byte("G1 X\n")); err == nil {
		t.Error("expected parse error for empty word")
	}
}

func TestParseCommentsAndCase(t *testing.T) {
	p, err := Unmarshal([]byte("; header only\ng1 x5 y6 e0.1 f1200 ; move\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Commands) != 2 {
		t.Fatalf("commands = %d, want 2", len(p.Commands))
	}
	if p.Commands[1].Code != "G1" {
		t.Errorf("code = %q", p.Commands[1].Code)
	}
	if v, ok := p.Commands[1].Arg("X"); !ok || v != 5 {
		t.Errorf("X arg = %v %t", v, ok)
	}
	if p.Commands[0].Comment != "header only" {
		t.Errorf("comment = %q", p.Commands[0].Comment)
	}
}

func TestExtractToolpaths(t *testing.T) {
	paths := boxPaths(t)
	prog, err := Generate("box", paths, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExtractToolpaths(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(paths) {
		t.Fatalf("extracted layers = %d, want %d", len(got), len(paths))
	}
	// Reverse-engineered extruded length matches the design intent
	// (ref [20]'s reconstruction guarantee).
	want := slicer.TotalExtruded(paths)
	have := slicer.TotalExtruded(got)
	if math.Abs(want-have) > 1e-3*want {
		t.Errorf("reversed extrusion %v, want %v", have, want)
	}
}

func TestExtractToolpathsNoLayers(t *testing.T) {
	prog := &Program{Commands: []Command{{Code: "G90"}}}
	if _, err := ExtractToolpaths(prog); err == nil {
		t.Error("expected error when no layers present")
	}
}

// The Table 1 "Slicing & G-code" attack/mitigation pair: a porosity attack
// (dropping infill) must be caught by the G-code comparison check.
func TestCompareDetectsPorosityAttack(t *testing.T) {
	paths := boxPaths(t)
	prog, err := Generate("box", paths, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Attack: remove every 4th extruding move (injected porosity).
	tampered := &Program{Name: prog.Name}
	n := 0
	for _, c := range prog.Commands {
		if c.Code == "G1" {
			if _, hasE := c.Arg("E"); hasE {
				n++
				if n%4 == 0 {
					continue
				}
			}
		}
		tampered.Commands = append(tampered.Commands, c)
	}
	env := DimensionEliteEnvelope()
	d, err := Compare(prog, tampered, env)
	if err != nil {
		t.Fatal(err)
	}
	if d.Equivalent(1e-3) {
		t.Error("porosity attack not detected")
	}
	if d.ExtrudeDelta >= 0 {
		t.Errorf("tampered program should extrude less: %+v", d)
	}
}

func TestCompareSelfEquivalent(t *testing.T) {
	paths := boxPaths(t)
	prog, _ := Generate("box", paths, DefaultOptions())
	d, err := Compare(prog, prog, DimensionEliteEnvelope())
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equivalent(1e-9) {
		t.Errorf("self-compare not equivalent: %+v", d)
	}
}
