package gcode

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMoveTimeInstantaneous(t *testing.T) {
	// Zero acceleration means dist/v.
	if got := moveTime(100, 50, 0); !approxEq(got, 2, 1e-12) {
		t.Errorf("moveTime = %v, want 2", got)
	}
	if moveTime(0, 50, 1000) != 0 || moveTime(10, 0, 1000) != 0 {
		t.Error("degenerate moves should take zero time")
	}
}

func TestMoveTimeTrapezoid(t *testing.T) {
	// Long move: accel phase adds exactly v/a over the instantaneous
	// estimate (2*v/a spent covering v^2/a distance that would have
	// taken v/a at cruise).
	const v, a = 30.0, 1500.0
	dist := 100.0
	got := moveTime(dist, v, a)
	want := dist/v + v/a
	if !approxEq(got, want, 1e-9) {
		t.Errorf("trapezoid time = %v, want %v", got, want)
	}
}

func TestMoveTimeTriangular(t *testing.T) {
	// A move too short to reach cruise speed: t = 2*sqrt(d/a).
	const v, a = 30.0, 1500.0
	dist := 0.1 // << v^2/a = 0.6
	got := moveTime(dist, v, a)
	want := 2 * math.Sqrt(dist/a)
	if !approxEq(got, want, 1e-12) {
		t.Errorf("triangular time = %v, want %v", got, want)
	}
	// Slower than cruising the whole way instantly.
	if got <= dist/v {
		t.Error("accel-limited move should take longer than instantaneous")
	}
}

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// Property: acceleration never makes a move faster, and time is monotone
// in distance.
func TestMoveTimeProperties(t *testing.T) {
	f := func(d, v, a float64) bool {
		d = clampPos(d, 1e-3, 1e4)
		v = clampPos(v, 1e-2, 1e3)
		a = clampPos(a, 1, 1e5)
		withAccel := moveTime(d, v, a)
		instant := moveTime(d, v, 0)
		if withAccel < instant-1e-12 {
			return false
		}
		return moveTime(2*d, v, a) > withAccel
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func clampPos(v, lo, hi float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return lo
	}
	v = math.Abs(v)
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func TestSimulateAccelSlowerThanInstant(t *testing.T) {
	paths := boxPaths(t)
	prog, err := Generate("box", paths, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	env := DimensionEliteEnvelope()
	withAccel, err := Simulate(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	env.Accel = 0
	instant, err := Simulate(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	if withAccel.PrintTime <= instant.PrintTime {
		t.Errorf("accel time %v should exceed instantaneous %v",
			withAccel.PrintTime, instant.PrintTime)
	}
}
