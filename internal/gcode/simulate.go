package gcode

import (
	"context"
	"fmt"
	"math"
	"strings"

	"obfuscade/internal/geom"
	"obfuscade/internal/obs"
	"obfuscade/internal/slicer"
	"obfuscade/internal/trace"
)

// Simulation metrics: per-program latency plus deterministic command and
// violation totals.
var (
	stSimulate     = obs.Stage("gcode.simulate")
	mSimCommands   = obs.Default().Counter("gcode.sim.commands")
	mSimViolations = obs.Default().Counter("gcode.sim.violations")
)

// Envelope is the printer's physical working volume and kinematic limits —
// the defender's "actuator limit switch" model (Table 1).
type Envelope struct {
	Min, Max geom.Vec3
	// MaxFeed is the highest legal feedrate, mm/min.
	MaxFeed float64
	// Accel is the axis acceleration in mm/s^2 used for time
	// integration; zero means instantaneous acceleration (upper-bound
	// speeds, lower-bound times).
	Accel float64
}

// DimensionEliteEnvelope returns the build envelope of the paper's FDM
// machine (203 x 203 x 305 mm).
func DimensionEliteEnvelope() Envelope {
	return Envelope{
		Min:     geom.V3(0, 0, 0),
		Max:     geom.V3(203, 203, 305),
		MaxFeed: 9000,
		Accel:   1500,
	}
}

// moveTime integrates a trapezoidal velocity profile: accelerate at a to
// the commanded speed v, cruise, decelerate. Short moves never reach v
// (triangular profile).
func moveTime(dist, v, a float64) float64 {
	if dist <= 0 || v <= 0 {
		return 0
	}
	if a <= 0 {
		return dist / v
	}
	accelDist := v * v / a // accelerate + decelerate distance
	if dist <= accelDist {
		// Triangular: dist = v_peak^2 / a, t = 2 v_peak / a.
		return 2 * math.Sqrt(dist/a)
	}
	return (dist-accelDist)/v + 2*v/a
}

// Violation is one safety problem found by the simulator.
type Violation struct {
	Line    int
	Kind    string
	Message string
}

// Report summarises a simulated program.
type Report struct {
	// Commands is the number of executable commands.
	Commands int
	// TravelLength and ExtrudeLength are XY path lengths in mm.
	TravelLength, ExtrudeLength float64
	// ExtrudedE is the final filament axis position.
	ExtrudedE float64
	// PrintTime is the feedrate-integrated duration in seconds.
	PrintTime float64
	// Bounds is the visited coordinate range.
	Bounds geom.AABB
	// Layers is the number of distinct Z heights visited by extruding
	// moves.
	Layers int
	// PerLayerExtrude maps layer z (rounded to 1 µm) to extruded length.
	PerLayerExtrude map[int64]float64
	// Violations lists envelope and kinematic violations.
	Violations []Violation
}

// OK reports whether the simulation found no violations.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Simulate executes the program against an envelope, integrating motion
// and extrusion, and collecting violations instead of stopping — the
// defender wants the full damage report.
func Simulate(p *Program, env Envelope) (*Report, error) {
	return SimulateCtx(context.Background(), p, env)
}

// SimulateCtx is Simulate with trace propagation: the stage span
// parents to the span carried by ctx and records the deterministic
// command count.
func SimulateCtx(ctx context.Context, p *Program, env Envelope) (*Report, error) {
	if p == nil || len(p.Commands) == 0 {
		return nil, fmt.Errorf("gcode: empty program")
	}
	span := stSimulate.Start()
	defer span.End()
	_, tsp := trace.StartSpan(ctx, "stage", "gcode.simulate",
		trace.A("commands", fmt.Sprint(len(p.Commands))))
	defer tsp.End()
	rep := &Report{PerLayerExtrude: make(map[int64]float64)}
	rep.Bounds = geom.EmptyAABB()
	pos := geom.V3(0, 0, 0)
	e := 0.0
	feed := env.MaxFeed
	layerSeen := make(map[int64]bool)

	for i, c := range p.Commands {
		switch c.Code {
		case "G0", "G1":
			next := pos
			if v, ok := c.Arg("X"); ok {
				next.X = v
			}
			if v, ok := c.Arg("Y"); ok {
				next.Y = v
			}
			if v, ok := c.Arg("Z"); ok {
				next.Z = v
			}
			if v, ok := c.Arg("F"); ok {
				if env.MaxFeed > 0 && v > env.MaxFeed {
					rep.Violations = append(rep.Violations, Violation{
						Line: i, Kind: "feedrate",
						Message: fmt.Sprintf("feedrate %.0f exceeds limit %.0f", v, env.MaxFeed),
					})
				}
				feed = v
			}
			if !inEnvelope(next, env) {
				rep.Violations = append(rep.Violations, Violation{
					Line: i, Kind: "envelope",
					Message: fmt.Sprintf("move to %v leaves envelope", next),
				})
			}
			dist := next.Sub(pos).Len()
			newE, hasE := c.Arg("E")
			if hasE && newE > e {
				rep.ExtrudeLength += pos.XY().Dist(next.XY())
				zKey := int64(math.Round(next.Z * 1000))
				rep.PerLayerExtrude[zKey] += pos.XY().Dist(next.XY())
				if !layerSeen[zKey] {
					layerSeen[zKey] = true
					rep.Layers++
				}
				e = newE
			} else {
				rep.TravelLength += dist
			}
			rep.PrintTime += moveTime(dist, feed/60, env.Accel)
			rep.Bounds.Extend(next)
			pos = next
			rep.Commands++
		case "G92":
			if v, ok := c.Arg("E"); ok {
				e = v
			}
			rep.Commands++
		case "G21", "G90", "M104", "M140", "T0", "T1", "":
			rep.Commands++
		default:
			rep.Violations = append(rep.Violations, Violation{
				Line: i, Kind: "unknown-command",
				Message: fmt.Sprintf("unsupported code %q", c.Code),
			})
		}
	}
	rep.ExtrudedE = e
	mSimCommands.Add(int64(rep.Commands))
	mSimViolations.Add(int64(len(rep.Violations)))
	return rep, nil
}

func inEnvelope(p geom.Vec3, env Envelope) bool {
	return p.X >= env.Min.X && p.X <= env.Max.X &&
		p.Y >= env.Min.Y && p.Y <= env.Max.Y &&
		p.Z >= env.Min.Z && p.Z <= env.Max.Z
}

// RoleBreakdown sums extruded XY length per move role, using the TYPE
// comments the generator attaches to extruding moves. Unannotated
// extruding moves count under "other".
func RoleBreakdown(p *Program) map[string]float64 {
	out := map[string]float64{}
	pos := [2]float64{}
	e := 0.0
	for _, c := range p.Commands {
		switch c.Code {
		case "G0", "G1":
			next := pos
			if v, ok := c.Arg("X"); ok {
				next[0] = v
			}
			if v, ok := c.Arg("Y"); ok {
				next[1] = v
			}
			newE, hasE := c.Arg("E")
			if hasE && newE > e {
				dx := next[0] - pos[0]
				dy := next[1] - pos[1]
				dist := math.Hypot(dx, dy)
				role := "other"
				if strings.HasPrefix(c.Comment, "TYPE:") {
					role = strings.TrimPrefix(c.Comment, "TYPE:")
				}
				out[role] += dist
				e = newE
			}
			pos = next
		case "G92":
			if v, ok := c.Arg("E"); ok {
				e = v
			}
		}
	}
	return out
}

// ExtractToolpaths reverses a program back into per-layer toolpaths — the
// tool-path reverse engineering of ref [20], used both by attackers (IP
// theft from stolen G-code) and by defenders (validating received G-code
// against the design intent).
func ExtractToolpaths(p *Program) ([]*slicer.LayerToolpath, error) {
	var out []*slicer.LayerToolpath
	var cur *slicer.LayerToolpath
	pos := geom.V2(0, 0)
	z := 0.0
	e := 0.0
	for _, c := range p.Commands {
		switch c.Code {
		case "G0", "G1":
			next := pos
			if v, ok := c.Arg("X"); ok {
				next.X = v
			}
			if v, ok := c.Arg("Y"); ok {
				next.Y = v
			}
			if v, ok := c.Arg("Z"); ok && v != z {
				z = v
				cur = &slicer.LayerToolpath{Index: len(out), Z: z}
				out = append(out, cur)
			}
			newE, hasE := c.Arg("E")
			role := slicer.Travel
			if hasE && newE > e {
				role = slicer.Infill // role detail is advisory after reversal
				e = newE
			}
			if cur != nil && !next.Eq(pos, 1e-12) {
				cur.Moves = append(cur.Moves, slicer.Move{From: pos, To: next, Role: role})
			}
			pos = next
		case "G92":
			if v, ok := c.Arg("E"); ok {
				e = v
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("gcode: no layers found")
	}
	return out, nil
}

// DiffReport compares two programs' physical effect.
type DiffReport struct {
	// ExtrudeDelta is the difference in total extruded XY length.
	ExtrudeDelta float64
	// LayerDelta is the difference in layer counts.
	LayerDelta int
	// MaxLayerDelta is the largest per-layer extruded-length difference.
	MaxLayerDelta float64
	// BoundsDelta is the difference of bounding-box sizes.
	BoundsDelta geom.Vec3
}

// Equivalent reports whether the diff is negligible: same layers, nearly
// the same per-layer extrusion and bounds.
func (d DiffReport) Equivalent(tol float64) bool {
	return d.LayerDelta == 0 &&
		math.Abs(d.ExtrudeDelta) <= tol &&
		d.MaxLayerDelta <= tol &&
		d.BoundsDelta.Abs().Len() <= tol
}

// Compare simulates both programs and diffs their physical effect — the
// G-code integrity check a defender runs against a trusted reference
// before releasing a job to the printer.
func Compare(a, b *Program, env Envelope) (DiffReport, error) {
	ra, err := Simulate(a, env)
	if err != nil {
		return DiffReport{}, err
	}
	rb, err := Simulate(b, env)
	if err != nil {
		return DiffReport{}, err
	}
	d := DiffReport{
		ExtrudeDelta: rb.ExtrudeLength - ra.ExtrudeLength,
		LayerDelta:   rb.Layers - ra.Layers,
		BoundsDelta:  rb.Bounds.Size().Sub(ra.Bounds.Size()),
	}
	for z, la := range ra.PerLayerExtrude {
		delta := math.Abs(rb.PerLayerExtrude[z] - la)
		if delta > d.MaxLayerDelta {
			d.MaxLayerDelta = delta
		}
	}
	for z, lb := range rb.PerLayerExtrude {
		if _, ok := ra.PerLayerExtrude[z]; !ok && lb > d.MaxLayerDelta {
			d.MaxLayerDelta = lb
		}
	}
	return d, nil
}
