// Package diskstore is the persistent tier of the two-tier result
// cache: a content-addressed on-disk store keyed by the same hex
// SHA-256 addresses as the in-memory LRU (internal/cache). Because the
// key already hashes core.PipelineVersion, a deploy that changes
// pipeline output bytes misses naturally — old objects age out under
// the byte budget instead of poisoning new builds.
//
// Contracts the cache layer relies on:
//
//   - Writes are atomic: an object is written to a temp file in the
//     same directory, fsynced, then renamed into place. Readers never
//     observe a partial object; a crash leaves only temp files, which
//     Open sweeps away.
//   - Reads are self-checking: every object carries a SHA-256 of its
//     payload, verified on each read. A corrupt object (bit rot,
//     truncation, torn write from a dying kernel) is deleted and
//     reported as a miss — never returned.
//   - Residency is bounded: when resident bytes pass the budget, the
//     least-recently-used objects are garbage-collected. Recency
//     survives restarts through an append-only atime journal that is
//     replayed and compacted on Open.
//
// Lookup outcomes feed package obs (cache.disk.* metrics) and each
// lookup emits a trace span tagged with its outcome.
package diskstore

import (
	"bytes"
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"obfuscade/internal/cache"
	"obfuscade/internal/obs"
	"obfuscade/internal/trace"
)

// Disk-tier metrics. The process-wide registry aggregates across
// instances; per-instance numbers come from Store.Stats.
var (
	mHits    = obs.Default().Counter("cache.disk.hits")
	mMisses  = obs.Default().Counter("cache.disk.misses")
	mGC      = obs.Default().Counter("cache.disk.gc_evictions")
	mCorrupt = obs.Default().Counter("cache.disk.corrupt")
	mPutErrs = obs.Default().Counter("cache.disk.put_errors")
	gBytes   = obs.Default().Gauge("cache.disk.bytes")
	gEntries = obs.Default().Gauge("cache.disk.entries")
)

// Object file layout: an 8-byte magic, the SHA-256 of the payload, the
// payload length, then the payload. The digest makes every read
// self-checking; the explicit length catches truncation before the
// (more expensive) hash comparison runs.
const (
	fileMagic  = "OBFCDS1\n"
	headerSize = len(fileMagic) + sha256.Size + 8

	objectsDir  = "objects"
	journalName = "journal"
	tmpPrefix   = ".tmp-"
)

// journalSlack bounds journal growth: the journal is compacted once it
// holds more than max(journalSlack, 8×entries) appended lines.
const journalSlack = 1024

// Stats is a point-in-time census of one store instance.
type Stats struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Corrupt     int64 `json:"corrupt"`
	GCEvictions int64 `json:"gc_evictions"`
	PutErrors   int64 `json:"put_errors"`
	Entries     int64 `json:"entries"`
	Bytes       int64 `json:"bytes"`
	MaxBytes    int64 `json:"max_bytes"`
}

// entry is one resident object; list elements hold *entry.
type entry struct {
	key  cache.Key
	size int64 // on-disk size, header included
}

// Store is a content-addressed on-disk object store with LRU garbage
// collection over a byte budget. All methods are safe for concurrent
// use. It implements cache.Store.
type Store struct {
	dir string
	max int64 // byte budget; <= 0 means unbounded

	mu      sync.Mutex
	journal *os.File
	appends int // journal lines since the last compaction
	bytes   int64
	ll      *list.List // front = most recently used
	items   map[cache.Key]*list.Element
	stats   Stats
	closed  bool
}

// Open opens (creating if needed) a store rooted at dir with the given
// byte budget (<= 0 means unbounded). Leftover temp files from a
// crashed writer are removed, the resident objects are indexed (oldest
// modification first), the atime journal is replayed to restore LRU
// order across restarts, and the journal is compacted. If the budget
// shrank since the last run, GC brings residency back under it.
func Open(dir string, maxBytes int64) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, objectsDir), 0o755); err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	s := &Store{
		dir:   dir,
		max:   maxBytes,
		ll:    list.New(),
		items: map[cache.Key]*list.Element{},
	}
	if err := s.scanObjects(); err != nil {
		return nil, err
	}
	if err := s.replayJournal(); err != nil {
		return nil, err
	}
	if err := s.compactJournalLocked(); err != nil {
		return nil, err
	}
	for s.max > 0 && s.bytes > s.max {
		s.evictOldestLocked()
	}
	gBytes.Add(s.bytes)
	gEntries.Add(int64(len(s.items)))
	return s, nil
}

// scanObjects indexes the objects directory: valid object files enter
// the LRU ordered by modification time (a stand-in atime until the
// journal replays), temp files and foreign names are swept away.
func (s *Store) scanObjects() error {
	root := filepath.Join(s.dir, objectsDir)
	ents, err := os.ReadDir(root)
	if err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	type found struct {
		key   cache.Key
		size  int64
		mtime time.Time
	}
	var objs []found
	for _, de := range ents {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		if strings.HasPrefix(name, tmpPrefix) || !validKey(cache.Key(name)) {
			os.Remove(filepath.Join(root, name))
			continue
		}
		info, err := de.Info()
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue
			}
			return fmt.Errorf("diskstore: %w", err)
		}
		objs = append(objs, found{key: cache.Key(name), size: info.Size(), mtime: info.ModTime()})
	}
	sort.Slice(objs, func(a, b int) bool {
		if !objs[a].mtime.Equal(objs[b].mtime) {
			return objs[a].mtime.Before(objs[b].mtime)
		}
		return objs[a].key < objs[b].key // stable order for equal mtimes
	})
	for _, o := range objs {
		s.items[o.key] = s.ll.PushFront(&entry{key: o.key, size: o.size})
		s.bytes += o.size
	}
	return nil
}

// replayJournal restores LRU recency: each surviving line moves its key
// to the front, so the journal's append order reconstructs access
// order. Lines for evicted or unknown keys are ignored; a torn final
// line (crash mid-append) is ignored too.
func (s *Store) replayJournal() error {
	data, err := os.ReadFile(filepath.Join(s.dir, journalName))
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		if el, ok := s.items[cache.Key(fields[1])]; ok {
			s.ll.MoveToFront(el)
		}
	}
	return nil
}

// compactJournalLocked rewrites the journal to exactly one line per
// resident object (oldest first) and reopens it for appending.
func (s *Store) compactJournalLocked() error {
	if s.journal != nil {
		s.journal.Close()
		s.journal = nil
	}
	path := filepath.Join(s.dir, journalName)
	tmp, err := os.CreateTemp(s.dir, tmpPrefix+journalName+"-*")
	if err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	now := time.Now().UnixNano()
	for el := s.ll.Back(); el != nil; el = el.Prev() {
		fmt.Fprintf(tmp, "%d %s\n", now, el.Value.(*entry).key)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("diskstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("diskstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("diskstore: %w", err)
	}
	// The rename itself lives in the directory, not the file: without an
	// fsync of the parent a crash right after compaction can surface an
	// empty directory entry — the old journal gone, the new one never
	// durable — losing all LRU recency. Best-effort: recency is a
	// performance hint, so a failed dir sync must not fail the store.
	syncDir(s.dir)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	s.journal = f
	s.appends = 0
	return nil
}

// touchLocked refreshes a key's recency in memory and in the journal.
func (s *Store) touchLocked(el *list.Element) {
	s.ll.MoveToFront(el)
	if s.journal == nil {
		return
	}
	fmt.Fprintf(s.journal, "%d %s\n", time.Now().UnixNano(), el.Value.(*entry).key)
	s.appends++
	if limit := 8 * len(s.items); s.appends > max(journalSlack, limit) {
		s.compactJournalLocked() // best-effort; next Open rebuilds from mtimes anyway
	}
}

// objectPath returns the object file for a key.
func (s *Store) objectPath(key cache.Key) string {
	return filepath.Join(s.dir, objectsDir, string(key))
}

// validKey reports whether key is a well-formed content address (64
// lowercase hex chars) and therefore a safe file name.
func validKey(key cache.Key) bool {
	if len(key) != 64 {
		return false
	}
	for _, r := range key {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return false
		}
	}
	return true
}

// errCorrupt marks an object that failed its self-check.
var errCorrupt = errors.New("diskstore: object failed integrity check")

// readObject reads and verifies one object file, returning the payload.
func readObject(path string) ([]byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(b) < headerSize || string(b[:len(fileMagic)]) != fileMagic {
		return nil, errCorrupt
	}
	digest := b[len(fileMagic) : len(fileMagic)+sha256.Size]
	length := binary.BigEndian.Uint64(b[len(fileMagic)+sha256.Size : headerSize])
	payload := b[headerSize:]
	if uint64(len(payload)) != length {
		return nil, errCorrupt
	}
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], digest) {
		return nil, errCorrupt
	}
	return payload, nil
}

// Get returns the stored payload for key, refreshing its recency. A
// missing, evicted or malformed-key lookup is a miss; an object that
// fails its self-check is deleted, counted as corrupt, and reported as
// a miss so the caller recomputes.
func (s *Store) Get(ctx context.Context, key cache.Key) (data []byte, ok bool) {
	_, sp := trace.StartSpan(ctx, "stage", "cache.disk.lookup")
	defer func() {
		outcome := "miss"
		if ok {
			outcome = "hit"
		}
		sp.SetArg("outcome", outcome)
		sp.End()
	}()

	s.mu.Lock()
	_, resident := s.items[key]
	s.mu.Unlock()
	if !resident {
		s.miss()
		return nil, false
	}

	// Read outside the lock: object files are immutable once renamed
	// into place, so the only race is concurrent GC unlinking the file,
	// which surfaces as a plain miss below.
	payload, err := readObject(s.objectPath(key))
	if err != nil {
		if errors.Is(err, errCorrupt) {
			s.dropCorrupt(key)
		}
		s.miss()
		return nil, false
	}

	s.mu.Lock()
	// The object may have been GC-evicted between the index check and
	// the read; the bytes in hand are still a valid hit, there is just
	// no recency left to refresh.
	if el, still := s.items[key]; still {
		s.touchLocked(el)
	}
	s.stats.Hits++
	s.mu.Unlock()
	mHits.Inc()
	return payload, true
}

// miss counts one lookup miss.
func (s *Store) miss() {
	s.mu.Lock()
	s.stats.Misses++
	s.mu.Unlock()
	mMisses.Inc()
}

// dropCorrupt removes a failed object from disk and the index.
func (s *Store) dropCorrupt(key cache.Key) {
	os.Remove(s.objectPath(key))
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		e := el.Value.(*entry)
		s.ll.Remove(el)
		delete(s.items, key)
		s.bytes -= e.size
		gBytes.Add(-e.size)
		gEntries.Add(-1)
	}
	s.stats.Corrupt++
	s.mu.Unlock()
	mCorrupt.Inc()
}

// Put stores payload under key: temp file, fsync, rename — readers see
// either the old object or the complete new one, never a torn write.
// A payload larger than the whole budget is not stored (matching the
// memory tier); GC then evicts LRU objects until the budget holds.
// Put errors leave the store consistent and are counted, so a flaky
// disk degrades the cache to a smaller one instead of failing jobs.
func (s *Store) Put(ctx context.Context, key cache.Key, payload []byte) error {
	_ = ctx
	if !validKey(key) {
		return s.putErr(fmt.Errorf("diskstore: malformed key %q", key))
	}
	size := int64(headerSize + len(payload))
	if s.max > 0 && size > s.max {
		return nil // over-budget values are simply not persisted
	}
	if err := s.writeObject(key, payload); err != nil {
		return s.putErr(err)
	}

	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		e := el.Value.(*entry)
		s.bytes += size - e.size
		gBytes.Add(size - e.size)
		e.size = size
		s.touchLocked(el)
	} else {
		el := s.ll.PushFront(&entry{key: key, size: size})
		s.items[key] = el
		s.bytes += size
		gBytes.Add(size)
		gEntries.Add(1)
		s.touchLocked(el)
	}
	for s.max > 0 && s.bytes > s.max {
		s.evictOldestLocked()
	}
	s.mu.Unlock()
	return nil
}

// writeObject performs the atomic temp-write-fsync-rename protocol.
func (s *Store) writeObject(key cache.Key, payload []byte) error {
	root := filepath.Join(s.dir, objectsDir)
	tmp, err := os.CreateTemp(root, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	header := make([]byte, headerSize)
	copy(header, fileMagic)
	sum := sha256.Sum256(payload)
	copy(header[len(fileMagic):], sum[:])
	binary.BigEndian.PutUint64(header[len(fileMagic)+sha256.Size:], uint64(len(payload)))
	if _, err := tmp.Write(header); err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	if _, err := tmp.Write(payload); err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	if err := tmp.Chmod(0o644); err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		tmp = nil
		return fmt.Errorf("diskstore: %w", err)
	}
	tmp = nil
	if err := os.Rename(name, s.objectPath(key)); err != nil {
		os.Remove(name)
		return fmt.Errorf("diskstore: %w", err)
	}
	syncDir(root)
	return nil
}

// syncDir fsyncs a directory so a preceding rename survives a crash.
// Best-effort: callers treat directory durability as a hint, and some
// filesystems reject fsync on directories.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// putErr counts a failed Put and passes the error through.
func (s *Store) putErr(err error) error {
	s.mu.Lock()
	s.stats.PutErrors++
	s.mu.Unlock()
	mPutErrs.Inc()
	return err
}

// evictOldestLocked garbage-collects the least-recently-used object.
func (s *Store) evictOldestLocked() {
	el := s.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*entry)
	s.ll.Remove(el)
	delete(s.items, e.key)
	s.bytes -= e.size
	os.Remove(s.objectPath(e.key))
	s.stats.GCEvictions++
	mGC.Inc()
	gBytes.Add(-e.size)
	gEntries.Add(-1)
}

// Len returns the number of resident objects.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

// Bytes returns the resident on-disk byte total (headers included).
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Stats returns a snapshot of this instance's counters and residency.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = int64(len(s.items))
	st.Bytes = s.bytes
	st.MaxBytes = s.max
	return st
}

// Close compacts and closes the atime journal. The objects stay on
// disk — that is the point — and a later Open resumes from them.
// Close is idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.compactJournalLocked()
	if s.journal != nil {
		if cerr := s.journal.Close(); err == nil {
			err = cerr
		}
		s.journal = nil
	}
	return err
}
