package diskstore

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"obfuscade/internal/cache"
)

// key derives a valid content address from a short test name.
func key(name string) cache.Key {
	return cache.KeyOf([]byte(name))
}

func open(t *testing.T, dir string, maxBytes int64) *Store {
	t.Helper()
	s, err := Open(dir, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	ctx := context.Background()
	payload := []byte("protected STL bytes")
	if err := s.Put(ctx, key("a"), payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(ctx, key("a"))
	if !ok || string(got) != string(payload) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if _, ok := s.Get(ctx, key("missing")); ok {
		t.Fatal("absent key reported a hit")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Bytes != int64(headerSize+len(payload)) {
		t.Fatalf("bytes = %d, want header %d + payload %d", st.Bytes, headerSize, len(payload))
	}
}

// The store survives a restart: a fresh Open over the same directory
// serves the same bytes — the whole point of the disk tier.
func TestReopenServesSameBytes(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	payload := []byte(strings.Repeat("stl", 1000))

	s1 := open(t, dir, 0)
	if err := s1.Put(ctx, key("warm"), payload); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir, 0)
	got, ok := s2.Get(ctx, key("warm"))
	if !ok || string(got) != string(payload) {
		t.Fatalf("reopened store: Get = %d bytes, %v", len(got), ok)
	}
	if s2.Len() != 1 {
		t.Fatalf("reopened store indexed %d objects, want 1", s2.Len())
	}
}

// A corrupted object must never be served: the self-check fails, the
// file is deleted, and the lookup degrades to a miss.
func TestCorruptObjectDroppedNotServed(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	s := open(t, dir, 0)
	if err := s.Put(ctx, key("c"), []byte("pristine payload")); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte on disk behind the store's back.
	path := s.objectPath(key("c"))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Get(ctx, key("c")); ok {
		t.Fatal("corrupt object served")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt object not deleted: %v", err)
	}
	st := s.Stats()
	if st.Corrupt != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Truncation inside the header is caught too.
	if err := s.Put(ctx, key("t"), []byte("second payload")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.objectPath(key("t")), []byte("OBF"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(ctx, key("t")); ok {
		t.Fatal("truncated object served")
	}
}

// Open sweeps temp files left by a crashed writer and ignores foreign
// file names, so a dirty directory heals instead of erroring.
func TestOpenSweepsTempAndForeignFiles(t *testing.T) {
	dir := t.TempDir()
	objects := filepath.Join(dir, objectsDir)
	if err := os.MkdirAll(objects, 0o755); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(objects, tmpPrefix+"halfwrite")
	foreign := filepath.Join(objects, "not-a-key.stl")
	for _, p := range []string{tmp, foreign} {
		if err := os.WriteFile(p, []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s := open(t, dir, 0)
	if s.Len() != 0 {
		t.Fatalf("indexed %d objects from junk", s.Len())
	}
	for _, p := range []string{tmp, foreign} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("%s survived Open", p)
		}
	}
}

func TestMalformedKeyRejected(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	ctx := context.Background()
	for _, bad := range []cache.Key{"", "short", cache.Key("../../etc/passwd" + strings.Repeat("a", 48)), cache.Key(strings.Repeat("Z", 64))} {
		if err := s.Put(ctx, bad, []byte("x")); err == nil {
			t.Fatalf("key %q accepted", bad)
		}
		if _, ok := s.Get(ctx, bad); ok {
			t.Fatalf("key %q hit", bad)
		}
	}
	if st := s.Stats(); st.PutErrors == 0 {
		t.Fatalf("put errors uncounted: %+v", st)
	}
}

// GC evicts by recency, and recency survives a restart through the
// atime journal: touching an old object saves it from eviction even
// after the process bounces.
func TestGCEvictsLRUAndJournalPersistsRecency(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	payload := []byte(strings.Repeat("x", 100))
	size := int64(headerSize + len(payload))

	s1 := open(t, dir, 3*size)
	for _, n := range []string{"a", "b", "c"} {
		if err := s1.Put(ctx, key(n), payload); err != nil {
			t.Fatal(err)
		}
	}
	// Touch "a" so "b" is now the LRU object, then restart.
	if _, ok := s1.Get(ctx, key("a")); !ok {
		t.Fatal("a missing")
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir, 3*size)
	if err := s2.Put(ctx, key("d"), payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(ctx, key("b")); ok {
		t.Fatal("LRU object b survived GC after restart")
	}
	for _, n := range []string{"a", "c", "d"} {
		if _, ok := s2.Get(ctx, key(n)); !ok {
			t.Fatalf("object %s evicted out of LRU order", n)
		}
	}
	if st := s2.Stats(); st.GCEvictions != 1 {
		t.Fatalf("gc evictions = %d, want 1", st.GCEvictions)
	}
}

// Shrinking the budget between runs brings residency back under it at
// Open, oldest first.
func TestOpenGCsWhenBudgetShrank(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	payload := []byte(strings.Repeat("y", 50))
	size := int64(headerSize + len(payload))

	s1 := open(t, dir, 0)
	for i := 0; i < 4; i++ {
		if err := s1.Put(ctx, key(fmt.Sprintf("k%d", i)), payload); err != nil {
			t.Fatal(err)
		}
	}
	s1.Close()

	s2 := open(t, dir, 2*size)
	if n := s2.Len(); n != 2 {
		t.Fatalf("after shrink: %d objects resident, want 2", n)
	}
	if s2.Bytes() > 2*size {
		t.Fatalf("resident bytes %d exceed shrunk budget %d", s2.Bytes(), 2*size)
	}
}

func TestOversizePayloadNotStored(t *testing.T) {
	s := open(t, t.TempDir(), int64(headerSize)+10)
	ctx := context.Background()
	if err := s.Put(ctx, key("big"), []byte(strings.Repeat("b", 11))); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatal("payload larger than the whole budget was stored")
	}
	if err := s.Put(ctx, key("fits"), []byte(strings.Repeat("f", 10))); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatal("budget-sized payload rejected")
	}
}

// No temp files survive a completed Put: the atomic protocol leaves
// only renamed objects behind.
func TestNoTempFilesAfterPut(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		if err := s.Put(ctx, key(fmt.Sprintf("n%d", i)), []byte("data")); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(filepath.Join(dir, objectsDir))
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range ents {
		if strings.HasPrefix(de.Name(), tmpPrefix) {
			t.Fatalf("temp file %s left behind", de.Name())
		}
	}
}

// The journal compacts once appends outgrow the slack bound instead of
// growing without limit under a hot read loop.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	ctx := context.Background()
	if err := s.Put(ctx, key("hot"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < journalSlack+100; i++ {
		if _, ok := s.Get(ctx, key("hot")); !ok {
			t.Fatal("hot key missed")
		}
	}
	info, err := os.Stat(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	// Each journal line is ~85 bytes; without compaction the loop above
	// would leave ~95KB behind. A compacted journal carries only the
	// appends since the last compaction (< journalSlack lines).
	if info.Size() > int64(journalSlack)*45 {
		t.Fatalf("journal grew to %d bytes; compaction never ran", info.Size())
	}
}

// Concurrency hammer (run under -race): mixed puts, gets and GC churn
// on a tight budget must stay consistent.
// A crash immediately after journal compaction can tear the rename:
// with the directory entry never fsynced, the old journal is gone and
// the new one never became durable. The store must shrug — every object
// still serves, and recency degrades to mtime order instead of failing
// Open or losing data.
func TestTornJournalAfterCompactionRecovers(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	s1 := open(t, dir, 0)
	for _, k := range []string{"a", "b", "c"} {
		if err := s1.Put(ctx, key(k), []byte("payload-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	s1.mu.Lock()
	err := s1.compactJournalLocked()
	s1.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the torn state: the compacted journal vanished.
	if err := os.Remove(filepath.Join(dir, journalName)); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir, 0)
	if s2.Len() != 3 {
		t.Fatalf("reopened store indexed %d objects, want 3", s2.Len())
	}
	for _, k := range []string{"a", "b", "c"} {
		got, ok := s2.Get(ctx, key(k))
		if !ok || string(got) != "payload-"+k {
			t.Fatalf("key %s: Get = %q, %v", k, got, ok)
		}
	}
	// The journal reopened for appending: recency written now must
	// survive the next restart even though the old journal was lost.
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, journalName)); err != nil {
		t.Fatalf("journal not recreated after torn state: %v", err)
	}
}

// A half-written journal line (crash mid-append) is skipped without
// failing Open, and complete lines still replay.
func TestTornJournalLineIgnored(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	s1 := open(t, dir, 0)
	for _, k := range []string{"a", "b"} {
		if err := s1.Put(ctx, key(k), []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	jp := filepath.Join(dir, journalName)
	f, err := os.OpenFile(jp, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("1234 deadbeef"); err != nil { // torn: no newline, bogus key
		t.Fatal(err)
	}
	f.Close()

	s2 := open(t, dir, 0)
	if s2.Len() != 2 {
		t.Fatalf("reopened store indexed %d objects, want 2", s2.Len())
	}
}

func TestConcurrencyHammer(t *testing.T) {
	const (
		goroutines = 8
		iterations = 60
		uniqueKeys = 12
	)
	payload := []byte(strings.Repeat("p", 64))
	size := int64(headerSize + len(payload))
	s := open(t, t.TempDir(), size*uniqueKeys/2)
	ctx := context.Background()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				k := key(fmt.Sprintf("key-%d", (g*5+i)%uniqueKeys))
				if i%3 == 0 {
					if err := s.Put(ctx, k, payload); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				} else if data, ok := s.Get(ctx, k); ok && string(data) != string(payload) {
					t.Errorf("hit returned wrong bytes")
					return
				}
			}
		}(g)
	}
	wg.Wait()

	st := s.Stats()
	if st.Corrupt != 0 || st.PutErrors != 0 {
		t.Fatalf("hammer corrupted the store: %+v", st)
	}
	if st.GCEvictions == 0 {
		t.Fatal("hammer never evicted; budget too large to bite")
	}
	if s.Bytes() > st.MaxBytes {
		t.Fatalf("resident bytes %d exceed budget %d", s.Bytes(), st.MaxBytes)
	}
}

func BenchmarkPutGet(b *testing.B) {
	s, err := Open(b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	payload := []byte(strings.Repeat("s", 32<<10)) // ~a coarse STL
	k := key("bench")
	if err := s.Put(ctx, k, payload); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Get(ctx, k); !ok {
			b.Fatal("miss")
		}
	}
}
