// Package cache is the content-addressed result cache behind the
// obfuscation job service (internal/serve): manufactured artifacts are
// keyed by the SHA-256 of the canonical request that produced them, an
// LRU byte budget bounds residency, and singleflight coalescing makes N
// concurrent identical misses trigger exactly one pipeline run.
//
// A cache may be tiered over a persistent backing Store (see
// internal/cache/diskstore): a memory miss falls through to the store
// before it falls through to the computation, and computed values are
// written through, so results survive process restarts. Because the
// key hashes the pipeline version, a deploy that changes output bytes
// invalidates naturally — old objects just stop being addressed.
//
// Contracts the serving layer relies on:
//
//   - Cached values are immutable. A hit returns the same value the miss
//     stored, so a repeated request is byte-for-byte identical to the
//     first — the determinism of the pipeline extends across the cache.
//   - Errors are never cached: a failed computation propagates to every
//     coalesced waiter whose own run is also doomed, and the next
//     request retries from scratch.
//   - A waiter whose own context ends returns early with that context's
//     error; the leader keeps computing and still populates the cache.
//   - A waiter whose leader fails because the *leader's* context was
//     cancelled is promoted: it re-runs the computation itself instead
//     of inheriting a cancellation that was never its own.
//
// Hit/miss/coalesce/eviction counts feed package obs (cache.* metrics)
// and each lookup emits a trace span tagged with its outcome.
package cache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"sync"

	"obfuscade/internal/obs"
	"obfuscade/internal/trace"
)

// Cache metrics. The process-wide registry aggregates across instances;
// per-instance numbers come from Cache.Stats.
var (
	mHits       = obs.Default().Counter("cache.hits")
	mMisses     = obs.Default().Counter("cache.misses")
	mCoalesced  = obs.Default().Counter("cache.coalesced")
	mEvictions  = obs.Default().Counter("cache.evictions")
	mPromoted   = obs.Default().Counter("cache.promoted")
	mStoreFails = obs.Default().Counter("cache.store.errors")
	gBytes      = obs.Default().Gauge("cache.bytes")
	gEntries    = obs.Default().Gauge("cache.entries")
)

// Key is the content address of a cached result: the hex SHA-256 of the
// canonical request bytes.
type Key string

// KeyOf hashes canonical request bytes into a Key.
func KeyOf(canonical []byte) Key {
	sum := sha256.Sum256(canonical)
	return Key(hex.EncodeToString(sum[:]))
}

// Value is a cacheable result. SizeBytes is the value's residency cost
// against the byte budget and must be stable for the value's lifetime;
// cached values are immutable by contract.
type Value interface{ SizeBytes() int64 }

// Store is a persistent second tier under the in-memory LRU. Get
// reports a miss for absent or failed-integrity objects; Put is
// best-effort write-through — its error is counted, never propagated,
// so a flaky disk degrades the cache rather than failing jobs.
// Implementations must be safe for concurrent use.
type Store interface {
	Get(ctx context.Context, key Key) (data []byte, ok bool)
	Put(ctx context.Context, key Key, data []byte) error
}

// Codec translates cache values to and from the byte payloads a Store
// persists. Decode must reject payloads it cannot faithfully restore
// (a decode failure falls back to recomputation).
type Codec interface {
	Encode(v Value) ([]byte, error)
	Decode(data []byte) (Value, error)
}

// Outcome classifies how a GetOrCompute call was served.
type Outcome int

const (
	// Hit means the value was already resident in memory.
	Hit Outcome = iota
	// Miss means this caller ran the computation (the singleflight
	// leader).
	Miss
	// Coalesced means an identical in-flight computation was joined.
	Coalesced
	// DiskHit means the value was restored from the backing store
	// without running the computation.
	DiskHit
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case DiskHit:
		return "disk_hit"
	default:
		return "coalesced"
	}
}

// Stats is a point-in-time census of one cache instance.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	DiskHits  int64 `json:"disk_hits"`
	Promoted  int64 `json:"promoted"`
	Evictions int64 `json:"evictions"`
	Entries   int64 `json:"entries"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes"`
}

// call is one in-flight singleflight computation. val and err are
// written before done closes; waiters read them only after <-done.
// ctx is the leader's context: after done, a waiter inspects it to
// distinguish "the computation failed" from "the leader was cancelled
// out from under me" (the latter promotes the waiter to re-run).
type call struct {
	done chan struct{}
	ctx  context.Context
	val  Value
	err  error
}

// entry is one resident value; list elements hold *entry.
type entry struct {
	key  Key
	val  Value
	size int64
}

// Cache is a content-addressed LRU cache with singleflight coalescing,
// optionally tiered over a persistent backing store. All methods are
// safe for concurrent use.
type Cache struct {
	store Store // nil for a memory-only cache
	codec Codec

	mu     sync.Mutex
	max    int64 // byte budget; <= 0 means unbounded
	bytes  int64
	ll     *list.List // front = most recently used
	items  map[Key]*list.Element
	flight map[Key]*call
	stats  Stats
}

// New returns a memory-only cache with the given byte budget.
// maxBytes <= 0 means unbounded (no eviction) — useful for tests, not
// production serving.
func New(maxBytes int64) *Cache {
	return &Cache{
		max:    maxBytes,
		ll:     list.New(),
		items:  map[Key]*list.Element{},
		flight: map[Key]*call{},
	}
}

// NewTiered returns a cache layered over a persistent store: a memory
// miss falls through to the store before it falls through to the
// computation, and computed values are written through. codec
// round-trips values through the store's byte payloads; both must be
// non-nil.
func NewTiered(maxBytes int64, store Store, codec Codec) *Cache {
	if store == nil || codec == nil {
		panic("cache: NewTiered requires a store and a codec")
	}
	c := New(maxBytes)
	c.store, c.codec = store, codec
	return c
}

// Get returns the resident value for key, refreshing its recency.
func (c *Cache) Get(key Key) (Value, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Add inserts a computed value under key, evicting least-recently-used
// entries until the byte budget holds again. A value larger than the
// whole budget is not cached at all.
func (c *Cache) Add(key Key, v Value) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addLocked(key, v)
}

func (c *Cache) addLocked(key Key, v Value) {
	size := v.SizeBytes()
	if c.max > 0 && size > c.max {
		return
	}
	if el, ok := c.items[key]; ok {
		old := el.Value.(*entry)
		c.bytes += size - old.size
		gBytes.Add(size - old.size)
		old.val, old.size = v, size
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&entry{key: key, val: v, size: size})
		c.bytes += size
		gBytes.Add(size)
		gEntries.Add(1)
	}
	for c.max > 0 && c.bytes > c.max {
		c.evictOldestLocked()
	}
}

func (c *Cache) evictOldestLocked() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= e.size
	c.stats.Evictions++
	mEvictions.Inc()
	gBytes.Add(-e.size)
	gEntries.Add(-1)
}

// GetOrCompute returns the value for key, computing it with fn on a
// miss. Concurrent callers with the same key coalesce: exactly one runs
// fn (the leader, under the leader's ctx), the rest wait for its result.
// On a tiered cache the leader consults the backing store before
// running fn and writes computed values through to it. fn must return a
// non-nil Value on success. Errors are not cached; a failed computation
// propagates its error to every coalesced waiter — unless the failure
// was the leader's own context being cancelled, in which case a waiter
// whose context is still live is promoted and re-runs the computation
// itself. A waiter whose own ctx ends returns early with ctx.Err()
// while the leader keeps computing.
func (c *Cache) GetOrCompute(ctx context.Context, key Key, fn func(ctx context.Context) (Value, error)) (v Value, out Outcome, err error) {
	sctx, sp := trace.StartSpan(ctx, "stage", "cache.lookup")
	defer func() {
		sp.SetArg("outcome", out.String())
		sp.End()
	}()

	for {
		c.mu.Lock()
		if el, ok := c.items[key]; ok {
			c.ll.MoveToFront(el)
			c.stats.Hits++
			mHits.Inc()
			v := el.Value.(*entry).val
			c.mu.Unlock()
			return v, Hit, nil
		}
		if cl, ok := c.flight[key]; ok {
			c.stats.Coalesced++
			mCoalesced.Inc()
			c.mu.Unlock()
			select {
			case <-cl.done:
				if cl.err != nil && cl.ctx.Err() != nil && ctx.Err() == nil {
					// The leader failed because *its* context was
					// cancelled, not because the computation is doomed.
					// This waiter is still live — promote it: loop back
					// and re-run rather than inheriting the leader's
					// cancellation.
					c.mu.Lock()
					c.stats.Promoted++
					c.mu.Unlock()
					mPromoted.Inc()
					continue
				}
				return cl.val, Coalesced, cl.err
			case <-ctx.Done():
				return nil, Coalesced, ctx.Err()
			}
		}
		cl := &call{done: make(chan struct{}), ctx: sctx}
		c.flight[key] = cl
		c.mu.Unlock()

		out = c.lead(sctx, key, cl, fn)
		return cl.val, out, cl.err
	}
}

// lead runs the leader's half of GetOrCompute: consult the backing
// store, fall through to fn, write through, publish to waiters.
func (c *Cache) lead(ctx context.Context, key Key, cl *call, fn func(ctx context.Context) (Value, error)) Outcome {
	out := Miss
	if c.store != nil {
		if data, ok := c.store.Get(ctx, key); ok {
			if v, err := c.codec.Decode(data); err == nil {
				cl.val, cl.err = v, nil
				out = DiskHit
			} else {
				// Undecodable payload (e.g. written by a build with a
				// different value layout): recompute and overwrite.
				mStoreFails.Inc()
			}
		}
	}
	if out != DiskHit {
		cl.val, cl.err = fn(ctx)
		if cl.err == nil && cl.val != nil && c.store != nil {
			if data, err := c.codec.Encode(cl.val); err != nil {
				mStoreFails.Inc()
			} else if err := c.store.Put(ctx, key, data); err != nil {
				mStoreFails.Inc()
			}
		}
	}

	c.mu.Lock()
	delete(c.flight, key)
	if cl.err == nil && cl.val != nil {
		c.addLocked(key, cl.val)
	}
	if out == DiskHit {
		c.stats.DiskHits++
	} else {
		c.stats.Misses++
		mMisses.Inc()
	}
	c.mu.Unlock()
	close(cl.done)
	return out
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Bytes returns the resident byte total.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Stats returns a snapshot of this instance's counters and residency.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = int64(len(c.items))
	s.Bytes = c.bytes
	s.MaxBytes = c.max
	return s
}
