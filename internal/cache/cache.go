// Package cache is the content-addressed result cache behind the
// obfuscation job service (internal/serve): manufactured artifacts are
// keyed by the SHA-256 of the canonical request that produced them, an
// LRU byte budget bounds residency, and singleflight coalescing makes N
// concurrent identical misses trigger exactly one pipeline run.
//
// Contracts the serving layer relies on:
//
//   - Cached values are immutable. A hit returns the same value the miss
//     stored, so a repeated request is byte-for-byte identical to the
//     first — the determinism of the pipeline extends across the cache.
//   - Errors are never cached: a failed computation propagates to every
//     coalesced waiter and the next request retries from scratch.
//   - A waiter whose own context ends returns early with that context's
//     error; the leader keeps computing and still populates the cache.
//
// Hit/miss/coalesce/eviction counts feed package obs (cache.* metrics)
// and each lookup emits a trace span tagged with its outcome.
package cache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"sync"

	"obfuscade/internal/obs"
	"obfuscade/internal/trace"
)

// Cache metrics. The process-wide registry aggregates across instances;
// per-instance numbers come from Cache.Stats.
var (
	mHits      = obs.Default().Counter("cache.hits")
	mMisses    = obs.Default().Counter("cache.misses")
	mCoalesced = obs.Default().Counter("cache.coalesced")
	mEvictions = obs.Default().Counter("cache.evictions")
	gBytes     = obs.Default().Gauge("cache.bytes")
	gEntries   = obs.Default().Gauge("cache.entries")
)

// Key is the content address of a cached result: the hex SHA-256 of the
// canonical request bytes.
type Key string

// KeyOf hashes canonical request bytes into a Key.
func KeyOf(canonical []byte) Key {
	sum := sha256.Sum256(canonical)
	return Key(hex.EncodeToString(sum[:]))
}

// Value is a cacheable result. SizeBytes is the value's residency cost
// against the byte budget and must be stable for the value's lifetime;
// cached values are immutable by contract.
type Value interface{ SizeBytes() int64 }

// Outcome classifies how a GetOrCompute call was served.
type Outcome int

const (
	// Hit means the value was already resident.
	Hit Outcome = iota
	// Miss means this caller ran the computation (the singleflight
	// leader).
	Miss
	// Coalesced means an identical in-flight computation was joined.
	Coalesced
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	default:
		return "coalesced"
	}
}

// Stats is a point-in-time census of one cache instance.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Evictions int64 `json:"evictions"`
	Entries   int64 `json:"entries"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes"`
}

// call is one in-flight singleflight computation. val and err are
// written before done closes; waiters read them only after <-done.
type call struct {
	done chan struct{}
	val  Value
	err  error
}

// entry is one resident value; list elements hold *entry.
type entry struct {
	key  Key
	val  Value
	size int64
}

// Cache is a content-addressed LRU cache with singleflight coalescing.
// All methods are safe for concurrent use.
type Cache struct {
	mu     sync.Mutex
	max    int64 // byte budget; <= 0 means unbounded
	bytes  int64
	ll     *list.List // front = most recently used
	items  map[Key]*list.Element
	flight map[Key]*call
	stats  Stats
}

// New returns a cache with the given byte budget. maxBytes <= 0 means
// unbounded (no eviction) — useful for tests, not production serving.
func New(maxBytes int64) *Cache {
	return &Cache{
		max:    maxBytes,
		ll:     list.New(),
		items:  map[Key]*list.Element{},
		flight: map[Key]*call{},
	}
}

// Get returns the resident value for key, refreshing its recency.
func (c *Cache) Get(key Key) (Value, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Add inserts a computed value under key, evicting least-recently-used
// entries until the byte budget holds again. A value larger than the
// whole budget is not cached at all.
func (c *Cache) Add(key Key, v Value) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addLocked(key, v)
}

func (c *Cache) addLocked(key Key, v Value) {
	size := v.SizeBytes()
	if c.max > 0 && size > c.max {
		return
	}
	if el, ok := c.items[key]; ok {
		old := el.Value.(*entry)
		c.bytes += size - old.size
		gBytes.Add(size - old.size)
		old.val, old.size = v, size
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&entry{key: key, val: v, size: size})
		c.bytes += size
		gBytes.Add(size)
		gEntries.Add(1)
	}
	for c.max > 0 && c.bytes > c.max {
		c.evictOldestLocked()
	}
}

func (c *Cache) evictOldestLocked() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= e.size
	c.stats.Evictions++
	mEvictions.Inc()
	gBytes.Add(-e.size)
	gEntries.Add(-1)
}

// GetOrCompute returns the value for key, computing it with fn on a
// miss. Concurrent callers with the same key coalesce: exactly one runs
// fn (the leader, under the leader's ctx), the rest wait for its result.
// fn must return a non-nil Value on success. Errors are not cached; a
// failed computation propagates its error to every coalesced waiter. A
// waiter whose own ctx ends returns early with ctx.Err() while the
// leader keeps computing.
func (c *Cache) GetOrCompute(ctx context.Context, key Key, fn func(ctx context.Context) (Value, error)) (v Value, out Outcome, err error) {
	sctx, sp := trace.StartSpan(ctx, "stage", "cache.lookup")
	defer func() {
		sp.SetArg("outcome", out.String())
		sp.End()
	}()

	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		mHits.Inc()
		v := el.Value.(*entry).val
		c.mu.Unlock()
		return v, Hit, nil
	}
	if cl, ok := c.flight[key]; ok {
		c.stats.Coalesced++
		mCoalesced.Inc()
		c.mu.Unlock()
		select {
		case <-cl.done:
			return cl.val, Coalesced, cl.err
		case <-ctx.Done():
			return nil, Coalesced, ctx.Err()
		}
	}
	cl := &call{done: make(chan struct{})}
	c.flight[key] = cl
	c.stats.Misses++
	mMisses.Inc()
	c.mu.Unlock()

	cl.val, cl.err = fn(sctx)
	c.mu.Lock()
	delete(c.flight, key)
	if cl.err == nil && cl.val != nil {
		c.addLocked(key, cl.val)
	}
	c.mu.Unlock()
	close(cl.done)
	return cl.val, Miss, cl.err
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Bytes returns the resident byte total.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Stats returns a snapshot of this instance's counters and residency.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = int64(len(c.items))
	s.Bytes = c.bytes
	s.MaxBytes = c.max
	return s
}
