package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// blob is a test Value of a declared size.
type blob struct {
	id   string
	size int64
}

func (b *blob) SizeBytes() int64 { return b.size }

func TestKeyOfStable(t *testing.T) {
	a := KeyOf([]byte("canonical-request"))
	b := KeyOf([]byte("canonical-request"))
	if a != b {
		t.Fatalf("same bytes hash differently: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("key length = %d, want 64 hex chars", len(a))
	}
	if KeyOf([]byte("other")) == a {
		t.Fatal("distinct bytes collide")
	}
}

func TestGetAddRoundTrip(t *testing.T) {
	c := New(0)
	if _, ok := c.Get("missing"); ok {
		t.Fatal("empty cache reported a hit")
	}
	v := &blob{id: "a", size: 10}
	c.Add("k", v)
	got, ok := c.Get("k")
	if !ok || got.(*blob).id != "a" {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	if c.Len() != 1 || c.Bytes() != 10 {
		t.Fatalf("Len=%d Bytes=%d", c.Len(), c.Bytes())
	}
	// Replacing a key adjusts the byte total in place.
	c.Add("k", &blob{id: "a2", size: 25})
	if c.Len() != 1 || c.Bytes() != 25 {
		t.Fatalf("after replace: Len=%d Bytes=%d", c.Len(), c.Bytes())
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New(30)
	c.Add("a", &blob{id: "a", size: 10})
	c.Add("b", &blob{id: "b", size: 10})
	c.Add("c", &blob{id: "c", size: 10})
	// Touch "a" so "b" becomes the least recently used.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	c.Add("d", &blob{id: "d", size: 10})
	if _, ok := c.Get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	for _, k := range []Key{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("entry %s evicted out of LRU order", k)
		}
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
}

func TestOversizeValueNotCached(t *testing.T) {
	c := New(100)
	c.Add("big", &blob{id: "big", size: 101})
	if c.Len() != 0 {
		t.Fatal("value larger than the whole budget was cached")
	}
	c.Add("fits", &blob{id: "ok", size: 100})
	if c.Len() != 1 {
		t.Fatal("budget-sized value rejected")
	}
}

func TestGetOrComputeHitMiss(t *testing.T) {
	c := New(0)
	calls := 0
	fn := func(context.Context) (Value, error) {
		calls++
		return &blob{id: "v", size: 1}, nil
	}
	v, out, err := c.GetOrCompute(context.Background(), "k", fn)
	if err != nil || out != Miss || v.(*blob).id != "v" {
		t.Fatalf("first call: v=%v out=%v err=%v", v, out, err)
	}
	v, out, err = c.GetOrCompute(context.Background(), "k", fn)
	if err != nil || out != Hit || v.(*blob).id != "v" {
		t.Fatalf("second call: v=%v out=%v err=%v", v, out, err)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Coalesced != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New(0)
	boom := errors.New("boom")
	calls := 0
	_, out, err := c.GetOrCompute(context.Background(), "k", func(context.Context) (Value, error) {
		calls++
		return nil, boom
	})
	if !errors.Is(err, boom) || out != Miss {
		t.Fatalf("out=%v err=%v", out, err)
	}
	// The failure must not poison the key: the next call recomputes.
	v, out, err := c.GetOrCompute(context.Background(), "k", func(context.Context) (Value, error) {
		calls++
		return &blob{id: "ok", size: 1}, nil
	})
	if err != nil || out != Miss || v.(*blob).id != "ok" {
		t.Fatalf("retry: v=%v out=%v err=%v", v, out, err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
}

// Singleflight: N concurrent identical requests run the computation
// exactly once; everyone gets the same value.
func TestSingleflightExactlyOnce(t *testing.T) {
	c := New(0)
	const goroutines = 32
	var computations atomic.Int64
	gate := make(chan struct{})    // holds the leader inside fn
	arrived := make(chan struct{}) // leader signals it is computing
	fn := func(context.Context) (Value, error) {
		computations.Add(1)
		close(arrived)
		<-gate
		return &blob{id: "once", size: 1}, nil
	}

	var wg sync.WaitGroup
	outcomes := make([]Outcome, goroutines)
	values := make([]Value, goroutines)
	errs := make([]error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			values[i], outcomes[i], errs[i] = c.GetOrCompute(context.Background(), "k", fn)
		}(i)
	}
	<-arrived
	// Give the remaining goroutines time to enqueue as waiters, then
	// release the leader.
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()

	if n := computations.Load(); n != 1 {
		t.Fatalf("computation ran %d times, want exactly 1", n)
	}
	misses := 0
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if values[i].(*blob).id != "once" {
			t.Fatalf("goroutine %d got %v", i, values[i])
		}
		if outcomes[i] == Miss {
			misses++
		}
	}
	if misses != 1 {
		t.Fatalf("%d goroutines were leaders, want 1", misses)
	}
}

// A waiter whose context dies leaves the leader running; the leader
// still populates the cache.
func TestWaiterContextCancellation(t *testing.T) {
	c := New(0)
	gate := make(chan struct{})
	arrived := make(chan struct{})
	go c.GetOrCompute(context.Background(), "k", func(context.Context) (Value, error) {
		close(arrived)
		<-gate
		return &blob{id: "v", size: 1}, nil
	})
	<-arrived
	ctx, cancel := context.WithCancel(context.Background())
	waiterErr := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrCompute(ctx, "k", func(context.Context) (Value, error) {
			t.Error("waiter must never compute")
			return nil, nil
		})
		waiterErr <- err
	}()
	// Let the waiter register, then cancel only its context.
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-waiterErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want context.Canceled", err)
	}
	close(gate)
	// The leader completes and caches despite the waiter's departure.
	deadline := time.After(5 * time.Second)
	for {
		if _, ok := c.Get("k"); ok {
			return
		}
		select {
		case <-deadline:
			t.Fatal("leader never populated the cache")
		case <-time.After(time.Millisecond):
		}
	}
}

// Concurrency hammer (run under -race): many goroutines mixing hits,
// misses and evictions on a tight byte budget, with singleflight
// exactness asserted per unique key.
func TestConcurrencyHammer(t *testing.T) {
	const (
		goroutines = 16
		iterations = 200
		uniqueKeys = 24
	)
	// Budget fits only half the key space, so evictions churn constantly.
	c := New(uniqueKeys / 2 * 10)
	var perKey [uniqueKeys]atomic.Int64 // computations per key between evictions

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				k := (g*7 + i) % uniqueKeys
				key := Key(fmt.Sprintf("key-%02d", k))
				v, _, err := c.GetOrCompute(context.Background(), key, func(context.Context) (Value, error) {
					perKey[k].Add(1)
					return &blob{id: key.short(), size: 10}, nil
				})
				if err != nil {
					t.Errorf("key %s: %v", key, err)
					return
				}
				if v.(*blob).id != key.short() {
					t.Errorf("key %s returned value %q", key, v.(*blob).id)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	s := c.Stats()
	total := s.Hits + s.Misses + s.Coalesced
	if total != goroutines*iterations {
		t.Fatalf("outcomes %d != requests %d (stats %+v)", total, goroutines*iterations, s)
	}
	if s.Evictions == 0 {
		t.Fatal("hammer never evicted; budget too large for the test to bite")
	}
	if s.Hits == 0 || s.Misses == 0 {
		t.Fatalf("hammer must mix hits and misses: %+v", s)
	}
	if c.Bytes() > c.Stats().MaxBytes {
		t.Fatalf("resident bytes %d exceed budget %d", c.Bytes(), s.MaxBytes)
	}
	// Every computation must correspond to a miss: singleflight never let
	// two concurrent identical requests both compute.
	var computed int64
	for k := range perKey {
		computed += perKey[k].Load()
	}
	if computed != s.Misses {
		t.Fatalf("computations %d != misses %d: coalescing leaked", computed, s.Misses)
	}
}

// short gives the hammer a compact stable payload id per key.
func (k Key) short() string {
	if len(k) > 8 {
		return string(k[:8])
	}
	return string(k)
}

// fakeStore is an in-memory cache.Store for tier tests.
type fakeStore struct {
	mu   sync.Mutex
	m    map[Key][]byte
	gets int
	puts int
}

func newFakeStore() *fakeStore { return &fakeStore{m: map[Key][]byte{}} }

func (f *fakeStore) Get(_ context.Context, key Key) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.gets++
	data, ok := f.m[key]
	return data, ok
}

func (f *fakeStore) Put(_ context.Context, key Key, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.puts++
	f.m[key] = append([]byte(nil), data...)
	return nil
}

// blobCodec round-trips blob values as "<id>" payloads.
type blobCodec struct{ failDecode bool }

func (c blobCodec) Encode(v Value) ([]byte, error) { return []byte(v.(*blob).id), nil }
func (c blobCodec) Decode(data []byte) (Value, error) {
	if c.failDecode {
		return nil, errors.New("undecodable")
	}
	return &blob{id: string(data), size: int64(len(data))}, nil
}

// A computed value is written through to the store, and a fresh cache
// instance over the same store restores it without recomputing — the
// restart-warm contract.
func TestTieredWriteThroughAndDiskHit(t *testing.T) {
	store := newFakeStore()
	c1 := NewTiered(0, store, blobCodec{})
	v, out, err := c1.GetOrCompute(context.Background(), "k", func(context.Context) (Value, error) {
		return &blob{id: "computed", size: 8}, nil
	})
	if err != nil || out != Miss || v.(*blob).id != "computed" {
		t.Fatalf("first call: v=%v out=%v err=%v", v, out, err)
	}
	if store.puts != 1 {
		t.Fatalf("puts = %d, want 1 (write-through)", store.puts)
	}

	// "Restart": a new memory tier over the same store.
	c2 := NewTiered(0, store, blobCodec{})
	v, out, err = c2.GetOrCompute(context.Background(), "k", func(context.Context) (Value, error) {
		t.Error("disk hit must not recompute")
		return nil, nil
	})
	if err != nil || out != DiskHit || v.(*blob).id != "computed" {
		t.Fatalf("restart call: v=%v out=%v err=%v", v, out, err)
	}
	if out.String() != "disk_hit" {
		t.Fatalf("outcome string = %q", out.String())
	}
	// The disk hit populated the memory tier: the next call is a plain hit.
	_, out, err = c2.GetOrCompute(context.Background(), "k", func(context.Context) (Value, error) {
		return nil, errors.New("unreachable")
	})
	if err != nil || out != Hit {
		t.Fatalf("after disk hit: out=%v err=%v", out, err)
	}
	s := c2.Stats()
	if s.DiskHits != 1 || s.Hits != 1 || s.Misses != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// A payload the codec cannot decode falls back to recomputation and is
// overwritten — never served, never fatal.
func TestTieredDecodeFailureRecomputes(t *testing.T) {
	store := newFakeStore()
	store.m["k"] = []byte("from-old-build")
	c := NewTiered(0, store, blobCodec{failDecode: true})
	v, out, err := c.GetOrCompute(context.Background(), "k", func(context.Context) (Value, error) {
		return &blob{id: "fresh", size: 5}, nil
	})
	if err != nil || out != Miss || v.(*blob).id != "fresh" {
		t.Fatalf("v=%v out=%v err=%v", v, out, err)
	}
	if store.puts != 1 {
		t.Fatalf("puts = %d; recomputed value must overwrite the bad payload", store.puts)
	}
}

// A failed computation is not written through.
func TestTieredErrorsNotPersisted(t *testing.T) {
	store := newFakeStore()
	c := NewTiered(0, store, blobCodec{})
	_, _, err := c.GetOrCompute(context.Background(), "k", func(context.Context) (Value, error) {
		return nil, errors.New("boom")
	})
	if err == nil || store.puts != 0 {
		t.Fatalf("err=%v puts=%d", err, store.puts)
	}
}

// The promotion contract: when the leader fails because its own context
// was cancelled, a live waiter re-runs the computation instead of
// inheriting the leader's cancellation.
func TestWaiterPromotedOnLeaderCancellation(t *testing.T) {
	c := New(0)
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	inFn := make(chan struct{})
	var runs atomic.Int64

	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrCompute(leaderCtx, "k", func(ctx context.Context) (Value, error) {
			runs.Add(1)
			close(inFn)
			<-ctx.Done() // a context-aware pipeline stage aborting
			return nil, ctx.Err()
		})
		leaderDone <- err
	}()
	<-inFn

	type res struct {
		v   Value
		out Outcome
		err error
	}
	waiterDone := make(chan res, 1)
	go func() {
		v, out, err := c.GetOrCompute(context.Background(), "k", func(ctx context.Context) (Value, error) {
			runs.Add(1)
			return &blob{id: "promoted", size: 4}, nil
		})
		waiterDone <- res{v, out, err}
	}()
	// Let the waiter register on the in-flight call, then kill only the
	// leader's context.
	deadline := time.After(5 * time.Second)
	for {
		c.mu.Lock()
		n := c.stats.Coalesced
		c.mu.Unlock()
		if n == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("waiter never registered")
		case <-time.After(time.Millisecond):
		}
	}
	cancelLeader()

	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v, want context.Canceled", err)
	}
	r := <-waiterDone
	if r.err != nil {
		t.Fatalf("promoted waiter inherited the leader's fate: %v", r.err)
	}
	if r.out != Miss || r.v.(*blob).id != "promoted" {
		t.Fatalf("promoted waiter: v=%v out=%v", r.v, r.out)
	}
	if n := runs.Load(); n != 2 {
		t.Fatalf("fn ran %d times, want 2 (leader + promoted waiter)", n)
	}
	s := c.Stats()
	if s.Promoted != 1 {
		t.Fatalf("stats = %+v, want one promotion", s)
	}
	// The promoted run populated the cache for everyone after.
	if _, ok := c.Get("k"); !ok {
		t.Fatal("promoted run did not populate the cache")
	}
}

// A waiter whose own context died alongside the leader's is NOT
// promoted: it reports its own cancellation.
func TestWaiterNotPromotedWhenOwnContextDead(t *testing.T) {
	c := New(0)
	shared, cancelShared := context.WithCancel(context.Background())
	inFn := make(chan struct{})
	go c.GetOrCompute(shared, "k", func(ctx context.Context) (Value, error) {
		close(inFn)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	<-inFn
	waiterErr := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrCompute(shared, "k", func(context.Context) (Value, error) {
			t.Error("doomed waiter must not be promoted")
			return nil, nil
		})
		waiterErr <- err
	}()
	deadline := time.After(5 * time.Second)
	for {
		c.mu.Lock()
		n := c.stats.Coalesced
		c.mu.Unlock()
		if n == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("waiter never registered")
		case <-time.After(time.Millisecond):
		}
	}
	cancelShared()
	if err := <-waiterErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("doomed waiter err = %v, want context.Canceled", err)
	}
}
