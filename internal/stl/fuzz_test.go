package stl

import (
	"math/rand"
	"testing"

	"obfuscade/internal/geom"
	"obfuscade/internal/mesh"
)

// Byte-level robustness: mutated STL files must either parse into a
// well-formed mesh or fail with an error — never panic. This is the
// property a file parser exposed to untrusted supply-chain inputs needs
// (Table 1: "file parser ... zero-day" risk).
func TestUnmarshalMutationRobustness(t *testing.T) {
	m := &mesh.Mesh{Shells: []mesh.Shell{
		mesh.BoxShell("box", "b", geom.V3(0, 0, 0), geom.V3(3, 2, 1)),
	}}
	rng := rand.New(rand.NewSource(99))
	for _, format := range []Format{Binary, ASCII} {
		data, err := Marshal(m, format, "fuzz")
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 300; trial++ {
			mutated := append([]byte{}, data...)
			// Flip 1-4 random bytes.
			for k := 0; k < 1+rng.Intn(4); k++ {
				mutated[rng.Intn(len(mutated))] ^= byte(1 + rng.Intn(255))
			}
			got, err := Unmarshal(mutated)
			if err != nil {
				continue // rejected: fine
			}
			if got.TriangleCount() < 0 {
				t.Fatal("negative triangle count")
			}
		}
		// Truncations at every length band.
		for cut := 0; cut < len(data); cut += 1 + len(data)/37 {
			if _, err := Unmarshal(data[:cut]); err == nil {
				// Some truncations of ASCII remain valid (fewer
				// facets); binary must keep its count consistent.
				if format == Binary && cut > 84 {
					t.Fatalf("truncated binary file at %d accepted", cut)
				}
			}
		}
	}
}

// Random garbage must never panic the decoder.
func TestUnmarshalGarbageRobustness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(600)
		data := make([]byte, n)
		rng.Read(data)
		_, _ = Unmarshal(data) // must not panic; error is expected
	}
}
