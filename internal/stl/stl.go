// Package stl reads and writes stereolithography (STL) files, the
// printer-independent exchange format at the centre of the AM process
// chain (paper Fig. 1). Both the binary and ASCII dialects are supported.
//
// STL is a flat soup of oriented triangles; shell structure is not part of
// the format. Encode therefore flattens a mesh.Mesh, while Decode returns a
// single anonymous shell. This information loss is one of the properties
// ObfusCADe exploits: two CAD models with different body semantics (solid
// vs. surface sphere, §3.2) can export to byte-identical STL sizes.
package stl

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strings"

	"obfuscade/internal/geom"
	"obfuscade/internal/mesh"
)

// Format selects the STL dialect.
type Format int

const (
	// Binary is the compact little-endian dialect (80-byte header,
	// 50 bytes per facet).
	Binary Format = iota
	// ASCII is the human-readable "solid ... endsolid" dialect.
	ASCII
)

// String implements fmt.Stringer.
func (f Format) String() string {
	if f == ASCII {
		return "ascii"
	}
	return "binary"
}

const (
	binaryHeaderSize = 80
	binaryFacetSize  = 50
)

// maxBinaryTriangles is the largest facet count the binary dialect can
// represent: the on-disk count field is a uint32.
const maxBinaryTriangles = math.MaxUint32

// BinarySize returns the exact byte size of a binary STL file holding n
// triangles. The result is int64 so a facet count near the uint32 limit
// (a ~200 GB file) sizes correctly even on 32-bit platforms, where the
// multiplication would overflow int.
func BinarySize(n int) int64 { return binaryHeaderSize + 4 + binaryFacetSize*int64(n) }

// Encode writes the mesh to w in the given format. The header/solid name
// is taken from name (truncated to fit binary headers).
func Encode(w io.Writer, m *mesh.Mesh, format Format, name string) error {
	switch format {
	case Binary:
		return encodeBinary(w, m, name)
	case ASCII:
		return encodeASCII(w, m, name)
	default:
		return fmt.Errorf("stl: unknown format %d", int(format))
	}
}

// Marshal encodes the mesh to a byte slice.
func Marshal(m *mesh.Mesh, format Format, name string) ([]byte, error) {
	var buf bytes.Buffer
	if err := Encode(&buf, m, format, name); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// sanitizeBinaryHeader returns the header text for a binary STL file. A
// header beginning with "solid" is the ASCII dialect's magic word: format
// sniffers (including looksASCII on length-damaged files) would misread
// the binary file as ASCII, so such names are prefixed out of the
// ambiguous form.
func sanitizeBinaryHeader(name string) string {
	if strings.HasPrefix(strings.TrimLeft(name, " \t\r\n"), "solid") {
		return "bin: " + strings.TrimLeft(name, " \t\r\n")
	}
	return name
}

// checkBinaryTriangleCount rejects facet counts the binary dialect cannot
// represent; uint32 truncation would silently emit a corrupt file.
func checkBinaryTriangleCount(n int) error {
	if n < 0 || int64(n) > maxBinaryTriangles {
		return fmt.Errorf("stl: %d triangles exceed the binary format's uint32 facet count", n)
	}
	return nil
}

func encodeBinary(w io.Writer, m *mesh.Mesh, name string) error {
	n := m.TriangleCount()
	if err := checkBinaryTriangleCount(n); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	var header [binaryHeaderSize]byte
	copy(header[:], sanitizeBinaryHeader(name))
	if _, err := bw.Write(header[:]); err != nil {
		return fmt.Errorf("stl: write header: %w", err)
	}
	count := uint32(n)
	if err := binary.Write(bw, binary.LittleEndian, count); err != nil {
		return fmt.Errorf("stl: write count: %w", err)
	}
	var facet [binaryFacetSize]byte
	for _, s := range m.Shells {
		for _, t := range s.Tris {
			n := t.Normal()
			putVec := func(off int, v geom.Vec3) {
				binary.LittleEndian.PutUint32(facet[off:], math.Float32bits(float32(v.X)))
				binary.LittleEndian.PutUint32(facet[off+4:], math.Float32bits(float32(v.Y)))
				binary.LittleEndian.PutUint32(facet[off+8:], math.Float32bits(float32(v.Z)))
			}
			putVec(0, n)
			putVec(12, t.A)
			putVec(24, t.B)
			putVec(36, t.C)
			facet[48], facet[49] = 0, 0
			if _, err := bw.Write(facet[:]); err != nil {
				return fmt.Errorf("stl: write facet: %w", err)
			}
		}
	}
	return bw.Flush()
}

func encodeASCII(w io.Writer, m *mesh.Mesh, name string) error {
	bw := bufio.NewWriter(w)
	clean := strings.Map(func(r rune) rune {
		if r == '\n' || r == '\r' {
			return ' '
		}
		return r
	}, name)
	if _, err := fmt.Fprintf(bw, "solid %s\n", clean); err != nil {
		return err
	}
	for _, s := range m.Shells {
		for _, t := range s.Tris {
			n := t.Normal()
			fmt.Fprintf(bw, "  facet normal %e %e %e\n", n.X, n.Y, n.Z)
			fmt.Fprintf(bw, "    outer loop\n")
			for _, v := range [3]geom.Vec3{t.A, t.B, t.C} {
				fmt.Fprintf(bw, "      vertex %e %e %e\n", v.X, v.Y, v.Z)
			}
			fmt.Fprintf(bw, "    endloop\n")
			fmt.Fprintf(bw, "  endfacet\n")
		}
	}
	if _, err := fmt.Fprintf(bw, "endsolid %s\n", clean); err != nil {
		return err
	}
	return bw.Flush()
}

// Decode reads an STL file in either dialect, auto-detecting the format.
// The result is a mesh with a single shell named after the solid (binary
// files use the header text up to the first NUL).
func Decode(r io.Reader) (*mesh.Mesh, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("stl: read: %w", err)
	}
	return Unmarshal(data)
}

// Unmarshal parses STL bytes in either dialect.
func Unmarshal(data []byte) (*mesh.Mesh, error) {
	if looksASCII(data) {
		return decodeASCII(data)
	}
	return decodeBinary(data)
}

// looksASCII applies the usual heuristic: starts with "solid" and the
// implied binary triangle count does not match the file length.
func looksASCII(data []byte) bool {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if !bytes.HasPrefix(trimmed, []byte("solid")) {
		return false
	}
	if len(data) >= binaryHeaderSize+4 {
		count := binary.LittleEndian.Uint32(data[binaryHeaderSize:])
		if BinarySize(int(count)) == int64(len(data)) {
			return false // consistent binary file that happens to say "solid"
		}
	}
	return true
}

func decodeBinary(data []byte) (*mesh.Mesh, error) {
	if len(data) < binaryHeaderSize+4 {
		return nil, fmt.Errorf("stl: binary file too short (%d bytes)", len(data))
	}
	name := string(bytes.SplitN(data[:binaryHeaderSize], []byte{0}, 2)[0])
	count := binary.LittleEndian.Uint32(data[binaryHeaderSize:])
	want := BinarySize(int(count))
	if int64(len(data)) < want {
		return nil, fmt.Errorf("stl: truncated binary file: have %d bytes, want %d for %d facets",
			len(data), want, count)
	}
	s := mesh.Shell{Name: strings.TrimSpace(name), Orient: mesh.Outward}
	off := binaryHeaderSize + 4
	getVec := func(o int) geom.Vec3 {
		return geom.V3(
			float64(math.Float32frombits(binary.LittleEndian.Uint32(data[o:]))),
			float64(math.Float32frombits(binary.LittleEndian.Uint32(data[o+4:]))),
			float64(math.Float32frombits(binary.LittleEndian.Uint32(data[o+8:]))),
		)
	}
	for i := uint32(0); i < count; i++ {
		base := off + int(i)*binaryFacetSize
		s.Tris = append(s.Tris, geom.Triangle{
			A: getVec(base + 12),
			B: getVec(base + 24),
			C: getVec(base + 36),
		})
	}
	return &mesh.Mesh{Shells: []mesh.Shell{s}}, nil
}

// scanASCIILines is a bufio.SplitFunc that terminates lines on "\n",
// "\r\n", or a lone "\r". bufio.ScanLines only handles the first two;
// classic-Mac exports that end every line with a bare "\r" used to scan
// as one giant token whose first field is "solid", silently swallowing
// every facet into the solid name and decoding to an empty mesh.
func scanASCIILines(data []byte, atEOF bool) (advance int, token []byte, err error) {
	if atEOF && len(data) == 0 {
		return 0, nil, nil
	}
	if i := bytes.IndexAny(data, "\r\n"); i >= 0 {
		if data[i] == '\r' {
			if i+1 < len(data) && data[i+1] == '\n' {
				return i + 2, data[:i], nil
			}
			if i+1 == len(data) && !atEOF {
				// The "\r" might be half of a "\r\n" split across
				// reads; ask for more data before deciding.
				return 0, nil, nil
			}
		}
		return i + 1, data[:i], nil
	}
	if atEOF {
		return len(data), data, nil
	}
	return 0, nil, nil
}

func decodeASCII(data []byte) (*mesh.Mesh, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	sc.Split(scanASCIILines)
	s := mesh.Shell{Orient: mesh.Outward}
	var verts []geom.Vec3
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "solid":
			if len(fields) > 1 {
				s.Name = strings.Join(fields[1:], " ")
			}
		case "vertex":
			if len(fields) != 4 {
				return nil, fmt.Errorf("stl: line %d: malformed vertex", line)
			}
			var v geom.Vec3
			if _, err := fmt.Sscanf(strings.Join(fields[1:], " "), "%g %g %g",
				&v.X, &v.Y, &v.Z); err != nil {
				return nil, fmt.Errorf("stl: line %d: %w", line, err)
			}
			// %g happily parses NaN and ±Inf, which poison every
			// downstream geometric predicate (bounds, slicing,
			// welding) without ever failing loudly. Reject here.
			for _, c := range [...]float64{v.X, v.Y, v.Z} {
				if math.IsNaN(c) || math.IsInf(c, 0) {
					return nil, fmt.Errorf("stl: line %d: non-finite vertex coordinate %q", line, strings.Join(fields[1:], " "))
				}
			}
			verts = append(verts, v)
		case "endfacet":
			if len(verts) != 3 {
				return nil, fmt.Errorf("stl: line %d: facet with %d vertices", line, len(verts))
			}
			s.Tris = append(s.Tris, geom.Triangle{A: verts[0], B: verts[1], C: verts[2]})
			verts = verts[:0]
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("stl: scan: %w", err)
	}
	if len(verts) != 0 {
		return nil, fmt.Errorf("stl: dangling vertices at EOF")
	}
	return &mesh.Mesh{Shells: []mesh.Shell{s}}, nil
}

// Stats summarises an STL file for review and integrity checking
// (Table 1 mitigations: "Veri­fication of ... file sizes/hashes",
// "Review 3D rendering/file contents").
type Stats struct {
	Triangles   int
	BinaryBytes int64
	SurfaceArea float64
	Volume      float64
	Bounds      geom.AABB
}

// StatsOf computes summary statistics for a mesh as it would appear in a
// binary STL file.
func StatsOf(m *mesh.Mesh) Stats {
	return Stats{
		Triangles:   m.TriangleCount(),
		BinaryBytes: BinarySize(m.TriangleCount()),
		SurfaceArea: m.SurfaceArea(),
		Volume:      m.Volume(),
		Bounds:      m.Bounds(),
	}
}

// Diff describes the difference between two STL-level meshes.
type Diff struct {
	TriangleDelta int
	VolumeDelta   float64
	AreaDelta     float64
	BoundsDelta   geom.Vec3
}

// Compare returns the structural difference between two meshes — the check
// a defender performs against a known-good reference before printing.
func Compare(a, b *mesh.Mesh) Diff {
	sa, sb := StatsOf(a), StatsOf(b)
	return Diff{
		TriangleDelta: sb.Triangles - sa.Triangles,
		VolumeDelta:   sb.Volume - sa.Volume,
		AreaDelta:     sb.SurfaceArea - sa.SurfaceArea,
		BoundsDelta:   sb.Bounds.Size().Sub(sa.Bounds.Size()),
	}
}

// Identical reports whether the diff is empty within tolerance tol.
func (d Diff) Identical(tol float64) bool {
	return d.TriangleDelta == 0 &&
		math.Abs(d.VolumeDelta) <= tol &&
		math.Abs(d.AreaDelta) <= tol &&
		d.BoundsDelta.Abs().Len() <= tol
}
