package stl

import "testing"

// Native fuzz target: the decoder must never panic on arbitrary bytes.
// Run with `go test -fuzz=FuzzUnmarshal ./internal/stl` for deep fuzzing;
// the seed corpus runs as a regular test.
func FuzzUnmarshal(f *testing.F) {
	m := boxMesh()
	bin, err := Marshal(m, Binary, "seed")
	if err != nil {
		f.Fatal(err)
	}
	asc, err := Marshal(m, ASCII, "seed")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(bin)
	f.Add(asc)
	f.Add([]byte("solid x\nendsolid x\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Unmarshal(data)
		if err != nil {
			return
		}
		if got.TriangleCount() < 0 {
			t.Fatal("negative triangle count")
		}
	})
}
