package stl

import (
	"bytes"
	"math"
	"testing"
)

// Native fuzz target: the decoder must never panic on arbitrary bytes.
// Run with `go test -fuzz=FuzzUnmarshal ./internal/stl` for deep fuzzing;
// the seed corpus runs as a regular test.
func FuzzUnmarshal(f *testing.F) {
	m := boxMesh()
	bin, err := Marshal(m, Binary, "seed")
	if err != nil {
		f.Fatal(err)
	}
	asc, err := Marshal(m, ASCII, "seed")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(bin)
	f.Add(asc)
	f.Add([]byte("solid x\nendsolid x\n"))
	f.Add([]byte{})
	// Non-finite coordinates must be rejected, never decoded.
	f.Add([]byte("solid p\nfacet normal 0 0 1\nouter loop\nvertex NaN 0 0\nvertex 1 0 0\nvertex 0 +Inf 0\nendloop\nendfacet\nendsolid p\n"))
	// Classic-Mac lone-\r terminators: must decode all facets, not zero.
	f.Add(bytes.ReplaceAll(asc, []byte("\n"), []byte("\r")))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Unmarshal(data)
		if err != nil {
			return
		}
		if got.TriangleCount() < 0 {
			t.Fatal("negative triangle count")
		}
		// ASCII decodes must never yield non-finite geometry.
		if looksASCII(data) {
			for _, tri := range got.AllTriangles() {
				for _, v := range [...][3]float64{{tri.A.X, tri.A.Y, tri.A.Z}, {tri.B.X, tri.B.Y, tri.B.Z}, {tri.C.X, tri.C.Y, tri.C.Z}} {
					for _, c := range v {
						if math.IsNaN(c) || math.IsInf(c, 0) {
							t.Fatal("decoded non-finite coordinate from ASCII input")
						}
					}
				}
			}
		}
	})
}
