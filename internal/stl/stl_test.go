package stl

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"obfuscade/internal/geom"
	"obfuscade/internal/mesh"
)

func boxMesh() *mesh.Mesh {
	return &mesh.Mesh{Shells: []mesh.Shell{
		mesh.BoxShell("box", "b", geom.V3(0, 0, 0), geom.V3(2, 3, 4)),
	}}
}

func TestBinaryRoundTrip(t *testing.T) {
	m := boxMesh()
	data, err := Marshal(m, Binary, "test-box")
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) != BinarySize(12) {
		t.Errorf("binary size = %d, want %d", len(data), BinarySize(12))
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.TriangleCount() != 12 {
		t.Errorf("round-trip triangles = %d, want 12", got.TriangleCount())
	}
	if name := got.Shells[0].Name; name != "test-box" {
		t.Errorf("round-trip name = %q", name)
	}
	if v := got.Volume(); !geom.ApproxEq(v, 24, 1e-3) {
		t.Errorf("round-trip volume = %v, want 24", v)
	}
}

func TestASCIIRoundTrip(t *testing.T) {
	m := boxMesh()
	data, err := Marshal(m, ASCII, "ascii box")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("solid ascii box")) {
		t.Errorf("ASCII output missing solid header: %.40s", data)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.TriangleCount() != 12 {
		t.Errorf("round-trip triangles = %d", got.TriangleCount())
	}
	if v := got.Volume(); !geom.ApproxEq(v, 24, 1e-6) {
		t.Errorf("ASCII round-trip volume = %v, want 24", v)
	}
	if got.Shells[0].Name != "ascii box" {
		t.Errorf("name = %q", got.Shells[0].Name)
	}
}

func TestFormatString(t *testing.T) {
	if Binary.String() != "binary" || ASCII.String() != "ascii" {
		t.Error("Format.String misbehaves")
	}
}

func TestBinaryHeaderStartingWithSolid(t *testing.T) {
	// A binary file whose header begins with "solid" must still decode as
	// binary when the length checks out.
	m := boxMesh()
	data, err := Marshal(m, Binary, "solid but binary")
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.TriangleCount() != 12 {
		t.Errorf("tricky header triangles = %d, want 12", got.TriangleCount())
	}
}

func TestDecodeTruncatedBinary(t *testing.T) {
	m := boxMesh()
	data, _ := Marshal(m, Binary, "x")
	if _, err := Unmarshal(data[:len(data)-7]); err == nil {
		t.Error("expected error for truncated binary file")
	}
	if _, err := Unmarshal(data[:10]); err == nil {
		t.Error("expected error for far-too-short file")
	}
}

func TestDecodeMalformedASCII(t *testing.T) {
	bad := "solid x\nfacet normal 0 0 1\nouter loop\nvertex 0 0\nendloop\nendfacet\nendsolid x\n"
	if _, err := Unmarshal([]byte(bad)); err == nil {
		t.Error("expected error for malformed vertex")
	}
	bad2 := "solid x\nvertex 1 2 3\n" // dangling vertex, no endfacet
	if _, err := Unmarshal([]byte(bad2)); err == nil {
		t.Error("expected error for dangling vertices")
	}
}

func TestDecodeASCIIRejectsNonFinite(t *testing.T) {
	cases := map[string]string{
		"nan":  "vertex NaN 0 0",
		"inf":  "vertex 0 +Inf 0",
		"ninf": "vertex 0 0 -inf",
	}
	for name, vtx := range cases {
		bad := "solid x\nfacet normal 0 0 1\nouter loop\n" + vtx +
			"\nvertex 1 0 0\nvertex 0 1 0\nendloop\nendfacet\nendsolid x\n"
		if _, err := Unmarshal([]byte(bad)); err == nil {
			t.Errorf("%s: expected error for non-finite coordinate", name)
		} else if !strings.Contains(err.Error(), "non-finite") {
			t.Errorf("%s: error %q does not mention non-finite", name, err)
		}
	}
}

func TestDecodeASCIILineEndings(t *testing.T) {
	m := boxMesh()
	data, err := Marshal(m, ASCII, "endings")
	if err != nil {
		t.Fatal(err)
	}
	lf := string(data)
	cases := map[string]string{
		"lf":         lf,
		"crlf":       strings.ReplaceAll(lf, "\n", "\r\n"),
		"cr":         strings.ReplaceAll(lf, "\n", "\r"),
		"no-newline": strings.TrimSuffix(lf, "\n"),
		// A lone-\r file whose final facet abuts endsolid with no
		// trailing terminator at all: every facet must still decode.
		"cr-no-trailing": strings.TrimSuffix(strings.ReplaceAll(lf, "\n", "\r"), "\r"),
	}
	for name, in := range cases {
		got, err := Unmarshal([]byte(in))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if got.TriangleCount() != 12 {
			t.Errorf("%s: triangles = %d, want 12", name, got.TriangleCount())
		}
	}
}

func TestDecodeReader(t *testing.T) {
	m := boxMesh()
	data, _ := Marshal(m, ASCII, "via reader")
	got, err := Decode(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	if got.TriangleCount() != 12 {
		t.Errorf("triangles = %d", got.TriangleCount())
	}
}

func TestStatsOf(t *testing.T) {
	st := StatsOf(boxMesh())
	if st.Triangles != 12 || st.BinaryBytes != BinarySize(12) {
		t.Errorf("stats = %+v", st)
	}
	if !geom.ApproxEq(st.Volume, 24, 1e-9) {
		t.Errorf("stats volume = %v", st.Volume)
	}
	if !geom.ApproxEq(st.SurfaceArea, 52, 1e-9) {
		t.Errorf("stats area = %v", st.SurfaceArea)
	}
}

func TestCompareDetectsTamper(t *testing.T) {
	a := boxMesh()
	b := boxMesh()
	if d := Compare(a, b); !d.Identical(1e-9) {
		t.Errorf("identical meshes differ: %+v", d)
	}
	// Void attack: remove triangles (Table 1 "Removal/addition of
	// tetrahedrons").
	b.Shells[0].Tris = b.Shells[0].Tris[:10]
	d := Compare(a, b)
	if d.Identical(1e-9) {
		t.Error("tampered mesh reported identical")
	}
	if d.TriangleDelta != -2 {
		t.Errorf("TriangleDelta = %d, want -2", d.TriangleDelta)
	}
	// Scaling attack.
	c := boxMesh()
	c.Transform(geom.ScaleUniform(1.01))
	d = Compare(a, c)
	if d.Identical(1e-9) || d.VolumeDelta <= 0 {
		t.Errorf("scaling not detected: %+v", d)
	}
}

func TestFileSizeObservation(t *testing.T) {
	// §3.2: embedding a sphere makes the STL larger; solid and surface
	// spheres have identical STL sizes.
	prism := boxMesh()
	withSolid := boxMesh()
	solidSphere := mesh.SphereShell("s", "sphere", geom.V3(1, 1.5, 2), 0.5, 8, 16)
	withSolid.Shells = append(withSolid.Shells, solidSphere)
	withSurface := boxMesh()
	surfSphere := solidSphere
	surfSphere.Orient = mesh.OpenSurface
	withSurface.Shells = append(withSurface.Shells, surfSphere)

	szPrism := StatsOf(prism).BinaryBytes
	szSolid := StatsOf(withSolid).BinaryBytes
	szSurface := StatsOf(withSurface).BinaryBytes
	if szSolid <= szPrism {
		t.Errorf("sphere should enlarge STL: %d vs %d", szSolid, szPrism)
	}
	if szSolid != szSurface {
		t.Errorf("solid (%d) and surface (%d) sphere STL sizes should match", szSolid, szSurface)
	}
}

// Property: binary round-trip preserves triangle count and float32-rounded
// vertices for arbitrary triangles.
func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(xs [9]float64) bool {
		for i := range xs {
			if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) {
				xs[i] = 0
			}
			xs[i] = geom.Clamp(xs[i], -1e6, 1e6)
		}
		m := &mesh.Mesh{Shells: []mesh.Shell{{Name: "p", Tris: []geom.Triangle{{
			A: geom.V3(xs[0], xs[1], xs[2]),
			B: geom.V3(xs[3], xs[4], xs[5]),
			C: geom.V3(xs[6], xs[7], xs[8]),
		}}}}}
		data, err := Marshal(m, Binary, "prop")
		if err != nil {
			return false
		}
		got, err := Unmarshal(data)
		if err != nil || got.TriangleCount() != 1 {
			return false
		}
		tr := got.Shells[0].Tris[0]
		want := m.Shells[0].Tris[0]
		tol := 1e-6 * (1 + want.A.Len() + want.B.Len() + want.C.Len())
		return tr.A.Eq(want.A, tol) && tr.B.Eq(want.B, tol) && tr.C.Eq(want.C, tol)
	}
	cfg := &quick.Config{MaxCount: 100}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: ASCII and binary encodings of the same mesh decode to meshes
// with equal triangle counts and (nearly) equal volumes.
func TestDialectAgreement(t *testing.T) {
	m := boxMesh()
	bin, err := Marshal(m, Binary, "agree")
	if err != nil {
		t.Fatal(err)
	}
	asc, err := Marshal(m, ASCII, "agree")
	if err != nil {
		t.Fatal(err)
	}
	mb, err := Unmarshal(bin)
	if err != nil {
		t.Fatal(err)
	}
	ma, err := Unmarshal(asc)
	if err != nil {
		t.Fatal(err)
	}
	if mb.TriangleCount() != ma.TriangleCount() {
		t.Errorf("triangle counts differ: %d vs %d", mb.TriangleCount(), ma.TriangleCount())
	}
	if math.Abs(mb.Volume()-ma.Volume()) > 1e-3 {
		t.Errorf("volumes differ: %v vs %v", mb.Volume(), ma.Volume())
	}
}

// Regression: a mesh named "solid ..." must not produce a binary file
// whose 80-byte header starts with the ASCII dialect's magic word. Before
// the header was sanitized, such files passed format sniffing only while
// their length exactly matched the facet count; one trailing byte (a
// newline appended in transit, a partial download) flipped detection to
// ASCII and the decode failed.
func TestBinaryHeaderNeverStartsWithSolid(t *testing.T) {
	m := boxMesh()
	for _, name := range []string{"solid", "solid part", "  solid indented", "solidify"} {
		data, err := Marshal(m, Binary, name)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.HasPrefix(bytes.TrimLeft(data[:binaryHeaderSize], " \t\r\n"), []byte("solid")) {
			t.Errorf("name %q: binary header starts with %q", name, data[:12])
		}
		got, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("name %q: %v", name, err)
		}
		if got.TriangleCount() != 12 {
			t.Errorf("name %q: round-trip triangles = %d, want 12", name, got.TriangleCount())
		}
		// The sniffer-ambiguous case: the same file with one trailing byte
		// no longer length-matches the binary layout, so only the header
		// text keeps it out of the ASCII decoder.
		damaged, err := Unmarshal(append(append([]byte(nil), data...), '\n'))
		if err != nil {
			t.Fatalf("name %q with trailing byte: %v", name, err)
		}
		if damaged.TriangleCount() != 12 {
			t.Errorf("name %q with trailing byte: triangles = %d, want 12",
				name, damaged.TriangleCount())
		}
	}
	// Names that are not ambiguous pass through untouched.
	data, err := Marshal(m, Binary, "part-7")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("part-7")) {
		t.Errorf("unambiguous name rewritten: %q", data[:12])
	}
}

// Regression: facet counts above the uint32 limit must be rejected, not
// silently truncated into a corrupt file.
func TestBinaryTriangleCountRange(t *testing.T) {
	if err := checkBinaryTriangleCount(12); err != nil {
		t.Errorf("count 12 rejected: %v", err)
	}
	if err := checkBinaryTriangleCount(math.MaxUint32); err != nil {
		t.Errorf("count MaxUint32 rejected: %v", err)
	}
	if err := checkBinaryTriangleCount(math.MaxUint32 + 1); err == nil {
		t.Error("count 2^32 accepted; uint32 truncation would corrupt the file")
	}
	if err := checkBinaryTriangleCount(-1); err == nil {
		t.Error("negative count accepted")
	}
}

// Regression: BinarySize of a maximal binary STL (~200 GB) must not
// overflow; the previous int arithmetic wrapped on 32-bit platforms.
func TestBinarySizeNoOverflow(t *testing.T) {
	const maxCount = math.MaxUint32
	want := int64(84) + 50*int64(maxCount)
	if got := BinarySize(maxCount); got != want {
		t.Errorf("BinarySize(MaxUint32) = %d, want %d", got, want)
	}
	if BinarySize(maxCount) <= 0 {
		t.Error("BinarySize overflowed")
	}
}
