package stl_test

import (
	"fmt"
	"log"

	"obfuscade/internal/geom"
	"obfuscade/internal/mesh"
	"obfuscade/internal/stl"
)

// Round-trip a mesh through the binary STL dialect.
func Example() {
	m := &mesh.Mesh{Shells: []mesh.Shell{
		mesh.BoxShell("cube", "cube", geom.V3(0, 0, 0), geom.V3(10, 10, 10)),
	}}
	data, err := stl.Marshal(m, stl.Binary, "cube")
	if err != nil {
		log.Fatal(err)
	}
	back, err := stl.Unmarshal(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bytes:", len(data))
	fmt.Println("triangles:", back.TriangleCount())
	fmt.Printf("volume: %.0f\n", back.Volume())
	// Output:
	// bytes: 684
	// triangles: 12
	// volume: 1000
}

// Detect tampering with a structural diff against a trusted reference.
func ExampleCompare() {
	ref := &mesh.Mesh{Shells: []mesh.Shell{
		mesh.BoxShell("part", "part", geom.V3(0, 0, 0), geom.V3(10, 10, 10)),
	}}
	received := ref.Clone()
	received.Transform(geom.ScaleUniform(1.05)) // scaling attack

	d := stl.Compare(ref, received)
	fmt.Println("identical:", d.Identical(1e-6))
	fmt.Printf("volume delta: %.0f\n", d.VolumeDelta)
	// Output:
	// identical: false
	// volume delta: 158
}
