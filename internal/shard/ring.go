// Package shard is the scale-out layer of the obfuscation job service:
// a consistent-hash ring that gives every content-addressed job key a
// deterministic owner among N serve instances, and a router that fronts
// those instances — proxying submissions to the owning shard, splitting
// batch sweeps per shard, hedging slow reads against the next ring
// replica, and ejecting unhealthy shards off the ring until they
// recover.
//
// Placement is derived from the job keys the serve tier already uses
// (hex SHA-256 of the canonical request plus the pipeline version), so
// the router never needs shard-side coordination: any router instance
// with the same member list computes the same owner for every key, and
// a key's cache entry, job registry row and disk object all live on
// exactly one shard.
package shard

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-member vnode count used when a Ring is
// built with vnodes <= 0. 128 points per member keeps the expected load
// imbalance across a handful of shards under a few percent while the
// whole ring still fits in a couple of KB.
const DefaultVirtualNodes = 128

// point is one virtual node: a position on the 64-bit hash circle owned
// by a member.
type point struct {
	hash   uint64
	member int32 // index into Ring.members
}

// Ring is an immutable consistent-hash ring over a fixed member set.
// Health is deliberately not the ring's concern: Owners returns every
// member in deterministic preference order and the caller (the router)
// skips the ones it currently considers dead, so ejection and rejoin
// never move keys between healthy members.
type Ring struct {
	members []string
	points  []point // sorted by hash
	vnodes  int
}

// NewRing builds a ring over members (duplicates are dropped) with the
// given number of virtual nodes per member (<= 0 means
// DefaultVirtualNodes). The member order given does not matter: the
// ring canonicalizes by sorting, so two routers configured with the
// same set in any order place every key identically.
func NewRing(members []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := map[string]bool{}
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("shard: empty ring member")
		}
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("shard: ring needs at least one member")
	}
	sort.Strings(uniq)
	r := &Ring{members: uniq, vnodes: vnodes}
	r.points = make([]point, 0, len(uniq)*vnodes)
	for mi, m := range uniq {
		for v := 0; v < vnodes; v++ {
			sum := sha256.Sum256([]byte(m + "#" + strconv.Itoa(v)))
			r.points = append(r.points, point{
				hash:   binary.BigEndian.Uint64(sum[:8]),
				member: int32(mi),
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Tie-break on member so the sort (and thus placement) is total
		// even in the astronomically unlikely event of a hash collision.
		return r.points[a].member < r.points[b].member
	})
	return r, nil
}

// Members returns the ring's member set in canonical (sorted) order.
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// VirtualNodes returns the per-member virtual node count.
func (r *Ring) VirtualNodes() int { return r.vnodes }

// keyPoint maps a job key onto the hash circle. Job keys are the hex
// SHA-256 content addresses the serve tier mints, so when the key
// decodes as hex the placement comes literally from the first eight
// bytes of that digest; anything else (a malformed id from a client)
// is re-hashed so it still lands somewhere deterministic.
func keyPoint(key string) uint64 {
	if len(key) >= 16 {
		if raw, err := hex.DecodeString(key[:16]); err == nil {
			return binary.BigEndian.Uint64(raw)
		}
	}
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Owner returns the member that owns key: the member of the first
// virtual node at or clockwise after the key's point on the circle.
func (r *Ring) Owner(key string) string {
	return r.members[r.ownerIndexes(key, 1)[0]]
}

// Owners returns up to n distinct members in preference order for key:
// the owner first, then each subsequent distinct member found walking
// the circle clockwise. The router uses position 0 as the primary and
// position 1 as the hedge/failover replica; the order is deterministic
// for a given member set, so retries and hedges are stable too.
func (r *Ring) Owners(key string, n int) []string {
	idx := r.ownerIndexes(key, n)
	out := make([]string, len(idx))
	for i, mi := range idx {
		out[i] = r.members[mi]
	}
	return out
}

// ownerIndexes walks the circle clockwise from the key's point and
// collects the first n distinct member indexes.
func (r *Ring) ownerIndexes(key string, n int) []int32 {
	if n <= 0 || n > len(r.members) {
		n = len(r.members)
	}
	h := keyPoint(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int32, 0, n)
	seen := make(map[int32]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	return out
}
