package shard

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

// testKeys returns n synthetic job keys shaped like the serve tier's
// real ones: hex SHA-256 content addresses.
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		sum := sha256.Sum256([]byte(fmt.Sprintf("job-%d", i)))
		keys[i] = hex.EncodeToString(sum[:])
	}
	return keys
}

func TestRingRejectsBadMembers(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("NewRing(nil) must fail")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("NewRing with an empty member must fail")
	}
}

func TestRingDeduplicatesMembers(t *testing.T) {
	r, err := NewRing([]string{"b", "a", "b", "a"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	got := r.Members()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Members() = %v, want [a b]", got)
	}
}

// TestRingDeterministicAcrossOrder asserts the placement contract the
// router relies on: two routers configured with the same shard set in
// any order compute the same owner for every key.
func TestRingDeterministicAcrossOrder(t *testing.T) {
	members := []string{"10.0.0.1:8080", "10.0.0.2:8080", "10.0.0.3:8080", "10.0.0.4:8080"}
	shuffled := []string{"10.0.0.3:8080", "10.0.0.1:8080", "10.0.0.4:8080", "10.0.0.2:8080"}
	a, err := NewRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(shuffled, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range testKeys(2000) {
		if ao, bo := a.Owner(key), b.Owner(key); ao != bo {
			t.Fatalf("key %s: owner %q vs %q across member orderings", key, ao, bo)
		}
	}
}

// TestRingOwnersDistinctAndStable asserts the preference list starts at
// the owner, never repeats a member, and is capped at the member count.
func TestRingOwnersDistinctAndStable(t *testing.T) {
	r, err := NewRing([]string{"a", "b", "c"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range testKeys(500) {
		owners := r.Owners(key, 0)
		if len(owners) != 3 {
			t.Fatalf("Owners(%s, 0) = %v, want all 3 members", key, owners)
		}
		if owners[0] != r.Owner(key) {
			t.Fatalf("Owners[0] %q != Owner %q", owners[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, m := range owners {
			if seen[m] {
				t.Fatalf("Owners(%s) repeats %q: %v", key, m, owners)
			}
			seen[m] = true
		}
		if two := r.Owners(key, 2); len(two) != 2 || two[0] != owners[0] || two[1] != owners[1] {
			t.Fatalf("Owners(%s, 2) = %v, want prefix of %v", key, two, owners)
		}
	}
}

// TestRingBalance asserts no shard owns a grossly unfair share of the
// key space: with 128 vnodes per member every shard should land within
// a factor of two of fair share over a large key sample.
func TestRingBalance(t *testing.T) {
	members := []string{"s1", "s2", "s3", "s4"}
	r, err := NewRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	keys := testKeys(20000)
	for _, key := range keys {
		counts[r.Owner(key)]++
	}
	fair := float64(len(keys)) / float64(len(members))
	for _, m := range members {
		share := float64(counts[m])
		if share < fair/2 || share > fair*2 {
			t.Errorf("member %s owns %d keys, fair share %.0f (counts %v)", m, counts[m], fair, counts)
		}
	}
}

// TestRingRebalanceBound is the consistent-hashing property: growing
// the ring from N to N+1 members reassigns roughly 1/(N+1) of the keys
// and never moves a key between two pre-existing members.
func TestRingRebalanceBound(t *testing.T) {
	old := []string{"s1", "s2", "s3", "s4"}
	grown := append(append([]string(nil), old...), "s5")
	before, err := NewRing(old, 0)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing(grown, 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(20000)
	moved := 0
	for _, key := range keys {
		a, b := before.Owner(key), after.Owner(key)
		if a == b {
			continue
		}
		if b != "s5" {
			t.Fatalf("key %s moved between pre-existing members %s -> %s", key, a, b)
		}
		moved++
	}
	frac := float64(moved) / float64(len(keys))
	ideal := 1.0 / float64(len(grown))
	if frac > ideal*1.5 {
		t.Errorf("adding one member moved %.1f%% of keys, want <= ~%.1f%% (1/N with slack)",
			100*frac, 100*ideal*1.5)
	}
	if moved == 0 {
		t.Error("adding a member moved no keys at all")
	}
}

// TestKeyPointHexAndFallback asserts both placement paths are
// deterministic: a well-formed hex job key maps straight from its
// digest bytes, and a malformed id still lands somewhere stable.
func TestKeyPointHexAndFallback(t *testing.T) {
	hexKey := "00ff00ff00ff00ff" + "aa"
	if got, want := keyPoint(hexKey), uint64(0x00ff00ff00ff00ff); got != want {
		t.Fatalf("keyPoint(hex) = %#x, want %#x", got, want)
	}
	if keyPoint("not-a-hex-id") != keyPoint("not-a-hex-id") {
		t.Fatal("fallback placement must be deterministic")
	}
	if keyPoint("not-a-hex-id") == keyPoint("another-id") {
		t.Fatal("distinct ids should land on distinct points")
	}
}
