package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"obfuscade/internal/obs"
)

// Metrics federation: the router scrapes every shard's /metrics.json
// concurrently under a bounded timeout and serves the cluster-wide
// view from its own port, so one scrape (human or Prometheus) covers
// the whole cluster without enumerating shard addresses.
//
// Two renderings share one scrape pass:
//
//	GET /cluster/metrics.json — per-shard snapshots plus the merged
//	cluster snapshot as JSON, with a stale flag when any shard could
//	not answer in time.
//	GET /cluster/metrics — Prometheus text: every shard's series
//	labeled shard="host:port", then the cluster sums under the
//	obfuscade_cluster_ namespace so a federated scrape never double
//	counts a series.

var (
	mScrapes      = obs.Default().Counter("router.federate.scrapes")
	mScrapeErrors = obs.Default().Counter("router.federate.scrape.errors")
)

// maxMetricsBody bounds one shard's metrics payload.
const maxMetricsBody = 4 << 20

// clusterMetrics is the body of GET /cluster/metrics.json.
type clusterMetrics struct {
	// Cluster is the sum of every scraped shard's snapshot.
	Cluster obs.Snapshot `json:"cluster"`
	// Shards holds each answering shard's own snapshot.
	Shards map[string]obs.Snapshot `json:"shards"`
	// Errors records the shards that failed to answer, by address.
	Errors map[string]string `json:"errors,omitempty"`
	// Stale is true when at least one shard is missing from Cluster —
	// the sums then undercount the cluster.
	Stale bool `json:"stale"`
	// ScrapedAt stamps the scrape.
	ScrapedAt string `json:"scraped_at"`
}

// scrapeShards fetches /metrics.json from every ring member
// concurrently, each attempt bounded by the router's scrape timeout.
// Ejected shards are still scraped: a shard that is draining (503 on
// /healthz) still answers its debug surface, and its counters are part
// of the cluster's history.
func (rt *Router) scrapeShards(ctx context.Context) (map[string]obs.Snapshot, map[string]string) {
	mScrapes.Inc()
	members := rt.ring.Members()
	snaps := make(map[string]obs.Snapshot, len(members))
	errs := map[string]string{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, m := range members {
		wg.Add(1)
		go func(shard string) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, rt.scrapeLimit)
			defer cancel()
			snap, err := rt.scrapeOne(sctx, shard)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				mScrapeErrors.Inc()
				errs[shard] = err.Error()
				return
			}
			snaps[shard] = snap
		}(m)
	}
	wg.Wait()
	return snaps, errs
}

func (rt *Router) scrapeOne(ctx context.Context, shard string) (obs.Snapshot, error) {
	resp, err := rt.send(ctx, http.MethodGet, shard, "/metrics.json", "", nil)
	if err != nil {
		return obs.Snapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return obs.Snapshot{}, fmt.Errorf("shard: %s answered %d to a metrics scrape", shard, resp.StatusCode)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxMetricsBody)).Decode(&snap); err != nil {
		return obs.Snapshot{}, fmt.Errorf("shard: decoding metrics from %s: %w", shard, err)
	}
	return snap, nil
}

// federate runs one scrape pass and folds it into the JSON view.
func (rt *Router) federate(ctx context.Context) clusterMetrics {
	snaps, errs := rt.scrapeShards(ctx)
	ordered := make([]obs.Snapshot, 0, len(snaps))
	for _, addr := range sortedKeys(snaps) {
		ordered = append(ordered, snaps[addr])
	}
	out := clusterMetrics{
		Cluster:   obs.MergeSnapshots(ordered...),
		Shards:    snaps,
		Stale:     len(errs) > 0,
		ScrapedAt: time.Now().UTC().Format(time.RFC3339Nano),
	}
	if len(errs) > 0 {
		out.Errors = errs
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (rt *Router) handleClusterMetricsJSON(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rt.federate(r.Context()))
}

// handleClusterMetricsProm renders the same scrape as Prometheus text:
// per-shard series first (shard label, shards in address order), then
// the cluster sums under the obfuscade_cluster_ namespace. A failed
// shard is reported as the obfuscade_cluster_federate_missing_shards
// gauge instead of silently shrinking the sums.
func (rt *Router) handleClusterMetricsProm(w http.ResponseWriter, r *http.Request) {
	view := rt.federate(r.Context())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for _, addr := range sortedKeys(view.Shards) {
		snap := view.Shards[addr]
		if err := snap.WritePrometheusLabeled(w, "obfuscade_", [][2]string{{"shard", addr}}); err != nil {
			return
		}
	}
	if err := view.Cluster.WritePrometheusLabeled(w, "obfuscade_cluster_", nil); err != nil {
		return
	}
	missing := "# TYPE obfuscade_cluster_federate_missing_shards gauge\n" +
		fmt.Sprintf("obfuscade_cluster_federate_missing_shards %d\n", len(view.Errors))
	io.WriteString(w, missing)
}

// ringShard is one member's entry in GET /cluster/ring.
type ringShard struct {
	Addr      string `json:"addr"`
	State     string `json:"state"` // "ok" or "ejected"
	LastProbe string `json:"last_probe,omitempty"`
	VNodes    int    `json:"vnodes"`
}

// handleClusterRing snapshots ring membership: every shard's address,
// routability, last health-probe time and vnode count — the operator's
// answer to "what does this router think the cluster looks like".
func (rt *Router) handleClusterRing(w http.ResponseWriter, _ *http.Request) {
	members := rt.ring.Members()
	vnodes := rt.ring.VirtualNodes()
	rt.mu.Lock()
	shards := make([]ringShard, 0, len(members))
	ejected := 0
	for _, m := range members {
		entry := ringShard{Addr: m, State: "ok", VNodes: vnodes}
		if rt.down[m] {
			entry.State = "ejected"
			ejected++
		}
		if t, ok := rt.lastProbe[m]; ok {
			entry.LastProbe = t.UTC().Format(time.RFC3339Nano)
		}
		shards = append(shards, entry)
	}
	rt.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"role":             "router",
		"shards":           shards,
		"shards_total":     len(members),
		"shards_ejected":   ejected,
		"vnodes_per_shard": vnodes,
	})
}
