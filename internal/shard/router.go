package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"obfuscade/internal/obs"
	"obfuscade/internal/serve"
	"obfuscade/internal/trace"
)

// maxRequestBytes mirrors the serve tier's submission bound: requests
// are small parameter records, never geometry.
const maxRequestBytes = 1 << 20

// Defaults for RouterOptions' zero values.
const (
	// DefaultHedgeAfter is the read-latency budget before a hedge fires
	// at the next ring replica: generous against a warm cache hit
	// (microseconds to milliseconds) yet far below a pipeline run, so
	// hedges fire on genuinely stuck shards, not on routine work.
	DefaultHedgeAfter = 250 * time.Millisecond
	// DefaultProbeInterval is the /healthz polling period.
	DefaultProbeInterval = 1 * time.Second
	// DefaultProbeTimeout bounds one health probe round trip.
	DefaultProbeTimeout = 2 * time.Second
	// DefaultScrapeTimeout bounds one shard scrape during metrics
	// federation.
	DefaultScrapeTimeout = 2 * time.Second
)

var (
	mRequests    = obs.Default().Counter("router.requests")
	mBatchReqs   = obs.Default().Counter("router.batch.requests")
	mSubBatches  = obs.Default().Counter("router.batch.subbatches")
	mProxyErrors = obs.Default().Counter("router.proxy.errors")
	mHedgeFired  = obs.Default().Counter("router.hedge.fired")
	mHedgeWon    = obs.Default().Counter("router.hedge.won")
	mEjected     = obs.Default().Counter("router.shard.ejected")
	mRejoined    = obs.Default().Counter("router.shard.rejoined")
	gHealthy     = obs.Default().Gauge("router.shards.healthy")
)

// RouterOptions configures a Router.
type RouterOptions struct {
	// Addr is the listen address ("127.0.0.1:0" picks a free port).
	Addr string
	// Shards are the serve-tier instances to route across, as host:port
	// addresses (a http:// prefix is accepted and stripped).
	Shards []string
	// VirtualNodes is the per-shard vnode count (<= 0 means
	// DefaultVirtualNodes).
	VirtualNodes int
	// HedgeAfter is how long a read waits on the owning shard before a
	// duplicate fires at the next ring replica; first success wins and
	// the loser is cancelled. 0 means DefaultHedgeAfter; negative
	// disables hedging.
	HedgeAfter time.Duration
	// ProbeInterval is the /healthz polling period (0 means
	// DefaultProbeInterval; negative disables active probing — shards
	// are then ejected only on proxy failures and never rejoin).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round trip (<= 0 means
	// DefaultProbeTimeout).
	ProbeTimeout time.Duration
	// ScrapeTimeout bounds one shard scrape of the /cluster/metrics
	// federation endpoints (<= 0 means DefaultScrapeTimeout). A shard
	// that cannot answer within it is reported absent and the federated
	// snapshot flagged stale rather than blocking the whole scrape.
	ScrapeTimeout time.Duration
	// AccessLog, when non-nil, receives one NDJSON access-log line per
	// routed request (serve.AccessEntry with role "router").
	AccessLog io.Writer
	// Client overrides the proxy HTTP client (tests); nil builds one
	// with connection pooling per shard.
	Client *http.Client
}

// Router is the thin scale-out tier in front of N serve instances: it
// owns no cache and runs no pipeline, it just places every job key on
// its owning shard via the consistent-hash ring and moves bytes. It
// shares the debug surface (/metrics, /trace, /debug/pprof) on its
// port, so a request is attributable end to end: router span → shard
// span → pipeline stages.
type Router struct {
	ring        *Ring
	client      *http.Client
	http        *trace.DebugServer
	accessLog   *serve.AccessLogger // nil when access logging is off
	hedgeAfter  time.Duration
	probeEvery  time.Duration
	probeLimit  time.Duration
	scrapeLimit time.Duration

	probeCancel context.CancelFunc
	probeDone   chan struct{}

	mu        sync.Mutex
	down      map[string]bool      // shards currently ejected from routing
	lastProbe map[string]time.Time // most recent health probe per shard
}

// StartRouter builds the ring, mounts the proxy routes on the shared
// debug mux, binds the listener synchronously, and begins health
// probing. All shards start as routable; the first probe round corrects
// that within ProbeInterval.
func StartRouter(opts RouterOptions) (*Router, error) {
	members := make([]string, len(opts.Shards))
	for i, s := range opts.Shards {
		members[i] = trimScheme(s)
	}
	ring, err := NewRing(members, opts.VirtualNodes)
	if err != nil {
		return nil, err
	}
	hedge := opts.HedgeAfter
	if hedge == 0 {
		hedge = DefaultHedgeAfter
	}
	probeEvery := opts.ProbeInterval
	if probeEvery == 0 {
		probeEvery = DefaultProbeInterval
	}
	probeLimit := opts.ProbeTimeout
	if probeLimit <= 0 {
		probeLimit = DefaultProbeTimeout
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	scrapeLimit := opts.ScrapeTimeout
	if scrapeLimit <= 0 {
		scrapeLimit = DefaultScrapeTimeout
	}
	rt := &Router{
		ring:        ring,
		client:      client,
		hedgeAfter:  hedge,
		probeEvery:  probeEvery,
		probeLimit:  probeLimit,
		scrapeLimit: scrapeLimit,
		down:        map[string]bool{},
		lastProbe:   map[string]time.Time{},
		probeDone:   make(chan struct{}),
	}
	if opts.AccessLog != nil {
		rt.accessLog = serve.NewAccessLogger(opts.AccessLog)
	}
	gHealthy.Set(int64(len(ring.Members())))

	mux := trace.NewDebugMux(obs.Default(), trace.Default())
	mux.HandleFunc("POST /jobs", rt.handleSubmit)
	mux.HandleFunc("POST /jobs/batch", rt.handleBatch)
	mux.HandleFunc("GET /jobs/{id}", rt.handleRead)
	mux.HandleFunc("GET /jobs/{id}/stl", rt.handleRead)
	mux.HandleFunc("GET /jobs/{id}/manifest", rt.handleRead)
	mux.HandleFunc("POST /sanitize", rt.handleSanitize)
	mux.HandleFunc("GET /sanitize/{id}/stl", rt.handleRead)
	mux.HandleFunc("GET /healthz", rt.handleHealth)
	mux.HandleFunc("GET /cluster/metrics.json", rt.handleClusterMetricsJSON)
	mux.HandleFunc("GET /cluster/metrics", rt.handleClusterMetricsProm)
	mux.HandleFunc("GET /cluster/ring", rt.handleClusterRing)
	ds, err := trace.StartServer(opts.Addr, serve.WithObservability(mux, "router", rt.accessLog))
	if err != nil {
		return nil, err
	}
	rt.http = ds

	probeCtx, cancel := context.WithCancel(context.Background())
	rt.probeCancel = cancel
	if opts.ProbeInterval >= 0 {
		go rt.probeLoop(probeCtx)
	} else {
		close(rt.probeDone)
	}
	return rt, nil
}

func trimScheme(s string) string {
	for _, p := range []string{"http://", "https://"} {
		if len(s) > len(p) && s[:len(p)] == p {
			return s[len(p):]
		}
	}
	return s
}

// Addr returns the bound listen address.
func (rt *Router) Addr() string { return rt.http.Addr() }

// URL returns the router's base URL.
func (rt *Router) URL() string { return rt.http.URL() }

// Ring exposes the placement ring (tests and the saturation benchmark).
func (rt *Router) Ring() *Ring { return rt.ring }

// Close stops health probing and the listener. The shards themselves
// are independent processes and are left running.
func (rt *Router) Close() error {
	rt.probeCancel()
	<-rt.probeDone
	err := rt.http.Close()
	rt.accessLog.Close()
	rt.client.CloseIdleConnections()
	return err
}

// Shutdown stops probing and drains the listener gracefully, flushing
// the access log once the last in-flight request has been logged.
func (rt *Router) Shutdown(ctx context.Context) error {
	rt.probeCancel()
	<-rt.probeDone
	err := rt.http.Shutdown(ctx)
	if ferr := rt.accessLog.Close(); err == nil {
		err = ferr
	}
	rt.client.CloseIdleConnections()
	return err
}

// ---- shard health ----------------------------------------------------

// probeLoop polls every shard's /healthz: 200 keeps (or rejoins) it on
// the routing table, anything else — including the serve tier's 503
// "draining" — ejects it until it answers 200 again.
func (rt *Router) probeLoop(ctx context.Context) {
	defer close(rt.probeDone)
	t := time.NewTicker(rt.probeEvery)
	defer t.Stop()
	for {
		rt.probeOnce(ctx)
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

func (rt *Router) probeOnce(ctx context.Context) {
	for _, m := range rt.ring.Members() {
		pctx, cancel := context.WithTimeout(ctx, rt.probeLimit)
		resp, err := rt.send(pctx, http.MethodGet, m, "/healthz", "", nil)
		healthy := err == nil && resp.StatusCode == http.StatusOK
		if resp != nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
		}
		cancel()
		if ctx.Err() != nil {
			return
		}
		rt.mu.Lock()
		rt.lastProbe[m] = time.Now()
		rt.mu.Unlock()
		rt.setHealth(m, healthy)
	}
}

// setHealth records a shard's routability, counting eject/rejoin
// transitions exactly once per edge.
func (rt *Router) setHealth(shard string, healthy bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if healthy == !rt.down[shard] {
		return
	}
	if healthy {
		delete(rt.down, shard)
		mRejoined.Inc()
	} else {
		rt.down[shard] = true
		mEjected.Inc()
	}
	gHealthy.Set(int64(len(rt.ring.Members()) - len(rt.down)))
}

// noteFailure ejects a shard after a transport-level proxy failure —
// passive detection, so a crashed shard stops receiving traffic before
// the next probe round. The probe loop rejoins it when it recovers.
func (rt *Router) noteFailure(shard string, err error) {
	mProxyErrors.Inc()
	if errors.Is(err, context.Canceled) {
		// A cancelled hedge loser or a client that went away says nothing
		// about the shard's health.
		return
	}
	rt.setHealth(shard, false)
}

// aliveOwners returns up to n routable members in ring preference
// order for key. When every owner is ejected it falls back to the full
// preference list: routing into a possibly-dead shard and failing over
// on error beats refusing traffic on stale health data.
func (rt *Router) aliveOwners(key string, n int) []string {
	all := rt.ring.Owners(key, 0)
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]string, 0, n)
	for _, m := range all {
		if !rt.down[m] {
			out = append(out, m)
			if len(out) == n {
				break
			}
		}
	}
	if len(out) == 0 {
		if n > len(all) {
			n = len(all)
		}
		out = all[:n]
	}
	return out
}

// ---- proxy plumbing --------------------------------------------------

// send issues one proxied request to a shard, stamping it with the
// trace context and request ID carried by ctx so the shard's spans and
// access-log line join the router's under one trace. The caller owns
// the response body.
func (rt *Router) send(ctx context.Context, method, shard, path, query string, body []byte) (*http.Response, error) {
	u := "http://" + shard + path
	if query != "" {
		u += "?" + query
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if h := trace.OutgoingTraceHeader(ctx); h != "" {
		req.Header.Set(trace.HeaderTrace, h)
	}
	if id := trace.RequestIDFrom(ctx); id != "" {
		req.Header.Set(trace.HeaderRequestID, id)
	}
	return rt.client.Do(req)
}

// requestIDHeader is trace.HeaderRequestID in the canonical form
// http.Header stores it under.
var requestIDHeader = http.CanonicalHeaderKey(trace.HeaderRequestID)

// copyResponse relays a shard response: status, headers (including
// Retry-After on a shed 429 and X-Stl-Sha256 on artifacts) and body.
// The shard's X-Request-ID echo is dropped — the router's middleware
// already set the same ID on the response, and for a hedged read the
// winner's echo would otherwise duplicate the header.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		if k == requestIDHeader {
			continue
		}
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// ---- submissions -----------------------------------------------------

// handleSubmit proxies POST /jobs to the owning shard. The body is
// decoded only to compute the placement key; the original bytes are
// forwarded so the shard sees exactly what the client sent. A shard
// that cannot be reached (transport error) or is draining (503) is
// ejected and the next ring replica tried, so a rolling restart drains
// without bouncing client requests.
func (rt *Router) handleSubmit(w http.ResponseWriter, r *http.Request) {
	mRequests.Inc()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("shard: reading request: %w", err))
		return
	}
	norm, err := normalizeBody(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key := string(norm.CacheKey())
	ctx, sp := trace.StartSpan(r.Context(), "router", "jobs", trace.A("key", key))
	defer sp.End()
	resp, shard, err := rt.forwardWrite(ctx, "/jobs", r.URL.RawQuery, body, key)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	sp.SetArg("shard", shard)
	serve.AnnotateShard(ctx, shard)
	copyResponse(w, resp)
}

// handleSanitize proxies POST /sanitize to the shard that owns the
// body's content address. The placement key is the serve tier's own
// SanitizeKey, so a repeated upload of the same file lands on the
// shard that already caches its sanitized artifact, and the returned
// stl_url resolves through the router's hedged-read path.
func (rt *Router) handleSanitize(w http.ResponseWriter, r *http.Request) {
	mRequests.Inc()
	quantum, err := serve.ParseSanitizeQuantum(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, serve.MaxSanitizeBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("shard: sanitize body exceeds %d bytes", serve.MaxSanitizeBytes))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("shard: reading sanitize body: %w", err))
		return
	}
	key := string(serve.SanitizeKey(body, quantum))
	ctx, sp := trace.StartSpan(r.Context(), "router", "sanitize", trace.A("key", key))
	defer sp.End()
	resp, shard, err := rt.forwardWrite(ctx, "/sanitize", r.URL.RawQuery, body, key)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	sp.SetArg("shard", shard)
	serve.AnnotateShard(ctx, shard)
	copyResponse(w, resp)
}

// normalizeBody parses a submission exactly like the serve tier does,
// yielding the canonical request whose cache key is the placement key.
func normalizeBody(body []byte) (serve.Request, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req serve.Request
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		return serve.Request{}, fmt.Errorf("shard: decoding request: %w", err)
	}
	return req.Normalize()
}

// forwardWrite sends a submission to the key's owner, failing over
// clockwise around the ring on transport errors and 503s.
func (rt *Router) forwardWrite(ctx context.Context, path, query string, body []byte, key string) (*http.Response, string, error) {
	cands := rt.aliveOwners(key, len(rt.ring.Members()))
	for _, shard := range cands {
		resp, err := rt.send(ctx, http.MethodPost, shard, path, query, body)
		if err != nil {
			if ctx.Err() != nil {
				return nil, "", ctx.Err()
			}
			rt.noteFailure(shard, err)
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			// Draining: take it out of rotation and try the next replica.
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			rt.setHealth(shard, false)
			continue
		}
		return resp, shard, nil
	}
	return nil, "", errors.New("shard: no routable shard for key " + key)
}

// ---- batch split / merge ---------------------------------------------

// batchRequest and batchResponse mirror the serve tier's wire format;
// item payloads stay opaque (json.RawMessage) so the router never has
// to re-encode a shard's answer.
type batchRequest struct {
	Jobs []serve.Request `json:"jobs"`
}

type rawBatchResponse struct {
	Results []json.RawMessage `json:"results"`
}

// subBatch is the slice of one incoming batch owned by a single shard.
type subBatch struct {
	shard   string
	jobs    []serve.Request
	indexes []int // positions of jobs in the original submission order
}

// handleBatch splits a quality-matrix sweep across the ring: each job
// goes to its key's owner, the per-shard sub-batches run concurrently,
// and the per-item statuses are reassembled in submission order. If any
// shard sheds its sub-batch (429), the whole batch answers 429 with the
// largest Retry-After hint — the client retries the sweep as one unit.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	mRequests.Inc()
	mBatchReqs.Inc()
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	var batch batchRequest
	if err := dec.Decode(&batch); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("shard: decoding batch: %w", err))
		return
	}
	if len(batch.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("shard: empty batch"))
		return
	}
	ctx, sp := trace.StartSpan(r.Context(), "router", "batch",
		trace.A("jobs", strconv.Itoa(len(batch.Jobs))))
	defer sp.End()

	// Split: normalize each job, place it, and group by owner while
	// remembering where each job sat in the submission order.
	subs := map[string]*subBatch{}
	var order []string // deterministic fan-out order
	for i, job := range batch.Jobs {
		norm, err := job.Normalize()
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("shard: batch job %d: %w", i, err))
			return
		}
		owners := rt.aliveOwners(string(norm.CacheKey()), 1)
		shard := owners[0]
		sb, ok := subs[shard]
		if !ok {
			sb = &subBatch{shard: shard}
			subs[shard] = sb
			order = append(order, shard)
		}
		sb.jobs = append(sb.jobs, norm)
		sb.indexes = append(sb.indexes, i)
	}
	sp.SetArg("subbatches", strconv.Itoa(len(order)))
	mSubBatches.Add(int64(len(order)))

	// Fan out one sub-batch per shard.
	type subResult struct {
		sb         *subBatch
		status     int
		retryAfter int
		results    []json.RawMessage
		err        error
	}
	resCh := make(chan subResult, len(order))
	for _, shard := range order {
		go func(sb *subBatch) {
			res := subResult{sb: sb}
			defer func() { resCh <- res }()
			body, err := json.Marshal(batchRequest{Jobs: sb.jobs})
			if err != nil {
				res.err = err
				return
			}
			// Sub-batch jobs share an owner but failover can move the
			// whole sub-batch; any key in it names the same candidates.
			resp, _, err := rt.forwardWriteBatch(ctx, body, sb)
			if err != nil {
				res.err = err
				return
			}
			defer resp.Body.Close()
			res.status = resp.StatusCode
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
				res.retryAfter = ra
			}
			if resp.StatusCode != http.StatusOK {
				io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
				return
			}
			var raw rawBatchResponse
			if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
				res.err = fmt.Errorf("shard: decoding sub-batch from %s: %w", sb.shard, err)
				return
			}
			if len(raw.Results) != len(sb.jobs) {
				res.err = fmt.Errorf("shard: %s answered %d results for %d jobs",
					sb.shard, len(raw.Results), len(sb.jobs))
				return
			}
			res.results = raw.Results
		}(subs[shard])
	}

	// Merge: reassemble per-item statuses into submission order.
	merged := make([]json.RawMessage, len(batch.Jobs))
	shedRetry := -1
	var firstErr error
	for range order {
		res := <-resCh
		switch {
		case res.err != nil:
			if firstErr == nil {
				firstErr = res.err
			}
		case res.status == http.StatusTooManyRequests:
			if res.retryAfter > shedRetry {
				shedRetry = res.retryAfter
			}
		case res.status != http.StatusOK:
			if firstErr == nil {
				firstErr = fmt.Errorf("shard: %s answered %d to a sub-batch", res.sb.shard, res.status)
			}
		default:
			for i, raw := range res.results {
				merged[res.sb.indexes[i]] = raw
			}
		}
	}
	switch {
	case shedRetry >= 0:
		// At least one shard shed: the sweep is incomplete, surface the
		// overload to the client with the most conservative hint.
		if shedRetry == 0 {
			shedRetry = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(shedRetry))
		writeError(w, http.StatusTooManyRequests, errors.New("shard: batch shed by an overloaded shard, retry later"))
	case firstErr != nil:
		writeError(w, http.StatusBadGateway, firstErr)
	default:
		writeJSON(w, http.StatusOK, rawBatchResponse{Results: merged})
	}
}

// forwardWriteBatch sends one sub-batch to its shard with the same
// failover walk as single submissions, keyed by the sub-batch's first
// job.
func (rt *Router) forwardWriteBatch(ctx context.Context, body []byte, sb *subBatch) (*http.Response, string, error) {
	return rt.forwardWrite(ctx, "/jobs/batch", "", body, string(sb.jobs[0].CacheKey()))
}

// ---- hedged reads ----------------------------------------------------

// handleRead proxies status, STL and manifest reads to the owning
// shard, hedging against the next ring replica once the latency budget
// expires: whichever attempt answers successfully first wins and the
// loser is cancelled. A non-2xx answer from the owner is authoritative
// (404 unknown job, 409 still running, 500 failed); a non-2xx from the
// hedge is only used when the owner cannot answer at all.
func (rt *Router) handleRead(w http.ResponseWriter, r *http.Request) {
	mRequests.Inc()
	key := r.PathValue("id")
	cands := rt.aliveOwners(key, 2)
	ctx, sp := trace.StartSpan(r.Context(), "router", "read",
		trace.A("key", key), trace.A("path", r.URL.Path))
	defer sp.End()

	resCh := make(chan readAttempt, 2)
	launched, received := 0, 0
	defer func() {
		// Reap the loser so its body (and pooled connection) is released;
		// its context is already cancelled by the deferred cancels below.
		if n := launched - received; n > 0 {
			go func() {
				for i := 0; i < n; i++ {
					if a := <-resCh; a.resp != nil {
						a.resp.Body.Close()
					}
				}
			}()
		}
	}()
	launch := func(shard string, hedge bool) context.CancelFunc {
		actx, cancel := context.WithCancel(ctx)
		launched++
		go func() {
			resp, err := rt.send(actx, http.MethodGet, shard, r.URL.Path, r.URL.RawQuery, nil)
			resCh <- readAttempt{resp: resp, shard: shard, hedge: hedge, err: err}
		}()
		return cancel
	}

	cancelPrimary := launch(cands[0], false)
	defer cancelPrimary()
	var cancelHedge context.CancelFunc
	defer func() {
		if cancelHedge != nil {
			cancelHedge()
		}
	}()
	fireHedge := func() {
		mHedgeFired.Inc()
		sp.SetArg("hedged", "1")
		serve.AnnotateHedge(ctx, true, false)
		cancelHedge = launch(cands[1], true)
	}

	var timer <-chan time.Time
	if len(cands) > 1 && rt.hedgeAfter > 0 {
		t := time.NewTimer(rt.hedgeAfter)
		defer t.Stop()
		timer = t.C
	}

	pending := 1
	primaryDead := false
	var fallback *readAttempt // non-2xx hedge answer held while the owner is still in flight
	for {
		select {
		case <-timer:
			timer = nil
			fireHedge()
			pending++
		case a := <-resCh:
			received++
			pending--
			if a.err != nil {
				rt.noteFailure(a.shard, a.err)
				if ctx.Err() != nil {
					return // client gone; nothing left to answer
				}
				if !a.hedge {
					primaryDead = true
					if fallback != nil {
						rt.serveRead(w, ctx, sp, *fallback)
						return
					}
				}
				if cancelHedge == nil && len(cands) > 1 {
					// The primary failed before the budget expired: fail over
					// to the replica immediately instead of waiting.
					timer = nil
					fireHedge()
					pending++
					continue
				}
				if pending == 0 {
					writeError(w, http.StatusBadGateway,
						fmt.Errorf("shard: every replica failed for key %s: %w", key, a.err))
					return
				}
				continue
			}
			if a.resp.StatusCode < 300 || !a.hedge || primaryDead {
				rt.serveRead(w, ctx, sp, a)
				return
			}
			// Non-2xx hedge while the owner is still alive: the replica
			// may simply never have seen this job. Hold it and wait.
			if fallback == nil {
				fallback = &a
			} else {
				a.resp.Body.Close()
			}
			if pending == 0 {
				rt.serveRead(w, ctx, sp, *fallback)
				return
			}
		case <-ctx.Done():
			return
		}
	}
}

// readAttempt is one in-flight (or completed) replica fetch of a
// hedged read.
type readAttempt struct {
	resp  *http.Response
	shard string
	hedge bool
	err   error
}

// serveRead relays the winning attempt and attributes it.
func (rt *Router) serveRead(w http.ResponseWriter, ctx context.Context, sp *trace.Span, a readAttempt) {
	if a.hedge {
		mHedgeWon.Inc()
		sp.SetArg("hedge_won", "1")
		serve.AnnotateHedge(ctx, true, true)
	}
	sp.SetArg("shard", a.shard)
	serve.AnnotateShard(ctx, a.shard)
	copyResponse(w, a.resp)
}

// ---- router health ---------------------------------------------------

// handleHealth reports the router's view of the ring: per-shard
// routability, the healthy count, and total/ejected membership counts
// for dashboards. The status-code semantics are unchanged from the
// pre-cluster-observability contract: with zero routable shards the
// router answers 503 so an outer balancer fails away from it, and 200
// otherwise.
func (rt *Router) handleHealth(w http.ResponseWriter, _ *http.Request) {
	rt.mu.Lock()
	shards := map[string]string{}
	healthy := 0
	total := len(rt.ring.Members())
	for _, m := range rt.ring.Members() {
		if rt.down[m] {
			shards[m] = "down"
		} else {
			shards[m] = "ok"
			healthy++
		}
	}
	rt.mu.Unlock()
	body := map[string]any{
		"status":         "ok",
		"role":           "router",
		"healthy":        healthy,
		"shards":         shards,
		"shards_total":   total,
		"shards_ejected": total - healthy,
	}
	code := http.StatusOK
	if healthy == 0 {
		body["status"] = "no routable shards"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}
