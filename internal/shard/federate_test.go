package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"obfuscade/internal/obs"
	"obfuscade/internal/serve"
	"obfuscade/internal/trace"
)

// fakeMetricsShard is a minimal serve stand-in exposing only the debug
// surface the federation scrapes, with a scriptable snapshot and delay.
type fakeMetricsShard struct {
	addr  string
	srv   *httptest.Server
	mu    sync.Mutex
	snap  obs.Snapshot
	delay time.Duration
}

func newFakeMetricsShard(t *testing.T, snap obs.Snapshot) *fakeMetricsShard {
	t.Helper()
	f := &fakeMetricsShard{snap: snap}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		delay, snap := f.delay, f.snap
		f.mu.Unlock()
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-r.Context().Done():
				return
			}
		}
		data, err := snap.JSON()
		if err != nil {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
	f.srv = httptest.NewServer(mux)
	f.addr = trimScheme(f.srv.URL)
	t.Cleanup(f.srv.Close)
	return f
}

func counterSnap(pairs ...any) obs.Snapshot {
	var s obs.Snapshot
	for i := 0; i < len(pairs); i += 2 {
		s.Counters = append(s.Counters, obs.MetricValue{
			Name: pairs[i].(string), Value: int64(pairs[i+1].(int)),
		})
	}
	return s
}

func startFederationRouter(t *testing.T, scrape time.Duration, shards ...*fakeMetricsShard) *Router {
	t.Helper()
	addrs := make([]string, len(shards))
	for i, f := range shards {
		addrs[i] = f.addr
	}
	rt, err := StartRouter(RouterOptions{
		Addr:          "127.0.0.1:0",
		Shards:        addrs,
		ProbeInterval: -1,
		ScrapeTimeout: scrape,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	return rt
}

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestClusterMetricsFederation pins the happy path over two answering
// shards: per-shard snapshots keyed by address, cluster counters that
// sum the shards, and a Prometheus rendering with shard labels plus the
// cluster namespace.
func TestClusterMetricsFederation(t *testing.T) {
	a := newFakeMetricsShard(t, counterSnap("cache.hits", 3, "serve.requests", 5))
	b := newFakeMetricsShard(t, counterSnap("cache.hits", 9, "serve.requests", 7))
	rt := startFederationRouter(t, 0, a, b)

	var view clusterMetrics
	if err := json.Unmarshal(getBody(t, rt.URL()+"/cluster/metrics.json"), &view); err != nil {
		t.Fatal(err)
	}
	if view.Stale {
		t.Fatalf("both shards answered but view is stale: %+v", view.Errors)
	}
	if len(view.Shards) != 2 {
		t.Fatalf("federated %d shards, want 2", len(view.Shards))
	}
	if v, _ := view.Shards[a.addr].Counter("cache.hits"); v != 3 {
		t.Fatalf("shard %s cache.hits = %d, want 3", a.addr, v)
	}
	if v, _ := view.Shards[b.addr].Counter("cache.hits"); v != 9 {
		t.Fatalf("shard %s cache.hits = %d, want 9", b.addr, v)
	}
	if v, _ := view.Cluster.Counter("cache.hits"); v != 12 {
		t.Fatalf("cluster cache.hits = %d, want 12", v)
	}
	if v, _ := view.Cluster.Counter("serve.requests"); v != 12 {
		t.Fatalf("cluster serve.requests = %d, want 12", v)
	}

	prom := string(getBody(t, rt.URL()+"/cluster/metrics"))
	for _, want := range []string{
		fmt.Sprintf("obfuscade_cache_hits_total{shard=%q} 3", a.addr),
		fmt.Sprintf("obfuscade_cache_hits_total{shard=%q} 9", b.addr),
		"obfuscade_cluster_cache_hits_total 12",
		"obfuscade_cluster_serve_requests_total 12",
		"obfuscade_cluster_federate_missing_shards 0",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prometheus rendering missing %q:\n%s", want, prom)
		}
	}
}

// TestClusterMetricsStaleOnTimeout pins the partial-scrape contract: a
// shard that blows the scrape timeout is reported in errors, the view
// is flagged stale, and the cluster sums cover only the answering
// shards instead of blocking or failing the scrape.
func TestClusterMetricsStaleOnTimeout(t *testing.T) {
	fast := newFakeMetricsShard(t, counterSnap("cache.hits", 4))
	slow := newFakeMetricsShard(t, counterSnap("cache.hits", 100))
	slow.mu.Lock()
	slow.delay = 2 * time.Second
	slow.mu.Unlock()
	rt := startFederationRouter(t, 50*time.Millisecond, fast, slow)

	start := time.Now()
	var view clusterMetrics
	if err := json.Unmarshal(getBody(t, rt.URL()+"/cluster/metrics.json"), &view); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("scrape took %v; the timeout did not bound the slow shard", elapsed)
	}
	if !view.Stale {
		t.Fatal("slow shard missing but view not flagged stale")
	}
	if _, ok := view.Errors[slow.addr]; !ok {
		t.Fatalf("errors %v missing slow shard %s", view.Errors, slow.addr)
	}
	if _, ok := view.Shards[slow.addr]; ok {
		t.Fatal("slow shard present in snapshots despite timing out")
	}
	if v, _ := view.Cluster.Counter("cache.hits"); v != 4 {
		t.Fatalf("cluster cache.hits = %d, want only the fast shard's 4", v)
	}
	prom := string(getBody(t, rt.URL()+"/cluster/metrics"))
	if !strings.Contains(prom, "obfuscade_cluster_federate_missing_shards 1") {
		t.Errorf("prometheus rendering does not report the missing shard:\n%s", prom)
	}
}

// TestClusterRing pins the membership snapshot: per-shard state follows
// ejection, and counts plus vnode sizing are reported.
func TestClusterRing(t *testing.T) {
	a := newFakeMetricsShard(t, obs.Snapshot{})
	b := newFakeMetricsShard(t, obs.Snapshot{})
	rt := startFederationRouter(t, 0, a, b)
	rt.setHealth(b.addr, false)

	var view struct {
		Shards []ringShard `json:"shards"`
		Total  int         `json:"shards_total"`
		Down   int         `json:"shards_ejected"`
		VNodes int         `json:"vnodes_per_shard"`
	}
	if err := json.Unmarshal(getBody(t, rt.URL()+"/cluster/ring"), &view); err != nil {
		t.Fatal(err)
	}
	if view.Total != 2 || view.Down != 1 || view.VNodes != DefaultVirtualNodes {
		t.Fatalf("ring view = %+v", view)
	}
	states := map[string]string{}
	for _, s := range view.Shards {
		states[s.Addr] = s.State
		if s.VNodes != DefaultVirtualNodes {
			t.Fatalf("shard %s vnodes = %d", s.Addr, s.VNodes)
		}
	}
	if states[a.addr] != "ok" || states[b.addr] != "ejected" {
		t.Fatalf("states = %v", states)
	}
}

// syncBuf is a goroutine-safe buffer for capturing access logs written
// by server goroutines while the test reads them.
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// waitFor polls until cond returns true or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestRouterEndToEndTracePropagation drives the acceptance path: a
// routed POST /jobs?wait=1 against a router over two real serve shards,
// all with access logging on. The shard-side serve/job span must parent
// under the router's proxy span with the same trace ID, the client's
// X-Request-ID must echo exactly once, and the router's and the owning
// shard's access-log entries must carry matching request and trace IDs.
func TestRouterEndToEndTracePropagation(t *testing.T) {
	var shardLog1, shardLog2, routerLog syncBuf
	s1, err := serve.Start(serve.Options{Addr: "127.0.0.1:0", AccessLog: &shardLog1})
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := serve.Start(serve.Options{Addr: "127.0.0.1:0", AccessLog: &shardLog2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rt, err := StartRouter(RouterOptions{
		Addr:          "127.0.0.1:0",
		Shards:        []string{s1.Addr(), s2.Addr()},
		ProbeInterval: -1,
		AccessLog:     &routerLog,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	logs := map[string]*syncBuf{s1.Addr(): &shardLog1, s2.Addr(): &shardLog2}

	req, err := http.NewRequest("POST", rt.URL()+"/jobs?wait=1", strings.NewReader(`{"seed": 777}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(trace.HeaderRequestID, "e2e-req-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ids := resp.Header.Values(http.CanonicalHeaderKey(trace.HeaderRequestID)); len(ids) != 1 || ids[0] != "e2e-req-1" {
		t.Fatalf("echoed request ids = %v, want exactly [e2e-req-1]", ids)
	}

	// The router's proxy span and the shard's job span share one process
	// recorder in this test, but the linkage is the real propagated one:
	// the shard adopted X-Obfuscade-Trace built from the router's span.
	var routerSpan, jobSpan *trace.Event
	waitFor(t, "router and shard spans", func() bool {
		routerSpan, jobSpan = nil, nil
		events := trace.Default().Events()
		for i := range events {
			e := &events[i]
			if e.Cat == "router" && e.Name == "jobs" && hasArg(e, "key", st.ID) {
				routerSpan = e
			}
			if e.Cat == "serve" && e.Name == "job" && hasArg(e, "key", st.ID) {
				jobSpan = e
			}
		}
		return routerSpan != nil && jobSpan != nil
	})
	if routerSpan.Trace == "" || jobSpan.Trace != routerSpan.Trace {
		t.Fatalf("trace ids: router %q, shard %q — must match and be non-empty",
			routerSpan.Trace, jobSpan.Trace)
	}
	if jobSpan.Parent != routerSpan.ID {
		t.Fatalf("shard job span parents under %d, want the router's proxy span %d",
			jobSpan.Parent, routerSpan.ID)
	}

	owner := rt.Ring().Owner(st.ID)
	var routerEntry, shardEntry serve.AccessEntry
	waitFor(t, "access-log entries on both sides", func() bool {
		return findEntry(routerLog.String(), "e2e-req-1", &routerEntry) &&
			findEntry(logs[owner].String(), "e2e-req-1", &shardEntry)
	})
	if routerEntry.Role != "router" || shardEntry.Role != "serve" {
		t.Fatalf("roles = %q/%q", routerEntry.Role, shardEntry.Role)
	}
	if routerEntry.Trace == "" || routerEntry.Trace != shardEntry.Trace {
		t.Fatalf("access-log trace ids: router %q, shard %q — must match",
			routerEntry.Trace, shardEntry.Trace)
	}
	if routerEntry.Trace != routerSpan.Trace {
		t.Fatalf("access-log trace %q != span trace %q", routerEntry.Trace, routerSpan.Trace)
	}
	if routerEntry.Shard != owner {
		t.Fatalf("router access entry shard = %q, want owner %q", routerEntry.Shard, owner)
	}
	if shardEntry.Outcome != "miss" {
		t.Fatalf("shard access entry outcome = %q, want miss", shardEntry.Outcome)
	}
}

func hasArg(e *trace.Event, key, value string) bool {
	for _, a := range e.Args {
		if a.Key == key && a.Value == value {
			return true
		}
	}
	return false
}

// findEntry scans NDJSON access-log lines for the entry with the given
// request ID.
func findEntry(logText, reqID string, out *serve.AccessEntry) bool {
	for _, line := range strings.Split(logText, "\n") {
		if line == "" {
			continue
		}
		var e serve.AccessEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			continue
		}
		if e.RequestID == reqID {
			*out = e
			return true
		}
	}
	return false
}
