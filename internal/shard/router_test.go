package shard

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"obfuscade/internal/geom"
	"obfuscade/internal/mesh"
	"obfuscade/internal/obs"
	"obfuscade/internal/serve"
	"obfuscade/internal/stego"
	"obfuscade/internal/stl"
)

// fakeShard is a scripted stand-in for one serve instance: delays,
// statuses and health are adjustable per test, and every submission is
// recorded so split/merge placement can be asserted.
type fakeShard struct {
	addr string
	srv  *httptest.Server

	mu          sync.Mutex
	readDelay   time.Duration
	readStatus  int
	readBody    string
	postStatus  int
	retryAfter  string
	healthCode  int
	batchStatus int
	seeds       []int64 // seeds received via /jobs/batch, in arrival order
}

func newFakeShard(t *testing.T) *fakeShard {
	t.Helper()
	f := &fakeShard{readStatus: http.StatusOK, postStatus: http.StatusAccepted,
		healthCode: http.StatusOK, batchStatus: http.StatusOK}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		f.mu.Lock()
		code := f.healthCode
		f.mu.Unlock()
		w.WriteHeader(code)
		io.WriteString(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		delay, code, body := f.readDelay, f.readStatus, f.readBody
		f.mu.Unlock()
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-r.Context().Done():
				return // hedged loser: the router cancelled this attempt
			}
		}
		w.WriteHeader(code)
		io.WriteString(w, body)
	})
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		code, ra := f.postStatus, f.retryAfter
		f.mu.Unlock()
		if ra != "" {
			w.Header().Set("Retry-After", ra)
		}
		w.WriteHeader(code)
		fmt.Fprintf(w, `{"shard":%q}`, f.addr)
	})
	mux.HandleFunc("POST /jobs/batch", func(w http.ResponseWriter, r *http.Request) {
		var batch struct {
			Jobs []serve.Request `json:"jobs"`
		}
		if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		f.mu.Lock()
		code, ra := f.batchStatus, f.retryAfter
		for _, j := range batch.Jobs {
			f.seeds = append(f.seeds, j.Seed)
		}
		f.mu.Unlock()
		if code != http.StatusOK {
			if ra != "" {
				w.Header().Set("Retry-After", ra)
			}
			w.WriteHeader(code)
			return
		}
		results := make([]map[string]any, len(batch.Jobs))
		for i, j := range batch.Jobs {
			results[i] = map[string]any{"seed": j.Seed, "shard": f.addr}
		}
		json.NewEncoder(w).Encode(map[string]any{"results": results})
	})
	f.srv = httptest.NewServer(mux)
	f.addr = trimScheme(f.srv.URL)
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeShard) set(fn func(f *fakeShard)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fn(f)
}

// startTestRouter boots a router over the given fakes with probing
// disabled unless a positive interval is passed.
func startTestRouter(t *testing.T, probe time.Duration, hedge time.Duration, shards ...*fakeShard) *Router {
	t.Helper()
	addrs := make([]string, len(shards))
	for i, f := range shards {
		addrs[i] = f.addr
	}
	rt, err := StartRouter(RouterOptions{
		Addr:          "127.0.0.1:0",
		Shards:        addrs,
		HedgeAfter:    hedge,
		ProbeInterval: probe,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	return rt
}

// byAddr resolves ring member addresses back to their fakes.
func byAddr(t *testing.T, shards []*fakeShard, addr string) *fakeShard {
	t.Helper()
	for _, f := range shards {
		if f.addr == addr {
			return f
		}
	}
	t.Fatalf("no fake shard at %s", addr)
	return nil
}

func counterDelta(name string, fn func()) int64 {
	c := obs.Default().Counter(name)
	before := c.Value()
	fn()
	return c.Value() - before
}

// TestRouterHedgesSlowRead pins the hedging contract: once the owning
// shard blows the latency budget, the duplicate read fired at the next
// ring replica wins and the slow attempt is cancelled.
func TestRouterHedgesSlowRead(t *testing.T) {
	a, b := newFakeShard(t), newFakeShard(t)
	shards := []*fakeShard{a, b}
	rt := startTestRouter(t, -1, 25*time.Millisecond, a, b)

	key := testKeys(1)[0]
	owners := rt.Ring().Owners(key, 2)
	primary, replica := byAddr(t, shards, owners[0]), byAddr(t, shards, owners[1])
	primary.set(func(f *fakeShard) { f.readDelay = 2 * time.Second; f.readBody = "primary" })
	replica.set(func(f *fakeShard) { f.readBody = "replica" })

	var body string
	var status int
	elapsed := time.Now()
	won := counterDelta("router.hedge.won", func() {
		fired := counterDelta("router.hedge.fired", func() {
			resp, err := http.Get(rt.URL() + "/jobs/" + key)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			body, status = string(data), resp.StatusCode
		})
		if fired != 1 {
			t.Fatalf("router.hedge.fired delta = %d, want 1", fired)
		}
	})
	if status != http.StatusOK || body != "replica" {
		t.Fatalf("hedged read: status %d body %q, want 200 from replica", status, body)
	}
	if won != 1 {
		t.Fatalf("router.hedge.won delta = %d, want 1", won)
	}
	if d := time.Since(elapsed); d > time.Second {
		t.Fatalf("hedged read took %v; the slow primary was not cut off", d)
	}
}

// TestRouterHedgeDoesNotOverrideOwner asserts a fast non-2xx replica
// answer (the replica has never seen the job) loses to the owner's
// eventual success.
func TestRouterHedgeDoesNotOverrideOwner(t *testing.T) {
	a, b := newFakeShard(t), newFakeShard(t)
	shards := []*fakeShard{a, b}
	rt := startTestRouter(t, -1, 20*time.Millisecond, a, b)

	key := testKeys(2)[1]
	owners := rt.Ring().Owners(key, 2)
	primary, replica := byAddr(t, shards, owners[0]), byAddr(t, shards, owners[1])
	primary.set(func(f *fakeShard) { f.readDelay = 200 * time.Millisecond; f.readBody = "primary" })
	replica.set(func(f *fakeShard) { f.readStatus = http.StatusNotFound; f.readBody = "nope" })

	won := counterDelta("router.hedge.won", func() {
		resp, err := http.Get(rt.URL() + "/jobs/" + key)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK || string(data) != "primary" {
			t.Fatalf("read: status %d body %q, want the owner's 200", resp.StatusCode, string(data))
		}
	})
	if won != 0 {
		t.Fatalf("router.hedge.won delta = %d, want 0 (owner answered)", won)
	}
}

// TestRouterRetryAfterPassThrough asserts a shed shard's 429 and its
// Retry-After hint surface unchanged at the router.
func TestRouterRetryAfterPassThrough(t *testing.T) {
	a := newFakeShard(t)
	a.set(func(f *fakeShard) { f.postStatus = http.StatusTooManyRequests; f.retryAfter = "7" })
	rt := startTestRouter(t, -1, -1, a)

	resp, err := http.Post(rt.URL()+"/jobs?wait=1", "application/json", strings.NewReader(`{"seed": 5}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After = %q, want 7 passed through", got)
	}
}

// seedOwnedBy hunts for a job seed whose cache key the ring places on
// the given member.
func seedOwnedBy(t *testing.T, rt *Router, member string) int64 {
	t.Helper()
	for seed := int64(0); seed < 4096; seed++ {
		norm, err := serve.Request{Seed: seed}.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		if rt.Ring().Owner(string(norm.CacheKey())) == member {
			return seed
		}
	}
	t.Fatal("no seed found for member ", member)
	return 0
}

// TestRouterFailsOverDeadShard asserts a submission keyed to an
// unreachable shard fails over to the next ring replica and the dead
// shard is ejected.
func TestRouterFailsOverDeadShard(t *testing.T) {
	live := newFakeShard(t)
	dead := "127.0.0.1:1" // nothing listens on port 1
	rt, err := StartRouter(RouterOptions{
		Addr:          "127.0.0.1:0",
		Shards:        []string{live.addr, dead},
		ProbeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	seed := seedOwnedBy(t, rt, dead)
	ejected := counterDelta("router.shard.ejected", func() {
		body := fmt.Sprintf(`{"seed": %d}`, seed)
		resp, err := http.Post(rt.URL()+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("failover submit: status %d body %s", resp.StatusCode, data)
		}
		if !bytes.Contains(data, []byte(live.addr)) {
			t.Fatalf("failover submit served by %s, want %s", data, live.addr)
		}
	})
	if ejected != 1 {
		t.Fatalf("router.shard.ejected delta = %d, want 1", ejected)
	}
}

// TestRouterBatchSplitMerge asserts a batch is split per owning shard
// and the per-item answers come back in submission order.
func TestRouterBatchSplitMerge(t *testing.T) {
	a, b := newFakeShard(t), newFakeShard(t)
	shards := []*fakeShard{a, b}
	rt := startTestRouter(t, -1, -1, a, b)

	const n = 8
	var jobs []string
	owners := make([]string, n)
	for seed := 0; seed < n; seed++ {
		norm, err := serve.Request{Seed: int64(seed)}.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		owners[seed] = rt.Ring().Owner(string(norm.CacheKey()))
		jobs = append(jobs, fmt.Sprintf(`{"seed": %d}`, seed))
	}
	body := `{"jobs": [` + strings.Join(jobs, ",") + `]}`
	resp, err := http.Post(rt.URL()+"/jobs/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("batch: status %d body %s", resp.StatusCode, data)
	}
	var merged struct {
		Results []struct {
			Seed  int64  `json:"seed"`
			Shard string `json:"shard"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&merged); err != nil {
		t.Fatal(err)
	}
	if len(merged.Results) != n {
		t.Fatalf("merged %d results, want %d", len(merged.Results), n)
	}
	split := false
	for i, res := range merged.Results {
		if res.Seed != int64(i) {
			t.Fatalf("result %d carries seed %d; merge broke submission order", i, res.Seed)
		}
		if res.Shard != owners[i] {
			t.Fatalf("result %d served by %s, ring owner is %s", i, res.Shard, owners[i])
		}
		if res.Shard != merged.Results[0].Shard {
			split = true
		}
	}
	if !split {
		t.Skip("all 8 seeds landed on one shard; split not exercised (placement-dependent)")
	}
	// Each fake only ever saw seeds it owns.
	for _, f := range shards {
		f.mu.Lock()
		got := append([]int64(nil), f.seeds...)
		f.mu.Unlock()
		for _, seed := range got {
			if owners[seed] != f.addr {
				t.Fatalf("shard %s received seed %d owned by %s", f.addr, seed, owners[seed])
			}
		}
	}
}

// TestRouterBatchShed asserts one overloaded shard sheds the whole
// batch with 429 and the largest Retry-After hint.
func TestRouterBatchShed(t *testing.T) {
	a, b := newFakeShard(t), newFakeShard(t)
	rt := startTestRouter(t, -1, -1, a, b)

	// Find one seed per shard so the batch genuinely splits.
	seedA := seedOwnedBy(t, rt, a.addr)
	seedB := seedOwnedBy(t, rt, b.addr)
	byAddr(t, []*fakeShard{a, b}, b.addr).set(func(f *fakeShard) {
		f.batchStatus = http.StatusTooManyRequests
		f.retryAfter = "5"
	})
	body := fmt.Sprintf(`{"jobs": [{"seed": %d}, {"seed": %d}]}`, seedA, seedB)
	resp, err := http.Post(rt.URL()+"/jobs/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("sharded batch with one shed sub-batch: status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "5" {
		t.Fatalf("Retry-After = %q, want 5 passed through", got)
	}
}

// TestRouterEjectsAndRejoins drives the active prober: a shard
// answering 503 "draining" leaves the routing table and its keys fail
// over; once it answers 200 again it rejoins.
func TestRouterEjectsAndRejoins(t *testing.T) {
	a, b := newFakeShard(t), newFakeShard(t)
	shards := []*fakeShard{a, b}
	rt := startTestRouter(t, 10*time.Millisecond, -1, a, b)

	routerHealth := func() (int, map[string]string) {
		resp, err := http.Get(rt.URL() + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Healthy int               `json:"healthy"`
			Shards  map[string]string `json:"shards"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body.Healthy, body.Shards
	}
	waitHealthy := func(want int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if got, _ := routerHealth(); got == want {
				return
			}
			if time.Now().After(deadline) {
				got, sh := routerHealth()
				t.Fatalf("router never reached %d healthy shards (at %d: %v)", want, got, sh)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	waitHealthy(2)
	victim := byAddr(t, shards, b.addr)
	victim.set(func(f *fakeShard) { f.healthCode = http.StatusServiceUnavailable })
	waitHealthy(1)

	// A key owned by the drained shard now routes to the survivor.
	seed := seedOwnedBy(t, rt, b.addr)
	body := fmt.Sprintf(`{"seed": %d}`, seed)
	resp, err := http.Post(rt.URL()+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || !bytes.Contains(data, []byte(a.addr)) {
		t.Fatalf("drained-shard submit: status %d body %s, want 202 from %s", resp.StatusCode, data, a.addr)
	}

	victim.set(func(f *fakeShard) { f.healthCode = http.StatusOK })
	waitHealthy(2)
}

// TestRouterTwoRealShards is the end-to-end check over real serve
// instances: distinct jobs land on their ring owners exactly once, a
// resubmission is a cache hit on the same shard, artifacts read back
// through the router byte-identically, and a batch of already-computed
// keys merges in order.
func TestRouterTwoRealShards(t *testing.T) {
	s1, err := serve.Start(serve.Options{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := serve.Start(serve.Options{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rt, err := StartRouter(RouterOptions{
		Addr:          "127.0.0.1:0",
		Shards:        []string{s1.Addr(), s2.Addr()},
		ProbeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	servers := map[string]*serve.Server{s1.Addr(): s1, s2.Addr(): s2}
	baseline := map[string]int64{}
	for addr, s := range servers {
		st := s.Service().CacheStats()
		baseline[addr] = st.Misses
	}

	type status struct {
		ID      string `json:"id"`
		State   string `json:"state"`
		Outcome string `json:"outcome"`
		SHA     string `json:"stl_sha256"`
	}
	submit := func(seed int64) status {
		t.Helper()
		body := fmt.Sprintf(`{"seed": %d}`, seed)
		resp, err := http.Post(rt.URL()+"/jobs?wait=1", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submit seed %d: status %d body %s", seed, resp.StatusCode, data)
		}
		var st status
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		if st.State != "done" {
			t.Fatalf("submit seed %d: state %q body %s", seed, st.State, data)
		}
		return st
	}

	seeds := []int64{1, 2, 3}
	expectMisses := map[string]int64{}
	first := map[int64]status{}
	for _, seed := range seeds {
		st := submit(seed)
		if st.Outcome != "miss" {
			t.Fatalf("first run of seed %d: outcome %q, want miss", seed, st.Outcome)
		}
		first[seed] = st
		expectMisses[rt.Ring().Owner(st.ID)]++
	}
	// Key-stable placement: each shard computed exactly the keys it owns.
	for addr, s := range servers {
		got := s.Service().CacheStats().Misses - baseline[addr]
		if got != expectMisses[addr] {
			t.Fatalf("shard %s ran %d pipelines, ring assigns it %d", addr, got, expectMisses[addr])
		}
	}
	// Resubmission: same id, served from the owner's cache.
	for _, seed := range seeds {
		st := submit(seed)
		if st.Outcome != "hit" || st.ID != first[seed].ID || st.SHA != first[seed].SHA {
			t.Fatalf("rerun of seed %d: outcome %q id %s, want hit of %s", seed, st.Outcome, st.ID, first[seed].ID)
		}
	}
	// Artifact read through the router: bytes must hash to the digest.
	id := first[seeds[0]].ID
	resp, err := http.Get(rt.URL() + "/jobs/" + id + "/stl")
	if err != nil {
		t.Fatal(err)
	}
	stl, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(stl) == 0 {
		t.Fatalf("STL read: status %d, %d bytes", resp.StatusCode, len(stl))
	}
	if got := resp.Header.Get("X-Stl-Sha256"); got != first[seeds[0]].SHA {
		t.Fatalf("STL digest header %q, want %q", got, first[seeds[0]].SHA)
	}
	// Batch over warm keys: merged in submission order, all hits.
	var jobs []string
	for _, seed := range seeds {
		jobs = append(jobs, fmt.Sprintf(`{"seed": %d}`, seed))
	}
	bresp, err := http.Post(rt.URL()+"/jobs/batch", "application/json",
		strings.NewReader(`{"jobs": [`+strings.Join(jobs, ",")+`]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	var merged struct {
		Results []status `json:"results"`
	}
	if err := json.NewDecoder(bresp.Body).Decode(&merged); err != nil {
		t.Fatal(err)
	}
	if bresp.StatusCode != http.StatusOK || len(merged.Results) != len(seeds) {
		t.Fatalf("batch: status %d, %d results", bresp.StatusCode, len(merged.Results))
	}
	for i, seed := range seeds {
		if merged.Results[i].ID != first[seed].ID {
			t.Fatalf("batch result %d is job %s, want %s (submission order)", i, merged.Results[i].ID, first[seed].ID)
		}
	}
}

// TestRouterSanitizeRoutes proves POST /sanitize through the router:
// the body's content address places the upload on one shard, a repeat
// of the same bytes is a hit on that same shard, and the sanitized
// artifact reads back through the router's hedged-read path with its
// digest intact.
func TestRouterSanitizeRoutes(t *testing.T) {
	s1, err := serve.Start(serve.Options{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := serve.Start(serve.Options{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rt, err := StartRouter(RouterOptions{
		Addr:          "127.0.0.1:0",
		Shards:        []string{s1.Addr(), s2.Addr()},
		ProbeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// A design file carrying a payload in both stego channels.
	m := &mesh.Mesh{}
	for b := 0; b < 12; b++ {
		fb := float64(b)
		m.Shells = append(m.Shells, mesh.BoxShell(
			fmt.Sprintf("shell%d", b), "body",
			geom.V3(fb*7, fb*3.5, 0), geom.V3(fb*7+4+fb/8, fb*3.5+2.5, 1.5+fb/4)))
	}
	emb, err := stego.Embed(m, []byte("routed secret"), stego.Options{})
	if err != nil {
		t.Fatal(err)
	}
	body, err := stl.Marshal(emb, stl.Binary, "leaky")
	if err != nil {
		t.Fatal(err)
	}

	type sanStatus struct {
		ID      string `json:"id"`
		Outcome string `json:"outcome"`
		SHA     string `json:"stl_sha256"`
		STLURL  string `json:"stl_url"`
	}
	upload := func() sanStatus {
		t.Helper()
		resp, err := http.Post(rt.URL()+"/sanitize", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sanitize: status %d body %s", resp.StatusCode, data)
		}
		var st sanStatus
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	first := upload()
	if first.Outcome != "miss" {
		t.Fatalf("first upload: %+v", first)
	}
	if want := string(serve.SanitizeKey(body, stego.DefaultQuantum)); first.ID != want {
		t.Fatalf("router placed by %s, serve addressed %s", want, first.ID)
	}
	again := upload()
	if again.Outcome != "hit" || again.ID != first.ID || again.SHA != first.SHA {
		t.Fatalf("repeat upload: %+v", again)
	}
	// Exactly one shard sanitized — the ring owner.
	ownerIsS1 := rt.Ring().Owner(first.ID) == s1.Addr()
	if got := obsSanitizeCount(t, s1, s2, ownerIsS1); got != 1 {
		t.Fatalf("owner shard completed %d sanitizes, want 1", got)
	}

	resp, err := http.Get(rt.URL() + first.STLURL)
	if err != nil {
		t.Fatal(err)
	}
	clean, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(clean) == 0 {
		t.Fatalf("artifact read: status %d, %d bytes", resp.StatusCode, len(clean))
	}
	sum := sha256.Sum256(clean)
	if hex.EncodeToString(sum[:]) != first.SHA {
		t.Fatal("artifact digest mismatch through router")
	}
}

// obsSanitizeCount counts completed sanitizes on the owner shard via
// its cache stats (the owner holds the artifact; the other shard never
// saw the upload).
func obsSanitizeCount(t *testing.T, s1, s2 *serve.Server, ownerIsS1 bool) int64 {
	t.Helper()
	owner, other := s1, s2
	if !ownerIsS1 {
		owner, other = s2, s1
	}
	if n := other.Service().CacheStats().Misses; n != 0 {
		t.Fatalf("non-owner shard computed %d entries", n)
	}
	return owner.Service().CacheStats().Misses
}
