package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func square(cx, cy, half float64) Polygon {
	return Polygon{
		V2(cx-half, cy-half), V2(cx+half, cy-half),
		V2(cx+half, cy+half), V2(cx-half, cy+half),
	}
}

func TestPolygonArea(t *testing.T) {
	p := square(0, 0, 1)
	if got := p.SignedArea(); !ApproxEq(got, 4, 1e-12) {
		t.Errorf("SignedArea = %v, want 4", got)
	}
	if got := p.Reversed().SignedArea(); !ApproxEq(got, -4, 1e-12) {
		t.Errorf("reversed SignedArea = %v, want -4", got)
	}
	if !p.IsCCW() || p.Reversed().IsCCW() {
		t.Error("orientation predicates inconsistent")
	}
	if got := p.Perimeter(); !ApproxEq(got, 8, 1e-12) {
		t.Errorf("Perimeter = %v, want 8", got)
	}
}

func TestPolygonCentroid(t *testing.T) {
	p := square(3, -2, 1)
	if got := p.Centroid(); !got.Eq(V2(3, -2), 1e-12) {
		t.Errorf("Centroid = %v", got)
	}
}

func TestWindingNumber(t *testing.T) {
	p := square(0, 0, 1)
	if got := p.WindingNumber(V2(0, 0)); got != 1 {
		t.Errorf("inside winding = %d, want 1", got)
	}
	if got := p.WindingNumber(V2(5, 5)); got != 0 {
		t.Errorf("outside winding = %d, want 0", got)
	}
	if got := p.Reversed().WindingNumber(V2(0, 0)); got != -1 {
		t.Errorf("CW inside winding = %d, want -1", got)
	}
	if !p.Contains(V2(0.5, -0.5)) {
		t.Error("Contains should include interior point")
	}
	if p.Contains(V2(1.5, 0)) {
		t.Error("Contains should exclude exterior point")
	}
}

func TestPolygonSetFillRules(t *testing.T) {
	outer := square(0, 0, 2)
	hole := square(0, 0, 1).Reversed() // CW hole
	s := PolygonSet{outer, hole}
	if s.ContainsNonZero(V2(0, 0)) {
		t.Error("hole interior should be outside (non-zero)")
	}
	if !s.ContainsNonZero(V2(1.5, 0)) {
		t.Error("annulus should be inside (non-zero)")
	}
	if got := s.Area(); !ApproxEq(got, 16-4, 1e-12) {
		t.Errorf("set Area = %v, want 12", got)
	}

	// Two nested CCW loops (raw STL nested shells): even-odd makes the
	// inner region hollow even though winding is 2. This is the slicer
	// behaviour the embedded-sphere feature (§3.2) exploits.
	nested := PolygonSet{square(0, 0, 2), square(0, 0, 1)}
	if nested.ContainsEvenOdd(V2(0, 0)) {
		t.Error("even-odd: doubly-enclosed point should be hollow")
	}
	if !nested.ContainsNonZero(V2(0, 0)) {
		t.Error("non-zero: doubly-enclosed point should be solid")
	}
	if !nested.ContainsEvenOdd(V2(1.5, 0)) {
		t.Error("even-odd: singly-enclosed point should be solid")
	}
}

func TestDistToBoundary(t *testing.T) {
	p := square(0, 0, 1)
	if got := p.DistToBoundary(V2(0, 0)); !ApproxEq(got, 1, 1e-12) {
		t.Errorf("DistToBoundary center = %v, want 1", got)
	}
	if got := p.DistToBoundary(V2(3, 0)); !ApproxEq(got, 2, 1e-12) {
		t.Errorf("DistToBoundary outside = %v, want 2", got)
	}
}

func TestMinDist(t *testing.T) {
	a := square(0, 0, 1)
	b := square(5, 0, 1)
	if got := a.MinDist(b); !ApproxEq(got, 3, 1e-12) {
		t.Errorf("MinDist = %v, want 3", got)
	}
}

func TestSimplify(t *testing.T) {
	p := Polygon{
		V2(0, 0), V2(0.5, 1e-9), V2(1, 0), // middle vertex collinear
		V2(1, 1), V2(1, 1), // duplicate
		V2(0, 1),
	}
	s := p.Simplify(1e-6)
	if len(s) != 4 {
		t.Fatalf("Simplify len = %d, want 4 (%v)", len(s), s)
	}
	if !ApproxEq(s.Area(), 1, 1e-6) {
		t.Errorf("Simplify changed area: %v", s.Area())
	}
}

func TestTranslatePolygon(t *testing.T) {
	p := square(0, 0, 1).Translate(V2(10, 20))
	if got := p.Centroid(); !got.Eq(V2(10, 20), 1e-12) {
		t.Errorf("translated centroid = %v", got)
	}
}

// Property: area is translation-invariant and negates under reversal.
func TestAreaInvariants(t *testing.T) {
	f := func(coords [8]float64, dx, dy float64) bool {
		p := Polygon{
			V2(clampMag(coords[0]), clampMag(coords[1])),
			V2(clampMag(coords[2]), clampMag(coords[3])),
			V2(clampMag(coords[4]), clampMag(coords[5])),
			V2(clampMag(coords[6]), clampMag(coords[7])),
		}
		a := p.SignedArea()
		scale := 1 + math.Abs(a)
		moved := p.Translate(V2(clampMag(dx), clampMag(dy))).SignedArea()
		rev := p.Reversed().SignedArea()
		return math.Abs(moved-a) <= 1e-4*scale && math.Abs(rev+a) <= 1e-9*scale
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: points reported inside a CCW simple polygon have winding 1, and
// winding is 0 far outside the bounding box.
func TestWindingOutsideBounds(t *testing.T) {
	f := func(cx, cy, r float64) bool {
		cx, cy = clampMag(cx), clampMag(cy)
		r = Clamp(math.Abs(clampMag(r)), 0.1, 1e3)
		p := square(cx, cy, r)
		far := V2(cx+10*r, cy+10*r)
		return p.WindingNumber(far) == 0 && p.WindingNumber(V2(cx, cy)) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBounds2ContainsOverlapsDistSq(t *testing.T) {
	b := Bounds2{Min: V2(1, 2), Max: V2(4, 6)}
	for _, p := range []Vec2{V2(1, 2), V2(4, 6), V2(2.5, 4)} {
		if !b.ContainsPoint(p) {
			t.Errorf("ContainsPoint(%v) = false, want true", p)
		}
		if b.DistSq(p) != 0 {
			t.Errorf("DistSq(%v) = %g, want 0 inside", p, b.DistSq(p))
		}
	}
	if b.ContainsPoint(V2(0.99, 4)) || b.ContainsPoint(V2(2, 6.01)) {
		t.Error("ContainsPoint accepted an outside point")
	}
	if got := b.DistSq(V2(-2, 2)); got != 9 {
		t.Errorf("DistSq left = %g, want 9", got)
	}
	if got := b.DistSq(V2(7, 10)); got != 25 {
		t.Errorf("DistSq corner = %g, want 25", got)
	}
	cases := []struct {
		o    Bounds2
		want bool
	}{
		{Bounds2{Min: V2(4, 6), Max: V2(5, 7)}, true},  // shared corner
		{Bounds2{Min: V2(2, 3), Max: V2(3, 4)}, true},  // contained
		{Bounds2{Min: V2(5, 2), Max: V2(6, 6)}, false}, // right of b
		{Bounds2{Min: V2(1, 7), Max: V2(4, 8)}, false}, // above b
	}
	for _, tc := range cases {
		if got := b.Overlaps(tc.o); got != tc.want {
			t.Errorf("Overlaps(%v) = %t, want %t", tc.o, got, tc.want)
		}
		if got := tc.o.Overlaps(b); got != tc.want {
			t.Errorf("Overlaps symmetric (%v) = %t, want %t", tc.o, got, tc.want)
		}
	}
}

// Property: DistSq(q) lower-bounds the squared distance from q to any
// point inside the box — the guarantee the slicer's pruning relies on.
func TestBounds2DistSqLowerBound(t *testing.T) {
	b := Bounds2{Min: V2(-1, -2), Max: V2(3, 1)}
	f := func(qx, qy, tx, ty float64) bool {
		q := V2(math.Mod(qx, 50), math.Mod(qy, 50))
		in := V2(
			b.Min.X+(b.Max.X-b.Min.X)*frac(tx),
			b.Min.Y+(b.Max.Y-b.Min.Y)*frac(ty),
		)
		return b.DistSq(q) <= q.DistSq(in)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func frac(x float64) float64 {
	f := math.Abs(x - math.Trunc(x))
	if math.IsNaN(f) {
		return 0
	}
	return f
}
