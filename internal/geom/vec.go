// Package geom provides the geometric foundation used by every other
// subsystem in the repository: 2D/3D vectors, matrices, rigid transforms,
// segments, planes, triangles and tolerant 2D polygon operations.
//
// All quantities are in millimetres unless documented otherwise, matching
// the STL unit used throughout the paper ("STL unit of millimeters", §3.1).
package geom

import (
	"fmt"
	"math"
)

// Vec2 is a 2D vector or point.
type Vec2 struct {
	X, Y float64
}

// V2 constructs a Vec2.
func V2(x, y float64) Vec2 { return Vec2{x, y} }

// Add returns a + b.
func (a Vec2) Add(b Vec2) Vec2 { return Vec2{a.X + b.X, a.Y + b.Y} }

// Sub returns a - b.
func (a Vec2) Sub(b Vec2) Vec2 { return Vec2{a.X - b.X, a.Y - b.Y} }

// Scale returns a scaled by s.
func (a Vec2) Scale(s float64) Vec2 { return Vec2{a.X * s, a.Y * s} }

// Dot returns the dot product a·b.
func (a Vec2) Dot(b Vec2) float64 { return a.X*b.X + a.Y*b.Y }

// Cross returns the z component of the 3D cross product of a and b,
// i.e. the signed area of the parallelogram they span.
func (a Vec2) Cross(b Vec2) float64 { return a.X*b.Y - a.Y*b.X }

// Len returns the Euclidean norm of a.
func (a Vec2) Len() float64 { return math.Hypot(a.X, a.Y) }

// LenSq returns the squared Euclidean norm of a.
func (a Vec2) LenSq() float64 { return a.X*a.X + a.Y*a.Y }

// Dist returns the Euclidean distance between a and b.
func (a Vec2) Dist(b Vec2) float64 { return a.Sub(b).Len() }

// DistSq returns the squared Euclidean distance between a and b.
func (a Vec2) DistSq(b Vec2) float64 { return a.Sub(b).LenSq() }

// Normalized returns a unit vector in the direction of a.
// The zero vector is returned unchanged.
func (a Vec2) Normalized() Vec2 {
	l := a.Len()
	if l == 0 {
		return a
	}
	return a.Scale(1 / l)
}

// Perp returns a rotated 90 degrees counter-clockwise.
func (a Vec2) Perp() Vec2 { return Vec2{-a.Y, a.X} }

// Neg returns -a.
func (a Vec2) Neg() Vec2 { return Vec2{-a.X, -a.Y} }

// Lerp returns the linear interpolation between a and b at parameter t.
func (a Vec2) Lerp(b Vec2, t float64) Vec2 {
	return Vec2{a.X + (b.X-a.X)*t, a.Y + (b.Y-a.Y)*t}
}

// Eq reports whether a and b coincide within tolerance tol.
func (a Vec2) Eq(b Vec2, tol float64) bool { return a.DistSq(b) <= tol*tol }

// String implements fmt.Stringer.
func (a Vec2) String() string { return fmt.Sprintf("(%.6g, %.6g)", a.X, a.Y) }

// Vec3 is a 3D vector or point.
type Vec3 struct {
	X, Y, Z float64
}

// V3 constructs a Vec3.
func V3(x, y, z float64) Vec3 { return Vec3{x, y, z} }

// Add returns a + b.
func (a Vec3) Add(b Vec3) Vec3 { return Vec3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a - b.
func (a Vec3) Sub(b Vec3) Vec3 { return Vec3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns a scaled by s.
func (a Vec3) Scale(s float64) Vec3 { return Vec3{a.X * s, a.Y * s, a.Z * s} }

// Mul returns the component-wise product of a and b.
func (a Vec3) Mul(b Vec3) Vec3 { return Vec3{a.X * b.X, a.Y * b.Y, a.Z * b.Z} }

// Dot returns the dot product a·b.
func (a Vec3) Dot(b Vec3) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Cross returns the cross product a×b.
func (a Vec3) Cross(b Vec3) Vec3 {
	return Vec3{
		a.Y*b.Z - a.Z*b.Y,
		a.Z*b.X - a.X*b.Z,
		a.X*b.Y - a.Y*b.X,
	}
}

// Len returns the Euclidean norm of a.
func (a Vec3) Len() float64 { return math.Sqrt(a.LenSq()) }

// LenSq returns the squared Euclidean norm of a.
func (a Vec3) LenSq() float64 { return a.X*a.X + a.Y*a.Y + a.Z*a.Z }

// Dist returns the Euclidean distance between a and b.
func (a Vec3) Dist(b Vec3) float64 { return a.Sub(b).Len() }

// DistSq returns the squared Euclidean distance between a and b.
func (a Vec3) DistSq(b Vec3) float64 { return a.Sub(b).LenSq() }

// Normalized returns a unit vector in the direction of a.
// The zero vector is returned unchanged.
func (a Vec3) Normalized() Vec3 {
	l := a.Len()
	if l == 0 {
		return a
	}
	return a.Scale(1 / l)
}

// Neg returns -a.
func (a Vec3) Neg() Vec3 { return Vec3{-a.X, -a.Y, -a.Z} }

// Lerp returns the linear interpolation between a and b at parameter t.
func (a Vec3) Lerp(b Vec3, t float64) Vec3 {
	return Vec3{
		a.X + (b.X-a.X)*t,
		a.Y + (b.Y-a.Y)*t,
		a.Z + (b.Z-a.Z)*t,
	}
}

// Eq reports whether a and b coincide within tolerance tol.
func (a Vec3) Eq(b Vec3, tol float64) bool { return a.DistSq(b) <= tol*tol }

// XY projects a onto the XY plane.
func (a Vec3) XY() Vec2 { return Vec2{a.X, a.Y} }

// Min returns the component-wise minimum of a and b.
func (a Vec3) Min(b Vec3) Vec3 {
	return Vec3{math.Min(a.X, b.X), math.Min(a.Y, b.Y), math.Min(a.Z, b.Z)}
}

// Max returns the component-wise maximum of a and b.
func (a Vec3) Max(b Vec3) Vec3 {
	return Vec3{math.Max(a.X, b.X), math.Max(a.Y, b.Y), math.Max(a.Z, b.Z)}
}

// Abs returns the component-wise absolute value of a.
func (a Vec3) Abs() Vec3 {
	return Vec3{math.Abs(a.X), math.Abs(a.Y), math.Abs(a.Z)}
}

// String implements fmt.Stringer.
func (a Vec3) String() string {
	return fmt.Sprintf("(%.6g, %.6g, %.6g)", a.X, a.Y, a.Z)
}

// Angle returns the angle between a and b in radians, in [0, pi].
func (a Vec3) Angle(b Vec3) float64 {
	d := a.Normalized().Dot(b.Normalized())
	return math.Acos(Clamp(d, -1, 1))
}

// Clamp limits v to the interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ApproxEq reports whether two floats agree within tol.
func ApproxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
