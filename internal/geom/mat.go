package geom

import "math"

// Mat4 is a 4x4 row-major homogeneous transformation matrix.
type Mat4 [16]float64

// Identity returns the identity transform.
func Identity() Mat4 {
	return Mat4{
		1, 0, 0, 0,
		0, 1, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}
}

// Translate returns a translation by t.
func Translate(t Vec3) Mat4 {
	return Mat4{
		1, 0, 0, t.X,
		0, 1, 0, t.Y,
		0, 0, 1, t.Z,
		0, 0, 0, 1,
	}
}

// ScaleUniform returns a uniform scaling about the origin.
func ScaleUniform(s float64) Mat4 { return Scale(Vec3{s, s, s}) }

// Scale returns an anisotropic scaling about the origin.
func Scale(s Vec3) Mat4 {
	return Mat4{
		s.X, 0, 0, 0,
		0, s.Y, 0, 0,
		0, 0, s.Z, 0,
		0, 0, 0, 1,
	}
}

// RotateX returns a rotation of angle radians about the +X axis.
func RotateX(angle float64) Mat4 {
	c, s := math.Cos(angle), math.Sin(angle)
	return Mat4{
		1, 0, 0, 0,
		0, c, -s, 0,
		0, s, c, 0,
		0, 0, 0, 1,
	}
}

// RotateY returns a rotation of angle radians about the +Y axis.
func RotateY(angle float64) Mat4 {
	c, s := math.Cos(angle), math.Sin(angle)
	return Mat4{
		c, 0, s, 0,
		0, 1, 0, 0,
		-s, 0, c, 0,
		0, 0, 0, 1,
	}
}

// RotateZ returns a rotation of angle radians about the +Z axis.
func RotateZ(angle float64) Mat4 {
	c, s := math.Cos(angle), math.Sin(angle)
	return Mat4{
		c, -s, 0, 0,
		s, c, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}
}

// Mul returns the matrix product m * n (n applied first).
func (m Mat4) Mul(n Mat4) Mat4 {
	var r Mat4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			var sum float64
			for k := 0; k < 4; k++ {
				sum += m[i*4+k] * n[k*4+j]
			}
			r[i*4+j] = sum
		}
	}
	return r
}

// Apply transforms point p (w = 1).
func (m Mat4) Apply(p Vec3) Vec3 {
	return Vec3{
		m[0]*p.X + m[1]*p.Y + m[2]*p.Z + m[3],
		m[4]*p.X + m[5]*p.Y + m[6]*p.Z + m[7],
		m[8]*p.X + m[9]*p.Y + m[10]*p.Z + m[11],
	}
}

// ApplyDir transforms direction d (w = 0), ignoring translation.
func (m Mat4) ApplyDir(d Vec3) Vec3 {
	return Vec3{
		m[0]*d.X + m[1]*d.Y + m[2]*d.Z,
		m[4]*d.X + m[5]*d.Y + m[6]*d.Z,
		m[8]*d.X + m[9]*d.Y + m[10]*d.Z,
	}
}

// ApplyNormal transforms a normal vector and re-normalises it. For the
// rigid and uniform-scale transforms used in this repository the inverse
// transpose equals the linear part up to scale, so this is exact.
func (m Mat4) ApplyNormal(n Vec3) Vec3 { return m.ApplyDir(n).Normalized() }

// Det returns the determinant of the upper-left 3x3 linear part.
func (m Mat4) Det3() float64 {
	return m[0]*(m[5]*m[10]-m[6]*m[9]) -
		m[1]*(m[4]*m[10]-m[6]*m[8]) +
		m[2]*(m[4]*m[9]-m[5]*m[8])
}

// IsRigid reports whether the linear part of m is orthonormal with
// determinant +1 (rotation + translation only), within tol.
func (m Mat4) IsRigid(tol float64) bool {
	cols := [3]Vec3{
		{m[0], m[4], m[8]},
		{m[1], m[5], m[9]},
		{m[2], m[6], m[10]},
	}
	for i := 0; i < 3; i++ {
		if !ApproxEq(cols[i].Len(), 1, tol) {
			return false
		}
		for j := i + 1; j < 3; j++ {
			if !ApproxEq(cols[i].Dot(cols[j]), 0, tol) {
				return false
			}
		}
	}
	return ApproxEq(m.Det3(), 1, tol)
}
