package geom

import (
	"math"
	"testing"
)

func triangulatedArea(t *testing.T, p Polygon) float64 {
	t.Helper()
	tris, err := Triangulate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tris) != len(p)-2 {
		t.Fatalf("triangle count = %d, want %d", len(tris), len(p)-2)
	}
	var a float64
	for _, tr := range tris {
		a += Polygon{p[tr[0]], p[tr[1]], p[tr[2]]}.SignedArea()
	}
	return a
}

func TestTriangulateSquare(t *testing.T) {
	p := Polygon{V2(0, 0), V2(2, 0), V2(2, 2), V2(0, 2)}
	if a := triangulatedArea(t, p); !ApproxEq(a, 4, 1e-12) {
		t.Errorf("area = %v, want 4", a)
	}
}

func TestTriangulateCWSquare(t *testing.T) {
	p := Polygon{V2(0, 0), V2(0, 2), V2(2, 2), V2(2, 0)}
	if a := triangulatedArea(t, p); !ApproxEq(a, -4, 1e-12) {
		t.Errorf("area = %v, want -4 (CW preserved)", a)
	}
}

func TestTriangulateConcave(t *testing.T) {
	// An L-shape.
	p := Polygon{
		V2(0, 0), V2(4, 0), V2(4, 1), V2(1, 1), V2(1, 3), V2(0, 3),
	}
	want := p.SignedArea()
	if a := triangulatedArea(t, p); !ApproxEq(a, want, 1e-9) {
		t.Errorf("area = %v, want %v", a, want)
	}
}

func TestTriangulateStar(t *testing.T) {
	// A 5-pointed star outline (concave decagon).
	var p Polygon
	for i := 0; i < 10; i++ {
		r := 2.0
		if i%2 == 1 {
			r = 0.8
		}
		ang := float64(i) * math.Pi / 5
		p = append(p, V2(r*math.Cos(ang), r*math.Sin(ang)))
	}
	want := p.SignedArea()
	if a := triangulatedArea(t, p); !ApproxEq(a, want, 1e-9) {
		t.Errorf("star area = %v, want %v", a, want)
	}
}

func TestTriangulateWithCollinearRuns(t *testing.T) {
	// Square with extra collinear vertices on one edge.
	p := Polygon{
		V2(0, 0), V2(1, 0), V2(2, 0), V2(3, 0),
		V2(3, 3), V2(0, 3),
	}
	if a := triangulatedArea(t, p); !ApproxEq(a, 9, 1e-9) {
		t.Errorf("area = %v, want 9", a)
	}
}

func TestTriangulateTooFew(t *testing.T) {
	if _, err := Triangulate(Polygon{V2(0, 0), V2(1, 1)}); err == nil {
		t.Error("expected error for 2-gon")
	}
}

func TestTriangulateWavyProfile(t *testing.T) {
	// Emulates a tessellated split-body profile: flat bottom, wavy top.
	var p Polygon
	p = append(p, V2(0, 0), V2(20, 0))
	for i := 0; i <= 40; i++ {
		x := 20 - float64(i)*0.5
		p = append(p, V2(x, 2+0.5*math.Sin(x)))
	}
	want := p.SignedArea()
	if a := triangulatedArea(t, p); math.Abs(a-want) > 1e-9*math.Abs(want) {
		t.Errorf("wavy area = %v, want %v", a, want)
	}
}
