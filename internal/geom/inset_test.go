package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestInsetSquare(t *testing.T) {
	p := Polygon{V2(0, 0), V2(10, 0), V2(10, 10), V2(0, 10)}
	in, ok := p.Inset(1)
	if !ok {
		t.Fatal("inset failed")
	}
	if !ApproxEq(in.Area(), 64, 1e-9) {
		t.Errorf("inset area = %v, want 64", in.Area())
	}
	if !in.IsCCW() {
		t.Error("inset should stay CCW")
	}
	// All inset vertices strictly inside the original.
	for _, v := range in {
		if !p.Contains(v) {
			t.Errorf("inset vertex %v outside original", v)
		}
	}
}

func TestInsetCWPolygonOffsetsOutward(t *testing.T) {
	p := Polygon{V2(0, 0), V2(0, 10), V2(10, 10), V2(10, 0)} // CW
	out, ok := p.Inset(1)
	if !ok {
		t.Fatal("CW inset failed")
	}
	if got := out.Area(); !ApproxEq(got, 144, 1e-9) {
		t.Errorf("CW offset area = %v, want 144", got)
	}
}

func TestInsetTooNarrow(t *testing.T) {
	p := Polygon{V2(0, 0), V2(10, 0), V2(10, 1), V2(0, 1)}
	if _, ok := p.Inset(0.6); ok {
		t.Error("inset wider than half-height should degenerate")
	}
}

func TestInsetInvalidInput(t *testing.T) {
	if _, ok := (Polygon{V2(0, 0), V2(1, 0)}).Inset(0.1); ok {
		t.Error("2-gon inset should fail")
	}
	p := Polygon{V2(0, 0), V2(10, 0), V2(10, 10), V2(0, 10)}
	if _, ok := p.Inset(0); ok {
		t.Error("zero-distance inset should fail")
	}
	if _, ok := p.Inset(-1); ok {
		t.Error("negative inset should fail")
	}
}

func TestInsetConcave(t *testing.T) {
	// An L-shape: inset shrinks area and keeps orientation.
	p := Polygon{V2(0, 0), V2(8, 0), V2(8, 3), V2(3, 3), V2(3, 8), V2(0, 8)}
	in, ok := p.Inset(0.5)
	if !ok {
		t.Fatal("concave inset failed")
	}
	if in.Area() >= p.Area() {
		t.Errorf("inset area %v should shrink from %v", in.Area(), p.Area())
	}
	if !in.IsCCW() {
		t.Error("concave inset lost orientation")
	}
}

func TestInsetRepeatedConverges(t *testing.T) {
	p := Polygon{V2(0, 0), V2(20, 0), V2(20, 20), V2(0, 20)}
	count := 0
	loop := p
	for {
		in, ok := loop.Inset(1)
		if !ok {
			break
		}
		loop = in
		count++
		if count > 30 {
			t.Fatal("inset should eventually degenerate")
		}
	}
	if count < 8 || count > 10 {
		t.Errorf("20mm square should allow ~9 insets of 1mm, got %d", count)
	}
}

func TestInsetAreaLowerBound(t *testing.T) {
	// Inset of a convex polygon by d shrinks area by at least
	// perimeter*d - pi*d^2 ... approximately; check the simple bound
	// area_new <= area_old - 0.5*perimeter_new*d.
	p := Polygon{V2(0, 0), V2(12, 0), V2(12, 7), V2(0, 7)}
	const d = 0.8
	in, ok := p.Inset(d)
	if !ok {
		t.Fatal("inset failed")
	}
	want := (12 - 2*d) * (7 - 2*d)
	if math.Abs(in.Area()-want) > 1e-9 {
		t.Errorf("rect inset area = %v, want %v", in.Area(), want)
	}
}

// Property: for random CCW rectangles, insetting shrinks the area by the
// exact analytic amount and every vertex stays inside.
func TestInsetRectangleProperty(t *testing.T) {
	f := func(w, h, d float64) bool {
		w = Clamp(math.Abs(w), 2, 100)
		h = Clamp(math.Abs(h), 2, 100)
		d = Clamp(math.Abs(d), 0.01, math.Min(w, h)/2*0.9)
		p := Polygon{V2(0, 0), V2(w, 0), V2(w, h), V2(0, h)}
		in, ok := p.Inset(d)
		if !ok {
			return false
		}
		want := (w - 2*d) * (h - 2*d)
		if math.Abs(in.Area()-want) > 1e-9*(1+want) {
			return false
		}
		for _, v := range in {
			if !p.Contains(v) {
				return false
			}
		}
		return true
	}
	if err := quickCheck(f); err != nil {
		t.Error(err)
	}
}

func quickCheck(f func(w, h, d float64) bool) error {
	return quick.Check(f, &quick.Config{MaxCount: 100})
}
